#include "tests/support/trace_test_utils.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <tuple>

namespace mrsky::test {

using common::TraceSpan;

std::vector<const TraceSpan*> spans_named(const std::vector<TraceSpan>& spans,
                                          std::string_view name) {
  std::vector<const TraceSpan*> out;
  for (const auto& s : spans) {
    if (s.name == name) out.push_back(&s);
  }
  return out;
}

std::vector<const TraceSpan*> spans_in_category(const std::vector<TraceSpan>& spans,
                                                std::string_view category) {
  std::vector<const TraceSpan*> out;
  for (const auto& s : spans) {
    if (s.category == category) out.push_back(&s);
  }
  return out;
}

const TraceSpan* span_by_id(const std::vector<TraceSpan>& spans, std::uint64_t id) {
  if (id == 0 || id > spans.size()) return nullptr;
  const TraceSpan& s = spans[id - 1];
  return s.id == id ? &s : nullptr;
}

namespace {

std::string describe(const TraceSpan& s) {
  std::ostringstream os;
  os << "span #" << s.id << " '" << s.name << "' (cat " << s.category << ", pid " << s.pid
     << ", lane " << s.lane << ", [" << s.start_ns << ", " << s.end_ns << "] ns)";
  return os.str();
}

}  // namespace

testing::AssertionResult well_formed(const std::vector<TraceSpan>& spans) {
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& s = spans[i];
    if (s.id != i + 1) {
      return testing::AssertionFailure()
             << "span at index " << i << " has id " << s.id << ", expected " << i + 1;
    }
    if (s.end_ns < s.start_ns) {
      return testing::AssertionFailure() << describe(s) << " ends before it starts";
    }
    if (s.parent == common::kTraceNoParent) continue;
    const TraceSpan* p = span_by_id(spans, s.parent);
    if (p == nullptr) {
      return testing::AssertionFailure()
             << describe(s) << " references missing parent #" << s.parent;
    }
    if (p->id >= s.id) {
      return testing::AssertionFailure()
             << describe(s) << " was created before its parent #" << p->id;
    }
    if (p->pid != s.pid || p->lane != s.lane) {
      return testing::AssertionFailure()
             << describe(s) << " is parented across lanes to " << describe(*p);
    }
    if (s.start_ns < p->start_ns || s.end_ns > p->end_ns) {
      return testing::AssertionFailure()
             << describe(*p) << " does not contain its child " << describe(s);
    }
  }
  return testing::AssertionSuccess();
}

testing::AssertionResult no_sibling_overlap(const std::vector<TraceSpan>& spans) {
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>,
           std::vector<const TraceSpan*>>
      groups;
  for (const auto& s : spans) groups[{s.pid, s.lane, s.parent}].push_back(&s);
  for (auto& [key, group] : groups) {
    std::sort(group.begin(), group.end(), [](const TraceSpan* a, const TraceSpan* b) {
      return std::tie(a->start_ns, a->end_ns, a->id) < std::tie(b->start_ns, b->end_ns, b->id);
    });
    for (std::size_t i = 1; i < group.size(); ++i) {
      if (group[i]->start_ns < group[i - 1]->end_ns) {
        return testing::AssertionFailure()
               << describe(*group[i - 1]) << " overlaps sibling " << describe(*group[i]);
      }
    }
  }
  return testing::AssertionSuccess();
}

testing::AssertionResult retries_precede_success(const std::vector<TraceSpan>& spans) {
  std::map<std::uint64_t, std::vector<const TraceSpan*>> by_task;
  for (const auto& s : spans) {
    if (s.category == "attempt") by_task[s.parent].push_back(&s);
  }
  for (auto& [task, attempts] : by_task) {
    std::sort(attempts.begin(), attempts.end(),
              [](const TraceSpan* a, const TraceSpan* b) { return a->start_ns < b->start_ns; });
    std::int64_t prev_attempt = -1;
    for (std::size_t i = 0; i < attempts.size(); ++i) {
      const TraceSpan& a = *attempts[i];
      const std::int64_t number = a.arg_int("attempt");
      if (number <= prev_attempt) {
        return testing::AssertionFailure()
               << describe(a) << " has attempt " << number << " after attempt " << prev_attempt
               << " of the same task";
      }
      prev_attempt = number;
      const common::TraceArg* status = a.find_arg("status");
      const std::string_view got = status != nullptr ? status->value : std::string_view{};
      const bool last = i + 1 == attempts.size();
      if (last && got != "ok") {
        return testing::AssertionFailure()
               << describe(a) << " is the final attempt but has status '" << got << "'";
      }
      if (!last) {
        if (got != "failed") {
          return testing::AssertionFailure()
                 << describe(a) << " precedes a retry but has status '" << got << "'";
        }
        if (a.end_ns > attempts[i + 1]->start_ns) {
          return testing::AssertionFailure() << "failed " << describe(a)
                                             << " is still running when its retry starts";
        }
      }
    }
  }
  return testing::AssertionSuccess();
}

namespace {

/// Recursive-descent JSON checker over [pos, text.size()).
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool parse() { return value() && (skip_ws(), pos_ == text_.size()); }
  std::size_t failed_at() const { return pos_; }

 private:
  bool value() {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"' || !string()) return false;
      skip_ws();
      if (!eat(':') || !value()) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      if (!value()) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  bool string() {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control chars are invalid JSON
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0)
              return false;
          }
        } else if (std::string_view("\"\\/bfnrt").find(esc) == std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    eat('-');
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
    if (eat('.')) {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)
        ++pos_;
    }
    if (eat('e') || eat('E')) {
      if (!eat('+')) eat('-');
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)
        ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(text_[pos_ - 1])) != 0;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

testing::AssertionResult valid_json(std::string_view text) {
  JsonChecker checker(text);
  if (checker.parse()) return testing::AssertionSuccess();
  const std::size_t at = checker.failed_at();
  const std::size_t lo = at < 30 ? 0 : at - 30;
  return testing::AssertionFailure()
         << "invalid JSON at offset " << at << ", near ..."
         << text.substr(lo, std::min<std::size_t>(60, text.size() - lo)) << "...";
}

}  // namespace mrsky::test
