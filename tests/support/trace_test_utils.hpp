// Assertion library for trace invariants (ISSUE 4): structural checks over
// the span list a TraceRecorder collected, usable from any test as
//
//   EXPECT_TRUE(test::well_formed(spans));
//
// Every checker returns testing::AssertionResult so failures carry the
// offending span ids and intervals instead of a bare boolean.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/common/trace.hpp"

namespace mrsky::test {

/// All spans whose name / category matches exactly (pointers into `spans`).
std::vector<const common::TraceSpan*> spans_named(const std::vector<common::TraceSpan>& spans,
                                                  std::string_view name);
std::vector<const common::TraceSpan*> spans_in_category(
    const std::vector<common::TraceSpan>& spans, std::string_view category);

/// Span with the given id, or nullptr. Ids are 1-based creation order.
const common::TraceSpan* span_by_id(const std::vector<common::TraceSpan>& spans,
                                    std::uint64_t id);

/// Span-tree well-formedness: ids are 1..N in creation order, every interval
/// has end >= start, and every non-root span's parent exists, was created
/// earlier, lives on the same (pid, lane), and contains the child's interval.
testing::AssertionResult well_formed(const std::vector<common::TraceSpan>& spans);

/// No two spans with the same (pid, lane, parent) overlap in time — a lane
/// executes its siblings sequentially, both in the engine (one OS thread per
/// lane) and in the simulator (one slot per lane).
testing::AssertionResult no_sibling_overlap(const std::vector<common::TraceSpan>& spans);

/// Retry discipline: within each task, the "attempt"-category child spans
/// carry strictly increasing `attempt` args, every attempt before the last
/// has status "failed" and ends before its successor starts, and the final
/// attempt has status "ok".
testing::AssertionResult retries_precede_success(const std::vector<common::TraceSpan>& spans);

/// Minimal JSON syntax validation (objects, arrays, strings with escapes,
/// numbers, literals; trailing garbage rejected). Enough to guarantee a
/// trace file parses before a viewer sees it.
testing::AssertionResult valid_json(std::string_view text);

}  // namespace mrsky::test
