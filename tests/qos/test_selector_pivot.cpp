// Selector behaviour under the pivot scheme and planner-produced configs —
// the application layer must compose with every pipeline configuration the
// library can recommend.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/planner.hpp"
#include "src/qos/selector.hpp"
#include "src/skyline/algorithms.hpp"

namespace mrsky::qos {
namespace {

std::vector<data::PointId> ids_of(const std::vector<WebService>& services) {
  std::vector<data::PointId> ids;
  for (const auto& s : services) ids.push_back(s.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<data::PointId> expected_ids(const ServiceCatalog& catalog) {
  const auto sky = skyline::bnl_skyline(catalog.to_oriented_points());
  std::vector<data::PointId> ids(sky.ids().begin(), sky.ids().end());
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(SelectorWithPlanner, PlannedConfigDrivesSelectorCorrectly) {
  auto catalog = ServiceCatalog::synthetic(1500, 6, 71);
  core::PlannerInputs in;
  in.cardinality = catalog.size();
  in.dim = catalog.schema().size();
  in.servers = 4;
  const auto planned = core::plan_config(in);

  SkylineServiceSelector selector(catalog, planned.config);
  EXPECT_EQ(ids_of(selector.skyline()), expected_ids(catalog));
}

TEST(SelectorWithPlanner, IncrementalUpdatesUnderPlannedSaltedConfig) {
  // High-d planned configs enable salting; the incremental add/remove path
  // must stay consistent with it (the selector refits its own partitioner,
  // independent of salting, so correctness must hold regardless).
  auto reference = ServiceCatalog::synthetic(700, 8, 73);
  const auto& all = reference.services();
  ServiceCatalog initial(reference.schema());
  for (std::size_t i = 0; i < 600; ++i) initial.add(all[i]);

  core::PlannerInputs in;
  in.cardinality = 600;
  in.dim = 8;
  in.servers = 4;
  const auto planned = core::plan_config(in);
  ASSERT_TRUE(planned.config.salt_oversized_partitions);

  SkylineServiceSelector selector(std::move(initial), planned.config);
  (void)selector.skyline();
  ServiceCatalog shadow(reference.schema());
  for (std::size_t i = 0; i < 600; ++i) shadow.add(all[i]);
  for (std::size_t i = 600; i < 700; ++i) {
    (void)selector.add_service(all[i].name, all[i].qos);
    shadow.add(WebService{static_cast<data::PointId>(i), all[i].name, all[i].qos});
  }
  EXPECT_EQ(ids_of(selector.skyline()), expected_ids(shadow));
}

TEST(SelectorWithPivotScheme, AddRemoveRoundTrip) {
  core::MRSkylineConfig config;
  config.scheme = part::Scheme::kPivot;
  config.servers = 2;
  auto catalog = ServiceCatalog::synthetic(500, 4, 75);
  SkylineServiceSelector selector(catalog, config);
  (void)selector.skyline();

  const data::PointId victim = selector.skyline().front().id;
  EXPECT_TRUE(selector.remove_service(victim));
  (void)catalog.remove(victim);
  EXPECT_EQ(ids_of(selector.skyline()), expected_ids(catalog));
}

}  // namespace
}  // namespace mrsky::qos
