// QosConstraints and constrained skyline selection.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/error.hpp"
#include "src/qos/selector.hpp"
#include "src/skyline/algorithms.hpp"

namespace mrsky::qos {
namespace {

core::MRSkylineConfig small_config() {
  core::MRSkylineConfig config;
  config.scheme = part::Scheme::kAngular;
  config.servers = 2;
  return config;
}

TEST(QosConstraints, UnconstrainedAdmitsEverything) {
  QosConstraints constraints(3);
  EXPECT_TRUE(constraints.admits(std::vector<double>{1.0, -5.0, 1e9}));
}

TEST(QosConstraints, BoundsEnforced) {
  QosConstraints constraints(2);
  constraints.at_most(0, 500.0).at_least(1, 99.0);
  EXPECT_TRUE(constraints.admits(std::vector<double>{400.0, 99.5}));
  EXPECT_FALSE(constraints.admits(std::vector<double>{600.0, 99.5}));  // too slow
  EXPECT_FALSE(constraints.admits(std::vector<double>{400.0, 98.0}));  // too flaky
  // Boundary values are admitted (closed intervals).
  EXPECT_TRUE(constraints.admits(std::vector<double>{500.0, 99.0}));
}

TEST(QosConstraints, Validation) {
  EXPECT_THROW(QosConstraints(0), mrsky::InvalidArgument);
  QosConstraints constraints(2);
  EXPECT_THROW(constraints.at_least(5, 1.0), mrsky::InvalidArgument);
  EXPECT_THROW(constraints.at_most(5, 1.0), mrsky::InvalidArgument);
  EXPECT_THROW((void)constraints.admits(std::vector<double>{1.0}), mrsky::InvalidArgument);
}

TEST(SkylineWithin, UnconstrainedMatchesPlainSkyline) {
  SkylineServiceSelector selector(ServiceCatalog::synthetic(600, 3, 41), small_config());
  const auto plain = selector.skyline();
  const auto constrained = selector.skyline_within(QosConstraints(3));
  ASSERT_EQ(constrained.size(), plain.size());
}

TEST(SkylineWithin, FilteredServicesExcluded) {
  SkylineServiceSelector selector(ServiceCatalog::synthetic(800, 2, 43), small_config());
  QosConstraints constraints(2);
  constraints.at_most(0, 1000.0);  // ResponseTime <= 1000 ms
  for (const auto& s : selector.skyline_within(constraints)) {
    EXPECT_LE(s.qos[0], 1000.0);
  }
}

TEST(SkylineWithin, PromotesPreviouslyDominatedServices) {
  // A dominator that violates the constraint: its victims become skyline.
  ServiceCatalog catalog(data::qws_schema(2));
  catalog.add(WebService{0u, "fast-but-flaky", {50.0, 50.0}});    // dominates nothing
  catalog.add(WebService{1u, "great-all-round", {100.0, 99.0}});  // dominates 2
  catalog.add(WebService{2u, "shadowed", {150.0, 98.0}});
  SkylineServiceSelector selector(std::move(catalog), small_config());

  // Unconstrained: service 2 is dominated by service 1.
  bool shadowed_in_plain = false;
  for (const auto& s : selector.skyline()) shadowed_in_plain |= (s.id == 2u);
  EXPECT_FALSE(shadowed_in_plain);

  // Require ResponseTime >= 120 ms (say, a throttling policy): only service
  // 2 qualifies and must now be in the constrained skyline.
  QosConstraints constraints(2);
  constraints.at_least(0, 120.0);
  const auto constrained = selector.skyline_within(constraints);
  ASSERT_EQ(constrained.size(), 1u);
  EXPECT_EQ(constrained[0].id, 2u);
}

TEST(SkylineWithin, MatchesFilterThenSkylineReference) {
  auto catalog = ServiceCatalog::synthetic(700, 3, 45);
  SkylineServiceSelector selector(catalog, small_config());
  QosConstraints constraints(3);
  constraints.at_most(0, 2500.0).at_least(1, 50.0);

  // Reference: filter the catalog, then sequential skyline.
  ServiceCatalog filtered(catalog.schema());
  for (const auto& s : catalog.services()) {
    if (constraints.admits(s.qos)) filtered.add(s);
  }
  std::vector<data::PointId> expected;
  if (filtered.size() > 0) {
    const auto sky = skyline::bnl_skyline(filtered.to_oriented_points());
    expected.assign(sky.ids().begin(), sky.ids().end());
    std::sort(expected.begin(), expected.end());
  }

  std::vector<data::PointId> got;
  for (const auto& s : selector.skyline_within(constraints)) got.push_back(s.id);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
}

TEST(SkylineWithin, ImpossibleConstraintsYieldEmpty) {
  SkylineServiceSelector selector(ServiceCatalog::synthetic(100, 2, 47), small_config());
  QosConstraints constraints(2);
  constraints.at_most(0, 0.0);  // nothing responds in 0 ms
  EXPECT_TRUE(selector.skyline_within(constraints).empty());
}

TEST(SkylineWithin, DimensionMismatchThrows) {
  SkylineServiceSelector selector(ServiceCatalog::synthetic(50, 3, 49), small_config());
  EXPECT_THROW((void)selector.skyline_within(QosConstraints(2)), mrsky::InvalidArgument);
}

}  // namespace
}  // namespace mrsky::qos
