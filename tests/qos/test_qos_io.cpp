#include "src/qos/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "src/common/error.hpp"

namespace mrsky::qos {
namespace {

ServiceCatalog sample_catalog() {
  ServiceCatalog catalog(data::qws_schema(3));  // ResponseTime, Availability, Throughput
  catalog.add(WebService{1u, "alpha", {200.0, 99.0, 12.0}});
  catalog.add(WebService{2u, "beta", {450.0, 80.0, 30.5}});
  return catalog;
}

TEST(CatalogCsv, RoundTrip) {
  const ServiceCatalog original = sample_catalog();
  std::stringstream buffer;
  write_catalog_csv(buffer, original);
  const ServiceCatalog loaded = read_catalog_csv(buffer, data::qws_schema(3));
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded.services()[i].id, original.services()[i].id);
    EXPECT_EQ(loaded.services()[i].name, original.services()[i].name);
    EXPECT_EQ(loaded.services()[i].qos, original.services()[i].qos);
  }
}

TEST(CatalogCsv, HeaderNamesAttributes) {
  std::stringstream buffer;
  write_catalog_csv(buffer, sample_catalog());
  std::string header;
  std::getline(buffer, header);
  EXPECT_EQ(header, "id,name,ResponseTime,Availability,Throughput");
}

TEST(CatalogCsv, ColumnsMatchedByNameNotPosition) {
  // Attribute columns permuted relative to the schema order.
  std::stringstream buffer(
      "id,name,Throughput,ResponseTime,Availability\n"
      "7,gamma,5.5,300,90\n");
  const ServiceCatalog catalog = read_catalog_csv(buffer, data::qws_schema(3));
  ASSERT_EQ(catalog.size(), 1u);
  const auto& s = catalog.services()[0];
  EXPECT_DOUBLE_EQ(s.qos[0], 300.0);  // ResponseTime
  EXPECT_DOUBLE_EQ(s.qos[1], 90.0);   // Availability
  EXPECT_DOUBLE_EQ(s.qos[2], 5.5);    // Throughput
}

TEST(CatalogCsv, UnknownColumnThrows) {
  std::stringstream buffer("id,name,Bogus\n1,x,1\n");
  EXPECT_THROW((void)read_catalog_csv(buffer, data::qws_schema(1)), mrsky::InvalidArgument);
}

TEST(CatalogCsv, MissingColumnThrows) {
  std::stringstream buffer("id,name,ResponseTime\n1,x,100\n");
  EXPECT_THROW((void)read_catalog_csv(buffer, data::qws_schema(2)), mrsky::InvalidArgument);
}

TEST(CatalogCsv, DuplicateColumnThrows) {
  std::stringstream buffer("id,name,ResponseTime,ResponseTime\n1,x,100,200\n");
  EXPECT_THROW((void)read_catalog_csv(buffer, data::qws_schema(1)), mrsky::InvalidArgument);
}

TEST(CatalogCsv, MissingIdNameColumnsThrow) {
  std::stringstream buffer("name,id,ResponseTime\nx,1,100\n");
  EXPECT_THROW((void)read_catalog_csv(buffer, data::qws_schema(1)), mrsky::InvalidArgument);
}

TEST(CatalogCsv, RaggedRowThrows) {
  std::stringstream buffer("id,name,ResponseTime\n1,x\n");
  EXPECT_THROW((void)read_catalog_csv(buffer, data::qws_schema(1)), mrsky::InvalidArgument);
}

TEST(CatalogCsv, GarbageValueThrows) {
  std::stringstream buffer("id,name,ResponseTime\n1,x,fast\n");
  EXPECT_THROW((void)read_catalog_csv(buffer, data::qws_schema(1)), mrsky::InvalidArgument);
}

TEST(CatalogCsv, OutOfSchemaRangeThrows) {
  // ResponseTime range is [37, 4989]; 5 is below minimum.
  std::stringstream buffer("id,name,ResponseTime\n1,x,5\n");
  EXPECT_THROW((void)read_catalog_csv(buffer, data::qws_schema(1)), mrsky::InvalidArgument);
}

TEST(CatalogCsv, EmptyFileThrows) {
  std::stringstream buffer("");
  EXPECT_THROW((void)read_catalog_csv(buffer, data::qws_schema(1)), mrsky::InvalidArgument);
}

TEST(CatalogCsv, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/mrsky_catalog.csv";
  write_catalog_csv_file(path, sample_catalog());
  const ServiceCatalog loaded = read_catalog_csv_file(path, data::qws_schema(3));
  EXPECT_EQ(loaded.size(), 2u);
}

TEST(CatalogCsv, MissingFileThrows) {
  EXPECT_THROW((void)read_catalog_csv_file("/no/such/file.csv", data::qws_schema(1)),
               mrsky::RuntimeError);
}

TEST(CatalogCsv, SkipsBlankLines) {
  std::stringstream buffer("id,name,ResponseTime\n\n1,x,100\n\n2,y,200\n");
  EXPECT_EQ(read_catalog_csv(buffer, data::qws_schema(1)).size(), 2u);
}

}  // namespace
}  // namespace mrsky::qos
