#include "src/qos/catalog.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

namespace mrsky::qos {
namespace {

ServiceCatalog two_attr_catalog() {
  return ServiceCatalog(data::qws_schema(2));  // ResponseTime (cost), Availability (benefit)
}

TEST(ServiceCatalog, EmptySchemaRejected) {
  EXPECT_THROW(ServiceCatalog({}), mrsky::InvalidArgument);
}

TEST(ServiceCatalog, AddAndFind) {
  auto catalog = two_attr_catalog();
  catalog.add(WebService{7u, "weather", {200.0, 99.0}});
  ASSERT_EQ(catalog.size(), 1u);
  const auto found = catalog.find(7u);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->name, "weather");
  EXPECT_FALSE(catalog.find(8u).has_value());
}

TEST(ServiceCatalog, WrongWidthRejected) {
  auto catalog = two_attr_catalog();
  EXPECT_THROW(catalog.add(WebService{0u, "bad", {200.0}}), mrsky::InvalidArgument);
}

TEST(ServiceCatalog, DuplicateIdRejected) {
  auto catalog = two_attr_catalog();
  catalog.add(WebService{1u, "a", {200.0, 99.0}});
  EXPECT_THROW(catalog.add(WebService{1u, "b", {300.0, 90.0}}), mrsky::InvalidArgument);
}

TEST(ServiceCatalog, OutOfSchemaRangeRejected) {
  auto catalog = two_attr_catalog();
  // ResponseTime range is [37, 4989]; Availability is [7, 100].
  EXPECT_THROW(catalog.add(WebService{0u, "fast", {1.0, 99.0}}), mrsky::InvalidArgument);
  EXPECT_THROW(catalog.add(WebService{0u, "avail", {200.0, 150.0}}), mrsky::InvalidArgument);
}

TEST(ServiceCatalog, AutoIdIsMaxPlusOne) {
  auto catalog = two_attr_catalog();
  catalog.add(WebService{10u, "a", {200.0, 99.0}});
  const data::PointId id = catalog.add("b", {300.0, 90.0});
  EXPECT_EQ(id, 11u);
}

TEST(ServiceCatalog, OrientedFlipsBenefitOnly) {
  auto catalog = two_attr_catalog();
  catalog.add(WebService{0u, "a", {200.0, 99.0}});
  const auto oriented = catalog.oriented_qos(catalog.services()[0]);
  EXPECT_DOUBLE_EQ(oriented[0], 200.0);         // cost untouched
  EXPECT_DOUBLE_EQ(oriented[1], 100.0 - 99.0);  // availability flipped to cost
}

TEST(ServiceCatalog, OrientedPointsPreserveIds) {
  auto catalog = two_attr_catalog();
  catalog.add(WebService{5u, "a", {200.0, 99.0}});
  catalog.add(WebService{9u, "b", {300.0, 80.0}});
  const auto points = catalog.to_oriented_points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points.id(0), 5u);
  EXPECT_EQ(points.id(1), 9u);
}

TEST(ServiceCatalog, BetterServiceDominatesAfterOrientation) {
  auto catalog = two_attr_catalog();
  catalog.add(WebService{0u, "fast+available", {100.0, 99.0}});
  catalog.add(WebService{1u, "slow+flaky", {900.0, 60.0}});
  const auto points = catalog.to_oriented_points();
  // After orientation the better service must dominate (smaller everywhere).
  EXPECT_LT(points.at(0, 0), points.at(1, 0));
  EXPECT_LT(points.at(0, 1), points.at(1, 1));
}

TEST(ServiceCatalog, SyntheticPopulatesWithinSchema) {
  const auto catalog = ServiceCatalog::synthetic(500, 4, 42);
  EXPECT_EQ(catalog.size(), 500u);
  EXPECT_EQ(catalog.schema().size(), 4u);
  for (const auto& s : catalog.services()) {
    for (std::size_t a = 0; a < 4; ++a) {
      EXPECT_GE(s.qos[a], catalog.schema()[a].min);
      EXPECT_LE(s.qos[a], catalog.schema()[a].max);
    }
  }
}

TEST(ServiceCatalog, SyntheticIsDeterministic) {
  const auto a = ServiceCatalog::synthetic(50, 3, 7);
  const auto b = ServiceCatalog::synthetic(50, 3, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.services()[i].qos, b.services()[i].qos);
  }
}

}  // namespace
}  // namespace mrsky::qos
