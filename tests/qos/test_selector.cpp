#include "src/qos/selector.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

#include <algorithm>

#include "src/skyline/algorithms.hpp"
#include "src/skyline/verify.hpp"

namespace mrsky::qos {
namespace {

core::MRSkylineConfig small_config() {
  core::MRSkylineConfig config;
  config.scheme = part::Scheme::kAngular;
  config.servers = 2;
  return config;
}

bool skyline_contains(const std::vector<WebService>& skyline, data::PointId id) {
  return std::any_of(skyline.begin(), skyline.end(),
                     [&](const WebService& s) { return s.id == id; });
}

TEST(SkylineServiceSelector, SkylineMatchesSequentialReference) {
  auto catalog = ServiceCatalog::synthetic(800, 4, 21);
  const auto expected = skyline::bnl_skyline(catalog.to_oriented_points());
  SkylineServiceSelector selector(std::move(catalog), small_config());
  const auto& skyline = selector.skyline();
  ASSERT_EQ(skyline.size(), expected.size());
  for (const auto& s : skyline) {
    EXPECT_TRUE(std::find(expected.ids().begin(), expected.ids().end(), s.id) !=
                expected.ids().end());
  }
}

TEST(SkylineServiceSelector, SkylineIsCachedBetweenCalls) {
  SkylineServiceSelector selector(ServiceCatalog::synthetic(200, 3, 5), small_config());
  const auto& first = selector.skyline();
  const auto& second = selector.skyline();
  EXPECT_EQ(&first, &second);
}

TEST(SkylineServiceSelector, AddDominatedServiceRejected) {
  auto catalog = ServiceCatalog(data::qws_schema(2));
  catalog.add(WebService{0u, "excellent", {50.0, 99.5}});
  SkylineServiceSelector selector(std::move(catalog), small_config());
  (void)selector.skyline();
  // Slower AND less available: dominated, must not join.
  EXPECT_FALSE(selector.add_service("poor", {4000.0, 20.0}));
  EXPECT_FALSE(skyline_contains(selector.skyline(), 1u));
}

TEST(SkylineServiceSelector, AddDominatingServiceJoinsAndEvicts) {
  auto catalog = ServiceCatalog(data::qws_schema(2));
  catalog.add(WebService{0u, "mediocre", {3000.0, 50.0}});
  SkylineServiceSelector selector(std::move(catalog), small_config());
  (void)selector.skyline();
  EXPECT_TRUE(selector.add_service("great", {100.0, 99.0}));
  const auto& skyline = selector.skyline();
  EXPECT_TRUE(skyline_contains(skyline, 1u));
  EXPECT_FALSE(skyline_contains(skyline, 0u));  // evicted
}

TEST(SkylineServiceSelector, AddIncomparableServiceCoexists) {
  auto catalog = ServiceCatalog(data::qws_schema(2));
  catalog.add(WebService{0u, "fast-flaky", {50.0, 50.0}});
  SkylineServiceSelector selector(std::move(catalog), small_config());
  (void)selector.skyline();
  EXPECT_TRUE(selector.add_service("slow-available", {3000.0, 99.9}));
  const auto& skyline = selector.skyline();
  EXPECT_TRUE(skyline_contains(skyline, 0u));
  EXPECT_TRUE(skyline_contains(skyline, 1u));
}

TEST(SkylineServiceSelector, IncrementalMatchesFullRecompute) {
  // Stream 50 services into a selector seeded with 300; final skyline must
  // equal a from-scratch computation over all 350.
  auto seed_catalog = ServiceCatalog::synthetic(350, 3, 33);
  const auto& all = seed_catalog.services();

  ServiceCatalog initial(seed_catalog.schema());
  for (std::size_t i = 0; i < 300; ++i) initial.add(all[i]);
  SkylineServiceSelector selector(std::move(initial), small_config());
  (void)selector.skyline();
  for (std::size_t i = 300; i < 350; ++i) {
    (void)selector.add_service(all[i].name, all[i].qos);
  }

  const auto expected = skyline::bnl_skyline(seed_catalog.to_oriented_points());
  std::vector<data::PointId> got;
  for (const auto& s : selector.skyline()) got.push_back(s.id);
  std::sort(got.begin(), got.end());
  std::vector<data::PointId> want(expected.ids().begin(), expected.ids().end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST(SkylineServiceSelector, IncrementalIsCheaperThanRecompute) {
  SkylineServiceSelector selector(ServiceCatalog::synthetic(2000, 4, 9), small_config());
  (void)selector.skyline();
  const auto full_tests =
      selector.last_run().partition_job.total_work_units() +
      selector.last_run().merge_job().total_work_units();
  (void)selector.add_service("newcomer", {500.0, 90.0, 10.0, 80.0});
  EXPECT_LT(selector.incremental_dominance_tests(), full_tests);
}

TEST(SkylineServiceSelector, EmptyCatalogThrowsOnQuery) {
  SkylineServiceSelector selector(ServiceCatalog(data::qws_schema(2)), small_config());
  EXPECT_THROW((void)selector.skyline(), mrsky::InvalidArgument);
}

TEST(SkylineServiceSelector, LastRunExposesMetrics) {
  SkylineServiceSelector selector(ServiceCatalog::synthetic(300, 3, 11), small_config());
  (void)selector.skyline();
  EXPECT_GT(selector.last_run().partition_job.total_work_units(), 0u);
  EXPECT_FALSE(selector.last_run().local_skylines.empty());
}

TEST(SkylineServiceSelector, WorksWithEveryScheme) {
  for (part::Scheme scheme : {part::Scheme::kDimensional, part::Scheme::kGrid,
                              part::Scheme::kAngular, part::Scheme::kPivot,
                              part::Scheme::kRandom}) {
    auto config = small_config();
    config.scheme = scheme;
    SkylineServiceSelector selector(ServiceCatalog::synthetic(400, 3, 13), config);
    const auto expected =
        skyline::bnl_skyline(selector.catalog().to_oriented_points());
    EXPECT_EQ(selector.skyline().size(), expected.size()) << part::to_string(scheme);
  }
}

}  // namespace
}  // namespace mrsky::qos
