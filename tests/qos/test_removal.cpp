// Service deregistration (SkylineServiceSelector::remove_service).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/qos/selector.hpp"
#include "src/skyline/algorithms.hpp"

namespace mrsky::qos {
namespace {

core::MRSkylineConfig small_config(part::Scheme scheme = part::Scheme::kAngular) {
  core::MRSkylineConfig config;
  config.scheme = scheme;
  config.servers = 2;
  return config;
}

bool skyline_contains(const std::vector<WebService>& skyline, data::PointId id) {
  return std::any_of(skyline.begin(), skyline.end(),
                     [&](const WebService& s) { return s.id == id; });
}

std::vector<data::PointId> expected_skyline_ids(const ServiceCatalog& catalog) {
  const auto sky = skyline::bnl_skyline(catalog.to_oriented_points());
  std::vector<data::PointId> ids(sky.ids().begin(), sky.ids().end());
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<data::PointId> selector_skyline_ids(SkylineServiceSelector& selector) {
  std::vector<data::PointId> ids;
  for (const auto& s : selector.skyline()) ids.push_back(s.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(RemoveService, UnknownIdReturnsFalse) {
  SkylineServiceSelector selector(ServiceCatalog::synthetic(100, 3, 1), small_config());
  (void)selector.skyline();
  EXPECT_FALSE(selector.remove_service(99999u));
}

TEST(RemoveService, RemovedSkylineMemberDisappears) {
  SkylineServiceSelector selector(ServiceCatalog::synthetic(500, 3, 3), small_config());
  const data::PointId victim = selector.skyline().front().id;
  EXPECT_TRUE(selector.remove_service(victim));
  EXPECT_FALSE(skyline_contains(selector.skyline(), victim));
  EXPECT_FALSE(selector.catalog().find(victim).has_value());
}

TEST(RemoveService, DominatedPointsResurface) {
  // A dominator and its unique victim: removing the dominator must bring
  // the victim into the skyline.
  ServiceCatalog catalog(data::qws_schema(2));
  catalog.add(WebService{0u, "king", {100.0, 99.0}});
  catalog.add(WebService{1u, "page", {150.0, 95.0}});  // dominated only by king
  SkylineServiceSelector selector(std::move(catalog), small_config());
  EXPECT_FALSE(skyline_contains(selector.skyline(), 1u));
  EXPECT_TRUE(selector.remove_service(0u));
  EXPECT_TRUE(skyline_contains(selector.skyline(), 1u));
}

TEST(RemoveService, MatchesBatchRecomputeAfterManyRemovals) {
  auto catalog = ServiceCatalog::synthetic(600, 3, 7);
  SkylineServiceSelector selector(catalog, small_config());
  (void)selector.skyline();
  // Remove every third id that exists, skyline members included.
  for (data::PointId id = 0; id < 600; id += 3) {
    (void)selector.remove_service(id);
    (void)catalog.remove(id);
  }
  EXPECT_EQ(selector_skyline_ids(selector), expected_skyline_ids(catalog));
}

TEST(RemoveService, GridPruningSurvivesCellEmptying) {
  // Grid scheme with a dominating cell of ONE point: deleting it must let
  // the pruned cell's points resurface.
  ServiceCatalog catalog(data::qws_schema(2));
  // Schema ranges: ResponseTime [37,4989], Availability [7,100].
  catalog.add(WebService{0u, "dominator", {100.0, 99.0}});   // near-origin cell
  catalog.add(WebService{1u, "corner-a", {4800.0, 10.0}});   // far cell
  catalog.add(WebService{2u, "corner-b", {4900.0, 9.0}});    // far cell
  // Pins so the grid covers the full range in both dims.
  catalog.add(WebService{3u, "pin-x", {4989.0, 99.9}});
  catalog.add(WebService{4u, "pin-y", {37.0, 7.0}});

  auto config = small_config(part::Scheme::kGrid);
  config.num_partitions = 4;
  SkylineServiceSelector selector(catalog, config);
  (void)selector.skyline();

  for (data::PointId id : {4u, 0u}) {  // remove both near-origin services
    (void)selector.remove_service(id);
    (void)catalog.remove(id);
  }
  EXPECT_EQ(selector_skyline_ids(selector), expected_skyline_ids(catalog));
}

TEST(RemoveService, InterleavedAddAndRemoveStaysConsistent) {
  auto reference = ServiceCatalog::synthetic(400, 3, 11);
  const auto& all = reference.services();
  ServiceCatalog initial(reference.schema());
  for (std::size_t i = 0; i < 300; ++i) initial.add(all[i]);

  SkylineServiceSelector selector(std::move(initial), small_config());
  (void)selector.skyline();

  ServiceCatalog shadow(reference.schema());
  for (std::size_t i = 0; i < 300; ++i) shadow.add(all[i]);

  for (std::size_t i = 300; i < 400; ++i) {
    (void)selector.add_service(all[i].name, all[i].qos);
    shadow.add(WebService{static_cast<data::PointId>(i), all[i].name, all[i].qos});
    if (i % 2 == 0) {
      const data::PointId victim = static_cast<data::PointId>(i - 300);
      (void)selector.remove_service(victim);
      (void)shadow.remove(victim);
    }
  }
  EXPECT_EQ(selector_skyline_ids(selector), expected_skyline_ids(shadow));
}

TEST(RemoveService, RemovingNonSkylinePointKeepsSkyline) {
  auto catalog = ServiceCatalog::synthetic(500, 3, 13);
  SkylineServiceSelector selector(catalog, small_config());
  const auto before = selector_skyline_ids(selector);
  // Find a non-skyline id.
  data::PointId victim = 0;
  for (const auto& s : catalog.services()) {
    if (!std::binary_search(before.begin(), before.end(), s.id)) {
      victim = s.id;
      break;
    }
  }
  EXPECT_TRUE(selector.remove_service(victim));
  EXPECT_EQ(selector_skyline_ids(selector), before);
}

}  // namespace
}  // namespace mrsky::qos
