// server wire protocol — request parsing across both syntaxes, response
// rendering, and the %.17g double round-trip the bitwise guarantee rests on.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <string>
#include <variant>
#include <vector>

#include "src/common/error.hpp"
#include "src/server/protocol.hpp"

namespace mrsky {
namespace {

using server::parse_request;
using server::Request;

constexpr std::size_t kDim = 4;

TEST(Protocol, BlankAndCommentLinesAreNoRequests) {
  EXPECT_FALSE(parse_request("", kDim).has_value());
  EXPECT_FALSE(parse_request("   \t  ", kDim).has_value());
  EXPECT_FALSE(parse_request("# a comment", kDim).has_value());
  EXPECT_FALSE(parse_request("   # indented comment", kDim).has_value());
}

TEST(Protocol, ParsesMrqSyntax) {
  const auto skyline = parse_request("skyline", kDim);
  ASSERT_TRUE(skyline.has_value());
  const auto& q = std::get<service::Query>(*skyline);
  EXPECT_TRUE(std::holds_alternative<service::SkylineQuery>(q));

  const auto skyband = parse_request("skyband 3", kDim);
  EXPECT_EQ(std::get<service::KSkybandQuery>(std::get<service::Query>(*skyband)).k, 3u);

  const auto insert = parse_request("insert extra.csv", kDim);
  EXPECT_EQ(std::get<service::InsertCommand>(*insert).path, "extra.csv");
}

TEST(Protocol, ParsesBareControlVerbs) {
  EXPECT_TRUE(std::holds_alternative<server::MetricsRequest>(*parse_request("metrics", kDim)));
  EXPECT_TRUE(std::holds_alternative<server::StatsRequest>(*parse_request("stats", kDim)));
  EXPECT_TRUE(std::holds_alternative<server::QuitRequest>(*parse_request("quit", kDim)));
}

TEST(Protocol, ParsesJsonQueries) {
  const auto skyline = parse_request(R"({"query":"skyline"})", kDim);
  EXPECT_TRUE(std::holds_alternative<service::SkylineQuery>(std::get<service::Query>(*skyline)));

  const auto subspace = parse_request(R"({"query":"subspace","attributes":[0,2]})", kDim);
  EXPECT_EQ(std::get<service::SubspaceQuery>(std::get<service::Query>(*subspace)).attributes,
            (std::vector<std::size_t>{0, 2}));

  const auto topk = parse_request(R"({"query":"topk","k":5,"weights":[0.25,0.25,0.25,0.25]})", kDim);
  const auto& tq = std::get<service::TopKWeightedQuery>(std::get<service::Query>(*topk));
  EXPECT_EQ(tq.k, 5u);
  EXPECT_EQ(tq.weights.size(), 4u);

  const auto rep = parse_request(R"({"query":"representative","k":7})", kDim);
  EXPECT_EQ(std::get<service::RepresentativeQuery>(std::get<service::Query>(*rep)).k, 7u);

  EXPECT_TRUE(std::holds_alternative<server::QuitRequest>(
      *parse_request(R"({"command":"quit"})", kDim)));
}

TEST(Protocol, ParsesJsonInserts) {
  const auto file = parse_request(R"({"insert":"extra.csv"})", kDim);
  EXPECT_EQ(std::get<service::InsertCommand>(*file).path, "extra.csv");

  const auto inline_rows = parse_request(R"({"insert":[[0.1,0.2,0.3,0.4],[1,2,3,4]]})", kDim);
  const auto& batch = std::get<server::InsertInline>(*inline_rows);
  ASSERT_EQ(batch.points.size(), 2u);
  EXPECT_EQ(batch.points.dim(), kDim);
  EXPECT_DOUBLE_EQ(batch.points.point(1)[2], 3.0);
}

TEST(Protocol, RejectsMalformedRequests) {
  // JSON problems surface as InvalidArgument — the session answers with an
  // error line instead of dropping the connection.
  EXPECT_THROW((void)parse_request(R"({"query":"warp"})", kDim), InvalidArgument);
  EXPECT_THROW((void)parse_request(R"({"insert":[[0.1,0.2]]})", kDim), InvalidArgument);  // dim
  EXPECT_THROW((void)parse_request(R"({"query":"skyband"})", kDim), InvalidArgument);  // no k
  EXPECT_THROW((void)parse_request(R"({"query":"skyband","k":2.5})", kDim), InvalidArgument);
  EXPECT_THROW((void)parse_request(R"({"nonsense":1})", kDim), InvalidArgument);
  EXPECT_THROW((void)parse_request("{broken json", kDim), InvalidArgument);
  EXPECT_THROW((void)parse_request("warp 9", kDim), InvalidArgument);
  EXPECT_THROW((void)parse_request(R"({"command":"reboot"})", kDim), InvalidArgument);
}

TEST(Protocol, DoubleReprRoundTripsExactly) {
  const double values[] = {0.0,
                           -0.0,
                           1.0 / 3.0,
                           0.1 + 0.2,
                           std::numeric_limits<double>::min(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max(),
                           -12345.678901234567};
  for (const double v : values) {
    const double back = std::strtod(server::double_repr(v).c_str(), nullptr);
    EXPECT_EQ(back, v) << server::double_repr(v);
  }
}

TEST(Protocol, ResponseBuildersEmitSingleLines) {
  const std::string err = server::error_line("bad \"quoted\" thing\nline2");
  EXPECT_EQ(err.find('\n'), std::string::npos);
  EXPECT_EQ(err.rfind("{\"ok\":false", 0), 0u);

  const std::string hello = server::hello_line(3, 7, 100, 4);
  EXPECT_NE(hello.find("\"session\":3"), std::string::npos);
  EXPECT_NE(hello.find("\"version\":7"), std::string::npos);

  EXPECT_NE(server::insert_line(16, 2).find("\"inserted\":16"), std::string::npos);
}

TEST(Protocol, ResultLineCarriesKindVersionAndPoints) {
  service::QueryResult result;
  result.points = data::PointSet(2);
  const std::vector<double> coords{0.5, 0.25};
  result.points.push_back(coords, 42);
  result.metrics.dataset_version = 9;
  result.metrics.result_points = 1;
  const std::string line =
      server::result_line(service::Query{service::SkylineQuery{}}, result);
  EXPECT_NE(line.find("\"kind\":\"skyline\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"version\":9"), std::string::npos) << line;
  EXPECT_NE(line.find("[42,0.5,0.25]"), std::string::npos) << line;
  EXPECT_NE(line.find("\"metrics\":{"), std::string::npos) << line;
}

}  // namespace
}  // namespace mrsky
