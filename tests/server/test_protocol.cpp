// server wire protocol — request parsing across both syntaxes, response
// rendering, and the %.17g double round-trip the bitwise guarantee rests on.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <string>
#include <variant>
#include <vector>

#include "src/common/error.hpp"
#include "src/server/protocol.hpp"

namespace mrsky {
namespace {

using server::parse_request;
using server::Request;

constexpr std::size_t kDim = 4;

TEST(Protocol, BlankAndCommentLinesAreNoRequests) {
  EXPECT_FALSE(parse_request("", kDim).has_value());
  EXPECT_FALSE(parse_request("   \t  ", kDim).has_value());
  EXPECT_FALSE(parse_request("# a comment", kDim).has_value());
  EXPECT_FALSE(parse_request("   # indented comment", kDim).has_value());
}

TEST(Protocol, ParsesMrqSyntax) {
  const auto skyline = parse_request("skyline", kDim);
  ASSERT_TRUE(skyline.has_value());
  const auto& q = std::get<service::Query>(*skyline);
  EXPECT_TRUE(std::holds_alternative<service::SkylineQuery>(q));

  const auto skyband = parse_request("skyband 3", kDim);
  EXPECT_EQ(std::get<service::KSkybandQuery>(std::get<service::Query>(*skyband)).k, 3u);

  const auto insert = parse_request("insert extra.csv", kDim);
  EXPECT_EQ(std::get<service::InsertCommand>(*insert).path, "extra.csv");
}

TEST(Protocol, ParsesBareControlVerbs) {
  EXPECT_TRUE(std::holds_alternative<server::MetricsRequest>(*parse_request("metrics", kDim)));
  EXPECT_TRUE(std::holds_alternative<server::StatsRequest>(*parse_request("stats", kDim)));
  EXPECT_TRUE(std::holds_alternative<server::QuitRequest>(*parse_request("quit", kDim)));
}

TEST(Protocol, ParsesJsonQueries) {
  const auto skyline = parse_request(R"({"query":"skyline"})", kDim);
  EXPECT_TRUE(std::holds_alternative<service::SkylineQuery>(std::get<service::Query>(*skyline)));

  const auto subspace = parse_request(R"({"query":"subspace","attributes":[0,2]})", kDim);
  EXPECT_EQ(std::get<service::SubspaceQuery>(std::get<service::Query>(*subspace)).attributes,
            (std::vector<std::size_t>{0, 2}));

  const auto topk = parse_request(R"({"query":"topk","k":5,"weights":[0.25,0.25,0.25,0.25]})", kDim);
  const auto& tq = std::get<service::TopKWeightedQuery>(std::get<service::Query>(*topk));
  EXPECT_EQ(tq.k, 5u);
  EXPECT_EQ(tq.weights.size(), 4u);

  const auto rep = parse_request(R"({"query":"representative","k":7})", kDim);
  EXPECT_EQ(std::get<service::RepresentativeQuery>(std::get<service::Query>(*rep)).k, 7u);

  EXPECT_TRUE(std::holds_alternative<server::QuitRequest>(
      *parse_request(R"({"command":"quit"})", kDim)));
}

TEST(Protocol, ParsesJsonInserts) {
  const auto file = parse_request(R"({"insert":"extra.csv"})", kDim);
  EXPECT_EQ(std::get<service::InsertCommand>(*file).path, "extra.csv");

  const auto inline_rows = parse_request(R"({"insert":[[0.1,0.2,0.3,0.4],[1,2,3,4]]})", kDim);
  const auto& batch = std::get<server::InsertInline>(*inline_rows);
  ASSERT_EQ(batch.points.size(), 2u);
  EXPECT_EQ(batch.points.dim(), kDim);
  EXPECT_DOUBLE_EQ(batch.points.point(1)[2], 3.0);
}

TEST(Protocol, RejectsMalformedRequests) {
  // JSON problems surface as InvalidArgument — the session answers with an
  // error line instead of dropping the connection.
  EXPECT_THROW((void)parse_request(R"({"query":"warp"})", kDim), InvalidArgument);
  EXPECT_THROW((void)parse_request(R"({"insert":[[0.1,0.2]]})", kDim), InvalidArgument);  // dim
  EXPECT_THROW((void)parse_request(R"({"query":"skyband"})", kDim), InvalidArgument);  // no k
  EXPECT_THROW((void)parse_request(R"({"query":"skyband","k":2.5})", kDim), InvalidArgument);
  EXPECT_THROW((void)parse_request(R"({"nonsense":1})", kDim), InvalidArgument);
  EXPECT_THROW((void)parse_request("{broken json", kDim), InvalidArgument);
  EXPECT_THROW((void)parse_request("warp 9", kDim), InvalidArgument);
  EXPECT_THROW((void)parse_request(R"({"command":"reboot"})", kDim), InvalidArgument);
}

TEST(Protocol, DoubleReprRoundTripsExactly) {
  const double values[] = {0.0,
                           -0.0,
                           1.0 / 3.0,
                           0.1 + 0.2,
                           std::numeric_limits<double>::min(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max(),
                           -12345.678901234567};
  for (const double v : values) {
    const double back = std::strtod(server::double_repr(v).c_str(), nullptr);
    EXPECT_EQ(back, v) << server::double_repr(v);
  }
}

TEST(Protocol, ResponseBuildersEmitSingleLines) {
  const std::string err = server::error_line("bad \"quoted\" thing\nline2");
  EXPECT_EQ(err.find('\n'), std::string::npos);
  EXPECT_EQ(err.rfind("{\"ok\":false", 0), 0u);

  const std::string hello = server::hello_line(3, 7, 100, 4);
  EXPECT_NE(hello.find("\"session\":3"), std::string::npos);
  EXPECT_NE(hello.find("\"version\":7"), std::string::npos);

  EXPECT_NE(server::insert_line(16, 2).find("\"inserted\":16"), std::string::npos);
}

TEST(Protocol, ResultLineCarriesKindVersionAndPoints) {
  service::QueryResult result;
  result.points = data::PointSet(2);
  const std::vector<double> coords{0.5, 0.25};
  result.points.push_back(coords, 42);
  result.metrics.dataset_version = 9;
  result.metrics.result_points = 1;
  const std::string line =
      server::result_line(service::Query{service::SkylineQuery{}}, result);
  EXPECT_NE(line.find("\"kind\":\"skyline\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"version\":9"), std::string::npos) << line;
  EXPECT_NE(line.find("[42,0.5,0.25]"), std::string::npos) << line;
  EXPECT_NE(line.find("\"metrics\":{"), std::string::npos) << line;
}

TEST(Protocol, ParsesMrqDeadlineSuffix) {
  const auto bare = server::parse_request_line("skyline", kDim);
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->deadline_ms, -1);  // absent, not zero

  const auto skyband = server::parse_request_line("skyband 3 deadline=50", kDim);
  ASSERT_TRUE(skyband.has_value());
  EXPECT_EQ(skyband->deadline_ms, 50);
  EXPECT_EQ(std::get<service::KSkybandQuery>(std::get<service::Query>(skyband->request)).k, 3u);

  const auto zero = server::parse_request_line("skyline deadline=0", kDim);
  ASSERT_TRUE(zero.has_value());
  EXPECT_EQ(zero->deadline_ms, 0);  // 0 = expired on arrival, distinct from absent

  // Control verbs take a deadline token too (it is simply unused).
  const auto stats = server::parse_request_line("stats deadline=10", kDim);
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(std::holds_alternative<server::StatsRequest>(stats->request));
  EXPECT_EQ(stats->deadline_ms, 10);
}

TEST(Protocol, ParsesJsonDeadlineKey) {
  const auto q = server::parse_request_line(R"({"query":"skyline","deadline_ms":250})", kDim);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->deadline_ms, 250);
  EXPECT_TRUE(std::holds_alternative<service::SkylineQuery>(std::get<service::Query>(q->request)));

  const auto absent = server::parse_request_line(R"({"query":"skyline"})", kDim);
  ASSERT_TRUE(absent.has_value());
  EXPECT_EQ(absent->deadline_ms, -1);

  EXPECT_THROW((void)server::parse_request_line(R"({"query":"skyline","deadline_ms":-5})", kDim),
               InvalidArgument);
  EXPECT_THROW((void)server::parse_request_line(R"({"query":"skyline","deadline_ms":1.5})", kDim),
               InvalidArgument);
}

TEST(Protocol, MalformedDeadlineSuffixIsAnError) {
  // A dangling `deadline=` or garbage value must not silently parse as a
  // query argument for the script grammar to trip over later.
  EXPECT_THROW((void)server::parse_request_line("skyline deadline=abc", kDim), std::exception);
  EXPECT_THROW((void)server::parse_request_line("deadline=5", kDim), std::exception);
}

TEST(Protocol, OversizedRequestRejectedBeforeParsing) {
  const std::string big = "{\"query\":\"skyline\",\"pad\":\"" + std::string(4096, 'x') + "\"}";
  try {
    (void)server::parse_request_line(big, kDim, 256);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    // The diagnostic names both sizes and the byte offset of the cap — the
    // client can see exactly where its line crossed the line.
    EXPECT_NE(what.find(std::to_string(big.size())), std::string::npos) << what;
    EXPECT_NE(what.find("byte offset 256"), std::string::npos) << what;
  }
  // Under the cap: parses normally.
  EXPECT_TRUE(server::parse_request_line(R"({"query":"skyline"})", kDim, 256).has_value());
}

TEST(Protocol, CancelledAndShedLinesAreStructured) {
  const std::string deadline = server::cancelled_line("deadline expired in merge round 2", true);
  EXPECT_EQ(deadline.rfind("{\"ok\":false", 0), 0u) << deadline;
  EXPECT_NE(deadline.find("\"cancelled\":true"), std::string::npos) << deadline;
  EXPECT_NE(deadline.find("\"reason\":\"deadline\""), std::string::npos) << deadline;

  const std::string cancel = server::cancelled_line("server draining", false);
  EXPECT_NE(cancel.find("\"reason\":\"cancelled\""), std::string::npos) << cancel;

  const std::string shed = server::shed_line(8, 25);
  EXPECT_NE(shed.find("capacity"), std::string::npos) << shed;
  EXPECT_NE(shed.find("\"shed\":true"), std::string::npos) << shed;
  EXPECT_NE(shed.find("\"retry_after_ms\":25"), std::string::npos) << shed;
  EXPECT_EQ(shed.find('\n'), std::string::npos);
}

// Seeded random-bytes fuzz over the protocol surface (ISSUE 7 satellite).
// Every input — pure noise, noise with a JSON prefix, or a mutated valid
// request — must either parse or throw a typed error. No crash, no hang, no
// uncontained exception type: the session layer turns exactly these throws
// into one error line per malformed input.
TEST(ProtocolFuzz, RandomBytesNeverEscapeTypedErrors) {
  std::uint64_t state = 0x9E3779B97F4A7C15ull;  // splitmix64, fixed seed
  const auto next = [&state]() {
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  };
  const std::vector<std::string> seeds = {
      "skyline", "skyband 3", "subspace 0,2", "topk 5 0.5,0.5,0.5,0.5",
      R"({"query":"skyline"})", R"({"query":"skyband","k":3,"deadline_ms":10})",
      R"({"insert":[[0.1,0.2,0.3,0.4]]})", "skyline deadline=25", "stats", "metrics"};
  std::size_t parsed = 0;
  std::size_t rejected = 0;
  for (std::size_t iter = 0; iter < 3000; ++iter) {
    std::string line;
    const std::uint64_t mode = next() % 3;
    if (mode == 0) {
      // Pure random bytes (newline excluded — the framing layer owns it).
      const std::size_t len = next() % 128;
      for (std::size_t i = 0; i < len; ++i) {
        char c = static_cast<char>(next() & 0xFF);
        if (c == '\n') c = ' ';
        line.push_back(c);
      }
    } else if (mode == 1) {
      // Random bytes behind a JSON-ish prefix: exercises the DOM parser.
      line = "{\"query\":";
      const std::size_t len = next() % 64;
      for (std::size_t i = 0; i < len; ++i) {
        char c = static_cast<char>(next() & 0xFF);
        if (c == '\n') c = ' ';
        line.push_back(c);
      }
    } else {
      // Mutate a valid request: flip, insert, or truncate.
      line = seeds[next() % seeds.size()];
      const std::uint64_t op = next() % 3;
      if (op == 0 && !line.empty()) {
        line[next() % line.size()] = static_cast<char>(next() & 0x7F);
      } else if (op == 1) {
        line.insert(line.begin() + static_cast<std::ptrdiff_t>(next() % (line.size() + 1)),
                    static_cast<char>(next() & 0x7F));
      } else if (!line.empty()) {
        line.resize(next() % line.size());
      }
    }
    try {
      const auto envelope = server::parse_request_line(line, kDim, 512);
      if (envelope.has_value()) {
        ++parsed;
        EXPECT_GE(envelope->deadline_ms, -1);
      }
    } catch (const InvalidArgument&) {
      ++rejected;  // typed rejection: exactly what the session contains
    } catch (const RuntimeError&) {
      ++rejected;
    }
    // Anything else (std::bad_alloc, segfault, std::logic_error...) escapes
    // and fails the test — that is the point.
  }
  // The corpus genuinely exercises both paths.
  EXPECT_GT(parsed, 0u);
  EXPECT_GT(rejected, 100u);
}

}  // namespace
}  // namespace mrsky
