// server::Session (transport-free) and server::SkylineServer (real loopback
// TCP) — the multi-session serving layer over one shared QueryEngine:
// greeting, request/response across both syntaxes, error containment,
// admission control, per-session metrics, and connect/disconnect churn
// against concurrent inserts (ISSUE 6 tentpole).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/dataset/generators.hpp"
#include "src/server/client.hpp"
#include "src/server/server.hpp"
#include "src/server/session.hpp"
#include "src/service/query_engine.hpp"

namespace mrsky {
namespace {

data::PointSet workload(std::size_t n = 250, std::size_t dim = 3, std::uint64_t seed = 42) {
  return data::generate(data::Distribution::kAnticorrelated, n, dim, seed);
}

bool ok(const std::string& response) { return response.rfind("{\"ok\":true", 0) == 0; }

std::string strip_metrics(const std::string& response) {
  const std::size_t pos = response.rfind(",\"metrics\":");
  return pos == std::string::npos ? response : response.substr(0, pos) + "}";
}

TEST(Session, GreetingDescribesSnapshot) {
  service::QueryEngine engine(workload(), {});
  server::Session session(7, engine, "");
  const std::string hello = session.greeting();
  EXPECT_NE(hello.find("\"session\":7"), std::string::npos) << hello;
  EXPECT_NE(hello.find("\"version\":0"), std::string::npos) << hello;
  EXPECT_NE(hello.find("\"points\":250"), std::string::npos) << hello;
  EXPECT_NE(hello.find("\"dim\":3"), std::string::npos) << hello;
}

TEST(Session, AnswersQueriesInBothSyntaxes) {
  service::QueryEngine engine(workload(), {});
  server::Session session(1, engine, "");
  bool quit = false;
  const std::string mrq = session.handle_line("skyline", quit);
  EXPECT_TRUE(ok(mrq)) << mrq;
  EXPECT_FALSE(quit);
  const std::string json = session.handle_line(R"({"query":"skyline"})", quit);
  // Same query, same snapshot — identical payload regardless of syntax.
  EXPECT_EQ(strip_metrics(mrq), strip_metrics(json));
  EXPECT_EQ(session.metrics().queries, 2u);
  EXPECT_EQ(session.metrics().cache_hits, 1u);
}

TEST(Session, BlankAndCommentLinesGetNoResponse) {
  service::QueryEngine engine(workload(), {});
  server::Session session(1, engine, "");
  bool quit = false;
  EXPECT_EQ(session.handle_line("", quit), "");
  EXPECT_EQ(session.handle_line("  # comment", quit), "");
  EXPECT_EQ(session.metrics().requests, 0u);
}

TEST(Session, ErrorsBecomeResponsesNotThrows) {
  service::QueryEngine engine(workload(), {});
  server::Session session(1, engine, "");
  bool quit = false;
  const std::string bad = session.handle_line("warp 9", quit);
  EXPECT_EQ(bad.rfind("{\"ok\":false", 0), 0u) << bad;
  EXPECT_FALSE(quit);
  const std::string bad_json = session.handle_line(R"({"query":"skyband","k":-1})", quit);
  EXPECT_EQ(bad_json.rfind("{\"ok\":false", 0), 0u) << bad_json;
  EXPECT_EQ(session.metrics().errors, 2u);
  EXPECT_EQ(session.metrics().requests, 2u);
}

TEST(Session, InlineInsertAdvancesVersion) {
  service::QueryEngine engine(workload(), {});
  server::Session session(1, engine, "");
  bool quit = false;
  const std::string response =
      session.handle_line(R"({"insert":[[0.5,0.5,0.5],[0.1,0.9,0.2]]})", quit);
  EXPECT_TRUE(ok(response)) << response;
  EXPECT_NE(response.find("\"inserted\":2"), std::string::npos) << response;
  EXPECT_NE(response.find("\"version\":1"), std::string::npos) << response;
  EXPECT_EQ(engine.version(), 1u);
  EXPECT_EQ(session.metrics().points_inserted, 2u);
}

TEST(Session, QuitEndsSessionAndMetricsReport) {
  service::QueryEngine engine(workload(), {});
  server::Session session(1, engine, "");
  bool quit = false;
  (void)session.handle_line("skyline", quit);
  const std::string metrics = session.handle_line("metrics", quit);
  EXPECT_NE(metrics.find("\"queries\":1"), std::string::npos) << metrics;
  const std::string stats = session.handle_line("stats", quit);
  EXPECT_NE(stats.find("\"pipeline_runs\":1"), std::string::npos) << stats;
  EXPECT_FALSE(quit);
  const std::string bye = session.handle_line("quit", quit);
  EXPECT_TRUE(quit);
  EXPECT_NE(bye.find("\"bye\":1"), std::string::npos) << bye;
}

TEST(SkylineServer, ServesConcurrentSessionsIdentically) {
  service::QueryEngine engine(workload(), {});
  server::ServerOptions options;
  options.max_sessions = 4;
  server::SkylineServer srv(engine, options);
  srv.start();
  ASSERT_GT(srv.port(), 0);

  constexpr std::size_t kClients = 4;
  std::vector<std::string> payloads(kClients);
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      server::LineClient client;
      client.connect("127.0.0.1", srv.port());
      ASSERT_TRUE(client.recv_line().has_value());  // greeting
      const auto response = client.request("skyline");
      ASSERT_TRUE(response.has_value());
      payloads[c] = strip_metrics(*response);
      (void)client.request("quit");
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t c = 1; c < kClients; ++c) EXPECT_EQ(payloads[c], payloads[0]);
  EXPECT_TRUE(ok(payloads[0])) << payloads[0];

  srv.stop();
  EXPECT_EQ(srv.stats().accepted, kClients);
  EXPECT_EQ(srv.completed_sessions().size(), kClients);
}

TEST(SkylineServer, RejectsConnectionsAtCapacity) {
  service::QueryEngine engine(workload(), {});
  server::ServerOptions options;
  options.max_sessions = 1;
  server::SkylineServer srv(engine, options);
  srv.start();

  server::LineClient first;
  first.connect("127.0.0.1", srv.port());
  ASSERT_TRUE(first.recv_line().has_value());

  server::LineClient second;
  second.connect("127.0.0.1", srv.port());
  const auto rejection = second.recv_line();
  ASSERT_TRUE(rejection.has_value());
  EXPECT_NE(rejection->find("capacity"), std::string::npos) << *rejection;
  EXPECT_FALSE(second.recv_line().has_value());  // rejected connections close

  // Ending the first session frees the slot; a retry gets in.
  (void)first.request("quit");
  bool admitted = false;
  for (int attempt = 0; attempt < 100 && !admitted; ++attempt) {
    server::LineClient retry;
    retry.connect("127.0.0.1", srv.port());
    const auto line = retry.recv_line();
    if (line.has_value() && ok(*line)) {
      admitted = true;
      (void)retry.request("quit");
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(admitted);
  srv.stop();
  EXPECT_GE(srv.stats().rejected, 1u);
}

TEST(SkylineServer, StopUnblocksLiveConnections) {
  service::QueryEngine engine(workload(), {});
  server::SkylineServer srv(engine, {});
  srv.start();
  server::LineClient client;
  client.connect("127.0.0.1", srv.port());
  ASSERT_TRUE(client.recv_line().has_value());
  std::thread stopper([&] { srv.stop(); });
  // The blocked read must end (EOF), not hang, once the server shuts down.
  EXPECT_FALSE(client.recv_line().has_value());
  stopper.join();
}

TEST(SkylineServer, SessionChurnAgainstConcurrentInserts) {
  service::QueryEngine engine(workload(400, 3), {});
  server::ServerOptions options;
  options.max_sessions = 8;
  server::SkylineServer srv(engine, options);
  srv.start();

  // Sessions connect, fire a few mixed requests, and disconnect — while two
  // of them interleave inserts. Everything must answer ok; TSan referees.
  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kRounds = 3;
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> failures{0};
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        server::LineClient client;
        client.connect("127.0.0.1", srv.port());
        if (!client.recv_line().has_value()) {
          ++failures;
          continue;
        }
        const char* requests[] = {"skyline", "skyband 2", "subspace 0,1"};
        for (const char* request : requests) {
          const auto response = client.request(request);
          if (!response.has_value() || !ok(*response)) ++failures;
        }
        if (t < 2) {
          const auto response = client.request(R"({"insert":[[0.4,0.4,0.4]]})");
          if (!response.has_value() || !ok(*response)) ++failures;
        }
        (void)client.request("quit");
      }
    });
  }
  for (auto& t : threads) t.join();
  srv.stop();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(engine.version(), 2u * kRounds);
  EXPECT_EQ(srv.completed_sessions().size(), kThreads * kRounds);
}

}  // namespace
}  // namespace mrsky
