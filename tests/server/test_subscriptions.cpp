// Standing continuous-skyline subscriptions (ISSUE 9): concurrent
// subscribers racing apply_batch at the engine level, the subscribe /
// delta / unsubscribe wire protocol over real loopback TCP, and the drain
// path killing a live subscription with a typed cancelled line. The engine
// tests are the TSan targets — scripts/ci_sanitize.sh runs this suite under
// -fsanitize=thread; every replica assertion is a bitwise one.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/json.hpp"
#include "src/common/rng.hpp"
#include "src/dataset/generators.hpp"
#include "src/server/client.hpp"
#include "src/server/server.hpp"
#include "src/server/session.hpp"
#include "src/service/query_engine.hpp"

namespace mrsky {
namespace {

data::PointSet workload(std::size_t n = 200, std::size_t dim = 3, std::uint64_t seed = 99) {
  return data::generate(data::Distribution::kAnticorrelated, n, dim, seed);
}

/// The exact bits of a skyline, in output order.
struct SkylineBits {
  std::vector<data::PointId> ids;
  std::vector<std::uint64_t> coord_bits;

  SkylineBits() = default;
  explicit SkylineBits(const data::PointSet& sky) {
    for (std::size_t i = 0; i < sky.size(); ++i) {
      ids.push_back(sky.id(i));
      for (double c : sky.point(i)) coord_bits.push_back(std::bit_cast<std::uint64_t>(c));
    }
  }
  bool operator==(const SkylineBits&) const = default;
};

/// Subscriber-side replica: ascending-id map, so skyline() is canonical.
class Replica {
 public:
  Replica() = default;
  explicit Replica(const data::PointSet& base) { reset(base); }

  void reset(const data::PointSet& base) {
    points_.clear();
    for (std::size_t i = 0; i < base.size(); ++i) {
      const auto p = base.point(i);
      points_.emplace(base.id(i), std::vector<double>(p.begin(), p.end()));
    }
  }

  void apply(const service::StreamDelta& delta) {
    for (data::PointId id : delta.left) points_.erase(id);
    for (std::size_t i = 0; i < delta.entered.size(); ++i) {
      const auto p = delta.entered.point(i);
      points_.emplace(delta.entered.id(i), std::vector<double>(p.begin(), p.end()));
    }
  }

  [[nodiscard]] SkylineBits bits(std::size_t dim) const {
    data::PointSet ps(dim);
    for (const auto& [id, coords] : points_) ps.push_back(coords, id);
    return SkylineBits(ps);
  }

 private:
  std::map<data::PointId, std::vector<double>> points_;
};

/// A deterministic mutation stream for the concurrency tests.
std::vector<service::MutationBatch> make_schedule(std::size_t ticks, std::size_t dim,
                                                  std::size_t initial_n, std::uint64_t seed) {
  common::Rng rng(seed);
  const data::PointSet pool =
      data::generate(data::Distribution::kIndependent, ticks * 4, dim, seed + 1);
  std::vector<service::MutationBatch> schedule(ticks);
  std::size_t next_row = 0;
  std::size_t assigned = initial_n;
  for (std::size_t t = 0; t < ticks; ++t) {
    service::MutationBatch& batch = schedule[t];
    batch.inserts = data::PointSet(dim);
    const std::size_t inserts = 1 + rng.uniform_index(3);
    for (std::size_t i = 0; i < inserts; ++i, ++next_row) {
      batch.inserts.push_back(pool.point(next_row), pool.id(next_row));
      batch.ttl_ticks.push_back(rng.uniform() < 0.25
                                    ? static_cast<std::int64_t>(1 + rng.uniform_index(4))
                                    : 0);
    }
    for (std::size_t i = 0; i < rng.uniform_index(3); ++i) {
      batch.deletes.push_back(static_cast<data::PointId>(rng.uniform_index(assigned)));
    }
    assigned += inserts;
  }
  return schedule;
}

// ---------------------------------------------------------------------------
// Engine level (TSan targets)
// ---------------------------------------------------------------------------

TEST(Subscriptions, ConcurrentSubscribersReplayEveryVersionBitwise) {
  const std::size_t kDim = 3;
  const std::size_t kTicks = 60;
  const std::size_t kSubscribers = 4;
  service::QueryEngine engine(workload(150, kDim), {});
  const auto schedule = make_schedule(kTicks, kDim, 150, 0xabcdu);

  // The writer records the published skyline of every version; subscribers
  // check their replicas against this ledger. Versions start at 1.
  std::vector<SkylineBits> ledger(kTicks + 1);
  std::atomic<std::uint64_t> final_version{0};

  std::thread writer([&] {
    for (const auto& batch : schedule) {
      const service::ApplyResult r = engine.apply_batch(batch);
      ledger[r.delta.version] = SkylineBits(*r.snapshot->full_skyline);
      final_version.store(r.delta.version, std::memory_order_release);
    }
  });

  // Subscribers record every (version, replica-bits) pair they produce; the
  // ledger comparison happens on the main thread AFTER both sides join, so
  // the test itself never races the writer's ledger stores.
  std::vector<std::thread> subscribers;
  std::vector<std::string> failures(kSubscribers);
  std::vector<std::vector<std::pair<std::uint64_t, SkylineBits>>> seen(kSubscribers);
  for (std::size_t s = 0; s < kSubscribers; ++s) {
    subscribers.emplace_back([&, s] {
      // Staggered registration: later subscribers join mid-stream, so their
      // base skyline already covers a prefix of the versions.
      std::this_thread::sleep_for(std::chrono::milliseconds(s * 3));
      const service::StreamSubscriptionPtr sub = engine.subscribe();
      Replica replica(sub->base_skyline());
      std::uint64_t version = sub->base_version();
      while (version < kTicks) {
        const std::optional<service::StreamDelta> delta = sub->next(/*timeout_ms=*/2000);
        if (!delta.has_value()) break;  // writer finished and queue drained
        if (delta->version != version + 1) {
          failures[s] = "version gap: " + std::to_string(version) + " -> " +
                        std::to_string(delta->version);
          return;
        }
        version = delta->version;
        replica.apply(*delta);
        seen[s].emplace_back(version, replica.bits(kDim));
      }
      if (version != kTicks) {
        failures[s] = "stopped at version " + std::to_string(version) + " of " +
                      std::to_string(kTicks);
        return;
      }
      if (sub->lagged()) failures[s] = "subscription lagged";
    });
  }

  writer.join();
  for (auto& t : subscribers) t.join();
  for (std::size_t s = 0; s < kSubscribers; ++s) {
    EXPECT_EQ(failures[s], "") << "subscriber " << s;
    for (const auto& [v, bits] : seen[s]) {
      EXPECT_TRUE(bits == ledger[v])
          << "subscriber " << s << " replica differs from published skyline at version " << v;
    }
  }
  EXPECT_EQ(final_version.load(), kTicks);
}

TEST(Subscriptions, EngineShutdownClosesSubscriptionAfterDrainingBacklog) {
  auto engine = std::make_unique<service::QueryEngine>(workload(80), service::QueryEngineOptions{});
  const service::StreamSubscriptionPtr sub = engine->subscribe();
  service::MutationBatch batch;
  batch.deletes.push_back(0);
  const std::uint64_t v = engine->apply_batch(batch).delta.version;
  engine.reset();  // destructor closes every live subscription

  EXPECT_TRUE(sub->closed());
  // The backlog published before shutdown is still poppable...
  const std::optional<service::StreamDelta> queued = sub->next(/*timeout_ms=*/0);
  ASSERT_TRUE(queued.has_value());
  EXPECT_EQ(queued->version, v);
  // ...and after it drains, next() reports end-of-stream instead of blocking.
  EXPECT_FALSE(sub->next(/*timeout_ms=*/-1).has_value());
}

TEST(Subscriptions, SubscriberRacingWritersNeverSeesAGap) {
  // Gapless-handoff hammer: subscribers register WHILE a writer publishes.
  // Whatever base version a subscriber lands on, the next delta it pops must
  // be base+1 — never a skipped or repeated version.
  const std::size_t kDim = 2;
  service::QueryEngine engine(workload(60, kDim), {});
  const auto schedule = make_schedule(/*ticks=*/80, kDim, 60, 0xfeedu);

  std::atomic<bool> done{false};
  std::vector<std::string> failures(6);
  std::vector<std::thread> subscribers;
  for (std::size_t s = 0; s < failures.size(); ++s) {
    subscribers.emplace_back([&, s] {
      while (!done.load(std::memory_order_acquire)) {
        const service::StreamSubscriptionPtr sub = engine.subscribe();
        std::uint64_t version = sub->base_version();
        for (int i = 0; i < 4; ++i) {
          const std::optional<service::StreamDelta> delta = sub->next(/*timeout_ms=*/50);
          if (!delta.has_value()) break;
          if (delta->version != version + 1) {
            failures[s] = "gap after base " + std::to_string(version) + ": got " +
                          std::to_string(delta->version);
            return;
          }
          version = delta->version;
        }
        sub->close();
      }
    });
  }
  for (const auto& batch : schedule) (void)engine.apply_batch(batch);
  done.store(true, std::memory_order_release);
  for (auto& t : subscribers) t.join();
  for (std::size_t s = 0; s < failures.size(); ++s) {
    EXPECT_EQ(failures[s], "") << "subscriber " << s;
  }
}

// ---------------------------------------------------------------------------
// Wire level (loopback TCP)
// ---------------------------------------------------------------------------

/// Parses one `[id,c,...]` point-array JSON document into a PointSet row.
void parse_points_into(const common::JsonValue& arr, data::PointSet& out) {
  for (const common::JsonValue& item : arr.as_array()) {
    const auto& row = item.as_array();
    std::vector<double> coords;
    for (std::size_t i = 1; i < row.size(); ++i) coords.push_back(row[i].as_number());
    out.push_back(coords, static_cast<data::PointId>(row[0].as_number()));
  }
}

TEST(Subscriptions, WireProtocolRoundTripReplaysToPublishedSkyline) {
  const std::size_t kDim = 3;
  service::QueryEngine engine(workload(120, kDim), {});
  server::ServerOptions options;
  server::SkylineServer server(engine, options);
  server.start();

  server::LineClient subscriber;
  subscriber.connect("127.0.0.1", server.port());
  ASSERT_TRUE(subscriber.recv_line().has_value());  // greeting
  const std::optional<std::string> subscribed = subscriber.request("subscribe");
  ASSERT_TRUE(subscribed.has_value());
  const common::JsonValue base_doc = common::JsonValue::parse(*subscribed);
  ASSERT_NE(base_doc.find("skyline"), nullptr) << *subscribed;
  EXPECT_EQ(base_doc.find("event")->as_string(), "subscribed");
  const auto base_version = static_cast<std::uint64_t>(base_doc.find("version")->as_number());

  data::PointSet base_skyline(kDim);
  parse_points_into(*base_doc.find("skyline"), base_skyline);
  Replica replica(base_skyline);

  // A second session mutates the stream: TTL'd inserts and deletes.
  server::LineClient writer;
  writer.connect("127.0.0.1", server.port());
  ASSERT_TRUE(writer.recv_line().has_value());
  const std::size_t kTicks = 8;
  for (std::size_t t = 0; t < kTicks; ++t) {
    const std::string insert =
        R"({"insert":[[0.)" + std::to_string(2 + t) + R"(,0.5,0.5]],"ttl_ticks":3})";
    const std::optional<std::string> ins = writer.request(insert);
    ASSERT_TRUE(ins.has_value());
    EXPECT_EQ(ins->rfind("{\"ok\":true", 0), 0u) << *ins;
    const std::optional<std::string> del =
        writer.request(R"({"delete":[)" + std::to_string(t * 7) + "]}");
    ASSERT_TRUE(del.has_value());
    EXPECT_EQ(del->rfind("{\"ok\":true", 0), 0u) << *del;
  }

  // Drain delta lines until the last written version arrives, replaying each
  // onto the replica. Every tick (insert or delete request) publishes one.
  subscriber.set_recv_timeout_ms(2000);
  std::uint64_t version = base_version;
  const std::uint64_t last = base_version + 2 * kTicks;
  while (version < last) {
    const std::optional<std::string> line = subscriber.recv_line();
    ASSERT_TRUE(line.has_value()) << "expected delta for version " << version + 1;
    const common::JsonValue doc = common::JsonValue::parse(*line);
    ASSERT_NE(doc.find("event"), nullptr) << *line;
    ASSERT_EQ(doc.find("event")->as_string(), "delta") << *line;
    EXPECT_EQ(static_cast<std::uint64_t>(doc.find("version")->as_number()), version + 1);
    ++version;

    service::StreamDelta delta;
    parse_points_into(*doc.find("entered"), delta.entered);
    for (const common::JsonValue& id : doc.find("left")->as_array()) {
      delta.left.push_back(static_cast<data::PointId>(id.as_number()));
    }
    replica.apply(delta);
  }

  // %.17g round-trips doubles bit-exactly, so even the TCP replica is
  // bitwise-identical to the engine's published skyline.
  EXPECT_TRUE(replica.bits(kDim) == SkylineBits(*engine.snapshot()->full_skyline));

  // Interleaved requests still work while subscribed...
  const std::optional<std::string> stats = subscriber.request("stats");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->rfind("{\"ok\":true", 0), 0u) << *stats;

  // ...and unsubscribe stops the pushes: the next response after the ack is
  // the answer to a regular request, not a stray delta.
  const std::optional<std::string> unsub = subscriber.request("unsubscribe");
  ASSERT_TRUE(unsub.has_value());
  EXPECT_NE(unsub->find("\"unsubscribed\""), std::string::npos) << *unsub;
  ASSERT_TRUE(writer.request(R"({"delete":[1]})").has_value());
  const std::optional<std::string> after = subscriber.request("metrics");
  ASSERT_TRUE(after.has_value());
  EXPECT_NE(after->find("\"deltas_sent\""), std::string::npos) << *after;

  ASSERT_TRUE(writer.request("quit").has_value());
  ASSERT_TRUE(subscriber.request("quit").has_value());
  server.stop();
}

TEST(Subscriptions, ServerDrainCancelsSubscriptionWithTypedLine) {
  service::QueryEngine engine(workload(100), {});
  server::ServerOptions options;
  options.drain_grace_ms = 300;
  server::SkylineServer server(engine, options);
  server.start();

  server::LineClient client;
  client.connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.recv_line().has_value());
  const std::optional<std::string> subscribed = client.request("subscribe");
  ASSERT_TRUE(subscribed.has_value());
  EXPECT_NE(subscribed->find("\"subscribed\""), std::string::npos) << *subscribed;

  // Kill the server while the subscription is standing. The connection must
  // end with the typed cancelled line — not a silent EOF.
  std::thread stopper([&] { server.stop(); });
  client.set_recv_timeout_ms(3000);
  std::optional<std::string> line;
  std::string last;
  while ((line = client.recv_line()).has_value()) last = *line;
  stopper.join();

  EXPECT_NE(last.find("\"cancelled\":true"), std::string::npos) << last;
  EXPECT_NE(last.find("\"reason\":\"cancelled\""), std::string::npos) << last;
  EXPECT_GE(server.stats().drain_cancelled, 1u);
}

TEST(Subscriptions, SessionRejectsDoubleSubscribe) {
  service::QueryEngine engine(workload(50), {});
  server::Session session(1, engine, "");
  bool quit = false;
  const std::string first = session.handle_line("subscribe", quit);
  EXPECT_EQ(first.rfind("{\"ok\":true", 0), 0u) << first;
  const std::string second = session.handle_line("subscribe", quit);
  EXPECT_EQ(second.rfind("{\"ok\":false", 0), 0u) << second;
  const std::string unsub = session.handle_line("unsubscribe", quit);
  EXPECT_NE(unsub.find("\"unsubscribed\""), std::string::npos) << unsub;
  // Unsubscribe is idempotent, and re-subscribing afterwards works.
  EXPECT_EQ(session.handle_line("unsubscribe", quit).rfind("{\"ok\":true", 0), 0u);
  EXPECT_EQ(session.handle_line("subscribe", quit).rfind("{\"ok\":true", 0), 0u);
}

}  // namespace
}  // namespace mrsky
