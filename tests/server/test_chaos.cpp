// Chaos harness for the hardened skyline server (ISSUE 7 tentpole).
//
// Hostile and unlucky clients against a live loopback server: slowloris
// byte-dribblers, oversized request lines, mid-query disconnects, deadline
// storms, load shedding with polite backoff, and kill-during-drain. The
// invariants under attack:
//
//  * the server stays up — well-behaved clients are served before, during,
//    and after each abuse;
//  * every surviving (ok) response is bitwise-identical to a single-threaded
//    replay of the same request against the same snapshot version;
//  * cancelled work is accounted in the per-session metrics (`cancelled`,
//    `deadline_missed`) and the server stats (`shed`, `idle_reaped`,
//    `oversized_lines`, `drain_cancelled`), never silently dropped and never
//    lumped in with malformed-request errors.
//
// The QueryEngineCancellation suite pins the engine-level acceptance
// criterion underneath: an expired deadline aborts in bounded time with a
// typed QueryCancelled, leaves no cache entry and publishes no snapshot
// state, while concurrent undeadlined queries complete unaffected.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/sync.hpp"
#include "src/dataset/generators.hpp"
#include "src/server/client.hpp"
#include "src/server/server.hpp"
#include "src/server/session.hpp"
#include "src/service/query_engine.hpp"
#include "src/skyline/algorithms.hpp"

namespace mrsky {
namespace {

using namespace std::chrono_literals;

data::PointSet workload(std::size_t n = 250, std::size_t dim = 3, std::uint64_t seed = 42) {
  return data::generate(data::Distribution::kAnticorrelated, n, dim, seed);
}

bool ok(const std::string& response) { return response.rfind("{\"ok\":true", 0) == 0; }

std::string strip_metrics(const std::string& response) {
  const std::size_t pos = response.rfind(",\"metrics\":");
  return pos == std::string::npos ? response : response.substr(0, pos) + "}";
}

bool is_cancelled(const std::string& response) {
  return response.find("\"cancelled\":true") != std::string::npos;
}

/// Raw TCP socket for clients that deliberately misbehave in ways LineClient
/// refuses to (partial lines, dribbled bytes, reading through to EOF).
class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    timeval tv{15, 0};  // hard backstop so a buggy server can't hang the test
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  RawConn(const RawConn&) = delete;
  RawConn& operator=(const RawConn&) = delete;

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Best-effort send; a peer that already closed on us is not an error here.
  void send_bytes(const std::string& bytes) const {
    if (fd_ >= 0) (void)::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  }

  /// Reads until the server closes the connection (or the backstop timeout).
  [[nodiscard]] std::string read_to_eof() const {
    std::string out;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
};

service::Query skyline_query() { return service::Query{service::SkylineQuery{}}; }

// ---------------------------------------------------------------------------
// Engine-level acceptance: typed, bounded, side-effect-free cancellation.
// ---------------------------------------------------------------------------

TEST(QueryEngineCancellation, ExpiredDeadlineIsTypedBoundedAndSideEffectFree) {
  service::QueryEngine engine(workload(), {});
  const common::CancellationToken expired = common::CancellationToken::with_deadline_ms(0);

  const auto t0 = std::chrono::steady_clock::now();
  try {
    (void)engine.execute(skyline_query(), expired);
    FAIL() << "expected QueryCancelled";
  } catch (const QueryCancelled& e) {
    EXPECT_TRUE(e.deadline_expired());
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, 2s);  // bounded: aborted at a poll point, not after the work

  // No side effects escaped: nothing cached, no full skyline published.
  EXPECT_EQ(engine.cache_entries(), 0u);
  EXPECT_EQ(engine.snapshot()->full_skyline, nullptr);
  EXPECT_EQ(engine.stats().queries_cancelled, 1u);

  // The same query with no deadline completes normally afterwards.
  const service::QueryResult result = engine.execute(skyline_query());
  EXPECT_GT(result.points.size(), 0u);
  EXPECT_NE(engine.snapshot()->full_skyline, nullptr);
}

TEST(QueryEngineCancellation, ExpiredDeadlineOnCachedQueryStillErrors) {
  // Admission is polled BEFORE the cache lookup: a zero budget is a
  // deterministic typed error even when the answer is sitting in the cache.
  service::QueryEngine engine(workload(), {});
  (void)engine.execute(skyline_query());  // warm the cache
  ASSERT_EQ(engine.cache_entries(), 1u);
  EXPECT_THROW((void)engine.execute(skyline_query(),
                                    common::CancellationToken::with_deadline_ms(0)),
               QueryCancelled);
  EXPECT_EQ(engine.cache_entries(), 1u);  // and the hit path left the cache alone
}

TEST(QueryEngineCancellation, MidPipelineCancelAbandonsWithoutPublishing) {
  // The kernel itself pulls the trigger: the first reduce invocation latches
  // a cancel on the query's own token, so the pipeline is guaranteed to be
  // mid-flight when the stop request lands.
  common::CancellationToken token = common::CancellationToken::make();
  service::QueryEngineOptions options;
  options.config.servers = 2;
  options.config.local_skyline_override = [token](const data::PointSet& ps,
                                                  skyline::SkylineStats* stats) mutable {
    token.request_cancel();
    return skyline::bnl_skyline(ps, stats);
  };
  service::QueryEngine engine(workload(), std::move(options));

  try {
    (void)engine.execute(skyline_query(), token);
    FAIL() << "expected QueryCancelled";
  } catch (const QueryCancelled& e) {
    EXPECT_FALSE(e.deadline_expired());  // a cancel, not a missed deadline
  }
  EXPECT_EQ(engine.cache_entries(), 0u);
  EXPECT_EQ(engine.snapshot()->full_skyline, nullptr);
  EXPECT_EQ(engine.stats().queries_cancelled, 1u);
}

TEST(QueryEngineCancellation, ConcurrentUndeadlinedQueriesUnaffected) {
  service::QueryEngine engine(workload(), {});
  const service::QueryResult reference = engine.execute(skyline_query());

  constexpr std::size_t kRounds = 8;
  std::atomic<std::size_t> cancelled{0};
  std::atomic<bool> divergence{false};
  std::thread storm([&] {
    for (std::size_t i = 0; i < kRounds; ++i) {
      try {
        (void)engine.execute(skyline_query(), common::CancellationToken::with_deadline_ms(0));
      } catch (const QueryCancelled&) {
        cancelled.fetch_add(1);
      }
    }
  });
  std::thread steady([&] {
    for (std::size_t i = 0; i < kRounds; ++i) {
      const service::QueryResult r = engine.execute(skyline_query());
      if (r.points.size() != reference.points.size()) divergence.store(true);
    }
  });
  storm.join();
  steady.join();
  EXPECT_EQ(cancelled.load(), kRounds);  // every zero-budget query aborted
  EXPECT_FALSE(divergence.load());      // every undeadlined query answered in full
  EXPECT_EQ(engine.stats().queries_cancelled, kRounds);
}

// ---------------------------------------------------------------------------
// Server-level chaos.
// ---------------------------------------------------------------------------

TEST(SkylineServerChaos, SlowlorisIsReapedAndServerKeepsServing) {
  service::QueryEngine engine(workload(), {});
  server::ServerOptions options;
  options.idle_timeout_ms = 150;
  server::SkylineServer srv(engine, options);
  srv.start();

  // The attacker dribbles one byte at a time, never completing a line. The
  // idle clock runs from the start of the line — arriving bytes do NOT reset
  // it — so the session is reaped even though the socket is never quiet.
  RawConn slow(srv.port());
  ASSERT_TRUE(slow.connected());
  const std::string dribble = "skyline and on and on";
  for (std::size_t i = 0; i < dribble.size(); ++i) {
    slow.send_bytes(dribble.substr(i, 1));
    std::this_thread::sleep_for(20ms);
  }
  const std::string transcript = slow.read_to_eof();  // greeting + error, then EOF
  EXPECT_NE(transcript.find("idle timeout"), std::string::npos) << transcript;
  EXPECT_GE(srv.stats().idle_reaped, 1u);

  // The server is still healthy for a well-behaved client.
  server::LineClient good;
  good.connect("127.0.0.1", srv.port());
  ASSERT_TRUE(good.recv_line().has_value());
  const auto response = good.request("skyline");
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(ok(*response)) << *response;
  srv.stop();
}

TEST(SkylineServerChaos, OversizedLineGetsOneErrorLineThenClose) {
  service::QueryEngine engine(workload(), {});
  server::ServerOptions options;
  options.max_line_bytes = 512;
  server::SkylineServer srv(engine, options);
  srv.start();

  server::LineClient abuser;
  abuser.connect("127.0.0.1", srv.port());
  ASSERT_TRUE(abuser.recv_line().has_value());
  ASSERT_TRUE(abuser.send_line(std::string(4096, 'x')));
  const auto err = abuser.recv_line();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("exceeds"), std::string::npos) << *err;
  EXPECT_FALSE(abuser.recv_line().has_value());  // then the connection is closed
  EXPECT_GE(srv.stats().oversized_lines, 1u);

  // A request under the cap still works on a fresh connection.
  server::LineClient good;
  good.connect("127.0.0.1", srv.port());
  ASSERT_TRUE(good.recv_line().has_value());
  const auto response = good.request("skyline");
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(ok(*response)) << *response;
  srv.stop();
}

TEST(SkylineServerChaos, MidQueryDisconnectsLeaveServerServing) {
  service::QueryEngine engine(workload(), {});
  server::SkylineServer srv(engine, {});
  srv.start();

  // A wave of clients that fire a query and vanish without reading the
  // response: the session's write fails, the session ends, the server shrugs.
  for (std::size_t i = 0; i < 6; ++i) {
    RawConn hitandrun(srv.port());
    ASSERT_TRUE(hitandrun.connected());
    hitandrun.send_bytes("skyline\n");
    // destructor closes mid-response
  }

  server::LineClient good;
  good.connect("127.0.0.1", srv.port());
  ASSERT_TRUE(good.recv_line().has_value());
  const auto response = good.request("skyline");
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(ok(*response)) << *response;
  srv.stop();
  EXPECT_GE(srv.stats().accepted, 7u);
}

TEST(SkylineServerChaos, DeadlineStormSurvivorsMatchSingleThreadedReplay) {
  service::QueryEngine engine(workload(), {});
  server::ServerOptions options;
  options.max_sessions = 8;
  server::SkylineServer srv(engine, options);
  srv.start();

  // Mixed storm: every client interleaves zero-budget (guaranteed-cancelled)
  // requests with undeadlined ones, across both syntaxes.
  const std::vector<std::string> doomed = {"skyline deadline=0",
                                           R"({"query":"skyband","k":2,"deadline_ms":0})"};
  const std::vector<std::string> healthy = {"skyline", "skyband 2",
                                            R"({"query":"skyline"})"};
  constexpr std::size_t kClients = 6;
  constexpr std::size_t kRounds = 4;
  std::vector<std::vector<std::pair<std::string, std::string>>> survived(kClients);
  std::atomic<std::size_t> cancelled_responses{0};
  std::atomic<bool> protocol_violation{false};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      server::LineClient client;
      client.set_recv_timeout_ms(15'000);
      client.connect("127.0.0.1", srv.port());
      if (!client.recv_line().has_value()) {
        protocol_violation.store(true);
        return;
      }
      for (std::size_t r = 0; r < kRounds; ++r) {
        const std::string& doom = doomed[(c + r) % doomed.size()];
        const auto cancelled = client.request(doom);
        if (!cancelled.has_value() || !is_cancelled(*cancelled) ||
            cancelled->find("\"reason\":\"deadline\"") == std::string::npos) {
          protocol_violation.store(true);
        } else {
          cancelled_responses.fetch_add(1);
        }
        const std::string& query = healthy[(c + r) % healthy.size()];
        const auto response = client.request(query);
        if (!response.has_value() || !ok(*response)) {
          protocol_violation.store(true);
        } else {
          survived[c].emplace_back(query, *response);
        }
      }
      (void)client.request("quit");
    });
  }
  for (auto& t : clients) t.join();
  srv.stop();

  EXPECT_FALSE(protocol_violation.load());
  EXPECT_EQ(cancelled_responses.load(), kClients * kRounds);

  // Every cancelled request is accounted as a missed deadline in the session
  // metrics — separate from errors, never silently dropped.
  std::uint64_t deadline_missed = 0;
  std::uint64_t errors = 0;
  for (const server::SessionMetrics& m : srv.completed_sessions()) {
    deadline_missed += m.deadline_missed;
    errors += m.errors;
  }
  EXPECT_EQ(deadline_missed, kClients * kRounds);
  EXPECT_EQ(errors, 0u);

  // Bitwise replay: a fresh engine over the same dataset, one single-threaded
  // session, must reproduce every surviving response exactly (the dataset
  // never changed, so every response is at snapshot version 0).
  service::QueryEngine replay_engine(workload(), {});
  server::Session replay(0, replay_engine, "");
  std::map<std::string, std::string> replayed;
  bool quit = false;
  for (const auto& per_client : survived) {
    for (const auto& [query, response] : per_client) {
      auto [it, inserted] = replayed.emplace(query, "");
      if (inserted) it->second = strip_metrics(replay.handle_line(query, quit));
      EXPECT_EQ(strip_metrics(response), it->second) << query;
    }
  }
}

TEST(SkylineServerChaos, StopDuringInFlightQueryCancelsCooperatively) {
  // A kernel that blocks until the test releases it guarantees a query is
  // mid-pipeline when stop() begins draining.
  std::atomic<bool> release{false};
  std::atomic<int> entered{0};
  service::QueryEngineOptions eopts;
  eopts.config.servers = 2;
  eopts.config.local_skyline_override = [&](const data::PointSet& ps,
                                            skyline::SkylineStats* stats) {
    entered.fetch_add(1);
    while (!release.load()) std::this_thread::sleep_for(1ms);
    return skyline::bnl_skyline(ps, stats);
  };
  service::QueryEngine engine(workload(), std::move(eopts));
  server::ServerOptions options;
  options.drain_grace_ms = 100;
  server::SkylineServer srv(engine, options);
  srv.start();

  std::string response;
  std::thread client_thread([&] {
    server::LineClient client;
    client.set_recv_timeout_ms(20'000);
    client.connect("127.0.0.1", srv.port());
    if (!client.recv_line().has_value()) return;
    response = client.request("skyline").value_or("");
  });

  // Wait for the query to be pinned inside the kernel, then pull the plug.
  const auto give_up = std::chrono::steady_clock::now() + 10s;
  while (entered.load() == 0 && std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_GT(entered.load(), 0) << "query never reached the kernel";

  std::thread stopper([&] { srv.stop(); });
  // stop() waits one grace period, then cooperatively cancels stragglers —
  // only release the kernel once that cancel has been latched, so the abort
  // deterministically lands at the next pipeline poll point.
  while (srv.stats().drain_cancelled == 0 && std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_GE(srv.stats().drain_cancelled, 1u);
  release.store(true);
  stopper.join();
  client_thread.join();

  // The client got a well-formed typed cancellation line, not a dropped
  // connection; the session accounted it as a cancel, not an error.
  EXPECT_TRUE(is_cancelled(response)) << response;
  EXPECT_NE(response.find("\"reason\":\"cancelled\""), std::string::npos) << response;
  std::uint64_t cancelled = 0;
  for (const server::SessionMetrics& m : srv.completed_sessions()) cancelled += m.cancelled;
  EXPECT_EQ(cancelled, 1u);
  // The abandoned query left no trace in the engine.
  EXPECT_EQ(engine.cache_entries(), 0u);
  EXPECT_EQ(engine.snapshot()->full_skyline, nullptr);
}

TEST(SkylineServerChaos, ShedClientsBackOffAndEventuallyGetIn) {
  service::QueryEngine engine(workload(), {});
  server::ServerOptions options;
  options.max_sessions = 1;
  options.retry_after_ms = 5;
  server::SkylineServer srv(engine, options);
  srv.start();

  server::LineClient holder;
  holder.connect("127.0.0.1", srv.port());
  ASSERT_TRUE(holder.recv_line().has_value());  // the one slot is now busy

  std::thread releaser([&] {
    std::this_thread::sleep_for(150ms);
    (void)holder.request("quit");
    holder.close();
  });

  server::LineClient patient;
  server::LineClient::BackoffOptions backoff;
  backoff.max_attempts = 10;
  backoff.base_delay_ms = 20;
  backoff.jitter_seed = 7;
  const auto result = patient.connect_with_backoff("127.0.0.1", srv.port(), backoff);
  releaser.join();

  ASSERT_TRUE(result.connected) << "attempts=" << result.attempts;
  EXPECT_GE(result.sheds, 1u);               // it was turned away at least once
  EXPECT_GT(result.attempts, result.sheds);  // ...and then admitted
  EXPECT_NE(result.greeting.find("\"session\""), std::string::npos) << result.greeting;
  const auto response = patient.request("skyline");
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(ok(*response)) << *response;

  const server::SkylineServer::Stats stats = srv.stats();
  EXPECT_GE(stats.shed, 1u);
  EXPECT_EQ(stats.shed, stats.rejected);  // shed is the graceful-degradation alias
  srv.stop();
}

TEST(SkylineServerChaos, RecvTimeoutSurfacesInsteadOfBlockingForever) {
  service::QueryEngine engine(workload(), {});
  server::SkylineServer srv(engine, {});
  srv.start();

  server::LineClient client;
  client.connect("127.0.0.1", srv.port());
  ASSERT_TRUE(client.recv_line().has_value());

  // No request outstanding: the server has nothing to say, so a blocking
  // recv_line would hang forever. The timeout turns that into a fact.
  client.set_recv_timeout_ms(100);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(client.recv_line().has_value());
  EXPECT_TRUE(client.timed_out());
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 5s);

  // The connection survives a timeout: the next request works.
  client.set_recv_timeout_ms(15'000);
  const auto response = client.request("skyline");
  ASSERT_TRUE(response.has_value());
  EXPECT_FALSE(client.timed_out());
  EXPECT_TRUE(ok(*response)) << *response;
  srv.stop();
}

}  // namespace
}  // namespace mrsky
