#include "src/dataset/normalize.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/dataset/generators.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/verify.hpp"

namespace mrsky::data {
namespace {

TEST(Normalize, MapsToUnitInterval) {
  PointSet ps(2, {10.0, 100.0, 20.0, 300.0, 15.0, 200.0});
  const PointSet normalized = normalize_min_max(ps);
  for (std::size_t i = 0; i < normalized.size(); ++i) {
    for (std::size_t a = 0; a < 2; ++a) {
      EXPECT_GE(normalized.at(i, a), 0.0);
      EXPECT_LE(normalized.at(i, a), 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(normalized.at(0, 0), 0.0);  // min maps to 0
  EXPECT_DOUBLE_EQ(normalized.at(1, 0), 1.0);  // max maps to 1
  EXPECT_DOUBLE_EQ(normalized.at(2, 0), 0.5);  // midpoint maps to 0.5
}

TEST(Normalize, ConstantAttributeMapsToZero) {
  PointSet ps(2, {5.0, 1.0, 5.0, 2.0});
  const PointSet normalized = normalize_min_max(ps);
  EXPECT_DOUBLE_EQ(normalized.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(normalized.at(1, 0), 0.0);
}

TEST(Normalize, PreservesIds) {
  PointSet ps(1, {3.0, 7.0}, {42u, 17u});
  const PointSet normalized = normalize_min_max(ps);
  EXPECT_EQ(normalized.id(0), 42u);
  EXPECT_EQ(normalized.id(1), 17u);
}

TEST(Normalize, InvertRecoversOriginal) {
  const PointSet original = generate(Distribution::kIndependent, 100, 3, 9);
  const NormalizationMap map = fit_min_max(original);
  const PointSet recovered = map.invert(map.apply(original));
  ASSERT_EQ(recovered.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    for (std::size_t a = 0; a < original.dim(); ++a) {
      EXPECT_NEAR(recovered.at(i, a), original.at(i, a), 1e-12);
    }
  }
}

TEST(Normalize, DimensionMismatchThrows) {
  const PointSet a(2, {1.0, 2.0});
  NormalizationMap map{{0.0}, {1.0}};  // 1-D map
  EXPECT_THROW(map.apply(a), InvalidArgument);
  EXPECT_THROW(map.invert(a), InvalidArgument);
}

TEST(Normalize, FitOnEmptyThrows) {
  const PointSet ps(2);
  EXPECT_THROW(fit_min_max(ps), InvalidArgument);
}

// The property that justifies normalising before partitioning: min-max
// scaling is rank-preserving per attribute, so the skyline ids are unchanged.
TEST(Normalize, SkylineInvariantUnderNormalization) {
  const PointSet original = generate(Distribution::kAnticorrelated, 400, 3, 21);
  const PointSet normalized = normalize_min_max(original);
  const auto sky_before = skyline::bnl_skyline(original);
  const auto sky_after = skyline::bnl_skyline(normalized);
  EXPECT_TRUE(skyline::same_ids(sky_before, sky_after));
}

}  // namespace
}  // namespace mrsky::data
