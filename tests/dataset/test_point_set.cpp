#include "src/dataset/point_set.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/error.hpp"

namespace mrsky::data {
namespace {

TEST(PointSet, EmptyConstruction) {
  PointSet ps(3);
  EXPECT_EQ(ps.dim(), 3u);
  EXPECT_EQ(ps.size(), 0u);
  EXPECT_TRUE(ps.empty());
}

TEST(PointSet, RejectsZeroDimension) {
  EXPECT_THROW(PointSet(0), InvalidArgument);
}

TEST(PointSet, FlatConstructorAssignsSequentialIds) {
  PointSet ps(2, {1.0, 2.0, 3.0, 4.0});
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps.id(0), 0u);
  EXPECT_EQ(ps.id(1), 1u);
  EXPECT_DOUBLE_EQ(ps.at(1, 0), 3.0);
}

TEST(PointSet, FlatConstructorRejectsRaggedValues) {
  EXPECT_THROW(PointSet(2, {1.0, 2.0, 3.0}), InvalidArgument);
}

TEST(PointSet, ExplicitIdsPreserved) {
  PointSet ps(1, {5.0, 6.0}, {10u, 20u});
  EXPECT_EQ(ps.id(0), 10u);
  EXPECT_EQ(ps.id(1), 20u);
}

TEST(PointSet, ExplicitIdsSizeMismatchThrows) {
  EXPECT_THROW(PointSet(1, {5.0, 6.0}, {10u}), InvalidArgument);
}

TEST(PointSet, PushBackGrowsAndViews) {
  PointSet ps(3);
  const std::vector<double> p = {1.0, 2.0, 3.0};
  ps.push_back(p);
  ASSERT_EQ(ps.size(), 1u);
  const auto view = ps.point(0);
  EXPECT_DOUBLE_EQ(view[0], 1.0);
  EXPECT_DOUBLE_EQ(view[2], 3.0);
}

TEST(PointSet, PushBackWrongWidthThrows) {
  PointSet ps(3);
  const std::vector<double> p = {1.0, 2.0};
  EXPECT_THROW(ps.push_back(p), InvalidArgument);
}

TEST(PointSet, SequentialIdMatchesSize) {
  PointSet ps(1);
  const std::vector<double> p = {0.0};
  ps.push_back(p);
  ps.push_back(p);
  EXPECT_EQ(ps.id(0), 0u);
  EXPECT_EQ(ps.id(1), 1u);
}

TEST(PointSet, SelectPreservesIdsAndCoords) {
  PointSet ps(2, {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}, {7u, 8u, 9u});
  const std::vector<std::size_t> idx = {2, 0};
  const PointSet sub = ps.select(idx);
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.id(0), 9u);
  EXPECT_DOUBLE_EQ(sub.at(0, 1), 6.0);
  EXPECT_EQ(sub.id(1), 7u);
}

TEST(PointSet, SelectOutOfRangeThrows) {
  PointSet ps(1, {1.0});
  const std::vector<std::size_t> idx = {5};
  EXPECT_THROW(ps.select(idx), InvalidArgument);
}

TEST(PointSet, AttributeMinMax) {
  PointSet ps(2, {1.0, 9.0, 3.0, 2.0, -1.0, 5.0});
  const auto mins = ps.attribute_min();
  const auto maxs = ps.attribute_max();
  EXPECT_DOUBLE_EQ(mins[0], -1.0);
  EXPECT_DOUBLE_EQ(mins[1], 2.0);
  EXPECT_DOUBLE_EQ(maxs[0], 3.0);
  EXPECT_DOUBLE_EQ(maxs[1], 9.0);
}

TEST(PointSet, AttributeMinMaxEmptyThrows) {
  PointSet ps(2);
  EXPECT_THROW(ps.attribute_min(), InvalidArgument);
  EXPECT_THROW(ps.attribute_max(), InvalidArgument);
}

TEST(PointSet, ClearResets) {
  PointSet ps(1, {1.0, 2.0});
  ps.clear();
  EXPECT_TRUE(ps.empty());
  EXPECT_EQ(ps.dim(), 1u);
}

TEST(PointSet, EqualityIsStructural) {
  PointSet a(2, {1.0, 2.0});
  PointSet b(2, {1.0, 2.0});
  PointSet c(2, {1.0, 3.0});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(PointSet, SortedIdsSortsCopies) {
  PointSet ps(1, {1.0, 2.0, 3.0}, {9u, 4u, 7u});
  EXPECT_EQ(sorted_ids(ps), (std::vector<PointId>{4u, 7u, 9u}));
}

TEST(PointSet, RawExposesRowMajorStorage) {
  PointSet ps(2, {1.0, 2.0, 3.0, 4.0});
  const auto raw = ps.raw();
  ASSERT_EQ(raw.size(), 4u);
  EXPECT_DOUBLE_EQ(raw[2], 3.0);
}

}  // namespace
}  // namespace mrsky::data
