#include <gtest/gtest.h>

#include <unordered_set>

#include "src/common/error.hpp"
#include "src/dataset/generators.hpp"
#include "src/dataset/transforms.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/verify.hpp"

namespace mrsky::data {
namespace {

TEST(Project, SelectsAttributesInOrder) {
  PointSet ps(3, {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  const std::vector<std::size_t> attrs = {2, 0};
  const PointSet out = project(ps, attrs);
  ASSERT_EQ(out.dim(), 2u);
  EXPECT_DOUBLE_EQ(out.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(out.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(out.at(1, 0), 6.0);
}

TEST(Project, PreservesIds) {
  PointSet ps(2, {1.0, 2.0, 3.0, 4.0}, {7u, 9u});
  const std::vector<std::size_t> attrs = {1};
  const PointSet out = project(ps, attrs);
  EXPECT_EQ(out.id(0), 7u);
  EXPECT_EQ(out.id(1), 9u);
}

TEST(Project, AllowsRepeatedAttributes) {
  PointSet ps(2, {1.0, 2.0});
  const std::vector<std::size_t> attrs = {0, 0, 1};
  const PointSet out = project(ps, attrs);
  ASSERT_EQ(out.dim(), 3u);
  EXPECT_DOUBLE_EQ(out.at(0, 1), 1.0);
}

TEST(Project, Validation) {
  PointSet ps(2, {1.0, 2.0});
  const std::vector<std::size_t> empty = {};
  EXPECT_THROW((void)project(ps, empty), mrsky::InvalidArgument);
  const std::vector<std::size_t> out_of_range = {2};
  EXPECT_THROW((void)project(ps, out_of_range), mrsky::InvalidArgument);
}

// Subspace skyline properties.

TEST(Project, SubspaceSkylineContainsSubspaceOptima) {
  // The full-space skyline of a projection IS the subspace skyline; every
  // full-space skyline point is not necessarily in it, but the per-attribute
  // minimum always is.
  const PointSet ps = generate(Distribution::kIndependent, 500, 4, 23);
  const std::vector<std::size_t> attrs = {0, 2};
  const PointSet sub = project(ps, attrs);
  const auto sub_sky = skyline::bnl_skyline(sub);
  const auto verdict = skyline::verify_skyline(sub, sub_sky);
  EXPECT_TRUE(verdict.ok) << verdict.message;
}

TEST(Project, SubspaceSkylineSmallerThanFullSpace) {
  // Fewer dimensions => fewer incomparable pairs => smaller skyline
  // (overwhelmingly, on independent data).
  const PointSet ps = generate(Distribution::kIndependent, 2000, 6, 25);
  const std::vector<std::size_t> attrs = {0, 1};
  const auto full = skyline::bnl_skyline(ps);
  const auto sub = skyline::bnl_skyline(project(ps, attrs));
  EXPECT_LT(sub.size(), full.size());
}

TEST(Project, SingleAttributeSkylineIsTheMinimum) {
  const PointSet ps = generate(Distribution::kIndependent, 300, 3, 27);
  const std::vector<std::size_t> attrs = {1};
  const auto sky = skyline::bnl_skyline(project(ps, attrs));
  const double min1 = ps.attribute_min()[1];
  for (std::size_t i = 0; i < sky.size(); ++i) {
    EXPECT_DOUBLE_EQ(sky.at(i, 0), min1);
  }
}

}  // namespace
}  // namespace mrsky::data
