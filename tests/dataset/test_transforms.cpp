#include "src/dataset/transforms.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "src/common/error.hpp"
#include "src/dataset/generators.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/verify.hpp"

namespace mrsky::data {
namespace {

TEST(Concat, PreservesOrderAndIds) {
  PointSet a(2, {1.0, 2.0}, {5u});
  PointSet b(2, {3.0, 4.0, 5.0, 6.0}, {8u, 9u});
  const PointSet joined = concat(a, b);
  ASSERT_EQ(joined.size(), 3u);
  EXPECT_EQ(joined.id(0), 5u);
  EXPECT_EQ(joined.id(2), 9u);
  EXPECT_DOUBLE_EQ(joined.at(1, 1), 4.0);
}

TEST(Concat, DimensionMismatchThrows) {
  PointSet a(2, {1.0, 2.0});
  PointSet b(3, {1.0, 2.0, 3.0});
  EXPECT_THROW((void)concat(a, b), mrsky::InvalidArgument);
}

TEST(Concat, EmptyOperandsWork) {
  PointSet a(2);
  PointSet b(2, {1.0, 2.0});
  EXPECT_EQ(concat(a, b).size(), 1u);
  EXPECT_EQ(concat(b, a).size(), 1u);
}

TEST(Sample, ReturnsExactlyK) {
  const PointSet ps = generate(Distribution::kIndependent, 100, 2, 1);
  common::Rng rng(2);
  EXPECT_EQ(sample_without_replacement(ps, 17, rng).size(), 17u);
}

TEST(Sample, NoDuplicateIds) {
  const PointSet ps = generate(Distribution::kIndependent, 200, 2, 3);
  common::Rng rng(4);
  const PointSet sampled = sample_without_replacement(ps, 150, rng);
  std::unordered_set<PointId> ids(sampled.ids().begin(), sampled.ids().end());
  EXPECT_EQ(ids.size(), 150u);
}

TEST(Sample, FullSampleIsIdentity) {
  const PointSet ps = generate(Distribution::kIndependent, 50, 3, 5);
  common::Rng rng(6);
  EXPECT_EQ(sample_without_replacement(ps, ps.size(), rng), ps);
}

TEST(Sample, OversampleThrows) {
  const PointSet ps = generate(Distribution::kIndependent, 10, 2, 7);
  common::Rng rng(8);
  EXPECT_THROW((void)sample_without_replacement(ps, 11, rng), mrsky::InvalidArgument);
}

TEST(Sample, DeterministicUnderSeed) {
  const PointSet ps = generate(Distribution::kIndependent, 100, 2, 9);
  common::Rng rng_a(10);
  common::Rng rng_b(10);
  EXPECT_EQ(sample_without_replacement(ps, 30, rng_a),
            sample_without_replacement(ps, 30, rng_b));
}

TEST(AffineTransform, AppliesPerAttribute) {
  PointSet ps(2, {1.0, 2.0});
  const std::vector<double> scale = {2.0, 10.0};
  const std::vector<double> shift = {1.0, -5.0};
  const PointSet out = affine_transform(ps, scale, shift);
  EXPECT_DOUBLE_EQ(out.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(out.at(0, 1), 15.0);
}

TEST(AffineTransform, RejectsNonPositiveScale) {
  PointSet ps(1, {1.0});
  const std::vector<double> zero = {0.0};
  const std::vector<double> shift = {0.0};
  EXPECT_THROW((void)affine_transform(ps, zero, shift), mrsky::InvalidArgument);
}

TEST(AffineTransform, RejectsWrongWidth) {
  PointSet ps(2, {1.0, 2.0});
  const std::vector<double> scale = {1.0};
  const std::vector<double> shift = {0.0};
  EXPECT_THROW((void)affine_transform(ps, scale, shift), mrsky::InvalidArgument);
}

// Metamorphic property: the skyline is invariant under positive affine maps.
TEST(AffineTransform, SkylineInvariance) {
  const PointSet ps = generate(Distribution::kAnticorrelated, 400, 3, 11);
  const std::vector<double> scale = {3.0, 0.5, 42.0};
  const std::vector<double> shift = {100.0, -7.0, 0.001};
  const PointSet mapped = affine_transform(ps, scale, shift);
  EXPECT_TRUE(skyline::same_ids(skyline::bnl_skyline(ps), skyline::bnl_skyline(mapped)));
}

TEST(WithDuplicates, AddsRequestedCopies) {
  const PointSet ps = generate(Distribution::kIndependent, 20, 2, 13);
  common::Rng rng(14);
  const PointSet out = with_duplicates(ps, 15, rng);
  EXPECT_EQ(out.size(), 35u);
}

TEST(WithDuplicates, FreshIdsAreUnique) {
  const PointSet ps = generate(Distribution::kIndependent, 20, 2, 15);
  common::Rng rng(16);
  const PointSet out = with_duplicates(ps, 30, rng);
  std::unordered_set<PointId> ids(out.ids().begin(), out.ids().end());
  EXPECT_EQ(ids.size(), out.size());
}

TEST(WithDuplicates, EmptySourceThrows) {
  common::Rng rng(17);
  EXPECT_THROW((void)with_duplicates(PointSet(2), 3, rng), mrsky::InvalidArgument);
}

// Duplicate-injection property: every copy of an undominated point joins the
// skyline, so the skyline cannot shrink and each skyline member's duplicates
// are all present.
TEST(WithDuplicates, SkylineAbsorbsDuplicates) {
  const PointSet ps = generate(Distribution::kIndependent, 200, 2, 19);
  common::Rng rng(20);
  const PointSet noisy = with_duplicates(ps, 100, rng);
  const auto sky_before = skyline::bnl_skyline(ps);
  const auto sky_after = skyline::bnl_skyline(noisy);
  EXPECT_GE(sky_after.size(), sky_before.size());
  // Original skyline ids all survive (duplicates never dominate anyone).
  std::unordered_set<PointId> after_ids(sky_after.ids().begin(), sky_after.ids().end());
  for (PointId id : sky_before.ids()) EXPECT_TRUE(after_ids.contains(id));
}

}  // namespace
}  // namespace mrsky::data
