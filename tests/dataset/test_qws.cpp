#include "src/dataset/qws.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/error.hpp"
#include "src/common/stats.hpp"

namespace mrsky::data {
namespace {

TEST(QwsSchema, TenAttributesAvailable) {
  const auto schema = qws_schema(10);
  ASSERT_EQ(schema.size(), 10u);
  EXPECT_EQ(schema[0].name, "ResponseTime");
  EXPECT_EQ(schema[9].name, "Price");
}

TEST(QwsSchema, PrefixSelection) {
  const auto schema = qws_schema(3);
  ASSERT_EQ(schema.size(), 3u);
  EXPECT_EQ(schema[2].name, "Throughput");
}

TEST(QwsSchema, RejectsOutOfRangeDim) {
  EXPECT_THROW(qws_schema(0), InvalidArgument);
  EXPECT_THROW(qws_schema(11), InvalidArgument);
}

TEST(QwsSchema, RangesAreWellFormed) {
  for (const auto& attr : qws_schema(10)) {
    EXPECT_LT(attr.min, attr.max) << attr.name;
  }
}

TEST(QwsSchema, OrientationFlagsMatchSemantics) {
  const auto schema = qws_schema(10);
  EXPECT_FALSE(schema[0].higher_is_better);  // ResponseTime: lower is better
  EXPECT_TRUE(schema[1].higher_is_better);   // Availability
  EXPECT_FALSE(schema[7].higher_is_better);  // Latency
  EXPECT_FALSE(schema[9].higher_is_better);  // Price
}

TEST(QwsLikeGenerator, RawValuesStayInSchemaRanges) {
  QwsLikeGenerator gen(10, 42);
  const PointSet raw = gen.generate_raw(2000);
  ASSERT_EQ(raw.dim(), 10u);
  const auto& schema = gen.schema();
  for (std::size_t i = 0; i < raw.size(); ++i) {
    for (std::size_t a = 0; a < raw.dim(); ++a) {
      EXPECT_GE(raw.at(i, a), schema[a].min) << schema[a].name;
      EXPECT_LE(raw.at(i, a), schema[a].max) << schema[a].name;
    }
  }
}

TEST(QwsLikeGenerator, DeterministicUnderSeed) {
  QwsLikeGenerator a(5, 7);
  QwsLikeGenerator b(5, 7);
  EXPECT_EQ(a.generate_raw(100), b.generate_raw(100));
}

TEST(QwsLikeGenerator, SeedsChangeData) {
  QwsLikeGenerator a(5, 7);
  QwsLikeGenerator b(5, 8);
  EXPECT_NE(a.generate_raw(100), b.generate_raw(100));
}

TEST(QwsLikeGenerator, OrientedFlipsBenefitAttributes) {
  QwsLikeGenerator gen(2, 3);  // ResponseTime (cost), Availability (benefit)
  const PointSet raw = gen.generate_raw(50);
  const PointSet oriented = QwsLikeGenerator::orient(raw, gen.schema());
  const double avail_max = gen.schema()[1].max;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_DOUBLE_EQ(oriented.at(i, 0), raw.at(i, 0));               // cost kept
    EXPECT_DOUBLE_EQ(oriented.at(i, 1), avail_max - raw.at(i, 1));   // benefit flipped
  }
}

TEST(QwsLikeGenerator, OrientedValuesNonNegative) {
  QwsLikeGenerator gen(10, 11);
  const PointSet oriented = gen.generate_oriented(1000);
  for (std::size_t i = 0; i < oriented.size(); ++i) {
    for (std::size_t a = 0; a < oriented.dim(); ++a) {
      EXPECT_GE(oriented.at(i, a), 0.0);
    }
  }
}

TEST(QwsLikeGenerator, OrientPreservesIds) {
  QwsLikeGenerator gen(3, 5);
  const PointSet raw = gen.generate_raw(20);
  const PointSet oriented = QwsLikeGenerator::orient(raw, gen.schema());
  for (std::size_t i = 0; i < raw.size(); ++i) EXPECT_EQ(oriented.id(i), raw.id(i));
}

TEST(QwsLikeGenerator, OrientRejectsSchemaMismatch) {
  QwsLikeGenerator gen(3, 5);
  const PointSet raw = gen.generate_raw(5);
  EXPECT_THROW(QwsLikeGenerator::orient(raw, qws_schema(2)), InvalidArgument);
}

TEST(QwsLikeGenerator, QualityCorrelationLinksBenefitAttributes) {
  // Availability and Successability are both benefit attributes; the latent
  // quality factor should correlate them, and more strongly at higher rho.
  auto correlation_at = [](double rho) {
    QwsLikeGenerator::Options options;
    options.quality_correlation = rho;
    QwsLikeGenerator gen(4, 19, options);
    const PointSet raw = gen.generate_raw(5000);
    std::vector<double> avail, succ;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      avail.push_back(raw.at(i, 1));
      succ.push_back(raw.at(i, 3));
    }
    return common::pearson_correlation(avail, succ);
  };
  const double weak = correlation_at(0.0);
  const double strong = correlation_at(0.8);
  EXPECT_GT(strong, 0.05);
  EXPECT_GT(strong, weak + 0.05);
}

TEST(QwsLikeGenerator, ZeroCorrelationIsIndependentIsh) {
  QwsLikeGenerator::Options options;
  options.quality_correlation = 0.0;
  QwsLikeGenerator gen(4, 19, options);
  const PointSet raw = gen.generate_raw(5000);
  std::vector<double> avail, succ;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    avail.push_back(raw.at(i, 1));
    succ.push_back(raw.at(i, 3));
  }
  EXPECT_NEAR(common::pearson_correlation(avail, succ), 0.0, 0.05);
}

TEST(QwsLikeGenerator, RejectsBadCorrelation) {
  QwsLikeGenerator::Options options;
  options.quality_correlation = 1.5;
  EXPECT_THROW(QwsLikeGenerator(3, 1, options), InvalidArgument);
}

TEST(QwsLikeGenerator, LongTailAttributesAreSkewed) {
  QwsLikeGenerator gen(1, 23);  // ResponseTime only
  const PointSet raw = gen.generate_raw(5000);
  common::RunningStats s;
  for (std::size_t i = 0; i < raw.size(); ++i) s.add(raw.at(i, 0));
  const auto& attr = gen.schema()[0];
  const double midpoint = (attr.min + attr.max) / 2.0;
  // Long-tail-low: mean well below the midpoint of the range.
  EXPECT_LT(s.mean(), midpoint);
}

}  // namespace
}  // namespace mrsky::data
