// The `.mrb` block store: round-trip fidelity, footer statistics, lazy
// checksum verification, typed corruption errors, and the DatasetSource
// seam every consumer programs against (DESIGN.md decision 16).
#include "src/dataset/block_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <iterator>
#include <vector>

#include "src/common/error.hpp"
#include "src/dataset/generators.hpp"
#include "src/dataset/io.hpp"
#include "src/dataset/record_file.hpp"
#include "src/dataset/source.hpp"
#include "src/skyline/algorithms.hpp"

namespace mrsky::data {
namespace {

std::string temp_path(const std::string& name) { return testing::TempDir() + "/" + name; }

std::vector<char> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void flip_byte_at(const std::string& path, std::streamoff offset) {
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekg(offset);
  char byte = 0;
  file.read(&byte, 1);
  file.seekp(offset);
  byte = static_cast<char>(byte ^ 0x40);
  file.write(&byte, 1);
}

TEST(BlockStore, RoundTripExactBits) {
  const PointSet original = generate(Distribution::kAnticorrelated, 1000, 5, 42);
  const std::string path = temp_path("bs_roundtrip.mrb");
  write_block_store(path, original, /*block_rows=*/128);
  const BlockStore store(path);
  EXPECT_EQ(store.dim(), 5u);
  EXPECT_EQ(store.rows(), 1000u);
  EXPECT_EQ(store.block_rows(), 128u);
  EXPECT_EQ(store.block_count(), 8u);  // 7 full + 1 partial
  EXPECT_EQ(store.materialize(), original);  // bitwise: binary format loses nothing
}

TEST(BlockStore, WriterOutputIndependentOfAppendBatching) {
  const PointSet ps = generate(Distribution::kCorrelated, 300, 4, 7);
  const std::string row_wise = temp_path("bs_rowwise.mrb");
  const std::string bulk = temp_path("bs_bulk.mrb");
  {
    BlockStoreWriter writer(row_wise, 4, 37);  // odd capacity on purpose
    for (std::size_t i = 0; i < ps.size(); ++i) writer.append(ps.id(i), ps.point(i));
    writer.close();
    EXPECT_EQ(writer.rows_written(), 300u);
    EXPECT_EQ(writer.blocks_written(), 9u);  // ceil(300 / 37)
  }
  {
    BlockStoreWriter writer(bulk, 4, 37);
    writer.append(ps);
    writer.close();
  }
  EXPECT_EQ(read_bytes(row_wise), read_bytes(bulk));
}

TEST(BlockStore, EmptySetRoundTrips) {
  const std::string path = temp_path("bs_empty.mrb");
  write_block_store(path, PointSet(3));
  const BlockStore store(path);
  EXPECT_EQ(store.dim(), 3u);
  EXPECT_EQ(store.rows(), 0u);
  EXPECT_EQ(store.block_count(), 0u);
  EXPECT_TRUE(store.materialize().empty());
}

TEST(BlockStore, FooterCornersAreComponentwiseMinMax) {
  const PointSet ps = generate(Distribution::kIndependent, 500, 3, 11);
  const std::string path = temp_path("bs_corners.mrb");
  write_block_store(path, ps, 64);
  const BlockStore store(path);
  std::size_t row = 0;
  for (std::size_t b = 0; b < store.block_count(); ++b) {
    PointSet block(3);
    store.append_block_to(b, block);
    ASSERT_EQ(block.size(), store.rows_in_block(b));
    const auto min = block.attribute_min();
    const auto max = block.attribute_max();
    const auto stored_min = store.block_min(b);
    const auto stored_max = store.block_max(b);
    for (std::size_t a = 0; a < 3; ++a) {
      EXPECT_EQ(stored_min[a], min[a]) << "block " << b << " attr " << a;
      EXPECT_EQ(stored_max[a], max[a]) << "block " << b << " attr " << a;
    }
    // Blocks partition the file in writer order, ids preserved.
    for (std::size_t i = 0; i < block.size(); ++i) {
      EXPECT_EQ(block.id(i), ps.id(row + i));
    }
    row += block.size();
  }
  EXPECT_EQ(row, ps.size());
}

TEST(BlockStore, BlockRefGathersTheOriginalRows) {
  const PointSet ps = generate(Distribution::kIndependent, 100, 4, 13);
  const std::string path = temp_path("bs_ref.mrb");
  write_block_store(path, ps, 60);  // partial second block, partial last tile
  const BlockStore store(path);
  std::vector<double> row(4);
  std::size_t global = 0;
  for (std::size_t b = 0; b < store.block_count(); ++b) {
    const BlockStore::BlockRef ref = store.block(b);
    ASSERT_EQ(ref.dim, 4u);
    for (std::size_t r = 0; r < ref.rows; ++r, ++global) {
      ref.copy_row(r, row.data());
      EXPECT_EQ(ref.ids[r], ps.id(global));
      for (std::size_t a = 0; a < 4; ++a) EXPECT_EQ(row[a], ps.at(global, a));
    }
    // Dead lanes of the last tile are masked out.
    const std::size_t last = ref.tile_count() - 1;
    const std::size_t live = ref.rows - last * blockfmt::kTileLanes;
    EXPECT_EQ(ref.valid_mask(last), (std::uint32_t{1} << live) - 1);
    store.release(b);
  }
  EXPECT_EQ(global, ps.size());
}

TEST(BlockStore, BlockSkylineRowsMatchesNaiveSkyline) {
  const PointSet ps = generate(Distribution::kAnticorrelated, 400, 4, 17);
  const std::string path = temp_path("bs_blocksky.mrb");
  write_block_store(path, ps, 128);
  const BlockStore store(path);
  for (std::size_t b = 0; b < store.block_count(); ++b) {
    PointSet block(4);
    store.append_block_to(b, block);
    const auto expected = sorted_ids(skyline::naive_skyline(block));
    std::vector<PointId> actual;
    for (std::size_t r : store.block_skyline_rows(b)) actual.push_back(block.id(r));
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << "block " << b;
  }
}

TEST(BlockStore, MissingFileThrows) {
  EXPECT_THROW(BlockStore("/no/such/file.mrb"), mrsky::RuntimeError);
}

TEST(BlockStore, BadMagicRejected) {
  const std::string path = temp_path("bs_badmagic.mrb");
  std::ofstream file(path, std::ios::binary);
  file << "NOTABLOCKSTORE------------------------------------------";
  file.close();
  EXPECT_THROW(BlockStore{path}, mrsky::RuntimeError);
}

TEST(BlockStore, VersionMismatchRejected) {
  const std::string path = temp_path("bs_badversion.mrb");
  write_block_store(path, generate(Distribution::kIndependent, 50, 2, 19), 32);
  flip_byte_at(path, 4);  // u32 version lives right after the magic
  EXPECT_THROW(BlockStore{path}, mrsky::RuntimeError);
}

TEST(BlockStore, TruncationDetectedAtOpen) {
  const PointSet ps = generate(Distribution::kIndependent, 200, 2, 23);
  const std::string src = temp_path("bs_full.mrb");
  const std::string dst = temp_path("bs_truncated.mrb");
  write_block_store(src, ps, 100);
  const std::vector<char> bytes = read_bytes(src);
  std::ofstream out(dst, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 16));
  out.close();
  EXPECT_THROW(BlockStore{dst}, mrsky::RuntimeError);
}

TEST(BlockStore, FooterCorruptionDetectedAtOpen) {
  const std::string path = temp_path("bs_badfooter.mrb");
  write_block_store(path, generate(Distribution::kIndependent, 200, 2, 29), 100);
  // The footer sits between the payload and the fixed-size trailer; flip a
  // byte inside one of its index entries.
  const auto size = static_cast<std::streamoff>(read_bytes(path).size());
  flip_byte_at(path, size - static_cast<std::streamoff>(blockfmt::kTrailerBytes) - 24);
  EXPECT_THROW(BlockStore{path}, mrsky::RuntimeError);
}

TEST(BlockStore, PayloadCorruptionIsLazyAndTyped) {
  const PointSet ps = generate(Distribution::kIndependent, 200, 2, 31);
  const std::string path = temp_path("bs_badpayload.mrb");
  write_block_store(path, ps, 100);
  flip_byte_at(path, static_cast<std::streamoff>(blockfmt::kHeaderBytes) + 64);
  // Open succeeds (the footer is intact) and footer-only statistics never
  // touch the payload...
  const BlockStore store(path);
  EXPECT_EQ(store.block_count(), 2u);
  EXPECT_EQ(store.rows_in_block(0), 100u);
  EXPECT_FALSE(store.block_min(0).empty());
  // ...but the first page access to block 0 detects the flip.
  EXPECT_THROW((void)store.block(0), mrsky::RuntimeError);
  EXPECT_THROW(store.verify_block(0), mrsky::RuntimeError);
  EXPECT_THROW((void)store.materialize(), mrsky::RuntimeError);
  // Block 1 is untouched and fully readable.
  EXPECT_NO_THROW(store.verify_block(1));
  PointSet second(2);
  store.append_block_to(1, second);
  EXPECT_EQ(second.size(), 100u);
  EXPECT_EQ(second.id(0), ps.id(100));
}

TEST(BlockStore, LenientMaterializeDropsCorruptBlockWhole) {
  const PointSet ps = generate(Distribution::kIndependent, 200, 2, 37);
  const std::string path = temp_path("bs_lenient.mrb");
  write_block_store(path, ps, 100);
  flip_byte_at(path, static_cast<std::streamoff>(blockfmt::kHeaderBytes) + 64);
  const BlockStore store(path);
  ParseReport report;
  const PointSet loaded = store.materialize(&report);
  ASSERT_EQ(loaded.size(), 100u);
  EXPECT_EQ(loaded.id(0), ps.id(100));  // survivors are the second block
  EXPECT_EQ(report.rows_read, 100u);
  EXPECT_EQ(report.rows_skipped, 100u);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].row, 0u);  // issue rows are block indices
  EXPECT_NE(report.issues[0].reason.find("checksum"), std::string::npos);
}

TEST(BlockStore, ZorderPermutationIsADeterministicPermutation) {
  const PointSet ps = generate(Distribution::kClustered, 500, 4, 41);
  const std::vector<std::size_t> perm = zorder_permutation(ps);
  EXPECT_EQ(perm, zorder_permutation(ps));
  std::vector<std::size_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
  // Reordering rows permutes, never alters, the stored set.
  const std::string path = temp_path("bs_zorder.mrb");
  write_block_store(path, ps.select(perm), 64);
  const PointSet loaded = BlockStore(path).materialize();
  EXPECT_EQ(sorted_ids(loaded), sorted_ids(ps));
}

// ---------------------------------------------------------------------------
// DatasetSource: the uniform interface over resident sets, .mrb files and
// streamed CSVs.
// ---------------------------------------------------------------------------

TEST(DatasetSource, PointSetSourceIsResidentAndBlocksCoverEverything) {
  const PointSet ps = generate(Distribution::kIndependent, 250, 3, 43);
  const PointSetSource source(ps);
  EXPECT_EQ(source.dim(), 3u);
  EXPECT_EQ(source.size(), 250u);
  ASSERT_EQ(source.resident(), &ps);  // zero-copy: the legacy fast path
  PointSet reassembled(3);
  std::size_t stat_rows = 0;
  for (std::size_t b = 0; b < source.block_count(); ++b) {
    const BlockStats stats = source.block_stats(b);
    EXPECT_FALSE(stats.has_corners);  // virtual blocks never prune
    stat_rows += stats.rows;
    source.read_block(b, reassembled);
  }
  EXPECT_EQ(stat_rows, ps.size());
  EXPECT_EQ(reassembled, ps);
  EXPECT_EQ(source.materialize(), ps);
}

TEST(DatasetSource, BlockStoreSourceExposesFooterCorners) {
  const PointSet ps = generate(Distribution::kAnticorrelated, 300, 4, 47);
  const std::string path = temp_path("src_store.mrb");
  write_block_store(path, ps, 64);
  const BlockStoreSource source(path);
  EXPECT_EQ(source.resident(), nullptr);
  EXPECT_EQ(source.block_count(), source.store().block_count());
  std::uint64_t bytes = 0;
  for (std::size_t b = 0; b < source.block_count(); ++b) {
    const BlockStats stats = source.block_stats(b);
    ASSERT_TRUE(stats.has_corners);
    EXPECT_EQ(stats.rows, source.store().rows_in_block(b));
    const auto min = source.store().block_min(b);
    EXPECT_TRUE(std::equal(min.begin(), min.end(), stats.min_corner.begin()));
    bytes += stats.bytes;
    source.release_block(b);
  }
  EXPECT_GT(bytes, 0u);
  EXPECT_EQ(source.materialize(), ps);
}

TEST(DatasetSource, SampleIsDeterministicBoundedAndReleased) {
  const PointSet ps = generate(Distribution::kIndependent, 1000, 3, 53);
  const std::string path = temp_path("src_sample.mrb");
  write_block_store(path, ps, 64);
  const BlockStoreSource source(path);
  const PointSet sample = source.sample(100, 0x5a3e);
  EXPECT_EQ(sample.size(), 100u);
  EXPECT_EQ(sample, source.sample(100, 0x5a3e));  // pure function of (target, seed)
  // Every sampled row is a real row of the dataset, bits intact.
  const auto ids = sorted_ids(ps);
  for (std::size_t i = 0; i < sample.size(); ++i) {
    EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), sample.id(i)));
  }
  // target >= size returns everything.
  EXPECT_EQ(source.sample(5000, 1).size(), ps.size());
}

TEST(DatasetSource, CsvSourceStreamsThroughTemporaryBlocks) {
  const PointSet ps = generate(Distribution::kIndependent, 200, 3, 59);
  const std::string csv = temp_path("src_data.csv");
  write_csv_file(csv, ps);
  const CsvSource source(csv, {}, nullptr, /*block_rows=*/32);
  EXPECT_EQ(source.dim(), 3u);
  EXPECT_EQ(source.size(), 200u);
  EXPECT_EQ(source.block_count(), 7u);  // ceil(200 / 32)
  EXPECT_EQ(sorted_ids(source.materialize()), sorted_ids(ps));
}

TEST(DatasetSource, CsvSourceLenientReportsDroppedRows) {
  const std::string csv = temp_path("src_bad.csv");
  {
    std::ofstream out(csv);
    out << "id,a,b\n0,1.0,2.0\n1,not_a_number,3.0\n2,4.0,5.0\n";
  }
  CsvReadOptions options;
  options.lenient = true;
  ParseReport report;
  const CsvSource source(csv, options, &report);
  EXPECT_EQ(source.size(), 2u);
  EXPECT_EQ(report.rows_skipped, 1u);
}

TEST(DatasetSource, OpenDatasetDispatchesOnExtension) {
  const PointSet ps = generate(Distribution::kIndependent, 120, 2, 61);
  const std::string mrb = temp_path("open_me.mrb");
  const std::string mrsk = temp_path("open_me.mrsk");
  const std::string csv = temp_path("open_me.csv");
  write_block_store(mrb, ps, 32);
  write_record_file(mrsk, ps);
  write_csv_file(csv, ps);

  const auto from_mrb = open_dataset(mrb);
  EXPECT_EQ(from_mrb->resident(), nullptr);  // stays out of core
  EXPECT_EQ(from_mrb->materialize(), ps);

  const auto from_mrsk = open_dataset(mrsk);
  ASSERT_NE(from_mrsk->resident(), nullptr);  // record files materialise
  EXPECT_EQ(*from_mrsk->resident(), ps);

  const auto from_csv = open_dataset(csv);
  EXPECT_EQ(from_csv->size(), ps.size());
  EXPECT_EQ(sorted_ids(from_csv->materialize()), sorted_ids(ps));
}

}  // namespace
}  // namespace mrsky::data
