#include "src/dataset/generators.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/error.hpp"
#include "src/common/stats.hpp"

namespace mrsky::data {
namespace {

// Parameterised sanity sweep: every distribution must produce the requested
// shape, stay inside [0, 1]^d, and be deterministic under the same seed.
class GeneratorSweep : public testing::TestWithParam<Distribution> {};

TEST_P(GeneratorSweep, ShapeMatchesRequest) {
  const PointSet ps = generate(GetParam(), 500, 4, 42);
  EXPECT_EQ(ps.size(), 500u);
  EXPECT_EQ(ps.dim(), 4u);
}

TEST_P(GeneratorSweep, ValuesInsideUnitCube) {
  const PointSet ps = generate(GetParam(), 2000, 5, 7);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    for (std::size_t a = 0; a < ps.dim(); ++a) {
      EXPECT_GE(ps.at(i, a), 0.0);
      EXPECT_LE(ps.at(i, a), 1.0);
    }
  }
}

TEST_P(GeneratorSweep, SameSeedSameData) {
  const PointSet a = generate(GetParam(), 300, 3, 99);
  const PointSet b = generate(GetParam(), 300, 3, 99);
  EXPECT_EQ(a, b);
}

TEST_P(GeneratorSweep, DifferentSeedDifferentData) {
  const PointSet a = generate(GetParam(), 300, 3, 1);
  const PointSet b = generate(GetParam(), 300, 3, 2);
  EXPECT_NE(a, b);
}

TEST_P(GeneratorSweep, SingleDimensionSupported) {
  const PointSet ps = generate(GetParam(), 100, 1, 5);
  EXPECT_EQ(ps.dim(), 1u);
  EXPECT_EQ(ps.size(), 100u);
}

TEST_P(GeneratorSweep, ZeroPointsIsEmpty) {
  const PointSet ps = generate(GetParam(), 0, 3, 5);
  EXPECT_TRUE(ps.empty());
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, GeneratorSweep,
                         testing::Values(Distribution::kIndependent, Distribution::kCorrelated,
                                         Distribution::kAnticorrelated,
                                         Distribution::kClustered),
                         [](const auto& info) { return to_string(info.param); });

TEST(Generators, CorrelatedAttributesMoveTogether) {
  const PointSet ps = generate(Distribution::kCorrelated, 5000, 2, 11);
  std::vector<double> xs, ys;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    xs.push_back(ps.at(i, 0));
    ys.push_back(ps.at(i, 1));
  }
  EXPECT_GT(common::pearson_correlation(xs, ys), 0.8);
}

TEST(Generators, AnticorrelatedAttributesOppose) {
  const PointSet ps = generate(Distribution::kAnticorrelated, 5000, 2, 11);
  std::vector<double> xs, ys;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    xs.push_back(ps.at(i, 0));
    ys.push_back(ps.at(i, 1));
  }
  EXPECT_LT(common::pearson_correlation(xs, ys), -0.5);
}

TEST(Generators, IndependentAttributesUncorrelated) {
  const PointSet ps = generate(Distribution::kIndependent, 5000, 2, 11);
  std::vector<double> xs, ys;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    xs.push_back(ps.at(i, 0));
    ys.push_back(ps.at(i, 1));
  }
  EXPECT_NEAR(common::pearson_correlation(xs, ys), 0.0, 0.05);
}

TEST(Generators, AnticorrelatedSumsConcentrateNearHalf) {
  const std::size_t d = 6;
  const PointSet ps = generate(Distribution::kAnticorrelated, 2000, d, 3);
  common::RunningStats sums;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    double s = 0.0;
    for (std::size_t a = 0; a < d; ++a) s += ps.at(i, a);
    sums.add(s / static_cast<double>(d));
  }
  EXPECT_NEAR(sums.mean(), 0.5, 0.02);
  // Per-coordinate averages spread, but the mean across coordinates is tight.
  EXPECT_LT(sums.stddev(), 0.15);
}

TEST(Generators, ClusteredRespectsClusterCount) {
  GeneratorOptions options;
  options.cluster_count = 2;
  options.cluster_spread = 0.001;  // essentially point-masses
  const PointSet ps = generate(Distribution::kClustered, 1000, 2, 17, options);
  // With two tight blobs, distinct rounded locations should be about 2.
  std::vector<std::pair<int, int>> seen;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const auto key = std::make_pair(static_cast<int>(ps.at(i, 0) * 50),
                                    static_cast<int>(ps.at(i, 1) * 50));
    if (std::find(seen.begin(), seen.end(), key) == seen.end()) seen.push_back(key);
  }
  EXPECT_LE(seen.size(), 6u);  // two blobs, a little rounding slack
}

TEST(Generators, ParseRoundTrips) {
  for (Distribution d : {Distribution::kIndependent, Distribution::kCorrelated,
                         Distribution::kAnticorrelated, Distribution::kClustered}) {
    EXPECT_EQ(parse_distribution(to_string(d)), d);
  }
}

TEST(Generators, ParseAliases) {
  EXPECT_EQ(parse_distribution("indep"), Distribution::kIndependent);
  EXPECT_EQ(parse_distribution("anti"), Distribution::kAnticorrelated);
  EXPECT_EQ(parse_distribution("corr"), Distribution::kCorrelated);
}

TEST(Generators, ParseRejectsUnknown) {
  EXPECT_THROW(parse_distribution("zipfian"), RuntimeError);
}

TEST(Generators, RejectsZeroDimension) {
  EXPECT_THROW(generate(Distribution::kIndependent, 10, 0, 1), InvalidArgument);
}

TEST(Generators, ClusteredRejectsZeroClusters) {
  common::Rng rng(1);
  EXPECT_THROW(generate_clustered(10, 2, rng, 0, 0.1), InvalidArgument);
}

}  // namespace
}  // namespace mrsky::data
