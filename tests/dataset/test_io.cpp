#include "src/dataset/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "src/common/error.hpp"
#include "src/dataset/generators.hpp"

namespace mrsky::data {
namespace {

TEST(CsvIo, RoundTripWithIdsAndHeader) {
  const PointSet original = generate(Distribution::kIndependent, 50, 4, 42);
  std::stringstream buffer;
  write_csv(buffer, original);
  const PointSet loaded = read_csv(buffer);
  EXPECT_EQ(loaded, original);
}

TEST(CsvIo, RoundTripWithoutHeader) {
  const PointSet original = generate(Distribution::kCorrelated, 20, 3, 1);
  std::stringstream buffer;
  CsvWriteOptions options;
  options.with_header = false;
  options.with_ids = false;
  write_csv(buffer, original, options);
  const PointSet loaded = read_csv(buffer);
  EXPECT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.dim(), original.dim());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded.id(i), static_cast<PointId>(i));  // sequential ids assigned
    for (std::size_t a = 0; a < loaded.dim(); ++a) {
      EXPECT_NEAR(loaded.at(i, a), original.at(i, a), 1e-9);
    }
  }
}

TEST(CsvIo, HeaderWithoutIdColumn) {
  std::stringstream buffer("x,y\n1.5,2.5\n3.5,4.5\n");
  const PointSet ps = read_csv(buffer);
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps.dim(), 2u);
  EXPECT_DOUBLE_EQ(ps.at(1, 1), 4.5);
  EXPECT_EQ(ps.id(0), 0u);
}

TEST(CsvIo, IdColumnDetectedByName) {
  std::stringstream buffer("id,x\n7,1.0\n9,2.0\n");
  const PointSet ps = read_csv(buffer);
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps.dim(), 1u);
  EXPECT_EQ(ps.id(0), 7u);
  EXPECT_EQ(ps.id(1), 9u);
}

TEST(CsvIo, SkipsBlankLines) {
  std::stringstream buffer("1.0,2.0\n\n3.0,4.0\n\n");
  const PointSet ps = read_csv(buffer);
  EXPECT_EQ(ps.size(), 2u);
}

TEST(CsvIo, HandlesWindowsLineEndings) {
  std::stringstream buffer("1.0,2.0\r\n3.0,4.0\r\n");
  const PointSet ps = read_csv(buffer);
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_DOUBLE_EQ(ps.at(1, 1), 4.0);
}

TEST(CsvIo, RaggedRowThrows) {
  std::stringstream buffer("1.0,2.0\n3.0\n");
  EXPECT_THROW(read_csv(buffer), InvalidArgument);
}

TEST(CsvIo, GarbageCellThrows) {
  std::stringstream buffer("1.0,2.0\n3.0,oops\n");
  EXPECT_THROW(read_csv(buffer), InvalidArgument);
}

TEST(CsvIo, EmptyInputThrows) {
  std::stringstream buffer("");
  EXPECT_THROW(read_csv(buffer), InvalidArgument);
}

TEST(CsvIo, HeaderOnlyThrows) {
  std::stringstream buffer("x,y\n");
  EXPECT_THROW(read_csv(buffer), InvalidArgument);
}

TEST(CsvIo, FileRoundTrip) {
  const PointSet original = generate(Distribution::kIndependent, 10, 2, 5);
  const std::string path = testing::TempDir() + "/mrsky_io_test.csv";
  write_csv_file(path, original);
  const PointSet loaded = read_csv_file(path);
  EXPECT_EQ(loaded, original);
}

TEST(CsvIo, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path/file.csv"), RuntimeError);
}

TEST(CsvIo, UnwritablePathThrows) {
  const PointSet ps(1, {1.0});
  EXPECT_THROW(write_csv_file("/nonexistent/dir/file.csv", ps), RuntimeError);
}

}  // namespace
}  // namespace mrsky::data
