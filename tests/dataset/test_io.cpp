#include "src/dataset/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "src/common/error.hpp"
#include "src/dataset/generators.hpp"

namespace mrsky::data {
namespace {

TEST(CsvIo, RoundTripWithIdsAndHeader) {
  const PointSet original = generate(Distribution::kIndependent, 50, 4, 42);
  std::stringstream buffer;
  write_csv(buffer, original);
  const PointSet loaded = read_csv(buffer);
  EXPECT_EQ(loaded, original);
}

TEST(CsvIo, RoundTripWithoutHeader) {
  const PointSet original = generate(Distribution::kCorrelated, 20, 3, 1);
  std::stringstream buffer;
  CsvWriteOptions options;
  options.with_header = false;
  options.with_ids = false;
  write_csv(buffer, original, options);
  const PointSet loaded = read_csv(buffer);
  EXPECT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.dim(), original.dim());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded.id(i), static_cast<PointId>(i));  // sequential ids assigned
    for (std::size_t a = 0; a < loaded.dim(); ++a) {
      EXPECT_NEAR(loaded.at(i, a), original.at(i, a), 1e-9);
    }
  }
}

TEST(CsvIo, HeaderWithoutIdColumn) {
  std::stringstream buffer("x,y\n1.5,2.5\n3.5,4.5\n");
  const PointSet ps = read_csv(buffer);
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps.dim(), 2u);
  EXPECT_DOUBLE_EQ(ps.at(1, 1), 4.5);
  EXPECT_EQ(ps.id(0), 0u);
}

TEST(CsvIo, IdColumnDetectedByName) {
  std::stringstream buffer("id,x\n7,1.0\n9,2.0\n");
  const PointSet ps = read_csv(buffer);
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps.dim(), 1u);
  EXPECT_EQ(ps.id(0), 7u);
  EXPECT_EQ(ps.id(1), 9u);
}

TEST(CsvIo, SkipsBlankLines) {
  std::stringstream buffer("1.0,2.0\n\n3.0,4.0\n\n");
  const PointSet ps = read_csv(buffer);
  EXPECT_EQ(ps.size(), 2u);
}

TEST(CsvIo, HandlesWindowsLineEndings) {
  std::stringstream buffer("1.0,2.0\r\n3.0,4.0\r\n");
  const PointSet ps = read_csv(buffer);
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_DOUBLE_EQ(ps.at(1, 1), 4.0);
}

TEST(CsvIo, RaggedRowThrows) {
  std::stringstream buffer("1.0,2.0\n3.0\n");
  EXPECT_THROW(read_csv(buffer), InvalidArgument);
}

TEST(CsvIo, GarbageCellThrows) {
  std::stringstream buffer("1.0,2.0\n3.0,oops\n");
  EXPECT_THROW(read_csv(buffer), InvalidArgument);
}

TEST(CsvIo, EmptyInputThrows) {
  std::stringstream buffer("");
  EXPECT_THROW(read_csv(buffer), InvalidArgument);
}

TEST(CsvIo, HeaderOnlyThrows) {
  std::stringstream buffer("x,y\n");
  EXPECT_THROW(read_csv(buffer), InvalidArgument);
}

TEST(CsvIo, FileRoundTrip) {
  const PointSet original = generate(Distribution::kIndependent, 10, 2, 5);
  const std::string path = testing::TempDir() + "/mrsky_io_test.csv";
  write_csv_file(path, original);
  const PointSet loaded = read_csv_file(path);
  EXPECT_EQ(loaded, original);
}

TEST(CsvIo, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path/file.csv"), RuntimeError);
}

TEST(CsvIo, UnwritablePathThrows) {
  const PointSet ps(1, {1.0});
  EXPECT_THROW(write_csv_file("/nonexistent/dir/file.csv", ps), RuntimeError);
}

TEST(CsvIo, LenientDropsRaggedAndGarbageRows) {
  std::stringstream buffer("1.0,2.0\n3.0\n5.0,oops\n7.0,8.0\n");
  CsvReadOptions options;
  options.lenient = true;
  ParseReport report;
  const PointSet ps = read_csv(buffer, options, &report);
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_DOUBLE_EQ(ps.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(ps.at(1, 1), 8.0);
  EXPECT_EQ(report.rows_read, 2u);
  EXPECT_EQ(report.rows_skipped, 2u);
  ASSERT_EQ(report.issues.size(), 2u);
  EXPECT_FALSE(report.clean());
}

TEST(CsvIo, LenientDropsNonFiniteRows) {
  std::stringstream buffer("1.0,2.0\nnan,3.0\n4.0,inf\n5.0,6.0\n");
  CsvReadOptions options;
  options.lenient = true;
  ParseReport report;
  const PointSet ps = read_csv(buffer, options, &report);
  EXPECT_EQ(ps.size(), 2u);
  EXPECT_EQ(report.rows_skipped, 2u);
}

TEST(CsvIo, LenientKeepsNonFiniteWhenNotRequired) {
  std::stringstream buffer("1.0,2.0\nnan,3.0\n");
  CsvReadOptions options;
  options.lenient = true;
  options.require_finite = false;
  const PointSet ps = read_csv(buffer, options);
  EXPECT_EQ(ps.size(), 2u);
}

TEST(CsvIo, LenientNonNegativeFilter) {
  std::stringstream buffer("1.0,2.0\n-1.0,3.0\n4.0,5.0\n");
  CsvReadOptions options;
  options.lenient = true;
  options.require_non_negative = true;
  ParseReport report;
  const PointSet ps = read_csv(buffer, options, &report);
  EXPECT_EQ(ps.size(), 2u);
  EXPECT_EQ(report.rows_skipped, 1u);
}

TEST(CsvIo, LenientAllRowsBadStillThrows) {
  // Even lenient mode refuses to return an empty point set.
  std::stringstream buffer("oops,nope\nalso,bad\n");
  CsvReadOptions options;
  options.lenient = true;
  ParseReport report;
  EXPECT_THROW((void)read_csv(buffer, options, &report), InvalidArgument);
}

TEST(CsvIo, StrictModeIgnoresReportAndThrows) {
  // A non-null report does not imply leniency: strictness is the option.
  std::stringstream buffer("1.0,2.0\n3.0\n");
  ParseReport report;
  EXPECT_THROW((void)read_csv(buffer, {}, &report), InvalidArgument);
}

TEST(CsvIo, ParseReportCapsRecordedIssues) {
  std::stringstream buffer;
  buffer << "1.0,2.0\n";
  for (int i = 0; i < 50; ++i) buffer << "bad\n";
  CsvReadOptions options;
  options.lenient = true;
  ParseReport report;
  const PointSet ps = read_csv(buffer, options, &report);
  EXPECT_EQ(ps.size(), 1u);
  EXPECT_EQ(report.rows_skipped, 50u);
  EXPECT_EQ(report.issues.size(), ParseReport::kMaxRecordedIssues);
}

}  // namespace
}  // namespace mrsky::data
