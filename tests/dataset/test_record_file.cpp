#include "src/dataset/record_file.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <vector>

#include "src/common/error.hpp"
#include "src/dataset/generators.hpp"

namespace mrsky::data {
namespace {

std::string temp_path(const std::string& name) { return testing::TempDir() + "/" + name; }

TEST(RecordFile, RoundTripExactBits) {
  const PointSet original = generate(Distribution::kIndependent, 1000, 5, 42);
  const std::string path = temp_path("rf_roundtrip.mrsk");
  write_record_file(path, original);
  const PointSet loaded = read_record_file(path);
  EXPECT_EQ(loaded, original);  // bitwise: binary format loses nothing
}

TEST(RecordFile, EmptySetRoundTrips) {
  const std::string path = temp_path("rf_empty.mrsk");
  write_record_file(path, PointSet(3));
  const RecordFileReader reader(path);
  EXPECT_EQ(reader.record_count(), 0u);
  EXPECT_EQ(reader.dim(), 3u);
  EXPECT_TRUE(reader.read_all().empty());
}

TEST(RecordFile, BlockStructureFollowsBlockSize) {
  const PointSet ps = generate(Distribution::kIndependent, 1000, 2, 7);
  const std::string path = temp_path("rf_blocks.mrsk");
  write_record_file(path, ps, /*records_per_block=*/100);
  const RecordFileReader reader(path);
  EXPECT_EQ(reader.block_count(), 10u);
  EXPECT_EQ(reader.record_count(), 1000u);
}

TEST(RecordFile, PartialLastBlock) {
  const PointSet ps = generate(Distribution::kIndependent, 250, 2, 9);
  const std::string path = temp_path("rf_partial.mrsk");
  write_record_file(path, ps, 100);
  const RecordFileReader reader(path);
  EXPECT_EQ(reader.block_count(), 3u);  // 100 + 100 + 50
  EXPECT_EQ(reader.read_all(), ps);
}

TEST(RecordFile, SplitsAreBlockAlignedAndComplete) {
  const PointSet ps = generate(Distribution::kIndependent, 1000, 3, 11);
  const std::string path = temp_path("rf_splits.mrsk");
  write_record_file(path, ps, 64);
  const RecordFileReader reader(path);
  const auto splits = reader.splits(4);
  ASSERT_EQ(splits.size(), 4u);

  PointSet reassembled(3);
  std::size_t total = 0;
  for (const auto& split : splits) {
    const PointSet chunk = reader.read_split(split);
    EXPECT_EQ(chunk.size(), split.record_count);
    total += chunk.size();
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      reassembled.push_back(chunk.point(i), chunk.id(i));
    }
  }
  EXPECT_EQ(total, ps.size());
  EXPECT_EQ(reassembled, ps);  // contiguous splits preserve order
}

TEST(RecordFile, MoreSplitsThanBlocksClamps) {
  const PointSet ps = generate(Distribution::kIndependent, 90, 2, 13);
  const std::string path = temp_path("rf_clamp.mrsk");
  write_record_file(path, ps, 50);  // 2 blocks
  const RecordFileReader reader(path);
  EXPECT_EQ(reader.splits(16).size(), 2u);
}

TEST(RecordFile, StreamingWriterMatchesBulk) {
  const PointSet ps = generate(Distribution::kCorrelated, 300, 4, 15);
  const std::string streamed = temp_path("rf_streamed.mrsk");
  {
    RecordFileWriter writer(streamed, 4, 37);  // odd block size on purpose
    for (std::size_t i = 0; i < ps.size(); ++i) writer.append(ps.id(i), ps.point(i));
    writer.close();
    EXPECT_EQ(writer.records_written(), 300u);
  }
  EXPECT_EQ(read_record_file(streamed), ps);
}

TEST(RecordFile, AppendAfterCloseThrows) {
  const std::string path = temp_path("rf_closed.mrsk");
  RecordFileWriter writer(path, 2);
  writer.close();
  EXPECT_THROW(writer.append(0, std::vector<double>{1.0, 2.0}), mrsky::InvalidArgument);
}

TEST(RecordFile, DimensionMismatchThrows) {
  RecordFileWriter writer(temp_path("rf_dim.mrsk"), 3);
  EXPECT_THROW(writer.append(0, std::vector<double>{1.0}), mrsky::InvalidArgument);
}

TEST(RecordFile, MissingFileThrows) {
  EXPECT_THROW(RecordFileReader("/no/such/file.mrsk"), mrsky::RuntimeError);
}

TEST(RecordFile, BadMagicRejected) {
  const std::string path = temp_path("rf_badmagic.mrsk");
  std::ofstream file(path, std::ios::binary);
  file << "NOTAMAGICFILE-------------------------";
  file.close();
  EXPECT_THROW(RecordFileReader{path}, mrsky::RuntimeError);
}

TEST(RecordFile, CorruptionDetectedByChecksum) {
  const PointSet ps = generate(Distribution::kIndependent, 200, 2, 17);
  const std::string path = temp_path("rf_corrupt.mrsk");
  write_record_file(path, ps, 100);
  // Flip one payload byte in the middle of the first block.
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(100);
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(100);
    byte = static_cast<char>(byte ^ 0x40);
    file.write(&byte, 1);
  }
  const RecordFileReader reader(path);
  EXPECT_THROW((void)reader.read_all(), mrsky::RuntimeError);
}

TEST(RecordFile, TruncationDetected) {
  const PointSet ps = generate(Distribution::kIndependent, 200, 2, 19);
  const std::string src = temp_path("rf_full.mrsk");
  const std::string dst = temp_path("rf_truncated.mrsk");
  write_record_file(src, ps, 100);
  // Copy all but the last 16 bytes.
  {
    std::ifstream in(src, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    std::ofstream out(dst, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 16));
  }
  EXPECT_THROW(RecordFileReader{dst}, mrsky::RuntimeError);
}

TEST(RecordFile, LenientReadOfCleanFileIsClean) {
  const PointSet ps = generate(Distribution::kIndependent, 150, 3, 21);
  const std::string path = temp_path("rf_lenient_clean.mrsk");
  write_record_file(path, ps, 50);
  ParseReport report;
  EXPECT_EQ(read_record_file(path, &report), ps);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.rows_read, 150u);
}

TEST(RecordFile, LenientDropsCorruptBlockWhole) {
  const PointSet ps = generate(Distribution::kIndependent, 200, 2, 23);
  const std::string path = temp_path("rf_lenient_corrupt.mrsk");
  write_record_file(path, ps, 100);  // 2 blocks of 100
  // Flip one payload byte inside the first block (header is 24 bytes).
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(100);
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(100);
    byte = static_cast<char>(byte ^ 0x40);
    file.write(&byte, 1);
  }
  const RecordFileReader reader(path);
  // Strict read still refuses the file...
  EXPECT_THROW((void)reader.read_all(), mrsky::RuntimeError);
  // ...while the lenient read drops the bad block and keeps the good one.
  ParseReport report;
  const PointSet loaded = reader.read_all(&report);
  ASSERT_EQ(loaded.size(), 100u);
  EXPECT_EQ(loaded.id(0), ps.id(100));  // survivors are the second block
  EXPECT_EQ(report.rows_read, 100u);
  EXPECT_EQ(report.rows_skipped, 100u);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].row, 0u);  // issue rows are block indices
  EXPECT_NE(report.issues[0].reason.find("checksum"), std::string::npos);
}

TEST(RecordFile, LenientDropsNonFiniteRecordIndividually) {
  PointSet ps(2);
  ps.push_back(std::vector<double>{1.0, 2.0}, 10);
  ps.push_back(std::vector<double>{std::numeric_limits<double>::quiet_NaN(), 3.0}, 11);
  ps.push_back(std::vector<double>{4.0, 5.0}, 12);
  const std::string path = temp_path("rf_lenient_nan.mrsk");
  write_record_file(path, ps, 2);

  // Strict mode has no opinion on values, only structure: all three load.
  EXPECT_EQ(read_record_file(path).size(), 3u);

  ParseReport report;
  const PointSet loaded = read_record_file(path, &report);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.id(0), 10u);
  EXPECT_EQ(loaded.id(1), 12u);
  EXPECT_EQ(report.rows_read, 2u);
  EXPECT_EQ(report.rows_skipped, 1u);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_NE(report.issues[0].reason.find("non-finite"), std::string::npos);
}

TEST(RecordFile, LenientSplitReadsReportPerSplit) {
  const PointSet ps = generate(Distribution::kIndependent, 300, 2, 25);
  const std::string path = temp_path("rf_lenient_splits.mrsk");
  write_record_file(path, ps, 50);
  const RecordFileReader reader(path);
  const auto splits = reader.splits(3);
  ASSERT_EQ(splits.size(), 3u);
  std::size_t total = 0;
  for (const auto& split : splits) {
    ParseReport report;
    total += reader.read_split(split, &report).size();
    EXPECT_TRUE(report.clean());
  }
  EXPECT_EQ(total, 300u);
}

}  // namespace
}  // namespace mrsky::data
