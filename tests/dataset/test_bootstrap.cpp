#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/stats.hpp"
#include "src/dataset/generators.hpp"
#include "src/dataset/qws.hpp"

namespace mrsky::data {
namespace {

PointSet seed_points() {
  QwsLikeGenerator gen(4, 61);
  return gen.generate_raw(500);
}

TEST(BootstrapResampler, GeneratesRequestedCount) {
  BootstrapResampler resampler(seed_points(), 0.05);
  common::Rng rng(1);
  const PointSet out = resampler.generate(1234, rng);
  EXPECT_EQ(out.size(), 1234u);
  EXPECT_EQ(out.dim(), 4u);
}

TEST(BootstrapResampler, StaysWithinSeedRanges) {
  const PointSet seed = seed_points();
  BootstrapResampler resampler(seed, 0.2);
  common::Rng rng(2);
  const PointSet out = resampler.generate(5000, rng);
  const auto lo = seed.attribute_min();
  const auto hi = seed.attribute_max();
  for (std::size_t i = 0; i < out.size(); ++i) {
    for (std::size_t a = 0; a < out.dim(); ++a) {
      EXPECT_GE(out.at(i, a), lo[a]);
      EXPECT_LE(out.at(i, a), hi[a]);
    }
  }
}

TEST(BootstrapResampler, ZeroJitterReproducesSeedRows) {
  const PointSet seed = seed_points();
  BootstrapResampler resampler(seed, 0.0);
  common::Rng rng(3);
  const PointSet out = resampler.generate(200, rng);
  for (std::size_t i = 0; i < out.size(); ++i) {
    bool found = false;
    for (std::size_t s = 0; s < seed.size() && !found; ++s) {
      found = std::equal(out.point(i).begin(), out.point(i).end(), seed.point(s).begin());
    }
    EXPECT_TRUE(found);
  }
}

TEST(BootstrapResampler, NarrowJitterStaysNearASeedRow) {
  // The paper: "limited to a narrow range following the distribution" —
  // every generated point must sit within jitter of some seed row.
  const PointSet seed = seed_points();
  const double jitter = 0.05;
  BootstrapResampler resampler(seed, jitter);
  common::Rng rng(4);
  const PointSet out = resampler.generate(300, rng);
  for (std::size_t i = 0; i < out.size(); ++i) {
    bool near_seed = false;
    for (std::size_t s = 0; s < seed.size() && !near_seed; ++s) {
      bool all_close = true;
      for (std::size_t a = 0; a < out.dim() && all_close; ++a) {
        const double ref = seed.at(s, a);
        all_close = std::abs(out.at(i, a) - ref) <= std::abs(ref) * jitter + 1e-9;
      }
      near_seed = all_close;
    }
    EXPECT_TRUE(near_seed) << "row " << i << " is not near any seed row";
  }
}

TEST(BootstrapResampler, InheritsCrossAttributeCorrelation) {
  // Seed rows with strong correlation between attributes 0 and 1; marginal
  // generators would lose it, the bootstrap must keep it.
  const PointSet seed = generate(Distribution::kCorrelated, 1000, 2, 65);
  BootstrapResampler resampler(seed, 0.02);
  common::Rng rng(5);
  const PointSet out = resampler.generate(4000, rng);
  std::vector<double> xs, ys;
  for (std::size_t i = 0; i < out.size(); ++i) {
    xs.push_back(out.at(i, 0));
    ys.push_back(out.at(i, 1));
  }
  EXPECT_GT(common::pearson_correlation(xs, ys), 0.8);
}

TEST(BootstrapResampler, DeterministicUnderRng) {
  BootstrapResampler resampler(seed_points(), 0.05);
  common::Rng a(7);
  common::Rng b(7);
  EXPECT_EQ(resampler.generate(100, a), resampler.generate(100, b));
}

TEST(BootstrapResampler, Validation) {
  EXPECT_THROW(BootstrapResampler(PointSet(3), 0.05), mrsky::InvalidArgument);
  EXPECT_THROW(BootstrapResampler(seed_points(), 1.0), mrsky::InvalidArgument);
  EXPECT_THROW(BootstrapResampler(seed_points(), -0.1), mrsky::InvalidArgument);
}

}  // namespace
}  // namespace mrsky::data
