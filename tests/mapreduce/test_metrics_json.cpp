#include "src/mapreduce/metrics_json.hpp"

#include <gtest/gtest.h>

#include "tests/support/trace_test_utils.hpp"

namespace mrsky::mr {
namespace {

TaskMetrics sample_task() {
  TaskMetrics t;
  t.records_in = 10;
  t.records_out = 4;
  t.work_units = 123;
  t.wall_ns = 456;
  t.counters["x.y"] = 7;
  return t;
}

TEST(MetricsJson, TaskFieldsSerialised) {
  const std::string json = to_json(sample_task());
  EXPECT_NE(json.find("\"records_in\":10"), std::string::npos);
  EXPECT_NE(json.find("\"records_out\":4"), std::string::npos);
  EXPECT_NE(json.find("\"work_units\":123"), std::string::npos);
  EXPECT_NE(json.find("\"wall_ns\":456"), std::string::npos);
  EXPECT_NE(json.find("\"x.y\":7"), std::string::npos);
}

TEST(MetricsJson, EmptyCountersAreEmptyObject) {
  TaskMetrics t;
  EXPECT_NE(to_json(t).find("\"counters\":{}"), std::string::npos);
}

TEST(MetricsJson, JobIncludesTaskArraysAndTotals) {
  JobMetrics m;
  m.job_name = "demo";
  m.map_tasks.push_back(sample_task());
  m.map_tasks.push_back(sample_task());
  m.reduce_tasks.push_back(sample_task());
  m.shuffle_records = 42;
  m.shuffle_bytes = 4200;
  const std::string json = to_json(m);
  EXPECT_NE(json.find("\"job_name\":\"demo\""), std::string::npos);
  EXPECT_NE(json.find("\"shuffle_records\":42"), std::string::npos);
  EXPECT_NE(json.find("\"shuffle_bytes\":4200"), std::string::npos);
  EXPECT_NE(json.find("\"counter_totals\":{\"x.y\":21}"), std::string::npos);
  // Two map tasks -> two task objects in the array.
  std::size_t count = 0;
  for (std::size_t pos = json.find("\"records_in\""); pos != std::string::npos;
       pos = json.find("\"records_in\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 3u);
}

TEST(MetricsJson, JobNameIsEscaped) {
  JobMetrics m;
  m.job_name = "with \"quotes\" and \\slash";
  const std::string json = to_json(m);
  EXPECT_NE(json.find("with \\\"quotes\\\" and \\\\slash"), std::string::npos);
}

TEST(MetricsJson, ControlCharactersAreEscaped) {
  // Names below 0x20 must come out as \uXXXX (or the short escapes), never
  // raw — a raw control byte makes the whole document unparseable.
  JobMetrics m;
  m.job_name = std::string("line1\nline2\ttab\rret") + '\x01' + "and" + '\x1f' + "end";
  const std::string json = to_json(m);
  EXPECT_NE(json.find("line1\\nline2\\ttab\\rret\\u0001and\\u001fend"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_TRUE(test::valid_json(json));
}

TEST(MetricsJson, HostileCounterNamesStayValidJson) {
  JobMetrics m;
  TaskMetrics t;
  t.counters[std::string("evil\"\\\x02.counter")] = 5;
  m.map_tasks.push_back(t);
  const std::string json = to_json(m);
  EXPECT_TRUE(test::valid_json(json));
  EXPECT_NE(json.find("evil\\\"\\\\\\u0002.counter"), std::string::npos);
}

TEST(MetricsJson, PhaseTimesSerialised) {
  PhaseTimes t{1.5, 2.25, 3.0};
  const std::string json = to_json(t);
  EXPECT_NE(json.find("\"startup_seconds\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"map_seconds\":2.25"), std::string::npos);
  EXPECT_NE(json.find("\"reduce_seconds\":3"), std::string::npos);
  EXPECT_NE(json.find("\"total_seconds\":6.75"), std::string::npos);
}

TEST(MetricsJson, FailureReportSerialised) {
  JobMetrics m;
  m.job_name = "faulty";
  TaskMetrics t = sample_task();
  t.attempts = 3;
  t.records_skipped = 1;
  t.wasted_records = 6;
  t.wasted_work_units = 70;
  t.failure_events.push_back(TaskFailureEvent{0, 2, 0, 6, 70, true, 0});
  t.failure_events.push_back(TaskFailureEvent{0, 2, 1, 0, 0, false, 4});
  m.map_tasks.push_back(t);
  const std::string json = to_json(m);
  // Per-task fields.
  EXPECT_NE(json.find("\"attempts\":3"), std::string::npos);
  EXPECT_NE(json.find("\"records_skipped\":1"), std::string::npos);
  EXPECT_NE(json.find("\"wasted_records\":6"), std::string::npos);
  EXPECT_NE(json.find("\"wasted_work_units\":70"), std::string::npos);
  // Aggregated failure ledger with the event detail.
  EXPECT_NE(json.find("\"failures\":{\"tasks_retried\":1"), std::string::npos);
  EXPECT_NE(json.find("\"injected\":true"), std::string::npos);
  EXPECT_NE(json.find("\"injected\":false,\"bad_record\":4"), std::string::npos);
}

TEST(MetricsJson, CleanJobHasEmptyFailureReport) {
  JobMetrics m;
  m.map_tasks.push_back(sample_task());
  const std::string json = to_json(m);
  EXPECT_NE(json.find("\"failures\":{\"tasks_retried\":0,\"wasted_records\":0,"
                      "\"wasted_work_units\":0,\"records_skipped\":0,\"events\":[]}"),
            std::string::npos);
}

TEST(MetricsJson, BalancedBraces) {
  JobMetrics m;
  m.job_name = "brace-check";
  m.map_tasks.push_back(sample_task());
  const std::string json = to_json(m);
  long depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace mrsky::mr
