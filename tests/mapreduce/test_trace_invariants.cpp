// Trace-invariant tests (ISSUE 4): the spans the engine and the cluster
// simulator record must form a well-shaped timeline — every task traced,
// retries before successes, merge rounds matching the fan-in arithmetic,
// no lane running two things at once — under both execution modes.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/common/trace.hpp"
#include "src/core/mr_skyline.hpp"
#include "src/dataset/generators.hpp"
#include "src/mapreduce/trace_export.hpp"
#include "tests/support/trace_test_utils.hpp"

namespace mrsky {
namespace {

using common::TraceRecorder;
using common::TraceSpan;

data::PointSet workload() {
  return data::generate(data::Distribution::kAnticorrelated, 400, 4, /*seed=*/77);
}

core::MRSkylineResult traced_run(TraceRecorder& rec, core::MRSkylineConfig config,
                                 const data::PointSet& points) {
  config.run_options.trace = &rec;
  return core::run_mr_skyline(points, config);
}

std::size_t expected_merge_rounds(std::size_t groups, std::size_t fan_in) {
  std::size_t rounds = 0;
  do {
    ++rounds;
    groups = fan_in == 0 ? 1 : (groups + fan_in - 1) / fan_in;
  } while (groups > 1);
  return rounds;
}

std::size_t total_tasks(const mr::JobMetrics& job, bool reduce) {
  return reduce ? job.reduce_tasks.size() : job.map_tasks.size();
}

class TraceInvariants : public testing::TestWithParam<mr::ExecutionMode> {
 protected:
  core::MRSkylineConfig base_config() const {
    core::MRSkylineConfig config;
    config.servers = 3;
    config.run_options.mode = GetParam();
    config.run_options.num_threads = 4;
    return config;
  }
};

TEST_P(TraceInvariants, EngineTimelineIsWellShaped) {
  TraceRecorder rec;
  traced_run(rec, base_config(), workload());
  const auto spans = rec.spans();
  EXPECT_TRUE(test::well_formed(spans));
  EXPECT_TRUE(test::no_sibling_overlap(spans));
  EXPECT_TRUE(test::valid_json(rec.to_chrome_json()));
}

TEST_P(TraceInvariants, EveryTaskAndShuffleIsTraced) {
  TraceRecorder rec;
  const auto result = traced_run(rec, base_config(), workload());
  const auto spans = rec.spans();

  std::size_t map_tasks = total_tasks(result.partition_job, false);
  std::size_t reduce_tasks = total_tasks(result.partition_job, true);
  for (const auto& round : result.merge_rounds) {
    map_tasks += total_tasks(round, false);
    reduce_tasks += total_tasks(round, true);
  }
  EXPECT_EQ(test::spans_named(spans, "map").size(), map_tasks);
  EXPECT_EQ(test::spans_named(spans, "reduce").size(), reduce_tasks);
  // One attempt span per successful (fault-free) task execution.
  EXPECT_EQ(test::spans_in_category(spans, "attempt").size(), map_tasks + reduce_tasks);
  // One shuffle span per job; pipeline + partition-fit recorded once each.
  EXPECT_EQ(test::spans_named(spans, "shuffle").size(), 1 + result.merge_rounds.size());
  EXPECT_EQ(test::spans_named(spans, "mr-skyline").size(), 1u);
  EXPECT_EQ(test::spans_named(spans, "partition-fit").size(), 1u);
  // Job spans carry their configured task counts.
  const auto jobs = test::spans_in_category(spans, "job");
  ASSERT_EQ(jobs.size(), 1 + result.merge_rounds.size());
  EXPECT_EQ(jobs[0]->name, "partition-local-skyline");
  EXPECT_EQ(jobs[0]->arg_int("map_tasks"),
            static_cast<std::int64_t>(result.partition_job.map_tasks.size()));
}

TEST_P(TraceInvariants, MergeRoundsMatchFanInArithmetic) {
  for (std::size_t fan_in : {std::size_t{0}, std::size_t{2}, std::size_t{3}}) {
    TraceRecorder rec;
    auto config = base_config();
    config.merge_fan_in = fan_in;
    const auto result = traced_run(rec, config, workload());
    // Job 1 runs one reduce task per partition key, and that key count seeds
    // the merge-group arithmetic.
    const std::size_t expected =
        expected_merge_rounds(result.partition_job.reduce_tasks.size(), fan_in);
    EXPECT_EQ(result.merge_rounds.size(), expected) << "fan_in=" << fan_in;
    const auto spans = rec.spans();
    for (std::size_t round = 1; round <= expected; ++round) {
      EXPECT_EQ(test::spans_named(spans, "merge-round-" + std::to_string(round)).size(), 1u)
          << "fan_in=" << fan_in;
    }
    EXPECT_EQ(test::spans_named(spans, "merge-round-" + std::to_string(expected + 1)).size(),
              0u);
  }
}

TEST_P(TraceInvariants, FailedAttemptsPrecedeTheSuccessfulRetry) {
  TraceRecorder rec;
  auto config = base_config();
  config.run_options.task_failure_probability = 0.3;
  config.run_options.max_task_attempts = 16;
  const auto result = traced_run(rec, config, workload());
  const auto spans = rec.spans();
  EXPECT_TRUE(test::well_formed(spans));
  EXPECT_TRUE(test::retries_precede_success(spans));

  // The failed-attempt spans account for exactly the waste the metrics report.
  std::int64_t span_waste = 0;
  std::size_t failed_spans = 0;
  for (const TraceSpan* a : test::spans_in_category(spans, "attempt")) {
    const auto* status = a->find_arg("status");
    if (status != nullptr && status->value == "failed") {
      ++failed_spans;
      span_waste += a->arg_int("wasted_records", 0);
    }
  }
  std::uint64_t metric_waste = 0;
  std::size_t metric_retries = 0;
  auto tally = [&](const mr::JobMetrics& job) {
    for (const auto* tasks : {&job.map_tasks, &job.reduce_tasks}) {
      for (const auto& t : *tasks) {
        metric_waste += t.wasted_records;
        metric_retries += t.attempts - 1;
      }
    }
  };
  tally(result.partition_job);
  for (const auto& round : result.merge_rounds) tally(round);
  EXPECT_GT(failed_spans, 0u) << "fault injection produced no failed attempts";
  EXPECT_EQ(failed_spans, metric_retries);
  EXPECT_EQ(static_cast<std::uint64_t>(span_waste), metric_waste);
}

INSTANTIATE_TEST_SUITE_P(Modes, TraceInvariants,
                         testing::Values(mr::ExecutionMode::kSequential,
                                         mr::ExecutionMode::kThreads),
                         [](const auto& param_info) {
                           return param_info.param == mr::ExecutionMode::kSequential
                                      ? "Sequential"
                                      : "Threads";
                         });

TEST(TraceInvariantsModes, SkylineIdenticalAcrossModesWithTracingOn) {
  const auto points = workload();
  std::vector<data::PointId> ids[2];
  std::vector<double> coords[2];
  const mr::ExecutionMode modes[2] = {mr::ExecutionMode::kSequential,
                                      mr::ExecutionMode::kThreads};
  for (int m = 0; m < 2; ++m) {
    TraceRecorder rec;
    core::MRSkylineConfig config;
    config.servers = 3;
    config.merge_fan_in = 2;
    config.run_options.mode = modes[m];
    config.run_options.task_failure_probability = 0.2;
    config.run_options.max_task_attempts = 16;
    const auto result = traced_run(rec, config, points);
    for (std::size_t i = 0; i < result.skyline.size(); ++i) {
      ids[m].push_back(result.skyline.id(i));
      for (double c : result.skyline.point(i)) coords[m].push_back(c);
    }
  }
  EXPECT_EQ(ids[0], ids[1]);
  EXPECT_EQ(coords[0], coords[1]);  // bitwise-identical doubles, same order
}

// --- Cluster-simulator timeline. ---

class SimulatorTrace : public testing::Test {
 protected:
  std::vector<mr::JobMetrics> pipeline_jobs() {
    core::MRSkylineConfig config;
    config.servers = 4;
    config.merge_fan_in = 2;
    const auto result = core::run_mr_skyline(workload(), config);
    std::vector<mr::JobMetrics> jobs;
    jobs.push_back(result.partition_job);
    jobs.insert(jobs.end(), result.merge_rounds.begin(), result.merge_rounds.end());
    return jobs;
  }
};

TEST_F(SimulatorTrace, ScheduledTimelineCoversEveryPlacement) {
  const auto jobs = pipeline_jobs();
  mr::ClusterModel model;
  model.servers = 4;

  TraceRecorder rec;
  const double end = mr::append_pipeline_trace(rec, jobs, model);
  EXPECT_GT(end, 0.0);

  const auto spans = rec.spans();
  EXPECT_TRUE(test::well_formed(spans));
  EXPECT_TRUE(test::no_sibling_overlap(spans));
  EXPECT_TRUE(test::valid_json(rec.to_chrome_json()));

  std::size_t expected_placements = 0;
  for (const auto& job : jobs) {
    const auto trace = mr::trace_job(job, model);
    expected_placements += trace.map.placements.size() + trace.reduce.placements.size();
  }
  EXPECT_EQ(test::spans_in_category(spans, "sim-task").size(), expected_placements);
  const auto sim_jobs = test::spans_in_category(spans, "sim-job");
  ASSERT_EQ(sim_jobs.size(), jobs.size());
  // Jobs run back-to-back on the job lane, in pipeline order.
  for (std::size_t i = 1; i < sim_jobs.size(); ++i) {
    EXPECT_GE(sim_jobs[i]->start_ns, sim_jobs[i - 1]->end_ns);
  }
  for (const TraceSpan* s : test::spans_in_category(spans, "sim-task")) {
    EXPECT_EQ(s->pid, common::kTracePidSimulator);
    EXPECT_GE(s->lane, 1u);  // lane 0 is reserved for the job timeline
  }
}

TEST_F(SimulatorTrace, NodeLossMarksReexecutedTasks) {
  const auto jobs = pipeline_jobs();
  mr::ClusterModel model;
  model.servers = 4;
  // Failure times are job-relative with the map phase at t=0; every map task
  // here costs ~1s (task startup dominates), so t=0.5 kills in-flight work.
  model.node_failures.push_back(mr::NodeFailure{/*server=*/0, /*time_seconds=*/0.5});

  TraceRecorder rec;
  mr::append_pipeline_trace(rec, jobs, model);
  const auto spans = rec.spans();
  EXPECT_TRUE(test::well_formed(spans));
  EXPECT_TRUE(test::no_sibling_overlap(spans));

  std::size_t expected_reexecuted = 0;
  for (const auto& job : jobs) {
    const auto trace = mr::trace_job(job, model);
    for (const auto* phase : {&trace.map, &trace.reduce}) {
      for (const auto& p : phase->placements) {
        if (p.reexecuted) ++expected_reexecuted;
      }
    }
  }
  std::size_t marked = 0;
  for (const TraceSpan* s : test::spans_in_category(spans, "sim-task")) {
    if (s->arg_int("reexecuted", 0) == 1) ++marked;
  }
  EXPECT_EQ(marked, expected_reexecuted);
  EXPECT_GT(marked, 0u) << "node failure at t=25s re-executed nothing";
}

}  // namespace
}  // namespace mrsky
