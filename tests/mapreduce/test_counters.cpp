#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/mapreduce/job.hpp"

namespace mrsky::mr {
namespace {

using CounterJob = JobConfig<int, int, int, int, int, int>;

CounterJob counting_job() {
  CounterJob config;
  config.name = "counting";
  config.num_map_tasks = 3;
  config.num_reduce_tasks = 2;
  config.map_fn = [](const int&, const int& v, Emitter<int, int>& out, TaskContext& ctx) {
    ctx.increment("map.records");
    if (v % 2 == 0) ctx.increment("map.even");
    out.emit(v % 4, v);
  };
  config.reduce_fn = [](const int& key, std::vector<int>& values, Emitter<int, int>& out,
                        TaskContext& ctx) {
    ctx.increment("reduce.groups");
    ctx.increment("reduce.values", values.size());
    out.emit(key, 0);
  };
  return config;
}

std::vector<KV<int, int>> numbers(int n) {
  std::vector<KV<int, int>> input;
  for (int i = 0; i < n; ++i) input.push_back({i, i});
  return input;
}

TEST(Counters, AggregateAcrossMapTasks) {
  const auto result = run_job(counting_job(), numbers(100));
  const auto totals = result.metrics.counter_totals();
  EXPECT_EQ(totals.at("map.records"), 100u);
  EXPECT_EQ(totals.at("map.even"), 50u);
}

TEST(Counters, AggregateAcrossReduceTasks) {
  const auto result = run_job(counting_job(), numbers(100));
  const auto totals = result.metrics.counter_totals();
  EXPECT_EQ(totals.at("reduce.groups"), 4u);
  EXPECT_EQ(totals.at("reduce.values"), 100u);
}

TEST(Counters, PerTaskCountersRecorded) {
  const auto result = run_job(counting_job(), numbers(30));
  std::uint64_t sum = 0;
  for (const auto& task : result.metrics.map_tasks) {
    auto it = task.counters.find("map.records");
    if (it != task.counters.end()) sum += it->second;
  }
  EXPECT_EQ(sum, 30u);
}

TEST(Counters, ThreadedMatchesSequential) {
  RunOptions threaded;
  threaded.mode = ExecutionMode::kThreads;
  threaded.num_threads = 4;
  const auto input = numbers(200);
  const auto seq = run_job(counting_job(), input);
  const auto par = run_job(counting_job(), input, threaded);
  EXPECT_EQ(seq.metrics.counter_totals(), par.metrics.counter_totals());
}

TEST(Counters, AbsentCounterAbsentFromTotals) {
  const auto result = run_job(counting_job(), numbers(10));
  const auto totals = result.metrics.counter_totals();
  EXPECT_FALSE(totals.contains("never.incremented"));
}

TEST(Counters, CustomDeltaAccumulates) {
  TaskContext ctx;
  ctx.increment("bytes", 100);
  ctx.increment("bytes", 23);
  EXPECT_EQ(ctx.counters().at("bytes"), 123u);
}

TEST(Counters, TaskMetricsMergeAddsCounters) {
  TaskMetrics a;
  a.counters["x"] = 1;
  TaskMetrics b;
  b.counters["x"] = 2;
  b.counters["y"] = 5;
  a += b;
  EXPECT_EQ(a.counters.at("x"), 3u);
  EXPECT_EQ(a.counters.at("y"), 5u);
}

}  // namespace
}  // namespace mrsky::mr
