#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/mapreduce/cluster.hpp"
#include "src/mapreduce/job.hpp"

namespace mrsky::mr {
namespace {

using FilterJob = MapOnlyConfig<int, int, int, int>;

FilterJob evens_only() {
  FilterJob config;
  config.name = "evens";
  config.num_map_tasks = 3;
  config.map_fn = [](const int& k, const int& v, Emitter<int, int>& out, TaskContext& ctx) {
    ctx.charge_work(1);
    if (v % 2 == 0) out.emit(k, v);
  };
  return config;
}

std::vector<KV<int, int>> numbers(int n) {
  std::vector<KV<int, int>> input;
  for (int i = 0; i < n; ++i) input.push_back({i, i});
  return input;
}

TEST(MapOnly, FiltersRecords) {
  const auto result = run_map_only(evens_only(), numbers(100));
  EXPECT_EQ(result.output.size(), 50u);
  for (const auto& kv : result.output) EXPECT_EQ(kv.value % 2, 0);
}

TEST(MapOnly, PreservesInputOrder) {
  const auto result = run_map_only(evens_only(), numbers(20));
  for (std::size_t i = 1; i < result.output.size(); ++i) {
    EXPECT_LT(result.output[i - 1].value, result.output[i].value);
  }
}

TEST(MapOnly, MetricsRecorded) {
  const auto result = run_map_only(evens_only(), numbers(90));
  ASSERT_EQ(result.metrics.map_tasks.size(), 3u);
  EXPECT_EQ(result.metrics.map_total().records_in, 90u);
  EXPECT_EQ(result.metrics.map_total().records_out, 45u);
  EXPECT_EQ(result.metrics.map_total().work_units, 90u);
  EXPECT_TRUE(result.metrics.reduce_tasks.empty());
  EXPECT_EQ(result.metrics.shuffle_records, 0u);
}

TEST(MapOnly, TypeChangingTransform) {
  MapOnlyConfig<int, int, std::string, double> config;
  config.name = "stringify";
  config.num_map_tasks = 2;
  config.map_fn = [](const int& k, const int& v, Emitter<std::string, double>& out,
                     TaskContext&) { out.emit("k" + std::to_string(k), v * 0.5); };
  const auto result = run_map_only(config, numbers(4));
  ASSERT_EQ(result.output.size(), 4u);
  EXPECT_EQ(result.output[0].key, "k0");
  EXPECT_DOUBLE_EQ(result.output[3].value, 1.5);
}

TEST(MapOnly, ThreadedMatchesSequential) {
  RunOptions threaded;
  threaded.mode = ExecutionMode::kThreads;
  threaded.num_threads = 4;
  const auto input = numbers(200);
  const auto seq = run_map_only(evens_only(), input);
  const auto par = run_map_only(evens_only(), input, threaded);
  ASSERT_EQ(seq.output.size(), par.output.size());
  for (std::size_t i = 0; i < seq.output.size(); ++i) {
    EXPECT_EQ(seq.output[i].value, par.output[i].value);
  }
}

TEST(MapOnly, FaultInjectionRetries) {
  RunOptions faulty;
  faulty.task_failure_probability = 0.5;
  faulty.max_task_attempts = 64;
  const auto result = run_map_only(evens_only(), numbers(60), faulty);
  EXPECT_EQ(result.output.size(), 30u);
  std::uint64_t attempts = 0;
  for (const auto& t : result.metrics.map_tasks) attempts += t.attempts;
  EXPECT_GE(attempts, 3u);
}

TEST(MapOnly, SimulatorCostsMapPhaseOnly) {
  const auto result = run_map_only(evens_only(), numbers(1000));
  ClusterModel model;
  model.servers = 2;
  const auto times = simulate_job(result.metrics, model);
  EXPECT_GT(times.map_seconds, 0.0);
  EXPECT_DOUBLE_EQ(times.reduce_seconds, 0.0);
}

TEST(MapOnly, Validation) {
  FilterJob config;
  EXPECT_THROW(run_map_only(config, numbers(5)), mrsky::InvalidArgument);
  config = evens_only();
  config.num_map_tasks = 0;
  EXPECT_THROW(run_map_only(config, numbers(5)), mrsky::InvalidArgument);
}

}  // namespace
}  // namespace mrsky::mr
