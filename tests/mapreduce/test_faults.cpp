// Fault injection (task retries) and speculative execution.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/mapreduce/cluster.hpp"
#include "src/mapreduce/job.hpp"

namespace mrsky::mr {
namespace {

using SumJob = JobConfig<int, int, int, int, int, int>;

SumJob sum_job() {
  SumJob config;
  config.name = "sum";
  config.num_map_tasks = 8;
  config.num_reduce_tasks = 4;
  config.map_fn = [](const int& k, const int& v, Emitter<int, int>& out, TaskContext&) {
    out.emit(k % 4, v);
  };
  config.reduce_fn = [](const int& key, std::vector<int>& values, Emitter<int, int>& out,
                        TaskContext&) {
    int total = 0;
    for (int v : values) total += v;
    out.emit(key, total);
  };
  return config;
}

std::vector<KV<int, int>> numbers(int n) {
  std::vector<KV<int, int>> input;
  for (int i = 0; i < n; ++i) input.push_back({i, 1});
  return input;
}

int total_of(const std::vector<KV<int, int>>& output) {
  int total = 0;
  for (const auto& kv : output) total += kv.value;
  return total;
}

TEST(FaultInjection, ZeroProbabilityMeansSingleAttempts) {
  const auto result = run_job(sum_job(), numbers(100));
  for (const auto& t : result.metrics.map_tasks) EXPECT_EQ(t.attempts, 1u);
  for (const auto& t : result.metrics.reduce_tasks) EXPECT_EQ(t.attempts, 1u);
}

TEST(FaultInjection, OutputUnaffectedByRetries) {
  RunOptions faulty;
  faulty.task_failure_probability = 0.4;
  const auto clean = run_job(sum_job(), numbers(200));
  const auto retried = run_job(sum_job(), numbers(200), faulty);
  EXPECT_EQ(total_of(clean.output), total_of(retried.output));
  EXPECT_EQ(clean.output.size(), retried.output.size());
}

TEST(FaultInjection, RetriesAreRecorded) {
  RunOptions faulty;
  faulty.task_failure_probability = 0.5;
  faulty.max_task_attempts = 64;  // never abort in this test
  const auto result = run_job(sum_job(), numbers(200), faulty);
  std::uint64_t attempts = 0;
  for (const auto& t : result.metrics.map_tasks) attempts += t.attempts;
  for (const auto& t : result.metrics.reduce_tasks) attempts += t.attempts;
  // 12 tasks at p=0.5 expect ~24 attempts; assert well above the minimum.
  EXPECT_GT(attempts, 12u);
}

TEST(FaultInjection, DeterministicAcrossRuns) {
  RunOptions faulty;
  faulty.task_failure_probability = 0.3;
  const auto a = run_job(sum_job(), numbers(100), faulty);
  const auto b = run_job(sum_job(), numbers(100), faulty);
  for (std::size_t t = 0; t < a.metrics.map_tasks.size(); ++t) {
    EXPECT_EQ(a.metrics.map_tasks[t].attempts, b.metrics.map_tasks[t].attempts);
  }
}

TEST(FaultInjection, SeedChangesFailurePattern) {
  RunOptions a_opts;
  a_opts.task_failure_probability = 0.5;
  RunOptions b_opts = a_opts;
  b_opts.failure_seed = 999;
  const auto a = run_job(sum_job(), numbers(100), a_opts);
  const auto b = run_job(sum_job(), numbers(100), b_opts);
  std::uint64_t a_total = 0;
  std::uint64_t b_total = 0;
  for (const auto& t : a.metrics.map_tasks) a_total += t.attempts;
  for (const auto& t : b.metrics.map_tasks) b_total += t.attempts;
  // Different seeds almost surely give different attempt patterns at p=0.5
  // over 8 map tasks; equality would mean the seed is ignored.
  bool any_diff = a_total != b_total;
  for (std::size_t t = 0; !any_diff && t < a.metrics.map_tasks.size(); ++t) {
    any_diff = a.metrics.map_tasks[t].attempts != b.metrics.map_tasks[t].attempts;
  }
  EXPECT_TRUE(any_diff);
}

TEST(FaultInjection, ExhaustedAttemptsAbortTheJob) {
  RunOptions doomed;
  doomed.task_failure_probability = 1.0;  // every attempt fails
  doomed.max_task_attempts = 3;
  EXPECT_THROW(run_job(sum_job(), numbers(10), doomed), mrsky::RuntimeError);
}

TEST(FaultInjection, ThreadedMatchesSequential) {
  RunOptions seq;
  seq.task_failure_probability = 0.4;
  RunOptions par = seq;
  par.mode = ExecutionMode::kThreads;
  par.num_threads = 4;
  const auto a = run_job(sum_job(), numbers(150), seq);
  const auto b = run_job(sum_job(), numbers(150), par);
  for (std::size_t t = 0; t < a.metrics.map_tasks.size(); ++t) {
    EXPECT_EQ(a.metrics.map_tasks[t].attempts, b.metrics.map_tasks[t].attempts);
  }
}

TEST(FaultInjection, RetriesRaiseSimulatedCost) {
  RunOptions faulty;
  faulty.task_failure_probability = 0.5;
  faulty.max_task_attempts = 64;
  const auto clean = run_job(sum_job(), numbers(400));
  const auto retried = run_job(sum_job(), numbers(400), faulty);
  ClusterModel model;
  model.servers = 2;
  EXPECT_GT(simulate_job(retried.metrics, model).total_seconds(),
            simulate_job(clean.metrics, model).total_seconds());
}

// ---- Speculative execution -------------------------------------------------

TEST(Speculation, CutsStragglerMakespan) {
  // 8 equal tasks, one lane 10x slower: without speculation a task stuck on
  // the slow lane defines the makespan; with it a backup rescues that task.
  const std::vector<double> costs(8, 10.0);
  const std::vector<double> speeds = {1.0, 1.0, 1.0, 0.1};
  const PhaseSchedule plain = lpt_schedule(costs, speeds);
  const PhaseSchedule spec = lpt_schedule_speculative(costs, speeds);
  EXPECT_LT(spec.makespan_seconds, plain.makespan_seconds);
}

TEST(Speculation, MarksSpeculatedTasks) {
  const std::vector<double> costs(8, 10.0);
  const std::vector<double> speeds = {1.0, 1.0, 1.0, 0.1};
  const PhaseSchedule spec = lpt_schedule_speculative(costs, speeds);
  bool any = false;
  for (const auto& p : spec.placements) any = any || p.speculated;
  EXPECT_TRUE(any);
}

TEST(Speculation, NoOpOnBalancedSchedule) {
  const std::vector<double> costs(8, 5.0);
  const std::vector<double> speeds(4, 1.0);
  const PhaseSchedule plain = lpt_schedule(costs, speeds);
  const PhaseSchedule spec = lpt_schedule_speculative(costs, speeds);
  EXPECT_DOUBLE_EQ(spec.makespan_seconds, plain.makespan_seconds);
}

TEST(Speculation, NeverWorseThanPlain) {
  const std::vector<double> costs = {9.0, 1.0, 7.0, 3.0, 5.0, 2.0, 8.0};
  for (double slow : {1.0, 0.5, 0.25, 0.1}) {
    const std::vector<double> speeds = {1.0, 1.0, slow};
    EXPECT_LE(lpt_schedule_speculative(costs, speeds).makespan_seconds,
              lpt_schedule(costs, speeds).makespan_seconds + 1e-12);
  }
}

TEST(Speculation, ClusterModelFlagRoutesThroughTrace) {
  JobMetrics m;
  for (int i = 0; i < 8; ++i) {
    TaskMetrics t;
    t.work_units = 1000000;
    m.map_tasks.push_back(t);
  }
  m.reduce_tasks.push_back(TaskMetrics{});
  ClusterModel model;
  model.servers = 2;
  model.map_slots_per_server = 2;
  ClusterModel degraded = model.with_stragglers(1, 8.0);
  ClusterModel rescued = degraded;
  rescued.speculative_execution = true;
  EXPECT_LT(trace_job(m, rescued).times.map_seconds,
            trace_job(m, degraded).times.map_seconds);
}

}  // namespace
}  // namespace mrsky::mr
