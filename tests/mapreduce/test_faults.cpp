// Fault injection (task retries) and speculative execution.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/thread_pool.hpp"
#include "src/mapreduce/cluster.hpp"
#include "src/mapreduce/job.hpp"

namespace mrsky::mr {
namespace {

using SumJob = JobConfig<int, int, int, int, int, int>;

SumJob sum_job() {
  SumJob config;
  config.name = "sum";
  config.num_map_tasks = 8;
  config.num_reduce_tasks = 4;
  config.map_fn = [](const int& k, const int& v, Emitter<int, int>& out, TaskContext&) {
    out.emit(k % 4, v);
  };
  config.reduce_fn = [](const int& key, std::vector<int>& values, Emitter<int, int>& out,
                        TaskContext&) {
    int total = 0;
    for (int v : values) total += v;
    out.emit(key, total);
  };
  return config;
}

std::vector<KV<int, int>> numbers(int n) {
  std::vector<KV<int, int>> input;
  for (int i = 0; i < n; ++i) input.push_back({i, 1});
  return input;
}

int total_of(const std::vector<KV<int, int>>& output) {
  int total = 0;
  for (const auto& kv : output) total += kv.value;
  return total;
}

TEST(FaultInjection, ZeroProbabilityMeansSingleAttempts) {
  const auto result = run_job(sum_job(), numbers(100));
  for (const auto& t : result.metrics.map_tasks) EXPECT_EQ(t.attempts, 1u);
  for (const auto& t : result.metrics.reduce_tasks) EXPECT_EQ(t.attempts, 1u);
}

TEST(FaultInjection, OutputUnaffectedByRetries) {
  RunOptions faulty;
  faulty.task_failure_probability = 0.4;
  const auto clean = run_job(sum_job(), numbers(200));
  const auto retried = run_job(sum_job(), numbers(200), faulty);
  EXPECT_EQ(total_of(clean.output), total_of(retried.output));
  EXPECT_EQ(clean.output.size(), retried.output.size());
}

TEST(FaultInjection, RetriesAreRecorded) {
  RunOptions faulty;
  faulty.task_failure_probability = 0.5;
  faulty.max_task_attempts = 64;  // never abort in this test
  const auto result = run_job(sum_job(), numbers(200), faulty);
  std::uint64_t attempts = 0;
  for (const auto& t : result.metrics.map_tasks) attempts += t.attempts;
  for (const auto& t : result.metrics.reduce_tasks) attempts += t.attempts;
  // 12 tasks at p=0.5 expect ~24 attempts; assert well above the minimum.
  EXPECT_GT(attempts, 12u);
}

TEST(FaultInjection, DeterministicAcrossRuns) {
  RunOptions faulty;
  faulty.task_failure_probability = 0.3;
  const auto a = run_job(sum_job(), numbers(100), faulty);
  const auto b = run_job(sum_job(), numbers(100), faulty);
  for (std::size_t t = 0; t < a.metrics.map_tasks.size(); ++t) {
    EXPECT_EQ(a.metrics.map_tasks[t].attempts, b.metrics.map_tasks[t].attempts);
  }
}

TEST(FaultInjection, SeedChangesFailurePattern) {
  RunOptions a_opts;
  a_opts.task_failure_probability = 0.5;
  RunOptions b_opts = a_opts;
  b_opts.failure_seed = 999;
  const auto a = run_job(sum_job(), numbers(100), a_opts);
  const auto b = run_job(sum_job(), numbers(100), b_opts);
  std::uint64_t a_total = 0;
  std::uint64_t b_total = 0;
  for (const auto& t : a.metrics.map_tasks) a_total += t.attempts;
  for (const auto& t : b.metrics.map_tasks) b_total += t.attempts;
  // Different seeds almost surely give different attempt patterns at p=0.5
  // over 8 map tasks; equality would mean the seed is ignored.
  bool any_diff = a_total != b_total;
  for (std::size_t t = 0; !any_diff && t < a.metrics.map_tasks.size(); ++t) {
    any_diff = a.metrics.map_tasks[t].attempts != b.metrics.map_tasks[t].attempts;
  }
  EXPECT_TRUE(any_diff);
}

TEST(FaultInjection, ExhaustedAttemptsAbortTheJob) {
  RunOptions doomed;
  doomed.task_failure_probability = 1.0;  // every attempt fails
  doomed.max_task_attempts = 3;
  EXPECT_THROW(run_job(sum_job(), numbers(10), doomed), mrsky::RuntimeError);
}

TEST(FaultInjection, ThreadedMatchesSequential) {
  RunOptions seq;
  seq.task_failure_probability = 0.4;
  RunOptions par = seq;
  par.mode = ExecutionMode::kThreads;
  par.num_threads = 4;
  const auto a = run_job(sum_job(), numbers(150), seq);
  const auto b = run_job(sum_job(), numbers(150), par);
  for (std::size_t t = 0; t < a.metrics.map_tasks.size(); ++t) {
    EXPECT_EQ(a.metrics.map_tasks[t].attempts, b.metrics.map_tasks[t].attempts);
  }
}

TEST(FaultInjection, MidTaskWasteIsMeasured) {
  RunOptions faulty;
  faulty.task_failure_probability = 0.5;
  faulty.max_task_attempts = 64;
  const auto result = run_job(sum_job(), numbers(400), faulty);
  const FailureReport report = result.metrics.failure_report();
  ASSERT_GT(report.tasks_retried, 0u);
  ASSERT_FALSE(report.events.empty());
  // A failed attempt executes a strict prefix of its split, so per-task waste
  // is the sum of its events' processed counts, and every injected event dies
  // before finishing the split (a crash at the end would not be a crash).
  for (const auto& t : result.metrics.map_tasks) {
    std::uint64_t from_events = 0;
    for (const auto& e : t.failure_events) {
      EXPECT_TRUE(e.injected);
      EXPECT_LT(e.records_processed, t.records_in);
      from_events += e.records_processed;
    }
    EXPECT_EQ(t.wasted_records, from_events);
    EXPECT_EQ(t.failure_events.size(), t.attempts - 1);
  }
  std::uint64_t wasted = 0;
  for (const auto& t : result.metrics.map_tasks) wasted += t.wasted_records;
  for (const auto& t : result.metrics.reduce_tasks) wasted += t.wasted_records;
  EXPECT_EQ(report.wasted_records, wasted);
}

TEST(FaultInjection, ExceptionsPropagateUnchangedWhenFaultsAreOff) {
  auto config = sum_job();
  config.map_fn = [](const int& k, const int&, Emitter<int, int>&, TaskContext&) {
    if (k == 13) throw std::domain_error("bad record 13");
  };
  EXPECT_THROW(run_job(config, numbers(100)), std::domain_error);
}

TEST(FaultInjection, ReduceAbortNamesThePhase) {
  auto config = sum_job();
  config.reduce_fn = [](const int&, std::vector<int>&, Emitter<int, int>&, TaskContext&) {
    throw std::runtime_error("reduce always dies");
  };
  RunOptions opts;
  opts.task_failure_probability = 1e-12;  // engage fault handling, never inject
  opts.max_task_attempts = 3;
  try {
    run_job(config, numbers(40), opts);
    FAIL() << "expected the job to abort";
  } catch (const mrsky::RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("reduce task"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("3 attempts"), std::string::npos) << e.what();
  }
}

TEST(FaultInjection, ThreadedMatchesSequentialWithSharedPoolAndReport) {
  common::ThreadPool pool(4);
  RunOptions seq;
  seq.task_failure_probability = 0.4;
  seq.max_task_attempts = 64;
  RunOptions par = seq;
  par.mode = ExecutionMode::kThreads;
  par.pool = &pool;
  const auto a = run_job(sum_job(), numbers(300), seq);
  const auto b = run_job(sum_job(), numbers(300), par);
  ASSERT_EQ(a.output.size(), b.output.size());
  for (std::size_t i = 0; i < a.output.size(); ++i) {
    EXPECT_EQ(a.output[i].key, b.output[i].key);
    EXPECT_EQ(a.output[i].value, b.output[i].value);
  }
  const FailureReport ra = a.metrics.failure_report();
  const FailureReport rb = b.metrics.failure_report();
  EXPECT_EQ(ra.tasks_retried, rb.tasks_retried);
  EXPECT_EQ(ra.wasted_records, rb.wasted_records);
  EXPECT_EQ(ra.wasted_work_units, rb.wasted_work_units);
  ASSERT_EQ(ra.events.size(), rb.events.size());
  for (std::size_t i = 0; i < ra.events.size(); ++i) {
    EXPECT_EQ(ra.events[i].phase, rb.events[i].phase);
    EXPECT_EQ(ra.events[i].task, rb.events[i].task);
    EXPECT_EQ(ra.events[i].attempt, rb.events[i].attempt);
    EXPECT_EQ(ra.events[i].records_processed, rb.events[i].records_processed);
    EXPECT_EQ(ra.events[i].injected, rb.events[i].injected);
  }
}

TEST(FaultInjection, RetriesRaiseSimulatedCost) {
  RunOptions faulty;
  faulty.task_failure_probability = 0.5;
  faulty.max_task_attempts = 64;
  const auto clean = run_job(sum_job(), numbers(400));
  const auto retried = run_job(sum_job(), numbers(400), faulty);
  ClusterModel model;
  model.servers = 2;
  EXPECT_GT(simulate_job(retried.metrics, model).total_seconds(),
            simulate_job(clean.metrics, model).total_seconds());
}

// ---- Skip-bad-records mode -------------------------------------------------

TEST(SkipBadRecords, MapBadRecordIsIsolated) {
  auto config = sum_job();
  config.map_fn = [](const int& k, const int& v, Emitter<int, int>& out, TaskContext&) {
    if (k == 13) throw std::domain_error("bad record 13");
    out.emit(k % 4, v);
  };
  RunOptions opts;
  opts.skip_bad_records = true;
  const auto result = run_job(config, numbers(100), opts);
  EXPECT_EQ(total_of(result.output), 99);  // everything except record 13
  const FailureReport report = result.metrics.failure_report();
  EXPECT_EQ(report.records_skipped, 1u);
  // Isolation costs one discarded attempt: the first throw fails the task,
  // the retry skips the quarantined record.
  EXPECT_EQ(report.tasks_retried, 1u);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_FALSE(report.events[0].injected);
  EXPECT_EQ(report.events[0].phase, 0u);
}

TEST(SkipBadRecords, ReduceBadGroupIsIsolated) {
  auto config = sum_job();
  config.reduce_fn = [](const int& key, std::vector<int>& values, Emitter<int, int>& out,
                        TaskContext&) {
    if (key == 2) throw std::domain_error("bad group 2");
    int total = 0;
    for (int v : values) total += v;
    out.emit(key, total);
  };
  RunOptions opts;
  opts.skip_bad_records = true;
  const auto result = run_job(config, numbers(100), opts);
  // Keys 0,1,3 survive with 25 records each; group 2 is quarantined.
  EXPECT_EQ(result.output.size(), 3u);
  EXPECT_EQ(total_of(result.output), 75);
  const FailureReport report = result.metrics.failure_report();
  EXPECT_EQ(report.records_skipped, 1u);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_EQ(report.events[0].phase, 1u);
}

TEST(SkipBadRecords, SkipBudgetExhaustionAbortsTheJob) {
  auto config = sum_job();
  config.map_fn = [](const int& k, const int& v, Emitter<int, int>& out, TaskContext&) {
    if (k % 10 == 0) throw std::domain_error("every tenth record is bad");
    out.emit(k % 4, v);
  };
  config.num_map_tasks = 1;  // all ten bad records land in one task's budget
  RunOptions opts;
  opts.skip_bad_records = true;
  opts.max_skipped_records = 2;
  try {
    run_job(config, numbers(100), opts);
    FAIL() << "expected the skip budget to abort the job";
  } catch (const mrsky::RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("max_skipped_records"), std::string::npos)
        << e.what();
  }
}

TEST(SkipBadRecords, LargeBudgetSurvivesManyBadRecords) {
  auto config = sum_job();
  config.map_fn = [](const int& k, const int& v, Emitter<int, int>& out, TaskContext&) {
    if (k % 10 == 0) throw std::domain_error("every tenth record is bad");
    out.emit(k % 4, v);
  };
  RunOptions opts;
  opts.skip_bad_records = true;
  opts.max_skipped_records = 16;
  const auto result = run_job(config, numbers(100), opts);
  EXPECT_EQ(total_of(result.output), 90);
  EXPECT_EQ(result.metrics.failure_report().records_skipped, 10u);
}

TEST(SkipBadRecords, DeterministicAcrossExecutionModes) {
  auto make_config = [] {
    auto config = sum_job();
    config.map_fn = [](const int& k, const int& v, Emitter<int, int>& out, TaskContext&) {
      if (k % 17 == 3) throw std::domain_error("bad");
      out.emit(k % 4, v);
    };
    return config;
  };
  RunOptions seq;
  seq.skip_bad_records = true;
  RunOptions par = seq;
  par.mode = ExecutionMode::kThreads;
  par.num_threads = 4;
  const auto a = run_job(make_config(), numbers(200), seq);
  const auto b = run_job(make_config(), numbers(200), par);
  EXPECT_EQ(total_of(a.output), total_of(b.output));
  const FailureReport ra = a.metrics.failure_report();
  const FailureReport rb = b.metrics.failure_report();
  EXPECT_EQ(ra.records_skipped, rb.records_skipped);
  ASSERT_EQ(ra.events.size(), rb.events.size());
  for (std::size_t i = 0; i < ra.events.size(); ++i) {
    EXPECT_EQ(ra.events[i].task, rb.events[i].task);
    EXPECT_EQ(ra.events[i].bad_record, rb.events[i].bad_record);
  }
}

// ---- Speculative execution -------------------------------------------------

TEST(Speculation, CutsStragglerMakespan) {
  // 8 equal tasks, one lane 10x slower: without speculation a task stuck on
  // the slow lane defines the makespan; with it a backup rescues that task.
  const std::vector<double> costs(8, 10.0);
  const std::vector<double> speeds = {1.0, 1.0, 1.0, 0.1};
  const PhaseSchedule plain = lpt_schedule(costs, speeds);
  const PhaseSchedule spec = lpt_schedule_speculative(costs, speeds);
  EXPECT_LT(spec.makespan_seconds, plain.makespan_seconds);
}

TEST(Speculation, MarksSpeculatedTasks) {
  const std::vector<double> costs(8, 10.0);
  const std::vector<double> speeds = {1.0, 1.0, 1.0, 0.1};
  const PhaseSchedule spec = lpt_schedule_speculative(costs, speeds);
  bool any = false;
  for (const auto& p : spec.placements) any = any || p.speculated;
  EXPECT_TRUE(any);
}

TEST(Speculation, NoOpOnBalancedSchedule) {
  const std::vector<double> costs(8, 5.0);
  const std::vector<double> speeds(4, 1.0);
  const PhaseSchedule plain = lpt_schedule(costs, speeds);
  const PhaseSchedule spec = lpt_schedule_speculative(costs, speeds);
  EXPECT_DOUBLE_EQ(spec.makespan_seconds, plain.makespan_seconds);
}

TEST(Speculation, NeverWorseThanPlain) {
  const std::vector<double> costs = {9.0, 1.0, 7.0, 3.0, 5.0, 2.0, 8.0};
  for (double slow : {1.0, 0.5, 0.25, 0.1}) {
    const std::vector<double> speeds = {1.0, 1.0, slow};
    EXPECT_LE(lpt_schedule_speculative(costs, speeds).makespan_seconds,
              lpt_schedule(costs, speeds).makespan_seconds + 1e-12);
  }
}

TEST(Speculation, ClusterModelFlagRoutesThroughTrace) {
  JobMetrics m;
  for (int i = 0; i < 8; ++i) {
    TaskMetrics t;
    t.work_units = 1000000;
    m.map_tasks.push_back(t);
  }
  m.reduce_tasks.push_back(TaskMetrics{});
  ClusterModel model;
  model.servers = 2;
  model.map_slots_per_server = 2;
  ClusterModel degraded = model.with_stragglers(1, 8.0);
  ClusterModel rescued = degraded;
  rescued.speculative_execution = true;
  EXPECT_LT(trace_job(m, rescued).times.map_seconds,
            trace_job(m, degraded).times.map_seconds);
}

}  // namespace
}  // namespace mrsky::mr
