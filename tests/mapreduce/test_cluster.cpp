#include "src/mapreduce/cluster.hpp"

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "src/common/error.hpp"

namespace mrsky::mr {
namespace {

TEST(LptMakespan, EmptyTasksZero) {
  EXPECT_DOUBLE_EQ(lpt_makespan(std::span<const double>{}, 4), 0.0);
}

TEST(LptMakespan, SingleLaneIsSum) {
  const std::vector<double> costs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(lpt_makespan(costs, 1), 6.0);
}

TEST(LptMakespan, PerfectSplit) {
  const std::vector<double> costs = {3.0, 3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(lpt_makespan(costs, 2), 6.0);
  EXPECT_DOUBLE_EQ(lpt_makespan(costs, 4), 3.0);
}

TEST(LptMakespan, BigTaskDominates) {
  const std::vector<double> costs = {10.0, 1.0, 1.0, 1.0};
  // The long task bounds the makespan no matter how many lanes.
  EXPECT_DOUBLE_EQ(lpt_makespan(costs, 8), 10.0);
}

TEST(LptMakespan, GreedyScheduleIsReproducible) {
  // LPT on {5,4,3,3,3} over 2 lanes: 5|4 -> 5|7 -> 8|7 -> 8|10. The greedy
  // makespan (10) is within the classic 4/3 bound of the optimum (9).
  const std::vector<double> costs = {3.0, 3.0, 5.0, 4.0, 3.0};
  EXPECT_DOUBLE_EQ(lpt_makespan(costs, 2), 10.0);
}

TEST(LptMakespan, MoreLanesNeverSlower) {
  const std::vector<double> costs = {4.0, 3.0, 7.0, 2.0, 9.0, 1.0};
  double prev = lpt_makespan(costs, 1);
  for (std::size_t lanes = 2; lanes <= 8; ++lanes) {
    const double cur = lpt_makespan(costs, lanes);
    EXPECT_LE(cur, prev);
    prev = cur;
  }
}

TEST(LptMakespan, ZeroLanesThrows) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW(lpt_makespan(one, 0), mrsky::InvalidArgument);
}

JobMetrics sample_metrics() {
  JobMetrics m;
  m.job_name = "sample";
  for (int i = 0; i < 8; ++i) {
    TaskMetrics t;
    t.records_in = 1000;
    t.work_units = 50000;
    m.map_tasks.push_back(t);
  }
  for (int i = 0; i < 4; ++i) {
    TaskMetrics t;
    t.records_in = 100;
    t.work_units = 200000;
    m.reduce_tasks.push_back(t);
  }
  m.shuffle_records = 400;
  return m;
}

TEST(SimulateJob, StartupAlwaysCharged) {
  ClusterModel model;
  model.job_startup_seconds = 42.0;
  const PhaseTimes t = simulate_job(JobMetrics{}, model);
  EXPECT_DOUBLE_EQ(t.startup_seconds, 42.0);
  EXPECT_DOUBLE_EQ(t.map_seconds, 0.0);
  EXPECT_DOUBLE_EQ(t.reduce_seconds, 0.0);
}

TEST(SimulateJob, MoreServersShrinkMapPhase) {
  const JobMetrics m = sample_metrics();
  ClusterModel small;
  small.servers = 2;
  ClusterModel big;
  big.servers = 8;
  EXPECT_GT(simulate_job(m, small).map_seconds, simulate_job(m, big).map_seconds);
}

TEST(SimulateJob, SaturatesWhenTasksFewerThanLanes) {
  const JobMetrics m = sample_metrics();  // 8 map tasks
  ClusterModel enough;
  enough.servers = 4;  // 8 lanes at 2 slots each
  ClusterModel excess;
  excess.servers = 32;
  EXPECT_DOUBLE_EQ(simulate_job(m, enough).map_seconds, simulate_job(m, excess).map_seconds);
}

TEST(SimulateJob, WorkUnitsDriveCost) {
  JobMetrics light = sample_metrics();
  JobMetrics heavy = sample_metrics();
  for (auto& t : heavy.reduce_tasks) t.work_units *= 10;
  const ClusterModel model;
  EXPECT_GT(simulate_job(heavy, model).reduce_seconds, simulate_job(light, model).reduce_seconds);
}

TEST(SimulateJob, PerRecordCostsCount) {
  JobMetrics few = sample_metrics();
  JobMetrics many = sample_metrics();
  for (auto& t : many.map_tasks) t.records_in *= 100;
  const ClusterModel model;
  EXPECT_GT(simulate_job(many, model).map_seconds, simulate_job(few, model).map_seconds);
}

TEST(PhaseTimes, TotalsAndAccumulation) {
  PhaseTimes a{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(a.total_seconds(), 6.0);
  const PhaseTimes b{0.5, 0.5, 0.5};
  a += b;
  EXPECT_DOUBLE_EQ(a.total_seconds(), 7.5);
}

TEST(SimulatePipeline, SumsJobs) {
  const JobMetrics m = sample_metrics();
  const ClusterModel model;
  const std::vector<JobMetrics> two = {m, m};
  const PhaseTimes once = simulate_job(m, model);
  const PhaseTimes both = simulate_pipeline(two, model);
  EXPECT_NEAR(both.total_seconds(), 2.0 * once.total_seconds(), 1e-9);
}

TEST(ClusterModel, LaneArithmetic) {
  ClusterModel model;
  model.servers = 5;
  model.map_slots_per_server = 3;
  model.reduce_slots_per_server = 2;
  EXPECT_EQ(model.map_lanes(), 15u);
  EXPECT_EQ(model.reduce_lanes(), 10u);
}

TEST(TaskMetrics, Accumulates) {
  TaskMetrics a{1, 2, 3, 4};
  const TaskMetrics b{10, 20, 30, 40};
  a += b;
  EXPECT_EQ(a.records_in, 11u);
  EXPECT_EQ(a.records_out, 22u);
  EXPECT_EQ(a.work_units, 33u);
  EXPECT_EQ(a.wall_ns, 44);
}

TEST(JobMetrics, TotalsAggregateTasks) {
  const JobMetrics m = sample_metrics();
  EXPECT_EQ(m.map_total().records_in, 8000u);
  EXPECT_EQ(m.reduce_total().work_units, 800000u);
  EXPECT_EQ(m.total_work_units(), 8u * 50000u + 4u * 200000u);
}

}  // namespace
}  // namespace mrsky::mr
