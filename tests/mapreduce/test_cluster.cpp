#include "src/mapreduce/cluster.hpp"

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "src/common/error.hpp"

namespace mrsky::mr {
namespace {

TEST(LptMakespan, EmptyTasksZero) {
  EXPECT_DOUBLE_EQ(lpt_makespan(std::span<const double>{}, 4), 0.0);
}

TEST(LptMakespan, SingleLaneIsSum) {
  const std::vector<double> costs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(lpt_makespan(costs, 1), 6.0);
}

TEST(LptMakespan, PerfectSplit) {
  const std::vector<double> costs = {3.0, 3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(lpt_makespan(costs, 2), 6.0);
  EXPECT_DOUBLE_EQ(lpt_makespan(costs, 4), 3.0);
}

TEST(LptMakespan, BigTaskDominates) {
  const std::vector<double> costs = {10.0, 1.0, 1.0, 1.0};
  // The long task bounds the makespan no matter how many lanes.
  EXPECT_DOUBLE_EQ(lpt_makespan(costs, 8), 10.0);
}

TEST(LptMakespan, GreedyScheduleIsReproducible) {
  // LPT on {5,4,3,3,3} over 2 lanes: 5|4 -> 5|7 -> 8|7 -> 8|10. The greedy
  // makespan (10) is within the classic 4/3 bound of the optimum (9).
  const std::vector<double> costs = {3.0, 3.0, 5.0, 4.0, 3.0};
  EXPECT_DOUBLE_EQ(lpt_makespan(costs, 2), 10.0);
}

TEST(LptMakespan, MoreLanesNeverSlower) {
  const std::vector<double> costs = {4.0, 3.0, 7.0, 2.0, 9.0, 1.0};
  double prev = lpt_makespan(costs, 1);
  for (std::size_t lanes = 2; lanes <= 8; ++lanes) {
    const double cur = lpt_makespan(costs, lanes);
    EXPECT_LE(cur, prev);
    prev = cur;
  }
}

TEST(LptMakespan, ZeroLanesThrows) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW(lpt_makespan(one, 0), mrsky::InvalidArgument);
}

JobMetrics sample_metrics() {
  JobMetrics m;
  m.job_name = "sample";
  for (int i = 0; i < 8; ++i) {
    TaskMetrics t;
    t.records_in = 1000;
    t.work_units = 50000;
    m.map_tasks.push_back(t);
  }
  for (int i = 0; i < 4; ++i) {
    TaskMetrics t;
    t.records_in = 100;
    t.work_units = 200000;
    m.reduce_tasks.push_back(t);
  }
  m.shuffle_records = 400;
  return m;
}

TEST(SimulateJob, StartupAlwaysCharged) {
  ClusterModel model;
  model.job_startup_seconds = 42.0;
  const PhaseTimes t = simulate_job(JobMetrics{}, model);
  EXPECT_DOUBLE_EQ(t.startup_seconds, 42.0);
  EXPECT_DOUBLE_EQ(t.map_seconds, 0.0);
  EXPECT_DOUBLE_EQ(t.reduce_seconds, 0.0);
}

TEST(SimulateJob, MoreServersShrinkMapPhase) {
  const JobMetrics m = sample_metrics();
  ClusterModel small;
  small.servers = 2;
  ClusterModel big;
  big.servers = 8;
  EXPECT_GT(simulate_job(m, small).map_seconds, simulate_job(m, big).map_seconds);
}

TEST(SimulateJob, SaturatesWhenTasksFewerThanLanes) {
  const JobMetrics m = sample_metrics();  // 8 map tasks
  ClusterModel enough;
  enough.servers = 4;  // 8 lanes at 2 slots each
  ClusterModel excess;
  excess.servers = 32;
  EXPECT_DOUBLE_EQ(simulate_job(m, enough).map_seconds, simulate_job(m, excess).map_seconds);
}

TEST(SimulateJob, WorkUnitsDriveCost) {
  JobMetrics light = sample_metrics();
  JobMetrics heavy = sample_metrics();
  for (auto& t : heavy.reduce_tasks) t.work_units *= 10;
  const ClusterModel model;
  EXPECT_GT(simulate_job(heavy, model).reduce_seconds, simulate_job(light, model).reduce_seconds);
}

TEST(SimulateJob, PerRecordCostsCount) {
  JobMetrics few = sample_metrics();
  JobMetrics many = sample_metrics();
  for (auto& t : many.map_tasks) t.records_in *= 100;
  const ClusterModel model;
  EXPECT_GT(simulate_job(many, model).map_seconds, simulate_job(few, model).map_seconds);
}

TEST(PhaseTimes, TotalsAndAccumulation) {
  PhaseTimes a{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(a.total_seconds(), 6.0);
  const PhaseTimes b{0.5, 0.5, 0.5};
  a += b;
  EXPECT_DOUBLE_EQ(a.total_seconds(), 7.5);
}

TEST(SimulatePipeline, SumsJobs) {
  const JobMetrics m = sample_metrics();
  const ClusterModel model;
  const std::vector<JobMetrics> two = {m, m};
  const PhaseTimes once = simulate_job(m, model);
  const PhaseTimes both = simulate_pipeline(two, model);
  EXPECT_NEAR(both.total_seconds(), 2.0 * once.total_seconds(), 1e-9);
}

TEST(ClusterModel, LaneArithmetic) {
  ClusterModel model;
  model.servers = 5;
  model.map_slots_per_server = 3;
  model.reduce_slots_per_server = 2;
  EXPECT_EQ(model.map_lanes(), 15u);
  EXPECT_EQ(model.reduce_lanes(), 10u);
}

// ---- Node-failure recovery -------------------------------------------------
//
// Hand-worked golden scenario: tasks {4,3,2,1} over 2 servers x 1 slot.
// Base LPT: lane0 runs t0 [0,4] then t3 [4,5]; lane1 runs t1 [0,3] then
// t2 [3,5]; makespan 5.

const std::vector<double> kGoldenCosts = {4.0, 3.0, 2.0, 1.0};
const std::vector<double> kTwoLanes = {1.0, 1.0};

TEST(NodeFailure, NoFailuresMatchesPlainLpt) {
  const PhaseSchedule plain = lpt_schedule(kGoldenCosts, kTwoLanes);
  const PhaseSchedule with = lpt_schedule_with_failures(kGoldenCosts, kTwoLanes, 1, {}, 0.0,
                                                        true, false);
  EXPECT_DOUBLE_EQ(with.makespan_seconds, plain.makespan_seconds);
  for (const auto& p : with.placements) EXPECT_FALSE(p.reexecuted);
}

TEST(NodeFailure, MapPhaseLossReexecutesCompletedOutput) {
  // Server 1 dies at t=3.5: t1 completed there ([0,3], output lost), t2 is
  // in flight ([3,5], killed). Both re-execute serially on lane 0 after its
  // committed work (t0 ends at 4): t1 [4,7], t2 [7,9], then t3 [9,10].
  const std::vector<NodeFailure> failures = {{1, 3.5}};
  const PhaseSchedule s = lpt_schedule_with_failures(kGoldenCosts, kTwoLanes, 1, failures, 0.0,
                                                     /*lose_completed_outputs=*/true, false);
  EXPECT_DOUBLE_EQ(s.makespan_seconds, 10.0);
  EXPECT_FALSE(s.placements[0].reexecuted);
  EXPECT_TRUE(s.placements[1].reexecuted);
  EXPECT_TRUE(s.placements[2].reexecuted);
  EXPECT_FALSE(s.placements[3].reexecuted);
  for (const auto& p : s.placements) EXPECT_EQ(p.lane, 0u);
}

TEST(NodeFailure, ReducePhaseLossKeepsCompletedOutput) {
  // Same event without output loss (reduce semantics): t1's result is safe,
  // only in-flight t2 re-executes ([4,6]) and t3 follows ([6,7]).
  const std::vector<NodeFailure> failures = {{1, 3.5}};
  const PhaseSchedule s = lpt_schedule_with_failures(kGoldenCosts, kTwoLanes, 1, failures, 0.0,
                                                     /*lose_completed_outputs=*/false, false);
  EXPECT_DOUBLE_EQ(s.makespan_seconds, 7.0);
  EXPECT_FALSE(s.placements[1].reexecuted);
  EXPECT_TRUE(s.placements[2].reexecuted);
}

TEST(NodeFailure, LossAfterPhaseEndIsIgnored) {
  const std::vector<NodeFailure> failures = {{1, 6.0}};
  const PhaseSchedule s = lpt_schedule_with_failures(kGoldenCosts, kTwoLanes, 1, failures, 0.0,
                                                     true, false);
  EXPECT_DOUBLE_EQ(s.makespan_seconds, 5.0);
  for (const auto& p : s.placements) EXPECT_FALSE(p.reexecuted);
}

TEST(NodeFailure, DeadFromStartSerialisesOntoSurvivor) {
  const std::vector<NodeFailure> failures = {{1, 0.0}};
  const PhaseSchedule s = lpt_schedule_with_failures(kGoldenCosts, kTwoLanes, 1, failures, 0.0,
                                                     true, false);
  EXPECT_DOUBLE_EQ(s.makespan_seconds, 10.0);  // 4+3+2+1 serial on lane 0
  for (const auto& p : s.placements) {
    EXPECT_EQ(p.lane, 0u);
    EXPECT_FALSE(p.reexecuted);  // nothing ever ran on the dead server
  }
}

TEST(NodeFailure, PhaseStartShiftsTheClock) {
  // Job-relative time 103.5 with the phase starting at 100 is the same
  // event as 3.5 with the phase starting at 0.
  const std::vector<NodeFailure> failures = {{1, 103.5}};
  const PhaseSchedule s = lpt_schedule_with_failures(kGoldenCosts, kTwoLanes, 1, failures,
                                                     /*phase_start_seconds=*/100.0, true, false);
  EXPECT_DOUBLE_EQ(s.makespan_seconds, 10.0);
}

TEST(NodeFailure, AllServersDeadThrows) {
  const std::vector<NodeFailure> failures = {{0, 0.0}, {1, 0.0}};
  EXPECT_THROW(lpt_schedule_with_failures(kGoldenCosts, kTwoLanes, 1, failures, 0.0, true,
                                          false),
               mrsky::InvalidArgument);
}

TEST(NodeFailure, SpeculationNeverWorseAfterLoss) {
  const std::vector<double> lanes4 = {1.0, 1.0, 1.0, 1.0};
  const std::vector<double> costs = {9.0, 1.0, 7.0, 3.0, 5.0, 2.0, 8.0, 4.0};
  const std::vector<NodeFailure> failures = {{1, 2.5}};
  const PhaseSchedule plain =
      lpt_schedule_with_failures(costs, lanes4, 2, failures, 0.0, true, false);
  const PhaseSchedule spec =
      lpt_schedule_with_failures(costs, lanes4, 2, failures, 0.0, true, true);
  EXPECT_LE(spec.makespan_seconds, plain.makespan_seconds + 1e-12);
}

TEST(NodeFailure, TraceJobAppliesFailuresToBothPhases) {
  const JobMetrics m = sample_metrics();
  ClusterModel healthy;
  healthy.servers = 4;
  ClusterModel degraded = healthy;
  degraded.node_failures.push_back({0, 0.0});  // dead for the whole job
  const ScheduleTrace h = trace_job(m, healthy);
  const ScheduleTrace d = trace_job(m, degraded);
  // One of four servers gone: both phases run on fewer lanes, never faster.
  EXPECT_GE(d.times.map_seconds, h.times.map_seconds);
  EXPECT_GE(d.times.reduce_seconds, h.times.reduce_seconds);
  EXPECT_GT(d.times.total_seconds(), h.times.total_seconds());
  for (const auto& p : d.map.placements) EXPECT_GE(p.lane / 2, 1u);  // 2 map slots
}

TEST(NodeFailure, MidMapLossMarksReexecutedPlacements) {
  const JobMetrics m = sample_metrics();
  ClusterModel model;
  model.servers = 4;
  const double map_half = trace_job(m, model).times.map_seconds / 2.0;
  model.node_failures.push_back({0, map_half});
  const ScheduleTrace d = trace_job(m, model);
  bool any = false;
  for (const auto& p : d.map.placements) any = any || p.reexecuted;
  EXPECT_TRUE(any);
}

TEST(NodeFailure, WasteAwareCostIsMeasuredNotImputed) {
  // One map task: 1000 records, a failed attempt that got through 500.
  // Cost = full (1 + 1000 * 1e-3) + waste (1 startup + 500 * 1e-3) = 3.5 —
  // cheaper than the attempts x full imputation (4.0).
  JobMetrics m;
  TaskMetrics t;
  t.records_in = 1000;
  t.attempts = 2;
  t.wasted_records = 500;
  m.map_tasks.push_back(t);
  ClusterModel model;
  model.servers = 1;
  model.map_slots_per_server = 1;
  model.task_startup_seconds = 1.0;
  model.seconds_per_map_record = 1e-3;
  model.seconds_per_work_unit = 0.0;
  model.job_startup_seconds = 0.0;
  EXPECT_DOUBLE_EQ(trace_job(m, model).times.map_seconds, 3.5);
}

TEST(TaskMetrics, Accumulates) {
  TaskMetrics a{1, 2, 3, 4};
  const TaskMetrics b{10, 20, 30, 40};
  a += b;
  EXPECT_EQ(a.records_in, 11u);
  EXPECT_EQ(a.records_out, 22u);
  EXPECT_EQ(a.work_units, 33u);
  EXPECT_EQ(a.wall_ns, 44);
}

TEST(JobMetrics, TotalsAggregateTasks) {
  const JobMetrics m = sample_metrics();
  EXPECT_EQ(m.map_total().records_in, 8000u);
  EXPECT_EQ(m.reduce_total().work_units, 800000u);
  EXPECT_EQ(m.total_work_units(), 8u * 50000u + 4u * 200000u);
}

}  // namespace
}  // namespace mrsky::mr
