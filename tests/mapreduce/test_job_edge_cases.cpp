// Engine edge cases beyond the word-count happy path.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/mapreduce/job.hpp"

namespace mrsky::mr {
namespace {

using IntJob = JobConfig<int, int, int, int, int, int>;

IntJob identity_job() {
  IntJob config;
  config.name = "identity";
  config.num_map_tasks = 4;
  config.num_reduce_tasks = 3;
  config.map_fn = [](const int& k, const int& v, Emitter<int, int>& out, TaskContext&) {
    out.emit(k, v);
  };
  config.reduce_fn = [](const int& key, std::vector<int>& values, Emitter<int, int>& out,
                        TaskContext&) {
    for (int v : values) out.emit(key, v);
  };
  return config;
}

TEST(JobEdgeCases, MapperEmittingNothingIsFine) {
  auto config = identity_job();
  config.map_fn = [](const int&, const int&, Emitter<int, int>&, TaskContext&) {};
  std::vector<KV<int, int>> input = {{1, 1}, {2, 2}};
  const auto result = run_job(config, input);
  EXPECT_TRUE(result.output.empty());
  EXPECT_EQ(result.metrics.shuffle_records, 0u);
  EXPECT_EQ(result.metrics.map_total().records_in, 2u);
}

TEST(JobEdgeCases, ReducerEmittingNothingIsFine) {
  auto config = identity_job();
  config.reduce_fn = [](const int&, std::vector<int>&, Emitter<int, int>&, TaskContext&) {};
  std::vector<KV<int, int>> input = {{1, 1}, {2, 2}};
  const auto result = run_job(config, input);
  EXPECT_TRUE(result.output.empty());
  EXPECT_EQ(result.metrics.reduce_total().records_in, 2u);
}

TEST(JobEdgeCases, MapperFanOut) {
  // One input record explodes into many intermediate records.
  auto config = identity_job();
  config.map_fn = [](const int& k, const int&, Emitter<int, int>& out, TaskContext&) {
    for (int i = 0; i < 50; ++i) out.emit((k * 50 + i) % 7, i);
  };
  std::vector<KV<int, int>> input = {{0, 0}, {1, 0}};
  const auto result = run_job(config, input);
  EXPECT_EQ(result.metrics.map_total().records_out, 100u);
  EXPECT_EQ(result.metrics.shuffle_records, 100u);
  EXPECT_EQ(result.output.size(), 100u);
}

TEST(JobEdgeCases, SingleMapSingleReduce) {
  auto config = identity_job();
  config.num_map_tasks = 1;
  config.num_reduce_tasks = 1;
  std::vector<KV<int, int>> input;
  for (int i = 0; i < 25; ++i) input.push_back({i, i});
  const auto result = run_job(config, input);
  EXPECT_EQ(result.output.size(), 25u);
  EXPECT_EQ(result.metrics.map_tasks.size(), 1u);
  EXPECT_EQ(result.metrics.reduce_tasks.size(), 1u);
}

TEST(JobEdgeCases, CombinerSeesOnlyItsOwnMapOutput) {
  // Each map task's combiner groups only that task's records: with one key
  // per input record and 4 map tasks over 8 records, each combiner call
  // receives at most the records of one split.
  auto config = identity_job();
  std::vector<std::size_t> combine_group_sizes;
  config.map_fn = [](const int&, const int& v, Emitter<int, int>& out, TaskContext&) {
    out.emit(0, v);  // single key
  };
  config.combine_fn = [&combine_group_sizes](const int& key, std::vector<int>& values,
                                             Emitter<int, int>& out, TaskContext&) {
    combine_group_sizes.push_back(values.size());
    for (int v : values) out.emit(key, v);
  };
  std::vector<KV<int, int>> input;
  for (int i = 0; i < 8; ++i) input.push_back({i, i});
  (void)run_job(config, input);
  ASSERT_EQ(combine_group_sizes.size(), 4u);  // one group per map task
  for (std::size_t s : combine_group_sizes) EXPECT_EQ(s, 2u);
}

TEST(JobEdgeCases, NegativeAndDuplicateKeysGroupCorrectly) {
  auto config = identity_job();
  config.num_reduce_tasks = 2;
  config.partition_fn = [](const int& key, std::size_t buckets) {
    return static_cast<std::size_t>(std::abs(key)) % buckets;
  };
  std::vector<KV<int, int>> input = {{-3, 1}, {-3, 2}, {5, 3}, {-3, 4}, {5, 5}};
  config.map_fn = [](const int& k, const int& v, Emitter<int, int>& out, TaskContext&) {
    out.emit(k, v);
  };
  int group_count = 0;
  config.reduce_fn = [&group_count](const int& key, std::vector<int>& values,
                                    Emitter<int, int>& out, TaskContext&) {
    ++group_count;
    out.emit(key, static_cast<int>(values.size()));
  };
  const auto result = run_job(config, input);
  EXPECT_EQ(group_count, 2);
  for (const auto& kv : result.output) {
    if (kv.key == -3) EXPECT_EQ(kv.value, 3);
    if (kv.key == 5) EXPECT_EQ(kv.value, 2);
  }
}

TEST(JobEdgeCases, StringKeysSortLexicographically) {
  JobConfig<int, std::string, std::string, int, std::string, int> config;
  config.name = "lex";
  config.num_map_tasks = 1;
  config.num_reduce_tasks = 1;
  config.map_fn = [](const int&, const std::string& s, Emitter<std::string, int>& out,
                     TaskContext&) { out.emit(s, 1); };
  std::vector<std::string> seen;
  config.reduce_fn = [&seen](const std::string& key, std::vector<int>&,
                             Emitter<std::string, int>& out, TaskContext&) {
    seen.push_back(key);
    out.emit(key, 1);
  };
  std::vector<KV<int, std::string>> input = {{0, "pear"}, {1, "apple"}, {2, "mango"}};
  (void)run_job(config, input);
  EXPECT_EQ(seen, (std::vector<std::string>{"apple", "mango", "pear"}));
}

TEST(JobEdgeCases, OutOfRangePartitionFnThrows) {
  // A user-supplied partitioner is a public-API boundary: an out-of-range
  // bucket must throw (in release builds too), never index out of bounds.
  auto config = identity_job();
  config.partition_fn = [](const int& key, std::size_t buckets) -> std::size_t {
    return key == 7 ? buckets : static_cast<std::size_t>(key) % buckets;
  };
  std::vector<KV<int, int>> input;
  for (int i = 0; i < 12; ++i) input.push_back({i, i});
  EXPECT_THROW(run_job(config, input), mrsky::InvalidArgument);

  RunOptions threaded;
  threaded.mode = ExecutionMode::kThreads;
  threaded.num_threads = 4;
  EXPECT_THROW(run_job(config, input, threaded), mrsky::InvalidArgument);
}

TEST(JobEdgeCases, WayOutOfRangePartitionFnThrows) {
  auto config = identity_job();
  config.partition_fn = [](const int&, std::size_t) -> std::size_t { return 1u << 20; };
  std::vector<KV<int, int>> input = {{1, 1}};
  EXPECT_THROW(run_job(config, input), mrsky::InvalidArgument);
}

TEST(JobEdgeCases, MoveOnlyFriendlyValuesViaVectors) {
  // Values carrying heap payloads survive the shuffle intact.
  JobConfig<int, std::vector<int>, int, std::vector<int>, int, std::size_t> config;
  config.name = "payload";
  config.num_map_tasks = 2;
  config.num_reduce_tasks = 2;
  config.map_fn = [](const int& k, const std::vector<int>& v,
                     Emitter<int, std::vector<int>>& out, TaskContext&) { out.emit(k % 2, v); };
  config.reduce_fn = [](const int& key, std::vector<std::vector<int>>& values,
                        Emitter<int, std::size_t>& out, TaskContext&) {
    std::size_t total = 0;
    for (const auto& v : values) total += v.size();
    out.emit(key, total);
  };
  std::vector<KV<int, std::vector<int>>> input;
  for (int i = 0; i < 6; ++i) input.push_back({i, std::vector<int>(static_cast<std::size_t>(i))});
  const auto result = run_job(config, input);
  std::size_t grand_total = 0;
  for (const auto& kv : result.output) grand_total += kv.value;
  EXPECT_EQ(grand_total, 0u + 1 + 2 + 3 + 4 + 5);
}

TEST(JobEdgeCases, SplitOffsetsMatchDirectFormulaOnSmallInputs) {
  for (std::size_t n : {0u, 1u, 7u, 100u, 101u}) {
    for (std::size_t splits : {1u, 2u, 3u, 8u, 13u}) {
      const auto offsets = detail::split_offsets(n, splits);
      ASSERT_EQ(offsets.size(), splits + 1);
      for (std::size_t s = 0; s <= splits; ++s) {
        EXPECT_EQ(offsets[s], n * s / splits) << "n=" << n << " splits=" << splits << " s=" << s;
      }
    }
  }
}

TEST(JobEdgeCases, SplitOffsetsSurviveHugeInputsWithoutOverflow) {
  // n * s overflows std::size_t for every s >= 2 here; the incremental
  // accumulator must still land on floor(n * s / splits) exactly.
  const std::size_t n = std::numeric_limits<std::size_t>::max() - 5;
  const std::size_t splits = 7;
  const auto offsets = detail::split_offsets(n, splits);
  ASSERT_EQ(offsets.size(), splits + 1);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), n);
  const std::size_t base = n / splits;
  for (std::size_t s = 1; s <= splits; ++s) {
    EXPECT_TRUE(offsets[s] > offsets[s - 1]);
    const std::size_t width = offsets[s] - offsets[s - 1];
    EXPECT_TRUE(width == base || width == base + 1) << "s=" << s;
  }
}

}  // namespace
}  // namespace mrsky::mr
