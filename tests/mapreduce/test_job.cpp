#include "src/mapreduce/job.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/error.hpp"

namespace mrsky::mr {
namespace {

// ---- Word count: proves the engine is a generic MapReduce, not a skyline
// one-off. Input: (doc-id, text); output: (word, count). ----

using WordCountJob = JobConfig<int, std::string, std::string, int, std::string, int>;

WordCountJob word_count_config() {
  WordCountJob config;
  config.name = "word-count";
  config.num_map_tasks = 3;
  config.num_reduce_tasks = 2;
  config.map_fn = [](const int&, const std::string& text, Emitter<std::string, int>& out,
                     TaskContext& ctx) {
    std::istringstream stream(text);
    std::string word;
    while (stream >> word) {
      out.emit(word, 1);
      ctx.charge_work(1);
    }
  };
  config.reduce_fn = [](const std::string& word, std::vector<int>& counts,
                        Emitter<std::string, int>& out, TaskContext&) {
    int total = 0;
    for (int c : counts) total += c;
    out.emit(word, total);
  };
  return config;
}

std::vector<KV<int, std::string>> word_count_input() {
  return {
      {0, "the quick brown fox"},
      {1, "the lazy dog"},
      {2, "the quick dog jumps"},
      {3, "fox and dog"},
  };
}

std::map<std::string, int> as_map(const std::vector<KV<std::string, int>>& output) {
  std::map<std::string, int> m;
  for (const auto& kv : output) m[kv.key] += kv.value;
  return m;
}

TEST(Job, WordCountProducesCorrectTotals) {
  const auto result = run_job(word_count_config(), word_count_input());
  const auto counts = as_map(result.output);
  EXPECT_EQ(counts.at("the"), 3);
  EXPECT_EQ(counts.at("dog"), 3);
  EXPECT_EQ(counts.at("quick"), 2);
  EXPECT_EQ(counts.at("fox"), 2);
  EXPECT_EQ(counts.at("jumps"), 1);
}

TEST(Job, EachKeyReducedExactlyOnce) {
  const auto result = run_job(word_count_config(), word_count_input());
  std::map<std::string, int> seen;
  for (const auto& kv : result.output) seen[kv.key] += 1;
  for (const auto& [word, times] : seen) EXPECT_EQ(times, 1) << word;
}

TEST(Job, CombinerPreservesResultAndShrinksShuffle) {
  auto with_combiner = word_count_config();
  with_combiner.combine_fn = [](const std::string& word, std::vector<int>& counts,
                                Emitter<std::string, int>& out, TaskContext&) {
    int total = 0;
    for (int c : counts) total += c;
    out.emit(word, total);
  };
  const auto input = word_count_input();
  const auto plain = run_job(word_count_config(), input);
  const auto combined = run_job(with_combiner, input);
  EXPECT_EQ(as_map(plain.output), as_map(combined.output));
  EXPECT_LE(combined.metrics.shuffle_records, plain.metrics.shuffle_records);
}

TEST(Job, ThreadedExecutionMatchesSequential) {
  RunOptions threaded;
  threaded.mode = ExecutionMode::kThreads;
  threaded.num_threads = 4;
  const auto input = word_count_input();
  const auto seq = run_job(word_count_config(), input);
  const auto par = run_job(word_count_config(), input, threaded);
  EXPECT_EQ(as_map(seq.output), as_map(par.output));
  EXPECT_EQ(seq.metrics.shuffle_records, par.metrics.shuffle_records);
}

TEST(Job, MetricsCountRecordsPerPhase) {
  const auto result = run_job(word_count_config(), word_count_input());
  const auto& m = result.metrics;
  ASSERT_EQ(m.map_tasks.size(), 3u);
  ASSERT_EQ(m.reduce_tasks.size(), 2u);
  EXPECT_EQ(m.map_total().records_in, 4u);   // four documents
  EXPECT_EQ(m.map_total().records_out, 14u); // fourteen words
  EXPECT_EQ(m.shuffle_records, 14u);
  EXPECT_EQ(m.reduce_total().records_in, 14u);
  EXPECT_GT(m.shuffle_bytes, 0u);
  EXPECT_EQ(m.map_total().work_units, 14u);  // one unit charged per word
}

TEST(Job, EmptyInputYieldsEmptyOutput) {
  const auto result = run_job(word_count_config(), {});
  EXPECT_TRUE(result.output.empty());
  EXPECT_EQ(result.metrics.shuffle_records, 0u);
}

TEST(Job, MoreMapTasksThanRecordsIsFine) {
  auto config = word_count_config();
  config.num_map_tasks = 64;
  const auto result = run_job(config, word_count_input());
  EXPECT_EQ(as_map(result.output).at("the"), 3);
}

TEST(Job, CustomPartitionerRoutesKeys) {
  auto config = word_count_config();
  config.num_reduce_tasks = 2;
  // Everything to bucket 1: bucket 0 must see zero records.
  config.partition_fn = [](const std::string&, std::size_t) -> std::size_t { return 1; };
  const auto result = run_job(config, word_count_input());
  EXPECT_EQ(result.metrics.reduce_tasks[0].records_in, 0u);
  EXPECT_GT(result.metrics.reduce_tasks[1].records_in, 0u);
  EXPECT_EQ(as_map(result.output).at("dog"), 3);
}

TEST(Job, ValueBytesFnFeedsShuffleBytes) {
  auto config = word_count_config();
  config.value_bytes_fn = [](const int&) -> std::size_t { return 100; };
  const auto result = run_job(config, word_count_input());
  // 14 shuffled records × (key bytes + 100).
  EXPECT_GE(result.metrics.shuffle_bytes, 1400u);
}

TEST(Job, MissingMapFnThrows) {
  WordCountJob config;
  config.reduce_fn = [](const std::string&, std::vector<int>&, Emitter<std::string, int>&,
                        TaskContext&) {};
  EXPECT_THROW(run_job(config, {}), mrsky::InvalidArgument);
}

TEST(Job, MissingReduceFnThrows) {
  WordCountJob config;
  config.map_fn = [](const int&, const std::string&, Emitter<std::string, int>&, TaskContext&) {};
  EXPECT_THROW(run_job(config, {}), mrsky::InvalidArgument);
}

TEST(Job, ZeroTasksThrows) {
  auto config = word_count_config();
  config.num_map_tasks = 0;
  EXPECT_THROW(run_job(config, word_count_input()), mrsky::InvalidArgument);
  config.num_map_tasks = 1;
  config.num_reduce_tasks = 0;
  EXPECT_THROW(run_job(config, word_count_input()), mrsky::InvalidArgument);
}

TEST(Job, ReduceSeesValuesGroupedByKey) {
  // Sum-by-key with explicit group size assertions.
  JobConfig<int, int, int, int, int, int> config;
  config.name = "group-check";
  config.num_map_tasks = 2;
  config.num_reduce_tasks = 3;
  config.map_fn = [](const int& k, const int& v, Emitter<int, int>& out, TaskContext&) {
    out.emit(k % 5, v);
  };
  config.reduce_fn = [](const int& key, std::vector<int>& values, Emitter<int, int>& out,
                        TaskContext&) {
    EXPECT_FALSE(values.empty());
    int total = 0;
    for (int v : values) total += v;
    out.emit(key, total);
  };
  std::vector<KV<int, int>> input;
  for (int i = 0; i < 100; ++i) input.push_back({i, 1});
  const auto result = run_job(config, input);
  ASSERT_EQ(result.output.size(), 5u);
  for (const auto& kv : result.output) EXPECT_EQ(kv.value, 20);
}

TEST(Job, DeterministicOutputOrder) {
  const auto a = run_job(word_count_config(), word_count_input());
  const auto b = run_job(word_count_config(), word_count_input());
  ASSERT_EQ(a.output.size(), b.output.size());
  for (std::size_t i = 0; i < a.output.size(); ++i) {
    EXPECT_EQ(a.output[i].key, b.output[i].key);
    EXPECT_EQ(a.output[i].value, b.output[i].value);
  }
}

TEST(Emitter, TakeDrainsRecords) {
  Emitter<int, int> e;
  e.emit(1, 2);
  e.emit(3, 4);
  EXPECT_EQ(e.count(), 2u);
  const auto records = e.take();
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(e.count(), 0u);
}

TEST(TaskContext, AccumulatesWork) {
  TaskContext ctx;
  ctx.charge_work(5);
  ctx.charge_work(7);
  EXPECT_EQ(ctx.work_units(), 12u);
}

}  // namespace
}  // namespace mrsky::mr
