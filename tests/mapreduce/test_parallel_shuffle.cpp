// The parallel shuffle and the persistent RunOptions::pool: determinism
// across execution modes, pool reuse, and exception propagation out of
// map/reduce bodies running under kThreads.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/thread_pool.hpp"
#include "src/mapreduce/job.hpp"

namespace mrsky::mr {
namespace {

using FanJob = JobConfig<int, int, int, int, int, int>;

/// A job with wide fan-out, a combiner, and a custom partitioner — every
/// engine feature the parallel shuffle has to keep deterministic.
FanJob fan_out_job() {
  FanJob config;
  config.name = "fan-out";
  config.num_map_tasks = 7;
  config.num_reduce_tasks = 5;
  config.map_fn = [](const int& k, const int& v, Emitter<int, int>& out, TaskContext& ctx) {
    for (int i = 0; i < 8; ++i) {
      out.emit((k * 31 + i) % 23, v + i);
      ctx.charge_work(1);
    }
    ctx.increment("map.calls");
  };
  config.combine_fn = [](const int& key, std::vector<int>& values, Emitter<int, int>& out,
                         TaskContext& ctx) {
    int total = 0;
    for (int v : values) total += v;
    out.emit(key, total);
    ctx.increment("combine.groups");
  };
  config.reduce_fn = [](const int& key, std::vector<int>& values, Emitter<int, int>& out,
                        TaskContext& ctx) {
    int total = 0;
    for (int v : values) total += v;
    out.emit(key, total);
    ctx.increment("reduce.groups");
  };
  config.partition_fn = [](const int& key, std::size_t buckets) {
    return static_cast<std::size_t>(key) % buckets;
  };
  return config;
}

std::vector<KV<int, int>> numbers(int n) {
  std::vector<KV<int, int>> input;
  for (int i = 0; i < n; ++i) input.push_back({i, 3 * i + 1});
  return input;
}

/// Everything except the measured wall-clock fields must be identical.
void expect_tasks_identical(const std::vector<TaskMetrics>& a,
                            const std::vector<TaskMetrics>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].records_in, b[i].records_in) << "task " << i;
    EXPECT_EQ(a[i].records_out, b[i].records_out) << "task " << i;
    EXPECT_EQ(a[i].work_units, b[i].work_units) << "task " << i;
    EXPECT_EQ(a[i].attempts, b[i].attempts) << "task " << i;
    EXPECT_EQ(a[i].counters, b[i].counters) << "task " << i;
  }
}

TEST(ParallelShuffle, ThreadedRunIsBitwiseIdenticalToSequential) {
  const auto input = numbers(500);
  RunOptions threaded;
  threaded.mode = ExecutionMode::kThreads;
  threaded.num_threads = 4;
  const auto seq = run_job(fan_out_job(), input);
  const auto par = run_job(fan_out_job(), input, threaded);

  // Output: same records in the same order, not just the same multiset.
  ASSERT_EQ(seq.output.size(), par.output.size());
  for (std::size_t i = 0; i < seq.output.size(); ++i) {
    EXPECT_EQ(seq.output[i].key, par.output[i].key) << "record " << i;
    EXPECT_EQ(seq.output[i].value, par.output[i].value) << "record " << i;
  }

  EXPECT_EQ(seq.metrics.shuffle_records, par.metrics.shuffle_records);
  EXPECT_EQ(seq.metrics.shuffle_bytes, par.metrics.shuffle_bytes);
  expect_tasks_identical(seq.metrics.map_tasks, par.metrics.map_tasks);
  expect_tasks_identical(seq.metrics.reduce_tasks, par.metrics.reduce_tasks);
  EXPECT_EQ(seq.metrics.counter_totals(), par.metrics.counter_totals());
}

TEST(ParallelShuffle, ShuffleTimeIsRecorded) {
  const auto result = run_job(fan_out_job(), numbers(100));
  EXPECT_GE(result.metrics.shuffle_ns, 0);
  // Reduce tasks saw exactly what crossed the shuffle.
  EXPECT_EQ(result.metrics.reduce_total().records_in, result.metrics.shuffle_records);
}

TEST(ParallelShuffle, PersistentPoolIsReusedAcrossJobs) {
  common::ThreadPool pool(3);
  RunOptions opts;
  opts.mode = ExecutionMode::kThreads;
  opts.pool = &pool;
  const auto input = numbers(200);
  const auto baseline = run_job(fan_out_job(), input);
  for (int round = 0; round < 3; ++round) {
    const auto result = run_job(fan_out_job(), input, opts);
    EXPECT_EQ(result.output.size(), baseline.output.size()) << "round " << round;
    EXPECT_EQ(result.metrics.counter_totals(), baseline.metrics.counter_totals());
  }
  EXPECT_EQ(pool.size(), 3u);  // engine never resized or replaced the pool
}

TEST(ParallelShuffle, PersistentPoolWorksForMapOnlyJobs) {
  common::ThreadPool pool(2);
  RunOptions opts;
  opts.mode = ExecutionMode::kThreads;
  opts.pool = &pool;
  MapOnlyConfig<int, int, int, int> config;
  config.name = "passthrough";
  config.num_map_tasks = 4;
  config.map_fn = [](const int& k, const int& v, Emitter<int, int>& out, TaskContext&) {
    out.emit(k, v);
  };
  const auto result = run_map_only(config, numbers(64), opts);
  EXPECT_EQ(result.output.size(), 64u);
}

TEST(ParallelShuffle, ThrowingMapFnSurfacesExactlyOneException) {
  auto config = fan_out_job();
  std::atomic<int> calls{0};
  config.map_fn = [&calls](const int& k, const int&, Emitter<int, int>&, TaskContext&) {
    calls.fetch_add(1);
    if (k % 3 == 0) throw std::runtime_error("map blew up");
  };
  RunOptions threaded;
  threaded.mode = ExecutionMode::kThreads;
  threaded.num_threads = 4;
  EXPECT_THROW(run_job(config, numbers(120), threaded), std::runtime_error);
  EXPECT_GT(calls.load(), 0);
}

TEST(ParallelShuffle, ThrowingReduceFnSurfacesExactlyOneException) {
  auto config = fan_out_job();
  config.reduce_fn = [](const int&, std::vector<int>&, Emitter<int, int>&, TaskContext&) {
    throw std::runtime_error("reduce blew up");
  };
  RunOptions threaded;
  threaded.mode = ExecutionMode::kThreads;
  threaded.num_threads = 4;
  EXPECT_THROW(run_job(config, numbers(120), threaded), std::runtime_error);
}

TEST(ParallelShuffle, PersistentPoolSurvivesAFailedJob) {
  common::ThreadPool pool(3);
  RunOptions opts;
  opts.mode = ExecutionMode::kThreads;
  opts.pool = &pool;

  auto doomed = fan_out_job();
  doomed.map_fn = [](const int&, const int&, Emitter<int, int>&, TaskContext&) {
    throw std::runtime_error("boom");
  };
  EXPECT_THROW(run_job(doomed, numbers(50), opts), std::runtime_error);

  // The same pool immediately runs the next job to completion.
  const auto result = run_job(fan_out_job(), numbers(50), opts);
  const auto baseline = run_job(fan_out_job(), numbers(50));
  EXPECT_EQ(result.output.size(), baseline.output.size());
  EXPECT_EQ(result.metrics.counter_totals(), baseline.metrics.counter_totals());
}

TEST(ParallelShuffle, OutOfRangePartitionThrowsUnderThreads) {
  auto config = fan_out_job();
  config.partition_fn = [](const int&, std::size_t buckets) { return buckets; };
  RunOptions threaded;
  threaded.mode = ExecutionMode::kThreads;
  threaded.num_threads = 4;
  EXPECT_THROW(run_job(config, numbers(40), threaded), mrsky::InvalidArgument);
}

TEST(ParallelShuffle, FaultInjectionStaysDeterministicAcrossModes) {
  RunOptions seq;
  seq.task_failure_probability = 0.3;
  RunOptions par = seq;
  par.mode = ExecutionMode::kThreads;
  par.num_threads = 4;
  const auto input = numbers(150);
  const auto a = run_job(fan_out_job(), input, seq);
  const auto b = run_job(fan_out_job(), input, par);
  expect_tasks_identical(a.metrics.map_tasks, b.metrics.map_tasks);
  expect_tasks_identical(a.metrics.reduce_tasks, b.metrics.reduce_tasks);
}

}  // namespace
}  // namespace mrsky::mr
