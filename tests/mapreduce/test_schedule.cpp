// Schedule-trace, heterogeneous-cluster and straggler tests for the
// simulator extensions.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/common/error.hpp"
#include "src/mapreduce/cluster.hpp"

namespace mrsky::mr {
namespace {

TEST(LptSchedule, PlacementsCoverAllTasks) {
  const std::vector<double> costs = {3.0, 1.0, 2.0, 5.0};
  const std::vector<double> speeds = {1.0, 1.0};
  const PhaseSchedule schedule = lpt_schedule(costs, speeds);
  ASSERT_EQ(schedule.placements.size(), 4u);
  for (std::size_t i = 0; i < costs.size(); ++i) {
    EXPECT_EQ(schedule.placements[i].task_index, i);
    EXPECT_LT(schedule.placements[i].lane, speeds.size());
  }
}

TEST(LptSchedule, DurationsMatchCostOverSpeed) {
  const std::vector<double> costs = {4.0, 2.0};
  const std::vector<double> speeds = {2.0, 1.0};
  const PhaseSchedule schedule = lpt_schedule(costs, speeds);
  for (const auto& p : schedule.placements) {
    const double expected = costs[p.task_index] / speeds[p.lane];
    EXPECT_NEAR(p.end_seconds - p.start_seconds, expected, 1e-12);
  }
}

TEST(LptSchedule, NoOverlapWithinLane) {
  const std::vector<double> costs = {5.0, 4.0, 3.0, 2.0, 1.0, 2.5, 3.5};
  const std::vector<double> speeds = {1.0, 1.0, 1.0};
  const PhaseSchedule schedule = lpt_schedule(costs, speeds);
  std::map<std::size_t, std::vector<std::pair<double, double>>> by_lane;
  for (const auto& p : schedule.placements) {
    by_lane[p.lane].push_back({p.start_seconds, p.end_seconds});
  }
  for (auto& [lane, intervals] : by_lane) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GE(intervals[i].first, intervals[i - 1].second - 1e-12) << "lane " << lane;
    }
  }
}

TEST(LptSchedule, MakespanIsMaxEnd) {
  const std::vector<double> costs = {1.0, 2.0, 3.0};
  const std::vector<double> speeds = {1.0};
  const PhaseSchedule schedule = lpt_schedule(costs, speeds);
  double max_end = 0.0;
  for (const auto& p : schedule.placements) max_end = std::max(max_end, p.end_seconds);
  EXPECT_DOUBLE_EQ(schedule.makespan_seconds, max_end);
  EXPECT_DOUBLE_EQ(schedule.makespan_seconds, 6.0);
}

TEST(LptSchedule, FastLaneAttractsWork) {
  // One lane 4x faster: it should complete more total cost.
  std::vector<double> costs(16, 1.0);
  const std::vector<double> speeds = {4.0, 1.0};
  const PhaseSchedule schedule = lpt_schedule(costs, speeds);
  double fast_cost = 0.0;
  double slow_cost = 0.0;
  for (const auto& p : schedule.placements) {
    (p.lane == 0 ? fast_cost : slow_cost) += 1.0;
  }
  EXPECT_GT(fast_cost, slow_cost);
}

TEST(LptSchedule, HeterogeneousBeatsUniformSlow) {
  const std::vector<double> costs = {4.0, 4.0, 4.0, 4.0};
  const std::vector<double> fast = {2.0, 2.0};
  const std::vector<double> slow = {1.0, 1.0};
  EXPECT_LT(lpt_schedule(costs, fast).makespan_seconds,
            lpt_schedule(costs, slow).makespan_seconds);
}

TEST(LptSchedule, RejectsBadLanes) {
  const std::vector<double> costs = {1.0};
  EXPECT_THROW((void)lpt_schedule(costs, std::span<const double>{}), mrsky::InvalidArgument);
  const std::vector<double> zero = {0.0};
  EXPECT_THROW((void)lpt_schedule(costs, zero), mrsky::InvalidArgument);
}

JobMetrics sample_metrics() {
  JobMetrics m;
  for (int i = 0; i < 6; ++i) {
    TaskMetrics t;
    t.records_in = 500;
    t.work_units = 100000;
    m.map_tasks.push_back(t);
  }
  for (int i = 0; i < 3; ++i) {
    TaskMetrics t;
    t.records_in = 200;
    t.work_units = 400000;
    m.reduce_tasks.push_back(t);
  }
  return m;
}

TEST(TraceJob, TimesMatchSimulateJob) {
  const JobMetrics m = sample_metrics();
  ClusterModel model;
  model.servers = 4;
  const ScheduleTrace trace = trace_job(m, model);
  const PhaseTimes times = simulate_job(m, model);
  EXPECT_DOUBLE_EQ(trace.times.map_seconds, times.map_seconds);
  EXPECT_DOUBLE_EQ(trace.times.reduce_seconds, times.reduce_seconds);
  EXPECT_DOUBLE_EQ(trace.times.startup_seconds, times.startup_seconds);
}

TEST(TraceJob, LaneCountsFollowSlots) {
  const JobMetrics m = sample_metrics();
  ClusterModel model;
  model.servers = 3;
  model.map_slots_per_server = 2;
  model.reduce_slots_per_server = 1;
  const ScheduleTrace trace = trace_job(m, model);
  EXPECT_EQ(trace.map.lane_speeds.size(), 6u);
  EXPECT_EQ(trace.reduce.lane_speeds.size(), 3u);
}

TEST(ClusterModel, DefaultSpeedIsOne) {
  ClusterModel model;
  EXPECT_DOUBLE_EQ(model.server_speed(0), 1.0);
  EXPECT_DOUBLE_EQ(model.server_speed(99), 1.0);
}

TEST(ClusterModel, SpeedFactorsApply) {
  ClusterModel model;
  model.server_speed_factors = {2.0, 0.5};
  EXPECT_DOUBLE_EQ(model.server_speed(0), 2.0);
  EXPECT_DOUBLE_EQ(model.server_speed(1), 0.5);
  EXPECT_DOUBLE_EQ(model.server_speed(2), 1.0);  // beyond table: default
}

TEST(ClusterModel, WithStragglersSlowsTail) {
  ClusterModel model;
  model.servers = 4;
  const ClusterModel degraded = model.with_stragglers(2, 4.0);
  EXPECT_DOUBLE_EQ(degraded.server_speed(0), 1.0);
  EXPECT_DOUBLE_EQ(degraded.server_speed(1), 1.0);
  EXPECT_DOUBLE_EQ(degraded.server_speed(2), 0.25);
  EXPECT_DOUBLE_EQ(degraded.server_speed(3), 0.25);
}

TEST(ClusterModel, StragglersIncreaseMakespan) {
  const JobMetrics m = sample_metrics();
  ClusterModel model;
  model.servers = 4;
  const PhaseTimes healthy = simulate_job(m, model);
  const PhaseTimes degraded = simulate_job(m, model.with_stragglers(2, 10.0));
  EXPECT_GT(degraded.map_seconds + degraded.reduce_seconds,
            healthy.map_seconds + healthy.reduce_seconds);
}

TEST(ClusterModel, SchedulerRoutesAroundStragglers) {
  // With enough healthy lanes, a mild straggler should cost less than the
  // naive slowdown factor: the LPT scheduler shifts work away from it.
  const JobMetrics m = sample_metrics();
  ClusterModel model;
  model.servers = 8;
  const double healthy = simulate_job(m, model).map_seconds;
  const double degraded = simulate_job(m, model.with_stragglers(1, 10.0)).map_seconds;
  EXPECT_LT(degraded, healthy * 10.0);
}

TEST(ClusterModel, WithStragglersValidation) {
  ClusterModel model;
  model.servers = 4;
  EXPECT_THROW((void)model.with_stragglers(5, 2.0), mrsky::InvalidArgument);
  EXPECT_THROW((void)model.with_stragglers(1, 0.5), mrsky::InvalidArgument);
}

}  // namespace
}  // namespace mrsky::mr
