#include "src/common/log.hpp"

#include <gtest/gtest.h>

namespace mrsky::common {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, SuppressedLevelsDoNotCrash) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  log(LogLevel::kError, "should be suppressed");
  MRSKY_LOG_DEBUG << "also suppressed " << 42;
}

TEST(Log, EmittingBelowThresholdIsSilent) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  log(LogLevel::kInfo, "hidden");
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(Log, EmittingAtThresholdWrites) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  log(LogLevel::kWarn, "visible");
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("visible"), std::string::npos);
  EXPECT_NE(err.find("WARN"), std::string::npos);
}

TEST(Log, StreamMacroFormats) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  MRSKY_LOG_INFO << "x=" << 7;
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("x=7"), std::string::npos);
}

}  // namespace
}  // namespace mrsky::common
