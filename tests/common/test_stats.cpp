#include "src/common/stats.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include <vector>

#include "src/common/error.hpp"

namespace mrsky::common {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStats, KnownSeries) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, TracksNegativeValues) {
  RunningStats s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(MeanStddev, SpanHelpers) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), 1.2909944487358056, 1e-12);
}

TEST(MeanStddev, EmptySpanIsZero) {
  const std::vector<double> xs;
  EXPECT_DOUBLE_EQ(mean(xs), 0.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Percentile, MedianOfOddSeries) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25.0), 2.5);
}

TEST(Percentile, ExtremesAreMinMax) {
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 9.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 9.0}, 100.0), 9.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
}

TEST(Percentile, ThrowsOnEmpty) {
  EXPECT_THROW(percentile({}, 50.0), InvalidArgument);
}

TEST(Percentile, ThrowsOnBadP) {
  EXPECT_THROW(percentile({1.0}, -1.0), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, 101.0), InvalidArgument);
}

TEST(CoefficientOfVariation, ZeroForConstantSeries) {
  const std::vector<double> xs = {3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(xs), 0.0);
}

TEST(CoefficientOfVariation, KnownValue) {
  const std::vector<double> xs = {2.0, 4.0};
  // mean 3, sample stddev sqrt(2)
  EXPECT_NEAR(coefficient_of_variation(xs), std::sqrt(2.0) / 3.0, 1e-12);
}

TEST(CoefficientOfVariation, ZeroMeanGuarded) {
  const std::vector<double> xs = {-1.0, 1.0};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(xs), 0.0);
}

TEST(PearsonCorrelation, PerfectPositive) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0};
  EXPECT_NEAR(pearson_correlation(xs, ys), 1.0, 1e-12);
}

TEST(PearsonCorrelation, PerfectNegative) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson_correlation(xs, ys), -1.0, 1e-12);
}

TEST(PearsonCorrelation, ConstantSeriesIsZero) {
  const std::vector<double> xs = {1.0, 1.0, 1.0};
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson_correlation(xs, ys), 0.0);
}

TEST(PearsonCorrelation, ThrowsOnSizeMismatch) {
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {1.0};
  EXPECT_THROW(pearson_correlation(xs, ys), InvalidArgument);
}

TEST(PearsonCorrelation, ThrowsOnTooFewSamples) {
  const std::vector<double> xs = {1.0};
  const std::vector<double> ys = {1.0};
  EXPECT_THROW(pearson_correlation(xs, ys), InvalidArgument);
}

}  // namespace
}  // namespace mrsky::common
