#include "src/common/trace.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "tests/support/trace_test_utils.hpp"

namespace mrsky::common {
namespace {

TEST(Trace, NullRecorderScopedSpanIsInert) {
  ScopedSpan span(nullptr, "nothing", "none");
  EXPECT_FALSE(span.enabled());
  span.arg("key", "value");  // must be a no-op, not a crash
  span.arg("n", 42);
}

TEST(Trace, SpansNestOnOneThread) {
  TraceRecorder rec;
  {
    ScopedSpan outer(&rec, "outer", "test");
    {
      ScopedSpan inner(&rec, "inner", "test");
      EXPECT_TRUE(inner.enabled());
    }
    ScopedSpan sibling(&rec, "sibling", "test");
  }
  const auto spans = rec.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent, kTraceNoParent);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[2].name, "sibling");
  EXPECT_EQ(spans[2].parent, spans[0].id);
  EXPECT_EQ(spans[0].lane, spans[1].lane);
  EXPECT_TRUE(test::well_formed(spans));
  EXPECT_TRUE(test::no_sibling_overlap(spans));
}

TEST(Trace, ThreadsGetDistinctLanesAndRootSpans) {
  TraceRecorder rec;
  {
    ScopedSpan driver(&rec, "driver", "test");
    std::thread worker([&rec] { ScopedSpan span(&rec, "worker", "test"); });
    worker.join();
  }
  const auto spans = rec.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].lane, spans[1].lane);
  // The worker span is a root of its own lane, not a cross-thread child.
  EXPECT_EQ(spans[1].parent, kTraceNoParent);
  EXPECT_TRUE(test::well_formed(spans));
}

TEST(Trace, ArgsRoundTrip) {
  TraceRecorder rec;
  {
    ScopedSpan span(&rec, "s", "test");
    span.arg("text", "hello");
    span.arg("count", std::size_t{7});
    span.arg("signed", -3);
  }
  const auto spans = rec.spans();
  ASSERT_EQ(spans.size(), 1u);
  const TraceArg* text = spans[0].find_arg("text");
  ASSERT_NE(text, nullptr);
  EXPECT_EQ(text->value, "hello");
  EXPECT_FALSE(text->numeric);
  EXPECT_EQ(spans[0].arg_int("count"), 7);
  EXPECT_EQ(spans[0].arg_int("signed"), -3);
  EXPECT_EQ(spans[0].arg_int("missing", -99), -99);
  EXPECT_EQ(spans[0].arg_int("text", -99), -99);  // non-numeric -> fallback
}

TEST(Trace, SyntheticSpansKeepExplicitPlacement) {
  TraceRecorder rec;
  const auto id = rec.add_span("sim", "sim-task", kTracePidSimulator, 5, 1000, 2000);
  rec.add_arg_int(id, "task", 3);
  rec.set_lane_name(kTracePidSimulator, 5, "server 2 slot 1");
  const auto spans = rec.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].pid, kTracePidSimulator);
  EXPECT_EQ(spans[0].lane, 5u);
  EXPECT_EQ(spans[0].start_ns, 1000);
  EXPECT_EQ(spans[0].end_ns, 2000);
  EXPECT_EQ(spans[0].arg_int("task"), 3);
  const std::string json = rec.to_chrome_json();
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("server 2 slot 1"), std::string::npos);
  EXPECT_TRUE(test::valid_json(json));
}

TEST(Trace, ChromeJsonIsValidAndEscapesHostileStrings) {
  TraceRecorder rec;
  {
    ScopedSpan span(&rec, "name with \"quotes\"\nand\tcontrol \x01 bytes", "cat\\egory");
    span.arg("key \x02", "value with \x1f and \"escapes\"");
  }
  const std::string json = rec.to_chrome_json();
  EXPECT_TRUE(test::valid_json(json));
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\\u001f"), std::string::npos);
  EXPECT_NE(json.find("cat\\\\egory"), std::string::npos);
  // Chrome trace framing.
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(Trace, ConcurrentSpansFromManyThreads) {
  TraceRecorder rec;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < 50; ++i) {
        ScopedSpan span(&rec, "work", "test");
        span.arg("thread", t);
        span.arg("i", i);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto spans = rec.spans();
  EXPECT_EQ(spans.size(), 200u);
  EXPECT_TRUE(test::well_formed(spans));
  EXPECT_TRUE(test::no_sibling_overlap(spans));
  EXPECT_TRUE(test::valid_json(rec.to_chrome_json()));
}

// --- The assertion library itself must reject malformed inputs. ---

TraceSpan make_span(std::uint64_t id, std::uint64_t parent, std::int64_t start,
                    std::int64_t end, std::uint32_t lane = 0) {
  TraceSpan s;
  s.id = id;
  s.parent = parent;
  s.name = "s" + std::to_string(id);
  s.category = "test";
  s.start_ns = start;
  s.end_ns = end;
  s.lane = lane;
  return s;
}

TEST(TraceTestUtils, DetectsInvertedInterval) {
  EXPECT_FALSE(test::well_formed({make_span(1, 0, 100, 50)}));
}

TEST(TraceTestUtils, DetectsMissingParent) {
  EXPECT_FALSE(test::well_formed({make_span(1, 7, 0, 10)}));
}

TEST(TraceTestUtils, DetectsChildEscapingParent) {
  EXPECT_FALSE(test::well_formed({make_span(1, 0, 0, 10), make_span(2, 1, 5, 20)}));
  EXPECT_TRUE(test::well_formed({make_span(1, 0, 0, 10), make_span(2, 1, 5, 10)}));
}

TEST(TraceTestUtils, DetectsCrossLaneParent) {
  EXPECT_FALSE(
      test::well_formed({make_span(1, 0, 0, 10, 0), make_span(2, 1, 2, 8, 1)}));
}

TEST(TraceTestUtils, DetectsSiblingOverlap) {
  EXPECT_FALSE(
      test::no_sibling_overlap({make_span(1, 0, 0, 10), make_span(2, 0, 5, 15)}));
  // Different lanes may overlap freely.
  EXPECT_TRUE(
      test::no_sibling_overlap({make_span(1, 0, 0, 10, 0), make_span(2, 0, 5, 15, 1)}));
  // Touching intervals are fine.
  EXPECT_TRUE(
      test::no_sibling_overlap({make_span(1, 0, 0, 10), make_span(2, 0, 10, 15)}));
}

TEST(TraceTestUtils, DetectsRetryAfterSuccess) {
  auto task = make_span(1, 0, 0, 100);
  auto ok = make_span(2, 1, 0, 40);
  ok.category = "attempt";
  ok.args = {{"attempt", "0", true}, {"status", "ok", false}};
  auto failed = make_span(3, 1, 50, 90);
  failed.category = "attempt";
  failed.args = {{"attempt", "1", true}, {"status", "failed", false}};
  EXPECT_FALSE(test::retries_precede_success({task, ok, failed}));

  // Swapping statuses (failed first, then ok) makes it legal.
  ok.args[1].value = "failed";
  failed.args[1].value = "ok";
  EXPECT_TRUE(test::retries_precede_success({task, ok, failed}));
}

TEST(TraceTestUtils, ValidJsonRejectsGarbage) {
  EXPECT_TRUE(test::valid_json("{\"a\":[1,2.5,-3e2,\"x\",true,null],\"b\":{}}"));
  EXPECT_FALSE(test::valid_json(""));
  EXPECT_FALSE(test::valid_json("{\"a\":1,}"));
  EXPECT_FALSE(test::valid_json("{\"a\":1} trailing"));
  EXPECT_FALSE(test::valid_json("{\"unterminated"));
  EXPECT_FALSE(test::valid_json("{\"raw\":\"\x01\"}"));  // unescaped control char
  EXPECT_FALSE(test::valid_json("{\"bad\":\"\\q\"}"));
  EXPECT_FALSE(test::valid_json("[1 2]"));
}

}  // namespace
}  // namespace mrsky::common
