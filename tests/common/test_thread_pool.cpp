#include "src/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/error.hpp"

namespace mrsky::common {
namespace {

TEST(ThreadPool, RequiresAtLeastOneWorker) {
  EXPECT_THROW(ThreadPool(0), InvalidArgument);
}

TEST(ThreadPool, ReportsSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  pool.parallel_for(500, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("bad index");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForSurfacesExactlyOneExceptionWhenManyThrow) {
  // Every index throws; parallel_for must fold them into a single rethrow
  // rather than terminating or leaking exceptions from abandoned futures.
  ThreadPool pool(4);
  try {
    pool.parallel_for(100, [](std::size_t i) {
      throw std::runtime_error("index " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
    SUCCEED();
  }
}

TEST(ThreadPool, PoolStaysUsableAfterParallelForThrows) {
  ThreadPool pool(3);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(pool.parallel_for(50,
                                   [](std::size_t i) {
                                     if (i % 2 == 0) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
    // Both entry points still work on the same pool.
    auto f = pool.submit([] { return 7; });
    EXPECT_EQ(f.get(), 7);
    std::atomic<int> counter{0};
    pool.parallel_for(20, [&counter](std::size_t) { counter.fetch_add(1); });
    EXPECT_EQ(counter.load(), 20);
  }
}

TEST(ThreadPool, ParallelForComputesCorrectSum) {
  ThreadPool pool(3);
  std::vector<long> partial(100, 0);
  pool.parallel_for(100, [&](std::size_t i) { partial[i] = static_cast<long>(i); });
  EXPECT_EQ(std::accumulate(partial.begin(), partial.end(), 0L), 4950L);
}

TEST(ThreadPool, DefaultConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::default_concurrency(), 1u);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace mrsky::common
