// common::Semaphore / SlotGuard — the admission-control primitives under the
// skyline server — plus the cooperative-cancellation primitives (ISSUE 7):
// Deadline and CancellationToken. The concurrency tests are the ones that
// matter under TSan: slot counts must never oversubscribe, and a cancel
// latched on one thread must become visible to pollers on every other.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/sync.hpp"

namespace mrsky {
namespace {

TEST(Semaphore, TryAcquireExhaustsExactly) {
  common::Semaphore sem(2);
  EXPECT_EQ(sem.available(), 2u);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());  // never spurious: 0 left means false
  EXPECT_EQ(sem.available(), 0u);
  sem.release();
  EXPECT_EQ(sem.available(), 1u);
  EXPECT_TRUE(sem.try_acquire());
}

TEST(Semaphore, AcquireBlocksUntilRelease) {
  common::Semaphore sem(0);
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    sem.acquire();
    acquired.store(true);
  });
  EXPECT_FALSE(acquired.load());
  sem.release();
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(SlotGuard, ReleasesOnDestructionOnlyWhenHeld) {
  common::Semaphore sem(1);
  {
    common::SlotGuard held(sem);
    EXPECT_TRUE(static_cast<bool>(held));
    EXPECT_EQ(sem.available(), 0u);
    common::SlotGuard rejected(sem);
    EXPECT_FALSE(static_cast<bool>(rejected));
  }  // `held` releases; `rejected` must not double-release
  EXPECT_EQ(sem.available(), 1u);
}

TEST(SlotGuard, MoveTransfersOwnership) {
  common::Semaphore sem(1);
  common::SlotGuard first(sem);
  EXPECT_TRUE(static_cast<bool>(first));
  common::SlotGuard second(std::move(first));
  EXPECT_TRUE(static_cast<bool>(second));
  EXPECT_FALSE(static_cast<bool>(first));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(sem.available(), 0u);
}

TEST(Semaphore, NeverOversubscribesUnderContention) {
  constexpr std::size_t kSlots = 3;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRounds = 400;
  common::Semaphore sem(kSlots);
  std::atomic<int> inside{0};
  std::atomic<bool> oversubscribed{false};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < kRounds; ++i) {
        if (common::SlotGuard slot{sem}; slot) {
          if (inside.fetch_add(1) + 1 > static_cast<int>(kSlots)) {
            oversubscribed.store(true);
          }
          inside.fetch_sub(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(oversubscribed.load());
  EXPECT_EQ(sem.available(), kSlots);
}

TEST(Deadline, DefaultIsDisengaged) {
  const common::Deadline none;
  EXPECT_FALSE(none.engaged());
  EXPECT_FALSE(none.expired());
  EXPECT_EQ(none.raw_ns(), common::Deadline::kNone);
  EXPECT_GT(none.remaining_ms(), std::int64_t{1} << 40);  // effectively forever
}

TEST(Deadline, ZeroMillisecondsIsAlreadyExpired) {
  // after_ms(0) is the deterministic "expired on arrival" hook the engine and
  // server tests rely on — no sleeping, no clock slop.
  const common::Deadline d = common::Deadline::after_ms(0);
  EXPECT_TRUE(d.engaged());
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_ms(), 0);
}

TEST(Deadline, FutureDeadlineReportsRemainingBudget) {
  const common::Deadline d = common::Deadline::after_ms(60'000);
  EXPECT_TRUE(d.engaged());
  EXPECT_FALSE(d.expired());
  const std::int64_t remaining = d.remaining_ms();
  EXPECT_GT(remaining, 59'000);
  EXPECT_LE(remaining, 60'000);
}

TEST(Cancellation, DefaultTokenIsInertAndNeverStops) {
  const common::CancellationToken token;
  EXPECT_FALSE(token.armed());
  EXPECT_FALSE(token.stop_requested());
  EXPECT_EQ(token.stop_reason(), common::StopReason::kNone);
  EXPECT_NO_THROW(token.throw_if_stopped("inert poll"));
  // Mutators on an inert token are harmless no-ops, not UB.
  common::CancellationToken mutable_token;
  mutable_token.request_cancel();
  mutable_token.set_deadline(common::Deadline::after_ms(0));
  EXPECT_FALSE(mutable_token.stop_requested());
}

TEST(Cancellation, CancelLatchesAndThrowsTyped) {
  common::CancellationToken token = common::CancellationToken::make();
  EXPECT_TRUE(token.armed());
  EXPECT_FALSE(token.stop_requested());
  token.request_cancel();
  EXPECT_EQ(token.stop_reason(), common::StopReason::kCancelled);
  try {
    token.throw_if_stopped("merge round 3");
    FAIL() << "expected QueryCancelled";
  } catch (const QueryCancelled& e) {
    EXPECT_FALSE(e.deadline_expired());
    EXPECT_NE(std::string(e.what()).find("merge round 3"), std::string::npos);
  }
  // Irrevocable: clearing the deadline does not un-cancel.
  token.clear_deadline();
  EXPECT_TRUE(token.stop_requested());
}

TEST(Cancellation, ExpiredDeadlineThrowsDeadlineReason) {
  common::CancellationToken token =
      common::CancellationToken::with_deadline_ms(0);
  EXPECT_EQ(token.stop_reason(), common::StopReason::kDeadline);
  try {
    token.throw_if_stopped("map task");
    FAIL() << "expected QueryCancelled";
  } catch (const QueryCancelled& e) {
    EXPECT_TRUE(e.deadline_expired());
  }
  // clear_deadline() restores the token to runnable — the session reuses one
  // token across requests and re-arms the deadline per query.
  token.clear_deadline();
  EXPECT_EQ(token.stop_reason(), common::StopReason::kNone);
  EXPECT_NO_THROW(token.throw_if_stopped("next request"));
}

TEST(Cancellation, CancelWinsOverExpiredDeadline) {
  common::CancellationToken token =
      common::CancellationToken::with_deadline_ms(0);
  token.request_cancel();
  EXPECT_EQ(token.stop_reason(), common::StopReason::kCancelled);
}

TEST(Cancellation, CopiesShareOneState) {
  common::CancellationToken original = common::CancellationToken::make();
  const common::CancellationToken copy = original;
  original.request_cancel();
  EXPECT_TRUE(copy.stop_requested());
}

TEST(Cancellation, CancelVisibleAcrossThreadsUnderTsan) {
  // One canceller, many pollers: the latch must publish without data races
  // and every poller must observe it promptly.
  common::CancellationToken token = common::CancellationToken::make();
  constexpr std::size_t kPollers = 4;
  std::atomic<std::size_t> observed{0};
  std::vector<std::thread> threads;
  threads.reserve(kPollers);
  for (std::size_t t = 0; t < kPollers; ++t) {
    threads.emplace_back([&token, &observed] {
      while (!token.stop_requested()) std::this_thread::yield();
      observed.fetch_add(1);
    });
  }
  std::thread canceller([&token] { token.request_cancel(); });
  canceller.join();
  for (auto& t : threads) t.join();
  EXPECT_EQ(observed.load(), kPollers);
  EXPECT_EQ(token.stop_reason(), common::StopReason::kCancelled);
}


TEST(NotifyQueue, PushPopInOrder) {
  common::NotifyQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop(0), 1);
  EXPECT_EQ(q.pop(0), 2);
  EXPECT_EQ(q.pop(0), std::nullopt);  // empty poll times out
}

TEST(NotifyQueue, FullQueueDropsOldestAndLatchesLagged) {
  common::NotifyQueue<int> q(2);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_FALSE(q.lagged());
  EXPECT_TRUE(q.push(3));  // drops 1
  EXPECT_TRUE(q.lagged());
  EXPECT_EQ(q.pop(0), 2);
  EXPECT_EQ(q.pop(0), 3);
  EXPECT_TRUE(q.lagged());  // latched, not reset by draining
}

TEST(NotifyQueue, CloseLeavesBacklogPoppableThenEndsStream) {
  common::NotifyQueue<int> q(4);
  EXPECT_TRUE(q.push(7));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(8));  // rejected after close
  EXPECT_EQ(q.pop(0), 7);   // backlog still drains
  // Closed AND drained: even an infinite wait returns end-of-stream now.
  EXPECT_EQ(q.pop(-1), std::nullopt);
}

TEST(NotifyQueue, CloseWakesBlockedConsumerUnderTsan) {
  common::NotifyQueue<int> q(4);
  std::thread consumer([&q] { EXPECT_EQ(q.pop(-1), std::nullopt); });
  q.close();
  consumer.join();
}

TEST(NotifyQueue, ConcurrentProducersAllItemsArriveUnderTsan) {
  // Capacity covers every push, so nothing may drop: the consumer must see
  // each producer's full sequence (per-producer order is FIFO by mutex).
  constexpr std::size_t kProducers = 4;
  constexpr int kPerProducer = 64;
  common::NotifyQueue<int> q(kProducers * kPerProducer);
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(q.push(static_cast<int>(p) * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  std::vector<int> last(kProducers, -1);
  std::size_t popped = 0;
  while (auto item = q.pop(0)) {
    const auto p = static_cast<std::size_t>(*item) / kPerProducer;
    EXPECT_LT(last[p], *item % kPerProducer);
    last[p] = *item % kPerProducer;
    ++popped;
  }
  EXPECT_EQ(popped, kProducers * kPerProducer);
  EXPECT_FALSE(q.lagged());
}

}  // namespace
}  // namespace mrsky
