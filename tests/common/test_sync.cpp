// common::Semaphore / SlotGuard — the admission-control primitives under the
// skyline server. The concurrency test is the one that matters under TSan:
// the slot count must never be oversubscribed.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/sync.hpp"

namespace mrsky {
namespace {

TEST(Semaphore, TryAcquireExhaustsExactly) {
  common::Semaphore sem(2);
  EXPECT_EQ(sem.available(), 2u);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());  // never spurious: 0 left means false
  EXPECT_EQ(sem.available(), 0u);
  sem.release();
  EXPECT_EQ(sem.available(), 1u);
  EXPECT_TRUE(sem.try_acquire());
}

TEST(Semaphore, AcquireBlocksUntilRelease) {
  common::Semaphore sem(0);
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    sem.acquire();
    acquired.store(true);
  });
  EXPECT_FALSE(acquired.load());
  sem.release();
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(SlotGuard, ReleasesOnDestructionOnlyWhenHeld) {
  common::Semaphore sem(1);
  {
    common::SlotGuard held(sem);
    EXPECT_TRUE(static_cast<bool>(held));
    EXPECT_EQ(sem.available(), 0u);
    common::SlotGuard rejected(sem);
    EXPECT_FALSE(static_cast<bool>(rejected));
  }  // `held` releases; `rejected` must not double-release
  EXPECT_EQ(sem.available(), 1u);
}

TEST(SlotGuard, MoveTransfersOwnership) {
  common::Semaphore sem(1);
  common::SlotGuard first(sem);
  EXPECT_TRUE(static_cast<bool>(first));
  common::SlotGuard second(std::move(first));
  EXPECT_TRUE(static_cast<bool>(second));
  EXPECT_FALSE(static_cast<bool>(first));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(sem.available(), 0u);
}

TEST(Semaphore, NeverOversubscribesUnderContention) {
  constexpr std::size_t kSlots = 3;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRounds = 400;
  common::Semaphore sem(kSlots);
  std::atomic<int> inside{0};
  std::atomic<bool> oversubscribed{false};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < kRounds; ++i) {
        if (common::SlotGuard slot{sem}; slot) {
          if (inside.fetch_add(1) + 1 > static_cast<int>(kSlots)) {
            oversubscribed.store(true);
          }
          inside.fetch_sub(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(oversubscribed.load());
  EXPECT_EQ(sem.available(), kSlots);
}

}  // namespace
}  // namespace mrsky
