#include "src/common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "src/common/error.hpp"

namespace mrsky::common {
namespace {

TEST(Table, RequiresAtLeastOneColumn) {
  EXPECT_THROW(Table({}), InvalidArgument);
}

TEST(Table, RejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Table, CountsRowsAndColumns) {
  Table t({"a", "b", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"4", "5", "6"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 3u);
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "v"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os, "demo");
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header separator row present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(Table, PrintWithoutTitleOmitsBanner) {
  Table t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str().find("=="), std::string::npos);
}

TEST(Table, CsvRoundtripShape) {
  Table t({"a", "b"});
  t.add_row({"1", "x"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,x\n");
}

TEST(Table, FormatDoubleRespectsPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(3.0, 0), "3");
}

TEST(Table, FormatIntegers) {
  EXPECT_EQ(Table::fmt(std::size_t{42}), "42");
  EXPECT_EQ(Table::fmt(-7), "-7");
}

TEST(Table, DataAccessorExposesRows) {
  Table t({"a"});
  t.add_row({"z"});
  ASSERT_EQ(t.data().size(), 1u);
  EXPECT_EQ(t.data()[0][0], "z");
}

}  // namespace
}  // namespace mrsky::common
