#include "src/common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/common/stats.hpp"

namespace mrsky::common {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, CopyForksTheStream) {
  Rng a(7);
  (void)a();
  Rng b = a;  // copy carries the state
  EXPECT_EQ(a(), b());
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformMeanIsCentred) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexZeroIsZero) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_index(0), 0u);
}

TEST(Rng, UniformIndexOneIsZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, NormalHasUnitVariance) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalScalesMeanAndStddev) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.exponential(2.0));
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split(1);
  Rng parent2(23);
  Rng child2 = parent2.split(1);
  // Same derivation path => same child stream.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child(), child2());
}

TEST(Rng, SplitWithDifferentSaltsDiverges) {
  Rng parent(23);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace mrsky::common
