// common::JsonValue — the recursive-descent parser behind the server's JSON
// query form. Grammar coverage, escape handling, and the strictness that
// keeps malformed client requests from turning into silent misparses.
#include <gtest/gtest.h>

#include <string>

#include "src/common/error.hpp"
#include "src/common/json.hpp"

namespace mrsky {
namespace {

using common::JsonValue;

TEST(JsonValue, ParsesLiterals) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse(" false ").as_bool());
}

TEST(JsonValue, ParsesNumbers) {
  EXPECT_DOUBLE_EQ(JsonValue::parse("0").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-12").as_number(), -12.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("3.25").as_number(), 3.25);
  EXPECT_DOUBLE_EQ(JsonValue::parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-2.5E-2").as_number(), -0.025);
  // %.17g output round-trips bitwise through the parser — the property the
  // wire protocol's bitwise guarantee rests on.
  const double value = 0.1 + 0.2;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  EXPECT_EQ(JsonValue::parse(buf).as_number(), value);
}

TEST(JsonValue, RejectsNonJsonNumberSpellings) {
  EXPECT_THROW((void)JsonValue::parse("01"), InvalidArgument);
  EXPECT_THROW((void)JsonValue::parse("+1"), InvalidArgument);
  EXPECT_THROW((void)JsonValue::parse("1."), InvalidArgument);
  EXPECT_THROW((void)JsonValue::parse(".5"), InvalidArgument);
  EXPECT_THROW((void)JsonValue::parse("nan"), InvalidArgument);
  EXPECT_THROW((void)JsonValue::parse("inf"), InvalidArgument);
}

TEST(JsonValue, ParsesStringsWithEscapes) {
  EXPECT_EQ(JsonValue::parse(R"("plain")").as_string(), "plain");
  EXPECT_EQ(JsonValue::parse(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(JsonValue::parse(R"("Aé")").as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600 as UTF-8.
  EXPECT_EQ(JsonValue::parse(R"("😀")").as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonValue, RejectsBadStrings) {
  EXPECT_THROW((void)JsonValue::parse(R"("unterminated)"), InvalidArgument);
  EXPECT_THROW((void)JsonValue::parse(R"("bad \q escape")"), InvalidArgument);
  EXPECT_THROW((void)JsonValue::parse(R"("\ud83d")"), InvalidArgument);  // lone surrogate
  EXPECT_THROW((void)JsonValue::parse("\"ctrl \x01 byte\""), InvalidArgument);
}

TEST(JsonValue, ParsesArraysAndObjects) {
  const JsonValue doc = JsonValue::parse(R"({"query":"skyband","k":3,"w":[0.5,0.5],"deep":{"x":null}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("query")->as_string(), "skyband");
  EXPECT_DOUBLE_EQ(doc.find("k")->as_number(), 3.0);
  const auto& w = doc.find("w")->as_array();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0].as_number(), 0.5);
  EXPECT_TRUE(doc.find("deep")->find("x")->is_null());
  EXPECT_EQ(doc.find("missing"), nullptr);

  EXPECT_TRUE(JsonValue::parse("[]").as_array().empty());
  EXPECT_TRUE(JsonValue::parse("{}").as_object().empty());
}

TEST(JsonValue, RejectsMalformedStructure) {
  EXPECT_THROW((void)JsonValue::parse(""), InvalidArgument);
  EXPECT_THROW((void)JsonValue::parse("[1,2"), InvalidArgument);
  EXPECT_THROW((void)JsonValue::parse("[1,]"), InvalidArgument);
  EXPECT_THROW((void)JsonValue::parse("{\"a\":}"), InvalidArgument);
  EXPECT_THROW((void)JsonValue::parse("{\"a\" 1}"), InvalidArgument);
  EXPECT_THROW((void)JsonValue::parse("{a:1}"), InvalidArgument);
  EXPECT_THROW((void)JsonValue::parse("[1] trailing"), InvalidArgument);
}

TEST(JsonValue, ErrorsCarryByteOffset) {
  try {
    (void)JsonValue::parse("[1, oops]");
    FAIL() << "parse accepted malformed input";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("byte 4"), std::string::npos) << e.what();
  }
}

TEST(JsonValue, BoundsNestingDepth) {
  // 64 levels are fine; 65 must be rejected rather than risk stack overflow
  // on hostile input.
  std::string ok(64, '['), bad(65, '[');
  ok += "1";
  bad += "1";
  for (int i = 0; i < 64; ++i) ok += ']';
  for (int i = 0; i < 65; ++i) bad += ']';
  EXPECT_NO_THROW((void)JsonValue::parse(ok));
  EXPECT_THROW((void)JsonValue::parse(bad), InvalidArgument);
}

TEST(JsonValue, CheckedAccessorsThrowOnKindMismatch) {
  const JsonValue number = JsonValue::parse("42");
  EXPECT_THROW((void)number.as_string(), InvalidArgument);
  EXPECT_THROW((void)number.as_array(), InvalidArgument);
  EXPECT_THROW((void)number.as_object(), InvalidArgument);
  EXPECT_THROW((void)number.as_bool(), InvalidArgument);
  EXPECT_DOUBLE_EQ(number.as_number(), 42.0);
}

TEST(JsonValue, EscapeAndParseRoundTrip) {
  const std::string hostile = "quote\" slash\\ newline\n tab\t bell\x07 text";
  const JsonValue parsed = JsonValue::parse('"' + common::json_escape(hostile) + '"');
  EXPECT_EQ(parsed.as_string(), hostile);
}

}  // namespace
}  // namespace mrsky
