#include "src/common/cli.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

namespace mrsky::common {
namespace {

CliArgs make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgs, ProgramNameCaptured) {
  EXPECT_EQ(make({}).program_name(), "prog");
}

TEST(CliArgs, StringFlag) {
  const auto args = make({"--name", "hello"});
  EXPECT_EQ(args.get_string("name", "x"), "hello");
}

TEST(CliArgs, StringFallback) {
  EXPECT_EQ(make({}).get_string("missing", "fallback"), "fallback");
}

TEST(CliArgs, EqualsSyntax) {
  const auto args = make({"--count=12"});
  EXPECT_EQ(args.get_int("count", 0), 12);
}

TEST(CliArgs, IntFlagAndFallback) {
  const auto args = make({"--n", "42"});
  EXPECT_EQ(args.get_int("n", 0), 42);
  EXPECT_EQ(args.get_int("m", 9), 9);
}

TEST(CliArgs, IntRejectsGarbage) {
  const auto args = make({"--n", "4x"});
  EXPECT_THROW(args.get_int("n", 0), InvalidArgument);
}

TEST(CliArgs, DoubleFlag) {
  const auto args = make({"--ratio", "2.5"});
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 2.5);
}

TEST(CliArgs, DoubleRejectsTrailing) {
  const auto args = make({"--ratio", "2.5abc"});
  EXPECT_THROW(args.get_double("ratio", 0.0), RuntimeError);
}

TEST(CliArgs, BareBooleanFlag) {
  const auto args = make({"--verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(CliArgs, ExplicitBooleanValues) {
  EXPECT_TRUE(make({"--x", "true"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x", "1"}).get_bool("x", false));
  EXPECT_FALSE(make({"--x", "false"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x", "0"}).get_bool("x", true));
}

TEST(CliArgs, BooleanRejectsGarbage) {
  EXPECT_THROW(make({"--x", "maybe"}).get_bool("x", false), RuntimeError);
}

TEST(CliArgs, BooleanFallback) {
  EXPECT_TRUE(make({}).get_bool("missing", true));
}

TEST(CliArgs, IntListParsesCommas) {
  const auto args = make({"--dims", "2,4,6,8,10"});
  EXPECT_EQ(args.get_int_list("dims", {}), (std::vector<std::int64_t>{2, 4, 6, 8, 10}));
}

TEST(CliArgs, IntListSingleElement) {
  const auto args = make({"--dims", "5"});
  EXPECT_EQ(args.get_int_list("dims", {}), (std::vector<std::int64_t>{5}));
}

TEST(CliArgs, IntListFallback) {
  EXPECT_EQ(make({}).get_int_list("dims", {1, 2}), (std::vector<std::int64_t>{1, 2}));
}

TEST(CliArgs, IntListRejectsEmptyElement) {
  const auto args = make({"--dims", "1,,3"});
  EXPECT_THROW(args.get_int_list("dims", {}), InvalidArgument);
}

TEST(CliArgs, RejectsPositionalArguments) {
  std::vector<const char*> argv = {"prog", "positional"};
  EXPECT_THROW(CliArgs(2, argv.data()), InvalidArgument);
}

TEST(CliArgs, HasDistinguishesPresence) {
  const auto args = make({"--a", "1"});
  EXPECT_TRUE(args.has("a"));
  EXPECT_FALSE(args.has("b"));
}

}  // namespace
}  // namespace mrsky::common
