#include <gtest/gtest.h>

#include <thread>

#include "src/common/error.hpp"
#include "src/common/timer.hpp"

namespace mrsky::common {
namespace {

TEST(Timer, ElapsedIsNonNegativeAndMonotone) {
  Timer timer;
  const auto a = timer.elapsed_ns();
  const auto b = timer.elapsed_ns();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

TEST(Timer, MeasuresSleeps) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.elapsed_ms(), 15.0);
  EXPECT_LT(timer.elapsed_seconds(), 5.0);  // sanity upper bound
}

TEST(Timer, RestartResets) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  timer.restart();
  EXPECT_LT(timer.elapsed_ms(), 10.0);
}

TEST(Timer, UnitConversionsAgree) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double ns = static_cast<double>(timer.elapsed_ns());
  const double ms = timer.elapsed_ms();
  EXPECT_NEAR(ms, ns * 1e-6, ns * 1e-6 * 0.5 + 1.0);
}

TEST(ErrorMacros, RequirePassesOnTrue) {
  EXPECT_NO_THROW(MRSKY_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(ErrorMacros, RequireThrowsWithContext) {
  try {
    MRSKY_REQUIRE(false, "the message");
    FAIL() << "should have thrown";
  } catch (const mrsky::InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("test_timer_error.cpp"), std::string::npos);  // source location
    EXPECT_NE(what.find("false"), std::string::npos);                 // the expression
  }
}

TEST(ErrorMacros, FailThrowsRuntimeError) {
  try {
    MRSKY_FAIL("boom");
    FAIL() << "should have thrown";
  } catch (const mrsky::RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(ErrorMacros, ExceptionsAreStandardDerived) {
  // Library exceptions must be catchable as std::exception at API borders.
  try {
    MRSKY_FAIL("generic");
  } catch (const std::exception& e) {
    SUCCEED();
    return;
  }
  FAIL();
}

}  // namespace
}  // namespace mrsky::common
