#include "src/partition/angular_radial.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/dataset/generators.hpp"
#include "src/partition/angular.hpp"
#include "src/partition/stats.hpp"

namespace mrsky::part {
namespace {

using data::PointSet;

PointSet cloud(std::size_t n, std::size_t dim, std::uint64_t seed) {
  return data::generate(data::Distribution::kIndependent, n, dim, seed);
}

TEST(AngularRadialPartitioner, PartitionCountIsSectorsTimesBands) {
  AngularRadialPartitioner p(8, 2);
  p.fit(cloud(500, 2, 1));
  EXPECT_EQ(p.sectors(), 4u);
  EXPECT_EQ(p.radial_bands(), 2u);
  EXPECT_EQ(p.num_partitions(), 8u);
}

TEST(AngularRadialPartitioner, RejectsIndivisibleCounts) {
  EXPECT_THROW(AngularRadialPartitioner(7, 2), mrsky::InvalidArgument);
  EXPECT_THROW(AngularRadialPartitioner(8, 0), mrsky::InvalidArgument);
}

TEST(AngularRadialPartitioner, AssignBeforeFitThrows) {
  AngularRadialPartitioner p(4, 2);
  const std::vector<double> point = {0.5, 0.5};
  EXPECT_THROW((void)p.assign(point), mrsky::RuntimeError);
}

TEST(AngularRadialPartitioner, AssignmentsInRange) {
  AngularRadialPartitioner p(12, 3);
  const PointSet ps = cloud(2000, 4, 3);
  p.fit(ps);
  for (std::size_t i = 0; i < ps.size(); ++i) EXPECT_LT(p.assign(ps.point(i)), 12u);
}

TEST(AngularRadialPartitioner, SameDirectionDifferentRadiusSplits) {
  AngularRadialPartitioner p(8, 2);
  const PointSet ps = cloud(2000, 2, 5);
  p.fit(ps);
  // Two points along the same ray: near-origin and far. Same sector, but
  // the radius bands must separate them (the boundary sits at the median
  // in-sector radius, and these are extreme).
  const std::vector<double> near = {0.02, 0.02};
  const std::vector<double> far = {0.98, 0.98};
  const std::size_t p_near = p.assign(near);
  const std::size_t p_far = p.assign(far);
  EXPECT_NE(p_near, p_far);
  EXPECT_EQ(p_near / p.radial_bands(), p_far / p.radial_bands());  // same sector
}

TEST(AngularRadialPartitioner, ImprovesBalanceOverPureAngular) {
  // A direction-clumped cloud: pure angular piles everything in one sector;
  // radius bands split that pile.
  PointSet clumped(2);
  common::Rng rng(7);
  for (int i = 0; i < 4000; ++i) {
    const double r = rng.uniform(0.05, 1.0);
    const double jitter = rng.uniform(-0.02, 0.02);
    clumped.push_back(std::vector<double>{r, r * (0.5 + jitter)});
  }
  AngularPartitioner pure(8);
  AngularRadialPartitioner banded(8, 4);
  pure.fit(clumped);
  banded.fit(clumped);
  const auto report_pure = analyze_partitioning(pure, clumped);
  const auto report_banded = analyze_partitioning(banded, clumped);
  EXPECT_LT(report_banded.largest, report_pure.largest);
}

TEST(AngularRadialPartitioner, BandBoundariesAscend) {
  AngularRadialPartitioner p(8, 4);  // 2 sectors x 4 bands
  p.fit(cloud(3000, 2, 9));
  for (std::size_t s = 0; s < p.sectors(); ++s) {
    const auto& bounds = p.radius_boundaries(s);
    ASSERT_EQ(bounds.size(), 3u);
    EXPECT_LE(bounds[0], bounds[1]);
    EXPECT_LE(bounds[1], bounds[2]);
  }
}

TEST(AngularRadialPartitioner, SingleBandEqualsPureAngular) {
  AngularRadialPartitioner banded(8, 1);
  AngularPartitioner pure(8);
  const PointSet ps = cloud(1000, 3, 11);
  banded.fit(ps);
  pure.fit(ps);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_EQ(banded.assign(ps.point(i)), pure.assign(ps.point(i)));
  }
}

TEST(AngularRadialPartitioner, BoundaryAccessorRangeChecked) {
  AngularRadialPartitioner p(4, 2);
  p.fit(cloud(100, 2, 13));
  EXPECT_THROW((void)p.radius_boundaries(99), mrsky::InvalidArgument);
}

TEST(AngularRadialPartitioner, Name) {
  EXPECT_EQ(AngularRadialPartitioner(4, 2).name(), "angular-radial");
}

}  // namespace
}  // namespace mrsky::part
