#include "src/partition/stats.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

#include <numeric>

#include "src/dataset/generators.hpp"
#include "src/partition/angular.hpp"
#include "src/partition/dimensional.hpp"
#include "src/partition/factory.hpp"
#include "src/partition/grid.hpp"

namespace mrsky::part {
namespace {

using data::PointSet;

TEST(PartitionStats, SizesSumToPointCount) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 1234, 3, 5);
  DimensionalPartitioner p(8);
  p.fit(ps);
  const auto report = analyze_partitioning(p, ps);
  EXPECT_EQ(std::accumulate(report.sizes.begin(), report.sizes.end(), std::size_t{0}), 1234u);
}

TEST(PartitionStats, LargestIsMaxOfSizes) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 500, 2, 5);
  AngularPartitioner p(4);
  p.fit(ps);
  const auto report = analyze_partitioning(p, ps);
  EXPECT_EQ(report.largest, *std::max_element(report.sizes.begin(), report.sizes.end()));
}

TEST(PartitionStats, PrunedPointsCountsGridVictims) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 2000, 2, 3);
  GridPartitioner p(16);
  p.fit(ps);
  const auto report = analyze_partitioning(p, ps);
  ASSERT_FALSE(report.prunable.empty());
  std::size_t expected = 0;
  for (std::size_t c : report.prunable) expected += report.sizes[c];
  EXPECT_EQ(report.pruned_points, expected);
  EXPECT_GT(report.pruned_points, 0u);
}

TEST(PartitionStats, BalancedAssignmentHasLowCv) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 8000, 2, 7);
  AngularPartitioner p(4);
  p.fit(ps);
  const auto report = analyze_partitioning(p, ps);
  EXPECT_LT(report.balance_cv, 1.0);
}

TEST(SplitByPartition, PartitionsAreDisjointAndComplete) {
  const PointSet ps = data::generate(data::Distribution::kClustered, 600, 3, 11);
  GridPartitioner p(8);
  p.fit(ps);
  const auto parts = split_by_partition(p, ps);
  ASSERT_EQ(parts.size(), 8u);
  std::size_t total = 0;
  std::vector<bool> seen(ps.size(), false);
  for (const auto& part : parts) {
    total += part.size();
    for (data::PointId id : part.ids()) {
      EXPECT_FALSE(seen[id]) << "point " << id << " appears in two partitions";
      seen[id] = true;
    }
  }
  EXPECT_EQ(total, ps.size());
}

TEST(SplitByPartition, RespectsAssignment) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 300, 2, 13);
  DimensionalPartitioner p(4);
  p.fit(ps);
  const auto parts = split_by_partition(p, ps);
  for (std::size_t c = 0; c < parts.size(); ++c) {
    for (std::size_t i = 0; i < parts[c].size(); ++i) {
      EXPECT_EQ(p.assign(parts[c].point(i)), c);
    }
  }
}

TEST(Factory, CreatesEveryScheme) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 100, 3, 17);
  for (Scheme s : {Scheme::kDimensional, Scheme::kGrid, Scheme::kAngular,
                   Scheme::kAngularEquiDepth, Scheme::kAngularRadial, Scheme::kPivot, Scheme::kRandom}) {
    PartitionerOptions options;
    options.num_partitions = 6;
    auto p = make_partitioner(s, options);
    ASSERT_NE(p, nullptr);
    p->fit(ps);
    EXPECT_EQ(p->num_partitions(), 6u) << to_string(s);
    EXPECT_LT(p->assign(ps.point(0)), 6u);
  }
}

TEST(Factory, ParseRoundTrips) {
  for (Scheme s : {Scheme::kDimensional, Scheme::kGrid, Scheme::kAngular,
                   Scheme::kAngularEquiDepth, Scheme::kAngularRadial, Scheme::kPivot, Scheme::kRandom}) {
    EXPECT_EQ(parse_scheme(to_string(s)), s);
  }
}

TEST(Factory, ParseAliases) {
  EXPECT_EQ(parse_scheme("mr-dim"), Scheme::kDimensional);
  EXPECT_EQ(parse_scheme("mr-grid"), Scheme::kGrid);
  EXPECT_EQ(parse_scheme("mr-angle"), Scheme::kAngular);
  EXPECT_EQ(parse_scheme("hash"), Scheme::kRandom);
}

TEST(Factory, ParseRejectsUnknown) {
  EXPECT_THROW(parse_scheme("kd-tree"), mrsky::RuntimeError);
}

TEST(Factory, SplitDimPassedThrough) {
  PartitionerOptions options;
  options.num_partitions = 2;
  options.split_dim = 1;
  auto p = make_partitioner(Scheme::kDimensional, options);
  const PointSet ps(2, {0.0, 0.0, 0.0, 1.0});
  p->fit(ps);
  EXPECT_EQ(p->assign(std::vector<double>{0.0, 0.9}), 1u);
}

}  // namespace
}  // namespace mrsky::part
