#include "src/partition/stats.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

#include <numeric>

#include "src/dataset/generators.hpp"
#include "src/partition/angular.hpp"
#include "src/partition/dimensional.hpp"
#include "src/partition/factory.hpp"
#include "src/partition/grid.hpp"

namespace mrsky::part {
namespace {

using data::PointSet;

TEST(PartitionStats, SizesSumToPointCount) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 1234, 3, 5);
  DimensionalPartitioner p(8);
  p.fit(ps);
  const auto report = analyze_partitioning(p, ps);
  EXPECT_EQ(std::accumulate(report.sizes.begin(), report.sizes.end(), std::size_t{0}), 1234u);
}

TEST(PartitionStats, LargestIsMaxOfSizes) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 500, 2, 5);
  AngularPartitioner p(4);
  p.fit(ps);
  const auto report = analyze_partitioning(p, ps);
  EXPECT_EQ(report.largest, *std::max_element(report.sizes.begin(), report.sizes.end()));
}

TEST(PartitionStats, PrunedPointsCountsGridVictims) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 2000, 2, 3);
  GridPartitioner p(16);
  p.fit(ps);
  const auto report = analyze_partitioning(p, ps);
  ASSERT_FALSE(report.prunable.empty());
  std::size_t expected = 0;
  for (std::size_t c : report.prunable) expected += report.sizes[c];
  EXPECT_EQ(report.pruned_points, expected);
  EXPECT_GT(report.pruned_points, 0u);
}

TEST(PartitionStats, BalancedAssignmentHasLowCv) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 8000, 2, 7);
  AngularPartitioner p(4);
  p.fit(ps);
  const auto report = analyze_partitioning(p, ps);
  EXPECT_LT(report.balance_cv, 1.0);
}

TEST(PartitionStats, EmptyDatasetYieldsZeroedReport) {
  // Fitted on real data, analyzed over an empty set of the same dim: every
  // aggregate must be zero and the CV must be 0 (not NaN).
  const PointSet fit_on = data::generate(data::Distribution::kIndependent, 400, 3, 19);
  DimensionalPartitioner p(4);
  p.fit(fit_on);
  const PointSet empty(fit_on.dim());
  const auto report = analyze_partitioning(p, empty);
  ASSERT_EQ(report.sizes.size(), 4u);
  for (std::size_t s : report.sizes) EXPECT_EQ(s, 0u);
  EXPECT_EQ(report.non_empty, 0u);
  EXPECT_EQ(report.largest, 0u);
  EXPECT_EQ(report.pruned_points, 0u);
  EXPECT_EQ(report.balance_cv, 0.0);
}

TEST(PartitionStats, SinglePartitionIsPerfectlyBalanced) {
  const PointSet ps = data::generate(data::Distribution::kAnticorrelated, 700, 3, 23);
  AngularPartitioner p(1);
  p.fit(ps);
  const auto report = analyze_partitioning(p, ps);
  ASSERT_EQ(report.sizes.size(), 1u);
  EXPECT_EQ(report.sizes[0], ps.size());
  EXPECT_EQ(report.non_empty, 1u);
  EXPECT_EQ(report.largest, ps.size());
  EXPECT_EQ(report.balance_cv, 0.0);
}

TEST(PartitionStats, AllPointsInOnePartitionShowsImbalance) {
  // Identical points collapse every dimensional split boundary: the whole
  // dataset lands in one of the 4 partitions and the CV reflects it.
  PointSet ps(3);
  const std::vector<double> coords{0.5, 0.5, 0.5};
  for (data::PointId id = 0; id < 120; ++id) ps.push_back(coords, id);
  DimensionalPartitioner p(4);
  p.fit(ps);
  const auto report = analyze_partitioning(p, ps);
  EXPECT_EQ(report.non_empty, 1u);
  EXPECT_EQ(report.largest, ps.size());
  // sizes = {120, 0, 0, 0} up to position: mean 30, stddev 30*sqrt(3).
  EXPECT_GT(report.balance_cv, 1.0);
}

TEST(SplitByPartition, EmptyDatasetGivesAllEmptyParts) {
  const PointSet fit_on = data::generate(data::Distribution::kIndependent, 200, 2, 29);
  GridPartitioner p(8);
  p.fit(fit_on);
  const auto parts = split_by_partition(p, PointSet(fit_on.dim()));
  ASSERT_EQ(parts.size(), 8u);
  for (const auto& part : parts) EXPECT_TRUE(part.empty());
}

TEST(SplitByPartition, PartitionsAreDisjointAndComplete) {
  const PointSet ps = data::generate(data::Distribution::kClustered, 600, 3, 11);
  GridPartitioner p(8);
  p.fit(ps);
  const auto parts = split_by_partition(p, ps);
  ASSERT_EQ(parts.size(), 8u);
  std::size_t total = 0;
  std::vector<bool> seen(ps.size(), false);
  for (const auto& part : parts) {
    total += part.size();
    for (data::PointId id : part.ids()) {
      EXPECT_FALSE(seen[id]) << "point " << id << " appears in two partitions";
      seen[id] = true;
    }
  }
  EXPECT_EQ(total, ps.size());
}

TEST(SplitByPartition, RespectsAssignment) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 300, 2, 13);
  DimensionalPartitioner p(4);
  p.fit(ps);
  const auto parts = split_by_partition(p, ps);
  for (std::size_t c = 0; c < parts.size(); ++c) {
    for (std::size_t i = 0; i < parts[c].size(); ++i) {
      EXPECT_EQ(p.assign(parts[c].point(i)), c);
    }
  }
}

TEST(Factory, CreatesEveryScheme) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 100, 3, 17);
  for (Scheme s : {Scheme::kDimensional, Scheme::kGrid, Scheme::kAngular,
                   Scheme::kAngularEquiDepth, Scheme::kAngularRadial, Scheme::kPivot, Scheme::kRandom}) {
    PartitionerOptions options;
    options.num_partitions = 6;
    auto p = make_partitioner(s, options);
    ASSERT_NE(p, nullptr);
    p->fit(ps);
    EXPECT_EQ(p->num_partitions(), 6u) << to_string(s);
    EXPECT_LT(p->assign(ps.point(0)), 6u);
  }
}

TEST(Factory, ParseRoundTrips) {
  for (Scheme s : {Scheme::kDimensional, Scheme::kGrid, Scheme::kAngular,
                   Scheme::kAngularEquiDepth, Scheme::kAngularRadial, Scheme::kPivot, Scheme::kRandom}) {
    EXPECT_EQ(parse_scheme(to_string(s)), s);
  }
}

TEST(Factory, ParseAliases) {
  EXPECT_EQ(parse_scheme("mr-dim"), Scheme::kDimensional);
  EXPECT_EQ(parse_scheme("mr-grid"), Scheme::kGrid);
  EXPECT_EQ(parse_scheme("mr-angle"), Scheme::kAngular);
  EXPECT_EQ(parse_scheme("hash"), Scheme::kRandom);
}

TEST(Factory, ParseRejectsUnknown) {
  EXPECT_THROW(parse_scheme("kd-tree"), mrsky::RuntimeError);
}

TEST(Factory, SplitDimPassedThrough) {
  PartitionerOptions options;
  options.num_partitions = 2;
  options.split_dim = 1;
  auto p = make_partitioner(Scheme::kDimensional, options);
  const PointSet ps(2, {0.0, 0.0, 0.0, 1.0});
  p->fit(ps);
  EXPECT_EQ(p->assign(std::vector<double>{0.0, 0.9}), 1u);
}

}  // namespace
}  // namespace mrsky::part
