#include "src/partition/pivot.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/dataset/generators.hpp"
#include "src/partition/stats.hpp"

namespace mrsky::part {
namespace {

using data::PointSet;

TEST(PivotPartitioner, PivotsAreDataPoints) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 300, 3, 1);
  PivotPartitioner p(6);
  p.fit(ps);
  ASSERT_EQ(p.pivots().size(), 6u);
  for (std::size_t k = 0; k < p.pivots().size(); ++k) {
    bool found = false;
    for (std::size_t i = 0; i < ps.size() && !found; ++i) {
      found = std::equal(ps.point(i).begin(), ps.point(i).end(), p.pivots().point(k).begin());
    }
    EXPECT_TRUE(found) << "pivot " << k << " is not a data point";
  }
}

TEST(PivotPartitioner, PointsAssignToNearestPivot) {
  const PointSet ps = data::generate(data::Distribution::kClustered, 400, 2, 3);
  PivotPartitioner p(5);
  p.fit(ps);
  const auto& pivots = p.pivots();
  for (std::size_t i = 0; i < 50; ++i) {
    const auto point = ps.point(i);
    const std::size_t assigned = p.assign(point);
    double assigned_dist = 0.0;
    for (std::size_t k = 0; k < point.size(); ++k) {
      const double d = point[k] - pivots.at(assigned, k);
      assigned_dist += d * d;
    }
    for (std::size_t c = 0; c < pivots.size(); ++c) {
      double d2 = 0.0;
      for (std::size_t k = 0; k < point.size(); ++k) {
        const double d = point[k] - pivots.at(c, k);
        d2 += d * d;
      }
      EXPECT_GE(d2 + 1e-12, assigned_dist);
    }
  }
}

TEST(PivotPartitioner, EveryPivotOwnsItself) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 200, 3, 5);
  PivotPartitioner p(8);
  p.fit(ps);
  // Farthest-point pivots are distinct here, so pivot k is its own nearest.
  for (std::size_t k = 0; k < p.pivots().size(); ++k) {
    EXPECT_EQ(p.assign(p.pivots().point(k)), k);
  }
}

TEST(PivotPartitioner, ClusteredDataGetsBalancedCells) {
  // 4 tight clusters, 4 pivots: farthest-point selection lands one pivot per
  // cluster and the assignment is near-perfectly balanced.
  data::GeneratorOptions options;
  options.cluster_count = 4;
  options.cluster_spread = 0.01;
  const PointSet ps =
      data::generate(data::Distribution::kClustered, 2000, 2, 7, options);
  PivotPartitioner p(4);
  p.fit(ps);
  const auto report = analyze_partitioning(p, ps);
  EXPECT_EQ(report.non_empty, 4u);
  EXPECT_LT(report.balance_cv, 0.5);
}

TEST(PivotPartitioner, FewerDistinctPointsThanPivots) {
  PointSet ps(2, {1.0, 1.0, 1.0, 1.0});  // two identical points
  PivotPartitioner p(4);
  p.fit(ps);
  EXPECT_EQ(p.assign(std::vector<double>{1.0, 1.0}), 0u);  // ties -> lowest index
}

TEST(PivotPartitioner, SeedChangesPivotChoice) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 500, 3, 9);
  PivotPartitioner a(8, 1);
  PivotPartitioner b(8, 2);
  a.fit(ps);
  b.fit(ps);
  bool any_diff = false;
  for (std::size_t k = 0; k < 8 && !any_diff; ++k) {
    any_diff = !std::equal(a.pivots().point(k).begin(), a.pivots().point(k).end(),
                           b.pivots().point(k).begin());
  }
  EXPECT_TRUE(any_diff);
}

TEST(PivotPartitioner, AccessorsBeforeFitThrow) {
  PivotPartitioner p(4);
  EXPECT_THROW((void)p.pivots(), mrsky::RuntimeError);
}

}  // namespace
}  // namespace mrsky::part
