#include "src/partition/grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/error.hpp"
#include "src/dataset/generators.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/verify.hpp"

namespace mrsky::part {
namespace {

using data::PointSet;

PointSet unit_square_corners() {
  // One point per quadrant of [0,1]²; fixes the fitted bounds.
  return PointSet(2, {
                         0.1, 0.1,  // bottom-left
                         0.9, 0.1,  // bottom-right
                         0.1, 0.9,  // top-left
                         0.9, 0.9,  // top-right
                         0.0, 0.0,  // pins min corner
                         1.0, 1.0,  // pins max corner
                     });
}

TEST(GridPartitioner, FourCellsIn2D) {
  GridPartitioner p(4);
  p.fit(unit_square_corners());
  EXPECT_EQ(p.shape(), (std::vector<std::size_t>{2, 2}));
  EXPECT_EQ(p.num_partitions(), 4u);
}

TEST(GridPartitioner, QuadrantAssignments) {
  GridPartitioner p(4);
  p.fit(unit_square_corners());
  const std::size_t bl = p.assign(std::vector<double>{0.1, 0.1});
  const std::size_t br = p.assign(std::vector<double>{0.9, 0.1});
  const std::size_t tl = p.assign(std::vector<double>{0.1, 0.9});
  const std::size_t tr = p.assign(std::vector<double>{0.9, 0.9});
  // All four quadrants are distinct cells.
  std::vector<std::size_t> cells = {bl, br, tl, tr};
  std::sort(cells.begin(), cells.end());
  EXPECT_EQ(cells, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(GridPartitioner, PaperExamplePrunesTopRightCell) {
  // §III-B: with 4 cells and all quadrants occupied, the bottom-left cell
  // dominates the top-right cell, so exactly that one is prunable.
  GridPartitioner p(4);
  p.fit(unit_square_corners());
  const std::size_t tr = p.assign(std::vector<double>{0.9, 0.9});
  const auto prunable = p.prunable_partitions();
  ASSERT_EQ(prunable.size(), 1u);
  EXPECT_EQ(prunable[0], tr);
}

TEST(GridPartitioner, NoPruningWhenDominatingCellEmpty) {
  // Bounds span [0,1]² but the bottom-left cell is EMPTY (the extreme values
  // come from different points), so the top-right cell has no dominator:
  // neither top-left nor bottom-right dominates it in both dimensions.
  PointSet ps(2, {
                     0.9, 0.0,  // bottom-right (pins y-min)
                     0.0, 0.9,  // top-left (pins x-min)
                     1.0, 1.0,  // top-right (pins both maxima)
                 });
  GridPartitioner p(4);
  p.fit(ps);
  EXPECT_TRUE(p.prunable_partitions().empty());
}

TEST(GridPartitioner, PruningIsSafeForSkylineCorrectness) {
  // Dropping every prunable cell's points must not change the skyline.
  const PointSet ps = data::generate(data::Distribution::kIndependent, 2000, 2, 99);
  GridPartitioner p(16);
  p.fit(ps);
  const auto prunable = p.prunable_partitions();
  ASSERT_FALSE(prunable.empty());  // independent 2-D data: some cell prunable

  PointSet kept(ps.dim());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const std::size_t cell = p.assign(ps.point(i));
    if (std::find(prunable.begin(), prunable.end(), cell) == prunable.end()) {
      kept.push_back(ps.point(i), ps.id(i));
    }
  }
  EXPECT_LT(kept.size(), ps.size());  // something was actually pruned
  EXPECT_TRUE(skyline::same_ids(skyline::bnl_skyline(ps), skyline::bnl_skyline(kept)));
}

TEST(GridPartitioner, PrunableNeverContainsMinimalCell) {
  const PointSet ps = data::generate(data::Distribution::kAnticorrelated, 1000, 3, 7);
  GridPartitioner p(8);
  p.fit(ps);
  // The cell containing the per-attribute minimum corner can never be pruned.
  const auto mins = ps.attribute_min();
  const std::size_t min_cell = p.assign(mins);
  for (std::size_t c : p.prunable_partitions()) EXPECT_NE(c, min_cell);
}

TEST(GridPartitioner, AssignBeforeFitThrows) {
  GridPartitioner p(4);
  const std::vector<double> point = {0.5, 0.5};
  EXPECT_THROW((void)p.assign(point), mrsky::RuntimeError);
}

TEST(GridPartitioner, DimensionMismatchThrows) {
  GridPartitioner p(4);
  p.fit(unit_square_corners());
  EXPECT_THROW((void)p.assign(std::vector<double>{0.5}), mrsky::InvalidArgument);
}

TEST(GridPartitioner, AllAssignmentsInRange) {
  const PointSet ps = data::generate(data::Distribution::kClustered, 3000, 5, 3);
  GridPartitioner p(12);
  p.fit(ps);
  for (std::size_t i = 0; i < ps.size(); ++i) EXPECT_LT(p.assign(ps.point(i)), 12u);
}

TEST(GridPartitioner, HighDimensionalShapeSplitsFewAxes) {
  // d=10, 16 partitions: only four axes get split (2×2×2×2), rest stay 1.
  const PointSet ps = data::generate(data::Distribution::kIndependent, 500, 10, 3);
  GridPartitioner p(16);
  p.fit(ps);
  const auto& shape = p.shape();
  EXPECT_EQ(std::count(shape.begin(), shape.end(), 2u), 4);
  EXPECT_EQ(std::count(shape.begin(), shape.end(), 1u), 6);
}

TEST(GridPartitioner, SinglePartitionDegenerate) {
  GridPartitioner p(1);
  p.fit(unit_square_corners());
  EXPECT_EQ(p.assign(std::vector<double>{0.3, 0.7}), 0u);
  EXPECT_TRUE(p.prunable_partitions().empty());
}

TEST(GridPartitioner, Name) {
  GridPartitioner p(2);
  EXPECT_EQ(p.name(), "grid");
}

}  // namespace
}  // namespace mrsky::part
