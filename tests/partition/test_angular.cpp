#include "src/partition/angular.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "src/common/error.hpp"
#include "src/dataset/generators.hpp"
#include "src/dataset/normalize.hpp"
#include "src/dataset/qws.hpp"
#include "src/partition/stats.hpp"
#include "src/skyline/algorithms.hpp"

namespace mrsky::part {
namespace {

using data::PointSet;

PointSet unit_square_cloud(std::size_t n, std::uint64_t seed) {
  // Random cloud plus two axis points pinning the fitted angle range to the
  // full [0, π/2]: the equal-width policy splits the observed range.
  PointSet ps = data::generate(data::Distribution::kIndependent, n, 2, seed);
  ps.push_back(std::vector<double>{1.0, 0.0}, static_cast<data::PointId>(n));
  ps.push_back(std::vector<double>{0.0, 1.0}, static_cast<data::PointId>(n + 1));
  return ps;
}

TEST(AngularPartitioner, TwoDSectorsByAngle) {
  AngularPartitioner p(4);
  p.fit(unit_square_cloud(100, 1));
  // Sector width is (π/2)/4; points at known angles land in known sectors.
  const double eps = 0.01;
  auto at_angle = [&](double phi) {
    return std::vector<double>{std::cos(phi), std::sin(phi)};
  };
  const double w = std::numbers::pi / 8.0;
  EXPECT_EQ(p.assign(at_angle(0.5 * w)), 0u);
  EXPECT_EQ(p.assign(at_angle(1.5 * w)), 1u);
  EXPECT_EQ(p.assign(at_angle(2.5 * w)), 2u);
  EXPECT_EQ(p.assign(at_angle(3.5 * w)), 3u);
  EXPECT_EQ(p.assign(at_angle(4.0 * w - eps)), 3u);  // near the y-axis
}

TEST(AngularPartitioner, RadiusDoesNotAffectAssignment) {
  AngularPartitioner p(8);
  p.fit(unit_square_cloud(100, 2));
  const std::vector<double> near = {0.01, 0.005};
  const std::vector<double> far = {1.0, 0.5};
  EXPECT_EQ(p.assign(near), p.assign(far));
}

TEST(AngularPartitioner, BoundaryAngleGoesToUpperSector) {
  AngularPartitioner p(2);
  p.fit(unit_square_cloud(100, 3));
  // Two sectors split at π/4; the diagonal itself belongs to sector 1.
  EXPECT_EQ(p.assign(std::vector<double>{1.0, 1.0}), 1u);
  EXPECT_EQ(p.assign(std::vector<double>{1.0, 0.999}), 0u);
}

TEST(AngularPartitioner, OriginAssignsToSectorZero) {
  AngularPartitioner p(4);
  p.fit(unit_square_cloud(100, 4));
  EXPECT_EQ(p.assign(std::vector<double>{0.0, 0.0}), 0u);
}

TEST(AngularPartitioner, OneDimensionalCollapsesToSinglePartition) {
  AngularPartitioner p(8);
  p.fit(PointSet(1, {0.1, 0.5, 0.9}));
  EXPECT_EQ(p.num_partitions(), 1u);
  EXPECT_EQ(p.assign(std::vector<double>{0.7}), 0u);
}

TEST(AngularPartitioner, HighDimensionalAssignmentsInRange) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 2000, 10, 5);
  AngularPartitioner p(16);
  p.fit(ps);
  EXPECT_EQ(p.num_partitions(), 16u);
  for (std::size_t i = 0; i < ps.size(); ++i) EXPECT_LT(p.assign(ps.point(i)), 16u);
}

TEST(AngularPartitioner, AssignBeforeFitThrows) {
  AngularPartitioner p(4);
  const std::vector<double> point = {0.5, 0.5};
  EXPECT_THROW((void)p.assign(point), mrsky::RuntimeError);
}

TEST(AngularPartitioner, DimensionMismatchThrows) {
  AngularPartitioner p(4);
  p.fit(unit_square_cloud(10, 6));
  EXPECT_THROW((void)p.assign(std::vector<double>{0.5, 0.5, 0.5}), mrsky::InvalidArgument);
}

TEST(AngularPartitioner, NegativeCoordinatesRejected) {
  AngularPartitioner p(4);
  p.fit(unit_square_cloud(10, 7));
  EXPECT_THROW((void)p.assign(std::vector<double>{-0.1, 0.5}), mrsky::InvalidArgument);
}

TEST(AngularPartitioner, EqualWidthBoundariesAreUniform) {
  AngularPartitioner p(4);
  p.fit(unit_square_cloud(100, 8));
  const auto& bounds = p.boundaries(0);
  ASSERT_EQ(bounds.size(), 3u);
  const double w = std::numbers::pi / 8.0;
  EXPECT_NEAR(bounds[0], w, 1e-12);
  EXPECT_NEAR(bounds[1], 2 * w, 1e-12);
  EXPECT_NEAR(bounds[2], 3 * w, 1e-12);
}

TEST(AngularPartitioner, EquiDepthBalancesSkewedData) {
  // Skewed cloud hugging the x-axis: equal-width sectors are lopsided,
  // equi-depth sectors stay balanced.
  data::PointSet skewed(2);
  common::Rng rng(11);
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.uniform(0.1, 1.0);
    const double y = rng.uniform(0.0, 0.1);  // tiny angles only
    skewed.push_back(std::vector<double>{x, y});
  }
  AngularPartitioner equal_width(4, AngularPolicy::kEqualWidth);
  AngularPartitioner equi_depth(4, AngularPolicy::kEquiDepth);
  equal_width.fit(skewed);
  equi_depth.fit(skewed);
  const auto rep_w = analyze_partitioning(equal_width, skewed);
  const auto rep_d = analyze_partitioning(equi_depth, skewed);
  EXPECT_GT(rep_w.balance_cv, rep_d.balance_cv);
  EXPECT_LT(rep_d.balance_cv, 0.2);
}

TEST(AngularPartitioner, EquiDepthStillCoversAllPartitions) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 4000, 3, 13);
  AngularPartitioner p(6, AngularPolicy::kEquiDepth);
  p.fit(ps);
  const auto report = analyze_partitioning(p, ps);
  EXPECT_EQ(report.non_empty, 6u);
}

TEST(AngularPartitioner, EverySectorTouchesTheSkylineRegion) {
  // The paper's key claim about angular partitioning: each sector contains
  // both near-origin (good) and far (poor) points — check that each sector's
  // points span a wide radius range on QWS-like data.
  data::QwsLikeGenerator gen(4, 17);
  const PointSet ps = data::normalize_min_max(gen.generate_oriented(4000));
  AngularPartitioner p(8);
  p.fit(ps);
  std::vector<double> min_r(8, 1e18);
  std::vector<double> max_r(8, 0.0);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const auto pt = ps.point(i);
    double r = 0.0;
    for (double v : pt) r += v * v;
    r = std::sqrt(r);
    const std::size_t s = p.assign(pt);
    min_r[s] = std::min(min_r[s], r);
    max_r[s] = std::max(max_r[s], r);
  }
  for (std::size_t s = 0; s < 8; ++s) {
    if (max_r[s] == 0.0) continue;  // empty sector
    EXPECT_GT(max_r[s] - min_r[s], 0.3) << "sector " << s << " spans too little radius";
  }
}

TEST(AngularPartitioner, NamesDistinguishPolicies) {
  EXPECT_EQ(AngularPartitioner(2, AngularPolicy::kEqualWidth).name(), "angular");
  EXPECT_EQ(AngularPartitioner(2, AngularPolicy::kEquiDepth).name(), "angular-equidepth");
}

TEST(AngularPartitioner, BoundariesIndexOutOfRangeThrows) {
  AngularPartitioner p(4);
  p.fit(unit_square_cloud(10, 19));
  EXPECT_THROW((void)p.boundaries(5), mrsky::InvalidArgument);
}

}  // namespace
}  // namespace mrsky::part
