#include "src/partition/random.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/dataset/generators.hpp"
#include "src/partition/stats.hpp"

namespace mrsky::part {
namespace {

using data::PointSet;

TEST(RandomPartitioner, AssignBeforeFitThrows) {
  RandomPartitioner p(4);
  const std::vector<double> point = {0.5};
  EXPECT_THROW((void)p.assign(point), mrsky::RuntimeError);
}

TEST(RandomPartitioner, DeterministicForSamePoint) {
  RandomPartitioner p(8);
  p.fit(PointSet(2, {0.0, 0.0}));
  const std::vector<double> point = {0.25, 0.75};
  const std::size_t first = p.assign(point);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(p.assign(point), first);
}

TEST(RandomPartitioner, SeedChangesAssignment) {
  RandomPartitioner a(64, 1);
  RandomPartitioner b(64, 2);
  const PointSet ps = data::generate(data::Distribution::kIndependent, 100, 3, 5);
  a.fit(ps);
  b.fit(ps);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    if (a.assign(ps.point(i)) != b.assign(ps.point(i))) ++differing;
  }
  EXPECT_GT(differing, 50u);
}

TEST(RandomPartitioner, AssignmentsInRange) {
  RandomPartitioner p(7);
  const PointSet ps = data::generate(data::Distribution::kClustered, 1000, 4, 9);
  p.fit(ps);
  for (std::size_t i = 0; i < ps.size(); ++i) EXPECT_LT(p.assign(ps.point(i)), 7u);
}

TEST(RandomPartitioner, LoadIsWellBalanced) {
  RandomPartitioner p(8);
  const PointSet ps = data::generate(data::Distribution::kIndependent, 8000, 3, 21);
  p.fit(ps);
  const auto report = analyze_partitioning(p, ps);
  EXPECT_EQ(report.non_empty, 8u);
  EXPECT_LT(report.balance_cv, 0.1);
}

TEST(RandomPartitioner, DuplicatePointsCollocate) {
  RandomPartitioner p(16);
  p.fit(PointSet(2, {0.0, 0.0}));
  const std::vector<double> point = {0.4, 0.6};
  const std::vector<double> copy = {0.4, 0.6};
  EXPECT_EQ(p.assign(point), p.assign(copy));
}

TEST(RandomPartitioner, RejectsZeroPartitions) {
  EXPECT_THROW(RandomPartitioner(0), mrsky::InvalidArgument);
}

TEST(RandomPartitioner, Name) {
  EXPECT_EQ(RandomPartitioner(2).name(), "random");
}

}  // namespace
}  // namespace mrsky::part
