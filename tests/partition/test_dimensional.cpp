#include "src/partition/dimensional.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/dataset/generators.hpp"

namespace mrsky::part {
namespace {

using data::PointSet;

TEST(DimensionalPartitioner, RejectsZeroPartitions) {
  EXPECT_THROW(DimensionalPartitioner(0), mrsky::InvalidArgument);
}

TEST(DimensionalPartitioner, AssignBeforeFitThrows) {
  DimensionalPartitioner p(4);
  const std::vector<double> point = {0.5, 0.5};
  EXPECT_THROW((void)p.assign(point), mrsky::RuntimeError);
}

TEST(DimensionalPartitioner, FitOnEmptyThrows) {
  DimensionalPartitioner p(4);
  EXPECT_THROW(p.fit(PointSet(2)), mrsky::InvalidArgument);
}

TEST(DimensionalPartitioner, SplitDimOutOfRangeThrows) {
  DimensionalPartitioner p(4, 5);
  EXPECT_THROW(p.fit(PointSet(2, {1.0, 2.0})), mrsky::InvalidArgument);
}

TEST(DimensionalPartitioner, EqualWidthSlabs) {
  // Values 0..1 on dim 0, 4 slabs of width 0.25.
  PointSet ps(2, {0.0, 9.0, 1.0, 9.0});  // fixes the range [0, 1]
  DimensionalPartitioner p(4);
  p.fit(ps);
  EXPECT_EQ(p.assign(std::vector<double>{0.1, 0.0}), 0u);
  EXPECT_EQ(p.assign(std::vector<double>{0.3, 0.0}), 1u);
  EXPECT_EQ(p.assign(std::vector<double>{0.6, 0.0}), 2u);
  EXPECT_EQ(p.assign(std::vector<double>{0.9, 0.0}), 3u);
}

TEST(DimensionalPartitioner, MaxValueGoesToLastSlab) {
  PointSet ps(1, {0.0, 1.0});
  DimensionalPartitioner p(4);
  p.fit(ps);
  EXPECT_EQ(p.assign(std::vector<double>{1.0}), 3u);
}

TEST(DimensionalPartitioner, BoundaryBelongsToUpperSlab) {
  PointSet ps(1, {0.0, 1.0});
  DimensionalPartitioner p(4);
  p.fit(ps);
  EXPECT_EQ(p.assign(std::vector<double>{0.25}), 1u);
  EXPECT_EQ(p.assign(std::vector<double>{0.5}), 2u);
}

TEST(DimensionalPartitioner, OutOfFittedRangeClamps) {
  PointSet ps(1, {0.0, 1.0});
  DimensionalPartitioner p(4);
  p.fit(ps);
  EXPECT_EQ(p.assign(std::vector<double>{-5.0}), 0u);
  EXPECT_EQ(p.assign(std::vector<double>{5.0}), 3u);
}

TEST(DimensionalPartitioner, ConstantAttributeAllInSlabZero) {
  PointSet ps(2, {3.0, 1.0, 3.0, 2.0});
  DimensionalPartitioner p(4);
  p.fit(ps);
  EXPECT_EQ(p.assign(std::vector<double>{3.0, 1.5}), 0u);
}

TEST(DimensionalPartitioner, HonoursSplitDim) {
  PointSet ps(2, {0.0, 0.0, 1.0, 1.0});
  DimensionalPartitioner p(2, 1);  // split on attribute 1
  p.fit(ps);
  EXPECT_EQ(p.assign(std::vector<double>{0.9, 0.1}), 0u);
  EXPECT_EQ(p.assign(std::vector<double>{0.1, 0.9}), 1u);
  EXPECT_EQ(p.split_dim(), 1u);
}

TEST(DimensionalPartitioner, AllPointsAssignedInRange) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 1000, 3, 42);
  DimensionalPartitioner p(8);
  p.fit(ps);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_LT(p.assign(ps.point(i)), 8u);
  }
}

TEST(DimensionalPartitioner, UniformDataRoughlyBalanced) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 8000, 2, 42);
  DimensionalPartitioner p(8);
  p.fit(ps);
  std::vector<std::size_t> counts(8, 0);
  for (std::size_t i = 0; i < ps.size(); ++i) counts[p.assign(ps.point(i))]++;
  for (std::size_t c : counts) {
    EXPECT_GT(c, 700u);   // ~1000 expected per slab
    EXPECT_LT(c, 1300u);
  }
}

TEST(DimensionalPartitioner, NoPruningStructure) {
  DimensionalPartitioner p(4);
  p.fit(PointSet(1, {0.0, 1.0}));
  EXPECT_TRUE(p.prunable_partitions().empty());
}

TEST(DimensionalPartitioner, NameAndCount) {
  DimensionalPartitioner p(6);
  EXPECT_EQ(p.name(), "dimensional");
  EXPECT_EQ(p.num_partitions(), 6u);
}

}  // namespace
}  // namespace mrsky::part
