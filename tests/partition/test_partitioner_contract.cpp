// The Partitioner interface contract, enforced across every scheme via one
// parameterised suite: any implementation registered in the factory must
// honour these properties, or the MapReduce pipeline built on top of it
// silently mis-routes points.
#include <gtest/gtest.h>

#include <unordered_map>

#include "src/common/error.hpp"
#include "src/dataset/generators.hpp"
#include "src/dataset/qws.hpp"
#include "src/dataset/normalize.hpp"
#include "src/partition/factory.hpp"
#include "src/partition/stats.hpp"

namespace mrsky::part {
namespace {

using data::PointSet;

class PartitionerContract : public testing::TestWithParam<Scheme> {
 protected:
  static PartitionerPtr make(std::size_t partitions) {
    PartitionerOptions options;
    options.num_partitions = partitions;
    options.radial_bands = 2;
    return make_partitioner(GetParam(), options);
  }

  static PointSet fixture(std::size_t n = 600, std::size_t dim = 4, std::uint64_t seed = 0xC0) {
    return data::generate(data::Distribution::kIndependent, n, dim, seed);
  }
};

TEST_P(PartitionerContract, AssignBeforeFitThrows) {
  auto p = make(8);
  const std::vector<double> point = {0.1, 0.2, 0.3, 0.4};
  EXPECT_THROW((void)p->assign(point), mrsky::RuntimeError);
}

TEST_P(PartitionerContract, FitOnEmptyDatasetThrows) {
  auto p = make(8);
  EXPECT_THROW(p->fit(PointSet(4)), mrsky::InvalidArgument);
}

TEST_P(PartitionerContract, EveryAssignmentInRange) {
  auto p = make(8);
  const PointSet ps = fixture();
  p->fit(ps);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_LT(p->assign(ps.point(i)), p->num_partitions());
  }
}

TEST_P(PartitionerContract, AssignIsPureAfterFit) {
  auto p = make(8);
  const PointSet ps = fixture();
  p->fit(ps);
  for (std::size_t i = 0; i < 50; ++i) {
    const std::size_t first = p->assign(ps.point(i));
    for (int repeat = 0; repeat < 3; ++repeat) EXPECT_EQ(p->assign(ps.point(i)), first);
  }
}

TEST_P(PartitionerContract, RefitIsDeterministic) {
  const PointSet ps = fixture();
  auto a = make(8);
  auto b = make(8);
  a->fit(ps);
  b->fit(ps);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_EQ(a->assign(ps.point(i)), b->assign(ps.point(i)));
  }
}

TEST_P(PartitionerContract, DuplicatePointsCollocate) {
  auto p = make(8);
  PointSet ps = fixture();
  p->fit(ps);
  for (std::size_t i = 0; i < 20; ++i) {
    const std::vector<double> copy(ps.point(i).begin(), ps.point(i).end());
    EXPECT_EQ(p->assign(copy), p->assign(ps.point(i)));
  }
}

TEST_P(PartitionerContract, SinglePartitionDegenerates) {
  // Every scheme must accept a partition count of 1 (angular-radial included:
  // 1 partition = 1 sector x 1 band requires radial_bands = 1).
  PartitionerOptions options;
  options.num_partitions = 1;
  options.radial_bands = 1;
  auto p = make_partitioner(GetParam(), options);
  const PointSet ps = fixture(100);
  p->fit(ps);
  for (std::size_t i = 0; i < ps.size(); ++i) EXPECT_EQ(p->assign(ps.point(i)), 0u);
}

TEST_P(PartitionerContract, PrunablePartitionsAreValidIds) {
  auto p = make(12);
  const PointSet ps = fixture();
  p->fit(ps);
  for (std::size_t id : p->prunable_partitions()) EXPECT_LT(id, p->num_partitions());
}

TEST_P(PartitionerContract, AssignAllMatchesPerPointAssign) {
  auto p = make(6);
  const PointSet ps = fixture(200);
  p->fit(ps);
  const auto all = p->assign_all(ps);
  ASSERT_EQ(all.size(), ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) EXPECT_EQ(all[i], p->assign(ps.point(i)));
}

TEST_P(PartitionerContract, WorksOnQwsWorkload) {
  auto p = make(8);
  data::QwsLikeGenerator gen(4, 0xD1);
  const PointSet ps = data::normalize_min_max(gen.generate_oriented(800));
  p->fit(ps);
  const auto report = analyze_partitioning(*p, ps);
  std::size_t total = 0;
  for (std::size_t s : report.sizes) total += s;
  EXPECT_EQ(total, ps.size());
  EXPECT_GE(report.non_empty, 1u);
}

TEST_P(PartitionerContract, NameIsStable) {
  auto a = make(4);
  auto b = make(4);
  EXPECT_EQ(a->name(), b->name());
  EXPECT_FALSE(a->name().empty());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PartitionerContract,
                         testing::Values(Scheme::kDimensional, Scheme::kGrid, Scheme::kAngular,
                                         Scheme::kAngularEquiDepth, Scheme::kAngularRadial, Scheme::kPivot,
                                         Scheme::kRandom),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace mrsky::part
