// service::parse_query_script — grammar coverage and the all-errors contract
// (every malformed line reported in one throw, with line numbers).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <variant>

#include "src/common/error.hpp"
#include "src/service/script.hpp"

namespace mrsky {
namespace {

std::vector<service::ScriptCommand> parse(const std::string& text) {
  std::istringstream in(text);
  return service::parse_query_script(in);
}

TEST(QueryScript, ParsesEveryVerb) {
  const auto commands = parse(
      "# a comment line\n"
      "skyline\n"
      "\n"
      "subspace 0,2,3\n"
      "skyband 3\n"
      "representative 5\n"
      "topk 10 0.25,0.25,0.5\n"
      "insert extra.csv\n");
  ASSERT_EQ(commands.size(), 6u);

  const auto& q0 = std::get<service::Query>(commands[0]);
  EXPECT_TRUE(std::holds_alternative<service::SkylineQuery>(q0));

  const auto& q1 = std::get<service::Query>(commands[1]);
  const auto& sub = std::get<service::SubspaceQuery>(q1);
  EXPECT_EQ(sub.attributes, (std::vector<std::size_t>{0, 2, 3}));

  const auto& q2 = std::get<service::Query>(commands[2]);
  EXPECT_EQ(std::get<service::KSkybandQuery>(q2).k, 3u);

  const auto& q3 = std::get<service::Query>(commands[3]);
  EXPECT_EQ(std::get<service::RepresentativeQuery>(q3).k, 5u);

  const auto& q4 = std::get<service::Query>(commands[4]);
  const auto& topk = std::get<service::TopKWeightedQuery>(q4);
  EXPECT_EQ(topk.k, 10u);
  EXPECT_EQ(topk.weights, (std::vector<double>{0.25, 0.25, 0.5}));

  EXPECT_EQ(std::get<service::InsertCommand>(commands[5]).path, "extra.csv");
}

TEST(QueryScript, EmptyAndCommentOnlyScriptsYieldNothing) {
  EXPECT_TRUE(parse("").empty());
  EXPECT_TRUE(parse("# only\n\n   \n# comments\n").empty());
}

TEST(QueryScript, CollectsEveryBadLineInOneThrow) {
  try {
    (void)parse(
        "skyline\n"
        "skyline extra-arg\n"
        "skyband\n"
        "subspace 0,x\n"
        "topk 5 0.5,oops\n"
        "warp 9\n");
    FAIL() << "parse accepted a bad script";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("5 problems"), std::string::npos) << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
    EXPECT_NE(what.find("line 5"), std::string::npos) << what;
    EXPECT_NE(what.find("line 6"), std::string::npos) << what;
    EXPECT_NE(what.find("unknown command 'warp'"), std::string::npos) << what;
  }
}

TEST(QueryScript, SingleProblemUsesSingularWording) {
  try {
    (void)parse("skyband two\n");
    FAIL() << "parse accepted a bad script";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("1 problem:"), std::string::npos) << e.what();
  }
}

TEST(QueryScript, MissingFileThrowsRuntimeError) {
  EXPECT_THROW((void)service::parse_query_script_file("/nonexistent/q.mrq"), RuntimeError);
}

// An inf/nan weight would poison every weighted score downstream (inf * 0 =
// nan), so every spelling that could produce one — "inf"/"nan" literals or an
// overflowing exponent — must be rejected with the offending line, not passed
// through.
TEST(QueryScript, RejectsNonFiniteTopkWeights) {
  try {
    (void)parse(
        "topk 3 0.5,inf\n"
        "topk 3 nan,0.5\n"
        "topk 3 0.25,-inf\n"
        "topk 3 1e999,0.5\n");
    FAIL() << "parse accepted non-finite weights";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("4 problems"), std::string::npos) << what;
    EXPECT_NE(what.find("line 1"), std::string::npos) << what;
    EXPECT_NE(what.find("weight 'inf'"), std::string::npos) << what;
    EXPECT_NE(what.find("weight 'nan'"), std::string::npos) << what;
    EXPECT_NE(what.find("weight '-inf'"), std::string::npos) << what;
    EXPECT_NE(what.find("weight '1e999'"), std::string::npos) << what;
  }
}

// Relative insert paths resolve against the script's own directory (the file
// a script names sits next to it), never against wherever the process happens
// to have been launched.
TEST(QueryScript, ResolvesRelativeInsertPathsAgainstBaseDir) {
  std::istringstream in("insert extra.csv\ninsert /abs/other.csv\n");
  const auto commands = service::parse_query_script(in, "/data/scripts");
  ASSERT_EQ(commands.size(), 2u);
  EXPECT_EQ(std::get<service::InsertCommand>(commands[0]).path, "/data/scripts/extra.csv");
  // Absolute paths are left alone.
  EXPECT_EQ(std::get<service::InsertCommand>(commands[1]).path, "/abs/other.csv");
}

TEST(QueryScript, FileParserUsesScriptDirectoryAsBase) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "mrsky_script_dir_test";
  std::filesystem::create_directories(dir);
  const std::filesystem::path script = dir / "session.mrq";
  {
    std::ofstream out(script);
    out << "insert extra.csv\n";
  }
  const auto commands = service::parse_query_script_file(script.string());
  ASSERT_EQ(commands.size(), 1u);
  EXPECT_EQ(std::get<service::InsertCommand>(commands[0]).path, (dir / "extra.csv").string());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mrsky
