// service::parse_query_script — grammar coverage and the all-errors contract
// (every malformed line reported in one throw, with line numbers).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <variant>

#include "src/common/error.hpp"
#include "src/service/script.hpp"

namespace mrsky {
namespace {

std::vector<service::ScriptCommand> parse(const std::string& text) {
  std::istringstream in(text);
  return service::parse_query_script(in);
}

TEST(QueryScript, ParsesEveryVerb) {
  const auto commands = parse(
      "# a comment line\n"
      "skyline\n"
      "\n"
      "subspace 0,2,3\n"
      "skyband 3\n"
      "representative 5\n"
      "topk 10 0.25,0.25,0.5\n"
      "insert extra.csv\n");
  ASSERT_EQ(commands.size(), 6u);

  const auto& q0 = std::get<service::Query>(commands[0]);
  EXPECT_TRUE(std::holds_alternative<service::SkylineQuery>(q0));

  const auto& q1 = std::get<service::Query>(commands[1]);
  const auto& sub = std::get<service::SubspaceQuery>(q1);
  EXPECT_EQ(sub.attributes, (std::vector<std::size_t>{0, 2, 3}));

  const auto& q2 = std::get<service::Query>(commands[2]);
  EXPECT_EQ(std::get<service::KSkybandQuery>(q2).k, 3u);

  const auto& q3 = std::get<service::Query>(commands[3]);
  EXPECT_EQ(std::get<service::RepresentativeQuery>(q3).k, 5u);

  const auto& q4 = std::get<service::Query>(commands[4]);
  const auto& topk = std::get<service::TopKWeightedQuery>(q4);
  EXPECT_EQ(topk.k, 10u);
  EXPECT_EQ(topk.weights, (std::vector<double>{0.25, 0.25, 0.5}));

  EXPECT_EQ(std::get<service::InsertCommand>(commands[5]).path, "extra.csv");
}

TEST(QueryScript, EmptyAndCommentOnlyScriptsYieldNothing) {
  EXPECT_TRUE(parse("").empty());
  EXPECT_TRUE(parse("# only\n\n   \n# comments\n").empty());
}

TEST(QueryScript, CollectsEveryBadLineInOneThrow) {
  try {
    (void)parse(
        "skyline\n"
        "skyline extra-arg\n"
        "skyband\n"
        "subspace 0,x\n"
        "topk 5 0.5,oops\n"
        "warp 9\n");
    FAIL() << "parse accepted a bad script";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("5 problems"), std::string::npos) << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
    EXPECT_NE(what.find("line 5"), std::string::npos) << what;
    EXPECT_NE(what.find("line 6"), std::string::npos) << what;
    EXPECT_NE(what.find("unknown command 'warp'"), std::string::npos) << what;
  }
}

TEST(QueryScript, SingleProblemUsesSingularWording) {
  try {
    (void)parse("skyband two\n");
    FAIL() << "parse accepted a bad script";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("1 problem:"), std::string::npos) << e.what();
  }
}

TEST(QueryScript, MissingFileThrowsRuntimeError) {
  EXPECT_THROW((void)service::parse_query_script_file("/nonexistent/q.mrq"), RuntimeError);
}

}  // namespace
}  // namespace mrsky
