// service::QueryEngine — every query kind must be bitwise identical to the
// direct computation, with and without cache hits, across insert_batch, and
// under both execution modes (ISSUE 5 acceptance).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <numeric>
#include <vector>

#include "src/core/mr_skyline.hpp"
#include "src/dataset/generators.hpp"
#include "src/dataset/transforms.hpp"
#include "src/service/query_engine.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/extensions.hpp"

namespace mrsky {
namespace {

/// The engine's canonical result form, replicated independently: ascending-id
/// order, coordinates untouched.
data::PointSet canonical(const data::PointSet& ps) {
  std::vector<std::size_t> order(ps.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return ps.id(a) < ps.id(b); });
  return ps.select(order);
}

/// Ids and exact coordinate bits, in output order — equality here is the
/// "bitwise identical" acceptance criterion.
std::vector<std::uint64_t> bits_of(const data::PointSet& ps) {
  std::vector<std::uint64_t> out;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    out.push_back(static_cast<std::uint64_t>(ps.id(i)));
    for (double c : ps.point(i)) out.push_back(std::bit_cast<std::uint64_t>(c));
  }
  return out;
}

std::vector<std::uint64_t> bits_of(const std::vector<skyline::ScoredPoint>& ranking) {
  std::vector<std::uint64_t> out;
  for (const auto& sp : ranking) {
    out.push_back(static_cast<std::uint64_t>(sp.id));
    out.push_back(std::bit_cast<std::uint64_t>(sp.score));
  }
  return out;
}

data::PointSet workload(std::size_t n = 300, std::size_t dim = 4, std::uint64_t seed = 42) {
  return data::generate(data::Distribution::kAnticorrelated, n, dim, seed);
}

TEST(QueryEngine, FullSkylineMatchesPipelineBitwise) {
  const auto ps = workload();
  service::QueryEngine engine(ps, {});

  const auto direct = core::run_mr_skyline(ps, core::MRSkylineConfig{});
  const auto result = engine.execute(service::SkylineQuery{});

  EXPECT_FALSE(result.metrics.cache_hit);
  EXPECT_EQ(result.metrics.dataset_version, 0u);
  EXPECT_GT(result.metrics.dominance_tests, 0u);
  EXPECT_EQ(result.metrics.result_points, result.points.size());
  EXPECT_EQ(bits_of(result.points), bits_of(canonical(direct.skyline)));
}

TEST(QueryEngine, SubspaceMatchesProjectedPipeline) {
  const auto ps = workload();
  service::QueryEngine engine(ps, {});
  const std::vector<std::size_t> attrs = {0, 2};

  const auto projected = data::project(ps, attrs);
  const auto direct = core::run_mr_skyline(projected, core::MRSkylineConfig{});
  const auto result = engine.execute(service::SubspaceQuery{attrs});

  EXPECT_EQ(bits_of(result.points), bits_of(canonical(direct.skyline)));
  EXPECT_EQ(result.points.dim(), attrs.size());
}

TEST(QueryEngine, ExtensionsMatchDirectComputation) {
  const auto ps = workload();
  service::QueryEngine engine(ps, {});

  const auto skyband = engine.execute(service::KSkybandQuery{3});
  EXPECT_EQ(bits_of(skyband.points), bits_of(canonical(skyline::k_skyband(ps, 3))));

  const auto rep = engine.execute(service::RepresentativeQuery{5});
  const auto rep_direct = skyline::representative_skyline(ps, 5);
  EXPECT_EQ(bits_of(rep.points), bits_of(rep_direct.representatives));
  EXPECT_EQ(rep.coverage, rep_direct.coverage);
  EXPECT_EQ(rep.total_covered, rep_direct.total_covered);

  const std::vector<double> weights = {0.4, 0.3, 0.2, 0.1};
  const auto topk = engine.execute(service::TopKWeightedQuery{weights, 7});
  EXPECT_EQ(bits_of(topk.ranking), bits_of(skyline::top_k_weighted(ps, weights, 7)));
  EXPECT_EQ(topk.metrics.result_points, topk.ranking.size());
}

TEST(QueryEngine, CacheHitIsBitwiseIdenticalToFirstAnswer) {
  service::QueryEngine engine(workload(), {});
  const std::vector<double> weights = {0.25, 0.25, 0.25, 0.25};
  const std::vector<service::Query> queries = {
      service::SkylineQuery{}, service::SubspaceQuery{{1, 3}}, service::KSkybandQuery{2},
      service::RepresentativeQuery{4}, service::TopKWeightedQuery{weights, 5}};

  for (const auto& query : queries) {
    const auto cold = engine.execute(query);
    const auto warm = engine.execute(query);
    EXPECT_FALSE(cold.metrics.cache_hit);
    EXPECT_TRUE(warm.metrics.cache_hit) << service::query_signature(query);
    EXPECT_EQ(bits_of(cold.points), bits_of(warm.points));
    EXPECT_EQ(bits_of(cold.ranking), bits_of(warm.ranking));
    EXPECT_EQ(cold.coverage, warm.coverage);
    EXPECT_EQ(warm.metrics.result_points, cold.metrics.result_points);
  }
  EXPECT_EQ(engine.stats().queries, 2 * queries.size());
  EXPECT_EQ(engine.stats().cache_hits, queries.size());
}

TEST(QueryEngine, FitMemoReuseIsObservableWithCachingDisabled) {
  service::QueryEngineOptions options;
  options.cache_capacity = 0;  // no result cache: every execute recomputes
  service::QueryEngine engine(workload(), options);

  const service::Query query = service::SubspaceQuery{{0, 1}};
  const auto first = engine.execute(query);
  const auto second = engine.execute(query);
  EXPECT_FALSE(first.metrics.cache_hit);
  EXPECT_FALSE(second.metrics.cache_hit);
  EXPECT_FALSE(first.metrics.fit_reused);
  EXPECT_TRUE(second.metrics.fit_reused);
  EXPECT_EQ(engine.stats().fits_computed, 1u);
  EXPECT_EQ(engine.stats().fit_reuses, 1u);
  EXPECT_EQ(engine.cache_entries(), 0u);
  EXPECT_EQ(bits_of(first.points), bits_of(second.points));
}

TEST(QueryEngine, InsertInvalidatesDerivedEntriesButKeepsSkyline) {
  const auto ps = workload(250, 3, 9);
  service::QueryEngine engine(ps, {});

  (void)engine.execute(service::SkylineQuery{});
  (void)engine.execute(service::KSkybandQuery{2});
  (void)engine.execute(service::SubspaceQuery{{0, 1}});
  ASSERT_GT(engine.fit_entries(), 0u);

  const auto extra = workload(60, 3, 1234);
  engine.insert_batch(extra);
  EXPECT_EQ(engine.version(), 1u);
  EXPECT_EQ(engine.dataset().size(), ps.size() + extra.size());
  EXPECT_EQ(engine.fit_entries(), 0u);  // stale fits must never serve pruning

  // The full skyline survives the insert (incremental fold, cache re-seeded).
  const auto sky = engine.execute(service::SkylineQuery{});
  EXPECT_TRUE(sky.metrics.cache_hit);
  EXPECT_EQ(sky.metrics.dataset_version, 1u);
  EXPECT_EQ(bits_of(sky.points), bits_of(canonical(skyline::bnl_skyline(engine.dataset()))));

  // Derived kinds were computed against version 0: they must recompute.
  const auto band = engine.execute(service::KSkybandQuery{2});
  EXPECT_FALSE(band.metrics.cache_hit);
  EXPECT_EQ(bits_of(band.points), bits_of(canonical(skyline::k_skyband(engine.dataset(), 2))));
  const auto sub = engine.execute(service::SubspaceQuery{{0, 1}});
  EXPECT_FALSE(sub.metrics.cache_hit);
}

TEST(QueryEngine, InsertBeforeAnySkylineQueryStillExact) {
  service::QueryEngine engine(workload(200, 3, 5), {});
  engine.insert_batch(workload(50, 3, 6));
  EXPECT_EQ(engine.version(), 1u);

  const auto sky = engine.execute(service::SkylineQuery{});
  EXPECT_FALSE(sky.metrics.cache_hit);
  EXPECT_EQ(engine.stats().incremental_serves, 0u);
  EXPECT_EQ(bits_of(sky.points), bits_of(canonical(skyline::bnl_skyline(engine.dataset()))));
}

TEST(QueryEngine, RepeatedInsertsKeepFoldExact) {
  service::QueryEngine engine(workload(150, 3, 21), {});
  (void)engine.execute(service::SkylineQuery{});
  for (std::uint64_t round = 0; round < 3; ++round) {
    engine.insert_batch(workload(40, 3, 100 + round));
    const auto sky = engine.execute(service::SkylineQuery{});
    EXPECT_TRUE(sky.metrics.cache_hit) << "round " << round;
    EXPECT_EQ(bits_of(sky.points), bits_of(canonical(skyline::bnl_skyline(engine.dataset()))))
        << "round " << round;
  }
  EXPECT_EQ(engine.version(), 3u);
  EXPECT_EQ(engine.stats().pipeline_runs, 1u);  // everything after run 1 was folded
}

TEST(QueryEngine, SequentialAndThreadedEnginesAgreeBitwise) {
  const auto ps = workload(280, 4, 77);
  const auto extra = workload(70, 4, 78);
  const std::vector<double> weights = {0.1, 0.2, 0.3, 0.4};
  const std::vector<service::Query> queries = {
      service::SkylineQuery{}, service::SubspaceQuery{{0, 3}}, service::KSkybandQuery{2},
      service::RepresentativeQuery{6}, service::TopKWeightedQuery{weights, 8}};

  service::QueryEngineOptions sequential;
  sequential.config.run_options.mode = mr::ExecutionMode::kSequential;
  service::QueryEngineOptions threaded;
  threaded.config.run_options.mode = mr::ExecutionMode::kThreads;
  threaded.config.run_options.num_threads = 4;

  service::QueryEngine a(ps, sequential);
  service::QueryEngine b(ps, threaded);
  auto run_session = [&](service::QueryEngine& engine) {
    auto results = engine.execute_batch(queries);
    engine.insert_batch(extra);
    auto after = engine.execute_batch(queries);
    results.insert(results.end(), std::make_move_iterator(after.begin()),
                   std::make_move_iterator(after.end()));
    return results;
  };
  const auto ra = run_session(a);
  const auto rb = run_session(b);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(bits_of(ra[i].points), bits_of(rb[i].points)) << "query " << i;
    EXPECT_EQ(bits_of(ra[i].ranking), bits_of(rb[i].ranking)) << "query " << i;
    EXPECT_EQ(ra[i].coverage, rb[i].coverage) << "query " << i;
    EXPECT_EQ(ra[i].metrics.cache_hit, rb[i].metrics.cache_hit) << "query " << i;
  }
}

TEST(QueryEngine, ExecuteBatchSeesEarlierCacheEntries) {
  service::QueryEngine engine(workload(), {});
  const std::vector<service::Query> queries = {service::KSkybandQuery{2},
                                               service::KSkybandQuery{2}};
  const auto results = engine.execute_batch(queries);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].metrics.cache_hit);
  EXPECT_TRUE(results[1].metrics.cache_hit);
  EXPECT_EQ(bits_of(results[0].points), bits_of(results[1].points));
}

TEST(QueryEngine, LruEvictsAtCapacity) {
  service::QueryEngineOptions options;
  options.cache_capacity = 2;
  service::QueryEngine engine(workload(120, 3, 3), options);

  (void)engine.execute(service::KSkybandQuery{2});
  (void)engine.execute(service::KSkybandQuery{3});
  (void)engine.execute(service::KSkybandQuery{4});  // evicts k=2
  EXPECT_EQ(engine.cache_entries(), 2u);
  EXPECT_EQ(engine.stats().cache_evictions, 1u);
  EXPECT_TRUE(engine.execute(service::KSkybandQuery{3}).metrics.cache_hit);
  EXPECT_TRUE(engine.execute(service::KSkybandQuery{4}).metrics.cache_hit);
  // k=2 was the least-recently-used entry when k=4 arrived: it is gone.
  EXPECT_FALSE(engine.execute(service::KSkybandQuery{2}).metrics.cache_hit);
}

TEST(QueryEngine, InvalidQueryThrowsEveryProblemAtOnce) {
  service::QueryEngine engine(workload(), {});
  service::TopKWeightedQuery bad;
  bad.k = 0;
  bad.weights = {0.5, -1.0};  // wrong count for dim=4 AND negative
  try {
    (void)engine.execute(service::Query{bad});
    FAIL() << "execute accepted an invalid query";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("3 problems"), std::string::npos) << what;
    EXPECT_NE(what.find("k must be >= 1"), std::string::npos) << what;
    EXPECT_NE(what.find("2 weights for 4 attributes"), std::string::npos) << what;
    EXPECT_NE(what.find("non-negative"), std::string::npos) << what;
  }
  EXPECT_EQ(engine.stats().queries, 0u);  // rejected before any accounting
}

TEST(QueryEngine, ConstructionValidatesConfigWithAllErrors) {
  service::QueryEngineOptions options;
  options.config.servers = 0;
  options.config.merge_fan_in = 1;
  try {
    service::QueryEngine engine(workload(), options);
    FAIL() << "constructor accepted an invalid config";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("servers"), std::string::npos) << what;
    EXPECT_NE(what.find("merge_fan_in"), std::string::npos) << what;
  }
}

TEST(QueryEngine, InsertEdgeCases) {
  service::QueryEngine engine(workload(100, 3, 8), {});
  engine.insert_batch(data::PointSet(3));  // empty: no-op
  EXPECT_EQ(engine.version(), 0u);
  EXPECT_THROW(engine.insert_batch(data::PointSet(5)), InvalidArgument);
  EXPECT_THROW(service::QueryEngine(data::PointSet(3), {}), InvalidArgument);
}

TEST(QueryEngine, AutoSchemeAnswersMatchStaticEngineBitwise) {
  const auto ps = workload(1500, 4, 97);
  service::QueryEngineOptions auto_options;
  auto_options.config.scheme = part::Scheme::kAuto;
  service::QueryEngine auto_engine(ps, auto_options);
  service::QueryEngine static_engine(ps, {});

  const auto planned = auto_engine.execute(service::SkylineQuery{});
  const auto direct = static_engine.execute(service::SkylineQuery{});
  EXPECT_TRUE(planned.metrics.planned);
  EXPECT_FALSE(planned.metrics.plan_reused);
  EXPECT_FALSE(planned.metrics.plan_scheme.empty());
  EXPECT_NE(planned.metrics.plan_scheme, "auto");
  EXPECT_GT(planned.metrics.plan_partitions, 0u);
  EXPECT_EQ(bits_of(planned.points), bits_of(direct.points));
}

TEST(QueryEngine, PlanMemoReusedWithinVersionInvalidatedByInsert) {
  service::QueryEngineOptions options;
  options.config.scheme = part::Scheme::kAuto;
  service::QueryEngine engine(workload(1500, 4, 97), options);
  EXPECT_EQ(engine.plan_entries(), 0u);

  // First pipeline run plans; a second pipeline run at the same version
  // (subspace — distinct cache key) reuses the memoised plan.
  (void)engine.execute(service::SkylineQuery{});
  EXPECT_EQ(engine.plan_entries(), 1u);
  EXPECT_EQ(engine.stats().plans_computed, 1u);
  const auto sub = engine.execute(service::SubspaceQuery{{0, 1, 2}});
  EXPECT_TRUE(sub.metrics.planned);
  EXPECT_TRUE(sub.metrics.plan_reused);
  EXPECT_EQ(sub.metrics.plan_planning_ns, 0);
  EXPECT_EQ(engine.plan_entries(), 1u);
  EXPECT_EQ(engine.stats().plans_computed, 1u);
  EXPECT_GE(engine.stats().plan_reuses, 1u);

  // Insert publishes a new version: the memo is dropped, and the next
  // pipeline run re-plans against the grown dataset.
  engine.insert_batch(workload(200, 4, 101));
  EXPECT_EQ(engine.plan_entries(), 0u);
  const auto replanned = engine.execute(service::SubspaceQuery{{1, 2, 3}});
  EXPECT_TRUE(replanned.metrics.planned);
  EXPECT_FALSE(replanned.metrics.plan_reused);
  EXPECT_EQ(engine.stats().plans_computed, 2u);
  EXPECT_EQ(engine.plan_entries(), 1u);
}

TEST(QueryEngine, StaticSchemeNeverTouchesPlanMemo) {
  service::QueryEngine engine(workload(600, 4, 13), {});
  (void)engine.execute(service::SkylineQuery{});
  (void)engine.execute(service::SubspaceQuery{{0, 1}});
  EXPECT_EQ(engine.plan_entries(), 0u);
  EXPECT_EQ(engine.stats().plans_computed, 0u);
  EXPECT_EQ(engine.stats().plan_reuses, 0u);
}

}  // namespace
}  // namespace mrsky
