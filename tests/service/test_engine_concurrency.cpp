// QueryEngine under concurrency — the MVCC snapshot contract (ISSUE 6).
//
// The acceptance criterion is stronger than "no crash": every answer a
// concurrent reader receives must be bitwise identical to what a fresh,
// single-threaded engine produces at the snapshot version the answer
// reported. The stress test records (query kind, version, result bits) from
// racing readers while a writer publishes inserts, then replays the whole
// history sequentially and compares. Run under ThreadSanitizer by
// scripts/ci_sanitize.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "src/dataset/generators.hpp"
#include "src/service/query_engine.hpp"

namespace mrsky {
namespace {

data::PointSet workload(std::size_t n = 400, std::size_t dim = 3, std::uint64_t seed = 42) {
  return data::generate(data::Distribution::kAnticorrelated, n, dim, seed);
}

/// Everything a QueryResult's payload contains, flattened to exact bits:
/// ids + coordinates, coverage, total_covered, ranking ids + score bits.
std::vector<std::uint64_t> blob_of(const service::QueryResult& result) {
  std::vector<std::uint64_t> out;
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    out.push_back(static_cast<std::uint64_t>(result.points.id(i)));
    for (double c : result.points.point(i)) out.push_back(std::bit_cast<std::uint64_t>(c));
  }
  out.push_back(0xFFFFFFFFFFFFFFFFull);  // section separator
  out.insert(out.end(), result.coverage.begin(), result.coverage.end());
  out.push_back(result.total_covered);
  for (const auto& sp : result.ranking) {
    out.push_back(static_cast<std::uint64_t>(sp.id));
    out.push_back(std::bit_cast<std::uint64_t>(sp.score));
  }
  return out;
}

const std::vector<service::Query>& query_mix() {
  static const std::vector<service::Query> kQueries = {
      service::Query{service::SkylineQuery{}},
      service::Query{service::KSkybandQuery{2}},
      service::Query{service::SubspaceQuery{{0, 1}}},
      service::Query{service::RepresentativeQuery{5}},
      service::Query{service::TopKWeightedQuery{{0.5, 0.25, 0.25}, 4}},
  };
  return kQueries;
}

TEST(EngineConcurrency, RacingReadersMatchSequentialReplayBitwise) {
  const data::PointSet base = workload();
  constexpr std::size_t kInserts = 5;
  constexpr std::size_t kReaders = 3;
  constexpr std::size_t kQueriesPerReader = 40;

  std::vector<data::PointSet> batches;
  for (std::size_t b = 0; b < kInserts; ++b) {
    batches.push_back(workload(20, 3, 1000 + b));
  }

  service::QueryEngine engine(base, {});

  struct Record {
    std::size_t kind;
    std::uint64_t version;
    std::vector<std::uint64_t> blob;
  };
  std::mutex records_mutex;
  std::vector<Record> records;
  // version -> index of the batch that produced it (writer-observed).
  std::map<std::uint64_t, std::size_t> batch_for_version;

  std::thread writer([&] {
    for (std::size_t b = 0; b < kInserts; ++b) {
      const std::uint64_t version = engine.insert_batch(batches[b]);
      {
        std::lock_guard<std::mutex> lock(records_mutex);
        batch_for_version.emplace(version, b);
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      for (std::size_t i = 0; i < kQueriesPerReader; ++i) {
        const std::size_t kind = (r + i) % query_mix().size();
        const service::QueryResult result = engine.execute(query_mix()[kind]);
        std::lock_guard<std::mutex> lock(records_mutex);
        records.push_back({kind, result.metrics.dataset_version, blob_of(result)});
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();

  ASSERT_EQ(batch_for_version.size(), kInserts);
  EXPECT_EQ(engine.version(), kInserts);

  // Sequential replay: one thread, same batches in version order. Expected
  // payloads are computed per (kind, version) the first time they're needed.
  service::QueryEngine replay(base, {});
  std::map<std::pair<std::size_t, std::uint64_t>, std::vector<std::uint64_t>> expected;
  auto compute_expected_at = [&](std::uint64_t version) {
    for (std::size_t kind = 0; kind < query_mix().size(); ++kind) {
      expected.emplace(std::make_pair(kind, version),
                       blob_of(replay.execute(query_mix()[kind])));
    }
  };
  compute_expected_at(0);
  for (const auto& [version, batch_index] : batch_for_version) {
    ASSERT_EQ(replay.insert_batch(batches[batch_index]), version);
    compute_expected_at(version);
  }

  ASSERT_EQ(records.size(), kReaders * kQueriesPerReader);
  for (const Record& record : records) {
    const auto it = expected.find({record.kind, record.version});
    ASSERT_NE(it, expected.end())
        << "reader saw version " << record.version << " which replay never produced";
    EXPECT_EQ(record.blob, it->second)
        << "kind " << record.kind << " at version " << record.version;
  }
}

TEST(EngineConcurrency, SnapshotPinsRetiredVersionAlive) {
  service::QueryEngine engine(workload(), {});
  const service::EngineSnapshotPtr pinned = engine.snapshot();
  EXPECT_EQ(pinned->version, 0u);
  const std::size_t size_before = pinned->dataset->size();

  EXPECT_EQ(engine.insert_batch(workload(10, 3, 77)), 1u);
  EXPECT_EQ(engine.version(), 1u);

  // The pinned snapshot is immutable: same version, same dataset, even
  // though the engine has moved on.
  EXPECT_EQ(pinned->version, 0u);
  EXPECT_EQ(pinned->dataset->size(), size_before);
  EXPECT_EQ(engine.snapshot()->dataset->size(), size_before + 10);
}

TEST(EngineConcurrency, ConcurrentCacheHitsAreExactAndCounted) {
  service::QueryEngine engine(workload(), {});
  const std::vector<std::uint64_t> expected = blob_of(engine.execute(query_mix()[0]));

  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kRepeats = 20;
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < kRepeats; ++i) {
        if (blob_of(engine.execute(query_mix()[0])) != expected) ++mismatches;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
  // Every repeat after the first execution is a cache hit; the LRU recency
  // touch on the hit path must not corrupt anything under contention.
  EXPECT_EQ(engine.stats().cache_hits, kThreads * kRepeats);
  EXPECT_EQ(engine.stats().pipeline_runs, 1u);
}

TEST(EngineConcurrency, InsertDuringPinnedFitDoesNotDangle) {
  // Regression shape for the prepared_fit lifetime bug: a reader's pipeline
  // run holds its partition fit while an insert clears the fit memo. Under
  // shared_ptr pinning the run completes against its snapshot; before the
  // fix the reference dangled into a cleared map.
  service::QueryEngine engine(workload(600, 3), {});
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::size_t b = 0;
    while (!stop.load()) {
      engine.insert_batch(workload(5, 3, 500 + b++));
      std::this_thread::yield();
    }
  });
  for (std::size_t i = 0; i < 30; ++i) {
    const service::QueryResult result = engine.execute(query_mix()[i % 2]);
    EXPECT_FALSE(result.points.empty());
  }
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace mrsky
