#include "src/skyline/verify.hpp"

#include <gtest/gtest.h>

#include "src/dataset/generators.hpp"
#include "src/skyline/algorithms.hpp"

namespace mrsky::skyline {
namespace {

using data::PointSet;

PointSet simple_data() {
  return PointSet(2, {
                         1.0, 5.0,  // 0: skyline
                         5.0, 1.0,  // 1: skyline
                         4.0, 4.0,  // 2: dominated by... nothing (1,5)? no; (5,1)? no -> skyline
                         6.0, 6.0,  // 3: dominated by 2
                     });
}

TEST(VerifySkyline, AcceptsCorrectSkyline) {
  const PointSet ps = simple_data();
  const auto result = verify_skyline(ps, bnl_skyline(ps));
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(VerifySkyline, RejectsMissingSkylinePoint) {
  const PointSet ps = simple_data();
  PointSet incomplete(2);
  incomplete.push_back(ps.point(0), ps.id(0));  // drop undominated ids 1, 2
  const auto result = verify_skyline(ps, incomplete);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("undominated"), std::string::npos);
}

TEST(VerifySkyline, RejectsDominatedCandidate) {
  const PointSet ps = simple_data();
  PointSet with_extra = bnl_skyline(ps);
  with_extra.push_back(ps.point(3), ps.id(3));  // the dominated point
  const auto result = verify_skyline(ps, with_extra);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("dominated"), std::string::npos);
}

TEST(VerifySkyline, RejectsForeignId) {
  const PointSet ps = simple_data();
  PointSet foreign = bnl_skyline(ps);
  const std::vector<double> p = {0.1, 0.1};
  foreign.push_back(p, 99u);
  const auto result = verify_skyline(ps, foreign);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("not present"), std::string::npos);
}

TEST(VerifySkyline, RejectsAlteredCoordinates) {
  const PointSet ps = simple_data();
  const PointSet sky = bnl_skyline(ps);
  PointSet tampered(2);
  for (std::size_t i = 0; i < sky.size(); ++i) {
    std::vector<double> coords(sky.point(i).begin(), sky.point(i).end());
    if (i == 0) coords[0] += 0.5;
    tampered.push_back(coords, sky.id(i));
  }
  const auto result = verify_skyline(ps, tampered);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("altered"), std::string::npos);
}

TEST(VerifySkyline, RejectsDimensionMismatch) {
  const PointSet ps = simple_data();
  const PointSet wrong_dim(3);
  EXPECT_FALSE(verify_skyline(ps, wrong_dim).ok);
}

TEST(VerifySkyline, EmptyCandidateOnNonEmptyDataFails) {
  const PointSet ps = simple_data();
  EXPECT_FALSE(verify_skyline(ps, PointSet(2)).ok);
}

TEST(VerifySkyline, EmptyDataEmptyCandidateOk) {
  EXPECT_TRUE(verify_skyline(PointSet(2), PointSet(2)).ok);
}

TEST(SameIds, OrderInsensitive) {
  PointSet a(1, {1.0, 2.0}, {5u, 9u});
  PointSet b(1, {2.0, 1.0}, {9u, 5u});
  EXPECT_TRUE(same_ids(a, b));
}

TEST(SameIds, DetectsDifference) {
  PointSet a(1, {1.0}, {5u});
  PointSet b(1, {1.0}, {6u});
  EXPECT_FALSE(same_ids(a, b));
}

}  // namespace
}  // namespace mrsky::skyline
