#include "src/skyline/maintained.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/dataset/generators.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/verify.hpp"

namespace mrsky::skyline {
namespace {

using data::PointSet;

TEST(MaintainedSkyline, StartsEmpty) {
  MaintainedSkyline ms(2);
  EXPECT_EQ(ms.size(), 0u);
  EXPECT_EQ(ms.skyline_size(), 0u);
}

TEST(MaintainedSkyline, ZeroDimThrows) { EXPECT_THROW(MaintainedSkyline(0), InvalidArgument); }

TEST(MaintainedSkyline, DimensionMismatchThrows) {
  MaintainedSkyline ms(3);
  EXPECT_THROW(ms.insert(std::vector<double>{1.0, 2.0}, 0), InvalidArgument);
}

TEST(MaintainedSkyline, DuplicateIdThrows) {
  MaintainedSkyline ms(2);
  (void)ms.insert(std::vector<double>{1.0, 2.0}, 7);
  EXPECT_THROW(ms.insert(std::vector<double>{3.0, 4.0}, 7), InvalidArgument);
}

TEST(MaintainedSkyline, InsertMatchesIncrementalSemantics) {
  MaintainedSkyline ms(2);
  EXPECT_TRUE(ms.insert(std::vector<double>{3.0, 3.0}, 0));
  EXPECT_FALSE(ms.insert(std::vector<double>{4.0, 4.0}, 1));  // dominated
  EXPECT_TRUE(ms.insert(std::vector<double>{0.5, 5.0}, 2));   // incomparable
  EXPECT_TRUE(ms.insert(std::vector<double>{1.0, 1.0}, 3));   // dominates 0 (and transitively 1)
  EXPECT_EQ(ms.skyline_ids(), (std::vector<data::PointId>{2, 3}));
  EXPECT_EQ(ms.size(), 4u);  // demoted points stay live
}

TEST(MaintainedSkyline, EraseUnknownIdIsNoop) {
  MaintainedSkyline ms(2);
  (void)ms.insert(std::vector<double>{1.0, 1.0}, 0);
  const auto r = ms.erase(99);
  EXPECT_FALSE(r.erased);
  EXPECT_EQ(ms.size(), 1u);
}

TEST(MaintainedSkyline, EraseNonSkylinePointLeavesSkylineUntouched) {
  MaintainedSkyline ms(2);
  (void)ms.insert(std::vector<double>{1.0, 1.0}, 0);
  (void)ms.insert(std::vector<double>{2.0, 2.0}, 1);  // dominated by 0
  const auto before = ms.stats().dominance_tests;
  const auto r = ms.erase(1);
  EXPECT_TRUE(r.erased);
  EXPECT_FALSE(r.was_skyline);
  EXPECT_TRUE(r.promoted.empty());
  EXPECT_EQ(ms.stats().dominance_tests, before);  // no dominance work at all
  EXPECT_EQ(ms.skyline_ids(), (std::vector<data::PointId>{0}));
}

TEST(MaintainedSkyline, EraseSkylineMemberPromotesExclusiveDominee) {
  MaintainedSkyline ms(2);
  (void)ms.insert(std::vector<double>{1.0, 1.0}, 0);
  (void)ms.insert(std::vector<double>{2.0, 2.0}, 1);  // exclusively under 0
  const auto r = ms.erase(0);
  EXPECT_TRUE(r.was_skyline);
  EXPECT_EQ(r.promoted, (std::vector<data::PointId>{1}));
  EXPECT_EQ(ms.skyline_ids(), (std::vector<data::PointId>{1}));
  EXPECT_EQ(ms.promotions(), 1u);
}

TEST(MaintainedSkyline, ErasedMemberDomineeReparksUnderSurvivor) {
  // 2 is dominated by both 0 and 1; it parks under whichever was scanned
  // first. Deleting that guard must re-park it, not promote it.
  MaintainedSkyline ms(2);
  (void)ms.insert(std::vector<double>{1.0, 4.0}, 0);
  (void)ms.insert(std::vector<double>{2.0, 1.0}, 1);
  (void)ms.insert(std::vector<double>{3.0, 5.0}, 2);  // dominated by 0 only... check: 0=(1,4)≤(3,5) yes; 1=(2,1)≤(3,5) yes
  const auto r0 = ms.erase(0);
  EXPECT_TRUE(r0.was_skyline);
  EXPECT_TRUE(r0.promoted.empty());  // 1 still dominates 2
  EXPECT_EQ(ms.skyline_ids(), (std::vector<data::PointId>{1}));
  EXPECT_TRUE(ms.contains(2));
  EXPECT_FALSE(ms.on_skyline(2));
}

TEST(MaintainedSkyline, CandidateDominatedBySiblingCandidateIsNotPromoted) {
  // Both 1 and 2 park under 0; 1 dominates 2, so deleting 0 promotes only 1.
  MaintainedSkyline ms(2);
  (void)ms.insert(std::vector<double>{1.0, 1.0}, 0);
  (void)ms.insert(std::vector<double>{2.0, 2.0}, 1);
  (void)ms.insert(std::vector<double>{3.0, 3.0}, 2);
  const auto r = ms.erase(0);
  EXPECT_EQ(r.promoted, (std::vector<data::PointId>{1}));
  EXPECT_EQ(ms.skyline_ids(), (std::vector<data::PointId>{1}));
  EXPECT_TRUE(ms.contains(2));  // 2 stays live, parked under 1 now
}

TEST(MaintainedSkyline, DuplicateCoordinatesCoexistAndSurviveErase) {
  MaintainedSkyline ms(2);
  (void)ms.insert(std::vector<double>{1.0, 1.0}, 0);
  (void)ms.insert(std::vector<double>{1.0, 1.0}, 1);  // tie: neither dominates
  EXPECT_EQ(ms.skyline_ids(), (std::vector<data::PointId>{0, 1}));
  (void)ms.erase(0);
  EXPECT_EQ(ms.skyline_ids(), (std::vector<data::PointId>{1}));
}

TEST(MaintainedSkyline, ReinsertAfterEraseReusesId) {
  MaintainedSkyline ms(2);
  (void)ms.insert(std::vector<double>{1.0, 1.0}, 0);
  (void)ms.erase(0);
  EXPECT_TRUE(ms.insert(std::vector<double>{2.0, 2.0}, 0));
  EXPECT_EQ(ms.skyline_ids(), (std::vector<data::PointId>{0}));
}

TEST(MaintainedSkyline, BulkLoadMatchesBnl) {
  const PointSet ps = data::generate(data::Distribution::kAnticorrelated, 500, 3, 31);
  MaintainedSkyline ms(ps);
  EXPECT_TRUE(same_ids(ms.skyline_points(), bnl_skyline(ps)));
  EXPECT_EQ(ms.size(), ps.size());
}

// The tentpole's exactness claim: after ANY interleaving of inserts and
// deletes, the maintained skyline is exactly naive_skyline of the live set.
TEST(MaintainedSkyline, RandomizedDeleteOracle) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    common::Rng rng(seed * 0x9e3779b9ull + 0xb105ull);
    const std::size_t dim = 2 + rng.uniform_index(4);
    const auto dist = static_cast<data::Distribution>(rng.uniform_index(4));
    const PointSet ps = data::generate(dist, 160, dim, 1000 + seed);

    MaintainedSkyline ms(dim);
    std::vector<std::size_t> live;  // rows of ps currently inserted
    std::size_t next = 0;

    for (int op = 0; op < 400; ++op) {
      const bool do_delete = !live.empty() && (next >= ps.size() || rng.uniform_index(3) == 0);
      if (do_delete) {
        const std::size_t pick = rng.uniform_index(live.size());
        const std::size_t row = live[pick];
        live[pick] = live.back();
        live.pop_back();
        const auto r = ms.erase(ps.id(row));
        EXPECT_TRUE(r.erased);
      } else if (next < ps.size()) {
        (void)ms.insert(ps.point(next), ps.id(next));
        live.push_back(next);
        ++next;
      } else {
        break;
      }
      // Oracle: recompute from scratch over the live rows.
      PointSet alive(dim);
      std::vector<std::size_t> rows = live;
      std::sort(rows.begin(), rows.end());
      for (std::size_t row : rows) alive.push_back(ps.point(row), ps.id(row));
      EXPECT_TRUE(same_ids(ms.skyline_points(), naive_skyline(alive)))
          << "seed=" << seed << " op=" << op;
    }
  }
}

// Promoted ids reported by erase must be exactly the skyline ids gained.
TEST(MaintainedSkyline, PromotedIdsMatchSkylineDiff) {
  common::Rng rng(0x5eedull);
  const PointSet ps = data::generate(data::Distribution::kCorrelated, 300, 3, 77);
  MaintainedSkyline ms(ps);
  std::vector<data::PointId> live_ids(ps.ids().begin(), ps.ids().end());
  for (int op = 0; op < 120 && !live_ids.empty(); ++op) {
    const std::size_t pick = rng.uniform_index(live_ids.size());
    const data::PointId victim = live_ids[pick];
    live_ids[pick] = live_ids.back();
    live_ids.pop_back();

    const auto before = ms.skyline_ids();
    const auto r = ms.erase(victim);
    ASSERT_TRUE(r.erased);
    const auto after = ms.skyline_ids();

    std::vector<data::PointId> gained;
    std::set_difference(after.begin(), after.end(), before.begin(), before.end(),
                        std::back_inserter(gained));
    EXPECT_EQ(r.promoted, gained);
  }
}

TEST(MaintainedSkyline, CountersAreDeterministic) {
  // Same operation sequence twice → identical counters (build-invariant
  // scalar charging; the sweep suite checks this cross-mode too).
  auto run = [] {
    const PointSet ps = data::generate(data::Distribution::kIndependent, 200, 3, 5);
    MaintainedSkyline ms(ps);
    for (data::PointId id = 0; id < 100; id += 3) (void)ms.erase(id);
    return ms.stats().dominance_tests;
  };
  EXPECT_EQ(run(), run());
}

TEST(MaintainedSkyline, LivePointsIsAscendingAndComplete) {
  MaintainedSkyline ms(2);
  (void)ms.insert(std::vector<double>{2.0, 2.0}, 5);
  (void)ms.insert(std::vector<double>{1.0, 1.0}, 3);
  (void)ms.insert(std::vector<double>{3.0, 3.0}, 1);
  const PointSet live = ms.live_points();
  ASSERT_EQ(live.size(), 3u);
  EXPECT_EQ(live.id(0), 1u);
  EXPECT_EQ(live.id(1), 3u);
  EXPECT_EQ(live.id(2), 5u);
}

}  // namespace
}  // namespace mrsky::skyline
