#include "src/skyline/algorithms.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "src/common/error.hpp"
#include "src/dataset/generators.hpp"
#include "src/skyline/verify.hpp"

namespace mrsky::skyline {
namespace {

using data::Distribution;
using data::PointSet;

// ---- Hand-checkable fixtures -------------------------------------------

PointSet paper_figure1_like() {
  // 2-D layout mirroring the paper's Fig. 1: seven skyline points along the
  // contour and one dominated point (id 7, mirrors s8).
  return PointSet(2, {
                         0.5, 9.0,  // s1
                         1.0, 6.0,  // s2
                         2.0, 4.0,  // s3
                         3.5, 2.5,  // s4
                         5.0, 2.0,  // s5
                         7.0, 1.5,  // s6
                         9.0, 1.0,  // s7
                         5.0, 5.0,  // s8 — dominated by s3/s4/s5
                     });
}

TEST(BnlSkyline, PaperFigureExample) {
  const PointSet sky = bnl_skyline(paper_figure1_like());
  EXPECT_EQ(sorted_ids(sky), (std::vector<data::PointId>{0, 1, 2, 3, 4, 5, 6}));
}

TEST(BnlSkyline, SinglePointIsItsOwnSkyline) {
  const PointSet ps(2, {1.0, 2.0});
  const PointSet sky = bnl_skyline(ps);
  EXPECT_EQ(sky.size(), 1u);
}

TEST(BnlSkyline, EmptyInputEmptyOutput) {
  const PointSet ps(3);
  EXPECT_TRUE(bnl_skyline(ps).empty());
}

TEST(BnlSkyline, TotalOrderLeavesSingleSurvivor) {
  // Chain p0 < p1 < ... in every coordinate: only p0 survives.
  PointSet ps(2);
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> p = {static_cast<double>(i), static_cast<double>(i)};
    ps.push_back(p);
  }
  const PointSet sky = bnl_skyline(ps);
  ASSERT_EQ(sky.size(), 1u);
  EXPECT_EQ(sky.id(0), 0u);
}

TEST(BnlSkyline, AntichainKeepsEverything) {
  // Perfect anti-diagonal: nothing dominates anything.
  PointSet ps(2);
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> p = {static_cast<double>(i), static_cast<double>(19 - i)};
    ps.push_back(p);
  }
  EXPECT_EQ(bnl_skyline(ps).size(), 20u);
}

TEST(BnlSkyline, DuplicateUndominatedPointsAllKept) {
  PointSet ps(2, {1.0, 1.0, 1.0, 1.0, 2.0, 0.5});
  const PointSet sky = bnl_skyline(ps);
  EXPECT_EQ(sky.size(), 3u);  // the two duplicates and the incomparable third
}

TEST(BnlSkyline, DuplicateDominatedPointsAllDropped) {
  PointSet ps(2, {5.0, 5.0, 5.0, 5.0, 1.0, 1.0});
  const PointSet sky = bnl_skyline(ps);
  ASSERT_EQ(sky.size(), 1u);
  EXPECT_EQ(sky.id(0), 2u);
}

TEST(BnlSkyline, OrderInsensitive) {
  const PointSet forward = paper_figure1_like();
  // Reverse the point order; skyline ids must match.
  PointSet reversed(2);
  for (std::size_t i = forward.size(); i-- > 0;) {
    reversed.push_back(forward.point(i), forward.id(i));
  }
  EXPECT_TRUE(same_ids(bnl_skyline(forward), bnl_skyline(reversed)));
}

TEST(BnlSkyline, StatsCountWork) {
  SkylineStats stats;
  (void)bnl_skyline(paper_figure1_like(), &stats);
  EXPECT_EQ(stats.points_in, 8u);
  EXPECT_EQ(stats.points_out, 7u);
  EXPECT_GT(stats.dominance_tests, 0u);
}

TEST(AlgorithmParse, RoundTrips) {
  for (Algorithm a : {Algorithm::kBnl, Algorithm::kSfs, Algorithm::kDivideConquer,
                      Algorithm::kNaive}) {
    EXPECT_EQ(parse_algorithm(to_string(a)), a);
  }
  EXPECT_THROW(parse_algorithm("quicksky"), mrsky::RuntimeError);
}

// ---- Cross-algorithm agreement sweep ------------------------------------
//
// Every algorithm must produce the identical skyline (as an id set) as the
// naive O(n²) reference, across distributions and dimensions.

using SweepParam = std::tuple<Algorithm, Distribution, std::size_t /*dim*/>;

class AlgorithmAgreement : public testing::TestWithParam<SweepParam> {};

TEST_P(AlgorithmAgreement, MatchesNaiveReference) {
  const auto [algo, dist, dim] = GetParam();
  const PointSet ps = data::generate(dist, 600, dim, 0xDA7A + dim);
  const PointSet expected = naive_skyline(ps);
  const PointSet actual = compute_skyline(ps, algo);
  EXPECT_TRUE(same_ids(expected, actual))
      << to_string(algo) << " disagrees with naive on " << to_string(dist) << " d=" << dim;
}

TEST_P(AlgorithmAgreement, OutputIsValidSkyline) {
  const auto [algo, dist, dim] = GetParam();
  const PointSet ps = data::generate(dist, 300, dim, 0xBEEF + dim);
  const auto result = verify_skyline(ps, compute_skyline(ps, algo));
  EXPECT_TRUE(result.ok) << result.message;
}

TEST_P(AlgorithmAgreement, SkylineOfSkylineIsIdentity) {
  const auto [algo, dist, dim] = GetParam();
  const PointSet ps = data::generate(dist, 400, dim, 0xF00D + dim);
  const PointSet once = compute_skyline(ps, algo);
  const PointSet twice = compute_skyline(once, algo);
  EXPECT_TRUE(same_ids(once, twice));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlgorithmAgreement,
    testing::Combine(testing::Values(Algorithm::kBnl, Algorithm::kSfs,
                                     Algorithm::kDivideConquer),
                     testing::Values(Distribution::kIndependent, Distribution::kCorrelated,
                                     Distribution::kAnticorrelated),
                     testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{4},
                                     std::size_t{7})),
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) + "_" + data::to_string(std::get<1>(info.param)) +
             "_d" + std::to_string(std::get<2>(info.param));
    });

// ---- Skyline size behaviour ---------------------------------------------

TEST(SkylineSize, GrowsWithDimension) {
  const PointSet d2 = data::generate(Distribution::kIndependent, 2000, 2, 77);
  const PointSet d8 = data::generate(Distribution::kIndependent, 2000, 8, 77);
  EXPECT_LT(bnl_skyline(d2).size(), bnl_skyline(d8).size());
}

TEST(SkylineSize, AnticorrelatedLargerThanCorrelated) {
  const PointSet anti = data::generate(Distribution::kAnticorrelated, 2000, 3, 5);
  const PointSet corr = data::generate(Distribution::kCorrelated, 2000, 3, 5);
  EXPECT_GT(bnl_skyline(anti).size(), bnl_skyline(corr).size());
}

TEST(SfsSkyline, CheaperThanBnlOnAnticorrelated) {
  // SFS's presort makes its window append-only; on hostile data it should
  // never do more dominance tests than BNL by a wide margin.
  const PointSet ps = data::generate(Distribution::kAnticorrelated, 1500, 4, 9);
  SkylineStats bnl_stats, sfs_stats;
  (void)bnl_skyline(ps, &bnl_stats);
  (void)sfs_skyline(ps, &sfs_stats);
  EXPECT_LE(sfs_stats.dominance_tests, bnl_stats.dominance_tests * 2);
}

}  // namespace
}  // namespace mrsky::skyline
