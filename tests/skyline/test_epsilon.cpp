#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/dataset/generators.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/extensions.hpp"
#include "src/skyline/verify.hpp"

namespace mrsky::skyline {
namespace {

using data::PointSet;

bool eps_covered(std::span<const double> p, const PointSet& cover, double eps) {
  for (std::size_t s = 0; s < cover.size(); ++s) {
    bool ok = true;
    const auto q = cover.point(s);
    for (std::size_t a = 0; a < q.size() && ok; ++a) ok = q[a] <= (1.0 + eps) * p[a];
    if (ok) return true;
  }
  return false;
}

TEST(EpsilonParetoCover, CoversEveryDatasetPoint) {
  const PointSet ps = data::generate(data::Distribution::kAnticorrelated, 500, 3, 81);
  for (double eps : {0.0, 0.05, 0.2}) {
    const PointSet cover = epsilon_pareto_cover(ps, eps);
    for (std::size_t i = 0; i < ps.size(); ++i) {
      EXPECT_TRUE(eps_covered(ps.point(i), cover, eps)) << "eps=" << eps << " point " << i;
    }
  }
}

TEST(EpsilonParetoCover, SubsetOfSkyline) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 400, 3, 83);
  const auto sky_ids = sorted_ids(bnl_skyline(ps));
  const PointSet cover = epsilon_pareto_cover(ps, 0.1);
  for (data::PointId id : cover.ids()) {
    EXPECT_TRUE(std::binary_search(sky_ids.begin(), sky_ids.end(), id));
  }
  EXPECT_LE(cover.size(), sky_ids.size());
}

TEST(EpsilonParetoCover, LargerEpsilonShrinksTheCover) {
  const PointSet ps = data::generate(data::Distribution::kAnticorrelated, 2000, 4, 85);
  const std::size_t full = bnl_skyline(ps).size();
  const std::size_t tight = epsilon_pareto_cover(ps, 0.02).size();
  const std::size_t loose = epsilon_pareto_cover(ps, 0.5).size();
  EXPECT_LE(tight, full);
  EXPECT_LT(loose, tight);  // big slack collapses the anti-correlated front
  EXPECT_GE(loose, 1u);
}

TEST(EpsilonParetoCover, ZeroEpsilonCollapsesOnlyDuplicates) {
  PointSet ps(2, {1.0, 2.0, 1.0, 2.0, 2.0, 1.0});  // duplicate pair + incomparable
  const PointSet cover = epsilon_pareto_cover(ps, 0.0);
  EXPECT_EQ(cover.size(), 2u);  // one of the duplicates + the other point
}

TEST(EpsilonParetoCover, EmptyInput) {
  EXPECT_TRUE(epsilon_pareto_cover(PointSet(2), 0.1).empty());
}

TEST(EpsilonParetoCover, Validation) {
  const PointSet ps(2, {1.0, 1.0});
  EXPECT_THROW((void)epsilon_pareto_cover(ps, -0.1), mrsky::InvalidArgument);
  const PointSet negative(2, {-1.0, 1.0});
  EXPECT_THROW((void)epsilon_pareto_cover(negative, 0.1), mrsky::InvalidArgument);
}

TEST(EpsilonParetoCover, DeterministicAcrossRuns) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 600, 3, 87);
  EXPECT_EQ(epsilon_pareto_cover(ps, 0.1), epsilon_pareto_cover(ps, 0.1));
}

}  // namespace
}  // namespace mrsky::skyline
