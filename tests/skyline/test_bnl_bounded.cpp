#include "src/skyline/bnl_bounded.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "src/common/error.hpp"
#include "src/dataset/generators.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/verify.hpp"

namespace mrsky::skyline {
namespace {

using data::Distribution;
using data::PointSet;

TEST(BoundedBnl, RejectsZeroWindow) {
  const PointSet ps(2, {1.0, 2.0});
  EXPECT_THROW((void)bnl_skyline_bounded(ps, 0), mrsky::InvalidArgument);
}

TEST(BoundedBnl, EmptyInput) {
  EXPECT_TRUE(bnl_skyline_bounded(PointSet(3), 4).empty());
}

TEST(BoundedBnl, HugeWindowBehavesLikeUnbounded) {
  const PointSet ps = data::generate(Distribution::kIndependent, 500, 3, 3);
  BoundedBnlReport report;
  const PointSet sky = bnl_skyline_bounded(ps, ps.size(), &report);
  EXPECT_TRUE(same_ids(sky, bnl_skyline(ps)));
  EXPECT_EQ(report.passes, 1u);
  EXPECT_EQ(report.overflow_points, 0u);
}

TEST(BoundedBnl, WindowOfOneStillCorrect) {
  const PointSet ps = data::generate(Distribution::kAnticorrelated, 120, 2, 5);
  const PointSet sky = bnl_skyline_bounded(ps, 1);
  EXPECT_TRUE(same_ids(sky, bnl_skyline(ps)));
}

// Parameterised sweep: correctness must hold for every window size,
// distribution and dimension combination.
using Param = std::tuple<std::size_t /*window*/, Distribution, std::size_t /*dim*/>;

class BoundedBnlSweep : public testing::TestWithParam<Param> {};

TEST_P(BoundedBnlSweep, MatchesUnboundedBnl) {
  const auto [window, dist, dim] = GetParam();
  const PointSet ps = data::generate(dist, 400, dim, 77 + dim);
  BoundedBnlReport report;
  const PointSet sky = bnl_skyline_bounded(ps, window, &report);
  EXPECT_TRUE(same_ids(sky, bnl_skyline(ps)))
      << "window=" << window << " " << data::to_string(dist) << " d=" << dim;
  const auto verdict = verify_skyline(ps, sky);
  EXPECT_TRUE(verdict.ok) << verdict.message;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BoundedBnlSweep,
    testing::Combine(testing::Values(std::size_t{2}, std::size_t{8}, std::size_t{32},
                                     std::size_t{128}),
                     testing::Values(Distribution::kIndependent, Distribution::kCorrelated,
                                     Distribution::kAnticorrelated),
                     testing::Values(std::size_t{2}, std::size_t{5})),
    [](const auto& info) {
      return "w" + std::to_string(std::get<0>(info.param)) + "_" +
             data::to_string(std::get<1>(info.param)) + "_d" +
             std::to_string(std::get<2>(info.param));
    });

TEST(BoundedBnl, SmallerWindowsNeedMorePasses) {
  const PointSet ps = data::generate(Distribution::kAnticorrelated, 600, 3, 9);
  BoundedBnlReport tight;
  BoundedBnlReport roomy;
  (void)bnl_skyline_bounded(ps, 4, &tight);
  (void)bnl_skyline_bounded(ps, 256, &roomy);
  EXPECT_GT(tight.passes, roomy.passes);
  EXPECT_GT(tight.overflow_points, roomy.overflow_points);
}

TEST(BoundedBnl, PassCountBoundedByInputSize) {
  // Every pass confirms or kills at least one tuple.
  const PointSet ps = data::generate(Distribution::kAnticorrelated, 200, 2, 11);
  BoundedBnlReport report;
  (void)bnl_skyline_bounded(ps, 2, &report);
  EXPECT_LE(report.passes, ps.size());
}

TEST(BoundedBnl, DuplicatesSurviveBoundedWindow) {
  PointSet ps(2, {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 5.0, 0.5});
  const PointSet sky = bnl_skyline_bounded(ps, 2);
  // Three duplicates of (1,1) plus the incomparable (5,0.5): all skyline.
  EXPECT_EQ(sky.size(), 4u);
}

TEST(BoundedBnl, StatsAccumulate) {
  const PointSet ps = data::generate(Distribution::kIndependent, 300, 3, 13);
  BoundedBnlReport report;
  (void)bnl_skyline_bounded(ps, 16, &report);
  EXPECT_EQ(report.stats.points_in, 300u);
  EXPECT_GT(report.stats.dominance_tests, 0u);
  EXPECT_EQ(report.stats.points_out, bnl_skyline(ps).size());
}

TEST(BoundedBnl, TotalOrderSinglePass) {
  // A dominance chain: the first point kills everything; window never fills.
  PointSet ps(2);
  for (int i = 0; i < 50; ++i) {
    ps.push_back(std::vector<double>{static_cast<double>(i), static_cast<double>(i)});
  }
  BoundedBnlReport report;
  const PointSet sky = bnl_skyline_bounded(ps, 2, &report);
  EXPECT_EQ(sky.size(), 1u);
  EXPECT_EQ(report.passes, 1u);
}

}  // namespace
}  // namespace mrsky::skyline
