#include "src/skyline/dominance.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.hpp"

namespace mrsky::skyline {
namespace {

using Vec = std::vector<double>;

TEST(Dominance, StrictlyBetterEverywhere) {
  EXPECT_TRUE(dominates(Vec{1.0, 1.0}, Vec{2.0, 2.0}));
  EXPECT_FALSE(dominates(Vec{2.0, 2.0}, Vec{1.0, 1.0}));
}

TEST(Dominance, BetterInOneEqualElsewhere) {
  EXPECT_TRUE(dominates(Vec{1.0, 2.0}, Vec{1.0, 3.0}));
  EXPECT_FALSE(dominates(Vec{1.0, 3.0}, Vec{1.0, 2.0}));
}

TEST(Dominance, EqualPointsDoNotDominate) {
  EXPECT_FALSE(dominates(Vec{1.0, 2.0}, Vec{1.0, 2.0}));
}

TEST(Dominance, IncomparablePoints) {
  EXPECT_FALSE(dominates(Vec{1.0, 3.0}, Vec{2.0, 2.0}));
  EXPECT_FALSE(dominates(Vec{2.0, 2.0}, Vec{1.0, 3.0}));
}

TEST(Dominance, SingleDimensionIsStrictLess) {
  EXPECT_TRUE(dominates(Vec{1.0}, Vec{2.0}));
  EXPECT_FALSE(dominates(Vec{2.0}, Vec{2.0}));
}

TEST(Dominance, IsIrreflexive) {
  common::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    Vec p = {rng.uniform(), rng.uniform(), rng.uniform()};
    EXPECT_FALSE(dominates(p, p));
  }
}

TEST(Dominance, IsAntisymmetric) {
  common::Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    Vec a = {rng.uniform(), rng.uniform(), rng.uniform()};
    Vec b = {rng.uniform(), rng.uniform(), rng.uniform()};
    EXPECT_FALSE(dominates(a, b) && dominates(b, a));
  }
}

TEST(Dominance, IsTransitive) {
  common::Rng rng(3);
  int triples_checked = 0;
  for (int i = 0; i < 5000; ++i) {
    Vec a = {rng.uniform(), rng.uniform()};
    Vec b = {rng.uniform(), rng.uniform()};
    Vec c = {rng.uniform(), rng.uniform()};
    if (dominates(a, b) && dominates(b, c)) {
      EXPECT_TRUE(dominates(a, c));
      ++triples_checked;
    }
  }
  EXPECT_GT(triples_checked, 0);  // the property was actually exercised
}

TEST(Compare, AllFourRelations) {
  EXPECT_EQ(compare(Vec{1.0, 1.0}, Vec{2.0, 2.0}), DomRelation::kDominates);
  EXPECT_EQ(compare(Vec{2.0, 2.0}, Vec{1.0, 1.0}), DomRelation::kDominatedBy);
  EXPECT_EQ(compare(Vec{1.0, 3.0}, Vec{3.0, 1.0}), DomRelation::kIncomparable);
  EXPECT_EQ(compare(Vec{1.0, 2.0}, Vec{1.0, 2.0}), DomRelation::kEqual);
}

TEST(Compare, ConsistentWithDominates) {
  common::Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    Vec a = {rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform()};
    Vec b = {rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform()};
    const DomRelation rel = compare(a, b);
    EXPECT_EQ(rel == DomRelation::kDominates, dominates(a, b));
    EXPECT_EQ(rel == DomRelation::kDominatedBy, dominates(b, a));
  }
}

TEST(Compare, SymmetryOfRelation) {
  common::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    Vec a = {rng.uniform(), rng.uniform()};
    Vec b = {rng.uniform(), rng.uniform()};
    const DomRelation ab = compare(a, b);
    const DomRelation ba = compare(b, a);
    if (ab == DomRelation::kDominates) EXPECT_EQ(ba, DomRelation::kDominatedBy);
    if (ab == DomRelation::kEqual) EXPECT_EQ(ba, DomRelation::kEqual);
    if (ab == DomRelation::kIncomparable) EXPECT_EQ(ba, DomRelation::kIncomparable);
  }
}

TEST(SkylineStats, Accumulates) {
  SkylineStats a{10, 100, 5};
  const SkylineStats b{1, 2, 3};
  a += b;
  EXPECT_EQ(a.dominance_tests, 11u);
  EXPECT_EQ(a.points_in, 102u);
  EXPECT_EQ(a.points_out, 8u);
}

}  // namespace
}  // namespace mrsky::skyline
