#include "src/skyline/estimate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/dataset/generators.hpp"
#include "src/skyline/algorithms.hpp"

namespace mrsky::skyline {
namespace {

TEST(ExpectedSkylineSize, BaseCases) {
  EXPECT_DOUBLE_EQ(expected_skyline_size(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(expected_skyline_size(1, 5), 1.0);
  EXPECT_DOUBLE_EQ(expected_skyline_size(1000, 1), 1.0);
}

TEST(ExpectedSkylineSize, TwoDimensionsIsHarmonicNumber) {
  // V(n, 2) = H_n.
  double harmonic = 0.0;
  for (int k = 1; k <= 100; ++k) harmonic += 1.0 / k;
  EXPECT_NEAR(expected_skyline_size(100, 2), harmonic, 1e-12);
}

TEST(ExpectedSkylineSize, SmallExactValues) {
  // V(2, 2) = 1 + 1/2; V(3, 2) = 11/6; V(2, 3) = 1 + ... manual recurrence:
  // V(1,3)=1; V(2,3)=V(1,3)+V(2,2)/2 = 1 + 0.75 = 1.75.
  EXPECT_NEAR(expected_skyline_size(2, 2), 1.5, 1e-12);
  EXPECT_NEAR(expected_skyline_size(3, 2), 11.0 / 6.0, 1e-12);
  EXPECT_NEAR(expected_skyline_size(2, 3), 1.75, 1e-12);
}

TEST(ExpectedSkylineSize, MonotoneInDimension) {
  for (std::size_t d = 1; d < 8; ++d) {
    EXPECT_LT(expected_skyline_size(10000, d), expected_skyline_size(10000, d + 1));
  }
}

TEST(ExpectedSkylineSize, MonotoneInCardinalityForDGe2) {
  for (std::size_t n : {10u, 100u, 1000u}) {
    EXPECT_LT(expected_skyline_size(n, 4), expected_skyline_size(n * 10, 4));
  }
}

TEST(ExpectedSkylineSize, NeverExceedsN) {
  for (std::size_t d = 1; d <= 10; ++d) {
    EXPECT_LE(expected_skyline_size(50, d), 50.0);
  }
}

TEST(ExpectedSkylineSize, MatchesMeasurementOnIndependentData) {
  // Monte-Carlo check: average skyline size over several independent
  // datasets should sit near the analytic expectation.
  const std::size_t n = 2000;
  const std::size_t d = 4;
  double total = 0.0;
  const int trials = 12;
  for (int t = 0; t < trials; ++t) {
    const auto ps = data::generate(data::Distribution::kIndependent, n, d,
                                   static_cast<std::uint64_t>(1000 + t));
    total += static_cast<double>(sfs_skyline(ps).size());
  }
  const double measured = total / trials;
  const double expected = expected_skyline_size(n, d);
  EXPECT_NEAR(measured, expected, 0.25 * expected);
}

TEST(ApproxSkylineSize, TracksExactAtLargeN) {
  // The closed form is asymptotic: within a factor ~2.5 at n = 10^5 for
  // moderate d (it drops lower-order terms).
  for (std::size_t d : {2u, 4u, 6u}) {
    const double exact = expected_skyline_size(100000, d);
    const double approx = approx_skyline_size(100000, d);
    EXPECT_GT(approx, exact * 0.3) << "d=" << d;
    EXPECT_LT(approx, exact * 2.5) << "d=" << d;
  }
}

TEST(ApproxSkylineSize, FormulaShape) {
  // d=1 -> 1; d=2 -> ln n; d=3 -> (ln n)^2/2.
  EXPECT_DOUBLE_EQ(approx_skyline_size(1000, 1), 1.0);
  EXPECT_NEAR(approx_skyline_size(1000, 2), std::log(1000.0), 1e-12);
  EXPECT_NEAR(approx_skyline_size(1000, 3), std::pow(std::log(1000.0), 2) / 2.0, 1e-9);
}

TEST(Estimate, RejectsZeroDimension) {
  EXPECT_THROW((void)expected_skyline_size(10, 0), mrsky::InvalidArgument);
  EXPECT_THROW((void)approx_skyline_size(10, 0), mrsky::InvalidArgument);
}

}  // namespace
}  // namespace mrsky::skyline
