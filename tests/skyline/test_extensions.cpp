#include "src/skyline/extensions.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "src/common/error.hpp"
#include "src/dataset/generators.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/verify.hpp"

namespace mrsky::skyline {
namespace {

using data::PointSet;

PointSet staircase() {
  // Strict 2-D staircase: 4 skyline points, 4 dominated ones.
  return PointSet(2, {
                         1.0, 8.0,  // 0: skyline
                         2.0, 6.0,  // 1: skyline
                         4.0, 3.0,  // 2: skyline
                         7.0, 1.0,  // 3: skyline
                         3.0, 8.5,  // 4: dominated by 1 (2,6)
                         5.0, 7.0,  // 5: dominated by 1
                         6.0, 4.0,  // 6: dominated by 2
                         9.0, 9.0,  // 7: dominated by all
                     });
}

// ---- k-skyband -----------------------------------------------------------

TEST(KSkyband, OneSkybandIsTheSkyline) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 400, 3, 5);
  EXPECT_TRUE(same_ids(k_skyband(ps, 1), bnl_skyline(ps)));
}

TEST(KSkyband, MonotoneInK) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 400, 3, 7);
  std::size_t previous = 0;
  for (std::size_t k = 1; k <= 5; ++k) {
    const std::size_t size = k_skyband(ps, k).size();
    EXPECT_GE(size, previous);
    previous = size;
  }
}

TEST(KSkyband, SkybandContainsSkyline) {
  const PointSet ps = data::generate(data::Distribution::kAnticorrelated, 300, 2, 9);
  const auto sky_ids = sorted_ids(bnl_skyline(ps));
  const auto band = k_skyband(ps, 3);
  std::unordered_set<data::PointId> band_ids(band.ids().begin(), band.ids().end());
  for (data::PointId id : sky_ids) EXPECT_TRUE(band_ids.contains(id));
}

TEST(KSkyband, ExactCountsOnStaircase) {
  const PointSet ps = staircase();
  EXPECT_EQ(k_skyband(ps, 1).size(), 4u);
  // Point 6 = (6,4) is dominated only by point 2 = (4,3), so it joins the
  // 2-skyband; point 7 = (9,9) is dominated by many and stays out. Point 4 =
  // (3,8.5) has two dominators (points 0 and 1), so it also stays out.
  const auto band2 = k_skyband(ps, 2);
  std::unordered_set<data::PointId> ids(band2.ids().begin(), band2.ids().end());
  EXPECT_TRUE(ids.contains(6u));
  EXPECT_FALSE(ids.contains(4u));
  EXPECT_FALSE(ids.contains(7u));
}

TEST(KSkyband, LargeKReturnsEverything) {
  const PointSet ps = staircase();
  EXPECT_EQ(k_skyband(ps, ps.size()).size(), ps.size());
}

TEST(KSkyband, RejectsZeroK) {
  EXPECT_THROW((void)k_skyband(staircase(), 0), mrsky::InvalidArgument);
}

TEST(KSkyband, StatsAreCounted) {
  SkylineStats stats;
  (void)k_skyband(staircase(), 2, &stats);
  EXPECT_EQ(stats.points_in, 8u);
  EXPECT_GT(stats.dominance_tests, 0u);
}

// ---- representative skyline ------------------------------------------------

TEST(RepresentativeSkyline, PicksAreSkylinePoints) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 500, 3, 11);
  const auto sky_ids = sorted_ids(bnl_skyline(ps));
  const auto result = representative_skyline(ps, 5);
  for (data::PointId id : result.representatives.ids()) {
    EXPECT_TRUE(std::binary_search(sky_ids.begin(), sky_ids.end(), id));
  }
}

TEST(RepresentativeSkyline, AtMostKPicks) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 500, 3, 13);
  EXPECT_LE(representative_skyline(ps, 4).representatives.size(), 4u);
}

TEST(RepresentativeSkyline, SmallSkylineReturnsAllOfIt) {
  const PointSet ps = data::generate(data::Distribution::kCorrelated, 500, 2, 15);
  const auto sky = bnl_skyline(ps);
  const auto result = representative_skyline(ps, sky.size() + 10);
  EXPECT_EQ(result.representatives.size(), sky.size());
}

TEST(RepresentativeSkyline, GreedyCoverageIsNonIncreasing) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 800, 3, 17);
  const auto result = representative_skyline(ps, 6);
  for (std::size_t i = 1; i < result.coverage.size(); ++i) {
    EXPECT_LE(result.coverage[i], result.coverage[i - 1]);
  }
}

TEST(RepresentativeSkyline, TotalCoveredMatchesSum) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 500, 2, 19);
  const auto result = representative_skyline(ps, 3);
  std::size_t sum = 0;
  for (std::size_t c : result.coverage) sum += c;
  EXPECT_EQ(result.total_covered, sum);
}

TEST(RepresentativeSkyline, FirstPickMaximisesCoverage) {
  // Point 1 (2,6) dominates {4, 5, 7} and point 2 (4,3) dominates {5, 6, 7}
  // — both cover three points, more than points 0 or 3. The greedy breaks
  // the tie toward the earlier skyline point, so the pick is id 1 with
  // coverage exactly 3.
  const auto result = representative_skyline(staircase(), 1);
  ASSERT_EQ(result.representatives.size(), 1u);
  EXPECT_EQ(result.representatives.id(0), 1u);
  EXPECT_EQ(result.coverage[0], 3u);
}

TEST(RepresentativeSkyline, EmptyInputYieldsNothing) {
  const auto result = representative_skyline(PointSet(3), 4);
  EXPECT_TRUE(result.representatives.empty());
  EXPECT_EQ(result.total_covered, 0u);
}

TEST(RepresentativeSkyline, RejectsZeroK) {
  EXPECT_THROW((void)representative_skyline(staircase(), 0), mrsky::InvalidArgument);
}

TEST(RepresentativeSkyline, DeterministicAcrossRuns) {
  const PointSet ps = data::generate(data::Distribution::kAnticorrelated, 400, 3, 21);
  const auto a = representative_skyline(ps, 5);
  const auto b = representative_skyline(ps, 5);
  EXPECT_EQ(sorted_ids(a.representatives), sorted_ids(b.representatives));
}

// ---- weighted top-k --------------------------------------------------------

TEST(TopKWeighted, ReturnsOnlySkylineMembers) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 300, 2, 23);
  const auto sky_ids = sorted_ids(bnl_skyline(ps));
  const std::vector<double> weights = {1.0, 1.0};
  for (const auto& entry : top_k_weighted(ps, weights, 10)) {
    EXPECT_TRUE(std::binary_search(sky_ids.begin(), sky_ids.end(), entry.id));
  }
}

TEST(TopKWeighted, ScoresAscend) {
  const PointSet ps = data::generate(data::Distribution::kAnticorrelated, 300, 3, 25);
  const std::vector<double> weights = {1.0, 2.0, 0.5};
  const auto ranked = top_k_weighted(ps, weights, 20);
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].score, ranked[i].score);
  }
}

TEST(TopKWeighted, ExtremeWeightSelectsAxisMinimum) {
  // Weight only attribute 0: the best-scoring skyline point must achieve the
  // dataset minimum of attribute 0 (that minimum is always on the skyline).
  const PointSet ps = data::generate(data::Distribution::kIndependent, 300, 2, 27);
  const std::vector<double> weights = {1.0, 0.0};
  const auto ranked = top_k_weighted(ps, weights, 1);
  ASSERT_EQ(ranked.size(), 1u);
  const double min0 = ps.attribute_min()[0];
  EXPECT_DOUBLE_EQ(ranked[0].score, min0);
}

TEST(TopKWeighted, KLargerThanSkylineReturnsWholeSkyline) {
  const PointSet ps = staircase();
  const std::vector<double> weights = {1.0, 1.0};
  EXPECT_EQ(top_k_weighted(ps, weights, 100).size(), 4u);
}

TEST(TopKWeighted, RejectsBadWeights) {
  const PointSet ps = staircase();
  const std::vector<double> wrong_size = {1.0};
  EXPECT_THROW((void)top_k_weighted(ps, wrong_size, 3), mrsky::InvalidArgument);
  const std::vector<double> negative = {1.0, -1.0};
  EXPECT_THROW((void)top_k_weighted(ps, negative, 3), mrsky::InvalidArgument);
}

TEST(TopKWeighted, TieBreaksById) {
  PointSet ps(2, {1.0, 2.0, 2.0, 1.0}, {9u, 4u});  // equal weighted sums
  const std::vector<double> weights = {1.0, 1.0};
  const auto ranked = top_k_weighted(ps, weights, 2);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].id, 4u);
  EXPECT_EQ(ranked[1].id, 9u);
}

}  // namespace
}  // namespace mrsky::skyline
