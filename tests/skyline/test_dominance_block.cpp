#include "src/skyline/dominance_block.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"
#include "src/core/mr_skyline.hpp"
#include "src/dataset/generators.hpp"
#include "src/dataset/normalize.hpp"
#include "src/dataset/qws.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/dominance.hpp"

namespace mrsky::skyline {
namespace {

using data::PointSet;

// ---- Reference semantics -----------------------------------------------

/// Mask-level ground truth: one scalar compare() per lane.
TileMasks reference_masks(const double* p, const double* tile, std::size_t dim) {
  TileMasks m;
  for (std::size_t lane = 0; lane < kTileWidth; ++lane) {
    std::uint32_t lt = 0;
    std::uint32_t gt = 0;
    for (std::size_t a = 0; a < dim; ++a) {
      const double q = tile[a * kTileWidth + lane];
      if (p[a] < q) lt = 1;
      if (p[a] > q) gt = 1;
    }
    m.lt |= lt << lane;
    m.gt |= gt << lane;
  }
  return m;
}

/// Packs `points` (dim-major rows, kTileWidth of them) into one tile.
std::vector<double> pack_tile(const std::vector<std::vector<double>>& points, std::size_t dim) {
  std::vector<double> tile(dim * kTileWidth, std::numeric_limits<double>::infinity());
  for (std::size_t lane = 0; lane < points.size(); ++lane) {
    for (std::size_t a = 0; a < dim; ++a) tile[a * kTileWidth + lane] = points[lane][a];
  }
  return tile;
}

DomRelation relation_from_masks(const TileMasks& m, std::size_t lane) {
  const bool lt = (m.lt >> lane) & 1u;
  const bool gt = (m.gt >> lane) & 1u;
  if (lt && !gt) return DomRelation::kDominates;
  if (gt && !lt) return DomRelation::kDominatedBy;
  if (!lt && !gt) return DomRelation::kEqual;
  return DomRelation::kIncomparable;
}

struct KernelCase {
  const char* name;
  PointSet ps;
};

std::vector<KernelCase> kernel_cases() {
  std::vector<KernelCase> cases;
  cases.push_back({"random_uniform", data::generate(data::Distribution::kIndependent, 600, 5, 11)});
  cases.push_back(
      {"anticorrelated", data::generate(data::Distribution::kAnticorrelated, 600, 4, 12)});
  // Duplicate-heavy: every coordinate snapped to a 4-level grid, so equal
  // points and per-attribute ties (neither lt nor gt) are everywhere.
  PointSet dup(3);
  common::Rng rng(13);
  for (std::size_t i = 0; i < 600; ++i) {
    std::vector<double> p(3);
    for (auto& v : p) v = std::floor(rng.uniform() * 4.0) / 4.0;
    dup.push_back(p);
  }
  cases.push_back({"duplicate_heavy", std::move(dup)});
  return cases;
}

// ---- compare_block / dominators_in_block vs scalar compare --------------

TEST(DominanceBlock, MasksMatchScalarCompareOnRandomTiles) {
  for (const auto& kc : kernel_cases()) {
    const std::size_t dim = kc.ps.dim();
    common::Rng rng(17);
    for (std::size_t trial = 0; trial < 200; ++trial) {
      std::vector<std::vector<double>> pts(kTileWidth);
      for (auto& q : pts) {
        const auto row = kc.ps.point(rng.uniform_index(kc.ps.size()));
        q.assign(row.begin(), row.end());
      }
      const auto tile = pack_tile(pts, dim);
      const auto p = kc.ps.point(rng.uniform_index(kc.ps.size()));

      const TileMasks got = compare_block(p.data(), tile.data(), dim);
      const TileMasks want = reference_masks(p.data(), tile.data(), dim);
      ASSERT_EQ(got.lt, want.lt) << kc.name << " trial " << trial;
      ASSERT_EQ(got.gt, want.gt) << kc.name << " trial " << trial;

      // Every DomRelation must be recoverable from the masks.
      std::uint32_t dominators = 0;
      for (std::size_t lane = 0; lane < kTileWidth; ++lane) {
        ASSERT_EQ(relation_from_masks(got, lane), compare(p, pts[lane]))
            << kc.name << " trial " << trial << " lane " << lane;
        if (dominates(pts[lane], p)) dominators |= std::uint32_t{1} << lane;
      }
      ASSERT_EQ(dominators_in_block(p.data(), tile.data(), dim), dominators)
          << kc.name << " trial " << trial;
    }
  }
}

TEST(DominanceBlock, DispatchAgreesWithScalarTileKernel) {
  // Whatever path compare_block dispatches to (AVX2 under MRSKY_NATIVE on a
  // capable CPU, the portable loop otherwise) must be bit-identical to the
  // always-available scalar tile kernel.
  const auto ps = data::generate(data::Distribution::kAnticorrelated, 400, 7, 21);
  common::Rng rng(22);
  for (std::size_t trial = 0; trial < 300; ++trial) {
    std::vector<std::vector<double>> pts(kTileWidth);
    for (auto& q : pts) {
      const auto row = ps.point(rng.uniform_index(ps.size()));
      q.assign(row.begin(), row.end());
    }
    const auto tile = pack_tile(pts, ps.dim());
    const auto p = ps.point(rng.uniform_index(ps.size()));
    const TileMasks a = compare_block(p.data(), tile.data(), ps.dim());
    const TileMasks b = compare_block_scalar(p.data(), tile.data(), ps.dim());
    ASSERT_EQ(a.lt, b.lt);
    ASSERT_EQ(a.gt, b.gt);
    ASSERT_EQ(dominators_in_block(p.data(), tile.data(), ps.dim()),
              dominators_in_block_scalar(p.data(), tile.data(), ps.dim()));
  }
  if (compare_block_simd_compiled()) {
    SUCCEED() << "SIMD path compiled, active=" << compare_block_simd_active();
  }
}

TEST(DominanceBlock, InfinityPaddingNeverDominates) {
  // Unused lanes are padded with +inf; they must read as dominated-by-p in
  // compare_block (gt without lt) and never as dominators of p.
  const std::size_t dim = 4;
  std::vector<std::vector<double>> pts = {{0.3, 0.4, 0.5, 0.6}};  // one live lane
  const auto tile = pack_tile(pts, dim);
  const std::vector<double> p = {0.2, 0.2, 0.2, 0.2};
  const TileMasks m = compare_block(p.data(), tile.data(), dim);
  EXPECT_EQ(m.lt & ~std::uint32_t{1}, kLaneMask & ~std::uint32_t{1});
  EXPECT_EQ(dominators_in_block(p.data(), tile.data(), dim), 0u);
}

// ---- TiledWindow --------------------------------------------------------

TEST(TiledWindow, LayoutRoundTripsAcrossTileBoundaries) {
  for (const std::size_t n : {1u, 7u, 8u, 9u, 16u, 27u}) {  // n % kTileWidth != 0 included
    const auto ps = data::generate(data::Distribution::kIndependent, n, 3, 31);
    TiledWindow w(3);
    for (std::size_t i = 0; i < n; ++i) w.push_back(ps, i);
    ASSERT_EQ(w.size(), n);
    ASSERT_EQ(w.tiles(), (n + kTileWidth - 1) / kTileWidth);
    for (std::size_t i = 0; i < n; ++i) {
      const auto p = ps.point(i);
      const double* tile = w.tile_data(i / kTileWidth);
      for (std::size_t a = 0; a < 3; ++a) {
        ASSERT_EQ(tile[a * kTileWidth + i % kTileWidth], p[a]) << "point " << i;
      }
      ASSERT_EQ(w.payload(i), i);
    }
    // The last tile's invalid lanes are +inf and masked out.
    const std::uint32_t vm = w.valid_mask(w.tiles() - 1);
    ASSERT_EQ(std::popcount(vm), static_cast<int>(n - (w.tiles() - 1) * kTileWidth));
  }
}

TEST(TiledWindow, CompactIsStableAndPreservesCoordinates) {
  const std::size_t n = 21;
  const auto ps = data::generate(data::Distribution::kIndependent, n, 4, 41);
  TiledWindow w(4);
  for (std::size_t i = 0; i < n; ++i) w.push_back(ps, i);

  // Drop a pattern crossing tile boundaries: every third point.
  std::vector<std::uint32_t> drops(w.tiles(), 0);
  std::vector<std::size_t> expect;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 3 == 1) {
      drops[i / kTileWidth] |= std::uint32_t{1} << (i % kTileWidth);
    } else {
      expect.push_back(i);
    }
  }
  w.compact(drops);

  ASSERT_EQ(w.size(), expect.size());
  for (std::size_t k = 0; k < expect.size(); ++k) {
    ASSERT_EQ(w.payload(k), expect[k]);  // stable: survivors keep their order
    const auto p = ps.point(expect[k]);
    const double* tile = w.tile_data(k / kTileWidth);
    for (std::size_t a = 0; a < 4; ++a) {
      ASSERT_EQ(tile[a * kTileWidth + k % kTileWidth], p[a]);
    }
  }
}

TEST(TiledWindow, CornerPrefilterAnswersAreSound) {
  const auto ps = data::generate(data::Distribution::kIndependent, 200, 3, 51);
  TiledWindow w(3);
  for (std::size_t i = 0; i < 64; ++i) w.push_back(ps, i);
  for (std::size_t c = 64; c < 200; ++c) {
    const auto p = ps.point(c);
    bool any_dominator = false;
    bool any_dominated = false;
    for (std::size_t i = 0; i < 64; ++i) {
      any_dominator |= dominates(ps.point(i), p);
      any_dominated |= dominates(p, ps.point(i));
    }
    // maybe_* == false must imply the relation is impossible (never the
    // converse: the corners are an over-approximation of the window).
    if (!w.maybe_dominated(p)) EXPECT_FALSE(any_dominator) << "candidate " << c;
    if (!w.maybe_dominates(p)) EXPECT_FALSE(any_dominated) << "candidate " << c;
  }
}

// ---- Counter invariance vs the pre-kernel scalar implementation ---------

PointSet qws_like(std::size_t n, std::size_t dim, std::uint64_t seed) {
  data::QwsLikeGenerator gen(dim, seed);
  return data::normalize_min_max(gen.generate_oriented(n));
}

struct GoldenRow {
  const char* name;
  PointSet ps;
  std::uint64_t bnl, sfs, dc, naive;  // dominance_tests
  std::size_t out;                    // skyline size
};

TEST(DominanceBlockGolden, CountersMatchScalarImplementation) {
  // Golden dominance_tests recorded from the scalar implementation (commit
  // 10f3a05) on fixed seeds. The cluster simulator's time model consumes
  // these counters, so the tiled kernel must reproduce them bit-exactly —
  // not merely return the same skyline.
  std::vector<GoldenRow> rows;
  rows.push_back({"qws_2000_4", qws_like(2000, 4, 2012), 23753, 12131, 63062, 416747, 91});
  rows.push_back({"qws_1500_9", qws_like(1500, 9, 2012), 72319, 29666, 193303, 556147, 219});
  rows.push_back({"anti_1200_6", data::generate(data::Distribution::kAnticorrelated, 1200, 6, 7),
                  227821, 153297, 548783, 812824, 536});
  rows.push_back({"corr_2500_5", data::generate(data::Distribution::kCorrelated, 2500, 5, 99),
                  2662, 2499, 5785, 66043, 1});

  for (const auto& row : rows) {
    const std::uint64_t expected[] = {row.bnl, row.sfs, row.dc, row.naive};
    const Algorithm algos[] = {Algorithm::kBnl, Algorithm::kSfs, Algorithm::kDivideConquer,
                               Algorithm::kNaive};
    for (std::size_t k = 0; k < 4; ++k) {
      SkylineStats stats;
      const PointSet sky = compute_skyline(row.ps, algos[k], &stats);
      EXPECT_EQ(stats.dominance_tests, expected[k])
          << row.name << " " << to_string(algos[k]);
      EXPECT_EQ(sky.size(), row.out) << row.name << " " << to_string(algos[k]);
    }
  }
}

// ---- Cross-algorithm and prefilter on/off byte-identity -----------------

void expect_identical(const PointSet& a, const PointSet& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_EQ(a.dim(), b.dim()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.id(i), b.id(i)) << what << " row " << i;
    const auto pa = a.point(i);
    const auto pb = b.point(i);
    for (std::size_t d = 0; d < a.dim(); ++d) {
      ASSERT_EQ(pa[d], pb[d]) << what << " row " << i << " attr " << d;
    }
  }
}

TEST(DominanceBlock, AllAlgorithmsAgreeWithNaiveGroundTruth) {
  const auto ps = qws_like(1200, 6, 77);
  const PointSet truth = naive_skyline(ps);
  for (auto algo : {Algorithm::kBnl, Algorithm::kSfs, Algorithm::kDivideConquer}) {
    const PointSet sky = compute_skyline(ps, algo);
    expect_identical(sky, truth, to_string(algo).c_str());
  }
}

TEST(DominanceBlock, PrefilterToggleChangesNeitherResultsNorCounters) {
  const auto ps = qws_like(1500, 5, 123);
  for (auto algo : {Algorithm::kBnl, Algorithm::kSfs, Algorithm::kDivideConquer}) {
    SkylineStats on_stats;
    SkylineStats off_stats;
    set_prefilter_enabled(true);
    const PointSet with = compute_skyline(ps, algo, &on_stats);
    set_prefilter_enabled(false);
    const PointSet without = compute_skyline(ps, algo, &off_stats);
    set_prefilter_enabled(true);
    expect_identical(with, without, to_string(algo).c_str());
    EXPECT_EQ(on_stats.dominance_tests, off_stats.dominance_tests) << to_string(algo);
    EXPECT_EQ(off_stats.prefilter_skips, 0u) << to_string(algo);
  }
  // On this workload the filter must actually engage somewhere, otherwise the
  // toggle test is vacuous. (D&C's small cross-filter windows guarantee it.)
  SkylineStats stats;
  const PointSet dc = compute_skyline(ps, Algorithm::kDivideConquer, &stats);
  EXPECT_FALSE(dc.empty());
  EXPECT_GT(stats.prefilter_skips, 0u);
}

TEST(DominanceBlock, PipelineSequentialAndThreadedAreByteIdentical) {
  const auto ps = qws_like(3000, 6, 99);
  core::MRSkylineConfig seq;
  seq.servers = 4;
  core::MRSkylineConfig par = seq;
  par.run_options.mode = mr::ExecutionMode::kThreads;
  par.run_options.num_threads = 4;
  const auto a = core::run_mr_skyline(ps, seq);
  const auto b = core::run_mr_skyline(ps, par);
  expect_identical(a.skyline, b.skyline, "seq vs threads");
}

}  // namespace
}  // namespace mrsky::skyline
