#include "src/skyline/sliding_window.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/dataset/generators.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/verify.hpp"

namespace mrsky::skyline {
namespace {

using data::PointSet;

/// Reference: skyline of the last `capacity` pushes, computed from scratch.
PointSet reference_window_skyline(const PointSet& stream, std::size_t upto,
                                  std::size_t capacity) {
  const std::size_t start = upto >= capacity ? upto - capacity : 0;
  PointSet window(stream.dim());
  for (std::size_t i = start; i < upto; ++i) window.push_back(stream.point(i), stream.id(i));
  return bnl_skyline(window);
}

TEST(SlidingWindowSkyline, Validation) {
  EXPECT_THROW(SlidingWindowSkyline(0, 4), mrsky::InvalidArgument);
  EXPECT_THROW(SlidingWindowSkyline(2, 0), mrsky::InvalidArgument);
  SlidingWindowSkyline w(2, 4);
  EXPECT_THROW(w.push(std::vector<double>{1.0}, 0), mrsky::InvalidArgument);
}

TEST(SlidingWindowSkyline, FillsUpToCapacity) {
  SlidingWindowSkyline w(2, 3);
  for (data::PointId i = 0; i < 5; ++i) {
    w.push(std::vector<double>{1.0 + i, 1.0 + i}, i);
  }
  EXPECT_EQ(w.size(), 3u);
}

TEST(SlidingWindowSkyline, MatchesBatchRecomputeAtEveryStep) {
  const PointSet stream = data::generate(data::Distribution::kAnticorrelated, 300, 3, 71);
  SlidingWindowSkyline w(3, 40);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    w.push(stream.point(i), stream.id(i));
    const PointSet expected = reference_window_skyline(stream, i + 1, 40);
    EXPECT_TRUE(same_ids(w.skyline(), expected)) << "after push " << i;
  }
}

TEST(SlidingWindowSkyline, EvictedSkylineMemberResurrectsDominatedPoint) {
  SlidingWindowSkyline w(2, 2);
  w.push(std::vector<double>{1.0, 1.0}, 0);  // dominates the next point
  w.push(std::vector<double>{2.0, 2.0}, 1);
  EXPECT_EQ(w.skyline().size(), 1u);
  // Pushing a third point evicts id 0; id 1 must resurface.
  w.push(std::vector<double>{3.0, 0.5}, 2);
  const auto ids = sorted_ids(w.skyline());
  EXPECT_EQ(ids, (std::vector<data::PointId>{1u, 2u}));
}

TEST(SlidingWindowSkyline, EvictingNonSkylinePointAvoidsRebuild) {
  SlidingWindowSkyline w(2, 3);
  w.push(std::vector<double>{5.0, 5.0}, 0);  // oldest, dominated by id 2
  w.push(std::vector<double>{6.0, 6.0}, 1);  // dominated by id 2
  w.push(std::vector<double>{1.0, 1.0}, 2);  // the skyline
  ASSERT_EQ(w.skyline().size(), 1u);
  const std::size_t before = w.rebuilds();
  // Evicting ids 0 and 1 (both non-skyline) must not trigger rebuilds.
  w.push(std::vector<double>{7.0, 7.0}, 3);
  w.push(std::vector<double>{8.0, 8.0}, 4);
  ASSERT_EQ(w.skyline().size(), 1u);
  EXPECT_EQ(w.skyline().id(0), 2u);
  EXPECT_EQ(w.rebuilds(), before);
}

TEST(SlidingWindowSkyline, StreamOfImprovingPointsKeepsOnlyLatestBest) {
  SlidingWindowSkyline w(2, 10);
  for (data::PointId i = 0; i < 10; ++i) {
    const double v = 10.0 - static_cast<double>(i);
    w.push(std::vector<double>{v, v}, i);
  }
  ASSERT_EQ(w.skyline().size(), 1u);
  EXPECT_EQ(w.skyline().id(0), 9u);
}

TEST(SlidingWindowSkyline, QwsStreamLongRun) {
  const PointSet stream = data::generate(data::Distribution::kIndependent, 500, 4, 73);
  SlidingWindowSkyline w(4, 64);
  for (std::size_t i = 0; i < stream.size(); ++i) w.push(stream.point(i), stream.id(i));
  const PointSet expected = reference_window_skyline(stream, stream.size(), 64);
  EXPECT_TRUE(same_ids(w.skyline(), expected));
  // Rebuilds happen, but far fewer than pushes (the amortisation claim).
  EXPECT_GT(w.rebuilds(), 0u);
  EXPECT_LT(w.rebuilds(), stream.size() / 2);
}

// ---------------------------------------------------------------------------
// Property tests for the eviction/rebuild contract (the amortisation claim in
// the header comment) and the tiled-kernel fold path.

namespace {
bool contains_id(const PointSet& ps, data::PointId id) {
  for (data::PointId sid : ps.ids()) {
    if (sid == id) return true;
  }
  return false;
}
}  // namespace

TEST(SlidingWindowSkyline, EvictingDominatedPointNeverTriggersRebuild) {
  // Randomized form of the contract: whenever the evicted point is NOT a
  // cached skyline member, querying the skyline must not rebuild.
  const PointSet stream = data::generate(data::Distribution::kIndependent, 400, 3, 911);
  SlidingWindowSkyline w(3, 32);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const bool full = w.size() == w.capacity();
    const data::PointId victim = full ? stream.id(i - w.capacity()) : 0;
    const bool victim_on_skyline = full && contains_id(w.skyline(), victim);
    const std::size_t before = w.rebuilds();
    w.push(stream.point(i), stream.id(i));
    (void)w.skyline();
    if (full && !victim_on_skyline) {
      EXPECT_EQ(w.rebuilds(), before) << "dominated eviction rebuilt at push " << i;
    }
  }
}

TEST(SlidingWindowSkyline, EvictingSkylineMemberAlwaysDirtiesCache) {
  // Dual contract: whenever the evicted point IS a cached skyline member, the
  // next query must rebuild (exactly once).
  const PointSet stream = data::generate(data::Distribution::kAnticorrelated, 400, 3, 912);
  SlidingWindowSkyline w(3, 32);
  std::size_t skyline_evictions = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const bool full = w.size() == w.capacity();
    const bool victim_on_skyline =
        full && contains_id(w.skyline(), stream.id(i - w.capacity()));
    const std::size_t before = w.rebuilds();
    w.push(stream.point(i), stream.id(i));
    (void)w.skyline();
    if (victim_on_skyline) {
      ++skyline_evictions;
      EXPECT_EQ(w.rebuilds(), before + 1) << "skyline eviction did not rebuild at push " << i;
    }
  }
  ASSERT_GT(skyline_evictions, 0u) << "stream never evicted a skyline member; test is vacuous";
}

TEST(SlidingWindowSkyline, RebuildsCounterGoldenOnFixedSeeds) {
  // Pins the amortisation behaviour: a rebuild happens exactly when a skyline
  // member leaves, and the eviction schedule for a fixed seed is fixed.
  // Update deliberately if eviction semantics change.
  struct Golden {
    data::Distribution dist;
    std::uint64_t seed;
    std::size_t expected_rebuilds;
  };
  const Golden goldens[] = {
      {data::Distribution::kIndependent, 73, 134},
      {data::Distribution::kAnticorrelated, 71, 243},
      {data::Distribution::kCorrelated, 42, 20},
  };
  for (const auto& g : goldens) {
    const PointSet stream = data::generate(g.dist, 500, 4, g.seed);
    SlidingWindowSkyline w(4, 64);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      w.push(stream.point(i), stream.id(i));
      (void)w.skyline();  // force eager rebuilds so the count is per-eviction
    }
    EXPECT_EQ(w.rebuilds(), g.expected_rebuilds)
        << "dist=" << static_cast<int>(g.dist) << " seed=" << g.seed;
  }
}

TEST(SlidingWindowSkyline, DominanceTestCountersAreGoldenAndPrefilterInvariant) {
  // The fold path charges exactly what the scalar two-pass loop would, so the
  // count is a build-invariant golden AND unchanged by the corner prefilter
  // (a skip charges the full would-be scan).
  auto run = [] {
    const PointSet stream = data::generate(data::Distribution::kIndependent, 300, 3, 500);
    SlidingWindowSkyline w(3, 48);
    for (std::size_t i = 0; i < stream.size(); ++i) w.push(stream.point(i), stream.id(i));
    (void)w.skyline();
    return w.stats();
  };
  const bool saved = prefilter_enabled();
  set_prefilter_enabled(true);
  const SkylineStats with = run();
  set_prefilter_enabled(false);
  const SkylineStats without = run();
  set_prefilter_enabled(saved);
  EXPECT_EQ(with.dominance_tests, without.dominance_tests);
  EXPECT_GT(with.prefilter_skips, without.prefilter_skips);
  EXPECT_EQ(with.dominance_tests, 384u);
}

TEST(SlidingWindowSkyline, CapacityOneWindowHoldsOnlyTheLatest) {
  SlidingWindowSkyline w(2, 1);
  for (data::PointId i = 0; i < 4; ++i) {
    w.push(std::vector<double>{1.0 + i, 4.0 - i}, i);
    ASSERT_EQ(w.skyline().size(), 1u);
    EXPECT_EQ(w.skyline().id(0), i);
  }
}

TEST(SlidingWindowSkyline, DuplicateCoordinatesCoexistAndEvictIndependently) {
  SlidingWindowSkyline w(2, 3);
  w.push(std::vector<double>{1.0, 1.0}, 0);
  w.push(std::vector<double>{1.0, 1.0}, 1);  // tie: neither dominates
  ASSERT_EQ(w.skyline().size(), 2u);
  // Evicting one duplicate must leave the other on the skyline; the evicted
  // twin was a skyline member, so this is a rebuild case.
  w.push(std::vector<double>{2.0, 2.0}, 2);
  w.push(std::vector<double>{3.0, 3.0}, 3);  // evicts id 0
  EXPECT_TRUE(contains_id(w.skyline(), 1));
  EXPECT_FALSE(contains_id(w.skyline(), 0));
}

// ---------------------------------------------------------------------------
// Time windows.

TEST(SlidingWindowSkyline, TimeWindowValidation) {
  EXPECT_THROW(SlidingWindowSkyline::by_time(2, 0), mrsky::InvalidArgument);
  SlidingWindowSkyline w = SlidingWindowSkyline::by_time(2, 5);
  EXPECT_EQ(w.policy(), WindowPolicy::kTime);
  EXPECT_EQ(w.span_ticks(), 5u);
  w.push(std::vector<double>{1.0, 1.0}, 0, 10);
  EXPECT_THROW(w.push(std::vector<double>{2.0, 2.0}, 1, 9), mrsky::InvalidArgument);  // clock ran backwards
  SlidingWindowSkyline count(2, 4);
  EXPECT_THROW(count.push(std::vector<double>{1.0, 1.0}, 0, 1), mrsky::InvalidArgument);
  EXPECT_THROW(count.advance(1), mrsky::InvalidArgument);
}

TEST(SlidingWindowSkyline, TimeWindowExpiresExactlyAtSpanBoundary) {
  SlidingWindowSkyline w = SlidingWindowSkyline::by_time(2, 3);
  w.push(std::vector<double>{1.0, 1.0}, 0, 10);
  w.advance(12);  // stamp 10 still inside (12 - 3, 12]
  EXPECT_EQ(w.size(), 1u);
  w.advance(13);  // 10 + 3 <= 13: expired
  EXPECT_EQ(w.size(), 0u);
  EXPECT_EQ(w.skyline().size(), 0u);
}

TEST(SlidingWindowSkyline, TimeWindowExpiryOfSkylineMemberResurrectsDominated) {
  SlidingWindowSkyline w = SlidingWindowSkyline::by_time(2, 10);
  w.push(std::vector<double>{1.0, 1.0}, 0, 1);
  w.push(std::vector<double>{2.0, 2.0}, 1, 5);  // dominated by id 0
  ASSERT_EQ(w.skyline().size(), 1u);
  const std::size_t before = w.rebuilds();
  w.advance(11);  // id 0 (stamp 1) expires; id 1 (stamp 5) survives
  ASSERT_EQ(w.skyline().size(), 1u);
  EXPECT_EQ(w.skyline().id(0), 1u);
  EXPECT_EQ(w.rebuilds(), before + 1);
}

TEST(SlidingWindowSkyline, UnstampedPushOnTimeWindowUsesCurrentTick) {
  SlidingWindowSkyline w = SlidingWindowSkyline::by_time(2, 2);
  w.push(std::vector<double>{1.0, 1.0}, 0, 7);
  w.push(std::vector<double>{0.5, 2.0}, 1);  // stamped 7 as well
  w.advance(9);                              // both expire together
  EXPECT_EQ(w.size(), 0u);
}

TEST(SlidingWindowSkyline, TimeWindowMatchesBatchRecomputeAtEveryStep) {
  const PointSet stream = data::generate(data::Distribution::kClustered, 300, 3, 77);
  const std::uint64_t span = 25;
  SlidingWindowSkyline w = SlidingWindowSkyline::by_time(3, span);
  common::Rng rng(0x51d0ull);
  std::uint64_t tick = 0;
  std::vector<std::pair<std::uint64_t, std::size_t>> stamped;  // (stamp, row)
  for (std::size_t i = 0; i < stream.size(); ++i) {
    tick += rng.uniform_index(4);  // bursty clock: 0-3 ticks between arrivals
    w.push(stream.point(i), stream.id(i), tick);
    stamped.emplace_back(tick, i);
    PointSet alive(stream.dim());
    for (const auto& [stamp, row] : stamped) {
      if (stamp + span > tick) alive.push_back(stream.point(row), stream.id(row));
    }
    EXPECT_TRUE(same_ids(w.skyline(), bnl_skyline(alive))) << "after push " << i;
  }
}

}  // namespace
}  // namespace mrsky::skyline
