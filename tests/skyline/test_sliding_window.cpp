#include "src/skyline/sliding_window.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/dataset/generators.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/verify.hpp"

namespace mrsky::skyline {
namespace {

using data::PointSet;

/// Reference: skyline of the last `capacity` pushes, computed from scratch.
PointSet reference_window_skyline(const PointSet& stream, std::size_t upto,
                                  std::size_t capacity) {
  const std::size_t start = upto >= capacity ? upto - capacity : 0;
  PointSet window(stream.dim());
  for (std::size_t i = start; i < upto; ++i) window.push_back(stream.point(i), stream.id(i));
  return bnl_skyline(window);
}

TEST(SlidingWindowSkyline, Validation) {
  EXPECT_THROW(SlidingWindowSkyline(0, 4), mrsky::InvalidArgument);
  EXPECT_THROW(SlidingWindowSkyline(2, 0), mrsky::InvalidArgument);
  SlidingWindowSkyline w(2, 4);
  EXPECT_THROW(w.push(std::vector<double>{1.0}, 0), mrsky::InvalidArgument);
}

TEST(SlidingWindowSkyline, FillsUpToCapacity) {
  SlidingWindowSkyline w(2, 3);
  for (data::PointId i = 0; i < 5; ++i) {
    w.push(std::vector<double>{1.0 + i, 1.0 + i}, i);
  }
  EXPECT_EQ(w.size(), 3u);
}

TEST(SlidingWindowSkyline, MatchesBatchRecomputeAtEveryStep) {
  const PointSet stream = data::generate(data::Distribution::kAnticorrelated, 300, 3, 71);
  SlidingWindowSkyline w(3, 40);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    w.push(stream.point(i), stream.id(i));
    const PointSet expected = reference_window_skyline(stream, i + 1, 40);
    EXPECT_TRUE(same_ids(w.skyline(), expected)) << "after push " << i;
  }
}

TEST(SlidingWindowSkyline, EvictedSkylineMemberResurrectsDominatedPoint) {
  SlidingWindowSkyline w(2, 2);
  w.push(std::vector<double>{1.0, 1.0}, 0);  // dominates the next point
  w.push(std::vector<double>{2.0, 2.0}, 1);
  EXPECT_EQ(w.skyline().size(), 1u);
  // Pushing a third point evicts id 0; id 1 must resurface.
  w.push(std::vector<double>{3.0, 0.5}, 2);
  const auto ids = sorted_ids(w.skyline());
  EXPECT_EQ(ids, (std::vector<data::PointId>{1u, 2u}));
}

TEST(SlidingWindowSkyline, EvictingNonSkylinePointAvoidsRebuild) {
  SlidingWindowSkyline w(2, 3);
  w.push(std::vector<double>{5.0, 5.0}, 0);  // oldest, dominated by id 2
  w.push(std::vector<double>{6.0, 6.0}, 1);  // dominated by id 2
  w.push(std::vector<double>{1.0, 1.0}, 2);  // the skyline
  ASSERT_EQ(w.skyline().size(), 1u);
  const std::size_t before = w.rebuilds();
  // Evicting ids 0 and 1 (both non-skyline) must not trigger rebuilds.
  w.push(std::vector<double>{7.0, 7.0}, 3);
  w.push(std::vector<double>{8.0, 8.0}, 4);
  ASSERT_EQ(w.skyline().size(), 1u);
  EXPECT_EQ(w.skyline().id(0), 2u);
  EXPECT_EQ(w.rebuilds(), before);
}

TEST(SlidingWindowSkyline, StreamOfImprovingPointsKeepsOnlyLatestBest) {
  SlidingWindowSkyline w(2, 10);
  for (data::PointId i = 0; i < 10; ++i) {
    const double v = 10.0 - static_cast<double>(i);
    w.push(std::vector<double>{v, v}, i);
  }
  ASSERT_EQ(w.skyline().size(), 1u);
  EXPECT_EQ(w.skyline().id(0), 9u);
}

TEST(SlidingWindowSkyline, QwsStreamLongRun) {
  const PointSet stream = data::generate(data::Distribution::kIndependent, 500, 4, 73);
  SlidingWindowSkyline w(4, 64);
  for (std::size_t i = 0; i < stream.size(); ++i) w.push(stream.point(i), stream.id(i));
  const PointSet expected = reference_window_skyline(stream, stream.size(), 64);
  EXPECT_TRUE(same_ids(w.skyline(), expected));
  // Rebuilds happen, but far fewer than pushes (the amortisation claim).
  EXPECT_GT(w.rebuilds(), 0u);
  EXPECT_LT(w.rebuilds(), stream.size() / 2);
}

}  // namespace
}  // namespace mrsky::skyline
