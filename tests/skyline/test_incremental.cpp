#include "src/skyline/incremental.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/dataset/generators.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/verify.hpp"

namespace mrsky::skyline {
namespace {

using data::PointSet;

TEST(IncrementalSkyline, StartsEmpty) {
  IncrementalSkyline inc(2);
  EXPECT_EQ(inc.size(), 0u);
}

TEST(IncrementalSkyline, FirstInsertAlwaysEnters) {
  IncrementalSkyline inc(2);
  EXPECT_TRUE(inc.insert(std::vector<double>{5.0, 5.0}, 0));
  EXPECT_EQ(inc.size(), 1u);
}

TEST(IncrementalSkyline, DominatedInsertRejected) {
  IncrementalSkyline inc(2);
  (void)inc.insert(std::vector<double>{1.0, 1.0}, 0);
  EXPECT_FALSE(inc.insert(std::vector<double>{2.0, 2.0}, 1));
  EXPECT_EQ(inc.size(), 1u);
}

TEST(IncrementalSkyline, DominatingInsertEvicts) {
  IncrementalSkyline inc(2);
  (void)inc.insert(std::vector<double>{3.0, 3.0}, 0);
  (void)inc.insert(std::vector<double>{4.0, 2.0}, 1);
  EXPECT_TRUE(inc.insert(std::vector<double>{1.0, 1.0}, 2));  // dominates both
  ASSERT_EQ(inc.size(), 1u);
  EXPECT_EQ(inc.skyline().id(0), 2u);
}

TEST(IncrementalSkyline, IncomparableInsertCoexists) {
  IncrementalSkyline inc(2);
  (void)inc.insert(std::vector<double>{1.0, 5.0}, 0);
  EXPECT_TRUE(inc.insert(std::vector<double>{5.0, 1.0}, 1));
  EXPECT_EQ(inc.size(), 2u);
}

TEST(IncrementalSkyline, DuplicateInsertKept) {
  IncrementalSkyline inc(2);
  (void)inc.insert(std::vector<double>{1.0, 1.0}, 0);
  EXPECT_TRUE(inc.insert(std::vector<double>{1.0, 1.0}, 1));  // equal: undominated
  EXPECT_EQ(inc.size(), 2u);
}

TEST(IncrementalSkyline, BulkLoadMatchesBnl) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 500, 3, 31);
  IncrementalSkyline inc(ps);
  EXPECT_TRUE(same_ids(inc.skyline(), bnl_skyline(ps)));
}

TEST(IncrementalSkyline, StreamMatchesBatchRecompute) {
  // Inserting points one by one must end at exactly the batch skyline.
  const PointSet ps = data::generate(data::Distribution::kAnticorrelated, 400, 3, 13);
  IncrementalSkyline inc(ps.dim());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    (void)inc.insert(ps.point(i), ps.id(i));
  }
  EXPECT_TRUE(same_ids(inc.skyline(), bnl_skyline(ps)));
}

TEST(IncrementalSkyline, StreamOrderIrrelevant) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 300, 2, 7);
  IncrementalSkyline forward(ps.dim());
  IncrementalSkyline backward(ps.dim());
  for (std::size_t i = 0; i < ps.size(); ++i) (void)forward.insert(ps.point(i), ps.id(i));
  for (std::size_t i = ps.size(); i-- > 0;) (void)backward.insert(ps.point(i), ps.id(i));
  EXPECT_TRUE(same_ids(forward.skyline(), backward.skyline()));
}

TEST(IncrementalSkyline, InsertReturnValueMatchesMembership) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 200, 3, 3);
  IncrementalSkyline inc(ps.dim());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const bool entered = inc.insert(ps.point(i), ps.id(i));
    bool found = false;
    for (data::PointId id : inc.skyline().ids()) {
      if (id == ps.id(i)) found = true;
    }
    EXPECT_EQ(entered, found);
  }
}

TEST(IncrementalSkyline, DimensionMismatchThrows) {
  IncrementalSkyline inc(3);
  EXPECT_THROW(inc.insert(std::vector<double>{1.0, 2.0}, 0), mrsky::InvalidArgument);
}

TEST(IncrementalSkyline, StatsAccumulate) {
  IncrementalSkyline inc(2);
  (void)inc.insert(std::vector<double>{1.0, 5.0}, 0);
  (void)inc.insert(std::vector<double>{5.0, 1.0}, 1);
  (void)inc.insert(std::vector<double>{3.0, 3.0}, 2);
  EXPECT_GT(inc.stats().dominance_tests, 0u);
  EXPECT_EQ(inc.stats().points_in, 3u);
}

}  // namespace
}  // namespace mrsky::skyline
