// Paper-scale smoke: the full pipeline at N = 100k, d = 10 (the Fig. 5(b) /
// Fig. 6 headline cell) must stay correct and tractable in-process. Guarded
// by generous wall-time assertions so a pathological regression (e.g. the
// d=2 duplicate-pile bug this repo's history fixed, which inflated one run
// by 800x) fails loudly rather than slowing CI quietly.
#include <gtest/gtest.h>

#include "src/common/timer.hpp"
#include "src/core/mr_skyline.hpp"
#include "src/core/optimality.hpp"
#include "src/dataset/normalize.hpp"
#include "src/dataset/qws.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/verify.hpp"

namespace mrsky {
namespace {

TEST(Scale, HeadlineCellEndToEnd) {
  common::Timer timer;
  data::QwsLikeGenerator gen(10, 2012);
  const data::PointSet ps = data::normalize_min_max(gen.generate_oriented(100000));

  core::MRSkylineConfig config;
  config.scheme = part::Scheme::kAngular;
  config.servers = 8;
  const auto result = core::run_mr_skyline(ps, config);

  // Correctness against an independent sequential algorithm.
  EXPECT_TRUE(skyline::same_ids(result.skyline, skyline::sfs_skyline(ps)));

  // Plausibility of the headline quantities (loose bands around the values
  // EXPERIMENTS.md records, so the shape claims stay anchored).
  EXPECT_GT(result.skyline.size(), 500u);
  EXPECT_LT(result.skyline.size(), 10000u);
  const auto opt = core::local_skyline_optimality(result.local_skylines, result.skyline);
  EXPECT_GT(opt.mean_optimality, 0.10);

  // Tractability: the whole cell runs in seconds, not minutes, in-process.
  EXPECT_LT(timer.elapsed_seconds(), 120.0);
}

TEST(Scale, AllSchemesAgreeAtScale) {
  data::QwsLikeGenerator gen(8, 2013);
  const data::PointSet ps = data::normalize_min_max(gen.generate_oriented(50000));
  const auto reference = skyline::sfs_skyline(ps);
  for (part::Scheme scheme : {part::Scheme::kDimensional, part::Scheme::kGrid,
                              part::Scheme::kAngular}) {
    core::MRSkylineConfig config;
    config.scheme = scheme;
    config.servers = 8;
    const auto result = core::run_mr_skyline(ps, config);
    EXPECT_TRUE(skyline::same_ids(result.skyline, reference)) << part::to_string(scheme);
  }
}

}  // namespace
}  // namespace mrsky
