// Exhaustive small-case testing: enumerate EVERY 2-D dataset with up to four
// points and coordinates in {0, 1, 2}, and check that all four scan
// algorithms, the bounded BNL and both index traversals agree with a
// first-principles dominance check. Randomised suites sample the space;
// this one covers a small corner of it completely — ties, duplicates and
// degenerate layouts included, which is where skyline bugs live.
#include <gtest/gtest.h>

#include <vector>

#include "src/dataset/point_set.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/bnl_bounded.hpp"
#include "src/skyline/verify.hpp"
#include "src/spatial/bbs.hpp"
#include "src/spatial/nn_skyline.hpp"

namespace mrsky {
namespace {

/// First-principles reference: id list of undominated points.
std::vector<data::PointId> reference_skyline(const data::PointSet& ps) {
  std::vector<data::PointId> out;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < ps.size() && !dominated; ++j) {
      if (i != j && skyline::dominates(ps.point(j), ps.point(i))) dominated = true;
    }
    if (!dominated) out.push_back(ps.id(i));
  }
  return out;
}

/// Decodes dataset index `code` into n points over the 3x3 coordinate grid.
data::PointSet decode(std::size_t code, std::size_t n) {
  data::PointSet ps(2);
  for (std::size_t i = 0; i < n; ++i) {
    const auto cell = code % 9;
    code /= 9;
    ps.push_back(std::vector<double>{static_cast<double>(cell % 3),
                                     static_cast<double>(cell / 3)});
  }
  return ps;
}

class ExhaustiveSmall : public testing::TestWithParam<std::size_t /*n*/> {};

TEST_P(ExhaustiveSmall, AllAlgorithmsMatchReference) {
  const std::size_t n = GetParam();
  std::size_t total = 1;
  for (std::size_t i = 0; i < n; ++i) total *= 9;

  for (std::size_t code = 0; code < total; ++code) {
    const data::PointSet ps = decode(code, n);
    const auto expected = reference_skyline(ps);

    auto check = [&](const data::PointSet& sky, const char* what) {
      ASSERT_EQ(sorted_ids(sky), expected) << what << " on dataset code " << code;
    };
    check(skyline::bnl_skyline(ps), "bnl");
    check(skyline::sfs_skyline(ps), "sfs");
    check(skyline::dc_skyline(ps), "dc");
    check(skyline::bnl_skyline_bounded(ps, 1), "bnl-bounded-w1");
    check(skyline::bnl_skyline_bounded(ps, 2), "bnl-bounded-w2");
    check(spatial::bbs_skyline(ps), "bbs");
    check(spatial::nn_skyline(ps), "nn");
  }
}

INSTANTIATE_TEST_SUITE_P(UpToFourPoints, ExhaustiveSmall,
                         testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{3},
                                         std::size_t{4}),
                         [](const auto& info) { return "n" + std::to_string(info.param); });

}  // namespace
}  // namespace mrsky
