// Cross-module integration tests: the full paper pipeline from raw QWS-like
// measurements to figure-style outputs, exercised end-to-end the way the
// bench harness drives it.
#include <gtest/gtest.h>

#include <map>

#include "src/core/mr_skyline.hpp"
#include "src/core/optimality.hpp"
#include "src/dataset/io.hpp"
#include "src/dataset/normalize.hpp"
#include "src/dataset/qws.hpp"
#include "src/mapreduce/cluster.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/verify.hpp"

namespace mrsky {
namespace {

data::PointSet qws_workload(std::size_t n, std::size_t dim, std::uint64_t seed) {
  data::QwsLikeGenerator gen(dim, seed);
  return data::normalize_min_max(gen.generate_oriented(n));
}

core::MRSkylineResult run_scheme(const data::PointSet& ps, part::Scheme scheme,
                                 std::size_t servers = 8) {
  core::MRSkylineConfig config;
  config.scheme = scheme;
  config.servers = servers;
  return core::run_mr_skyline(ps, config);
}

TEST(EndToEnd, AllThreeSchemesAgreeOnQwsWorkload) {
  const auto ps = qws_workload(3000, 6, 101);
  const auto reference = skyline::bnl_skyline(ps);
  for (part::Scheme scheme : {part::Scheme::kDimensional, part::Scheme::kGrid,
                              part::Scheme::kAngular}) {
    const auto result = run_scheme(ps, scheme);
    EXPECT_TRUE(skyline::same_ids(result.skyline, reference)) << part::to_string(scheme);
  }
}

TEST(EndToEnd, AngularShufflesLessThanOthersAtHighDim) {
  // The mechanism behind Fig. 5: MR-Angle sends fewer local-skyline points
  // into the merge, so Job 2's input (= Job 1 shuffle output survivors) is
  // smallest for angular partitioning.
  const auto ps = qws_workload(4000, 8, 103);
  const auto angle = run_scheme(ps, part::Scheme::kAngular);
  const auto dim = run_scheme(ps, part::Scheme::kDimensional);
  const auto opt_angle = core::local_skyline_optimality(angle.local_skylines, angle.skyline);
  const auto opt_dim = core::local_skyline_optimality(dim.local_skylines, dim.skyline);
  EXPECT_LT(opt_angle.local_total, opt_dim.local_total);
}

TEST(EndToEnd, SimulatedTimeRankingMatchesPaperAtScale) {
  // Fig. 5(b) shape at reduced scale: on QWS-like data at d=8, MR-Angle
  // clearly beats MR-Dim and is at worst within a whisker of MR-Grid (the
  // full-scale ranking lives in bench/fig5_processing_time; EXPERIMENTS.md
  // discusses the angle-vs-grid margin).
  const auto ps = qws_workload(6000, 8, 105);
  mr::ClusterModel model;
  model.servers = 8;
  const double t_angle = run_scheme(ps, part::Scheme::kAngular).simulate(model).total_seconds();
  const double t_grid = run_scheme(ps, part::Scheme::kGrid).simulate(model).total_seconds();
  const double t_dim = run_scheme(ps, part::Scheme::kDimensional).simulate(model).total_seconds();
  EXPECT_LE(t_angle, t_grid * 1.05);
  EXPECT_LT(t_angle, t_dim);
}

TEST(EndToEnd, OptimalityRankingMatchesPaper) {
  // Fig. 7 shape: optimality(MR-Angle) > optimality(MR-Grid and MR-Dim).
  const auto ps = qws_workload(4000, 6, 107);
  std::map<part::Scheme, double> optimality;
  for (part::Scheme scheme : {part::Scheme::kDimensional, part::Scheme::kGrid,
                              part::Scheme::kAngular}) {
    const auto result = run_scheme(ps, scheme);
    optimality[scheme] =
        core::local_skyline_optimality(result.local_skylines, result.skyline).mean_optimality;
  }
  EXPECT_GT(optimality[part::Scheme::kAngular], optimality[part::Scheme::kDimensional]);
  EXPECT_GT(optimality[part::Scheme::kAngular], optimality[part::Scheme::kGrid]);
}

TEST(EndToEnd, ScalabilityCurveDecreasesAndSaturates) {
  // Fig. 6 shape: total simulated time decreases with servers; the marginal
  // improvement from 24 to 32 servers is much smaller than from 4 to 8.
  const auto ps = qws_workload(5000, 8, 109);
  const auto result = run_scheme(ps, part::Scheme::kAngular, 16);
  std::map<std::size_t, double> total;
  for (std::size_t servers : {4u, 8u, 24u, 32u}) {
    mr::ClusterModel model;
    model.servers = servers;
    total[servers] = result.simulate(model).total_seconds();
  }
  EXPECT_GT(total[4], total[8]);
  EXPECT_GE(total[8], total[24]);
  EXPECT_GE(total[24], total[32]);
  const double early_gain = total[4] - total[8];
  const double late_gain = total[24] - total[32];
  EXPECT_GT(early_gain, late_gain);
}

TEST(EndToEnd, MapTimeDropsFasterThanReduceTime) {
  // Fig. 6 attribution: the Map phase (partition + combiner local skylines)
  // parallelises; the Reduce phase contains the serial global merge.
  const auto ps = qws_workload(5000, 8, 111);
  const auto result = run_scheme(ps, part::Scheme::kAngular, 16);
  mr::ClusterModel four;
  four.servers = 4;
  mr::ClusterModel thirty_two;
  thirty_two.servers = 32;
  const auto t4 = result.simulate(four);
  const auto t32 = result.simulate(thirty_two);
  const double map_drop = t4.map_seconds - t32.map_seconds;
  const double reduce_drop = t4.reduce_seconds - t32.reduce_seconds;
  EXPECT_GT(map_drop, 0.0);
  EXPECT_GE(map_drop, reduce_drop);
}

TEST(EndToEnd, CsvPersistedWorkloadReproducesSkyline) {
  // Save → load → compute must equal compute on the in-memory data.
  const auto ps = qws_workload(500, 4, 113);
  const std::string path = testing::TempDir() + "/mrsky_e2e.csv";
  data::write_csv_file(path, ps);
  const auto loaded = data::read_csv_file(path);
  const auto a = run_scheme(ps, part::Scheme::kAngular);
  const auto b = run_scheme(loaded, part::Scheme::kAngular);
  EXPECT_TRUE(skyline::same_ids(a.skyline, b.skyline));
}

TEST(EndToEnd, DeterministicAcrossRuns) {
  const auto ps = qws_workload(1000, 5, 115);
  const auto a = run_scheme(ps, part::Scheme::kAngular);
  const auto b = run_scheme(ps, part::Scheme::kAngular);
  EXPECT_EQ(sorted_ids(a.skyline), sorted_ids(b.skyline));
  EXPECT_EQ(a.partition_job.shuffle_records, b.partition_job.shuffle_records);
  EXPECT_EQ(a.partition_job.total_work_units(), b.partition_job.total_work_units());
}

}  // namespace
}  // namespace mrsky
