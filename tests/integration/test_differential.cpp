// Randomised differential testing: every skyline implementation in the
// library — four scan algorithms, the bounded-window BNL, the two index
// traversals, and the MapReduce pipeline under every partitioning scheme —
// must agree on randomly drawn workloads (size, dimension, distribution and
// duplicate injection all derived from the seed).
#include <gtest/gtest.h>

#include <string>

#include "src/common/rng.hpp"
#include "src/core/mr_skyline.hpp"
#include "src/dataset/generators.hpp"
#include "src/dataset/transforms.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/bnl_bounded.hpp"
#include "src/skyline/verify.hpp"
#include "src/spatial/bbs.hpp"
#include "src/spatial/nn_skyline.hpp"

namespace mrsky {
namespace {

struct Workload {
  data::PointSet points{1};
  std::string description;
};

Workload make_workload(std::uint64_t seed) {
  common::Rng rng(seed * 7919 + 13);
  const std::size_t n = 50 + rng.uniform_index(750);
  const std::size_t dim = 1 + rng.uniform_index(8);
  const auto dist = static_cast<data::Distribution>(rng.uniform_index(4));
  Workload w;
  w.points = data::generate(dist, n, dim, seed);
  if (rng.uniform() < 0.5 && !w.points.empty()) {
    const std::size_t copies = 1 + rng.uniform_index(n / 4 + 1);
    w.points = data::with_duplicates(w.points, copies, rng);
  }
  w.description = data::to_string(dist) + " n=" + std::to_string(w.points.size()) +
                  " d=" + std::to_string(dim);
  return w;
}

class Differential : public testing::TestWithParam<std::uint64_t> {};

TEST_P(Differential, AllImplementationsAgree) {
  const Workload w = make_workload(GetParam());
  const auto reference = sorted_ids(skyline::naive_skyline(w.points));

  auto expect_same = [&](const data::PointSet& sky, const std::string& what) {
    EXPECT_EQ(sorted_ids(sky), reference) << what << " on " << w.description;
  };

  expect_same(skyline::bnl_skyline(w.points), "bnl");
  expect_same(skyline::sfs_skyline(w.points), "sfs");
  expect_same(skyline::dc_skyline(w.points), "dc");
  expect_same(skyline::bnl_skyline_bounded(w.points, 3), "bnl-bounded-w3");
  expect_same(skyline::bnl_skyline_bounded(w.points, 64), "bnl-bounded-w64");
  expect_same(spatial::bbs_skyline(w.points), "bbs");
  // NN skyline's to-do list grows exponentially with dimension on large
  // skylines (its known weakness — see nn_skyline.hpp); differential-test it
  // only where it is tractable.
  if (w.points.dim() <= 4) {
    expect_same(spatial::nn_skyline(w.points), "nn");
  }
}

TEST_P(Differential, PipelineAgreesUnderEveryScheme) {
  const Workload w = make_workload(GetParam() + 1000);
  const auto reference = sorted_ids(skyline::naive_skyline(w.points));
  for (part::Scheme scheme : {part::Scheme::kDimensional, part::Scheme::kGrid,
                              part::Scheme::kAngular, part::Scheme::kAngularEquiDepth,
                              part::Scheme::kAngularRadial, part::Scheme::kPivot,
                              part::Scheme::kRandom}) {
    core::MRSkylineConfig config;
    config.scheme = scheme;
    config.servers = 1 + GetParam() % 6;
    config.merge_fan_in = (GetParam() % 3 == 0) ? 0 : 2 + GetParam() % 3;
    config.use_combiner = (GetParam() % 2 == 1);
    config.salt_oversized_partitions = (GetParam() % 5 < 2);
    const auto result = core::run_mr_skyline(w.points, config);
    EXPECT_EQ(sorted_ids(result.skyline), reference)
        << part::to_string(scheme) << " on " << w.description;
  }
}

TEST_P(Differential, VerifierAcceptsReferenceOutput) {
  const Workload w = make_workload(GetParam() + 2000);
  const auto sky = skyline::bnl_skyline(w.points);
  const auto verdict = skyline::verify_skyline(w.points, sky);
  EXPECT_TRUE(verdict.ok) << verdict.message << " on " << w.description;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         testing::Range<std::uint64_t>(1, 13),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mrsky
