// Randomised resident-vs-streamed differential testing (ISSUE 10): the same
// pipeline run from a materialised PointSet and from that set round-tripped
// through a `.mrb` block store must produce the same skyline, bitwise, under
// randomly drawn workloads, schemes, execution modes, block capacities and
// spill budgets. Block pruning and shuffle spilling are observability-only
// optimisations — the sweep is what holds them to that.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/core/mr_skyline.hpp"
#include "src/dataset/block_store.hpp"
#include "src/dataset/generators.hpp"
#include "src/dataset/source.hpp"
#include "src/skyline/algorithms.hpp"

namespace mrsky {
namespace {

struct Workload {
  data::PointSet points{1};
  core::MRSkylineConfig config;
  std::size_t block_rows = 32;
  bool zorder = false;
  std::string description;
};

Workload make_workload(std::uint64_t seed) {
  common::Rng rng(seed * 6151 + 29);
  Workload w;
  const std::size_t n = 200 + rng.uniform_index(1200);
  const std::size_t dim = 2 + rng.uniform_index(5);
  const auto dist = static_cast<data::Distribution>(rng.uniform_index(4));
  w.points = data::generate(dist, n, dim, seed);
  w.block_rows = 16 + rng.uniform_index(100);
  w.zorder = rng.uniform() < 0.5;

  auto& config = w.config;
  config.scheme = rng.uniform() < 0.5 ? part::Scheme::kAngular : part::Scheme::kGrid;
  config.servers = 2 + rng.uniform_index(6);
  config.merge_fan_in = (seed % 3 == 0) ? 0 : 2 + seed % 3;
  config.use_combiner = (seed % 2 == 1);
  config.block_prune = rng.uniform() < 0.8;  // sometimes off, as a control
  config.run_options.mode = (seed % 2 == 0) ? mr::ExecutionMode::kSequential
                                            : mr::ExecutionMode::kThreads;
  config.run_options.num_threads = 4;
  if (rng.uniform() < 0.5) {
    // A budget this small forces every map task to spill its shards.
    config.run_options.shuffle_spill_bytes = 1 + rng.uniform_index(4096);
    config.run_options.spill_dir = testing::TempDir();
  }
  w.description = data::to_string(dist) + " n=" + std::to_string(n) +
                  " d=" + std::to_string(dim) +
                  " block_rows=" + std::to_string(w.block_rows) +
                  (w.zorder ? " zorder" : " input-order") +
                  " spill=" + std::to_string(config.run_options.shuffle_spill_bytes);
  return w;
}

/// Rows of `ps` in ascending-id order — the canonical form for comparing
/// skylines whose emission order differs (the streamed run fits its
/// partitioner on a block sample, which steers the merge cascade's order but
/// never its membership; see run_mr_skyline's DatasetSource contract).
data::PointSet canonical_by_id(const data::PointSet& ps) {
  std::vector<std::size_t> order(ps.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return ps.id(a) < ps.id(b); });
  return ps.select(order);
}

class OutOfCoreSweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(OutOfCoreSweep, StreamedRunMatchesResidentRunBitwise) {
  const Workload w = make_workload(GetParam());
  const std::string path = testing::TempDir() + "/ooc_sweep_" +
                           std::to_string(GetParam()) + ".mrb";
  data::PointSet on_disk = w.zorder ? w.points.select(data::zorder_permutation(w.points))
                                    : w.points;
  data::write_block_store(path, on_disk, w.block_rows);
  const data::BlockStoreSource source(path);

  const auto resident = core::run_mr_skyline(w.points, w.config);
  const auto streamed = core::run_mr_skyline(source, w.config);

  // Same skyline SET, every surviving coordinate bit-identical.
  const data::PointSet expected = canonical_by_id(resident.skyline);
  const data::PointSet actual = canonical_by_id(streamed.skyline);
  EXPECT_EQ(actual, expected) << w.description;

  // And both agree with the single-machine reference.
  EXPECT_EQ(sorted_ids(streamed.skyline), sorted_ids(skyline::naive_skyline(w.points)))
      << w.description;

  // Pruning accounting is conservative and consistent: every payload byte is
  // either read or pruned, and pruning only ever happens when enabled.
  const auto& metrics = streamed.partition_job;
  std::uint64_t payload = 0;
  for (std::size_t b = 0; b < source.block_count(); ++b) {
    payload += source.block_stats(b).bytes;
  }
  EXPECT_EQ(metrics.bytes_read + metrics.bytes_pruned, payload) << w.description;
  EXPECT_LE(metrics.blocks_pruned, source.block_count()) << w.description;
  if (!w.config.block_prune) {
    EXPECT_EQ(metrics.blocks_pruned, 0u) << w.description;
    EXPECT_EQ(metrics.bytes_pruned, 0u) << w.description;
  }
  // The resident run's virtual blocks carry no corners, so it never prunes.
  EXPECT_EQ(resident.partition_job.blocks_pruned, 0u) << w.description;

  // A spill budget smaller than the shuffle volume forces real spill traffic;
  // spilling must never change the result (the identity above already proved
  // that). With the combiner on the guarantee disappears — map tasks shuffle
  // only their partial skylines, which can stay under any budget.
  if (w.config.run_options.shuffle_spill_bytes > 0 && !w.config.use_combiner) {
    EXPECT_GT(metrics.shuffle_spilled_bytes, 0u) << w.description;
    EXPECT_GT(metrics.shuffle_spill_files, 0u) << w.description;
  }
}

TEST_P(OutOfCoreSweep, PrunedBlocksContainNoSkylineMember) {
  // Direct soundness check of the footer-corner prune rule, independent of
  // the pipeline: a block whose min corner is strictly dominated by any
  // dataset point contributes nothing to the global skyline.
  const Workload w = make_workload(GetParam() + 5000);
  const std::string path = testing::TempDir() + "/ooc_prune_" +
                           std::to_string(GetParam()) + ".mrb";
  data::write_block_store(path, w.points.select(data::zorder_permutation(w.points)),
                          w.block_rows);
  const data::BlockStore store(path);
  const auto skyline_ids = sorted_ids(skyline::naive_skyline(w.points));
  const std::size_t dim = w.points.dim();
  for (std::size_t b = 0; b < store.block_count(); ++b) {
    const auto min = store.block_min(b);
    bool prunable = false;
    for (std::size_t i = 0; i < w.points.size() && !prunable; ++i) {
      bool strict = true;
      for (std::size_t a = 0; a < dim && strict; ++a) {
        strict = w.points.at(i, a) < min[a];
      }
      prunable = strict;
    }
    if (!prunable) continue;
    data::PointSet block(dim);
    store.append_block_to(b, block);
    for (std::size_t r = 0; r < block.size(); ++r) {
      EXPECT_FALSE(std::binary_search(skyline_ids.begin(), skyline_ids.end(), block.id(r)))
          << "pruned block " << b << " holds skyline id " << block.id(r) << " — "
          << w.description;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OutOfCoreSweep, testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace mrsky
