// Randomised streaming differential sweep (ISSUE 9): ~200 deterministically
// seeded insert/delete/TTL schedules over all five workload families (the
// four synthetic distributions plus the QWS-like family), each replayed
// through TWO streaming QueryEngines — one configured kSequential, one
// kThreads — and against a recompute-from-scratch oracle. After EVERY tick:
//
//  * the maintained full skyline published by apply_batch must equal the
//    naive skyline of the oracle's live set bitwise (exact delete/TTL/window
//    maintenance, not approximate);
//  * the kSequential and kThreads engines must publish byte-identical
//    skylines and deltas (execution mode can never leak into results);
//  * replaying each delta onto a running replica must reproduce the
//    published skyline, which is the standing-subscription contract.
//
// A slice of cases also runs a skyline query at a streamed version, proving
// the pipeline path agrees with the maintained structure.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <map>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/thread_pool.hpp"
#include "src/dataset/generators.hpp"
#include "src/dataset/normalize.hpp"
#include "src/dataset/qws.hpp"
#include "src/service/query_engine.hpp"
#include "src/skyline/algorithms.hpp"

namespace mrsky {
namespace {

/// The exact bits of a skyline, in output order.
struct SkylineBits {
  std::vector<data::PointId> ids;
  std::vector<std::uint64_t> coord_bits;

  explicit SkylineBits(const data::PointSet& sky) {
    for (std::size_t i = 0; i < sky.size(); ++i) {
      ids.push_back(sky.id(i));
      for (double c : sky.point(i)) coord_bits.push_back(std::bit_cast<std::uint64_t>(c));
    }
  }
  bool operator==(const SkylineBits&) const = default;
};

data::PointSet canonical_by_id(const data::PointSet& ps) {
  std::vector<std::size_t> order(ps.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return ps.id(a) < ps.id(b); });
  return ps.select(order);
}

/// Recompute-from-scratch oracle. Mirrors apply_batch's documented tick
/// semantics exactly — TTL expiry, explicit deletes, inserts (fresh ids,
/// effective TTL = per-point else engine default), count-window eviction —
/// but knows nothing about skyline maintenance: its skyline is always a full
/// naive recompute of the live set.
class StreamOracle {
 public:
  StreamOracle(const data::PointSet& initial, std::size_t window_capacity,
               std::uint64_t window_ticks)
      : dim_(initial.dim()), window_capacity_(window_capacity), window_ticks_(window_ticks) {
    data::PointId max_id = 0;
    for (std::size_t i = 0; i < initial.size(); ++i) {
      const auto p = initial.point(i);
      live_.emplace(initial.id(i), std::vector<double>(p.begin(), p.end()));
      arrivals_.push_back(initial.id(i));
      max_id = std::max(max_id, initial.id(i));
    }
    next_id_ = initial.size() == 0 ? 0 : max_id + 1;
  }

  void apply(const service::MutationBatch& batch) {
    ++tick_;
    while (!expiries_.empty() && expiries_.top().first <= tick_) {
      live_.erase(expiries_.top().second);
      expiries_.pop();
    }
    for (data::PointId id : batch.deletes) live_.erase(id);
    for (std::size_t i = 0; i < batch.inserts.size(); ++i) {
      const data::PointId id = next_id_++;
      const auto p = batch.inserts.point(i);
      live_.emplace(id, std::vector<double>(p.begin(), p.end()));
      arrivals_.push_back(id);
      const std::int64_t requested = batch.ttl_ticks.empty() ? 0 : batch.ttl_ticks[i];
      const std::uint64_t ttl =
          requested > 0 ? static_cast<std::uint64_t>(requested) : window_ticks_;
      if (ttl > 0) expiries_.emplace(tick_ + ttl, id);
    }
    if (window_capacity_ > 0) {
      std::size_t head = 0;
      while (live_.size() > window_capacity_ && head < arrivals_.size()) {
        live_.erase(arrivals_[head++]);  // stale ids erase as no-ops
      }
      arrivals_.erase(arrivals_.begin(), arrivals_.begin() + static_cast<std::ptrdiff_t>(head));
    }
  }

  [[nodiscard]] data::PointSet skyline() const {
    data::PointSet ps(dim_);
    for (const auto& [id, coords] : live_) ps.push_back(coords, id);  // map: ascending ids
    return canonical_by_id(skyline::naive_skyline(ps));
  }

  [[nodiscard]] std::size_t live_size() const { return live_.size(); }

 private:
  std::size_t dim_;
  std::size_t window_capacity_;
  std::uint64_t window_ticks_;
  data::PointId next_id_ = 0;
  std::uint64_t tick_ = 0;
  std::map<data::PointId, std::vector<double>> live_;
  std::vector<data::PointId> arrivals_;
  std::priority_queue<std::pair<std::uint64_t, data::PointId>,
                      std::vector<std::pair<std::uint64_t, data::PointId>>, std::greater<>>
      expiries_;
};

/// A subscriber-side replica: base skyline + delta replay.
class Replica {
 public:
  explicit Replica(const data::PointSet& base) : dim_(base.dim()) {
    for (std::size_t i = 0; i < base.size(); ++i) {
      const auto p = base.point(i);
      points_.emplace(base.id(i), std::vector<double>(p.begin(), p.end()));
    }
  }

  void apply(const service::StreamDelta& delta) {
    for (data::PointId id : delta.left) points_.erase(id);
    for (std::size_t i = 0; i < delta.entered.size(); ++i) {
      const auto p = delta.entered.point(i);
      points_.emplace(delta.entered.id(i), std::vector<double>(p.begin(), p.end()));
    }
  }

  [[nodiscard]] data::PointSet skyline() const {
    data::PointSet ps(dim_);
    for (const auto& [id, coords] : points_) ps.push_back(coords, id);
    return ps;
  }

 private:
  std::size_t dim_;
  std::map<data::PointId, std::vector<double>> points_;
};

constexpr std::size_t kFamilies = 5;  // 4 synthetic distributions + QWS-like

struct StreamCase {
  data::PointSet initial{1};
  std::vector<service::MutationBatch> schedule;
  std::size_t window_capacity = 0;
  std::uint64_t window_ticks = 0;
  std::string description;
};

/// Everything derives from the case index, so a failure names a reproducible
/// case. Family index % 5; every case mixes inserts, deletes (including
/// already-dead ids — the missing-delete path), per-point TTLs, and one in
/// two cases adds a count or time window.
StreamCase make_case(std::uint64_t index) {
  common::Rng rng(index * 0x9e3779b9ull + 0x517e40ull);
  StreamCase c;

  const std::size_t n = 30 + rng.uniform_index(120);
  const std::size_t dim = 2 + rng.uniform_index(4);
  const std::size_t ticks = 10 + rng.uniform_index(10);
  const std::size_t family = index % kFamilies;
  const std::size_t pool_n = n + ticks * 6;

  data::PointSet pool(dim);
  std::string family_name;
  if (family < 4) {
    const auto dist = static_cast<data::Distribution>(family);
    pool = data::generate(dist, pool_n, dim, /*seed=*/index + 1);
    family_name = data::to_string(dist);
  } else {
    data::QwsLikeGenerator gen(dim, /*seed=*/index + 1);
    pool = data::normalize_min_max(gen.generate_oriented(pool_n));
    family_name = "qws-like";
  }

  std::vector<std::size_t> head(n);
  for (std::size_t i = 0; i < n; ++i) head[i] = i;
  c.initial = pool.select(head);

  switch (rng.uniform_index(4)) {
    case 2:
      c.window_capacity = std::max<std::size_t>(8, n / 2);
      break;
    case 3:
      c.window_ticks = 3 + rng.uniform_index(5);
      break;
    default:
      break;  // unbounded
  }

  std::size_t next_row = n;
  std::size_t assigned = n;
  c.schedule.resize(ticks);
  for (std::size_t t = 0; t < ticks; ++t) {
    service::MutationBatch& batch = c.schedule[t];
    batch.inserts = data::PointSet(dim);
    const std::size_t inserts = rng.uniform_index(7);  // 0..6
    for (std::size_t i = 0; i < inserts; ++i, ++next_row) {
      batch.inserts.push_back(pool.point(next_row), pool.id(next_row));
      batch.ttl_ticks.push_back(rng.uniform() < 0.3
                                    ? static_cast<std::int64_t>(1 + rng.uniform_index(6))
                                    : 0);
    }
    const std::size_t deletes = rng.uniform_index(5);  // 0..4, may hit dead ids
    for (std::size_t i = 0; i < deletes; ++i) {
      batch.deletes.push_back(static_cast<data::PointId>(rng.uniform_index(assigned)));
    }
    assigned += inserts;
  }

  c.description = family_name + " n=" + std::to_string(n) + " d=" + std::to_string(dim) +
                  " ticks=" + std::to_string(ticks) +
                  (c.window_capacity > 0 ? " cap=" + std::to_string(c.window_capacity) : "") +
                  (c.window_ticks > 0 ? " span=" + std::to_string(c.window_ticks) : "");
  return c;
}

class StreamSweep : public testing::TestWithParam<std::uint64_t> {
 protected:
  /// One pool shared by every kThreads engine in the sweep.
  static common::ThreadPool& shared_pool() {
    static common::ThreadPool pool(4);
    return pool;
  }
};

TEST_P(StreamSweep, MaintainedSkylineMatchesRecomputeEveryTick) {
  const StreamCase c = make_case(GetParam());

  service::QueryEngineOptions seq_options;
  seq_options.window_capacity = c.window_capacity;
  seq_options.window_ticks = c.window_ticks;
  service::QueryEngine seq(c.initial, seq_options);

  service::QueryEngineOptions thr_options = seq_options;
  thr_options.config.run_options.mode = mr::ExecutionMode::kThreads;
  thr_options.config.run_options.pool = &shared_pool();
  service::QueryEngine thr(c.initial, thr_options);

  StreamOracle oracle(c.initial, c.window_capacity, c.window_ticks);

  // The replica starts from a pre-stream subscription: base version 0 plus
  // its full skyline, then one delta per tick.
  const service::StreamSubscriptionPtr sub = seq.subscribe();
  Replica replica(sub->base_skyline());

  for (std::size_t t = 0; t < c.schedule.size(); ++t) {
    const std::string where = c.description + " tick " + std::to_string(t + 1);
    const service::ApplyResult rs = seq.apply_batch(c.schedule[t]);
    const service::ApplyResult rt = thr.apply_batch(c.schedule[t]);
    oracle.apply(c.schedule[t]);

    ASSERT_NE(rs.snapshot->full_skyline, nullptr) << where;
    const data::PointSet& published = *rs.snapshot->full_skyline;

    // Oracle: maintained skyline == naive skyline of the live set, bitwise.
    EXPECT_TRUE(SkylineBits(published) == SkylineBits(oracle.skyline())) << where;
    EXPECT_EQ(rs.snapshot->dataset->size(), oracle.live_size()) << where;

    // Mode invariance: kSequential and kThreads publish identical bytes.
    EXPECT_TRUE(SkylineBits(published) == SkylineBits(*rt.snapshot->full_skyline)) << where;
    EXPECT_EQ(rs.delta.left, rt.delta.left) << where;
    EXPECT_TRUE(SkylineBits(rs.delta.entered) == SkylineBits(rt.delta.entered)) << where;

    // Subscription contract: the delivered delta replays to the published
    // skyline, and matches the ApplyResult's copy.
    const std::optional<service::StreamDelta> delivered = sub->next(/*timeout_ms=*/0);
    ASSERT_TRUE(delivered.has_value()) << where;
    EXPECT_EQ(delivered->version, rs.delta.version) << where;
    replica.apply(*delivered);
    EXPECT_TRUE(SkylineBits(replica.skyline()) == SkylineBits(published)) << where;
  }

  // A slice also runs the query path at a streamed version: the pipeline must
  // agree with the maintained structure it never consulted.
  if (GetParam() % 9 == 0) {
    const auto result = seq.execute(service::Query{service::SkylineQuery{}});
    EXPECT_TRUE(SkylineBits(result.points) ==
                SkylineBits(*seq.snapshot()->full_skyline))
        << c.description;
  }

  EXPECT_FALSE(sub->lagged()) << c.description;
}

INSTANTIATE_TEST_SUITE_P(Cases, StreamSweep, testing::Range<std::uint64_t>(0, 200),
                         [](const auto& param_info) {
                           return "case" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace mrsky
