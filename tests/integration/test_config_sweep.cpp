// Randomised config-sweep differential testing (ISSUE 4): ~200
// deterministically sampled MRSkylineConfig combinations — partitioning
// scheme, partition/map-task counts, merge fan-in, salting, combiner, fit
// sampling, fault injection — each run under both execution modes on small
// fixed-seed workloads. Every run must produce exactly the naive-skyline
// ground truth, and the kSequential and kThreads outputs must be
// byte-identical (same ids, same order, same double bits). A slice of the
// sweep also runs with tracing on and checks the span-tree invariants, so
// observability can never perturb results.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/thread_pool.hpp"
#include "src/common/trace.hpp"
#include "src/core/mr_skyline.hpp"
#include "src/dataset/generators.hpp"
#include "src/skyline/algorithms.hpp"
#include "tests/support/trace_test_utils.hpp"

namespace mrsky {
namespace {

struct SweepCase {
  data::PointSet points{1};
  core::MRSkylineConfig config;
  std::string description;
};

/// Everything — workload and configuration — derives from the case index,
/// so a failure report names a reproducible case.
SweepCase make_case(std::uint64_t index) {
  common::Rng rng(index * 0x9e3779b9 + 0x5133d);
  SweepCase c;

  const std::size_t n = 40 + rng.uniform_index(260);
  const std::size_t dim = 2 + rng.uniform_index(5);
  const auto dist = static_cast<data::Distribution>(rng.uniform_index(4));
  c.points = data::generate(dist, n, dim, /*seed=*/index + 1);

  auto& cfg = c.config;
  const part::Scheme schemes[] = {
      part::Scheme::kDimensional, part::Scheme::kGrid,         part::Scheme::kAngular,
      part::Scheme::kAngularEquiDepth, part::Scheme::kAngularRadial, part::Scheme::kPivot,
      part::Scheme::kRandom};
  cfg.scheme = schemes[rng.uniform_index(std::size(schemes))];
  cfg.servers = 1 + rng.uniform_index(6);
  cfg.num_partitions = rng.uniform() < 0.5 ? 0 : 1 + rng.uniform_index(10);
  if (cfg.scheme == part::Scheme::kAngularRadial) {
    // Radial cells = sectors x radial_bands (2 by default): the explicit
    // partition count must be even.
    cfg.num_partitions += cfg.num_partitions % 2;
  }
  cfg.num_map_tasks = rng.uniform() < 0.5 ? 0 : 1 + rng.uniform_index(8);
  const std::size_t fans[] = {0, 0, 2, 3, 4};
  cfg.merge_fan_in = fans[rng.uniform_index(std::size(fans))];
  cfg.use_combiner = rng.uniform() < 0.5;
  cfg.apply_grid_pruning = rng.uniform() < 0.8;
  cfg.salt_oversized_partitions = rng.uniform() < 0.3;
  cfg.salt_target_factor = 1.0 + rng.uniform() * 2.0;
  if (rng.uniform() < 0.25) {
    cfg.fit_sample_size = 20 + rng.uniform_index(60);
    cfg.fit_sample_seed = index;
  }
  if (rng.uniform() < 0.4) {
    cfg.run_options.task_failure_probability = 0.05 + rng.uniform() * 0.15;
    cfg.run_options.max_task_attempts = 10;
    cfg.run_options.failure_seed = index * 31 + 7;
  }

  c.description = data::to_string(dist) + " n=" + std::to_string(n) +
                  " d=" + std::to_string(dim) + " scheme=" + part::to_string(cfg.scheme) +
                  " servers=" + std::to_string(cfg.servers) +
                  " parts=" + std::to_string(cfg.num_partitions) +
                  " fan=" + std::to_string(cfg.merge_fan_in) +
                  (cfg.use_combiner ? " combiner" : "") +
                  (cfg.salt_oversized_partitions ? " salted" : "") +
                  (cfg.run_options.task_failure_probability > 0 ? " faults" : "");
  return c;
}

/// The exact bits of a skyline, in output order.
struct SkylineBits {
  std::vector<data::PointId> ids;
  std::vector<std::uint64_t> coord_bits;

  explicit SkylineBits(const data::PointSet& sky) {
    for (std::size_t i = 0; i < sky.size(); ++i) {
      ids.push_back(sky.id(i));
      for (double c : sky.point(i)) coord_bits.push_back(std::bit_cast<std::uint64_t>(c));
    }
  }
  bool operator==(const SkylineBits&) const = default;
};

class ConfigSweep : public testing::TestWithParam<std::uint64_t> {
 protected:
  /// One pool shared by every kThreads case in the sweep (constructing 200
  /// pools would dominate the suite's runtime).
  static common::ThreadPool& shared_pool() {
    static common::ThreadPool pool(4);
    return pool;
  }
};

TEST_P(ConfigSweep, MatchesGroundTruthUnderBothModes) {
  SweepCase c = make_case(GetParam());
  const auto reference = sorted_ids(skyline::naive_skyline(c.points));

  // Every ~7th case also records a trace, to prove observability does not
  // perturb results and the recorded timeline stays well-shaped.
  common::TraceRecorder recorder;
  const bool traced = GetParam() % 7 == 0;

  c.config.run_options.mode = mr::ExecutionMode::kSequential;
  c.config.run_options.trace = traced ? &recorder : nullptr;
  const auto sequential = core::run_mr_skyline(c.points, c.config);
  EXPECT_EQ(sorted_ids(sequential.skyline), reference) << c.description;

  c.config.run_options.mode = mr::ExecutionMode::kThreads;
  c.config.run_options.pool = &shared_pool();
  c.config.run_options.trace = nullptr;
  const auto threaded = core::run_mr_skyline(c.points, c.config);
  EXPECT_EQ(sorted_ids(threaded.skyline), reference) << c.description;

  EXPECT_TRUE(SkylineBits(sequential.skyline) == SkylineBits(threaded.skyline))
      << "kSequential and kThreads outputs differ bytewise on " << c.description;
  EXPECT_EQ(sequential.merge_rounds.size(), threaded.merge_rounds.size()) << c.description;

  if (traced) {
    const auto spans = recorder.spans();
    EXPECT_TRUE(test::well_formed(spans)) << c.description;
    EXPECT_TRUE(test::no_sibling_overlap(spans)) << c.description;
    EXPECT_TRUE(test::retries_precede_success(spans)) << c.description;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, ConfigSweep, testing::Range<std::uint64_t>(0, 200),
                         [](const auto& param_info) {
                           return "case" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace mrsky
