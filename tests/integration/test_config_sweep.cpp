// Randomised config-sweep differential testing (ISSUE 4): ~200
// deterministically sampled MRSkylineConfig combinations — partitioning
// scheme, partition/map-task counts, merge fan-in, salting, combiner, fit
// sampling, fault injection — each run under both execution modes on small
// fixed-seed workloads. Every run must produce exactly the naive-skyline
// ground truth, and the kSequential and kThreads outputs must be
// byte-identical (same ids, same order, same double bits). A slice of the
// sweep also runs with tracing on and checks the span-tree invariants, so
// observability can never perturb results.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/thread_pool.hpp"
#include "src/common/trace.hpp"
#include "src/core/mr_skyline.hpp"
#include "src/dataset/generators.hpp"
#include "src/service/query_engine.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/extensions.hpp"
#include "tests/support/trace_test_utils.hpp"

namespace mrsky {
namespace {

struct SweepCase {
  data::PointSet points{1};
  core::MRSkylineConfig config;
  std::string description;
};

/// Everything — workload and configuration — derives from the case index,
/// so a failure report names a reproducible case.
SweepCase make_case(std::uint64_t index) {
  common::Rng rng(index * 0x9e3779b9 + 0x5133d);
  SweepCase c;

  const std::size_t n = 40 + rng.uniform_index(260);
  const std::size_t dim = 2 + rng.uniform_index(5);
  const auto dist = static_cast<data::Distribution>(rng.uniform_index(4));
  c.points = data::generate(dist, n, dim, /*seed=*/index + 1);

  auto& cfg = c.config;
  const part::Scheme schemes[] = {
      part::Scheme::kDimensional, part::Scheme::kGrid,         part::Scheme::kAngular,
      part::Scheme::kAngularEquiDepth, part::Scheme::kAngularRadial, part::Scheme::kPivot,
      part::Scheme::kRandom};
  cfg.scheme = schemes[rng.uniform_index(std::size(schemes))];
  cfg.servers = 1 + rng.uniform_index(6);
  cfg.num_partitions = rng.uniform() < 0.5 ? 0 : 1 + rng.uniform_index(10);
  if (cfg.scheme == part::Scheme::kAngularRadial) {
    // Radial cells = sectors x radial_bands (2 by default): the explicit
    // partition count must be even.
    cfg.num_partitions += cfg.num_partitions % 2;
  }
  cfg.num_map_tasks = rng.uniform() < 0.5 ? 0 : 1 + rng.uniform_index(8);
  const std::size_t fans[] = {0, 0, 2, 3, 4};
  cfg.merge_fan_in = fans[rng.uniform_index(std::size(fans))];
  cfg.use_combiner = rng.uniform() < 0.5;
  cfg.apply_grid_pruning = rng.uniform() < 0.8;
  cfg.salt_oversized_partitions = rng.uniform() < 0.3;
  cfg.salt_target_factor = 1.0 + rng.uniform() * 2.0;
  if (rng.uniform() < 0.25) {
    cfg.fit_sample_size = 20 + rng.uniform_index(60);
    cfg.fit_sample_seed = index;
  }
  if (rng.uniform() < 0.4) {
    cfg.run_options.task_failure_probability = 0.05 + rng.uniform() * 0.15;
    cfg.run_options.max_task_attempts = 10;
    cfg.run_options.failure_seed = index * 31 + 7;
  }

  c.description = data::to_string(dist) + " n=" + std::to_string(n) +
                  " d=" + std::to_string(dim) + " scheme=" + part::to_string(cfg.scheme) +
                  " servers=" + std::to_string(cfg.servers) +
                  " parts=" + std::to_string(cfg.num_partitions) +
                  " fan=" + std::to_string(cfg.merge_fan_in) +
                  (cfg.use_combiner ? " combiner" : "") +
                  (cfg.salt_oversized_partitions ? " salted" : "") +
                  (cfg.run_options.task_failure_probability > 0 ? " faults" : "");
  return c;
}

/// The exact bits of a skyline, in output order.
struct SkylineBits {
  std::vector<data::PointId> ids;
  std::vector<std::uint64_t> coord_bits;

  explicit SkylineBits(const data::PointSet& sky) {
    for (std::size_t i = 0; i < sky.size(); ++i) {
      ids.push_back(sky.id(i));
      for (double c : sky.point(i)) coord_bits.push_back(std::bit_cast<std::uint64_t>(c));
    }
  }
  bool operator==(const SkylineBits&) const = default;
};

class ConfigSweep : public testing::TestWithParam<std::uint64_t> {
 protected:
  /// One pool shared by every kThreads case in the sweep (constructing 200
  /// pools would dominate the suite's runtime).
  static common::ThreadPool& shared_pool() {
    static common::ThreadPool pool(4);
    return pool;
  }
};

TEST_P(ConfigSweep, MatchesGroundTruthUnderBothModes) {
  SweepCase c = make_case(GetParam());
  const auto reference = sorted_ids(skyline::naive_skyline(c.points));

  // Every ~7th case also records a trace, to prove observability does not
  // perturb results and the recorded timeline stays well-shaped.
  common::TraceRecorder recorder;
  const bool traced = GetParam() % 7 == 0;

  c.config.run_options.mode = mr::ExecutionMode::kSequential;
  c.config.run_options.trace = traced ? &recorder : nullptr;
  const auto sequential = core::run_mr_skyline(c.points, c.config);
  EXPECT_EQ(sorted_ids(sequential.skyline), reference) << c.description;

  c.config.run_options.mode = mr::ExecutionMode::kThreads;
  c.config.run_options.pool = &shared_pool();
  c.config.run_options.trace = nullptr;
  const auto threaded = core::run_mr_skyline(c.points, c.config);
  EXPECT_EQ(sorted_ids(threaded.skyline), reference) << c.description;

  EXPECT_TRUE(SkylineBits(sequential.skyline) == SkylineBits(threaded.skyline))
      << "kSequential and kThreads outputs differ bytewise on " << c.description;
  EXPECT_EQ(sequential.merge_rounds.size(), threaded.merge_rounds.size()) << c.description;

  if (traced) {
    const auto spans = recorder.spans();
    EXPECT_TRUE(test::well_formed(spans)) << c.description;
    EXPECT_TRUE(test::no_sibling_overlap(spans)) << c.description;
    EXPECT_TRUE(test::retries_precede_success(spans)) << c.description;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, ConfigSweep, testing::Range<std::uint64_t>(0, 200),
                         [](const auto& param_info) {
                           return "case" + std::to_string(param_info.param);
                         });

/// Extension differential sweep (ISSUE 5): k-skyband, representative skyline
/// and weighted top-k checked against independent brute-force oracles on
/// randomised workloads, plus a QueryEngine slice proving the serving layer
/// (and its cache) returns the same bits as the direct computation.
class ExtensionSweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ExtensionSweep, ExtensionsMatchBruteForceOracles) {
  common::Rng rng(GetParam() * 0x51ed5u + 17);
  const std::size_t n = 30 + rng.uniform_index(120);
  const std::size_t dim = 2 + rng.uniform_index(4);
  const auto dist = static_cast<data::Distribution>(rng.uniform_index(4));
  const data::PointSet ps = data::generate(dist, n, dim, /*seed=*/GetParam() * 3 + 1);
  const std::string where = data::to_string(dist) + " n=" + std::to_string(n) +
                            " d=" + std::to_string(dim);

  // --- k-skyband: full O(n^2) dominator count, no early exit. ---
  const std::size_t band_k = 1 + rng.uniform_index(5);
  std::vector<std::size_t> band_survivors;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    std::size_t dominators = 0;
    for (std::size_t j = 0; j < ps.size(); ++j) {
      if (i != j && skyline::dominates(ps.point(j), ps.point(i))) ++dominators;
    }
    if (dominators < band_k) band_survivors.push_back(i);
  }
  const data::PointSet band_oracle = ps.select(band_survivors);
  const data::PointSet band = skyline::k_skyband(ps, band_k);
  EXPECT_TRUE(SkylineBits(band) == SkylineBits(band_oracle)) << where << " k=" << band_k;
  if (band_k == 1) {
    EXPECT_EQ(sorted_ids(band), sorted_ids(skyline::naive_skyline(ps))) << where;
  }

  // --- representative: greedy max-coverage, earliest candidate on ties. ---
  const std::size_t rep_k = 1 + rng.uniform_index(6);
  const data::PointSet sky = skyline::bnl_skyline(ps);
  std::vector<bool> covered(ps.size(), false);
  std::vector<bool> used(sky.size(), false);
  std::vector<data::PointId> rep_ids;
  std::vector<std::size_t> rep_coverage;
  std::size_t rep_total = 0;
  for (std::size_t round = 0; round < rep_k && round < sky.size(); ++round) {
    std::vector<std::size_t> gain(sky.size(), 0);
    for (std::size_t s = 0; s < sky.size(); ++s) {
      if (used[s]) continue;
      for (std::size_t i = 0; i < ps.size(); ++i) {
        if (!covered[i] && skyline::dominates(sky.point(s), ps.point(i))) ++gain[s];
      }
    }
    std::size_t best = sky.size();
    for (std::size_t s = 0; s < sky.size(); ++s) {
      if (!used[s] && (best == sky.size() || gain[s] > gain[best])) best = s;
    }
    ASSERT_LT(best, sky.size()) << where;
    used[best] = true;
    rep_ids.push_back(sky.id(best));
    rep_coverage.push_back(gain[best]);
    rep_total += gain[best];
    for (std::size_t i = 0; i < ps.size(); ++i) {
      if (!covered[i] && skyline::dominates(sky.point(best), ps.point(i))) covered[i] = true;
    }
  }
  const auto rep = skyline::representative_skyline(ps, rep_k);
  std::vector<data::PointId> got_ids;
  for (std::size_t i = 0; i < rep.representatives.size(); ++i) {
    got_ids.push_back(rep.representatives.id(i));
  }
  EXPECT_EQ(got_ids, rep_ids) << where << " k=" << rep_k;
  EXPECT_EQ(rep.coverage, rep_coverage) << where << " k=" << rep_k;
  EXPECT_EQ(rep.total_covered, rep_total) << where << " k=" << rep_k;

  // --- weighted top-k: brute-force skyline membership, same (score, id)
  // order. Scores accumulate in attribute order, so bits match exactly. ---
  const std::size_t top_k = 1 + rng.uniform_index(8);
  std::vector<double> weights(dim);
  for (double& w : weights) w = rng.uniform();
  std::vector<skyline::ScoredPoint> top_oracle;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < ps.size() && !dominated; ++j) {
      dominated = i != j && skyline::dominates(ps.point(j), ps.point(i));
    }
    if (dominated) continue;
    double score = 0.0;
    const auto p = ps.point(i);
    for (std::size_t a = 0; a < p.size(); ++a) score += weights[a] * p[a];
    top_oracle.push_back({ps.id(i), score});
  }
  std::sort(top_oracle.begin(), top_oracle.end(),
            [](const skyline::ScoredPoint& a, const skyline::ScoredPoint& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.id < b.id;
            });
  if (top_oracle.size() > top_k) top_oracle.resize(top_k);
  const auto top = skyline::top_k_weighted(ps, weights, top_k);
  ASSERT_EQ(top.size(), top_oracle.size()) << where << " k=" << top_k;
  for (std::size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].id, top_oracle[i].id) << where << " rank " << i;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(top[i].score),
              std::bit_cast<std::uint64_t>(top_oracle[i].score))
        << where << " rank " << i;
  }

  // --- QueryEngine slice: the serving layer (cold, then cached) must return
  // the very same bits as the direct calls above. ---
  if (GetParam() % 3 == 0) {
    service::QueryEngine engine(ps, {});
    for (int pass = 0; pass < 2; ++pass) {
      const auto eband = engine.execute(service::KSkybandQuery{band_k});
      EXPECT_EQ(eband.metrics.cache_hit, pass == 1) << where;
      EXPECT_EQ(sorted_ids(eband.points), sorted_ids(band_oracle)) << where;
      const auto erep = engine.execute(service::RepresentativeQuery{rep_k});
      std::vector<data::PointId> engine_rep_ids;
      for (std::size_t i = 0; i < erep.points.size(); ++i) {
        engine_rep_ids.push_back(erep.points.id(i));
      }
      EXPECT_EQ(engine_rep_ids, rep_ids) << where;
      const auto etop = engine.execute(service::TopKWeightedQuery{weights, top_k});
      ASSERT_EQ(etop.ranking.size(), top_oracle.size()) << where;
      for (std::size_t i = 0; i < etop.ranking.size(); ++i) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(etop.ranking[i].score),
                  std::bit_cast<std::uint64_t>(top_oracle[i].score))
            << where << " rank " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, ExtensionSweep, testing::Range<std::uint64_t>(0, 60),
                         [](const auto& param_info) {
                           return "case" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace mrsky
