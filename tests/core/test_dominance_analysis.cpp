#include "src/core/dominance_analysis.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace mrsky::core::analysis {
namespace {

TEST(Theorem1, OriginDominatesWholeSector) {
  // s at the origin dominates the entire partition: D = 1.
  EXPECT_DOUBLE_EQ(dominance_ability_angle(0.0, 0.0, 1.0), 1.0);
}

TEST(Theorem1, FarCornerDominatesNothing) {
  // s at (2L, L) — the sector's far corner: D = (L² − L² − 0·L)/L² = 0.
  EXPECT_NEAR(dominance_ability_angle(2.0, 1.0, 1.0), 0.0, 1e-12);
}

TEST(Theorem1, ClosedFormMatchesPaperFormula) {
  const double L = 2.0;
  const double x = 1.0;
  const double y = 0.25;
  const double expected = (L * L - x * x / 4.0 - (2.0 * L - x) * y) / (L * L);
  EXPECT_DOUBLE_EQ(dominance_ability_angle(x, y, L), expected);
}

TEST(Theorem1, RejectsPointsOutsideSector) {
  EXPECT_THROW(dominance_ability_angle(1.0, 0.6, 1.0), mrsky::InvalidArgument);  // y > x/2
  EXPECT_THROW(dominance_ability_angle(-0.1, 0.0, 1.0), mrsky::InvalidArgument);
  EXPECT_THROW(dominance_ability_angle(2.5, 0.2, 1.0), mrsky::InvalidArgument);  // x > 2L
  EXPECT_THROW(dominance_ability_angle(1.0, 0.2, 0.0), mrsky::InvalidArgument);  // L = 0
}

TEST(GridAbility, CornerCases) {
  EXPECT_DOUBLE_EQ(dominance_ability_grid(0.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(dominance_ability_grid(1.0, 1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(dominance_ability_grid(0.5, 0.5, 1.0), 0.25);
}

TEST(GridAbility, RejectsOutsideCell) {
  EXPECT_THROW(dominance_ability_grid(1.5, 0.5, 1.0), mrsky::InvalidArgument);
  EXPECT_THROW(dominance_ability_grid(0.5, -0.1, 1.0), mrsky::InvalidArgument);
}

TEST(MonteCarlo, AngleMatchesClosedForm) {
  common::Rng rng(42);
  const double L = 1.0;
  for (const auto& [x, y] : std::vector<std::pair<double, double>>{
           {0.2, 0.05}, {0.5, 0.2}, {1.0, 0.3}, {1.5, 0.5}}) {
    const double closed = dominance_ability_angle(x, y, L);
    const double estimated = monte_carlo_angle(x, y, L, 200000, rng);
    EXPECT_NEAR(estimated, closed, 0.01) << "x=" << x << " y=" << y;
  }
}

TEST(MonteCarlo, GridMatchesClosedForm) {
  common::Rng rng(43);
  const double L = 1.0;
  for (const auto& [x, y] : std::vector<std::pair<double, double>>{
           {0.1, 0.1}, {0.5, 0.25}, {0.8, 0.4}}) {
    const double closed = dominance_ability_grid(x, y, L);
    const double estimated = monte_carlo_grid(x, y, L, 200000, rng);
    EXPECT_NEAR(estimated, closed, 0.01);
  }
}

TEST(MonteCarlo, RejectsZeroSamples) {
  common::Rng rng(1);
  EXPECT_THROW(monte_carlo_angle(0.5, 0.1, 1.0, 0, rng), mrsky::InvalidArgument);
  EXPECT_THROW(monte_carlo_grid(0.5, 0.1, 1.0, 0, rng), mrsky::InvalidArgument);
}

// Theorem 2 as a property sweep: for points in the overlap of both
// partitions' validity regions (x <= L so grid applies, y <= x/2 so angle
// applies), the angle-vs-grid gap respects the paper's lower bound.
TEST(Theorem2, LowerBoundHoldsAcrossSweep) {
  const double L = 1.0;
  for (double x = 0.0; x <= L; x += 0.05) {
    for (double y = 0.0; y <= x / 2.0 + 1e-12; y += 0.025) {
      const double yy = std::min(y, x / 2.0);
      const double delta =
          dominance_ability_angle(x, yy, L) - dominance_ability_grid(x, yy, L);
      EXPECT_GE(delta + 1e-12, delta_lower_bound(x, L)) << "x=" << x << " y=" << yy;
    }
  }
}

TEST(Theorem2, AngleAlwaysAtLeastGridInOverlap) {
  common::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    const double y = rng.uniform(0.0, x / 2.0);
    const double delta = dominance_ability_angle(x, y, 1.0) - dominance_ability_grid(x, y, 1.0);
    EXPECT_GE(delta, -1e-12);
  }
}

TEST(Theorem2, BoundIsTightAtYEqualsHalfX) {
  // The proof's inequality chain becomes equality at y = x/2.
  const double L = 1.0;
  for (double x = 0.1; x <= 1.0; x += 0.1) {
    const double y = x / 2.0;
    const double delta = dominance_ability_angle(x, y, L) - dominance_ability_grid(x, y, L);
    EXPECT_NEAR(delta, delta_lower_bound(x, L), 1e-12);
  }
}

TEST(Theorem2, LowerBoundPeaksAtL) {
  // d/dx [x/(2L²)(L − x/2)] = 0 at x = L.
  const double L = 1.0;
  EXPECT_GT(delta_lower_bound(1.0, L), delta_lower_bound(0.5, L));
  EXPECT_GT(delta_lower_bound(1.0, L), delta_lower_bound(1.5, L));
}

}  // namespace
}  // namespace mrsky::core::analysis
