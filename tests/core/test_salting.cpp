// Partition salting (MRSkylineConfig::salt_oversized_partitions).
#include <gtest/gtest.h>

#include "src/core/mr_skyline.hpp"
#include "src/dataset/generators.hpp"
#include "src/dataset/normalize.hpp"
#include "src/dataset/qws.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/verify.hpp"

namespace mrsky::core {
namespace {

using data::PointSet;

PointSet clumped_workload(std::size_t n) {
  // QWS-like data is direction-clumped: pure angular partitioning piles most
  // points into few sectors, which is exactly what salting targets.
  data::QwsLikeGenerator gen(8, 53);
  return data::normalize_min_max(gen.generate_oriented(n));
}

MRSkylineConfig salted_config(bool salted) {
  MRSkylineConfig config;
  config.scheme = part::Scheme::kAngular;
  config.servers = 8;
  config.salt_oversized_partitions = salted;
  return config;
}

TEST(Salting, SkylineUnchanged) {
  const PointSet ps = clumped_workload(5000);
  const auto plain = run_mr_skyline(ps, salted_config(false));
  const auto salted = run_mr_skyline(ps, salted_config(true));
  EXPECT_TRUE(skyline::same_ids(plain.skyline, salted.skyline));
  EXPECT_TRUE(skyline::same_ids(salted.skyline, skyline::bnl_skyline(ps)));
}

TEST(Salting, SplitsTheDenseSector) {
  const PointSet ps = clumped_workload(10000);
  const auto plain = run_mr_skyline(ps, salted_config(false));
  const auto salted = run_mr_skyline(ps, salted_config(true));
  // More reduce tasks than partitions, and the largest reduce task shrinks.
  EXPECT_GT(salted.partition_job.reduce_tasks.size(),
            plain.partition_job.reduce_tasks.size());
  auto max_records = [](const mr::JobMetrics& m) {
    std::uint64_t best = 0;
    for (const auto& t : m.reduce_tasks) best = std::max(best, t.records_in);
    return best;
  };
  EXPECT_LT(max_records(salted.partition_job), max_records(plain.partition_job));
}

TEST(Salting, LocalSkylinesStillIndexedByPartition) {
  const PointSet ps = clumped_workload(4000);
  const auto salted = run_mr_skyline(ps, salted_config(true));
  EXPECT_EQ(salted.local_skylines.size(), 16u);  // partitions, not keys
  std::size_t covered = 0;
  for (const auto& ls : salted.local_skylines) covered += ls.size();
  EXPECT_GE(covered, salted.skyline.size());
}

TEST(Salting, NoopOnBalancedData) {
  // Random partitioning is already balanced: salting must not change the
  // reduce-task count.
  const PointSet ps = data::generate(data::Distribution::kIndependent, 4000, 3, 55);
  MRSkylineConfig base = salted_config(false);
  base.scheme = part::Scheme::kRandom;
  MRSkylineConfig salted = salted_config(true);
  salted.scheme = part::Scheme::kRandom;
  const auto a = run_mr_skyline(ps, base);
  const auto b = run_mr_skyline(ps, salted);
  EXPECT_EQ(a.partition_job.reduce_tasks.size(), b.partition_job.reduce_tasks.size());
}

TEST(Salting, WorksWithTreeMergeAndCombiner) {
  const PointSet ps = clumped_workload(3000);
  MRSkylineConfig config = salted_config(true);
  config.merge_fan_in = 4;
  config.use_combiner = true;
  const auto result = run_mr_skyline(ps, config);
  EXPECT_TRUE(skyline::same_ids(result.skyline, skyline::bnl_skyline(ps)));
}

TEST(Salting, WorksWithGridPruning) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 5000, 2, 57);
  MRSkylineConfig config = salted_config(true);
  config.scheme = part::Scheme::kGrid;
  const auto result = run_mr_skyline(ps, config);
  EXPECT_TRUE(skyline::same_ids(result.skyline, skyline::bnl_skyline(ps)));
  EXPECT_FALSE(result.partition_report.prunable.empty());
}

TEST(Salting, RejectsBadFactor) {
  const PointSet ps = clumped_workload(100);
  MRSkylineConfig config = salted_config(true);
  config.salt_target_factor = 0.5;
  EXPECT_THROW(run_mr_skyline(ps, config), mrsky::InvalidArgument);
}

TEST(Salting, LocalPointsCounterMatchesLocalSkylineSizes) {
  // `skyline.local_points` counts the reduce-side local-skyline pass only,
  // so it must equal the summed local skyline sizes with the combiner off
  // AND on (the map-side pass reports as `skyline.combine_points` instead
  // of double-counting into the same name).
  const PointSet ps = clumped_workload(4000);
  for (bool combiner : {false, true}) {
    MRSkylineConfig config = salted_config(true);
    config.use_combiner = combiner;
    const auto result = run_mr_skyline(ps, config);
    std::uint64_t local_total = 0;
    for (const auto& ls : result.local_skylines) local_total += ls.size();
    const auto totals = result.partition_job.counter_totals();
    EXPECT_EQ(totals.at("skyline.local_points"), local_total)
        << "use_combiner=" << combiner;
    if (combiner) {
      // The combine pass ran and reported under its own counter, charged to
      // the map side; the reduce side never increments it.
      EXPECT_GT(totals.at("skyline.combine_points"), 0u);
      EXPECT_EQ(result.partition_job.map_total().counters.count("skyline.local_points"), 0u);
      EXPECT_EQ(result.partition_job.reduce_total().counters.count("skyline.combine_points"),
                0u);
    } else {
      EXPECT_EQ(totals.count("skyline.combine_points"), 0u);
    }
  }
}

TEST(Salting, DeterministicAcrossRuns) {
  const PointSet ps = clumped_workload(2000);
  const auto a = run_mr_skyline(ps, salted_config(true));
  const auto b = run_mr_skyline(ps, salted_config(true));
  EXPECT_EQ(sorted_ids(a.skyline), sorted_ids(b.skyline));
  EXPECT_EQ(a.partition_job.shuffle_records, b.partition_job.shuffle_records);
}

}  // namespace
}  // namespace mrsky::core
