#include "src/core/mr_skyline.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "src/common/error.hpp"
#include "src/dataset/generators.hpp"
#include "src/dataset/normalize.hpp"
#include "src/dataset/qws.hpp"
#include "src/skyline/verify.hpp"

namespace mrsky::core {
namespace {

using data::Distribution;
using data::PointSet;

MRSkylineConfig config_for(part::Scheme scheme, std::size_t servers = 4) {
  MRSkylineConfig config;
  config.scheme = scheme;
  config.servers = servers;
  return config;
}

// ---- Correctness: every scheme must produce the exact global skyline ----

using Param = std::tuple<part::Scheme, Distribution, std::size_t /*dim*/>;

class MRSkylineCorrectness : public testing::TestWithParam<Param> {};

TEST_P(MRSkylineCorrectness, MatchesSequentialBnl) {
  const auto [scheme, dist, dim] = GetParam();
  const PointSet ps = data::generate(dist, 800, dim, 0xACE + dim);
  const auto result = run_mr_skyline(ps, config_for(scheme));
  EXPECT_TRUE(skyline::same_ids(result.skyline, skyline::bnl_skyline(ps)))
      << part::to_string(scheme) << " on " << data::to_string(dist) << " d=" << dim;
}

TEST_P(MRSkylineCorrectness, OutputVerifiesAgainstDataset) {
  const auto [scheme, dist, dim] = GetParam();
  const PointSet ps = data::generate(dist, 500, dim, 0xCAFE + dim);
  const auto result = run_mr_skyline(ps, config_for(scheme));
  const auto verdict = skyline::verify_skyline(ps, result.skyline);
  EXPECT_TRUE(verdict.ok) << verdict.message;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MRSkylineCorrectness,
    testing::Combine(testing::Values(part::Scheme::kDimensional, part::Scheme::kGrid,
                                     part::Scheme::kAngular, part::Scheme::kAngularEquiDepth,
                                     part::Scheme::kAngularRadial, part::Scheme::kRandom),
                     testing::Values(Distribution::kIndependent, Distribution::kAnticorrelated),
                     testing::Values(std::size_t{2}, std::size_t{3}, std::size_t{6})),
    [](const auto& info) {
      std::string name = part::to_string(std::get<0>(info.param)) + "_" +
                         data::to_string(std::get<1>(info.param)) + "_d" +
                         std::to_string(std::get<2>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---- Pipeline structure -------------------------------------------------

TEST(MRSkyline, LocalSkylinesCoverGlobalSkyline) {
  const PointSet ps = data::generate(Distribution::kIndependent, 1000, 3, 42);
  const auto result = run_mr_skyline(ps, config_for(part::Scheme::kAngular));
  // Every global skyline id must appear in some local skyline.
  std::vector<data::PointId> local_ids;
  for (const auto& local : result.local_skylines) {
    local_ids.insert(local_ids.end(), local.ids().begin(), local.ids().end());
  }
  for (data::PointId id : result.skyline.ids()) {
    EXPECT_NE(std::find(local_ids.begin(), local_ids.end(), id), local_ids.end());
  }
}

TEST(MRSkyline, LocalSkylineOfPartitionIsActuallyLocal) {
  const PointSet ps = data::generate(Distribution::kIndependent, 600, 2, 7);
  const auto result = run_mr_skyline(ps, config_for(part::Scheme::kDimensional));
  // Each reported local skyline must be undominated within itself.
  for (const auto& local : result.local_skylines) {
    if (local.empty()) continue;
    EXPECT_TRUE(skyline::same_ids(local, skyline::bnl_skyline(local)));
  }
}

TEST(MRSkyline, DefaultPartitionsFollowPaper) {
  // Np = 2 × servers (paper §III-A).
  const PointSet ps = data::generate(Distribution::kIndependent, 300, 2, 9);
  MRSkylineConfig config = config_for(part::Scheme::kAngular, 6);
  const auto result = run_mr_skyline(ps, config);
  EXPECT_EQ(result.local_skylines.size(), 12u);
  EXPECT_EQ(result.partition_job.reduce_tasks.size(), 12u);
}

TEST(MRSkyline, ExplicitPartitionCountRespected) {
  const PointSet ps = data::generate(Distribution::kIndependent, 300, 2, 9);
  MRSkylineConfig config = config_for(part::Scheme::kGrid);
  config.num_partitions = 9;
  const auto result = run_mr_skyline(ps, config);
  EXPECT_EQ(result.local_skylines.size(), 9u);
}

TEST(MRSkyline, MergeJobHasSingleReducer) {
  const PointSet ps = data::generate(Distribution::kIndependent, 300, 2, 11);
  const auto result = run_mr_skyline(ps, config_for(part::Scheme::kAngular));
  EXPECT_EQ(result.merge_job().reduce_tasks.size(), 1u);
}

TEST(MRSkyline, CombinerReducesShuffleVolume) {
  const PointSet ps = data::generate(Distribution::kIndependent, 2000, 4, 13);
  MRSkylineConfig with = config_for(part::Scheme::kAngular);
  with.use_combiner = true;
  MRSkylineConfig without = config_for(part::Scheme::kAngular);
  without.use_combiner = false;
  const auto result_with = run_mr_skyline(ps, with);
  const auto result_without = run_mr_skyline(ps, without);
  // Same answer, less shuffled data.
  EXPECT_TRUE(skyline::same_ids(result_with.skyline, result_without.skyline));
  EXPECT_LT(result_with.partition_job.shuffle_records,
            result_without.partition_job.shuffle_records);
}

TEST(MRSkyline, GridPruningSkipsWorkWithoutChangingResult) {
  const PointSet ps = data::generate(Distribution::kIndependent, 3000, 2, 17);
  MRSkylineConfig pruned = config_for(part::Scheme::kGrid, 8);
  MRSkylineConfig unpruned = config_for(part::Scheme::kGrid, 8);
  unpruned.apply_grid_pruning = false;
  const auto result_pruned = run_mr_skyline(ps, pruned);
  const auto result_unpruned = run_mr_skyline(ps, unpruned);
  EXPECT_TRUE(skyline::same_ids(result_pruned.skyline, result_unpruned.skyline));
  EXPECT_FALSE(result_pruned.partition_report.prunable.empty());
  EXPECT_GT(result_pruned.partition_report.pruned_points, 0u);
}

TEST(MRSkyline, WorkUnitsAreCharged) {
  const PointSet ps = data::generate(Distribution::kIndependent, 500, 3, 19);
  const auto result = run_mr_skyline(ps, config_for(part::Scheme::kAngular));
  EXPECT_GT(result.partition_job.total_work_units(), 0u);
  EXPECT_GT(result.merge_job().total_work_units(), 0u);
}

TEST(MRSkyline, SimulationRespondsToServers) {
  const PointSet ps = data::generate(Distribution::kIndependent, 3000, 5, 23);
  const auto result = run_mr_skyline(ps, config_for(part::Scheme::kAngular, 16));
  mr::ClusterModel small;
  small.servers = 4;
  mr::ClusterModel big;
  big.servers = 16;
  EXPECT_GT(result.simulate(small).total_seconds(), result.simulate(big).total_seconds());
}

TEST(MRSkyline, ThreadedRunIdenticalToSequential) {
  const PointSet ps = data::generate(Distribution::kAnticorrelated, 800, 3, 29);
  MRSkylineConfig seq = config_for(part::Scheme::kAngular);
  MRSkylineConfig par = config_for(part::Scheme::kAngular);
  par.run_options.mode = mr::ExecutionMode::kThreads;
  par.run_options.num_threads = 4;
  const auto a = run_mr_skyline(ps, seq);
  const auto b = run_mr_skyline(ps, par);
  EXPECT_EQ(sorted_ids(a.skyline), sorted_ids(b.skyline));
  EXPECT_EQ(a.partition_job.shuffle_records, b.partition_job.shuffle_records);
}

TEST(MRSkyline, AlternativeLocalAlgorithmsAgree) {
  const PointSet ps = data::generate(Distribution::kIndependent, 700, 4, 31);
  MRSkylineConfig bnl = config_for(part::Scheme::kAngular);
  MRSkylineConfig sfs = config_for(part::Scheme::kAngular);
  sfs.local_algorithm = skyline::Algorithm::kSfs;
  MRSkylineConfig dc = config_for(part::Scheme::kAngular);
  dc.local_algorithm = skyline::Algorithm::kDivideConquer;
  const auto r_bnl = run_mr_skyline(ps, bnl);
  const auto r_sfs = run_mr_skyline(ps, sfs);
  const auto r_dc = run_mr_skyline(ps, dc);
  EXPECT_TRUE(skyline::same_ids(r_bnl.skyline, r_sfs.skyline));
  EXPECT_TRUE(skyline::same_ids(r_bnl.skyline, r_dc.skyline));
}

TEST(MRSkyline, QwsWorkloadEndToEnd) {
  data::QwsLikeGenerator gen(10, 37);
  const PointSet ps = data::normalize_min_max(gen.generate_oriented(1500));
  const auto result = run_mr_skyline(ps, config_for(part::Scheme::kAngular));
  EXPECT_TRUE(skyline::same_ids(result.skyline, skyline::bnl_skyline(ps)));
  EXPECT_GT(result.skyline.size(), 0u);
  EXPECT_LT(result.skyline.size(), ps.size());
}

TEST(MRSkyline, SinglePointDataset) {
  PointSet ps(3, {0.5, 0.5, 0.5});
  const auto result = run_mr_skyline(ps, config_for(part::Scheme::kAngular));
  ASSERT_EQ(result.skyline.size(), 1u);
  EXPECT_EQ(result.skyline.id(0), 0u);
}

TEST(MRSkyline, DuplicatePointsAllSurvive) {
  PointSet ps(2, {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 2.0});
  const auto result = run_mr_skyline(ps, config_for(part::Scheme::kAngular));
  EXPECT_EQ(result.skyline.size(), 3u);
}

TEST(MRSkyline, EmptyInputThrows) {
  EXPECT_THROW(run_mr_skyline(PointSet(2), config_for(part::Scheme::kAngular)),
               mrsky::InvalidArgument);
}

TEST(MRSkyline, ZeroServersThrows) {
  PointSet ps(2, {1.0, 1.0});
  MRSkylineConfig config = config_for(part::Scheme::kAngular);
  config.servers = 0;
  EXPECT_THROW(run_mr_skyline(ps, config), mrsky::InvalidArgument);
}

TEST(MRSkyline, WallClockIsMeasured) {
  const PointSet ps = data::generate(Distribution::kIndependent, 500, 3, 41);
  const auto result = run_mr_skyline(ps, config_for(part::Scheme::kAngular));
  EXPECT_GT(result.wall_seconds, 0.0);
}

}  // namespace
}  // namespace mrsky::core
