// Tree-merge (merge_fan_in) tests: multi-round merging must return the same
// skyline as the paper's single-reducer merge while splitting the merge work
// across rounds and reducers.
#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/core/mr_skyline.hpp"
#include "src/dataset/generators.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/verify.hpp"

namespace mrsky::core {
namespace {

using data::PointSet;

MRSkylineConfig tree_config(std::size_t fan_in, std::size_t servers = 8) {
  MRSkylineConfig config;
  config.scheme = part::Scheme::kAngular;
  config.servers = servers;
  config.merge_fan_in = fan_in;
  return config;
}

TEST(TreeMerge, SingleReducerHasOneRound) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 500, 3, 3);
  const auto result = run_mr_skyline(ps, tree_config(0));
  EXPECT_EQ(result.merge_rounds.size(), 1u);
  EXPECT_EQ(result.merge_job().reduce_tasks.size(), 1u);
}

TEST(TreeMerge, FanInOneRejected) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 100, 2, 5);
  EXPECT_THROW(run_mr_skyline(ps, tree_config(1)), mrsky::InvalidArgument);
}

TEST(TreeMerge, RoundCountIsLogFanInOfPartitions) {
  // 8 servers -> 16 partitions; fan-in 4 -> 16 -> 4 -> 1: two rounds.
  const PointSet ps = data::generate(data::Distribution::kIndependent, 800, 3, 7);
  const auto result = run_mr_skyline(ps, tree_config(4));
  EXPECT_EQ(result.merge_rounds.size(), 2u);
  // fan-in 2 -> 16 -> 8 -> 4 -> 2 -> 1: four rounds.
  const auto result2 = run_mr_skyline(ps, tree_config(2));
  EXPECT_EQ(result2.merge_rounds.size(), 4u);
}

TEST(TreeMerge, SkylineIdenticalToSingleReducer) {
  const PointSet ps = data::generate(data::Distribution::kAnticorrelated, 1200, 4, 9);
  const auto flat = run_mr_skyline(ps, tree_config(0));
  for (std::size_t fan_in : {2u, 3u, 4u, 8u}) {
    const auto tree = run_mr_skyline(ps, tree_config(fan_in));
    EXPECT_TRUE(skyline::same_ids(flat.skyline, tree.skyline)) << "fan_in=" << fan_in;
  }
}

TEST(TreeMerge, MatchesSequentialReference) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 900, 5, 11);
  const auto result = run_mr_skyline(ps, tree_config(4));
  EXPECT_TRUE(skyline::same_ids(result.skyline, skyline::bnl_skyline(ps)));
}

TEST(TreeMerge, IntermediateRoundsUseParallelReducers) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 800, 3, 13);
  const auto result = run_mr_skyline(ps, tree_config(4));
  ASSERT_EQ(result.merge_rounds.size(), 2u);
  EXPECT_EQ(result.merge_rounds[0].reduce_tasks.size(), 4u);  // 16 partitions / 4
  EXPECT_EQ(result.merge_rounds[1].reduce_tasks.size(), 1u);
}

TEST(TreeMerge, MergeJobAliasesLastRound) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 400, 3, 15);
  const auto result = run_mr_skyline(ps, tree_config(4));
  EXPECT_EQ(result.merge_job().job_name, result.merge_rounds.back().job_name);
  EXPECT_EQ(result.merge_job().reduce_tasks.size(),
            result.merge_rounds.back().reduce_tasks.size());
}

TEST(TreeMerge, SimulationAccountsForEveryRound) {
  // More rounds => more job startups; with tiny data the startup dominates,
  // so the 4-round fan-in-2 pipeline must simulate strictly slower than the
  // single-round merge.
  const PointSet ps = data::generate(data::Distribution::kIndependent, 300, 2, 17);
  const auto flat = run_mr_skyline(ps, tree_config(0));
  const auto tree = run_mr_skyline(ps, tree_config(2));
  mr::ClusterModel model;
  model.servers = 8;
  EXPECT_GT(tree.simulate(model).startup_seconds, flat.simulate(model).startup_seconds);
}

TEST(TreeMerge, WorksWithEveryScheme) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 600, 3, 19);
  const auto reference = skyline::bnl_skyline(ps);
  for (part::Scheme scheme : {part::Scheme::kDimensional, part::Scheme::kGrid,
                              part::Scheme::kAngular, part::Scheme::kRandom}) {
    auto config = tree_config(4);
    config.scheme = scheme;
    const auto result = run_mr_skyline(ps, config);
    EXPECT_TRUE(skyline::same_ids(result.skyline, reference)) << part::to_string(scheme);
  }
}

}  // namespace
}  // namespace mrsky::core
