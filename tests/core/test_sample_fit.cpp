// Sample-based partitioner fitting (MRSkylineConfig::fit_sample_size) and
// the run summary.
#include <gtest/gtest.h>

#include "src/core/mr_skyline.hpp"
#include "src/dataset/generators.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/verify.hpp"

namespace mrsky::core {
namespace {

using data::PointSet;

TEST(SampleFit, SkylineStillExactForEveryScheme) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 3000, 4, 31);
  const auto reference = skyline::bnl_skyline(ps);
  for (part::Scheme scheme : {part::Scheme::kDimensional, part::Scheme::kGrid,
                              part::Scheme::kAngular}) {
    MRSkylineConfig config;
    config.scheme = scheme;
    config.servers = 4;
    config.fit_sample_size = 200;
    const auto result = run_mr_skyline(ps, config);
    EXPECT_TRUE(skyline::same_ids(result.skyline, reference)) << part::to_string(scheme);
  }
}

TEST(SampleFit, SampleLargerThanDataFallsBackToFull) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 300, 3, 33);
  MRSkylineConfig full;
  full.scheme = part::Scheme::kAngular;
  full.servers = 4;
  MRSkylineConfig oversized = full;
  oversized.fit_sample_size = 10000;
  const auto a = run_mr_skyline(ps, full);
  const auto b = run_mr_skyline(ps, oversized);
  EXPECT_EQ(a.partition_report.sizes, b.partition_report.sizes);
}

TEST(SampleFit, DeterministicUnderSeed) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 2000, 3, 35);
  MRSkylineConfig config;
  config.scheme = part::Scheme::kAngular;
  config.servers = 4;
  config.fit_sample_size = 150;
  const auto a = run_mr_skyline(ps, config);
  const auto b = run_mr_skyline(ps, config);
  EXPECT_EQ(a.partition_report.sizes, b.partition_report.sizes);
}

TEST(SampleFit, DifferentSeedsShiftBoundaries) {
  const PointSet ps = data::generate(data::Distribution::kClustered, 2000, 3, 37);
  MRSkylineConfig a_config;
  a_config.scheme = part::Scheme::kAngularEquiDepth;
  a_config.servers = 4;
  a_config.fit_sample_size = 100;
  MRSkylineConfig b_config = a_config;
  b_config.fit_sample_seed = a_config.fit_sample_seed + 1;
  const auto a = run_mr_skyline(ps, a_config);
  const auto b = run_mr_skyline(ps, b_config);
  // Same exact skyline either way...
  EXPECT_TRUE(skyline::same_ids(a.skyline, b.skyline));
  // ...but (almost surely) different partition boundaries.
  EXPECT_NE(a.partition_report.sizes, b.partition_report.sizes);
}

TEST(Summary, MentionsTheHeadlineNumbers) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 500, 3, 39);
  MRSkylineConfig config;
  config.scheme = part::Scheme::kAngular;
  config.servers = 4;
  const auto result = run_mr_skyline(ps, config);
  const std::string text = result.summary();
  EXPECT_NE(text.find("skyline points:"), std::string::npos);
  EXPECT_NE(text.find(std::to_string(result.skyline.size())), std::string::npos);
  EXPECT_NE(text.find("merge rounds:"), std::string::npos);
  EXPECT_NE(text.find("balance CV"), std::string::npos);
}

}  // namespace
}  // namespace mrsky::core
