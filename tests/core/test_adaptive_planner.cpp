// core::AdaptivePlanner — sample → analyze → optimize, and the scheme=auto
// resolution path through run_mr_skyline. Tests pin explicit CostConstants so
// candidate pricing (and hence every assertion) is machine-independent.
#include "src/core/adaptive_planner.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/error.hpp"
#include "src/dataset/generators.hpp"
#include "src/partition/factory.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/verify.hpp"

namespace mrsky::core {
namespace {

/// Fixed constants: deterministic pricing regardless of the host machine.
CostConstants pinned_constants() {
  CostConstants c;
  c.seconds_per_dominance_test = 4e-9;
  c.seconds_per_assign_dim = 2e-9;
  c.seconds_per_shuffle_record = 1.2e-7;
  c.seconds_per_job = 2e-4;
  return c;
}

AdaptivePlannerOptions pinned_options() {
  AdaptivePlannerOptions options;
  options.constants = pinned_constants();
  return options;
}

data::PointSet workload(std::size_t n = 4000, std::size_t dim = 4,
                        std::uint64_t seed = 71) {
  return data::generate(data::Distribution::kAnticorrelated, n, dim, seed);
}

TEST(AdaptivePlanner, SmallDatasetsFallBackToStaticHeuristic) {
  const auto ps = data::generate(data::Distribution::kIndependent, 100, 4, 7);
  const AdaptivePlanner planner(pinned_options());
  const AdaptivePlan plan = planner.plan(ps, MRSkylineConfig{});
  EXPECT_TRUE(plan.fallback);
  EXPECT_TRUE(plan.candidates.empty());
  EXPECT_NE(plan.config.scheme, part::Scheme::kAuto);
  EXPECT_TRUE(plan.config.validate().empty());
  EXPECT_NE(plan.rationale.find("static heuristic"), std::string::npos);
}

TEST(AdaptivePlanner, PlanIsDeterministic) {
  const auto ps = workload();
  const AdaptivePlanner planner(pinned_options());
  const AdaptivePlan a = planner.plan(ps, MRSkylineConfig{});
  const AdaptivePlan b = planner.plan(ps, MRSkylineConfig{});
  EXPECT_EQ(a.chosen.scheme, b.chosen.scheme);
  EXPECT_EQ(a.chosen.partitions, b.chosen.partitions);
  EXPECT_EQ(a.chosen.merge_fan_in, b.chosen.merge_fan_in);
  EXPECT_EQ(a.chosen.salted, b.chosen.salted);
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(a.candidates[i].scheme, b.candidates[i].scheme) << "candidate " << i;
    EXPECT_DOUBLE_EQ(a.candidates[i].total_seconds(), b.candidates[i].total_seconds());
  }
}

TEST(AdaptivePlanner, ResolvedConfigValidatesAndIsNeverAuto) {
  const auto ps = workload();
  MRSkylineConfig base;
  base.scheme = part::Scheme::kAuto;
  base.servers = 6;
  const AdaptivePlan plan = AdaptivePlanner(pinned_options()).plan(ps, base);
  EXPECT_FALSE(plan.fallback);
  EXPECT_NE(plan.config.scheme, part::Scheme::kAuto);
  EXPECT_TRUE(plan.config.validate().empty());
  // Fields the planner does not decide pass through from the base config.
  EXPECT_EQ(plan.config.servers, 6u);
  EXPECT_EQ(plan.config.prepared_partitioner, nullptr);
}

TEST(AdaptivePlanner, CandidatesSortedCheapestFirstAndChosenIsFirst) {
  const auto ps = workload();
  const AdaptivePlan plan = AdaptivePlanner(pinned_options()).plan(ps, MRSkylineConfig{});
  ASSERT_FALSE(plan.candidates.empty());
  EXPECT_TRUE(std::is_sorted(
      plan.candidates.begin(), plan.candidates.end(),
      [](const PlanCandidate& a, const PlanCandidate& b) {
        return a.total_seconds() < b.total_seconds();
      }));
  EXPECT_EQ(plan.chosen.scheme, plan.candidates.front().scheme);
  EXPECT_EQ(plan.chosen.partitions, plan.candidates.front().partitions);
  EXPECT_DOUBLE_EQ(plan.chosen.total_seconds(), plan.candidates.front().total_seconds());
  // Every candidate carries a full phase breakdown and analysis fields.
  for (const PlanCandidate& c : plan.candidates) {
    EXPECT_GT(c.total_seconds(), 0.0);
    EXPECT_GT(c.partitions, 0u);
    EXPECT_GE(c.predicted_merge_input, 0.0);
  }
}

TEST(AdaptivePlanner, RationaleNamesTheDecision) {
  const auto ps = workload();
  const AdaptivePlan plan = AdaptivePlanner(pinned_options()).plan(ps, MRSkylineConfig{});
  EXPECT_NE(plan.rationale.find(part::to_string(plan.chosen.scheme)), std::string::npos);
  EXPECT_NE(plan.rationale.find("candidate"), std::string::npos);
  EXPECT_GT(plan.sample_points, 0u);
}

TEST(AdaptivePlanner, SampleSizeCapsAnalyzedPoints) {
  const auto ps = workload(5000);
  AdaptivePlannerOptions options = pinned_options();
  options.sample_size = 1024;
  const AdaptivePlan plan = AdaptivePlanner(options).plan(ps, MRSkylineConfig{});
  EXPECT_EQ(plan.sample_points, 1024u);
}

TEST(SchemeAuto, FactoryRejectsAutoAsPartitioner) {
  part::PartitionerOptions options;
  options.num_partitions = 8;
  EXPECT_THROW((void)part::make_partitioner(part::Scheme::kAuto, options),
               mrsky::RuntimeError);
}

TEST(SchemeAuto, ParseAndToStringRoundTrip) {
  EXPECT_EQ(part::parse_scheme("auto"), part::Scheme::kAuto);
  EXPECT_EQ(part::parse_scheme("adaptive"), part::Scheme::kAuto);
  EXPECT_EQ(part::to_string(part::Scheme::kAuto), "auto");
}

TEST(SchemeAuto, RunMrSkylineResolvesAutoAndMatchesBnl) {
  const auto ps = workload(3000);
  MRSkylineConfig config;
  config.scheme = part::Scheme::kAuto;
  const MRSkylineResult result = run_mr_skyline(ps, config);
  EXPECT_TRUE(result.plan.engaged);
  EXPECT_NE(result.plan.scheme, part::Scheme::kAuto);
  EXPECT_GT(result.plan.candidates, 0u);
  EXPECT_GE(result.wall_seconds, result.plan.planning_seconds);
  EXPECT_TRUE(skyline::same_ids(result.skyline, skyline::bnl_skyline(ps)));
}

TEST(SchemeAuto, StaticRunsLeavePlanDisengaged) {
  const auto ps = workload(1000);
  const MRSkylineResult result = run_mr_skyline(ps, MRSkylineConfig{});
  EXPECT_FALSE(result.plan.engaged);
  EXPECT_DOUBLE_EQ(result.plan.planning_seconds, 0.0);
}

TEST(SchemeAuto, ReplayingResolvedConfigGivesSameIds) {
  const auto ps = workload(3000);
  MRSkylineConfig config;
  config.scheme = part::Scheme::kAuto;
  const MRSkylineResult auto_run = run_mr_skyline(ps, config);

  MRSkylineConfig resolved;
  resolved.scheme = auto_run.plan.scheme;
  resolved.num_partitions = auto_run.plan.partitions;
  resolved.merge_fan_in = auto_run.plan.merge_fan_in;
  resolved.salt_oversized_partitions = auto_run.plan.salted;
  const MRSkylineResult replay = run_mr_skyline(ps, resolved);
  EXPECT_FALSE(replay.plan.engaged);
  EXPECT_TRUE(skyline::same_ids(auto_run.skyline, replay.skyline));
}

}  // namespace
}  // namespace mrsky::core
