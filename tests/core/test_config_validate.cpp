// MRSkylineConfig::validate() — the all-errors contract (ISSUE 5 satellite)
// and the merge_job()/merge_rounds aliasing invariant.
#include <gtest/gtest.h>

#include <string>

#include "src/core/mr_skyline.hpp"
#include "src/core/planner.hpp"
#include "src/dataset/generators.hpp"

namespace mrsky {
namespace {

TEST(ConfigValidate, DefaultConfigIsValid) {
  const core::MRSkylineConfig config;
  EXPECT_TRUE(config.validate().empty());
  EXPECT_NO_THROW(config.validate_or_throw());
}

TEST(ConfigValidate, EachProblemIsDetected) {
  {
    core::MRSkylineConfig c;
    c.servers = 0;
    ASSERT_EQ(c.validate().size(), 1u);
    EXPECT_NE(c.validate()[0].find("servers"), std::string::npos);
  }
  {
    core::MRSkylineConfig c;
    c.merge_fan_in = 1;
    ASSERT_EQ(c.validate().size(), 1u);
    EXPECT_NE(c.validate()[0].find("merge_fan_in"), std::string::npos);
  }
  {
    core::MRSkylineConfig c;
    c.salt_oversized_partitions = true;
    c.salt_target_factor = 0.5;
    ASSERT_EQ(c.validate().size(), 1u);
    EXPECT_NE(c.validate()[0].find("salt_target_factor"), std::string::npos);
  }
  {
    core::MRSkylineConfig c;
    c.scheme = part::Scheme::kAngularRadial;
    c.num_partitions = 7;
    ASSERT_EQ(c.validate().size(), 1u);
    EXPECT_NE(c.validate()[0].find("even"), std::string::npos);
  }
  {
    core::MRSkylineConfig c;
    c.run_options.max_task_attempts = 0;
    ASSERT_EQ(c.validate().size(), 1u);
    EXPECT_NE(c.validate()[0].find("max_task_attempts"), std::string::npos);
  }
  {
    core::MRSkylineConfig c;
    c.run_options.task_failure_probability = 1.0;
    ASSERT_EQ(c.validate().size(), 1u);
    EXPECT_NE(c.validate()[0].find("task_failure_probability"), std::string::npos);
  }
}

TEST(ConfigValidate, AllProblemsReportedInOneThrow) {
  core::MRSkylineConfig c;
  c.servers = 0;
  c.merge_fan_in = 1;
  c.salt_oversized_partitions = true;
  c.salt_target_factor = 0.0;
  c.run_options.max_task_attempts = 0;
  c.run_options.task_failure_probability = 2.0;
  EXPECT_EQ(c.validate().size(), 5u);

  try {
    c.validate_or_throw();
    FAIL() << "validate_or_throw did not throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("5 problems"), std::string::npos) << what;
    EXPECT_NE(what.find("servers"), std::string::npos) << what;
    EXPECT_NE(what.find("merge_fan_in"), std::string::npos) << what;
    EXPECT_NE(what.find("salt_target_factor"), std::string::npos) << what;
    EXPECT_NE(what.find("max_task_attempts"), std::string::npos) << what;
    EXPECT_NE(what.find("task_failure_probability"), std::string::npos) << what;
  }
}

TEST(ConfigValidate, RunMrSkylineRejectsBadConfigBeforeTouchingData) {
  const auto ps = data::generate(data::Distribution::kIndependent, 50, 3, 7);
  core::MRSkylineConfig c;
  c.servers = 0;
  c.merge_fan_in = 1;
  try {
    (void)core::run_mr_skyline(ps, c);
    FAIL() << "run_mr_skyline accepted an invalid config";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("servers"), std::string::npos) << what;
    EXPECT_NE(what.find("merge_fan_in"), std::string::npos) << what;
  }
}

TEST(ConfigValidate, PlannerOutputAlwaysValidates) {
  for (std::size_t servers : {1u, 4u, 16u}) {
    for (std::size_t dim : {2u, 6u, 12u}) {
      core::PlannerInputs in;
      in.cardinality = 100000;
      in.dim = dim;
      in.servers = servers;
      const auto planned = core::plan_config(in);
      EXPECT_TRUE(planned.config.validate().empty())
          << "servers=" << servers << " dim=" << dim;
    }
  }
}

TEST(ConfigValidate, MergeJobAliasesLastMergeRound) {
  const auto ps = data::generate(data::Distribution::kAnticorrelated, 200, 3, 11);
  core::MRSkylineConfig config;
  config.merge_fan_in = 2;  // force multiple rounds
  const auto result = core::run_mr_skyline(ps, config);
  ASSERT_FALSE(result.merge_rounds.empty());
  // The aliasing contract is structural now: merge_job() IS the last round,
  // not a copy that could drift.
  EXPECT_EQ(&result.merge_job(), &result.merge_rounds.back());
}

TEST(ConfigValidate, MergeJobThrowsBeforeAnyRun) {
  const core::MRSkylineResult result;
  EXPECT_THROW((void)result.merge_job(), InvalidArgument);
}

}  // namespace
}  // namespace mrsky
