// The local_skyline_override hook: plugging a custom skyline kernel (here
// the index-based BBS) into the MapReduce pipeline.
#include <gtest/gtest.h>

#include "src/core/mr_skyline.hpp"
#include "src/dataset/generators.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/verify.hpp"
#include "src/spatial/bbs.hpp"

namespace mrsky::core {
namespace {

using data::PointSet;

MRSkylineConfig bbs_config() {
  MRSkylineConfig config;
  config.scheme = part::Scheme::kAngular;
  config.servers = 4;
  config.local_skyline_override = [](const PointSet& ps, skyline::SkylineStats* stats) {
    spatial::BbsReport report;
    PointSet sky = spatial::bbs_skyline(ps, &report);
    if (stats != nullptr) *stats += report.stats;
    return sky;
  };
  return config;
}

TEST(KernelOverride, BbsPipelineMatchesBnlPipeline) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 1500, 4, 21);
  MRSkylineConfig bnl;
  bnl.scheme = part::Scheme::kAngular;
  bnl.servers = 4;
  const auto reference = run_mr_skyline(ps, bnl);
  const auto bbs = run_mr_skyline(ps, bbs_config());
  EXPECT_TRUE(skyline::same_ids(reference.skyline, bbs.skyline));
}

TEST(KernelOverride, MatchesSequentialReference) {
  const PointSet ps = data::generate(data::Distribution::kAnticorrelated, 900, 3, 23);
  const auto result = run_mr_skyline(ps, bbs_config());
  EXPECT_TRUE(skyline::same_ids(result.skyline, skyline::bnl_skyline(ps)));
}

TEST(KernelOverride, StatsStillChargeWork) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 800, 3, 25);
  const auto result = run_mr_skyline(ps, bbs_config());
  EXPECT_GT(result.partition_job.reduce_total().work_units, 0u);
  EXPECT_GT(result.merge_job().reduce_total().work_units, 0u);
}

TEST(KernelOverride, OverrideTakesPrecedenceOverEnum) {
  // Even with a bogus enum value the override result must rule. Use a kernel
  // that tags its use through a side effect.
  const PointSet ps = data::generate(data::Distribution::kIndependent, 200, 2, 27);
  int calls = 0;
  MRSkylineConfig config;
  config.scheme = part::Scheme::kAngular;
  config.servers = 2;
  config.local_algorithm = skyline::Algorithm::kNaive;
  config.local_skyline_override = [&calls](const PointSet& points,
                                           skyline::SkylineStats* stats) {
    ++calls;
    return skyline::sfs_skyline(points, stats);
  };
  const auto result = run_mr_skyline(ps, config);
  EXPECT_GT(calls, 0);
  EXPECT_TRUE(skyline::same_ids(result.skyline, skyline::bnl_skyline(ps)));
}

TEST(KernelOverride, WorksWithTreeMerge) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 700, 3, 29);
  auto config = bbs_config();
  config.merge_fan_in = 4;
  const auto result = run_mr_skyline(ps, config);
  EXPECT_TRUE(skyline::same_ids(result.skyline, skyline::bnl_skyline(ps)));
  EXPECT_GT(result.merge_rounds.size(), 1u);
}

}  // namespace
}  // namespace mrsky::core
