// core::CostModel — EWMA refinement, outlier clamping, small-run guard, and
// the skyline growth factor the planner uses to scale sample measurements.
#include "src/core/cost_model.hpp"

#include <gtest/gtest.h>

#include "src/skyline/estimate.hpp"

namespace mrsky::core {
namespace {

TEST(CostModel, DefaultConstructionUsesLibraryDefaults) {
  const CostModel model;
  const CostConstants defaults;
  EXPECT_DOUBLE_EQ(model.constants().seconds_per_dominance_test,
                   defaults.seconds_per_dominance_test);
  EXPECT_EQ(model.observations(), 0u);
}

TEST(CostModel, ExplicitConstantsAreReturnedVerbatim) {
  CostConstants fixed;
  fixed.seconds_per_dominance_test = 1e-8;
  fixed.seconds_per_job = 5e-4;
  const CostModel model(fixed);
  EXPECT_DOUBLE_EQ(model.constants().seconds_per_dominance_test, 1e-8);
  EXPECT_DOUBLE_EQ(model.constants().seconds_per_job, 5e-4);
}

TEST(CostModel, ObserveRunMovesRateTowardImplied) {
  CostModel model;  // defaults: 4e-9 per dominance test
  // 1e6 work units in 8 ms with no shuffle => implied rate 8e-9, inside the
  // clamp window. EWMA with alpha 0.3: 0.7*4e-9 + 0.3*8e-9 = 5.2e-9.
  model.observe_run(1'000'000, 0, 8e-3);
  EXPECT_EQ(model.observations(), 1u);
  EXPECT_NEAR(model.constants().seconds_per_dominance_test, 5.2e-9, 1e-12);
}

TEST(CostModel, ObserveRunSubtractsShuffleOverhead) {
  CostConstants fixed;
  fixed.seconds_per_dominance_test = 4e-9;
  fixed.seconds_per_shuffle_record = 1e-6;
  CostModel model(fixed);
  // Wall = 1000 shuffle records at 1e-6 (= 1 ms overhead) + 1e6 tests at the
  // current 4e-9 rate (= 4 ms attributable). Implied == current => no drift.
  model.observe_run(1'000'000, 1000, 1e-3 + 4e-3);
  EXPECT_EQ(model.observations(), 1u);
  EXPECT_NEAR(model.constants().seconds_per_dominance_test, 4e-9, 1e-12);
}

TEST(CostModel, ObserveRunClampsOutliers) {
  CostModel model;  // 4e-9 default
  // Implied rate 1e-3 per test — an absurd outlier (e.g. the process was
  // descheduled). Clamped to 8x the current rate before the EWMA step:
  // 0.7*4e-9 + 0.3*(8*4e-9) = 12.4e-9.
  model.observe_run(10'000, 0, 10.0);
  EXPECT_NEAR(model.constants().seconds_per_dominance_test, 12.4e-9, 1e-12);
  // Implied rate ~0 (impossibly fast) clamps at 1/8x from the other side.
  CostModel fast;
  fast.observe_run(1'000'000'000, 0, 1e-6);
  const double floor = 0.7 * 4e-9 + 0.3 * (4e-9 / 8.0);
  EXPECT_NEAR(fast.constants().seconds_per_dominance_test, floor, 1e-12);
}

TEST(CostModel, ObserveRunIgnoresRunsWithoutSignal) {
  CostModel model;
  model.observe_run(9'999, 0, 1.0);        // below the min-work guard
  model.observe_run(1'000'000, 0, 0.0);    // no wall
  model.observe_run(1'000'000, 0, -1.0);   // negative wall
  // Shuffle overhead exceeds the wall — nothing attributable to tests.
  CostConstants fixed;
  fixed.seconds_per_shuffle_record = 1.0;
  CostModel shuffled(fixed);
  shuffled.observe_run(1'000'000, 10, 1.0);
  EXPECT_EQ(model.observations(), 0u);
  EXPECT_EQ(shuffled.observations(), 0u);
  const CostConstants defaults;
  EXPECT_DOUBLE_EQ(model.constants().seconds_per_dominance_test,
                   defaults.seconds_per_dominance_test);
}

TEST(CostModel, ProbeCalibrationYieldsPositiveConstants) {
  const CostConstants measured = CostModel::calibrate_by_probe();
  EXPECT_GT(measured.seconds_per_dominance_test, 0.0);
  EXPECT_GT(measured.seconds_per_assign_dim, 0.0);
  EXPECT_GT(measured.seconds_per_shuffle_record, 0.0);
  EXPECT_GT(measured.seconds_per_job, 0.0);
}

TEST(GrowthFactor, DegenerateInputsReturnOne) {
  EXPECT_DOUBLE_EQ(skyline_growth_factor(0, 1000, 4), 1.0);
  EXPECT_DOUBLE_EQ(skyline_growth_factor(1000, 1, 4), 1.0);
  EXPECT_DOUBLE_EQ(skyline_growth_factor(100, 1000, 0), 1.0);
  EXPECT_DOUBLE_EQ(skyline_growth_factor(1000, 1000, 4), 1.0);
}

TEST(GrowthFactor, OneDimensionalSkylinesNeverGrow) {
  // d=1: the skyline is a single point at any scale.
  EXPECT_DOUBLE_EQ(skyline_growth_factor(100, 1'000'000, 1), 1.0);
}

TEST(GrowthFactor, GrowingPopulationGrowsAtLeastOne) {
  const double g = skyline_growth_factor(2048, 100'000, 5);
  EXPECT_GE(g, 1.0);
  // Matches the closed-form ratio exactly.
  const double expected = skyline::approx_skyline_size(100'000, 5) /
                          skyline::approx_skyline_size(2048, 5);
  EXPECT_DOUBLE_EQ(g, expected);
}

TEST(GrowthFactor, MonotoneInTargetSize) {
  const double small = skyline_growth_factor(2048, 10'000, 4);
  const double large = skyline_growth_factor(2048, 1'000'000, 4);
  EXPECT_LT(small, large);
}

TEST(GrowthFactor, ShrinkingPopulationShrinksButStaysPositive) {
  // Salted sub-keys scale a partition skyline DOWN (full_n < sample_n):
  // the factor must drop below 1 and never go negative.
  const double g = skyline_growth_factor(100'000, 2048, 5);
  EXPECT_LT(g, 1.0);
  EXPECT_GT(g, 0.0);
}

}  // namespace
}  // namespace mrsky::core
