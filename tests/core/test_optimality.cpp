#include "src/core/optimality.hpp"

#include <gtest/gtest.h>

#include "src/core/mr_skyline.hpp"
#include "src/dataset/generators.hpp"
#include "src/dataset/normalize.hpp"
#include "src/dataset/qws.hpp"
#include "src/skyline/algorithms.hpp"

namespace mrsky::core {
namespace {

using data::PointSet;

TEST(Optimality, AllLocalPointsGlobalGivesOne) {
  PointSet global(2, {1.0, 5.0, 5.0, 1.0}, {0u, 1u});
  std::vector<PointSet> locals;
  locals.emplace_back(PointSet(2, {1.0, 5.0}, {0u}));
  locals.emplace_back(PointSet(2, {5.0, 1.0}, {1u}));
  const auto report = local_skyline_optimality(locals, global);
  EXPECT_DOUBLE_EQ(report.mean_optimality, 1.0);
  EXPECT_EQ(report.partitions_used, 2u);
  EXPECT_EQ(report.local_total, 2u);
  EXPECT_EQ(report.global_total, 2u);
}

TEST(Optimality, NoSurvivorsGivesZero) {
  PointSet global(2, {0.0, 0.0}, {9u});
  std::vector<PointSet> locals;
  locals.emplace_back(PointSet(2, {1.0, 5.0}, {0u}));
  const auto report = local_skyline_optimality(locals, global);
  EXPECT_DOUBLE_EQ(report.mean_optimality, 0.0);
}

TEST(Optimality, MixedPartitionsAverage) {
  PointSet global(2, {1.0, 1.0, 2.0, 0.5}, {0u, 2u});
  std::vector<PointSet> locals;
  // Partition A: both points global -> 1.0
  locals.emplace_back(PointSet(2, {1.0, 1.0, 2.0, 0.5}, {0u, 2u}));
  // Partition B: neither id is global -> 0.0
  locals.emplace_back(PointSet(2, {1.0, 1.0, 9.0, 9.0}, {3u, 5u}));
  const auto report = local_skyline_optimality(locals, global);
  EXPECT_DOUBLE_EQ(report.mean_optimality, 0.5);  // (1.0 + 0.0) / 2
  EXPECT_DOUBLE_EQ(report.max_optimality, 1.0);
  EXPECT_DOUBLE_EQ(report.min_optimality, 0.0);
}

TEST(Optimality, EmptyLocalsExcludedFromAverage) {
  PointSet global(2, {1.0, 1.0}, {0u});
  std::vector<PointSet> locals;
  locals.emplace_back(PointSet(2));  // empty (e.g. pruned partition)
  locals.emplace_back(PointSet(2, {1.0, 1.0}, {0u}));
  const auto report = local_skyline_optimality(locals, global);
  EXPECT_EQ(report.partitions_used, 1u);
  EXPECT_DOUBLE_EQ(report.mean_optimality, 1.0);
}

TEST(Optimality, NoPartitionsAtAllIsZero) {
  PointSet global(2);
  const std::vector<PointSet> locals;
  const auto report = local_skyline_optimality(locals, global);
  EXPECT_EQ(report.partitions_used, 0u);
  EXPECT_DOUBLE_EQ(report.mean_optimality, 0.0);
}

TEST(Optimality, BoundsRespected) {
  // On real pipeline output the metric must be a valid average of fractions.
  const PointSet ps = data::generate(data::Distribution::kIndependent, 2000, 4, 3);
  MRSkylineConfig config;
  config.scheme = part::Scheme::kAngular;
  const auto result = run_mr_skyline(ps, config);
  const auto report = local_skyline_optimality(result.local_skylines, result.skyline);
  EXPECT_GE(report.mean_optimality, 0.0);
  EXPECT_LE(report.mean_optimality, 1.0);
  EXPECT_GE(report.min_optimality, 0.0);
  EXPECT_LE(report.max_optimality, 1.0);
  EXPECT_LE(report.min_optimality, report.mean_optimality);
  EXPECT_GE(report.max_optimality, report.mean_optimality);
  // Merge input can never be smaller than the global skyline.
  EXPECT_GE(report.local_total, report.global_total);
}

TEST(Optimality, AngularBeatsDimensionalOnQwsData) {
  // The paper's §VI headline: MR-Angle's local skylines are globally better.
  data::QwsLikeGenerator gen(6, 51);
  const PointSet ps = data::normalize_min_max(gen.generate_oriented(3000));
  MRSkylineConfig angular;
  angular.scheme = part::Scheme::kAngular;
  MRSkylineConfig dimensional;
  dimensional.scheme = part::Scheme::kDimensional;
  const auto r_angle = run_mr_skyline(ps, angular);
  const auto r_dim = run_mr_skyline(ps, dimensional);
  const auto o_angle = local_skyline_optimality(r_angle.local_skylines, r_angle.skyline);
  const auto o_dim = local_skyline_optimality(r_dim.local_skylines, r_dim.skyline);
  EXPECT_GT(o_angle.mean_optimality, o_dim.mean_optimality);
}

}  // namespace
}  // namespace mrsky::core
