#include "src/core/planner.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/dataset/generators.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/verify.hpp"

namespace mrsky::core {
namespace {

TEST(Planner, Validation) {
  PlannerInputs bad;
  EXPECT_THROW((void)plan_config(bad), mrsky::InvalidArgument);
  bad.cardinality = 100;
  EXPECT_THROW((void)plan_config(bad), mrsky::InvalidArgument);  // dim 0
}

TEST(Planner, DefaultsToAngular) {
  PlannerInputs in;
  in.cardinality = 10000;
  in.dim = 4;
  const auto planned = plan_config(in);
  EXPECT_EQ(planned.config.scheme, part::Scheme::kAngular);
  EXPECT_NE(planned.rationale.find("angular"), std::string::npos);
}

TEST(Planner, ClusteredWorkloadsGetPivot) {
  PlannerInputs in;
  in.cardinality = 10000;
  in.dim = 4;
  in.clustered = true;
  EXPECT_EQ(plan_config(in).config.scheme, part::Scheme::kPivot);
}

TEST(Planner, SmallWorkloadsKeepSingleReducer) {
  PlannerInputs in;
  in.cardinality = 1000;
  in.dim = 3;
  EXPECT_EQ(plan_config(in).config.merge_fan_in, 0u);
}

TEST(Planner, HugeHighDimensionalWorkloadsGetTreeMerge) {
  PlannerInputs in;
  in.cardinality = 1000000;
  in.dim = 10;
  const auto planned = plan_config(in);
  EXPECT_EQ(planned.config.merge_fan_in, 4u);
  EXPECT_TRUE(planned.config.salt_oversized_partitions);
}

TEST(Planner, ServersPropagate) {
  PlannerInputs in;
  in.cardinality = 5000;
  in.dim = 4;
  in.servers = 12;
  const auto planned = plan_config(in);
  EXPECT_EQ(planned.config.servers, 12u);
  EXPECT_EQ(planned.config.effective_partitions(), 24u);
}

TEST(Planner, RationaleExplainsEveryDecision) {
  PlannerInputs in;
  in.cardinality = 50000;
  in.dim = 8;
  const auto planned = plan_config(in);
  EXPECT_NE(planned.rationale.find("scheme="), std::string::npos);
  EXPECT_NE(planned.rationale.find("partitions="), std::string::npos);
  EXPECT_NE(planned.rationale.find("merge="), std::string::npos);
  EXPECT_NE(planned.rationale.find("salting="), std::string::npos);
}

TEST(Planner, PlannedConfigRunsCorrectly) {
  // The planner's output must be a valid configuration end-to-end.
  const auto ps = data::generate(data::Distribution::kIndependent, 2000, 6, 91);
  PlannerInputs in;
  in.cardinality = ps.size();
  in.dim = ps.dim();
  in.servers = 4;
  const auto planned = plan_config(in);
  const auto result = run_mr_skyline(ps, planned.config);
  EXPECT_TRUE(skyline::same_ids(result.skyline, skyline::bnl_skyline(ps)));
}

}  // namespace
}  // namespace mrsky::core
