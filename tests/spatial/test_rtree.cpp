#include "src/spatial/rtree.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "src/common/error.hpp"
#include "src/dataset/generators.hpp"

namespace mrsky::spatial {
namespace {

using data::PointSet;

TEST(Mbr, MindistIsLowerCornerSum) {
  Mbr mbr{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  EXPECT_DOUBLE_EQ(mbr.mindist(), 6.0);
}

TEST(Mbr, ContainsClosedBounds) {
  Mbr mbr{{0.0, 0.0}, {1.0, 1.0}};
  EXPECT_TRUE(mbr.contains(std::vector<double>{0.0, 1.0}));
  EXPECT_TRUE(mbr.contains(std::vector<double>{0.5, 0.5}));
  EXPECT_FALSE(mbr.contains(std::vector<double>{1.1, 0.5}));
  EXPECT_FALSE(mbr.contains(std::vector<double>{0.5, -0.1}));
}

TEST(Mbr, CoversNestedBoxes) {
  Mbr outer{{0.0, 0.0}, {10.0, 10.0}};
  Mbr inner{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_TRUE(outer.covers(inner));
  EXPECT_FALSE(inner.covers(outer));
}

TEST(RTree, RejectsTinyCapacity) {
  const PointSet ps(2, {1.0, 2.0});
  EXPECT_THROW(RTree(ps, 1), mrsky::InvalidArgument);
}

TEST(RTree, EmptyPointSetMakesEmptyTree) {
  const PointSet ps(3);
  const RTree tree(ps);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.node_count(), 0u);
}

TEST(RTree, SinglePointTree) {
  const PointSet ps(2, {0.25, 0.75});
  const RTree tree(ps, 4);
  ASSERT_FALSE(tree.empty());
  const auto& root = tree.node(tree.root());
  EXPECT_TRUE(root.leaf);
  ASSERT_EQ(root.entries.size(), 1u);
  EXPECT_DOUBLE_EQ(root.mbr.lo[0], 0.25);
  EXPECT_DOUBLE_EQ(root.mbr.hi[1], 0.75);
  EXPECT_EQ(tree.height(), 1u);
}

TEST(RTree, EveryPointAppearsExactlyOnce) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 500, 3, 7);
  const RTree tree(ps, 8);
  std::unordered_set<std::size_t> seen;
  for (std::size_t id = 0; id < tree.node_count(); ++id) {
    const auto& node = tree.node(id);
    if (!node.leaf) continue;
    for (std::size_t row : node.entries) {
      EXPECT_TRUE(seen.insert(row).second) << "row " << row << " duplicated";
    }
  }
  EXPECT_EQ(seen.size(), ps.size());
}

TEST(RTree, LeafMbrsContainTheirPoints) {
  const PointSet ps = data::generate(data::Distribution::kClustered, 400, 2, 9);
  const RTree tree(ps, 8);
  for (std::size_t id = 0; id < tree.node_count(); ++id) {
    const auto& node = tree.node(id);
    if (!node.leaf) continue;
    for (std::size_t row : node.entries) {
      EXPECT_TRUE(node.mbr.contains(ps.point(row)));
    }
  }
}

TEST(RTree, InternalMbrsCoverChildren) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 1000, 3, 11);
  const RTree tree(ps, 8);
  for (std::size_t id = 0; id < tree.node_count(); ++id) {
    const auto& node = tree.node(id);
    if (node.leaf) continue;
    for (std::size_t child : node.entries) {
      EXPECT_TRUE(node.mbr.covers(tree.node(child).mbr));
    }
  }
}

TEST(RTree, NodeFanoutWithinCapacity) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 777, 4, 13);
  const RTree tree(ps, 10);
  for (std::size_t id = 0; id < tree.node_count(); ++id) {
    const auto& node = tree.node(id);
    EXPECT_GE(node.entries.size(), 1u);
    EXPECT_LE(node.entries.size(), 10u);
  }
}

TEST(RTree, HeightGrowsLogarithmically) {
  const PointSet small = data::generate(data::Distribution::kIndependent, 16, 2, 15);
  const PointSet large = data::generate(data::Distribution::kIndependent, 4000, 2, 15);
  EXPECT_LE(RTree(small, 16).height(), 2u);
  const RTree big(large, 16);
  EXPECT_GE(big.height(), 3u);  // 4000/16 = 250 leaves -> >= 2 upper levels
  EXPECT_LE(big.height(), 4u);
}

TEST(RTree, StrPackingFillsLeaves) {
  // Deterministic bulk load keeps occupancy high: leaf count close to n/C.
  const PointSet ps = data::generate(data::Distribution::kIndependent, 1024, 2, 17);
  const RTree tree(ps, 16);
  std::size_t leaves = 0;
  for (std::size_t id = 0; id < tree.node_count(); ++id) {
    if (tree.node(id).leaf) ++leaves;
  }
  EXPECT_LE(leaves, 1024u / 16u + 24u);  // within ~35% of perfect packing
}

TEST(RTree, DeterministicAcrossBuilds) {
  const PointSet ps = data::generate(data::Distribution::kIndependent, 300, 3, 19);
  const RTree a(ps, 8);
  const RTree b(ps, 8);
  ASSERT_EQ(a.node_count(), b.node_count());
  for (std::size_t id = 0; id < a.node_count(); ++id) {
    EXPECT_EQ(a.node(id).entries, b.node(id).entries);
  }
}

}  // namespace
}  // namespace mrsky::spatial
