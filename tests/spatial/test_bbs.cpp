#include "src/spatial/bbs.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "src/dataset/generators.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/verify.hpp"

namespace mrsky::spatial {
namespace {

using data::Distribution;
using data::PointSet;

TEST(Bbs, EmptyInput) {
  EXPECT_TRUE(bbs_skyline(PointSet(2)).empty());
}

TEST(Bbs, SinglePoint) {
  const PointSet ps(3, {0.1, 0.2, 0.3});
  const PointSet sky = bbs_skyline(ps);
  ASSERT_EQ(sky.size(), 1u);
  EXPECT_EQ(sky.id(0), 0u);
}

// Agreement sweep against the naive reference.
using Param = std::tuple<Distribution, std::size_t /*dim*/, std::size_t /*capacity*/>;

class BbsAgreement : public testing::TestWithParam<Param> {};

TEST_P(BbsAgreement, MatchesNaive) {
  const auto [dist, dim, capacity] = GetParam();
  const PointSet ps = data::generate(dist, 500, dim, 0xB0B + dim);
  const RTree tree(ps, capacity);
  const PointSet sky = bbs_skyline(tree);
  EXPECT_TRUE(skyline::same_ids(sky, skyline::naive_skyline(ps)));
  const auto verdict = skyline::verify_skyline(ps, sky);
  EXPECT_TRUE(verdict.ok) << verdict.message;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BbsAgreement,
    testing::Combine(testing::Values(Distribution::kIndependent, Distribution::kCorrelated,
                                     Distribution::kAnticorrelated, Distribution::kClustered),
                     testing::Values(std::size_t{2}, std::size_t{4}, std::size_t{7}),
                     testing::Values(std::size_t{4}, std::size_t{32})),
    [](const auto& info) {
      return data::to_string(std::get<0>(info.param)) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_c" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Bbs, DuplicatesAllSurvive) {
  PointSet ps(2, {1.0, 1.0, 1.0, 1.0, 2.0, 0.5, 3.0, 3.0});
  const PointSet sky = bbs_skyline(ps);
  EXPECT_EQ(sky.size(), 3u);  // two duplicates + the incomparable point
}

TEST(Bbs, ProgressiveMaxResultsReturnsLowestMindist) {
  const PointSet ps = data::generate(Distribution::kAnticorrelated, 400, 2, 5);
  const PointSet full = skyline::bnl_skyline(ps);
  const PointSet first = bbs_skyline(ps, nullptr, 3);
  ASSERT_EQ(first.size(), 3u);
  // Each returned point is a true skyline point...
  const auto full_ids = sorted_ids(full);
  for (data::PointId id : first.ids()) {
    EXPECT_TRUE(std::binary_search(full_ids.begin(), full_ids.end(), id));
  }
  // ...and they are the 3 skyline points with the smallest coordinate sums.
  std::vector<double> sky_sums;
  for (std::size_t i = 0; i < full.size(); ++i) {
    const auto p = full.point(i);
    sky_sums.push_back(std::accumulate(p.begin(), p.end(), 0.0));
  }
  std::sort(sky_sums.begin(), sky_sums.end());
  double max_returned = 0.0;
  for (std::size_t i = 0; i < first.size(); ++i) {
    const auto p = first.point(i);
    max_returned = std::max(max_returned, std::accumulate(p.begin(), p.end(), 0.0));
  }
  EXPECT_LE(max_returned, sky_sums[2] + 1e-12);
}

TEST(Bbs, PrunesSubtreesOnCorrelatedData) {
  // Correlated data has a tiny skyline; BBS should visit a small fraction of
  // the tree's nodes.
  const PointSet ps = data::generate(Distribution::kCorrelated, 5000, 3, 7);
  const RTree tree(ps, 16);
  BbsReport report;
  (void)bbs_skyline(tree, &report);
  EXPECT_LT(report.nodes_visited, tree.node_count() / 2);
  EXPECT_GT(report.entries_pruned, 0u);
}

TEST(Bbs, FewerDominanceTestsThanNaiveOnEasyData) {
  const PointSet ps = data::generate(Distribution::kCorrelated, 2000, 3, 9);
  BbsReport report;
  (void)bbs_skyline(ps, &report);
  skyline::SkylineStats naive_stats;
  (void)skyline::naive_skyline(ps, &naive_stats);
  EXPECT_LT(report.stats.dominance_tests, naive_stats.dominance_tests / 10);
}

TEST(Bbs, ReportCountsPoints) {
  const PointSet ps = data::generate(Distribution::kIndependent, 300, 3, 11);
  BbsReport report;
  const PointSet sky = bbs_skyline(ps, &report);
  EXPECT_EQ(report.stats.points_in, 300u);
  EXPECT_EQ(report.stats.points_out, sky.size());
  EXPECT_GT(report.nodes_visited, 0u);
}

TEST(Bbs, DeterministicAcrossRuns) {
  const PointSet ps = data::generate(Distribution::kIndependent, 600, 4, 13);
  const PointSet a = bbs_skyline(ps);
  const PointSet b = bbs_skyline(ps);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace mrsky::spatial
