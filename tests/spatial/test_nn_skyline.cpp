#include "src/spatial/nn_skyline.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "src/dataset/generators.hpp"
#include "src/dataset/transforms.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/verify.hpp"

namespace mrsky::spatial {
namespace {

using data::Distribution;
using data::PointSet;

TEST(NnSkyline, EmptyInput) {
  EXPECT_TRUE(nn_skyline(PointSet(2)).empty());
}

TEST(NnSkyline, SinglePoint) {
  const PointSet ps(2, {0.3, 0.7});
  const PointSet sky = nn_skyline(ps);
  ASSERT_EQ(sky.size(), 1u);
  EXPECT_EQ(sky.id(0), 0u);
}

TEST(NnSkyline, FirstNnIsMinimumSumPoint) {
  // The paper's §IV premise: the point nearest the axes is skyline.
  const PointSet ps = data::generate(Distribution::kIndependent, 200, 2, 3);
  NnSkylineReport report;
  const PointSet sky = nn_skyline(ps, &report);
  // Find the global min-sum point; it must be in the result.
  double best = 1e18;
  data::PointId best_id = 0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const double sum = ps.at(i, 0) + ps.at(i, 1);
    if (sum < best) {
      best = sum;
      best_id = ps.id(i);
    }
  }
  bool found = false;
  for (data::PointId id : sky.ids()) found = found || (id == best_id);
  EXPECT_TRUE(found);
  EXPECT_GT(report.nn_queries, 0u);
}

using Param = std::tuple<Distribution, std::size_t /*dim*/>;

class NnSkylineAgreement : public testing::TestWithParam<Param> {};

TEST_P(NnSkylineAgreement, MatchesNaive) {
  const auto [dist, dim] = GetParam();
  const PointSet ps = data::generate(dist, 400, dim, 0x22 + dim);
  const PointSet sky = nn_skyline(ps);
  EXPECT_TRUE(skyline::same_ids(sky, skyline::naive_skyline(ps)))
      << data::to_string(dist) << " d=" << dim;
  const auto verdict = skyline::verify_skyline(ps, sky);
  EXPECT_TRUE(verdict.ok) << verdict.message;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NnSkylineAgreement,
    testing::Combine(testing::Values(Distribution::kIndependent, Distribution::kCorrelated,
                                     Distribution::kAnticorrelated),
                     testing::Values(std::size_t{2}, std::size_t{3}, std::size_t{4})),
    [](const auto& info) {
      return data::to_string(std::get<0>(info.param)) + "_d" +
             std::to_string(std::get<1>(info.param));
    });

TEST(NnSkyline, DuplicatesAllReported) {
  // Strict sub-region bounds would hide duplicates; the twin index must
  // restore them.
  PointSet ps(2, {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 0.5, 5.0, 5.0});
  const PointSet sky = nn_skyline(ps);
  EXPECT_EQ(sky.size(), 4u);  // three duplicates + (2, 0.5)
}

TEST(NnSkyline, DuplicateInjectionProperty) {
  const PointSet base = data::generate(Distribution::kIndependent, 200, 3, 7);
  common::Rng rng(8);
  const PointSet noisy = data::with_duplicates(base, 60, rng);
  EXPECT_TRUE(skyline::same_ids(nn_skyline(noisy), skyline::bnl_skyline(noisy)));
}

TEST(NnSkyline, RegionDeduplicationBoundsWork) {
  // d=2 has non-overlapping sub-regions: no duplicate hits at all.
  const PointSet ps = data::generate(Distribution::kAnticorrelated, 500, 2, 9);
  NnSkylineReport report;
  (void)nn_skyline(ps, &report);
  EXPECT_EQ(report.duplicate_hits, 0u);
}

TEST(NnSkyline, OverlapAtHigherDimensionsIsObserved) {
  // d >= 3 sub-regions overlap: duplicate rediscoveries happen and are
  // counted (this is the algorithm's known weakness the report exposes).
  const PointSet ps = data::generate(Distribution::kIndependent, 800, 4, 11);
  NnSkylineReport report;
  (void)nn_skyline(ps, &report);
  EXPECT_GT(report.duplicate_hits, 0u);
  EXPECT_GT(report.regions_processed, report.nn_queries / 2);
}

TEST(NnSkyline, DeterministicAcrossRuns) {
  const PointSet ps = data::generate(Distribution::kIndependent, 300, 3, 13);
  EXPECT_EQ(nn_skyline(ps), nn_skyline(ps));
}

TEST(NnSkyline, ReportCountsArePlausible) {
  const PointSet ps = data::generate(Distribution::kCorrelated, 600, 3, 15);
  NnSkylineReport report;
  const PointSet sky = nn_skyline(ps, &report);
  EXPECT_EQ(report.stats.points_in, 600u);
  EXPECT_EQ(report.stats.points_out, sky.size());
  // One NN query per processed region.
  EXPECT_EQ(report.nn_queries, report.regions_processed);
}

}  // namespace
}  // namespace mrsky::spatial
