#include "src/geometry/hyperspherical.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace mrsky::geo {
namespace {

constexpr double kHalfPi = std::numbers::pi / 2.0;
using Vec = std::vector<double>;

TEST(Hyperspherical, TwoDimensionalMatchesEquation2) {
  // Paper Eq. (2): r = sqrt(x² + y²), tan(φ) = y/x.
  const auto hs = to_hyperspherical(Vec{3.0, 4.0});
  EXPECT_DOUBLE_EQ(hs.r, 5.0);
  ASSERT_EQ(hs.phi.size(), 1u);
  EXPECT_NEAR(std::tan(hs.phi[0]), 4.0 / 3.0, 1e-12);
}

TEST(Hyperspherical, PointOnXAxisHasZeroAngle) {
  const auto hs = to_hyperspherical(Vec{2.0, 0.0});
  EXPECT_NEAR(hs.phi[0], 0.0, 1e-12);
}

TEST(Hyperspherical, PointOnYAxisHasHalfPiAngle) {
  const auto hs = to_hyperspherical(Vec{0.0, 2.0});
  EXPECT_NEAR(hs.phi[0], kHalfPi, 1e-12);
}

TEST(Hyperspherical, DiagonalIsQuarterPi) {
  const auto hs = to_hyperspherical(Vec{1.0, 1.0});
  EXPECT_NEAR(hs.phi[0], std::numbers::pi / 4.0, 1e-12);
}

TEST(Hyperspherical, OriginMapsToZero) {
  const auto hs = to_hyperspherical(Vec{0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(hs.r, 0.0);
  for (double phi : hs.phi) EXPECT_DOUBLE_EQ(phi, 0.0);
}

TEST(Hyperspherical, OneDimensionalHasNoAngles) {
  const auto hs = to_hyperspherical(Vec{7.0});
  EXPECT_DOUBLE_EQ(hs.r, 7.0);
  EXPECT_TRUE(hs.phi.empty());
}

TEST(Hyperspherical, RadiusIsEuclideanNorm) {
  const auto hs = to_hyperspherical(Vec{1.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(hs.r, 3.0);
}

TEST(Hyperspherical, AnglesInFirstQuadrantRange) {
  common::Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    Vec v = {rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform()};
    const auto hs = to_hyperspherical(v);
    for (double phi : hs.phi) {
      EXPECT_GE(phi, 0.0);
      EXPECT_LE(phi, kHalfPi);
    }
  }
}

TEST(Hyperspherical, MatchesEquation1Definition) {
  // tan(φk) = sqrt(vn² + ... + v(k+1)²) / vk, checked directly at d=4.
  const Vec v = {1.0, 2.0, 3.0, 4.0};
  const auto hs = to_hyperspherical(v);
  ASSERT_EQ(hs.phi.size(), 3u);
  EXPECT_NEAR(std::tan(hs.phi[0]), std::sqrt(4.0 + 9.0 + 16.0) / 1.0, 1e-12);
  EXPECT_NEAR(std::tan(hs.phi[1]), std::sqrt(9.0 + 16.0) / 2.0, 1e-12);
  EXPECT_NEAR(std::tan(hs.phi[2]), std::sqrt(16.0) / 3.0, 1e-12);
}

TEST(Hyperspherical, RoundTripRecoversCartesian) {
  common::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    Vec v(6);
    for (auto& x : v) x = rng.uniform(0.0, 10.0);
    const auto hs = to_hyperspherical(v);
    const Vec back = to_cartesian(hs);
    ASSERT_EQ(back.size(), v.size());
    for (std::size_t a = 0; a < v.size(); ++a) EXPECT_NEAR(back[a], v[a], 1e-9);
  }
}

TEST(Hyperspherical, ScaleInvarianceOfAngles) {
  // Angles depend only on direction: scaling the vector must not move them.
  const Vec v = {1.0, 2.0, 3.0};
  const auto a = to_hyperspherical(v);
  const Vec scaled = {10.0, 20.0, 30.0};
  const auto b = to_hyperspherical(scaled);
  ASSERT_EQ(a.phi.size(), b.phi.size());
  for (std::size_t k = 0; k < a.phi.size(); ++k) EXPECT_NEAR(a.phi[k], b.phi[k], 1e-12);
  EXPECT_NEAR(b.r, 10.0 * a.r, 1e-9);
}

TEST(Hyperspherical, AnglesOfAvoidsReallocation) {
  std::vector<double> phi;
  angles_of(Vec{1.0, 1.0, 1.0}, phi);
  EXPECT_EQ(phi.size(), 2u);
  angles_of(Vec{2.0, 1.0}, phi);
  EXPECT_EQ(phi.size(), 1u);
}

TEST(Hyperspherical, RejectsNegativeCoordinates) {
  EXPECT_THROW(to_hyperspherical(Vec{1.0, -0.5}), mrsky::InvalidArgument);
}

TEST(Hyperspherical, RejectsEmptyVector) {
  EXPECT_THROW(to_hyperspherical(Vec{}), mrsky::InvalidArgument);
}

}  // namespace
}  // namespace mrsky::geo
