#include "src/geometry/grid_shape.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "src/common/error.hpp"

namespace mrsky::geo {
namespace {

std::size_t product(const std::vector<std::size_t>& v) {
  return std::accumulate(v.begin(), v.end(), std::size_t{1}, std::multiplies<>());
}

TEST(PrimeFactors, SmallNumbers) {
  EXPECT_EQ(prime_factors(1), (std::vector<std::uint64_t>{}));
  EXPECT_EQ(prime_factors(2), (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(prime_factors(12), (std::vector<std::uint64_t>{2, 2, 3}));
  EXPECT_EQ(prime_factors(97), (std::vector<std::uint64_t>{97}));
  EXPECT_EQ(prime_factors(100), (std::vector<std::uint64_t>{2, 2, 5, 5}));
}

TEST(PrimeFactors, RejectsZero) {
  EXPECT_THROW(prime_factors(0), mrsky::InvalidArgument);
}

TEST(BalancedGridShape, ProductAlwaysExact) {
  for (std::size_t target : {1u, 2u, 7u, 8u, 12u, 16u, 30u, 64u, 97u}) {
    for (std::size_t dims : {1u, 2u, 3u, 5u, 9u}) {
      const auto shape = balanced_grid_shape(target, dims);
      EXPECT_EQ(shape.size(), dims);
      EXPECT_EQ(product(shape), target) << "target=" << target << " dims=" << dims;
    }
  }
}

TEST(BalancedGridShape, PerfectSquareIsBalanced) {
  EXPECT_EQ(balanced_grid_shape(16, 2), (std::vector<std::size_t>{4, 4}));
}

TEST(BalancedGridShape, PowerOfTwoOverManyDims) {
  EXPECT_EQ(balanced_grid_shape(8, 3), (std::vector<std::size_t>{2, 2, 2}));
}

TEST(BalancedGridShape, SingleDimTakesEverything) {
  EXPECT_EQ(balanced_grid_shape(12, 1), (std::vector<std::size_t>{12}));
}

TEST(BalancedGridShape, PrimeLeavesOthersAtOne) {
  EXPECT_EQ(balanced_grid_shape(7, 3), (std::vector<std::size_t>{7, 1, 1}));
}

TEST(BalancedGridShape, SortedLargestFirst) {
  const auto shape = balanced_grid_shape(24, 3);
  for (std::size_t i = 1; i < shape.size(); ++i) EXPECT_GE(shape[i - 1], shape[i]);
  EXPECT_EQ(product(shape), 24u);
}

TEST(BalancedGridShape, RejectsZeros) {
  EXPECT_THROW(balanced_grid_shape(0, 2), mrsky::InvalidArgument);
  EXPECT_THROW(balanced_grid_shape(4, 0), mrsky::InvalidArgument);
}

TEST(LinearIndex, RoundTripsThroughUnlinear) {
  const std::vector<std::size_t> shape = {3, 4, 2};
  for (std::size_t i = 0; i < 24; ++i) {
    const auto cell = unlinear_index(i, shape);
    EXPECT_EQ(linear_index(cell, shape), i);
    for (std::size_t a = 0; a < shape.size(); ++a) EXPECT_LT(cell[a], shape[a]);
  }
}

TEST(LinearIndex, RowMajorOrdering) {
  const std::vector<std::size_t> shape = {2, 3};
  EXPECT_EQ(linear_index({0, 0}, shape), 0u);
  EXPECT_EQ(linear_index({0, 2}, shape), 2u);
  EXPECT_EQ(linear_index({1, 0}, shape), 3u);
  EXPECT_EQ(linear_index({1, 2}, shape), 5u);
}

TEST(LinearIndex, RankMismatchThrows) {
  EXPECT_THROW(linear_index({0, 0}, {2}), mrsky::InvalidArgument);
}

TEST(UnlinearIndex, OutOfVolumeThrows) {
  EXPECT_THROW(unlinear_index(6, {2, 3}), mrsky::InvalidArgument);
}

}  // namespace
}  // namespace mrsky::geo
