// Using mrsky::mr as a general-purpose MapReduce engine.
//
// The engine under the skyline pipeline is a small but complete MapReduce:
// typed map/combine/shuffle/reduce with per-task metrics and a cluster
// simulator. This example builds an inverted index over a document
// collection — nothing skyline-specific — and then asks the cluster model
// what the job would cost at two cluster sizes.
//
//   ./build/examples/custom_mapreduce
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/mapreduce/cluster.hpp"
#include "src/mapreduce/job.hpp"

int main() {
  using namespace mrsky;

  const std::vector<mr::KV<int, std::string>> documents = {
      {0, "the skyline operator selects pareto optimal points"},
      {1, "mapreduce simplifies data processing on large clusters"},
      {2, "angular partitioning improves skyline query processing"},
      {3, "the pareto frontier of large data clusters"},
  };

  // Inverted index: word -> sorted list of documents containing it.
  mr::JobConfig<int, std::string, std::string, int, std::string, std::vector<int>> job;
  job.name = "inverted-index";
  job.num_map_tasks = 2;
  job.num_reduce_tasks = 2;
  job.map_fn = [](const int& doc, const std::string& text,
                  mr::Emitter<std::string, int>& out, mr::TaskContext& ctx) {
    std::istringstream stream(text);
    std::string word;
    while (stream >> word) {
      out.emit(word, doc);
      ctx.charge_work(1);
    }
  };
  // Combiner: dedupe postings within one map task before the shuffle.
  job.combine_fn = [](const std::string& word, std::vector<int>& docs,
                      mr::Emitter<std::string, int>& out, mr::TaskContext&) {
    std::sort(docs.begin(), docs.end());
    docs.erase(std::unique(docs.begin(), docs.end()), docs.end());
    for (int doc : docs) out.emit(word, doc);
  };
  job.reduce_fn = [](const std::string& word, std::vector<int>& docs,
                     mr::Emitter<std::string, std::vector<int>>& out, mr::TaskContext&) {
    std::sort(docs.begin(), docs.end());
    docs.erase(std::unique(docs.begin(), docs.end()), docs.end());
    out.emit(word, docs);
  };

  const auto result = mr::run_job(job, documents);

  std::cout << "inverted index (" << result.output.size() << " terms):\n";
  for (const auto& [word, postings] : result.output) {
    std::cout << "  " << word << " ->";
    for (int doc : postings) std::cout << " d" << doc;
    std::cout << "\n";
  }

  std::cout << "\nengine metrics: " << result.metrics.map_total().records_out
            << " words mapped, " << result.metrics.shuffle_records << " records shuffled ("
            << result.metrics.shuffle_bytes << " bytes)\n";

  for (std::size_t servers : {2u, 8u}) {
    mr::ClusterModel model;
    model.servers = servers;
    const auto times = mr::simulate_job(result.metrics, model);
    std::cout << "simulated on " << servers << " servers: " << times.total_seconds()
              << "s (map " << times.map_seconds << "s, reduce " << times.reduce_seconds
              << "s, startup " << times.startup_seconds << "s)\n";
  }
  return 0;
}
