// Web-service selection — the paper's motivating scenario (§I).
//
// A registry (UDDI) holds thousands of competing services measured on QoS
// attributes. A user wants the Pareto-optimal ("skyline") providers, and the
// registry is dynamic: new services keep arriving and must be folded into
// the skyline without recomputing from scratch (paper §II).
//
//   ./build/examples/web_service_selection [--services 20000] [--dim 5]
#include <iomanip>
#include <iostream>

#include "src/common/cli.hpp"
#include "src/qos/selector.hpp"

int main(int argc, char** argv) {
  using namespace mrsky;
  const common::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("services", 20000));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 5));

  // A synthetic registry following the QWS attribute schema.
  qos::ServiceCatalog catalog = qos::ServiceCatalog::synthetic(n, dim, /*seed=*/7);
  const auto schema = catalog.schema();

  core::MRSkylineConfig config;
  config.scheme = part::Scheme::kAngular;
  config.servers = 8;
  qos::SkylineServiceSelector selector(std::move(catalog), config);

  const auto& skyline = selector.skyline();
  std::cout << "registry: " << n << " services x " << dim << " QoS attributes\n"
            << "skyline:  " << skyline.size() << " Pareto-optimal services\n\n";

  std::cout << "sample skyline services (natural units):\n";
  std::cout << "  " << std::left << std::setw(16) << "service";
  for (const auto& attr : schema) std::cout << std::setw(16) << attr.name;
  std::cout << "\n";
  for (std::size_t i = 0; i < skyline.size() && i < 5; ++i) {
    std::cout << "  " << std::setw(16) << skyline[i].name;
    for (double v : skyline[i].qos) std::cout << std::setw(16) << v;
    std::cout << "\n";
  }

  // Dynamic registration: a clearly excellent service and a clearly poor one.
  std::vector<double> excellent;
  std::vector<double> poor;
  for (const auto& attr : schema) {
    excellent.push_back(attr.higher_is_better ? attr.max : attr.min);
    poor.push_back(attr.higher_is_better ? attr.min : attr.max);
  }
  std::cout << "\nregistering 'best-in-class' (optimal in every attribute)... ";
  std::cout << (selector.add_service("best-in-class", excellent) ? "joined the skyline"
                                                                 : "rejected")
            << "\n";
  std::cout << "registering 'worst-in-class' (worst in every attribute)...  ";
  std::cout << (selector.add_service("worst-in-class", poor) ? "joined the skyline" : "rejected")
            << "\n";

  std::cout << "\nincremental maintenance cost since the full run: "
            << selector.incremental_dominance_tests() << " dominance tests\n"
            << "(the full MapReduce run needed "
            << selector.last_run().partition_job.total_work_units() +
                   selector.last_run().merge_job().total_work_units()
            << ")\n";
  return 0;
}
