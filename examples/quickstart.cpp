// Quickstart: compute a skyline with the MapReduce pipeline in ~30 lines.
//
//   cmake --build build && ./build/examples/quickstart
//
// Generates 10,000 synthetic web services with 4 QoS attributes, runs the
// paper's MR-Angle pipeline sized for an 8-server cluster, and prints the
// skyline size plus the simulated cluster time.
#include <iostream>

#include "src/dataset/qws.hpp"
#include "src/mrsky.hpp"

int main() {
  using namespace mrsky;

  // 1. A workload: QWS-like service measurements, flipped to cost
  //    orientation (smaller = better) and normalised per attribute.
  data::QwsLikeGenerator generator(/*dim=*/4, /*seed=*/42);
  const data::PointSet services = data::normalize_min_max(generator.generate_oriented(10000));

  // 2. Configure the pipeline: angular partitioning (the paper's method),
  //    sized for 8 servers => 16 partitions (Np = 2 x servers).
  core::MRSkylineConfig config;
  config.scheme = part::Scheme::kAngular;
  config.servers = 8;

  // 3. Run Algorithm 1: partition -> local skylines -> global merge.
  const core::MRSkylineResult result = core::run_mr_skyline(services, config);

  std::cout << "services:        " << services.size() << "\n"
            << "skyline size:    " << result.skyline.size() << "\n"
            << "local skylines:  " << result.local_skylines.size() << " partitions\n"
            << "dominance tests: "
            << result.partition_job.total_work_units() + result.merge_job().total_work_units()
            << "\n";

  // 4. Ask the cluster model what this run would cost on real hardware.
  mr::ClusterModel cluster;
  cluster.servers = 8;
  const mr::PhaseTimes times = result.simulate(cluster);
  std::cout << "simulated: map=" << times.map_seconds << "s reduce=" << times.reduce_seconds
            << "s total=" << times.total_seconds() << "s on " << cluster.servers
            << " servers\n";

  // 5. The first few skyline services.
  std::cout << "first skyline ids:";
  for (std::size_t i = 0; i < result.skyline.size() && i < 8; ++i) {
    std::cout << " " << result.skyline.id(i);
  }
  std::cout << "\n";

  // 6. Serving many queries against the same data? The QueryEngine keeps the
  //    dataset resident, reuses partition fits, and caches results.
  service::QueryEngineOptions engine_options;
  engine_options.config = config;
  service::QueryEngine engine(services, engine_options);
  const auto cold = engine.execute(service::SkylineQuery{});
  const auto warm = engine.execute(service::SkylineQuery{});
  std::cout << "query engine: cold=" << cold.metrics.wall_ns / 1000 << "us warm(cached)="
            << warm.metrics.wall_ns / 1000 << "us, same " << warm.points.size() << " points\n";
  return 0;
}
