// Partitioning explorer — renders the paper's Figure 3 as ASCII art.
//
// Draws a 2-D service cloud partitioned by each of the three schemes
// (dimensional slabs, grid cells, angular sectors) with one glyph per
// partition, plus per-scheme statistics that preview the experiments: load
// balance, merge-input size and local-skyline optimality.
//
//   ./build/examples/partitioning_explorer [--points 4000] [--partitions 4]
#include <iostream>
#include <vector>

#include "src/common/cli.hpp"
#include "src/core/mr_skyline.hpp"
#include "src/core/optimality.hpp"
#include "src/dataset/generators.hpp"
#include "src/partition/factory.hpp"
#include "src/partition/stats.hpp"

namespace {

constexpr int kWidth = 64;
constexpr int kHeight = 24;

void render(const mrsky::part::Partitioner& partitioner) {
  // Sample the plane on a character grid; glyph = partition id.
  static const char kGlyphs[] = "0123456789abcdefghijklmnopqrstuvwxyz";
  for (int row = 0; row < kHeight; ++row) {
    std::cout << "  ";
    for (int col = 0; col < kWidth; ++col) {
      // Row 0 is the top: invert y so the origin sits bottom-left like Fig 3.
      const double x = (static_cast<double>(col) + 0.5) / kWidth;
      const double y = 1.0 - (static_cast<double>(row) + 0.5) / kHeight;
      const std::size_t p = partitioner.assign(std::vector<double>{x, y});
      std::cout << kGlyphs[p % (sizeof(kGlyphs) - 1)];
    }
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mrsky;
  const common::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("points", 4000));
  const auto partitions = static_cast<std::size_t>(args.get_int("partitions", 4));

  const data::PointSet cloud =
      data::generate(data::Distribution::kIndependent, n, 2, /*seed=*/3);

  for (part::Scheme scheme : {part::Scheme::kDimensional, part::Scheme::kGrid,
                              part::Scheme::kAngular}) {
    part::PartitionerOptions options;
    options.num_partitions = partitions;
    auto partitioner = part::make_partitioner(scheme, options);
    partitioner->fit(cloud);

    std::cout << "=== " << partitioner->name() << " partitioning (paper Fig. 3) ===\n";
    render(*partitioner);

    const auto report = part::analyze_partitioning(*partitioner, cloud);
    core::MRSkylineConfig config;
    config.scheme = scheme;
    config.num_partitions = partitions;
    const auto result = core::run_mr_skyline(cloud, config);
    const auto optimality =
        core::local_skyline_optimality(result.local_skylines, result.skyline);

    std::cout << "  points/partition:";
    for (std::size_t s : report.sizes) std::cout << " " << s;
    std::cout << "\n  balance CV: " << report.balance_cv
              << "   prunable partitions: " << report.prunable.size()
              << " (" << report.pruned_points << " points)\n"
              << "  global skyline: " << result.skyline.size()
              << "   merge input: " << optimality.local_total
              << "   local-skyline optimality (Eq. 5): " << optimality.mean_optimality
              << "\n\n";
  }
  std::cout << "Angular sectors mix near-origin and far points in every partition, so\n"
               "their local skylines hug the global contour - the paper's core idea.\n";
  return 0;
}
