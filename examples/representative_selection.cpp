// Representative selection — what a service portal actually shows.
//
// A full skyline can hold hundreds of services; a results page shows five.
// This example composes the library's skyline extensions on one workload:
//   1. the exact skyline (baseline),
//   2. the 2-skyband (near-optimal fallbacks for QoS degradation, §I),
//   3. the k most *representative* skyline services (greedy max-coverage),
//   4. a weighted top-k for a user who cares mostly about response time.
//
//   ./build/examples/representative_selection [--services 20000] [--dim 4]
#include <iostream>

#include "src/common/cli.hpp"
#include "src/dataset/normalize.hpp"
#include "src/dataset/qws.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/extensions.hpp"

int main(int argc, char** argv) {
  using namespace mrsky;
  const common::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("services", 20000));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 4));

  data::QwsLikeGenerator generator(dim, /*seed=*/11);
  const data::PointSet services = data::normalize_min_max(generator.generate_oriented(n));

  const data::PointSet sky = skyline::bnl_skyline(services);
  std::cout << n << " services, " << dim << " attributes\n"
            << "skyline:    " << sky.size() << " services\n";

  const data::PointSet band = skyline::k_skyband(services, 2);
  std::cout << "2-skyband:  " << band.size() << " services ("
            << band.size() - sky.size() << " near-optimal fallbacks)\n\n";

  const auto rep = skyline::representative_skyline(services, 5);
  std::cout << "top-5 representative skyline services (greedy max-coverage):\n";
  for (std::size_t i = 0; i < rep.representatives.size(); ++i) {
    std::cout << "  service " << rep.representatives.id(i) << " newly covers "
              << rep.coverage[i] << " services\n";
  }
  std::cout << "together they dominate " << rep.total_covered << " of " << n << " services ("
            << 100.0 * static_cast<double>(rep.total_covered) / static_cast<double>(n)
            << "%)\n\n";

  // A latency-sensitive user: weight ResponseTime 5x everything else.
  std::vector<double> weights(dim, 1.0);
  weights[0] = 5.0;
  const auto ranked = skyline::top_k_weighted(services, weights, 3);
  std::cout << "top-3 for a response-time-sensitive user:\n";
  for (const auto& entry : ranked) {
    std::cout << "  service " << entry.id << " (weighted score " << entry.score << ")\n";
  }
  return 0;
}
