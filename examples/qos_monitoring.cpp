// Continuous QoS monitoring — the dynamic side of the paper's §I.
//
// Service quality drifts; yesterday's skyline is stale. This example streams
// fresh measurements through a sliding-window skyline (last W observations
// only), then compresses the live skyline into an ε-Pareto shortlist for
// display. A mid-stream "incident" (every service's response time spikes)
// shows the window forgetting the good old days.
//
//   ./build/examples/qos_monitoring [--window 200] [--steps 1200]
#include <iomanip>
#include <iostream>

#include "src/common/cli.hpp"
#include "src/common/rng.hpp"
#include "src/dataset/normalize.hpp"
#include "src/dataset/qws.hpp"
#include "src/skyline/extensions.hpp"
#include "src/skyline/sliding_window.hpp"

int main(int argc, char** argv) {
  using namespace mrsky;
  const common::CliArgs args(argc, argv);
  const auto window = static_cast<std::size_t>(args.get_int("window", 200));
  const auto steps = static_cast<std::size_t>(args.get_int("steps", 1200));
  const std::size_t dim = 4;

  // Measurement stream: bootstrap-resampled from a QWS-like seed (the
  // paper's own dataset-extension recipe), with an incident at 60 %.
  data::QwsLikeGenerator seed_gen(dim, 67);
  const data::PointSet seed = seed_gen.generate_oriented(2000);
  data::BootstrapResampler sampler(seed, /*jitter=*/0.08);
  common::Rng rng(99);

  skyline::SlidingWindowSkyline monitor(dim, window);
  const std::size_t incident_at = steps * 6 / 10;

  std::cout << "streaming " << steps << " measurements through a window of " << window
            << "\n\n   step | window skyline | eps-shortlist (eps=0.1)\n";
  for (std::size_t t = 0; t < steps; ++t) {
    data::PointSet one = sampler.generate(1, rng);
    std::vector<double> coords(one.point(0).begin(), one.point(0).end());
    if (t >= incident_at) {
      coords[0] = std::min(coords[0] * 4.0, 4989.0);  // response times spike 4x
    }
    monitor.push(coords, static_cast<data::PointId>(t));

    if ((t + 1) % (steps / 6) == 0) {
      const auto& sky = monitor.skyline();
      const auto shortlist = skyline::epsilon_pareto_cover(sky, 0.1);
      std::cout << "  " << (t >= incident_at ? "!" : " ") << std::setw(5) << t + 1 << " | "
                << std::setw(14) << sky.size() << " | " << shortlist.size()
                << (t >= incident_at && t < incident_at + steps / 6
                        ? "   <- incident: old fast services age out of the window"
                        : "")
                << "\n";
    }
  }
  std::cout << "\ncache rebuilds: " << monitor.rebuilds() << " over " << steps
            << " pushes (rebuild only when a skyline member ages out)\n";
  return 0;
}
