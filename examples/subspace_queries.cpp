// Subspace skyline queries — different users care about different QoS
// attributes.
//
// A latency-sensitive user queries {ResponseTime, Latency}; a dependability
// buyer queries {Availability, Reliability}; the full skyline serves nobody
// directly (too big, mixes criteria). This example runs the MapReduce
// pipeline per subspace via data::project and shows how subspace skylines
// relate to the full-space one, plus the analytic size estimate that
// predicts the growth.
//
//   ./build/examples/subspace_queries [--services 30000]
#include <iostream>
#include <unordered_set>

#include "src/common/cli.hpp"
#include "src/core/mr_skyline.hpp"
#include "src/dataset/normalize.hpp"
#include "src/dataset/qws.hpp"
#include "src/dataset/transforms.hpp"
#include "src/skyline/estimate.hpp"

int main(int argc, char** argv) {
  using namespace mrsky;
  const common::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("services", 30000));
  const std::size_t dim = 6;

  data::QwsLikeGenerator generator(dim, /*seed=*/31);
  const auto schema = generator.schema();
  const data::PointSet services = data::normalize_min_max(generator.generate_oriented(n));

  core::MRSkylineConfig config;
  config.scheme = part::Scheme::kAngular;
  config.servers = 4;

  const auto full = core::run_mr_skyline(services, config);
  std::unordered_set<data::PointId> full_ids(full.skyline.ids().begin(),
                                             full.skyline.ids().end());
  std::cout << n << " services, full " << dim << "-attribute skyline: " << full.skyline.size()
            << " points (analytic estimate for independent data: "
            << static_cast<std::size_t>(skyline::expected_skyline_size(n, dim)) << ")\n\n";

  struct Query {
    const char* who;
    std::vector<std::size_t> attrs;
  };
  const std::vector<Query> queries = {
      {"latency-sensitive user", {0, 5}},   // ResponseTime, Compliance
      {"dependability buyer", {1, 4}},      // Availability, Reliability
      {"throughput shopper", {2, 3}},       // Throughput, Successability
  };

  for (const auto& query : queries) {
    const data::PointSet sub = data::project(services, query.attrs);
    const auto result = core::run_mr_skyline(sub, config);
    std::size_t also_full = 0;
    for (data::PointId id : result.skyline.ids()) {
      if (full_ids.contains(id)) ++also_full;
    }
    std::cout << query.who << " (attributes";
    for (std::size_t a : query.attrs) std::cout << " " << schema[a].name;
    std::cout << "):\n  subspace skyline " << result.skyline.size() << " points, " << also_full
              << " of them in the full-space skyline\n";
  }

  std::cout << "\nEvery subspace skyline point is full-space Pareto-optimal only for\n"
               "users who ignore the projected-away attributes; the full skyline\n"
               "grows roughly like (ln n)^(d-1)/(d-1)! with the attribute count.\n";
  return 0;
}
