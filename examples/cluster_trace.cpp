// Cluster trace — Gantt view of the simulated MapReduce schedule.
//
// Runs the MR-Angle pipeline, traces the cluster simulator's LPT schedule,
// and renders each phase as an ASCII Gantt chart (one row per slot). Also
// shows what a straggling server does to the picture.
//
//   ./build/examples/cluster_trace [--services 50000] [--dim 8] [--servers 4]
#include <iomanip>
#include <iostream>
#include <string>

#include "src/common/cli.hpp"
#include "src/core/mr_skyline.hpp"
#include "src/dataset/normalize.hpp"
#include "src/dataset/qws.hpp"

namespace {

constexpr int kChartWidth = 64;

void render_phase(const std::string& title, const mrsky::mr::PhaseSchedule& schedule) {
  std::cout << "  " << title << " (makespan " << std::fixed << std::setprecision(2)
            << schedule.makespan_seconds << "s)\n";
  if (schedule.makespan_seconds <= 0.0) return;
  static const char kGlyphs[] = "0123456789abcdefghijklmnopqrstuvwxyz";
  for (std::size_t lane = 0; lane < schedule.lane_speeds.size(); ++lane) {
    std::string row(kChartWidth, '.');
    for (const auto& p : schedule.placements) {
      if (p.lane != lane) continue;
      const int from = static_cast<int>(p.start_seconds / schedule.makespan_seconds *
                                        kChartWidth);
      int to = static_cast<int>(p.end_seconds / schedule.makespan_seconds * kChartWidth);
      to = std::min(to, kChartWidth - 1);
      for (int c = from; c <= to; ++c) {
        row[static_cast<std::size_t>(c)] = kGlyphs[p.task_index % (sizeof(kGlyphs) - 1)];
      }
    }
    std::cout << "    lane " << std::setw(2) << lane << " (x" << std::setprecision(1)
              << schedule.lane_speeds[lane] << ") |" << row << "|\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mrsky;
  const common::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("services", 50000));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 8));
  const auto servers = static_cast<std::size_t>(args.get_int("servers", 4));

  data::QwsLikeGenerator gen(dim, 29);
  const auto points = data::normalize_min_max(gen.generate_oriented(n));

  core::MRSkylineConfig config;
  config.scheme = part::Scheme::kAngular;
  config.servers = servers;
  const auto result = core::run_mr_skyline(points, config);

  mr::ClusterModel model;
  model.servers = servers;

  std::cout << "=== healthy cluster, " << servers << " servers ===\n";
  std::cout << "Job 1 (partition + local skylines):\n";
  const auto trace1 = mr::trace_job(result.partition_job, model);
  render_phase("map", trace1.map);
  render_phase("reduce", trace1.reduce);
  std::cout << "Job 2 (global merge):\n";
  const auto trace2 = mr::trace_job(result.merge_job(), model);
  render_phase("reduce", trace2.reduce);

  const auto degraded_model = model.with_stragglers(1, 4.0);
  const auto degraded = mr::trace_job(result.partition_job, degraded_model);
  std::cout << "\n=== same job with one server straggling at 1/4 speed ===\n";
  render_phase("reduce", degraded.reduce);
  std::cout << "\nhealthy reduce makespan:  " << trace1.reduce.makespan_seconds << "s\n"
            << "straggler reduce makespan: " << degraded.reduce.makespan_seconds
            << "s (LPT shifts work off the slow lanes, so the penalty is far\n"
            << "below the naive 4x)\n";
  return 0;
}
