#include "src/skyline/estimate.hpp"

#include <cmath>
#include <vector>

#include "src/common/error.hpp"

namespace mrsky::skyline {

double expected_skyline_size(std::size_t n, std::size_t dim) {
  MRSKY_REQUIRE(dim >= 1, "dimension must be >= 1");
  if (n == 0) return 0.0;
  if (dim == 1) return 1.0;
  // V(k, 1) = 1; V(k, d) = V(k-1, d) + V(k, d-1) / k. Computed level by
  // level in place: after processing level d, v[k] = V(k, d).
  std::vector<double> v(n + 1, 1.0);
  v[0] = 0.0;
  for (std::size_t level = 2; level <= dim; ++level) {
    double running = 0.0;
    for (std::size_t k = 1; k <= n; ++k) {
      running += v[k] / static_cast<double>(k);
      v[k] = running;
    }
  }
  return v[n];
}

double approx_skyline_size(std::size_t n, std::size_t dim) {
  MRSKY_REQUIRE(dim >= 1, "dimension must be >= 1");
  if (n == 0) return 0.0;
  double result = 1.0;
  const double log_n = std::log(static_cast<double>(n));
  for (std::size_t k = 1; k < dim; ++k) {
    result *= log_n / static_cast<double>(k);
  }
  return result;
}

}  // namespace mrsky::skyline
