// Batched, cache-tiled dominance kernel (DESIGN.md decision 9).
//
// The scalar compare(span, span) in dominance.hpp evaluates one pair at a
// time through an index-indirected load — fine for correctness, hostile to
// the hardware: every window probe is a dependent load plus two unpredictable
// branches. This layer restructures the hot path:
//
//   * TiledWindow keeps the BNL/SFS survivor set as contiguous
//     attribute-major tiles of kTileWidth points (SoA within a tile), so one
//     candidate is tested against a whole tile with branch-light min/max-mask
//     loops the compiler can auto-vectorize. An AVX2 variant is compiled
//     behind the MRSKY_NATIVE CMake option and selected at runtime via cpuid;
//     the scalar tile loop is always available as the fallback.
//   * compare_block(p, tile, dim) returns per-lane `lt`/`gt` bitmasks from
//     which every DomRelation is derived: lane j has p ≺ q_j iff
//     lt_j & ~gt_j, p ≻ q_j iff gt_j & ~lt_j, equality iff neither bit.
//   * The window carries running min/max corners; a candidate that is
//     provably incomparable-or-better against the whole window skips the tile
//     scan entirely (SkylineStats::prefilter_skips).
//
// Counter policy: the kernel is a wall-clock optimisation only. Every caller
// charges SkylineStats::dominance_tests exactly as the scalar algorithm would
// have (pairs up to and including the first dominator, all pairs otherwise),
// including scans the prefilter answered — the cluster simulator turns those
// counters into simulated Hadoop time and must not see the speedup.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "src/common/error.hpp"
#include "src/dataset/point_set.hpp"

namespace mrsky::skyline {

/// Lanes per tile. 8 doubles = two AVX2 vectors per attribute.
inline constexpr std::size_t kTileWidth = 8;

/// All kTileWidth lane bits set.
inline constexpr std::uint32_t kLaneMask = (std::uint32_t{1} << kTileWidth) - 1;

/// Per-lane comparison bits for one candidate-vs-tile evaluation.
/// Bit j of `lt`: p[a] < q_j[a] for some attribute a; `gt` likewise with >.
struct TileMasks {
  std::uint32_t lt = 0;
  std::uint32_t gt = 0;
};

/// Portable tile kernel: always available, auto-vectorizable, and the
/// reference the SIMD path is tested against. Stops descending attributes
/// once every lane is already incomparable (both bits set) — at that point
/// further attributes cannot change either mask, so results stay exact.
[[nodiscard]] inline TileMasks compare_block_scalar(const double* p, const double* tile,
                                                    std::size_t dim) noexcept {
  std::uint32_t lt = 0;
  std::uint32_t gt = 0;
  for (std::size_t a = 0; a < dim; ++a) {
    const double pa = p[a];
    const double* q = tile + a * kTileWidth;
    for (std::size_t lane = 0; lane < kTileWidth; ++lane) {
      lt |= static_cast<std::uint32_t>(pa < q[lane]) << lane;
      gt |= static_cast<std::uint32_t>(pa > q[lane]) << lane;
    }
    if ((lt & gt) == kLaneMask) break;
  }
  return {lt, gt};
}

/// Portable one-directional kernel: bitmask of lanes whose point dominates
/// `p`. A lane stays "alive" while its point is <= p in every attribute seen
/// so far; the attribute loop stops as soon as no lane is alive. Exact: a
/// dead lane can never be a dominator, and +inf tile padding dies on the
/// first attribute.
[[nodiscard]] inline std::uint32_t dominators_in_block_scalar(const double* p, const double* tile,
                                                              std::size_t dim) noexcept {
  std::uint32_t alive = kLaneMask;
  std::uint32_t strict = 0;
  for (std::size_t a = 0; a < dim; ++a) {
    const double pa = p[a];
    const double* q = tile + a * kTileWidth;
    std::uint32_t lt = 0;
    std::uint32_t gt = 0;
    for (std::size_t lane = 0; lane < kTileWidth; ++lane) {
      lt |= static_cast<std::uint32_t>(pa < q[lane]) << lane;
      gt |= static_cast<std::uint32_t>(pa > q[lane]) << lane;
    }
    alive &= ~lt;
    strict |= gt;
    if (alive == 0) return 0;
  }
  return alive & strict;
}

/// Tests candidate `p` (dim contiguous doubles) against one attribute-major
/// tile of kTileWidth points. Dispatches to AVX2 when the build enabled
/// MRSKY_NATIVE and the CPU supports it; otherwise the scalar tile loop.
[[nodiscard]] TileMasks compare_block(const double* p, const double* tile,
                                      std::size_t dim) noexcept;

/// Bitmask of tile lanes that dominate `p` (runtime-dispatched like
/// compare_block). The fast path for the one-directional window probes in
/// SFS, the D&C cross-filter, and the SFS-style merge scans.
[[nodiscard]] std::uint32_t dominators_in_block(const double* p, const double* tile,
                                                std::size_t dim) noexcept;

/// True iff this binary was built with the MRSKY_NATIVE SIMD path compiled in.
[[nodiscard]] bool compare_block_simd_compiled() noexcept;
/// True iff compare_block actually dispatches to the SIMD path at runtime.
[[nodiscard]] bool compare_block_simd_active() noexcept;

/// Bench/test hook: disable the min/max-corner prefilter globally (default
/// on). The prefilter never changes results or dominance_tests, only wall
/// clock, so flipping this is safe at any point between skyline calls.
void set_prefilter_enabled(bool enabled) noexcept;
[[nodiscard]] bool prefilter_enabled() noexcept;

/// The skyline window as contiguous attribute-major tiles.
///
/// Lane i lives in tile i / kTileWidth at lane offset i % kTileWidth; within
/// a tile, attribute a's kTileWidth values are contiguous at
/// tile_data(t)[a * kTileWidth + lane]. Each lane carries an opaque payload
/// (the algorithms store source-row indices). Removal is stable in-place
/// compaction, so window order — and therefore every early-exit position and
/// dominance_tests count — matches the scalar algorithms exactly.
class TiledWindow {
 public:
  explicit TiledWindow(std::size_t dim)
      : dim_(dim),
        min_corner_(dim, std::numeric_limits<double>::infinity()),
        max_corner_(dim, -std::numeric_limits<double>::infinity()) {
    MRSKY_ASSERT(dim >= 1, "TiledWindow needs at least one attribute");
  }

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t tiles() const noexcept {
    return (size_ + kTileWidth - 1) / kTileWidth;
  }

  void clear() noexcept {
    size_ = 0;
    payloads_.clear();
    min_corner_.assign(dim_, std::numeric_limits<double>::infinity());
    max_corner_.assign(dim_, -std::numeric_limits<double>::infinity());
  }

  /// Base of tile t: dim * kTileWidth contiguous doubles.
  [[nodiscard]] const double* tile_data(std::size_t t) const noexcept {
    return coords_.data() + t * dim_ * kTileWidth;
  }

  /// Bitmask of lanes in tile t that hold live points.
  [[nodiscard]] std::uint32_t valid_mask(std::size_t t) const noexcept {
    const std::size_t valid =
        size_ - t * kTileWidth >= kTileWidth ? kTileWidth : size_ - t * kTileWidth;
    return (std::uint32_t{1} << valid) - 1;
  }

  [[nodiscard]] std::size_t payload(std::size_t lane) const noexcept { return payloads_[lane]; }
  [[nodiscard]] std::span<const std::size_t> payloads() const noexcept { return payloads_; }

  void push_back(std::span<const double> p, std::size_t payload);
  /// Scatters ps.point(row) straight from row-major storage into the tile.
  void push_back(const data::PointSet& ps, std::size_t row);

  /// Componentwise min/max over every point ever pushed. Drops leave the
  /// corners stale, but only in the conservative direction (min too low, max
  /// too high), which keeps both prefilter answers sound.
  [[nodiscard]] std::span<const double> min_corner() const noexcept { return min_corner_; }
  [[nodiscard]] std::span<const double> max_corner() const noexcept { return max_corner_; }

  /// False iff no window point can possibly dominate p: some attribute of p
  /// is strictly below the window's min corner there.
  [[nodiscard]] bool maybe_dominated(std::span<const double> p) const noexcept {
    for (std::size_t a = 0; a < dim_; ++a) {
      if (p[a] < min_corner_[a]) return false;
    }
    return true;
  }

  /// False iff p can possibly dominate no window point: some attribute of p
  /// is strictly above the window's max corner there.
  [[nodiscard]] bool maybe_dominates(std::span<const double> p) const noexcept {
    for (std::size_t a = 0; a < dim_; ++a) {
      if (p[a] > max_corner_[a]) return false;
    }
    return true;
  }

  /// Stable in-place removal: drops every lane whose bit is set in
  /// tile_drops[tile]; surviving lanes keep their relative order.
  void compact(std::span<const std::uint32_t> tile_drops);

 private:
  void begin_lane();

  std::size_t dim_;
  std::size_t size_ = 0;
  std::vector<double> coords_;          // tiles() * dim * kTileWidth
  std::vector<std::size_t> payloads_;   // one per live lane
  std::vector<double> min_corner_;
  std::vector<double> max_corner_;
};

}  // namespace mrsky::skyline
