#include "src/skyline/dominance_block.hpp"

#include <algorithm>
#include <atomic>

#if defined(MRSKY_NATIVE) && (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define MRSKY_HAVE_AVX2_PATH 1
#include <immintrin.h>
#else
#define MRSKY_HAVE_AVX2_PATH 0
#endif

namespace mrsky::skyline {

namespace {

std::atomic<bool> g_prefilter_enabled{true};

#if MRSKY_HAVE_AVX2_PATH

// Compiled for AVX2 via the target attribute (not a TU-wide -mavx2), so the
// rest of this file — including the scalar fallback — stays baseline ISA and
// the binary remains runnable on non-AVX2 hosts.
__attribute__((target("avx2"))) TileMasks compare_block_avx2(const double* p, const double* tile,
                                                             std::size_t dim) noexcept {
  TileMasks m;
  __m256d lt_lo = _mm256_setzero_pd();
  __m256d lt_hi = _mm256_setzero_pd();
  __m256d gt_lo = _mm256_setzero_pd();
  __m256d gt_hi = _mm256_setzero_pd();
  for (std::size_t a = 0; a < dim; ++a) {
    const __m256d pa = _mm256_broadcast_sd(p + a);
    const __m256d q_lo = _mm256_loadu_pd(tile + a * kTileWidth);
    const __m256d q_hi = _mm256_loadu_pd(tile + a * kTileWidth + 4);
    lt_lo = _mm256_or_pd(lt_lo, _mm256_cmp_pd(pa, q_lo, _CMP_LT_OQ));
    lt_hi = _mm256_or_pd(lt_hi, _mm256_cmp_pd(pa, q_hi, _CMP_LT_OQ));
    gt_lo = _mm256_or_pd(gt_lo, _mm256_cmp_pd(pa, q_lo, _CMP_GT_OQ));
    gt_hi = _mm256_or_pd(gt_hi, _mm256_cmp_pd(pa, q_hi, _CMP_GT_OQ));
    m.lt = static_cast<std::uint32_t>(_mm256_movemask_pd(lt_lo)) |
           static_cast<std::uint32_t>(_mm256_movemask_pd(lt_hi)) << 4;
    m.gt = static_cast<std::uint32_t>(_mm256_movemask_pd(gt_lo)) |
           static_cast<std::uint32_t>(_mm256_movemask_pd(gt_hi)) << 4;
    if ((m.lt & m.gt) == kLaneMask) break;  // every lane incomparable: masks final
  }
  return m;
}

__attribute__((target("avx2"))) std::uint32_t dominators_in_block_avx2(
    const double* p, const double* tile, std::size_t dim) noexcept {
  std::uint32_t alive = kLaneMask;
  std::uint32_t strict = 0;
  for (std::size_t a = 0; a < dim; ++a) {
    const __m256d pa = _mm256_broadcast_sd(p + a);
    const __m256d q_lo = _mm256_loadu_pd(tile + a * kTileWidth);
    const __m256d q_hi = _mm256_loadu_pd(tile + a * kTileWidth + 4);
    const std::uint32_t lt =
        static_cast<std::uint32_t>(_mm256_movemask_pd(_mm256_cmp_pd(pa, q_lo, _CMP_LT_OQ))) |
        static_cast<std::uint32_t>(_mm256_movemask_pd(_mm256_cmp_pd(pa, q_hi, _CMP_LT_OQ))) << 4;
    const std::uint32_t gt =
        static_cast<std::uint32_t>(_mm256_movemask_pd(_mm256_cmp_pd(pa, q_lo, _CMP_GT_OQ))) |
        static_cast<std::uint32_t>(_mm256_movemask_pd(_mm256_cmp_pd(pa, q_hi, _CMP_GT_OQ))) << 4;
    alive &= ~lt;
    strict |= gt;
    if (alive == 0) return 0;
  }
  return alive & strict;
}

bool cpu_has_avx2() noexcept {
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
}

#endif  // MRSKY_HAVE_AVX2_PATH

}  // namespace

TileMasks compare_block(const double* p, const double* tile, std::size_t dim) noexcept {
#if MRSKY_HAVE_AVX2_PATH
  if (cpu_has_avx2()) return compare_block_avx2(p, tile, dim);
#endif
  return compare_block_scalar(p, tile, dim);
}

std::uint32_t dominators_in_block(const double* p, const double* tile, std::size_t dim) noexcept {
#if MRSKY_HAVE_AVX2_PATH
  if (cpu_has_avx2()) return dominators_in_block_avx2(p, tile, dim);
#endif
  return dominators_in_block_scalar(p, tile, dim);
}

bool compare_block_simd_compiled() noexcept { return MRSKY_HAVE_AVX2_PATH != 0; }

bool compare_block_simd_active() noexcept {
#if MRSKY_HAVE_AVX2_PATH
  return cpu_has_avx2();
#else
  return false;
#endif
}

void set_prefilter_enabled(bool enabled) noexcept {
  g_prefilter_enabled.store(enabled, std::memory_order_relaxed);
}

bool prefilter_enabled() noexcept { return g_prefilter_enabled.load(std::memory_order_relaxed); }

void TiledWindow::begin_lane() {
  if (size_ % kTileWidth == 0) {
    // Open a fresh tile. Pad with +inf so untouched lanes read as
    // initialized doubles; callers mask them out via valid_mask anyway.
    coords_.resize((size_ / kTileWidth + 1) * dim_ * kTileWidth,
                   std::numeric_limits<double>::infinity());
  }
}

void TiledWindow::push_back(std::span<const double> p, std::size_t payload) {
  MRSKY_ASSERT(p.size() == dim_, "TiledWindow point dimension mismatch");
  begin_lane();
  double* base = coords_.data() + (size_ / kTileWidth) * dim_ * kTileWidth + size_ % kTileWidth;
  for (std::size_t a = 0; a < dim_; ++a) {
    base[a * kTileWidth] = p[a];
    min_corner_[a] = std::min(min_corner_[a], p[a]);
    max_corner_[a] = std::max(max_corner_[a], p[a]);
  }
  payloads_.push_back(payload);
  ++size_;
}

void TiledWindow::push_back(const data::PointSet& ps, std::size_t row) {
  MRSKY_ASSERT(ps.dim() == dim_, "TiledWindow point dimension mismatch");
  begin_lane();
  double* base = coords_.data() + (size_ / kTileWidth) * dim_ * kTileWidth + size_ % kTileWidth;
  ps.copy_point_to(row, base, kTileWidth);
  for (std::size_t a = 0; a < dim_; ++a) {
    min_corner_[a] = std::min(min_corner_[a], base[a * kTileWidth]);
    max_corner_[a] = std::max(max_corner_[a], base[a * kTileWidth]);
  }
  payloads_.push_back(row);
  ++size_;
}

void TiledWindow::compact(std::span<const std::uint32_t> tile_drops) {
  MRSKY_ASSERT(tile_drops.size() >= tiles(), "compact needs one drop mask per tile");
  std::size_t dst = 0;
  const std::size_t tile_stride = dim_ * kTileWidth;
  for (std::size_t src = 0; src < size_; ++src) {
    if ((tile_drops[src / kTileWidth] >> (src % kTileWidth)) & 1u) continue;
    if (dst != src) {
      const double* sb = coords_.data() + (src / kTileWidth) * tile_stride + src % kTileWidth;
      double* db = coords_.data() + (dst / kTileWidth) * tile_stride + dst % kTileWidth;
      for (std::size_t a = 0; a < dim_; ++a) db[a * kTileWidth] = sb[a * kTileWidth];
      payloads_[dst] = payloads_[src];
    }
    ++dst;
  }
  size_ = dst;
  payloads_.resize(dst);
  coords_.resize(tiles() * tile_stride);
}

}  // namespace mrsky::skyline
