#include "src/skyline/extensions.hpp"

#include <algorithm>
#include <numeric>

#include "src/common/error.hpp"
#include "src/skyline/algorithms.hpp"

namespace mrsky::skyline {

data::PointSet k_skyband(const data::PointSet& ps, std::size_t k, SkylineStats* stats) {
  MRSKY_REQUIRE(k >= 1, "k-skyband requires k >= 1");
  SkylineStats local;
  SkylineStats& s = stats != nullptr ? *stats : local;
  s.points_in += ps.size();

  std::vector<std::size_t> survivors;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    std::size_t dominators = 0;
    for (std::size_t j = 0; j < ps.size() && dominators < k; ++j) {
      if (i == j) continue;
      ++s.dominance_tests;
      if (dominates(ps.point(j), ps.point(i))) ++dominators;
    }
    if (dominators < k) survivors.push_back(i);
  }
  s.points_out += survivors.size();
  return ps.select(survivors);
}

RepresentativeResult representative_skyline(const data::PointSet& ps, std::size_t k) {
  MRSKY_REQUIRE(k >= 1, "need at least one representative");
  RepresentativeResult result;
  result.representatives = data::PointSet(ps.dim());
  if (ps.empty()) return result;

  const data::PointSet sky = bnl_skyline(ps);

  // coverage[s] = dataset points dominated by skyline point s and not yet
  // covered by an earlier pick. Greedy max-coverage.
  std::vector<bool> covered(ps.size(), false);
  std::vector<bool> used(sky.size(), false);
  for (std::size_t round = 0; round < k && round < sky.size(); ++round) {
    std::size_t best = sky.size();
    std::size_t best_gain = 0;
    for (std::size_t s = 0; s < sky.size(); ++s) {
      if (used[s]) continue;
      std::size_t gain = 0;
      for (std::size_t i = 0; i < ps.size(); ++i) {
        if (!covered[i] && dominates(sky.point(s), ps.point(i))) ++gain;
      }
      // Strict > keeps the earliest (lowest-id after BNL's sort) on ties, so
      // selection is deterministic.
      if (best == sky.size() || gain > best_gain) {
        best = s;
        best_gain = gain;
      }
    }
    used[best] = true;
    result.representatives.push_back(sky.point(best), sky.id(best));
    result.coverage.push_back(best_gain);
    result.total_covered += best_gain;
    for (std::size_t i = 0; i < ps.size(); ++i) {
      if (!covered[i] && dominates(sky.point(best), ps.point(i))) covered[i] = true;
    }
  }
  return result;
}

std::vector<ScoredPoint> top_k_weighted(const data::PointSet& ps,
                                        std::span<const double> weights, std::size_t k) {
  MRSKY_REQUIRE(weights.size() == ps.dim(), "one weight per attribute required");
  for (double w : weights) MRSKY_REQUIRE(w >= 0.0, "weights must be non-negative");

  const data::PointSet sky = bnl_skyline(ps);
  std::vector<ScoredPoint> scored;
  scored.reserve(sky.size());
  for (std::size_t i = 0; i < sky.size(); ++i) {
    double score = 0.0;
    const auto p = sky.point(i);
    for (std::size_t a = 0; a < p.size(); ++a) score += weights[a] * p[a];
    scored.push_back({sky.id(i), score});
  }
  std::sort(scored.begin(), scored.end(), [](const ScoredPoint& a, const ScoredPoint& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.id < b.id;
  });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

data::PointSet epsilon_pareto_cover(const data::PointSet& ps, double epsilon) {
  MRSKY_REQUIRE(epsilon >= 0.0, "epsilon must be non-negative");
  for (std::size_t i = 0; i < ps.size(); ++i) {
    for (double v : ps.point(i)) {
      MRSKY_REQUIRE(v >= 0.0, "epsilon cover requires non-negative coordinates");
    }
  }
  const data::PointSet sky = bnl_skyline(ps);
  if (sky.empty()) return sky;

  auto eps_dominates = [epsilon](std::span<const double> s, std::span<const double> p) {
    for (std::size_t a = 0; a < s.size(); ++a) {
      if (s[a] > (1.0 + epsilon) * p[a]) return false;
    }
    return true;
  };

  // Greedy sweep in ascending coordinate-sum order: a point already
  // ε-covered by a selected one is skipped; otherwise it is selected (it
  // must cover itself). Selected points cover every dataset point because
  // each dataset point's dominator on the skyline is either selected or
  // ε-covered by a selected point s, and ε-cover composes with dominance
  // (s <= (1+ε)·q and q <= p gives s <= (1+ε)·p).
  std::vector<std::size_t> order(sky.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto pa = sky.point(a);
    const auto pb = sky.point(b);
    const double sa = std::accumulate(pa.begin(), pa.end(), 0.0);
    const double sb = std::accumulate(pb.begin(), pb.end(), 0.0);
    if (sa != sb) return sa < sb;
    return a < b;
  });

  std::vector<std::size_t> selected;
  for (std::size_t i : order) {
    bool covered = false;
    for (std::size_t s : selected) {
      if (eps_dominates(sky.point(s), sky.point(i))) {
        covered = true;
        break;
      }
    }
    if (!covered) selected.push_back(i);
  }
  std::sort(selected.begin(), selected.end());
  return sky.select(selected);
}

}  // namespace mrsky::skyline
