#include "src/skyline/maintained.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace mrsky::skyline {

MaintainedSkyline::MaintainedSkyline(std::size_t dim) : dim_(dim) {
  if (dim_ == 0) throw InvalidArgument("MaintainedSkyline: dim must be >= 1");
}

MaintainedSkyline::MaintainedSkyline(const data::PointSet& ps) : MaintainedSkyline(ps.dim()) {
  for (std::size_t i = 0; i < ps.size(); ++i) {
    insert(ps.point(i), ps.id(i));
  }
}

std::uint32_t MaintainedSkyline::alloc_slot(std::span<const double> c, data::PointId id) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    std::copy(c.begin(), c.end(), coords_.begin() + static_cast<std::ptrdiff_t>(slot) * static_cast<std::ptrdiff_t>(dim_));
  } else {
    slot = static_cast<std::uint32_t>(nodes_.size());
    coords_.insert(coords_.end(), c.begin(), c.end());
    nodes_.emplace_back();
    dominees_.emplace_back();
  }
  nodes_[slot] = Node{id, kNoSlot, 0, false};
  index_.emplace(id, slot);
  return slot;
}

void MaintainedSkyline::release_slot(std::uint32_t slot) {
  index_.erase(nodes_[slot].id);
  dominees_[slot].clear();
  nodes_[slot].skyline = false;
  nodes_[slot].guard = kNoSlot;
  free_slots_.push_back(slot);
}

void MaintainedSkyline::attach(std::uint32_t slot, std::uint32_t guard) {
  nodes_[slot].guard = guard;
  nodes_[slot].guard_pos = static_cast<std::uint32_t>(dominees_[guard].size());
  nodes_[slot].skyline = false;
  dominees_[guard].push_back(slot);
}

void MaintainedSkyline::detach(std::uint32_t slot) {
  const std::uint32_t guard = nodes_[slot].guard;
  auto& list = dominees_[guard];
  const std::uint32_t pos = nodes_[slot].guard_pos;
  list[pos] = list.back();
  nodes_[list[pos]].guard_pos = pos;
  list.pop_back();
  nodes_[slot].guard = kNoSlot;
}

bool MaintainedSkyline::raise(std::uint32_t slot) {
  const std::span<const double> p = coords(slot);

  // Pass 1: park under the first current skyline member that dominates us.
  // Ties (duplicate coordinates) do not dominate either way, so duplicates
  // coexist on the skyline — matching naive_skyline/bnl_skyline semantics.
  for (std::uint32_t member : skyline_slots_) {
    ++stats_.dominance_tests;
    if (dominates(coords(member), p)) {
      attach(slot, member);
      return false;
    }
  }

  // Pass 2: we join the skyline. Demote every member we dominate under us,
  // and absorb their dominee lists wholesale: p ≤ member everywhere (strict
  // somewhere) and member ≤ dominee everywhere gives p ≤ dominee everywhere
  // with strictness inherited from p < member's witness attribute.
  std::size_t keep = 0;
  for (std::size_t i = 0; i < skyline_slots_.size(); ++i) {
    const std::uint32_t member = skyline_slots_[i];
    ++stats_.dominance_tests;
    if (dominates(p, coords(member))) {
      for (std::uint32_t dominee : dominees_[member]) {
        nodes_[dominee].guard = slot;
        nodes_[dominee].guard_pos = static_cast<std::uint32_t>(dominees_[slot].size());
        dominees_[slot].push_back(dominee);
      }
      dominees_[member].clear();
      attach(member, slot);
    } else {
      skyline_slots_[keep++] = member;
    }
  }
  skyline_slots_.resize(keep);
  nodes_[slot].skyline = true;
  nodes_[slot].guard = kNoSlot;
  skyline_slots_.push_back(slot);
  return true;
}

bool MaintainedSkyline::insert(std::span<const double> c, data::PointId id) {
  if (c.size() != dim_) throw InvalidArgument("MaintainedSkyline::insert: dimension mismatch");
  if (index_.count(id) != 0) throw InvalidArgument("MaintainedSkyline::insert: duplicate id");
  ++stats_.points_in;
  const std::uint32_t slot = alloc_slot(c, id);
  const bool entered = raise(slot);
  stats_.points_out = skyline_slots_.size();
  return entered;
}

MaintainedSkyline::EraseResult MaintainedSkyline::erase(data::PointId id) {
  EraseResult result;
  const auto it = index_.find(id);
  if (it == index_.end()) return result;
  result.erased = true;
  const std::uint32_t slot = it->second;

  if (!nodes_[slot].skyline) {
    detach(slot);
    release_slot(slot);
    stats_.points_out = skyline_slots_.size();
    return result;
  }

  result.was_skyline = true;
  skyline_slots_.erase(std::find(skyline_slots_.begin(), skyline_slots_.end(), slot));

  // The erased member's exclusive dominees are the only points that can
  // change status. Free the slot first so it cannot act as a dominator, then
  // raise candidates in ascending-id order: the order cannot change the
  // resulting skyline (a candidate dominated by a sibling is absorbed when
  // that sibling raises, whichever goes first), but fixing it makes guard
  // assignment — and therefore the counters — deterministic.
  std::vector<std::uint32_t> candidates = std::move(dominees_[slot]);
  dominees_[slot].clear();
  for (std::uint32_t cand : candidates) nodes_[cand].guard = kNoSlot;
  release_slot(slot);

  std::sort(candidates.begin(), candidates.end(),
            [this](std::uint32_t a, std::uint32_t b) { return nodes_[a].id < nodes_[b].id; });
  for (std::uint32_t cand : candidates) raise(cand);
  for (std::uint32_t cand : candidates) {
    if (nodes_[cand].skyline) {
      result.promoted.push_back(nodes_[cand].id);
      ++promotions_;
    }
  }
  stats_.points_out = skyline_slots_.size();
  return result;
}

bool MaintainedSkyline::on_skyline(data::PointId id) const {
  const auto it = index_.find(id);
  return it != index_.end() && nodes_[it->second].skyline;
}

data::PointSet MaintainedSkyline::skyline_points() const {
  std::vector<std::uint32_t> slots = skyline_slots_;
  std::sort(slots.begin(), slots.end(),
            [this](std::uint32_t a, std::uint32_t b) { return nodes_[a].id < nodes_[b].id; });
  data::PointSet out(dim_);
  out.reserve(slots.size());
  for (std::uint32_t slot : slots) out.push_back(coords(slot), nodes_[slot].id);
  return out;
}

data::PointSet MaintainedSkyline::live_points() const {
  std::vector<std::uint32_t> slots;
  slots.reserve(index_.size());
  for (const auto& [id, slot] : index_) slots.push_back(slot);
  std::sort(slots.begin(), slots.end(),
            [this](std::uint32_t a, std::uint32_t b) { return nodes_[a].id < nodes_[b].id; });
  data::PointSet out(dim_);
  out.reserve(slots.size());
  for (std::uint32_t slot : slots) out.push_back(coords(slot), nodes_[slot].id);
  return out;
}

std::vector<data::PointId> MaintainedSkyline::skyline_ids() const {
  std::vector<data::PointId> ids;
  ids.reserve(skyline_slots_.size());
  for (std::uint32_t slot : skyline_slots_) ids.push_back(nodes_[slot].id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace mrsky::skyline
