// Dominance predicates — the primitive every skyline algorithm is built on.
//
// Definition (paper §II, minimisation orientation): point a DOMINATES point b
// iff a is less than or equal to b in every attribute and strictly less in at
// least one. Two distinct points where neither dominates the other are
// INCOMPARABLE; identical points are EQUAL (neither dominates).
//
// All algorithms report how many dominance tests they performed through
// SkylineStats; the MapReduce cluster simulator converts those counts into
// simulated time, so the counters are part of the reproduction, not optional
// telemetry.
#pragma once

#include <cstdint>
#include <span>

namespace mrsky::skyline {

enum class DomRelation {
  kDominates,     ///< a dominates b
  kDominatedBy,   ///< b dominates a
  kIncomparable,  ///< neither dominates
  kEqual,         ///< identical coordinates
};

/// Work counters shared by all skyline algorithms.
///
/// `dominance_tests` always counts the pairs the *scalar* reference algorithm
/// would evaluate (first-dominator early exit included), regardless of whether
/// the tiled kernel or the min-corner prefilter served the scan — the cluster
/// simulator's time model depends on that count staying stable.
/// `prefilter_skips` is pure telemetry: window scans answered by the corner
/// prefilter alone (their would-be tests are still in `dominance_tests`).
struct SkylineStats {
  std::uint64_t dominance_tests = 0;  ///< pairwise dominance evaluations
  std::uint64_t points_in = 0;        ///< points consumed
  std::uint64_t points_out = 0;       ///< skyline points produced
  std::uint64_t prefilter_skips = 0;  ///< window scans skipped by the corner prefilter

  SkylineStats& operator+=(const SkylineStats& other) noexcept {
    dominance_tests += other.dominance_tests;
    points_in += other.points_in;
    points_out += other.points_out;
    prefilter_skips += other.prefilter_skips;
    return *this;
  }
};

/// True iff a dominates b (minimisation). Sizes must match (checked in debug).
[[nodiscard]] bool dominates(std::span<const double> a, std::span<const double> b) noexcept;

/// Full three-way (four-way) relation between a and b in one pass.
[[nodiscard]] DomRelation compare(std::span<const double> a, std::span<const double> b) noexcept;

}  // namespace mrsky::skyline
