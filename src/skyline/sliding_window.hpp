// Sliding-window skyline — continuous monitoring over a data stream.
//
// The paper's §I motivates dynamism twice: services come and go, and QoS
// measurements go stale ("the QoS of selected service may get degraded
// rapidly"). The natural continuous-query formulation keeps the skyline of
// the most recent W measurements (Lin et al., "Stabbing the sky", ICDE'05).
//
// Implementation: a FIFO of the live window plus a cached skyline.
//  * Appending a point that is dominated by the cached skyline cannot change
//    it (beyond its own insertion check) — O(|SKY|).
//  * Evicting a non-skyline point never changes the skyline (removing a
//    dominated point resurrects nothing).
//  * Evicting a skyline member invalidates the cache; it is rebuilt lazily
//    from the window on the next query — the expensive case, amortised by
//    how rarely the oldest point is still on the skyline.
#pragma once

#include <cstddef>
#include <deque>

#include "src/dataset/point_set.hpp"
#include "src/skyline/dominance.hpp"

namespace mrsky::skyline {

class SlidingWindowSkyline {
 public:
  /// Window of the most recent `capacity` points (>= 1) of dimension `dim`.
  SlidingWindowSkyline(std::size_t dim, std::size_t capacity);

  /// Appends a measurement; evicts the oldest when the window is full.
  void push(std::span<const double> coords, data::PointId id);

  /// Skyline of the current window (lazily recomputed when dirty).
  [[nodiscard]] const data::PointSet& skyline();

  [[nodiscard]] std::size_t size() const noexcept { return window_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// Cache rebuilds triggered by evicting a skyline member (observability
  /// for the amortisation claim above).
  [[nodiscard]] std::size_t rebuilds() const noexcept { return rebuilds_; }
  [[nodiscard]] const SkylineStats& stats() const noexcept { return stats_; }

 private:
  struct Entry {
    data::PointId id;
    std::vector<double> coords;
  };

  void rebuild();

  std::size_t dim_;
  std::size_t capacity_;
  std::deque<Entry> window_;
  data::PointSet cache_;
  bool dirty_ = false;
  std::size_t rebuilds_ = 0;
  SkylineStats stats_;
};

}  // namespace mrsky::skyline
