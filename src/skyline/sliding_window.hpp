// Sliding-window skyline — continuous monitoring over a data stream.
//
// The paper's §I motivates dynamism twice: services come and go, and QoS
// measurements go stale ("the QoS of selected service may get degraded
// rapidly"). The natural continuous-query formulation keeps the skyline of
// the most recent W measurements (Lin et al., "Stabbing the sky", ICDE'05) —
// either the last `capacity` points (count window) or every point stamped
// within the last `span` ticks (time window).
//
// Implementation: a FIFO of the live window plus a cached skyline.
//  * Appending a point that is dominated by the cached skyline cannot change
//    it (beyond its own insertion check) — O(|SKY|).
//  * Evicting a non-skyline point never changes the skyline (removing a
//    dominated point resurrects nothing).
//  * Evicting a skyline member invalidates the cache; it is rebuilt lazily
//    from the window on the next query — the expensive case, amortised by
//    how rarely the oldest point is still on the skyline.
//
// The per-push probes of the cached skyline run on the tiled kernel
// (dominance_block.hpp), mirrored into a TiledWindow alongside the PointSet
// cache, but charge stats().dominance_tests exactly as the scalar loops they
// replaced (algorithms.cpp convention): pairs up to and including the first
// dominator in the dominated-check, all pairs in the keep-scan, and the full
// would-be scan when the corner prefilter answers without touching tiles —
// so fixed-seed golden counts are identical across scalar and native builds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "src/dataset/point_set.hpp"
#include "src/skyline/dominance.hpp"
#include "src/skyline/dominance_block.hpp"

namespace mrsky::skyline {

/// What bounds the window: the newest `capacity` points, or every point
/// stamped within the trailing `span` ticks.
enum class WindowPolicy { kCount, kTime };

class SlidingWindowSkyline {
 public:
  /// Count window of the most recent `capacity` points (>= 1) of dimension
  /// `dim`.
  SlidingWindowSkyline(std::size_t dim, std::size_t capacity);

  /// Time window: keeps points with stamps in (now - span, now], where `now`
  /// is the largest tick seen by push/advance. Feed it with the stamped
  /// push(coords, id, tick) overload; ticks must be non-decreasing.
  static SlidingWindowSkyline by_time(std::size_t dim, std::uint64_t span_ticks);

  /// Appends a measurement. Count window: evicts the oldest when full. Time
  /// window: stamps the point with the current tick (no time passes).
  void push(std::span<const double> coords, data::PointId id);

  /// Time-window append: advances the clock to `tick` (expiring old points),
  /// then inserts the point stamped `tick`. Requires a time window and a
  /// tick >= the current one.
  void push(std::span<const double> coords, data::PointId id, std::uint64_t tick);

  /// Time-window clock advance without an insert: expires every point whose
  /// stamp has fallen out of (tick - span, tick].
  void advance(std::uint64_t tick);

  /// Skyline of the current window (lazily recomputed when dirty).
  [[nodiscard]] const data::PointSet& skyline();

  [[nodiscard]] WindowPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] std::size_t size() const noexcept { return window_.size(); }
  /// Count windows only (0 for time windows).
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Time windows only (0 for count windows).
  [[nodiscard]] std::uint64_t span_ticks() const noexcept { return span_; }
  /// Largest tick seen (time windows; 0 before the first stamped push).
  [[nodiscard]] std::uint64_t tick() const noexcept { return tick_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// Cache rebuilds triggered by evicting a skyline member (observability
  /// for the amortisation claim above).
  [[nodiscard]] std::size_t rebuilds() const noexcept { return rebuilds_; }
  [[nodiscard]] const SkylineStats& stats() const noexcept { return stats_; }

 private:
  struct Entry {
    data::PointId id;
    std::uint64_t stamp;
    std::vector<double> coords;
  };

  SlidingWindowSkyline(std::size_t dim, std::size_t capacity, std::uint64_t span,
                       WindowPolicy policy);

  /// Marks the cache dirty iff `victim` is a cached skyline member.
  void note_eviction(data::PointId victim);
  /// Expires time-window entries with stamp <= tick - span.
  void expire(std::uint64_t tick);
  /// Folds a surviving push into the cached skyline via the tiled kernel.
  void fold_insert(std::span<const double> coords, data::PointId id);
  void rebuild();
  void rebuild_tiles();

  std::size_t dim_;
  std::size_t capacity_;
  std::uint64_t span_;
  WindowPolicy policy_;
  std::uint64_t tick_ = 0;
  std::deque<Entry> window_;
  data::PointSet cache_;
  TiledWindow tiles_;  ///< mirrors cache_ row-for-row for the kernel probes
  bool dirty_ = false;
  std::size_t rebuilds_ = 0;
  SkylineStats stats_;
};

}  // namespace mrsky::skyline
