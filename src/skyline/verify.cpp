#include "src/skyline/verify.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/skyline/dominance.hpp"

namespace mrsky::skyline {

VerifyResult verify_skyline(const data::PointSet& dataset, const data::PointSet& candidate) {
  if (dataset.dim() != candidate.dim()) {
    return {false, "dimension mismatch between dataset and candidate"};
  }

  std::unordered_map<data::PointId, std::size_t> dataset_row;
  dataset_row.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) dataset_row.emplace(dataset.id(i), i);

  std::unordered_set<data::PointId> candidate_ids;
  candidate_ids.reserve(candidate.size());

  // 1 + 2: membership and non-domination of each candidate point.
  for (std::size_t c = 0; c < candidate.size(); ++c) {
    const data::PointId id = candidate.id(c);
    candidate_ids.insert(id);
    auto it = dataset_row.find(id);
    if (it == dataset_row.end()) {
      return {false, "candidate id " + std::to_string(id) + " not present in dataset"};
    }
    const auto original = dataset.point(it->second);
    const auto claimed = candidate.point(c);
    if (!std::equal(original.begin(), original.end(), claimed.begin())) {
      return {false, "candidate id " + std::to_string(id) + " has altered coordinates"};
    }
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      if (dominates(dataset.point(i), claimed)) {
        return {false, "candidate id " + std::to_string(id) + " is dominated by dataset id " +
                           std::to_string(dataset.id(i))};
      }
    }
  }

  // 3: completeness — every excluded point must be dominated.
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (candidate_ids.contains(dataset.id(i))) continue;
    bool dominated = false;
    for (std::size_t j = 0; j < dataset.size() && !dominated; ++j) {
      if (dominates(dataset.point(j), dataset.point(i))) dominated = true;
    }
    if (!dominated) {
      return {false, "dataset id " + std::to_string(dataset.id(i)) +
                         " is undominated but missing from the candidate"};
    }
  }
  return {true, ""};
}

bool same_ids(const data::PointSet& a, const data::PointSet& b) {
  return sorted_ids(a) == sorted_ids(b);
}

}  // namespace mrsky::skyline
