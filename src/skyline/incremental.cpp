#include "src/skyline/incremental.hpp"

#include <vector>

#include "src/common/error.hpp"
#include "src/skyline/algorithms.hpp"

namespace mrsky::skyline {

IncrementalSkyline::IncrementalSkyline(std::size_t dim) : skyline_(dim) {}

IncrementalSkyline::IncrementalSkyline(const data::PointSet& ps)
    : skyline_(bnl_skyline(ps, &stats_)) {}

bool IncrementalSkyline::insert(std::span<const double> coords, data::PointId id) {
  MRSKY_REQUIRE(coords.size() == skyline_.dim(), "point dimension mismatch");
  stats_.points_in += 1;

  // First pass: am I dominated? (Cheap rejection before any mutation.)
  for (std::size_t i = 0; i < skyline_.size(); ++i) {
    ++stats_.dominance_tests;
    if (dominates(skyline_.point(i), coords)) return false;
  }

  // Survivors: every current skyline point the newcomer does not dominate.
  std::vector<std::size_t> keep;
  keep.reserve(skyline_.size());
  for (std::size_t i = 0; i < skyline_.size(); ++i) {
    ++stats_.dominance_tests;
    if (!dominates(coords, skyline_.point(i))) keep.push_back(i);
  }
  data::PointSet next = skyline_.select(keep);
  next.push_back(coords, id);
  skyline_ = std::move(next);
  stats_.points_out = skyline_.size();
  return true;
}

}  // namespace mrsky::skyline
