#include "src/skyline/algorithms.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <ranges>
#include <vector>

#include "src/common/error.hpp"
#include "src/skyline/dominance_block.hpp"

namespace mrsky::skyline {

namespace {

// All window scans below run on the tiled kernel (dominance_block.hpp) but
// charge stats.dominance_tests exactly as the scalar loops they replaced:
// pairs up to and including the first dominator, all live pairs otherwise.
// The corner prefilter may answer a scan without touching the tiles; it then
// charges the full would-be scan so fixed-seed golden counts — and the
// simulator's time model built on them — are bit-identical to the scalar
// implementation.

/// Lane-wise probe of one tile, with the scalar dominates() early exits.
/// Returns the first dominating lane, or kTileWidth if none of the `valid`
/// lanes dominates p.
std::size_t first_dominator_lanewise(const double* p, const double* tile, std::size_t dim,
                                     std::size_t valid) {
  for (std::size_t lane = 0; lane < valid; ++lane) {
    bool strictly_better = false;
    bool dominates_p = true;
    for (std::size_t a = 0; a < dim; ++a) {
      const double q = tile[a * kTileWidth + lane];
      if (q > p[a]) {
        dominates_p = false;
        break;
      }
      if (q < p[a]) strictly_better = true;
    }
    if (dominates_p && strictly_better) return lane;
  }
  return kTileWidth;
}

/// One-directional probe: is p dominated by any window point? Counts tests
/// like the scalar `for (w : window) if (dominates(w, p)) break;` loop.
///
/// Hybrid schedule: dominated candidates almost always fall to the head of
/// the window (best points first under SFS order, earliest survivors under
/// BNL), where per-pair early exit beats a full-depth tile — so the head tile
/// is probed lane-wise; the tail, reached mostly by near-survivors whose
/// lanes are incomparable, runs on the batched kernel.
bool dominated_by_window(const TiledWindow& window, std::span<const double> p,
                         SkylineStats& stats) {
  const std::size_t dim = window.dim();
  const std::size_t tiles = window.tiles();
  if (tiles == 0) return false;

  const std::uint32_t head_vm = window.valid_mask(0);
  const std::size_t head_lane = first_dominator_lanewise(
      p.data(), window.tile_data(0), dim, static_cast<std::size_t>(std::popcount(head_vm)));
  if (head_lane < kTileWidth) {
    stats.dominance_tests += head_lane + 1;
    return true;
  }
  stats.dominance_tests += static_cast<std::uint64_t>(std::popcount(head_vm));

  for (std::size_t t = 1; t < tiles; ++t) {
    const std::uint32_t vm = window.valid_mask(t);
    const std::uint32_t dominated_by = dominators_in_block(p.data(), window.tile_data(t), dim) & vm;
    if (dominated_by != 0) {
      stats.dominance_tests += static_cast<std::uint64_t>(std::countr_zero(dominated_by)) + 1;
      return true;
    }
    stats.dominance_tests += static_cast<std::uint64_t>(std::popcount(vm));
  }
  return false;
}

/// The BNL window pass shared by bnl_skyline and the D&C base case: scans
/// `order` in sequence, dropping window points the candidate dominates and
/// rejecting candidates some window point dominates. Returns the surviving
/// source-row indices in window (insertion) order.
template <typename IndexRange>
std::vector<std::size_t> bnl_pass(const data::PointSet& ps, const IndexRange& order,
                                  SkylineStats& stats) {
  TiledWindow window(ps.dim());
  std::vector<std::uint32_t> drops;
  const bool prefilter = prefilter_enabled();
  for (const std::size_t i : order) {
    const auto p = ps.point(i);
    if (prefilter && !window.empty() && !window.maybe_dominated(p) &&
        !window.maybe_dominates(p)) {
      // Whole scan provably relation-free: the scalar loop would have
      // evaluated every window pair, found no dominator and dropped nothing.
      stats.dominance_tests += window.size();
      ++stats.prefilter_skips;
      window.push_back(ps, i);
      continue;
    }
    const std::size_t tiles = window.tiles();
    drops.assign(tiles, 0);
    bool dominated = false;
    bool any_drop = false;
    for (std::size_t t = 0; t < tiles && !dominated; ++t) {
      const std::uint32_t vm = window.valid_mask(t);
      const TileMasks m = compare_block(p.data(), window.tile_data(t), ps.dim());
      const std::uint32_t lt = m.lt & vm;
      const std::uint32_t gt = m.gt & vm;
      const std::uint32_t dominated_by = gt & ~lt;
      std::uint32_t drop = lt & ~gt;
      if (dominated_by != 0) {
        const auto k = static_cast<unsigned>(std::countr_zero(dominated_by));
        stats.dominance_tests += static_cast<std::uint64_t>(k) + 1;
        // The scalar loop stops at the dominator: lanes after it are never
        // examined this round and must survive untouched.
        drop &= (std::uint32_t{1} << k) - 1;
        dominated = true;
      } else {
        stats.dominance_tests += static_cast<std::uint64_t>(std::popcount(vm));
      }
      drops[t] = drop;
      any_drop |= drop != 0;
    }
    if (any_drop) window.compact(drops);
    if (!dominated) window.push_back(ps, i);
  }
  const auto payloads = window.payloads();
  return {payloads.begin(), payloads.end()};
}

}  // namespace

Algorithm parse_algorithm(const std::string& name) {
  if (name == "bnl") return Algorithm::kBnl;
  if (name == "sfs") return Algorithm::kSfs;
  if (name == "dc" || name == "divide-conquer") return Algorithm::kDivideConquer;
  if (name == "naive") return Algorithm::kNaive;
  MRSKY_FAIL("unknown skyline algorithm: " + name);
}

std::string to_string(Algorithm algo) {
  switch (algo) {
    case Algorithm::kBnl: return "bnl";
    case Algorithm::kSfs: return "sfs";
    case Algorithm::kDivideConquer: return "dc";
    case Algorithm::kNaive: return "naive";
  }
  return "unknown";
}

data::PointSet bnl_skyline(const data::PointSet& ps, SkylineStats* stats_out) {
  SkylineStats local_stats;
  SkylineStats& stats = stats_out != nullptr ? *stats_out : local_stats;
  stats.points_in += ps.size();

  auto window = bnl_pass(ps, std::views::iota(std::size_t{0}, ps.size()), stats);

  std::sort(window.begin(), window.end());
  stats.points_out += window.size();
  return ps.select(window);
}

data::PointSet sfs_skyline(const data::PointSet& ps, SkylineStats* stats_out) {
  SkylineStats local_stats;
  SkylineStats& stats = stats_out != nullptr ? *stats_out : local_stats;
  stats.points_in += ps.size();

  // Presort by the monotone score sum(coords): if score(a) < score(b) then b
  // cannot dominate a, so the window only ever grows.
  std::vector<std::size_t> order(ps.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> score(ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const auto p = ps.point(i);
    score[i] = std::accumulate(p.begin(), p.end(), 0.0);
  }
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return score[a] < score[b]; });

  TiledWindow window(ps.dim());
  const bool prefilter = prefilter_enabled();
  for (std::size_t i : order) {
    const auto p = ps.point(i);
    if (prefilter && !window.empty() && !window.maybe_dominated(p)) {
      stats.dominance_tests += window.size();
      ++stats.prefilter_skips;
      window.push_back(ps, i);
      continue;
    }
    if (!dominated_by_window(window, p, stats)) window.push_back(ps, i);
  }

  const auto payloads = window.payloads();
  std::vector<std::size_t> survivors(payloads.begin(), payloads.end());
  std::sort(survivors.begin(), survivors.end());
  stats.points_out += survivors.size();
  return ps.select(survivors);
}

namespace {

// Recursive helper on index ranges; returns surviving indices in window order.
std::vector<std::size_t> dc_recurse(const data::PointSet& ps, std::vector<std::size_t> idx,
                                    SkylineStats& stats) {
  if (idx.size() <= 16) {
    // Base case: tiny BNL over the subset.
    return bnl_pass(ps, idx, stats);
  }

  const std::size_t half = idx.size() / 2;
  std::vector<std::size_t> left(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(half));
  std::vector<std::size_t> right(idx.begin() + static_cast<std::ptrdiff_t>(half), idx.end());
  auto sky_left = dc_recurse(ps, std::move(left), stats);
  auto sky_right = dc_recurse(ps, std::move(right), stats);

  // Cross-filter: a survivor must not be dominated by any survivor of the
  // other half. The against-side is packed into tiles once per direction.
  const bool prefilter = prefilter_enabled();
  auto filter = [&](const std::vector<std::size_t>& candidates,
                    const std::vector<std::size_t>& against) {
    if (against.empty()) return candidates;
    TiledWindow aw(ps.dim());
    for (std::size_t a : against) aw.push_back(ps, a);
    std::vector<std::size_t> out;
    out.reserve(candidates.size());
    for (std::size_t c : candidates) {
      const auto p = ps.point(c);
      if (prefilter && !aw.maybe_dominated(p)) {
        stats.dominance_tests += aw.size();
        ++stats.prefilter_skips;
        out.push_back(c);
        continue;
      }
      if (!dominated_by_window(aw, p, stats)) out.push_back(c);
    }
    return out;
  };
  auto kept_left = filter(sky_left, sky_right);
  auto kept_right = filter(sky_right, sky_left);
  kept_left.insert(kept_left.end(), kept_right.begin(), kept_right.end());
  return kept_left;
}

}  // namespace

data::PointSet dc_skyline(const data::PointSet& ps, SkylineStats* stats_out) {
  SkylineStats local_stats;
  SkylineStats& stats = stats_out != nullptr ? *stats_out : local_stats;
  stats.points_in += ps.size();
  std::vector<std::size_t> idx(ps.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  auto survivors = dc_recurse(ps, std::move(idx), stats);
  std::sort(survivors.begin(), survivors.end());
  stats.points_out += survivors.size();
  return ps.select(survivors);
}

data::PointSet naive_skyline(const data::PointSet& ps, SkylineStats* stats_out) {
  // Deliberately untouched by the tiled kernel: this is the O(n²) scalar
  // ground truth the block algorithms are verified against.
  SkylineStats local_stats;
  SkylineStats& stats = stats_out != nullptr ? *stats_out : local_stats;
  stats.points_in += ps.size();
  std::vector<std::size_t> survivors;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < ps.size() && !dominated; ++j) {
      if (i == j) continue;
      ++stats.dominance_tests;
      if (dominates(ps.point(j), ps.point(i))) dominated = true;
    }
    if (!dominated) survivors.push_back(i);
  }
  stats.points_out += survivors.size();
  return ps.select(survivors);
}

data::PointSet compute_skyline(const data::PointSet& ps, Algorithm algo, SkylineStats* stats) {
  switch (algo) {
    case Algorithm::kBnl: return bnl_skyline(ps, stats);
    case Algorithm::kSfs: return sfs_skyline(ps, stats);
    case Algorithm::kDivideConquer: return dc_skyline(ps, stats);
    case Algorithm::kNaive: return naive_skyline(ps, stats);
  }
  MRSKY_FAIL("unreachable algorithm");
}

}  // namespace mrsky::skyline
