#include "src/skyline/algorithms.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "src/common/error.hpp"

namespace mrsky::skyline {

namespace {

SkylineStats g_discard;  // sink when the caller passes no stats

SkylineStats& stats_or_discard(SkylineStats* stats) {
  if (stats != nullptr) return *stats;
  g_discard = SkylineStats{};
  return g_discard;
}

}  // namespace

Algorithm parse_algorithm(const std::string& name) {
  if (name == "bnl") return Algorithm::kBnl;
  if (name == "sfs") return Algorithm::kSfs;
  if (name == "dc" || name == "divide-conquer") return Algorithm::kDivideConquer;
  if (name == "naive") return Algorithm::kNaive;
  MRSKY_FAIL("unknown skyline algorithm: " + name);
}

std::string to_string(Algorithm algo) {
  switch (algo) {
    case Algorithm::kBnl: return "bnl";
    case Algorithm::kSfs: return "sfs";
    case Algorithm::kDivideConquer: return "dc";
    case Algorithm::kNaive: return "naive";
  }
  return "unknown";
}

data::PointSet bnl_skyline(const data::PointSet& ps, SkylineStats* stats_out) {
  SkylineStats& stats = stats_or_discard(stats_out);
  stats.points_in += ps.size();

  // The window holds indices of currently-undominated points.
  std::vector<std::size_t> window;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const auto p = ps.point(i);
    bool dominated = false;
    // Compare against the window; drop window entries p dominates, stop as
    // soon as some window entry dominates p.
    std::size_t keep = 0;
    for (std::size_t w = 0; w < window.size(); ++w) {
      const auto q = ps.point(window[w]);
      ++stats.dominance_tests;
      const DomRelation rel = compare(p, q);
      if (rel == DomRelation::kDominatedBy) {
        dominated = true;
        // Everything not yet scanned survives untouched.
        for (std::size_t r = w; r < window.size(); ++r) window[keep++] = window[r];
        break;
      }
      if (rel != DomRelation::kDominates) {
        window[keep++] = window[w];  // q survives
      }
      // rel == kDominates: q is dominated by p, drop it (don't copy).
    }
    window.resize(keep);
    if (!dominated) window.push_back(i);
  }

  std::sort(window.begin(), window.end());
  stats.points_out += window.size();
  return ps.select(window);
}

data::PointSet sfs_skyline(const data::PointSet& ps, SkylineStats* stats_out) {
  SkylineStats& stats = stats_or_discard(stats_out);
  stats.points_in += ps.size();

  // Presort by the monotone score sum(coords): if score(a) < score(b) then b
  // cannot dominate a, so the window only ever grows.
  std::vector<std::size_t> order(ps.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> score(ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const auto p = ps.point(i);
    score[i] = std::accumulate(p.begin(), p.end(), 0.0);
  }
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return score[a] < score[b]; });

  std::vector<std::size_t> window;
  for (std::size_t i : order) {
    const auto p = ps.point(i);
    bool dominated = false;
    for (std::size_t w : window) {
      ++stats.dominance_tests;
      if (dominates(ps.point(w), p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) window.push_back(i);
  }

  std::sort(window.begin(), window.end());
  stats.points_out += window.size();
  return ps.select(window);
}

namespace {

// Recursive helper on index ranges; returns surviving indices (sorted).
std::vector<std::size_t> dc_recurse(const data::PointSet& ps, std::vector<std::size_t> idx,
                                    SkylineStats& stats) {
  if (idx.size() <= 16) {
    // Base case: tiny BNL over the subset.
    std::vector<std::size_t> window;
    for (std::size_t i : idx) {
      const auto p = ps.point(i);
      bool dominated = false;
      std::size_t keep = 0;
      for (std::size_t w = 0; w < window.size(); ++w) {
        ++stats.dominance_tests;
        const DomRelation rel = compare(p, ps.point(window[w]));
        if (rel == DomRelation::kDominatedBy) {
          dominated = true;
          for (std::size_t r = w; r < window.size(); ++r) window[keep++] = window[r];
          break;
        }
        if (rel != DomRelation::kDominates) window[keep++] = window[w];
      }
      window.resize(keep);
      if (!dominated) window.push_back(i);
    }
    return window;
  }

  const std::size_t half = idx.size() / 2;
  std::vector<std::size_t> left(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(half));
  std::vector<std::size_t> right(idx.begin() + static_cast<std::ptrdiff_t>(half), idx.end());
  auto sky_left = dc_recurse(ps, std::move(left), stats);
  auto sky_right = dc_recurse(ps, std::move(right), stats);

  // Cross-filter: a survivor must not be dominated by any survivor of the
  // other half.
  auto filter = [&](const std::vector<std::size_t>& candidates,
                    const std::vector<std::size_t>& against) {
    std::vector<std::size_t> out;
    out.reserve(candidates.size());
    for (std::size_t c : candidates) {
      bool dominated = false;
      for (std::size_t a : against) {
        ++stats.dominance_tests;
        if (dominates(ps.point(a), ps.point(c))) {
          dominated = true;
          break;
        }
      }
      if (!dominated) out.push_back(c);
    }
    return out;
  };
  auto kept_left = filter(sky_left, sky_right);
  auto kept_right = filter(sky_right, sky_left);
  kept_left.insert(kept_left.end(), kept_right.begin(), kept_right.end());
  return kept_left;
}

}  // namespace

data::PointSet dc_skyline(const data::PointSet& ps, SkylineStats* stats_out) {
  SkylineStats& stats = stats_or_discard(stats_out);
  stats.points_in += ps.size();
  std::vector<std::size_t> idx(ps.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  auto survivors = dc_recurse(ps, std::move(idx), stats);
  std::sort(survivors.begin(), survivors.end());
  stats.points_out += survivors.size();
  return ps.select(survivors);
}

data::PointSet naive_skyline(const data::PointSet& ps, SkylineStats* stats_out) {
  SkylineStats& stats = stats_or_discard(stats_out);
  stats.points_in += ps.size();
  std::vector<std::size_t> survivors;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < ps.size() && !dominated; ++j) {
      if (i == j) continue;
      ++stats.dominance_tests;
      if (dominates(ps.point(j), ps.point(i))) dominated = true;
    }
    if (!dominated) survivors.push_back(i);
  }
  stats.points_out += survivors.size();
  return ps.select(survivors);
}

data::PointSet compute_skyline(const data::PointSet& ps, Algorithm algo, SkylineStats* stats) {
  switch (algo) {
    case Algorithm::kBnl: return bnl_skyline(ps, stats);
    case Algorithm::kSfs: return sfs_skyline(ps, stats);
    case Algorithm::kDivideConquer: return dc_skyline(ps, stats);
    case Algorithm::kNaive: return naive_skyline(ps, stats);
  }
  MRSKY_FAIL("unreachable algorithm");
}

}  // namespace mrsky::skyline
