#include "src/skyline/dominance.hpp"

#include "src/common/error.hpp"

namespace mrsky::skyline {

bool dominates(std::span<const double> a, std::span<const double> b) noexcept {
  MRSKY_ASSERT(a.size() == b.size(), "dominance requires equal dimensions");
  bool strictly_better_somewhere = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better_somewhere = true;
  }
  return strictly_better_somewhere;
}

DomRelation compare(std::span<const double> a, std::span<const double> b) noexcept {
  MRSKY_ASSERT(a.size() == b.size(), "dominance requires equal dimensions");
  bool a_better = false;
  bool b_better = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) {
      a_better = true;
    } else if (a[i] > b[i]) {
      b_better = true;
    }
    if (a_better && b_better) return DomRelation::kIncomparable;
  }
  if (a_better) return DomRelation::kDominates;
  if (b_better) return DomRelation::kDominatedBy;
  return DomRelation::kEqual;
}

}  // namespace mrsky::skyline
