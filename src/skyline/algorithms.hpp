// Sequential skyline algorithms.
//
// * BNL (block-nested-loops, Börzsönyi et al. ICDE'01) — the algorithm the
//   paper uses for both the local-skyline stage and the global merge
//   (Algorithm 1, lines 8 and 15). In-memory variant: the window always fits.
// * SFS (sort-filter-skyline, Chomicki et al. ICDE'03) — presort by a
//   monotone score; a later point can never dominate an earlier one, so the
//   window is append-only. Used in the local-algorithm ablation.
// * Divide & conquer — two-way split with pairwise cross-filtering merge.
// * Naive — the O(n²) full pairwise reference used by tests as ground truth.
//
// Semantics shared by all: duplicate (coordinate-identical) points do not
// dominate each other, so every copy of an undominated point is returned.
#pragma once

#include <string>

#include "src/dataset/point_set.hpp"
#include "src/skyline/dominance.hpp"

namespace mrsky::skyline {

enum class Algorithm { kBnl, kSfs, kDivideConquer, kNaive };

[[nodiscard]] Algorithm parse_algorithm(const std::string& name);
[[nodiscard]] std::string to_string(Algorithm algo);

/// Computes the skyline of `ps`. If `stats` is non-null the algorithm's work
/// counters are accumulated into it (never reset).
[[nodiscard]] data::PointSet bnl_skyline(const data::PointSet& ps, SkylineStats* stats = nullptr);
[[nodiscard]] data::PointSet sfs_skyline(const data::PointSet& ps, SkylineStats* stats = nullptr);
[[nodiscard]] data::PointSet dc_skyline(const data::PointSet& ps, SkylineStats* stats = nullptr);
[[nodiscard]] data::PointSet naive_skyline(const data::PointSet& ps,
                                           SkylineStats* stats = nullptr);

/// Dispatch by enum.
[[nodiscard]] data::PointSet compute_skyline(const data::PointSet& ps, Algorithm algo,
                                             SkylineStats* stats = nullptr);

}  // namespace mrsky::skyline
