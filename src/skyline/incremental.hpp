// Incremental skyline maintenance under insertions.
//
// Paper §II motivates the MapReduce split with dynamic service registries:
// "Given a new service which is added into UDDI ... the new service is first
// mapped into a group and added into the local skyline computation." This
// class is that per-group maintenance structure: it keeps a skyline current
// as points arrive one at a time.
//
// Deletions are out of scope (as in the paper): removing a skyline point can
// resurrect points that were previously dominated, which requires keeping
// the full dataset; callers that need deletion recompute from the source.
#pragma once

#include "src/dataset/point_set.hpp"
#include "src/skyline/dominance.hpp"

namespace mrsky::skyline {

class IncrementalSkyline {
 public:
  /// Empty skyline over `dim`-dimensional points.
  explicit IncrementalSkyline(std::size_t dim);

  /// Bulk-load: computes the skyline of `ps` as the starting state.
  explicit IncrementalSkyline(const data::PointSet& ps);

  /// Offers a point. Returns true iff it enters the skyline (in which case
  /// any existing skyline points it dominates are evicted); false if it is
  /// dominated by a current skyline point.
  bool insert(std::span<const double> coords, data::PointId id);

  [[nodiscard]] const data::PointSet& skyline() const noexcept { return skyline_; }
  [[nodiscard]] std::size_t size() const noexcept { return skyline_.size(); }
  [[nodiscard]] const SkylineStats& stats() const noexcept { return stats_; }

 private:
  data::PointSet skyline_;
  SkylineStats stats_;
};

}  // namespace mrsky::skyline
