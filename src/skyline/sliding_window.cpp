#include "src/skyline/sliding_window.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/skyline/algorithms.hpp"

namespace mrsky::skyline {

SlidingWindowSkyline::SlidingWindowSkyline(std::size_t dim, std::size_t capacity)
    : dim_(dim), capacity_(capacity), cache_(dim) {
  MRSKY_REQUIRE(dim >= 1, "points need at least one attribute");
  MRSKY_REQUIRE(capacity >= 1, "window must hold at least one point");
}

void SlidingWindowSkyline::push(std::span<const double> coords, data::PointId id) {
  MRSKY_REQUIRE(coords.size() == dim_, "point dimension mismatch");
  stats_.points_in += 1;

  // Evict the oldest point first; only a skyline member's departure can
  // change the skyline.
  if (window_.size() == capacity_) {
    const data::PointId victim = window_.front().id;
    window_.pop_front();
    if (!dirty_) {
      for (data::PointId sid : cache_.ids()) {
        if (sid == victim) {
          dirty_ = true;
          break;
        }
      }
    }
  }
  window_.push_back(Entry{id, {coords.begin(), coords.end()}});

  if (dirty_) return;  // cache already needs a rebuild; fold the insert in

  // Incremental insert into the cached skyline (same rules as
  // IncrementalSkyline): dominated newcomers change nothing.
  for (std::size_t i = 0; i < cache_.size(); ++i) {
    ++stats_.dominance_tests;
    if (dominates(cache_.point(i), coords)) return;
  }
  std::vector<std::size_t> keep;
  keep.reserve(cache_.size());
  for (std::size_t i = 0; i < cache_.size(); ++i) {
    ++stats_.dominance_tests;
    if (!dominates(coords, cache_.point(i))) keep.push_back(i);
  }
  data::PointSet next = cache_.select(keep);
  next.push_back(coords, id);
  cache_ = std::move(next);
}

void SlidingWindowSkyline::rebuild() {
  data::PointSet points(dim_);
  points.reserve(window_.size());
  for (const Entry& e : window_) points.push_back(e.coords, e.id);
  cache_ = bnl_skyline(points, &stats_);
  dirty_ = false;
  ++rebuilds_;
}

const data::PointSet& SlidingWindowSkyline::skyline() {
  if (dirty_) rebuild();
  return cache_;
}

}  // namespace mrsky::skyline
