#include "src/skyline/sliding_window.hpp"

#include <algorithm>
#include <bit>

#include "src/common/error.hpp"
#include "src/skyline/algorithms.hpp"

namespace mrsky::skyline {

SlidingWindowSkyline::SlidingWindowSkyline(std::size_t dim, std::size_t capacity,
                                           std::uint64_t span, WindowPolicy policy)
    : dim_(dim), capacity_(capacity), span_(span), policy_(policy), cache_(dim), tiles_(dim) {
  MRSKY_REQUIRE(dim >= 1, "points need at least one attribute");
}

SlidingWindowSkyline::SlidingWindowSkyline(std::size_t dim, std::size_t capacity)
    : SlidingWindowSkyline(dim, capacity, 0, WindowPolicy::kCount) {
  MRSKY_REQUIRE(capacity >= 1, "window must hold at least one point");
}

SlidingWindowSkyline SlidingWindowSkyline::by_time(std::size_t dim, std::uint64_t span_ticks) {
  MRSKY_REQUIRE(span_ticks >= 1, "time window must span at least one tick");
  return SlidingWindowSkyline(dim, 0, span_ticks, WindowPolicy::kTime);
}

void SlidingWindowSkyline::note_eviction(data::PointId victim) {
  if (dirty_) return;
  for (data::PointId sid : cache_.ids()) {
    if (sid == victim) {
      dirty_ = true;
      return;
    }
  }
}

void SlidingWindowSkyline::expire(std::uint64_t tick) {
  // Stamps arrive non-decreasing, so expired entries form a prefix.
  while (!window_.empty() && window_.front().stamp + span_ <= tick) {
    note_eviction(window_.front().id);
    window_.pop_front();
  }
}

void SlidingWindowSkyline::advance(std::uint64_t tick) {
  MRSKY_REQUIRE(policy_ == WindowPolicy::kTime, "advance() needs a time window");
  MRSKY_REQUIRE(tick >= tick_, "ticks must be non-decreasing");
  tick_ = tick;
  expire(tick);
}

void SlidingWindowSkyline::push(std::span<const double> coords, data::PointId id) {
  MRSKY_REQUIRE(coords.size() == dim_, "point dimension mismatch");
  stats_.points_in += 1;

  if (policy_ == WindowPolicy::kCount) {
    // Evict the oldest point first; only a skyline member's departure can
    // change the skyline.
    if (window_.size() == capacity_) {
      note_eviction(window_.front().id);
      window_.pop_front();
    }
  } else {
    expire(tick_);
  }
  window_.push_back(Entry{id, tick_, {coords.begin(), coords.end()}});

  if (dirty_) return;  // cache already needs a rebuild; fold the insert in
  fold_insert(coords, id);
}

void SlidingWindowSkyline::push(std::span<const double> coords, data::PointId id,
                                std::uint64_t tick) {
  MRSKY_REQUIRE(policy_ == WindowPolicy::kTime, "stamped push needs a time window");
  advance(tick);
  push(coords, id);
}

// Incremental insert into the cached skyline (same rules and the same
// dominance_tests charging as the scalar two-pass loop this replaced):
// dominated newcomers change nothing; a surviving newcomer drops the cached
// members it dominates.
void SlidingWindowSkyline::fold_insert(std::span<const double> coords, data::PointId id) {
  const std::size_t n = cache_.size();
  if (prefilter_enabled() && n != 0 && !tiles_.maybe_dominated(coords) &&
      !tiles_.maybe_dominates(coords)) {
    // Both scalar passes would have run dry: the dominated-check scans all n
    // without a hit, the keep-scan keeps all n.
    stats_.dominance_tests += 2 * static_cast<std::uint64_t>(n);
    ++stats_.prefilter_skips;
    cache_.push_back(coords, id);
    tiles_.push_back(coords, cache_.size() - 1);
    return;
  }

  // Pass 1: is the newcomer dominated? Scalar early-exit charging: pairs up
  // to and including the first dominator, all n otherwise. Tiles are dense
  // (compact() repacks), so lane index == scan position within the tile.
  const std::size_t tiles = tiles_.tiles();
  for (std::size_t t = 0; t < tiles; ++t) {
    const std::uint32_t vm = tiles_.valid_mask(t);
    const std::uint32_t dominated_by =
        dominators_in_block(coords.data(), tiles_.tile_data(t), dim_) & vm;
    if (dominated_by != 0) {
      stats_.dominance_tests += static_cast<std::uint64_t>(std::countr_zero(dominated_by)) + 1;
      return;
    }
    stats_.dominance_tests += static_cast<std::uint64_t>(std::popcount(vm));
  }

  // Pass 2: full keep-scan (the scalar loop never early-exits here).
  std::vector<std::uint32_t> drops(tiles, 0);
  bool any_drop = false;
  for (std::size_t t = 0; t < tiles; ++t) {
    const std::uint32_t vm = tiles_.valid_mask(t);
    const TileMasks m = compare_block(coords.data(), tiles_.tile_data(t), dim_);
    drops[t] = m.lt & ~m.gt & vm;
    any_drop |= drops[t] != 0;
    stats_.dominance_tests += static_cast<std::uint64_t>(std::popcount(vm));
  }
  if (any_drop) {
    std::vector<std::size_t> keep;
    keep.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (((drops[i / kTileWidth] >> (i % kTileWidth)) & 1u) == 0) keep.push_back(i);
    }
    cache_ = cache_.select(keep);
    tiles_.compact(drops);
  }
  cache_.push_back(coords, id);
  tiles_.push_back(coords, cache_.size() - 1);
}

void SlidingWindowSkyline::rebuild_tiles() {
  tiles_.clear();
  for (std::size_t i = 0; i < cache_.size(); ++i) tiles_.push_back(cache_.point(i), i);
}

void SlidingWindowSkyline::rebuild() {
  data::PointSet points(dim_);
  points.reserve(window_.size());
  for (const Entry& e : window_) points.push_back(e.coords, e.id);
  cache_ = bnl_skyline(points, &stats_);
  rebuild_tiles();
  dirty_ = false;
  ++rebuilds_;
}

const data::PointSet& SlidingWindowSkyline::skyline() {
  if (dirty_) rebuild();
  return cache_;
}

}  // namespace mrsky::skyline
