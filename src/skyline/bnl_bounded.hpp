// Memory-bounded multi-pass BNL — the original disk-based algorithm of
// Börzsönyi, Kossmann & Stocker (ICDE 2001), which the paper's local-skyline
// stage names as its building block.
//
// The in-memory BNL in algorithms.hpp assumes the window always fits. The
// real algorithm runs with a window of at most W points:
//  * a point dominated by a window point is discarded;
//  * a point that dominates window points evicts them and enters;
//  * an incomparable point enters the window if there is room, otherwise it
//    is written to a temporary file for the next pass, stamped with the
//    current input position;
//  * a window point can be emitted as a confirmed skyline point once every
//    input point that could dominate it has been seen — i.e. when the scan
//    reaches the position at which the window point was inserted *in the
//    following pass* (the classic timestamp rule);
//  * passes repeat over the overflow file until it is empty.
//
// This module simulates the temp file with an in-memory buffer but preserves
// the pass structure, timestamps and eviction rules exactly, and reports
// per-pass statistics so tests and benches can observe the I/O behaviour the
// paper's servers would have had with "1G memory allocated to JVM".
#pragma once

#include <cstddef>
#include <vector>

#include "src/dataset/point_set.hpp"
#include "src/skyline/dominance.hpp"

namespace mrsky::skyline {

struct BoundedBnlReport {
  std::size_t passes = 0;            ///< scans over (remaining) input
  std::size_t overflow_points = 0;   ///< total points spilled across passes
  SkylineStats stats;                ///< dominance-test and point counters
};

/// Computes the skyline of `ps` with a window of at most `window_capacity`
/// points (>= 1). Result ids equal the unbounded algorithms' (order by id).
[[nodiscard]] data::PointSet bnl_skyline_bounded(const data::PointSet& ps,
                                                 std::size_t window_capacity,
                                                 BoundedBnlReport* report = nullptr);

}  // namespace mrsky::skyline
