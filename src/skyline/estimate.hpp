// Skyline cardinality estimation.
//
// For n points with independent, continuously-distributed attributes the
// expected skyline size is the number of d-dimensional Pareto records:
//
//   E[|SKY|] = H(n, d) ≈ (ln n)^(d-1) / (d-1)!      (Bentley et al. 1978;
//                                                    exact via recurrence)
//
// The paper's complexity worry (§I: "exponential growth of the skyline
// complexity") is exactly this quantity's growth in d. The planner uses it
// to predict merge-stage input sizes; the distribution ablation shows how
// far real workloads (correlated / anticorrelated) sit from the independence
// assumption.
//
// The independence assumption matters for how callers should read the
// numbers: correlated attributes shrink the skyline (often dramatically)
// while anticorrelated ones inflate it, but in the regimes this codebase
// targets — service-selection data where QoS attributes trade off mildly —
// H(n, d) behaves as a loose upper-ish bound. The adaptive planner therefore
// uses the *ratio* H(full)/H(sample) to grow measured sample skylines
// (core/cost_model.hpp: skyline_growth_factor), never the absolute value;
// the ratio is far less sensitive to the assumption than the level is.
#pragma once

#include <cstddef>

namespace mrsky::skyline {

/// Exact expected skyline size for independent continuous attributes, via
/// the harmonic recurrence
///
///   H(n, 1) = 1 for n >= 1,   H(0, d) = 0,
///   H(n, d) = H(n-1, d) + H(n, d-1) / n,
///
/// i.e. point n is a d-dimensional record iff it is a (d-1)-dimensional
/// record among the points tied for last place in the remaining dimension —
/// probability H(n, d-1)/n under independence. O(n·d) time, O(n) space
/// (one level of the recurrence kept in place). Requires d >= 1.
[[nodiscard]] double expected_skyline_size(std::size_t n, std::size_t dim);

/// Closed-form approximation (ln n)^(d-1) / (d-1)! — cheap, asymptotic.
[[nodiscard]] double approx_skyline_size(std::size_t n, std::size_t dim);

}  // namespace mrsky::skyline
