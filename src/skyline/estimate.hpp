// Skyline cardinality estimation.
//
// For n points with independent, continuously-distributed attributes the
// expected skyline size is the number of d-dimensional Pareto records:
//
//   E[|SKY|] = H(n, d) ≈ (ln n)^(d-1) / (d-1)!      (Bentley et al. 1978;
//                                                    exact via recurrence)
//
// The paper's complexity worry (§I: "exponential growth of the skyline
// complexity") is exactly this quantity's growth in d. The planner uses it
// to predict merge-stage input sizes; the distribution ablation shows how
// far real workloads (correlated / anticorrelated) sit from the independence
// assumption.
#pragma once

#include <cstddef>

namespace mrsky::skyline {

/// Exact expected skyline size for independent continuous attributes, via
/// the harmonic recurrence H(n, 1) = 1? No — H(n, 1) = 1 for any n, and
/// H(n, d) = H(n-1, d) + H(n-1, d-1)/n with H(0, d) = 0. O(n·d) time,
/// O(d) space. Requires d >= 1.
[[nodiscard]] double expected_skyline_size(std::size_t n, std::size_t dim);

/// Closed-form approximation (ln n)^(d-1) / (d-1)! — cheap, asymptotic.
[[nodiscard]] double approx_skyline_size(std::size_t n, std::size_t dim);

}  // namespace mrsky::skyline
