// Skyline extensions beyond the plain operator.
//
// The paper's related work motivates three natural generalisations, all used
// in QoS-based service selection:
//  * k-skyband (Papadias et al., SIGMOD'03) — points dominated by fewer than
//    k others; the skyline is the 1-skyband. Gives "near-optimal" fallbacks
//    when skyline services are saturated (paper §I's QoS-degradation worry).
//  * representative skyline (Lin et al., ICDE'07 [23]) — the k skyline
//    points that together dominate the most of the dataset; what a portal
//    actually shows when the full skyline is too large.
//  * weighted top-k selection (Alrifai et al., WWW'10 [8]) — rank skyline
//    members by a user's attribute weights; the classic final step of a
//    service-selection pipeline.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/dataset/point_set.hpp"
#include "src/skyline/dominance.hpp"

namespace mrsky::skyline {

/// Points dominated by fewer than `k` others (k >= 1; k = 1 is the skyline).
/// O(n²) pairwise; counts each dominance test in `stats` if provided.
[[nodiscard]] data::PointSet k_skyband(const data::PointSet& ps, std::size_t k,
                                       SkylineStats* stats = nullptr);

struct RepresentativeResult {
  data::PointSet representatives{1};       ///< at most k skyline points
  std::vector<std::size_t> coverage;       ///< points newly dominated by each pick
  std::size_t total_covered = 0;           ///< dataset points dominated by the picks
};

/// Greedy max-coverage representative skyline: repeatedly picks the skyline
/// point that dominates the most not-yet-covered dataset points (the
/// standard (1−1/e)-approximation of Lin et al.'s max-dominance objective).
/// Returns fewer than k points when the skyline is smaller than k.
[[nodiscard]] RepresentativeResult representative_skyline(const data::PointSet& ps,
                                                          std::size_t k);

struct ScoredPoint {
  data::PointId id = 0;
  double score = 0.0;
};

/// Ranks the skyline of `ps` by the weighted sum of (minimisation-oriented)
/// attributes — smaller score is better — and returns the best `k` entries,
/// ties broken by id. `weights` must be non-negative, one per attribute.
[[nodiscard]] std::vector<ScoredPoint> top_k_weighted(const data::PointSet& ps,
                                                      std::span<const double> weights,
                                                      std::size_t k);

/// ε-Pareto cover (Papadimitriou & Yannakakis 2000): a subset S of the
/// skyline such that every dataset point p has some s in S with
/// s_a <= (1+epsilon) * p_a in every attribute. Users tolerant of an ε
/// relative slack get a much shorter list with a per-attribute guarantee.
/// Greedy construction over the skyline in ascending coordinate-sum order;
/// requires non-negative coordinates and epsilon >= 0 (epsilon = 0
/// collapses only exact duplicates).
[[nodiscard]] data::PointSet epsilon_pareto_cover(const data::PointSet& ps, double epsilon);

}  // namespace mrsky::skyline
