#include "src/skyline/bnl_bounded.hpp"

#include <algorithm>
#include <numeric>

#include "src/common/error.hpp"

namespace mrsky::skyline {

// Pass structure (Börzsönyi et al. §3.1, with a conservative confirmation
// rule): each pass scans the remaining input with an empty window.
//  * dominated input dies; input that dominates window entries evicts them;
//  * incomparable input enters the window, or spills when the window is full;
//  * at end of pass, a surviving window entry is CONFIRMED skyline iff it was
//    inserted before the pass's first spill (it has then been compared
//    against every surviving tuple); later insertions are re-queued.
// Confirmed points need no further comparisons: every tuple that survives
// into a later pass was compared against them while they sat in the window.
// The original paper refines re-queue order with timestamps to confirm
// mid-pass; the conservative rule trades at most extra passes for the same
// output, and the report exposes the pass count so the trade is observable.
data::PointSet bnl_skyline_bounded(const data::PointSet& ps, std::size_t window_capacity,
                                   BoundedBnlReport* report) {
  MRSKY_REQUIRE(window_capacity >= 1, "window must hold at least one point");
  BoundedBnlReport local;
  BoundedBnlReport& rep = report != nullptr ? *report : local;
  rep.stats.points_in += ps.size();

  struct WindowEntry {
    std::size_t idx;
    bool pre_spill;  ///< inserted before this pass's first spill
  };

  std::vector<std::size_t> input(ps.size());
  std::iota(input.begin(), input.end(), std::size_t{0});
  std::vector<std::size_t> confirmed;

  while (!input.empty()) {
    ++rep.passes;
    std::vector<WindowEntry> window;
    window.reserve(window_capacity);
    std::vector<std::size_t> overflow;
    bool spilled = false;

    for (std::size_t idx : input) {
      const auto p = ps.point(idx);
      bool dominated = false;
      std::size_t keep = 0;
      for (std::size_t w = 0; w < window.size(); ++w) {
        ++rep.stats.dominance_tests;
        const DomRelation rel = compare(p, ps.point(window[w].idx));
        if (rel == DomRelation::kDominatedBy) {
          dominated = true;
          for (std::size_t r = w; r < window.size(); ++r) window[keep++] = window[r];
          break;
        }
        if (rel != DomRelation::kDominates) window[keep++] = window[w];
      }
      window.resize(keep);
      if (dominated) continue;
      if (window.size() < window_capacity) {
        window.push_back({idx, !spilled});
      } else {
        overflow.push_back(idx);
        spilled = true;
        ++rep.overflow_points;
      }
    }

    std::vector<std::size_t> next_input = std::move(overflow);
    for (const WindowEntry& w : window) {
      if (w.pre_spill || next_input.empty()) {
        confirmed.push_back(w.idx);
      } else {
        next_input.push_back(w.idx);
      }
    }
    input = std::move(next_input);
  }

  std::sort(confirmed.begin(), confirmed.end());
  rep.stats.points_out += confirmed.size();
  return ps.select(confirmed);
}

}  // namespace mrsky::skyline
