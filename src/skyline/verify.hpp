// Skyline verification — used by tests (ground-truth checks) and available
// to library users as a debugging aid.
#pragma once

#include <string>

#include "src/dataset/point_set.hpp"

namespace mrsky::skyline {

struct VerifyResult {
  bool ok = true;
  std::string message;  ///< first violation found, empty when ok
};

/// Checks that `candidate` is exactly the skyline of `dataset`:
///  1. every candidate point appears in the dataset (matched by id and
///     coordinates),
///  2. no candidate point is dominated by any dataset point,
///  3. every dataset point absent from the candidate is dominated by some
///     dataset point.
[[nodiscard]] VerifyResult verify_skyline(const data::PointSet& dataset,
                                          const data::PointSet& candidate);

/// True iff the two sets contain the same point ids (any order).
[[nodiscard]] bool same_ids(const data::PointSet& a, const data::PointSet& b);

}  // namespace mrsky::skyline
