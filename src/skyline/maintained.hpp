// Exact skyline maintenance under insertions AND deletions (ISSUE 9).
//
// IncrementalSkyline (incremental.hpp) keeps only the skyline itself, which
// is why its header rules deletions out of scope: removing a skyline member
// can resurrect points it was hiding, and the skyline alone cannot say which.
// This class keeps the bookkeeping that makes deletion exact without a full
// recompute — the streaming-skyline literature's "exclusive dominance set"
// idea (Lin et al., "Stabbing the sky", ICDE'05; Tao & Papadias' sliding-
// window maintenance):
//
//  * every live point is either a skyline member or is parked under exactly
//    ONE skyline member that dominates it (its GUARD);
//  * deleting a non-skyline point detaches it from its guard — O(1), the
//    skyline is untouched;
//  * deleting a skyline member re-examines exactly its own dominee list: each
//    dominee either finds another current skyline dominator (re-parked), is
//    dominated by a sibling candidate (parked under it once that sibling is
//    promoted), or joins the skyline itself. Points parked under OTHER guards
//    need no attention — their guard still dominates them.
//
// The guard choice (first dominator in scan order) does not affect which
// points are on the skyline — only how deletion work is distributed — and the
// scan order is deterministic, so fixed operation sequences give fixed
// counters and byte-identical skylines on every build.
//
// Counter policy: stats().dominance_tests counts every pairwise dominates()
// evaluation (scalar semantics, deterministic for a fixed operation
// sequence); promotions() counts dominees that re-entered the skyline when
// their guard was deleted.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/dataset/point_set.hpp"
#include "src/skyline/dominance.hpp"

namespace mrsky::skyline {

class MaintainedSkyline {
 public:
  /// Empty structure over `dim`-dimensional points (dim >= 1).
  explicit MaintainedSkyline(std::size_t dim);

  /// Bulk load: inserts every point of `ps` in order. Duplicate ids are
  /// rejected (the structure is keyed by id).
  explicit MaintainedSkyline(const data::PointSet& ps);

  /// Offers a live point under `id` (must not be live already). Returns true
  /// iff it enters the skyline; skyline members it dominates are demoted
  /// under it, together with their dominee lists (dominance is transitive).
  bool insert(std::span<const double> coords, data::PointId id);

  struct EraseResult {
    bool erased = false;       ///< id was live (false: nothing happened)
    bool was_skyline = false;  ///< it was a skyline member
    /// Ids promoted into the skyline by this erase, ascending. Only a
    /// skyline-member erase can promote; a dominee that was promoted and then
    /// immediately demoted by a dominating sibling candidate is not listed.
    std::vector<data::PointId> promoted;
  };

  /// Removes the live point `id`, promoting exactly the points it exclusively
  /// dominated that no remaining point dominates. Unknown ids are a no-op
  /// (erased=false) — the caller decides whether that is an error.
  EraseResult erase(data::PointId id);

  [[nodiscard]] bool contains(data::PointId id) const { return index_.count(id) != 0; }
  /// True iff `id` is live and currently a skyline member.
  [[nodiscard]] bool on_skyline(data::PointId id) const;

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t size() const noexcept { return index_.size(); }
  [[nodiscard]] std::size_t skyline_size() const noexcept { return skyline_slots_.size(); }

  /// Canonical (ascending-id) copy of the current skyline.
  [[nodiscard]] data::PointSet skyline_points() const;
  /// Canonical (ascending-id) copy of the whole live set.
  [[nodiscard]] data::PointSet live_points() const;
  /// Ascending ids of the current skyline.
  [[nodiscard]] std::vector<data::PointId> skyline_ids() const;

  [[nodiscard]] const SkylineStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t promotions() const noexcept { return promotions_; }

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  struct Node {
    data::PointId id = 0;
    std::uint32_t guard = kNoSlot;  ///< skyline slot guarding us (kNoSlot = on skyline)
    std::uint32_t guard_pos = 0;    ///< our index in the guard's dominee list
    bool skyline = false;
  };

  [[nodiscard]] std::span<const double> coords(std::uint32_t slot) const noexcept {
    return {coords_.data() + static_cast<std::size_t>(slot) * dim_, dim_};
  }

  std::uint32_t alloc_slot(std::span<const double> c, data::PointId id);
  void release_slot(std::uint32_t slot);
  /// Parks `slot` in `guard`'s dominee list.
  void attach(std::uint32_t slot, std::uint32_t guard);
  /// Removes `slot` from its guard's dominee list (swap-remove, O(1)).
  void detach(std::uint32_t slot);
  /// Runs the insertion logic on an existing slot: park it under the first
  /// skyline dominator, or make it a skyline member, demoting (and absorbing
  /// the dominee lists of) every member it dominates. Returns true iff the
  /// slot ended on the skyline.
  bool raise(std::uint32_t slot);

  std::size_t dim_;
  std::vector<double> coords_;                      ///< slot-major coordinates
  std::vector<Node> nodes_;                         ///< one per slot
  std::vector<std::vector<std::uint32_t>> dominees_;  ///< per-slot exclusive dominees
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::uint32_t> skyline_slots_;  ///< deterministic scan order
  std::unordered_map<data::PointId, std::uint32_t> index_;
  SkylineStats stats_;
  std::uint64_t promotions_ = 0;
};

}  // namespace mrsky::skyline
