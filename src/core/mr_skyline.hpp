// MapReduce skyline query processing — the paper's Algorithm 1, generalised
// over the three partitioning schemes of §III (plus this library's extras).
//
// The driver runs the paper's two Hadoop jobs on the mrsky::mr engine:
//
//   Job 1 "partition+local-skyline":
//     map     — transform the point (hyperspherical for MR-Angle), assign its
//               partition, emit (partition, point)            [Alg. 1, l.2-6]
//     combine — optional map-side BNL per partition fragment (off by default;
//               Algorithm 1 has no combiner — see MRSkylineConfig)
//     reduce  — BNL computing each partition's local skyline  [Alg. 1, l.7-10]
//               MR-Grid's prunable partitions are skipped here (§III-B).
//   Job 2 "merge":
//     map     — re-key every local-skyline point to the null key [l.12-14]
//     reduce  — one global BNL merge                             [l.15]
//
// All dominance tests are charged to the engine's work counters, so the
// cluster simulator (mr::simulate_pipeline) can turn one in-process run into
// simulated Map/Reduce times for any server count.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/dataset/point_set.hpp"
#include "src/dataset/source.hpp"
#include "src/mapreduce/cluster.hpp"
#include "src/mapreduce/job.hpp"
#include "src/partition/factory.hpp"
#include "src/partition/stats.hpp"
#include "src/skyline/algorithms.hpp"

namespace mrsky::core {

struct MRSkylineConfig {
  part::Scheme scheme = part::Scheme::kAngular;

  /// Cluster size the job is sized for. Defaults below derive from it.
  std::size_t servers = 8;

  /// Number of data-space partitions; 0 means the paper's 2 × servers.
  std::size_t num_partitions = 0;

  /// Number of input splits; 0 means servers × 2 (one per default map slot).
  std::size_t num_map_tasks = 0;

  /// Local/global skyline algorithm (the paper uses BNL everywhere).
  skyline::Algorithm local_algorithm = skyline::Algorithm::kBnl;

  /// Optional override for the local/merge skyline kernel. When set it
  /// replaces `local_algorithm` entirely; the function must return the exact
  /// skyline of its input and accumulate its dominance tests into the stats
  /// (pass-through to the cluster cost model). This is the hook for plugging
  /// index-based kernels (e.g. spatial::bbs_skyline) into the pipeline
  /// without coupling the core to them.
  std::function<data::PointSet(const data::PointSet&, skyline::SkylineStats*)>
      local_skyline_override;

  /// Map-side combining (partial local skylines inside each map task).
  /// Off by default: the paper's Algorithm 1 computes local skylines only in
  /// the reduce stage. Enabling it is this library's extension (see the
  /// ablation bench) — it cuts shuffle volume and reduce work substantially.
  bool use_combiner = false;

  /// Honour MR-Grid's inter-cell dominance pruning (§III-B).
  bool apply_grid_pruning = true;

  /// Out-of-core runs only: before the map stage reads a block, drop it
  /// whole when its min corner is strictly dominated in every attribute by
  /// some point of the fit sample's skyline. Every point in such a block is
  /// dominated by a real dataset point, so the final skyline is bitwise
  /// identical with or without the skip — only `bytes_read` changes. The
  /// pruned volume is reported on the job-1 metrics (`blocks_pruned`,
  /// `bytes_pruned`). Ignored by the in-memory PointSet overload, whose
  /// virtual blocks carry no corners.
  bool block_prune = true;

  /// MR-Dim only: attribute carrying the slabs.
  std::size_t split_dim = 0;

  /// Merge topology. 0 (the paper's Algorithm 1): one job funnels every
  /// local-skyline point to a single reducer. >= 2: tree merge — repeated
  /// jobs combine `merge_fan_in` partitions per reducer until one group
  /// remains, trading extra job startups for parallel merge rounds. This is
  /// the library's answer to the Fig. 6 single-reducer bottleneck (the
  /// paper's Twister/iterative-MapReduce remark, §II).
  std::size_t merge_fan_in = 0;

  /// Engine execution (sequential by default; results identical either way).
  /// Under kThreads the pipeline creates one persistent worker pool and
  /// reuses it across job 1 and every merge round; set run_options.pool to
  /// share a caller-owned pool across many run_mr_skyline calls instead.
  mr::RunOptions run_options;

  /// Skew cure (extension): split any partition whose population exceeds
  /// `salt_target_factor` × N/Np into that many hash-salted sub-partitions,
  /// each its own local-skyline reduce task. Standard MapReduce salting: it
  /// bounds the largest reduce task at the cost of a larger merge input
  /// (sub-skylines of one cone overlap). Fixes MR-Angle's dense-sector
  /// imbalance on direction-clumped data; quantified in bench/ablation_salting.
  bool salt_oversized_partitions = false;
  double salt_target_factor = 2.0;

  /// Fit the partitioner on a uniform sample of this many points instead of
  /// the full dataset (0 = fit on everything, the paper's behaviour). The
  /// master-side planning step then scales independently of N; assignment
  /// stays total, so the result is still the exact skyline — only partition
  /// boundaries (and thus load balance) shift slightly.
  std::size_t fit_sample_size = 0;

  /// Seed for the fitting sample (only used when fit_sample_size > 0).
  std::uint64_t fit_sample_seed = 0x5a3e;

  /// Prepared-partition hook (service::QueryEngine's fit amortisation): when
  /// set, run_mr_skyline skips partitioner construction and fitting entirely
  /// and routes every point through this already-fitted object instead. The
  /// caller keeps ownership and must keep it alive (and fitted) for the whole
  /// run; `scheme`, `num_partitions`, `split_dim` and the fit_sample_* knobs
  /// are ignored. assign() must be pure and thread-safe, which the
  /// part::Partitioner contract already guarantees after fit(). Assignment is
  /// total for every scheme, so reusing a fit across queries — even one
  /// fitted before later insertions — still yields the exact skyline; only
  /// load balance (and MR-Grid's pruning opportunities, recomputed per fit)
  /// can degrade.
  const part::Partitioner* prepared_partitioner = nullptr;

  [[nodiscard]] std::size_t effective_partitions() const noexcept {
    return num_partitions == 0 ? 2 * servers : num_partitions;
  }
  [[nodiscard]] std::size_t effective_map_tasks() const noexcept {
    return num_map_tasks == 0 ? 2 * servers : num_map_tasks;
  }

  /// Validates every config-level precondition and returns ALL violations —
  /// one human-readable message per problem, empty when the config is usable.
  /// Unlike the first-failure MRSKY_REQUIRE style this used to be spread
  /// across the pipeline, a caller (CLI flag parsing, the QueryEngine, the
  /// planner's self-check) gets the complete list in one round trip.
  [[nodiscard]] std::vector<std::string> validate() const;

  /// validate() plus the source-compatibility checks: some options only make
  /// sense against a particular kind of DatasetSource (e.g. a shuffle spill
  /// budget against an in-memory source, which by definition already fits in
  /// RAM). Same all-errors contract as validate(); the DatasetSource overload
  /// of run_mr_skyline calls this instead of validate().
  [[nodiscard]] std::vector<std::string> validate_for(const data::DatasetSource& source) const;

  /// Throws mrsky::InvalidArgument listing every validate() error in one
  /// message; no-op on a valid config. Called at the top of run_mr_skyline.
  void validate_or_throw() const;
};

/// Record of a `scheme=auto` planning decision. Attached by run_mr_skyline
/// when it resolves kAuto through core::AdaptivePlanner; `engaged` stays
/// false on static-scheme runs. Carries only plain data (the full candidate
/// table lives on core::AdaptivePlan) so the result stays cheap to copy.
struct PlanDecision {
  bool engaged = false;   ///< true when the adaptive planner picked the config
  bool fallback = false;  ///< planner fell back to the static heuristic
  part::Scheme scheme = part::Scheme::kAngular;  ///< resolved scheme
  std::size_t partitions = 0;
  std::size_t merge_fan_in = 0;
  bool salted = false;
  std::size_t candidates = 0;     ///< plans scored (0 on fallback)
  std::size_t sample_points = 0;  ///< planning sample actually analyzed
  double predicted_seconds = 0.0; ///< chosen plan's predicted in-process wall
  double planning_seconds = 0.0;  ///< cost of planning itself
  std::string rationale;          ///< human-readable decision trail
};

struct MRSkylineResult {
  data::PointSet skyline;                        ///< the global skyline
  std::vector<data::PointSet> local_skylines;    ///< per partition (post Job 1)
  part::PartitionReport partition_report;        ///< sizes / balance / pruning
  mr::JobMetrics partition_job;                  ///< Job 1 metrics
  /// All merge rounds in execution order (size 1 with merge_fan_in = 0,
  /// never empty after a run).
  std::vector<mr::JobMetrics> merge_rounds;
  /// Planner decision trail (engaged only on scheme=auto runs). When engaged,
  /// `wall_seconds` includes `plan.planning_seconds` — the planner is part of
  /// what the caller waited for.
  PlanDecision plan;
  double wall_seconds = 0.0;                     ///< real in-process time

  MRSkylineResult() : skyline(1) {}

  /// Final merge round metrics. This *is* the last element of merge_rounds —
  /// the "always aliases the last element" contract used to be a doc comment
  /// over a separate copy; it is now structural. Requires a completed run
  /// (throws on a default-constructed result).
  [[nodiscard]] const mr::JobMetrics& merge_job() const {
    MRSKY_REQUIRE(!merge_rounds.empty(), "merge_job() requires a completed run");
    return merge_rounds.back();
  }

  /// Simulated phase times of the whole pipeline on a modelled cluster.
  [[nodiscard]] mr::PhaseTimes simulate(const mr::ClusterModel& model) const;

  /// Multi-line human-readable run report (skyline size, partition balance,
  /// per-job work) — what the CLI prints with --verbose.
  [[nodiscard]] std::string summary() const;
};

/// Runs the full two-job pipeline over `input` (minimisation orientation,
/// non-negative coordinates required by MR-Angle's transform). Thin adapter
/// over the DatasetSource pipeline below for callers that already hold the
/// data in memory; new call sites should prefer the DatasetSource overload.
[[nodiscard]] MRSkylineResult run_mr_skyline(const data::PointSet& input,
                                             const MRSkylineConfig& config);

/// Runs the pipeline streaming from a DatasetSource. Map tasks iterate the
/// source block by block instead of over a materialised PointSet, so peak
/// memory is bounded by a handful of blocks regardless of dataset size.
/// Blocks whose min corner is strictly dominated by a sample-skyline point
/// are skipped whole before any row is read (config.block_prune, sound —
/// see MRSkylineConfig); the job-1 metrics report `blocks_pruned`,
/// `bytes_read` and `bytes_pruned`. The skyline is the SAME POINT SET as
/// the in-memory overload computes on the same data, every member bitwise
/// identical (compare canonically, e.g. ordered by id). Result *order*
/// additionally matches whenever both runs use the same partitioning —
/// e.g. a shared config.prepared_partitioner, or fit_sample_size == 0 on a
/// resident source. It can differ otherwise because an out-of-core run must
/// fit the partitioner on a bounded block sample where the in-memory run
/// fits on everything, and partition boundaries steer the merge cascade's
/// emission order (never its membership). Sources with a resident PointSet
/// (data::PointSetSource) short-circuit to the in-memory path.
[[nodiscard]] MRSkylineResult run_mr_skyline(const data::DatasetSource& source,
                                             const MRSkylineConfig& config);

}  // namespace mrsky::core
