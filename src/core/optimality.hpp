// Local skyline optimality — the paper's Eq. (5) quality metric (§VI).
//
//   optimality = (1/N) Σ_i |sky_i ∩ sky_global| / |sky_i|
//
// averaged over the N non-empty partitions: the fraction of each partition's
// local skyline that survives the global merge. High optimality means the
// partitioning wastes little Reduce-stage work on locally-optimal-but-
// globally-dominated points — the quantity MR-Angle is designed to maximise.
#pragma once

#include <span>

#include "src/dataset/point_set.hpp"

namespace mrsky::core {

struct OptimalityReport {
  double mean_optimality = 0.0;    ///< Eq. (5)
  double min_optimality = 0.0;     ///< worst partition
  double max_optimality = 0.0;     ///< best partition
  std::size_t partitions_used = 0; ///< non-empty local skylines averaged over
  std::size_t local_total = 0;     ///< Σ |sky_i| (Reduce-stage merge input)
  std::size_t global_total = 0;    ///< |sky_global|
};

/// Computes Eq. (5) from per-partition local skylines and the global skyline.
/// Empty local skylines (empty or pruned partitions) are excluded from the
/// average, matching the paper's per-partition mean.
[[nodiscard]] OptimalityReport local_skyline_optimality(
    std::span<const data::PointSet> local_skylines, const data::PointSet& global_skyline);

}  // namespace mrsky::core
