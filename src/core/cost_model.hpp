// Calibrated per-work-unit cost model for the adaptive partition planner.
//
// The cluster simulator (mr::ClusterModel) prices *simulated 2012 Hadoop*
// seconds; this model prices *this process's* execution — what a resident
// QueryEngine caller actually waits for. The planner multiplies predicted
// work (dominance tests, partition assignments, shuffled records) by these
// constants to rank candidate plans, so what matters is that the ratios are
// right for the running binary, not that any absolute second is exact:
//
//  * `CostModel::process()` calibrates once per process with a microbenchmark
//    probe (a timed BNL skyline for the dominance-test rate, a timed
//    assign/copy loop for the record rates), because the constants differ by
//    an order of magnitude between -O2 scalar, MRSKY_NATIVE and sanitizer
//    builds;
//  * every observed pipeline run can then refine the dominance-test constant
//    through `observe_run` (EWMA over wall / work), so a long-lived server
//    converges onto its real rate under whatever load surrounds it;
//  * tests and reproducible experiments construct a CostModel from explicit
//    `CostConstants` instead — same arithmetic, no machine dependence.
#pragma once

#include <cstdint>
#include <mutex>

namespace mrsky::core {

/// Per-unit in-process execution costs, all in seconds.
struct CostConstants {
  /// One dominance test inside the BNL/SFS/D&C kernels (the dominant term of
  /// both the local-skyline and the merge phases).
  double seconds_per_dominance_test = 4e-9;
  /// One partition assignment per attribute: the map side's coordinate
  /// transform + sector lookup is O(d) per point for every scheme.
  double seconds_per_assign_dim = 2e-9;
  /// One record crossing the shuffle (PointRec materialisation + bucket
  /// insert), charged per point entering a job.
  double seconds_per_shuffle_record = 1.2e-7;
  /// Fixed in-process overhead per MapReduce round (job setup, task spawn,
  /// output collection) — what keeps deep merge trees from looking free.
  double seconds_per_job = 2e-4;
};

/// Thread-safe holder of CostConstants with probe calibration and EWMA
/// refinement from observed runs. Copyable reads (constants()), serialised
/// writes (observe_run).
class CostModel {
 public:
  /// Library defaults (the values above) — deterministic, no probe.
  CostModel() = default;
  /// Fixed constants — deterministic, no probe (tests, recorded experiments).
  explicit CostModel(const CostConstants& constants) : constants_(constants) {}

  /// A consistent copy of the current constants.
  [[nodiscard]] CostConstants constants() const;

  /// Folds one completed pipeline run into the dominance-test rate:
  /// `wall_seconds` across `work_units` dominance tests and `shuffle_records`
  /// shuffled records. Robust to outliers (the implied rate is clamped to
  /// [1/8x, 8x] of the current one before the EWMA step); runs with too few
  /// work units to carry signal are ignored.
  void observe_run(std::uint64_t work_units, std::uint64_t shuffle_records,
                   double wall_seconds);

  /// Number of observe_run calls that actually updated the model.
  [[nodiscard]] std::uint64_t observations() const;

  /// The process-wide model: probe-calibrated on first use, refined by every
  /// observed `scheme=auto` pipeline run. Ratios reflect this binary (scalar
  /// vs MRSKY_NATIVE vs sanitizer builds differ by ~an order of magnitude).
  [[nodiscard]] static CostModel& process();

  /// Runs the calibration microbenchmark (~1 ms) and returns the measured
  /// constants. Exposed for tests and the `mrsky plan` --calibrate output.
  [[nodiscard]] static CostConstants calibrate_by_probe();

 private:
  mutable std::mutex mutex_;
  CostConstants constants_;
  std::uint64_t observations_ = 0;
};

/// Growth factor of the expected skyline size when a partition measured at
/// `sample_n` points scales to `full_n` points, under the independent-data
/// law (skyline::approx_skyline_size) — an upper-ish bound used to
/// extrapolate sample-measured local-skyline sizes; see estimate.hpp for why
/// the independence assumption is acceptable for *ranking* candidates.
/// Returns 1.0 when either count is < 2; always >= 1 when full_n >= sample_n.
[[nodiscard]] double skyline_growth_factor(std::size_t sample_n, std::size_t full_n,
                                           std::size_t dim);

}  // namespace mrsky::core
