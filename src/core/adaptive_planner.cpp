#include "src/core/adaptive_planner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iomanip>
#include <span>
#include <sstream>
#include <unordered_set>

#include "src/common/rng.hpp"
#include "src/common/thread_pool.hpp"
#include "src/common/timer.hpp"
#include "src/core/planner.hpp"
#include "src/dataset/transforms.hpp"
#include "src/mapreduce/cluster.hpp"
#include "src/partition/factory.hpp"
#include "src/partition/stats.hpp"
#include "src/skyline/algorithms.hpp"

namespace mrsky::core {
namespace {

// Sample-scale measurements for one (scheme, Np), shared by every
// (fan-in, salting) variant priced on top of it.
struct FitAnalysis {
  part::Scheme scheme = part::Scheme::kAngular;
  std::size_t partitions = 0;  ///< requested Np (what the config will say)
  double balance_cv = 0.0;
  double prunable_fraction = 0.0;
  /// Per surviving (non-pruned, non-empty) partition.
  std::vector<std::size_t> part_sample_n;
  std::vector<data::PointSet> part_sample_sky;
};

// One reduce-key's worth of predicted merge input. Salted sub-keys of the
// same partition share the partition's sample skyline.
struct MergeNode {
  const data::PointSet* sample_sky = nullptr;
  double sample_underlying = 0.0;  ///< sample points behind this node
  double full_sky = 0.0;           ///< predicted full-scale skyline records
  double full_underlying = 0.0;    ///< predicted full-scale points
};

double growth(double sample_n, double full_n, std::size_t dim) {
  const auto s = static_cast<std::size_t>(std::llround(std::max(sample_n, 0.0)));
  const auto f = static_cast<std::size_t>(std::llround(std::max(full_n, 0.0)));
  return skyline_growth_factor(s, f, dim);
}

// Union of member sample skylines with id-dedup: salted sub-nodes of one
// partition all point at the same skyline, and double-counting it would
// inflate the merge-output estimate.
data::PointSet dedup_union(const std::vector<const MergeNode*>& members, std::size_t dim) {
  data::PointSet u(dim);
  std::unordered_set<std::uint64_t> seen;
  for (const MergeNode* node : members) {
    const data::PointSet& sky = *node->sample_sky;
    for (std::size_t i = 0; i < sky.size(); ++i) {
      if (seen.insert(sky.id(i)).second) u.push_back(sky.point(i), sky.id(i));
    }
  }
  return u;
}

std::size_t worker_lanes(const MRSkylineConfig& config) {
  if (config.run_options.mode != mr::ExecutionMode::kThreads) return 1;
  if (config.run_options.pool != nullptr) return std::max<std::size_t>(1, config.run_options.pool->size());
  if (config.run_options.num_threads > 0) return config.run_options.num_threads;
  return std::max<std::size_t>(1, common::ThreadPool::default_concurrency());
}

// Returns nullopt for a salted variant in which no partition actually
// splits (every k_p == 1): it would be an exact duplicate of the unsalted
// candidate — same plan, same prediction — and only bloat the table.
std::optional<PlanCandidate> price_candidate(const FitAnalysis& fa, std::size_t merge_fan_in, bool salted,
                              const MRSkylineConfig& base, std::size_t full_n, std::size_t dim,
                              std::size_t sample_n, std::size_t lanes,
                              const CostConstants& c) {
  PlanCandidate cand;
  cand.scheme = fa.scheme;
  cand.partitions = fa.partitions;
  cand.merge_fan_in = merge_fan_in;
  cand.salted = salted;
  cand.balance_cv = fa.balance_cv;
  cand.prunable_fraction = fa.prunable_fraction;

  const auto n = static_cast<double>(full_n);
  const double scale = sample_n > 0 ? n / static_cast<double>(sample_n) : 1.0;

  // Map + job-1 shuffle: every point is assigned (O(d)) and materialised
  // into its reduce bucket, whatever the scheme.
  cand.map_seconds = n * static_cast<double>(dim) * c.seconds_per_assign_dim;
  cand.shuffle_seconds = n * c.seconds_per_shuffle_record;

  // Local-skyline phase: one task per reduce key; salting splits oversized
  // partitions with the same k_p formula run_mr_skyline uses.
  const double salt_target =
      base.salt_target_factor * n / static_cast<double>(std::max<std::size_t>(1, fa.partitions));
  std::vector<double> local_tasks;
  std::vector<MergeNode> nodes;
  bool any_split = false;
  for (std::size_t i = 0; i < fa.part_sample_n.size(); ++i) {
    const double part_sample = static_cast<double>(fa.part_sample_n[i]);
    const double part_full = part_sample * scale;
    const double sky_sample = static_cast<double>(fa.part_sample_sky[i].size());
    std::size_t salt_count = 1;
    if (salted) {
      const auto needed =
          static_cast<std::size_t>(std::ceil(part_full / std::max(salt_target, 1.0)));
      salt_count = std::clamp<std::size_t>(needed, 1, 64);
      any_split = any_split || salt_count > 1;
    }
    const double sub_full = part_full / static_cast<double>(salt_count);
    const double sub_sky =
        std::min(sub_full, sky_sample * growth(part_sample, sub_full, dim));
    for (std::size_t s = 0; s < salt_count; ++s) {
      local_tasks.push_back(sub_full * std::max(sub_sky, 1.0) * c.seconds_per_dominance_test);
      nodes.push_back(MergeNode{&fa.part_sample_sky[i],
                                part_sample / static_cast<double>(salt_count), sub_sky,
                                sub_full});
    }
  }
  if (salted && !any_split) return std::nullopt;
  cand.local_seconds =
      mr::lpt_makespan(local_tasks, lanes) + c.seconds_per_job;

  for (const MergeNode& node : nodes) cand.predicted_merge_input += node.full_sky;

  // Merge cascade, simulated the way run_mr_skyline executes it: rounds of
  // `merge_fan_in` groups (0 = everything into one reducer), each round a
  // job with its own shuffle and fixed overhead. Bucket outputs are the
  // *actual* skylines of the unioned sample skylines, scaled to full size.
  if (!nodes.empty()) {
    std::vector<data::PointSet> round_storage;  // keeps sample skylines alive
    bool first_round = true;
    while (nodes.size() > 1 || first_round) {
      first_round = false;
      const std::size_t fan =
          merge_fan_in < 2 ? nodes.size() : std::min(merge_fan_in, nodes.size());
      std::vector<double> bucket_costs;
      std::vector<MergeNode> next;
      std::vector<data::PointSet> next_storage;
      double round_input = 0.0;
      for (std::size_t start = 0; start < nodes.size(); start += fan) {
        const std::size_t end = std::min(start + fan, nodes.size());
        std::vector<const MergeNode*> members;
        double in_full = 0.0, und_full = 0.0, und_sample = 0.0;
        for (std::size_t i = start; i < end; ++i) {
          members.push_back(&nodes[i]);
          in_full += nodes[i].full_sky;
          und_full += nodes[i].full_underlying;
          und_sample += nodes[i].sample_underlying;
        }
        data::PointSet unioned = dedup_union(members, dim);
        data::PointSet out_sample = skyline::compute_skyline(unioned, skyline::Algorithm::kBnl);
        const double out_full =
            std::min(in_full, static_cast<double>(out_sample.size()) *
                                  growth(und_sample, und_full, dim));
        bucket_costs.push_back(in_full * std::max(out_full, 1.0) *
                               c.seconds_per_dominance_test);
        round_input += in_full;
        next_storage.push_back(std::move(out_sample));
        next.push_back(MergeNode{nullptr, und_sample, out_full, und_full});
      }
      for (std::size_t i = 0; i < next.size(); ++i) next[i].sample_sky = &next_storage[i];
      cand.merge_seconds += mr::lpt_makespan(bucket_costs, lanes) + c.seconds_per_job +
                            round_input * c.seconds_per_shuffle_record;
      round_storage = std::move(next_storage);
      for (std::size_t i = 0; i < next.size(); ++i) next[i].sample_sky = &round_storage[i];
      nodes = std::move(next);
    }
  } else {
    cand.merge_seconds = c.seconds_per_job;  // the always-present merge job
  }
  return cand;
}

MRSkylineConfig resolve(const MRSkylineConfig& base, part::Scheme scheme,
                        std::size_t partitions, std::size_t merge_fan_in, bool salted) {
  MRSkylineConfig resolved = base;
  resolved.scheme = scheme;
  resolved.num_partitions = partitions;
  resolved.merge_fan_in = merge_fan_in;
  resolved.salt_oversized_partitions = salted;
  resolved.prepared_partitioner = nullptr;
  return resolved;
}

AdaptivePlan heuristic_fallback(std::size_t n, std::size_t dim, const MRSkylineConfig& base,
                                const std::string& reason) {
  PlannerInputs inputs;
  inputs.cardinality = std::max<std::size_t>(1, n);
  inputs.dim = std::max<std::size_t>(1, dim);
  inputs.servers = std::max<std::size_t>(1, base.servers);
  const PlannedConfig heur = plan_config(inputs);

  AdaptivePlan plan;
  plan.fallback = true;
  plan.config = resolve(base, heur.config.scheme, heur.config.num_partitions,
                        heur.config.merge_fan_in, heur.config.salt_oversized_partitions);
  plan.config.salt_target_factor = heur.config.salt_target_factor;
  plan.chosen.scheme = plan.config.scheme;
  plan.chosen.partitions = plan.config.effective_partitions();
  plan.chosen.merge_fan_in = plan.config.merge_fan_in;
  plan.chosen.salted = plan.config.salt_oversized_partitions;
  plan.rationale = "auto: " + reason + "; using static heuristic\n" + heur.rationale;
  return plan;
}

std::string format_ms(double seconds) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << seconds * 1e3 << " ms";
  return os.str();
}

}  // namespace

AdaptivePlanner::AdaptivePlanner(AdaptivePlannerOptions options) : options_(std::move(options)) {
  if (options_.schemes.empty()) {
    options_.schemes = {part::Scheme::kDimensional, part::Scheme::kGrid, part::Scheme::kAngular,
                        part::Scheme::kPivot};
  }
  if (options_.partitions_per_server.empty()) options_.partitions_per_server = {1, 2, 4};
  if (options_.merge_fan_ins.empty()) options_.merge_fan_ins = {0, 4};
}

AdaptivePlan AdaptivePlanner::plan(const data::PointSet& input,
                                   const MRSkylineConfig& base) const {
  common::Timer timer;
  const std::size_t n = input.size();
  const std::size_t dim = input.dim();

  if (n < options_.min_points || dim == 0) {
    AdaptivePlan plan = heuristic_fallback(
        n, dim, base,
        "dataset below planning threshold (" + std::to_string(n) + " < " +
            std::to_string(options_.min_points) + " points)");
    plan.planning_seconds = timer.elapsed_seconds();
    return plan;
  }

  // 1. Sample — deterministic, so plans memoised on (version, seed) are
  // reproducible and shareable.
  data::PointSet sample_storage(dim);
  const data::PointSet* sample = &input;
  if (options_.sample_size > 0 && options_.sample_size < n) {
    common::Rng rng(options_.sample_seed);
    sample_storage = data::sample_without_replacement(input, options_.sample_size, rng);
    sample = &sample_storage;
  }
  AdaptivePlan plan = plan_on_sample(*sample, n, dim, base);
  plan.planning_seconds = timer.elapsed_seconds();
  return plan;
}

AdaptivePlan AdaptivePlanner::plan(const data::DatasetSource& source,
                                   const MRSkylineConfig& base) const {
  if (const data::PointSet* resident = source.resident()) return plan(*resident, base);
  common::Timer timer;
  const std::size_t n = source.size();
  const std::size_t dim = source.dim();

  if (n < options_.min_points || dim == 0) {
    AdaptivePlan plan = heuristic_fallback(
        n, dim, base,
        "dataset below planning threshold (" + std::to_string(n) + " < " +
            std::to_string(options_.min_points) + " points)");
    plan.planning_seconds = timer.elapsed_seconds();
    return plan;
  }

  // 1. Sample — block-proportional systematic draw, deterministic in
  // (seed, layout); nothing is materialised.
  const std::size_t target = options_.sample_size > 0 ? std::min(options_.sample_size, n) : n;
  const data::PointSet sample = source.sample(target, options_.sample_seed);
  AdaptivePlan plan = plan_on_sample(sample, n, dim, base);

  // 4. Block-skip preview: discount the map and shuffle phases by the
  // fraction of on-disk bytes the pipeline's pre-shuffle block pruning will
  // drop (same strict-corner test run_mr_skyline applies). Map and shuffle
  // costs are scheme-independent, so the discount is uniform across
  // candidates and the ranking is unchanged — only the absolute predictions
  // tighten.
  if (!plan.fallback && base.block_prune) {
    const data::PointSet sample_sky =
        skyline::compute_skyline(sample, skyline::Algorithm::kBnl);
    std::uint64_t total_bytes = 0;
    std::uint64_t pruned_bytes = 0;
    std::size_t pruned_blocks = 0;
    for (std::size_t b = 0; b < source.block_count(); ++b) {
      const data::BlockStats stats = source.block_stats(b);
      total_bytes += stats.bytes;
      if (!stats.has_corners) continue;
      bool drop = false;
      for (std::size_t s = 0; !drop && s < sample_sky.size(); ++s) {
        const std::span<const double> p = sample_sky.point(s);
        bool dominates = true;
        for (std::size_t a = 0; dominates && a < dim; ++a) {
          dominates = p[a] < stats.min_corner[a];
        }
        drop = dominates;
      }
      if (drop) {
        pruned_bytes += stats.bytes;
        ++pruned_blocks;
      }
    }
    if (total_bytes > 0 && pruned_blocks > 0) {
      const double keep =
          1.0 - static_cast<double>(pruned_bytes) / static_cast<double>(total_bytes);
      for (PlanCandidate& cand : plan.candidates) {
        cand.map_seconds *= keep;
        cand.shuffle_seconds *= keep;
      }
      plan.chosen.map_seconds *= keep;
      plan.chosen.shuffle_seconds *= keep;
      std::ostringstream os;
      os << "\nblock stats: " << pruned_blocks << "/" << source.block_count() << " blocks ("
         << std::fixed << std::setprecision(1)
         << 100.0 * static_cast<double>(pruned_bytes) / static_cast<double>(total_bytes)
         << "% of bytes) prunable before read";
      plan.rationale += os.str();
    }
  }
  plan.planning_seconds = timer.elapsed_seconds();
  return plan;
}

AdaptivePlan AdaptivePlanner::plan_on_sample(const data::PointSet& sample, std::size_t full_n,
                                             std::size_t dim,
                                             const MRSkylineConfig& base) const {
  const std::size_t n = full_n;
  const std::size_t sample_n = sample.size();

  const CostConstants constants =
      options_.constants ? *options_.constants : CostModel::process().constants();
  const std::size_t lanes = worker_lanes(base);

  // 2. Analyze — fit each (scheme, Np) on the sample once and compute the
  // actual per-partition sample skylines; every fan-in/salting variant is
  // priced from the same analysis.
  std::vector<FitAnalysis> analyses;
  std::vector<std::size_t> partition_counts;
  for (const std::size_t per_server : options_.partitions_per_server) {
    const std::size_t np = std::max<std::size_t>(1, per_server * std::max<std::size_t>(1, base.servers));
    if (std::find(partition_counts.begin(), partition_counts.end(), np) ==
        partition_counts.end()) {
      partition_counts.push_back(np);
    }
  }
  for (const part::Scheme scheme : options_.schemes) {
    for (const std::size_t np : partition_counts) {
      // Reject combinations the pipeline itself would reject.
      if (!resolve(base, scheme, np, 0, false).validate().empty()) continue;
      FitAnalysis fa;
      fa.scheme = scheme;
      fa.partitions = np;
      try {
        part::PartitionerOptions popts;
        popts.num_partitions = np;
        popts.split_dim = base.split_dim;
        const part::PartitionerPtr partitioner = part::make_partitioner(scheme, popts);
        partitioner->fit(sample);
        const part::PartitionReport report = part::analyze_partitioning(*partitioner, sample);
        fa.balance_cv = report.balance_cv;
        fa.prunable_fraction =
            sample_n > 0 && base.apply_grid_pruning
                ? static_cast<double>(report.pruned_points) / static_cast<double>(sample_n)
                : 0.0;
        std::vector<data::PointSet> parts = part::split_by_partition(*partitioner, sample);
        std::unordered_set<std::size_t> pruned;
        if (base.apply_grid_pruning) {
          pruned.insert(report.prunable.begin(), report.prunable.end());
        }
        for (std::size_t p = 0; p < parts.size(); ++p) {
          if (parts[p].empty() || pruned.count(p) != 0) continue;
          fa.part_sample_n.push_back(parts[p].size());
          fa.part_sample_sky.push_back(
              skyline::compute_skyline(parts[p], skyline::Algorithm::kBnl));
        }
      } catch (const std::exception&) {
        continue;  // a scheme that cannot fit this sample is not a candidate
      }
      if (fa.part_sample_n.empty()) continue;
      analyses.push_back(std::move(fa));
    }
  }

  if (analyses.empty()) {
    AdaptivePlan plan =
        heuristic_fallback(n, dim, base, "no candidate scheme survived sample analysis");
    plan.sample_points = sample_n;
    return plan;
  }

  // 3. Optimize — price every (scheme, Np, fan-in, salting) candidate and
  // keep them all (cheapest first) for the rationale and `mrsky plan`.
  AdaptivePlan plan;
  plan.sample_points = sample_n;
  for (const FitAnalysis& fa : analyses) {
    for (const std::size_t fan : options_.merge_fan_ins) {
      for (const bool salted : {false, true}) {
        if (salted && !options_.consider_salting) continue;
        if (!resolve(base, fa.scheme, fa.partitions, fan, salted).validate().empty()) continue;
        if (auto cand = price_candidate(fa, fan, salted, base, n, dim, sample_n, lanes, constants)) {
          plan.candidates.push_back(*cand);
        }
      }
    }
  }
  if (plan.candidates.empty()) {
    AdaptivePlan fb = heuristic_fallback(n, dim, base, "no priced candidate validated");
    fb.sample_points = sample_n;
    return fb;
  }
  std::stable_sort(plan.candidates.begin(), plan.candidates.end(),
                   [](const PlanCandidate& a, const PlanCandidate& b) {
                     if (a.total_seconds() != b.total_seconds())
                       return a.total_seconds() < b.total_seconds();
                     if (a.scheme != b.scheme) return static_cast<int>(a.scheme) < static_cast<int>(b.scheme);
                     if (a.partitions != b.partitions) return a.partitions < b.partitions;
                     if (a.merge_fan_in != b.merge_fan_in) return a.merge_fan_in < b.merge_fan_in;
                     return !a.salted && b.salted;
                   });
  plan.chosen = plan.candidates.front();
  plan.config = resolve(base, plan.chosen.scheme, plan.chosen.partitions, plan.chosen.merge_fan_in,
                        plan.chosen.salted);
  plan.config.validate_or_throw();

  std::ostringstream os;
  os << "auto: scored " << plan.candidates.size() << " candidates over " << sample_n
     << " sample points (seed 0x" << std::hex << options_.sample_seed << std::dec << ")\n";
  os << "chosen: scheme=" << part::to_string(plan.chosen.scheme) << " Np=" << plan.chosen.partitions
     << " fan=" << plan.chosen.merge_fan_in << " salt=" << (plan.chosen.salted ? "on" : "off")
     << " — predicted " << format_ms(plan.chosen.total_seconds()) << " (map "
     << format_ms(plan.chosen.map_seconds) << ", shuffle " << format_ms(plan.chosen.shuffle_seconds)
     << ", local " << format_ms(plan.chosen.local_seconds) << ", merge "
     << format_ms(plan.chosen.merge_seconds) << ")\n";
  if (plan.candidates.size() > 1) {
    const PlanCandidate& runner = plan.candidates[1];
    const double delta = plan.chosen.total_seconds() > 0.0
                             ? (runner.total_seconds() / plan.chosen.total_seconds() - 1.0) * 100.0
                             : 0.0;
    os << "runner-up: scheme=" << part::to_string(runner.scheme) << " Np=" << runner.partitions
       << " fan=" << runner.merge_fan_in << " salt=" << (runner.salted ? "on" : "off") << " at +"
       << std::fixed << std::setprecision(1) << delta << "%\n";
  }
  os << "sample balance cv " << std::fixed << std::setprecision(3) << plan.chosen.balance_cv
     << ", prunable " << std::setprecision(1) << plan.chosen.prunable_fraction * 100.0
     << "% of sample, predicted merge input " << std::setprecision(0)
     << plan.chosen.predicted_merge_input << " records";
  plan.rationale = os.str();
  return plan;
}

}  // namespace mrsky::core
