#include "src/core/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/timer.hpp"
#include "src/dataset/generators.hpp"
#include "src/partition/angular.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/estimate.hpp"

namespace mrsky::core {

CostConstants CostModel::constants() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return constants_;
}

void CostModel::observe_run(std::uint64_t work_units, std::uint64_t shuffle_records,
                            double wall_seconds) {
  // Below this the wall is dominated by fixed overheads, not the per-test
  // rate — folding it in would teach the model the overhead, not the rate.
  constexpr std::uint64_t kMinWorkUnits = 10000;
  if (work_units < kMinWorkUnits || wall_seconds <= 0.0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const double overhead =
      static_cast<double>(shuffle_records) * constants_.seconds_per_shuffle_record;
  const double attributable = wall_seconds - overhead;
  if (attributable <= 0.0) return;
  const double implied = attributable / static_cast<double>(work_units);
  const double clamped = std::clamp(implied, constants_.seconds_per_dominance_test / 8.0,
                                    constants_.seconds_per_dominance_test * 8.0);
  constexpr double kAlpha = 0.3;
  constants_.seconds_per_dominance_test =
      (1.0 - kAlpha) * constants_.seconds_per_dominance_test + kAlpha * clamped;
  ++observations_;
}

std::uint64_t CostModel::observations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return observations_;
}

CostModel& CostModel::process() {
  static CostModel model(calibrate_by_probe());
  return model;
}

CostConstants CostModel::calibrate_by_probe() {
  CostConstants measured;  // start from the library defaults

  // Probe workload: small enough to finish in ~a millisecond, large enough
  // that per-call overheads amortise away. Anticorrelated data maximises the
  // dominance-test count per point, which is the rate being measured.
  const data::PointSet probe =
      data::generate(data::Distribution::kAnticorrelated, 1024, 4, 0xCA11B);

  {
    skyline::SkylineStats stats;
    common::Timer timer;
    const data::PointSet sky =
        skyline::compute_skyline(probe, skyline::Algorithm::kBnl, &stats);
    const double seconds = timer.elapsed_seconds();
    if (stats.dominance_tests > 0 && seconds > 0.0 && !sky.empty()) {
      measured.seconds_per_dominance_test =
          seconds / static_cast<double>(stats.dominance_tests);
    }
  }

  {
    part::AngularPartitioner partitioner(8);
    partitioner.fit(probe);
    common::Timer timer;
    std::size_t sink = 0;
    for (std::size_t pass = 0; pass < 4; ++pass) {
      for (std::size_t i = 0; i < probe.size(); ++i) sink += partitioner.assign(probe.point(i));
    }
    const double seconds = timer.elapsed_seconds();
    const double assigns_times_dim = 4.0 * static_cast<double>(probe.size() * probe.dim());
    if (seconds > 0.0 && sink != static_cast<std::size_t>(-1)) {
      measured.seconds_per_assign_dim = seconds / assigns_times_dim;
    }
    // A shuffled record is materialised (id + coords copy) and bucketed —
    // model it as the cost of copying the point a couple of times.
    measured.seconds_per_shuffle_record =
        std::max(measured.seconds_per_assign_dim * static_cast<double>(probe.dim()) * 4.0,
                 1e-8);
  }

  return measured;
}

double skyline_growth_factor(std::size_t sample_n, std::size_t full_n, std::size_t dim) {
  if (sample_n < 2 || full_n < 2 || dim < 1) return 1.0;
  // The closed-form (ln n)^(d-1)/(d-1)! law: cheap (O(d)) where the exact
  // recurrence is O(n·d), and only the *ratio* matters here. Clamped so a
  // shrinking population can never inflate the estimate.
  const double grown = skyline::approx_skyline_size(full_n, dim);
  const double base = skyline::approx_skyline_size(sample_n, dim);
  if (base <= 0.0 || grown <= 0.0) return 1.0;
  return std::max(full_n >= sample_n ? 1.0 : 0.0, grown / base);
}

}  // namespace mrsky::core
