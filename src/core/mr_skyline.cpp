#include "src/core/mr_skyline.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <istream>
#include <memory>
#include <ostream>
#include <span>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "src/common/error.hpp"
#include "src/common/thread_pool.hpp"
#include "src/common/timer.hpp"
#include "src/core/adaptive_planner.hpp"
#include "src/core/cost_model.hpp"
#include "src/dataset/transforms.hpp"

namespace mrsky::core {

namespace {

/// A point travelling through the shuffle: stable id + coordinates.
struct PointRec {
  data::PointId id = 0;
  std::vector<double> coords;
};

/// Feeds a PointSet to the engine record-by-record without materialising a
/// vector<KV> copy of the whole dataset: keys are the stable ids, values are
/// zero-copy spans over the row-major storage.
struct PointSetInput {
  const data::PointSet* ps;

  [[nodiscard]] std::size_t size() const noexcept { return ps->size(); }
  [[nodiscard]] data::PointId key(std::size_t i) const noexcept { return ps->id(i); }
  [[nodiscard]] std::span<const double> value(std::size_t i) const noexcept {
    return ps->point(i);
  }
};

/// Streams a DatasetSource's surviving blocks to the engine under the same
/// record interface as PointSetInput, addressed by a global row index over
/// the survivors. A thread-local cursor keeps exactly one block materialised
/// per worker thread and reloads on block crossings; map splits are
/// contiguous row ranges, so in the common case each block is read once per
/// pass (a retried task re-reads from its split start, which the
/// binary-search fallback handles). The span returned by value() stays valid
/// until the next key()/value() call on the same thread — the engine hands
/// it straight to map_fn, which copies the coordinates into its PointRec,
/// the same single-record lifetime PointSetInput's zero-copy spans rely on.
struct BlockInput {
  const data::DatasetSource* source = nullptr;
  std::vector<std::size_t> blocks;       ///< surviving block ids, ascending
  std::vector<std::size_t> row_offsets;  ///< prefix row counts, blocks.size() + 1
  /// Distinguishes this input from any earlier one that lived at the same
  /// address. Cursors are thread_local and outlive the input, so validity
  /// cannot rest on pointer identity — a later run's input can be allocated
  /// where a destroyed one was, and a cursor trusting the recycled address
  /// would index the new blocks vector with a stale slot.
  const std::uint64_t epoch = next_epoch();

  static std::uint64_t next_epoch() noexcept {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return row_offsets.empty() ? 0 : row_offsets.back();
  }

  struct Cursor {
    std::uint64_t epoch = 0;  ///< owning input's epoch; 0 = empty
    std::size_t slot = 0;     ///< index into blocks
    std::size_t begin = 0;    ///< global row range of the loaded block
    std::size_t end = 0;
    data::PointSet rows{1};
  };

  Cursor& cursor_for(std::size_t i) const {
    thread_local Cursor cur;
    if (cur.epoch != epoch || i < cur.begin || i >= cur.end) load(cur, i);
    return cur;
  }

  void load(Cursor& cur, std::size_t i) const {
    const bool same_input = cur.epoch == epoch;
    std::size_t slot = 0;
    if (same_input && cur.slot + 1 < blocks.size() &&
        i >= row_offsets[cur.slot + 1] && i < row_offsets[cur.slot + 2]) {
      slot = cur.slot + 1;  // sequential fast path: the next block over
    } else {
      slot = static_cast<std::size_t>(std::upper_bound(row_offsets.begin(), row_offsets.end(),
                                                       i) -
                                      row_offsets.begin()) -
             1;
    }
    // Releasing is a paging hint: dropping the previous block's pages keeps
    // resident memory at ~one block per worker. Only touch blocks we loaded
    // through this input — a stale cursor from an earlier run must not poke
    // a source it no longer knows to be alive.
    if (same_input) source->release_block(blocks[cur.slot]);
    cur.epoch = epoch;
    cur.slot = slot;
    cur.begin = row_offsets[slot];
    cur.end = row_offsets[slot + 1];
    if (cur.rows.dim() != source->dim()) cur.rows = data::PointSet(source->dim());
    cur.rows.clear();
    source->read_block(blocks[slot], cur.rows);
  }

  [[nodiscard]] data::PointId key(std::size_t i) const {
    Cursor& cur = cursor_for(i);
    return cur.rows.id(i - cur.begin);
  }
  [[nodiscard]] std::span<const double> value(std::size_t i) const {
    Cursor& cur = cursor_for(i);
    return cur.rows.point(i - cur.begin);
  }
};

/// Fit-sample size for out-of-core runs when the config leaves
/// fit_sample_size at 0 ("fit on everything"): fitting on everything would
/// materialise the dataset, which is the one thing this path must not do.
constexpr std::size_t kOutOfCoreFitSample = 4096;

/// Rebuild a PointSet from shuffled records (shared by combine/reduce/merge).
/// Returns a per-worker-thread scratch buffer reused across reduce groups and
/// merge rounds, so group materialisation stops allocating per group; callers
/// must be done with the previous group's view before asking for the next
/// (every kernel below copies its survivors out via PointSet::select).
data::PointSet& to_point_set(std::size_t dim, const std::vector<PointRec>& recs) {
  thread_local data::PointSet scratch(1);
  if (scratch.dim() != dim) scratch = data::PointSet(dim);
  scratch.clear();
  scratch.reserve(recs.size());
  for (const auto& r : recs) scratch.push_back(r.coords, r.id);
  return scratch;
}

/// Fixed-layout spill codec for the pipeline's intermediate records, used by
/// both job 1 and every merge round (they share the KV<size_t, PointRec>
/// shape): u64 key, u32 id, u64 coordinate count, raw doubles.
void spill_write_rec(std::ostream& os, const mr::KV<std::size_t, PointRec>& kv) {
  const auto key = static_cast<std::uint64_t>(kv.key);
  os.write(reinterpret_cast<const char*>(&key), sizeof(key));
  os.write(reinterpret_cast<const char*>(&kv.value.id), sizeof(kv.value.id));
  const auto count = static_cast<std::uint64_t>(kv.value.coords.size());
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  os.write(reinterpret_cast<const char*>(kv.value.coords.data()),
           static_cast<std::streamsize>(count * sizeof(double)));
}

mr::KV<std::size_t, PointRec> spill_read_rec(std::istream& is) {
  std::uint64_t key = 0;
  is.read(reinterpret_cast<char*>(&key), sizeof(key));
  mr::KV<std::size_t, PointRec> kv;
  kv.key = static_cast<std::size_t>(key);
  is.read(reinterpret_cast<char*>(&kv.value.id), sizeof(kv.value.id));
  std::uint64_t count = 0;
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  kv.value.coords.resize(static_cast<std::size_t>(count));
  is.read(reinterpret_cast<char*>(kv.value.coords.data()),
          static_cast<std::streamsize>(count * sizeof(double)));
  return kv;
}

void throw_if_invalid(const std::vector<std::string>& errors) {
  if (errors.empty()) return;
  std::string message = "invalid MRSkylineConfig (" + std::to_string(errors.size()) +
                        (errors.size() == 1 ? " problem):" : " problems):");
  for (const std::string& e : errors) message += "\n  - " + e;
  throw InvalidArgument(message);
}

/// The shared pipeline body — job 1 (partition + local skyline) and the
/// merge cascade — generic over the input view (PointSetInput streams a
/// resident PointSet, BlockInput streams a DatasetSource's surviving
/// blocks). The caller has already fitted the partitioner, computed the
/// partition report (whose sizes feed salting) and decided the
/// pruned-partition set; `total_points` is the number of rows the map stage
/// will actually stream, which sizes the salting target.
template <typename Input>
void run_pipeline(const Input& input_view, std::size_t total_points, std::size_t dim,
                  const part::Partitioner& part_ref, std::size_t partitions,
                  const std::unordered_set<std::size_t>& pruned,
                  const MRSkylineConfig& config, MRSkylineResult& result) {
  common::TraceRecorder* const trace = config.run_options.trace;

  // One persistent worker pool for the whole pipeline: created once here
  // (only when the caller asked for kThreads without supplying their own)
  // and reused by job 1 and every merge round, instead of paying thread
  // start-up per engine phase.
  mr::RunOptions run_opts = config.run_options;
  std::unique_ptr<common::ThreadPool> pipeline_pool;
  if (run_opts.mode == mr::ExecutionMode::kThreads && run_opts.pool == nullptr) {
    const std::size_t threads = run_opts.num_threads == 0
                                    ? common::ThreadPool::default_concurrency()
                                    : run_opts.num_threads;
    pipeline_pool = std::make_unique<common::ThreadPool>(threads);
    run_opts.pool = pipeline_pool.get();
  }

  // Optional skew cure: hash-salt oversized partitions into sub-keys, one
  // reduce task each (MRSkylineConfig::salt_oversized_partitions). Key space
  // is compacted: partition p owns keys [key_base[p], key_base[p+1]).
  std::vector<std::size_t> salt(partitions, 1);
  if (config.salt_oversized_partitions) {
    const double target = config.salt_target_factor * static_cast<double>(total_points) /
                          static_cast<double>(partitions);
    for (std::size_t p = 0; p < partitions; ++p) {
      const auto needed = static_cast<std::size_t>(
          std::ceil(static_cast<double>(result.partition_report.sizes[p]) /
                    std::max(target, 1.0)));
      salt[p] = std::clamp<std::size_t>(needed, 1, 64);
    }
  }
  std::vector<std::size_t> key_base(partitions + 1, 0);
  for (std::size_t p = 0; p < partitions; ++p) key_base[p + 1] = key_base[p] + salt[p];
  const std::size_t total_keys = key_base.back();
  std::vector<std::size_t> key_to_partition(total_keys);
  for (std::size_t p = 0; p < partitions; ++p) {
    for (std::size_t s = 0; s < salt[p]; ++s) key_to_partition[key_base[p] + s] = p;
  }

  // The skyline kernel both local-skyline and merge stages run.
  auto kernel = [&config](const data::PointSet& points,
                          skyline::SkylineStats* stats) -> data::PointSet {
    if (config.local_skyline_override) return config.local_skyline_override(points, stats);
    return skyline::compute_skyline(points, config.local_algorithm, stats);
  };

  // --- Job 1: partition + local skyline (Algorithm 1, lines 1-10). ---
  using Job1 = mr::JobConfig<data::PointId, std::span<const double>, std::size_t, PointRec,
                             std::size_t, PointRec>;
  Job1 job1;
  job1.name = "partition-local-skyline";
  job1.num_map_tasks = config.effective_map_tasks();
  job1.num_reduce_tasks = total_keys;
  // One reduce task per partition key: the identity routing makes reduce-task
  // metrics per-partition, which the cluster simulator load-balances.
  job1.partition_fn = [](const std::size_t& key, std::size_t buckets) { return key % buckets; };
  job1.value_bytes_fn = [](const PointRec& rec) {
    return sizeof(data::PointId) + rec.coords.size() * sizeof(double);
  };
  job1.spill_codec.write = spill_write_rec;
  job1.spill_codec.read = spill_read_rec;

  job1.map_fn = [&part_ref, &salt, &key_base, dim](
                    const data::PointId& id, const std::span<const double>& coords,
                    mr::Emitter<std::size_t, PointRec>& out, mr::TaskContext& ctx) {
    // Coordinate transform + sector lookup costs O(dim) arithmetic per point
    // for every scheme (Eq. 1 for MR-Angle, range scans for the others).
    ctx.charge_work(dim);
    const std::size_t p = part_ref.assign(coords);
    std::size_t key = key_base[p];
    if (salt[p] > 1) {
      // SplitMix-style avalanche of the stable id: deterministic sub-bucket.
      std::uint64_t h = (static_cast<std::uint64_t>(id) + 1) * 0x9e3779b97f4a7c15ULL;
      h ^= h >> 30;
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 27;
      key += static_cast<std::size_t>(h % salt[p]);
    }
    out.emit(key, PointRec{id, {coords.begin(), coords.end()}});
  };

  // The same local-skyline body serves as combiner and reducer, but each
  // phase reports under its own counter: `skyline.local_points` counts only
  // the reduce-side pass, so it equals the sum of the per-partition local
  // skyline sizes whether or not the combiner is enabled (the combine-side
  // pre-filter shows up as `skyline.combine_points` instead).
  auto make_local_skyline_fn = [&, dim](const char* emitted_counter) {
    return [&, dim, emitted_counter](const std::size_t& key, std::vector<PointRec>& values,
                                     mr::Emitter<std::size_t, PointRec>& out,
                                     mr::TaskContext& ctx) {
      const std::size_t partition_id = key_to_partition[key];
      common::ScopedSpan span(trace, "local-skyline", "skyline");
      span.arg("partition", partition_id);
      span.arg("key", key);
      span.arg("points_in", values.size());
      if (pruned.contains(partition_id)) {
        // §III-B: the whole cell is dominated — skip its local skyline.
        ctx.increment("skyline.points_pruned", values.size());
        span.arg("pruned", 1);
        return;
      }
      skyline::SkylineStats stats;
      const data::PointSet local = kernel(to_point_set(dim, values), &stats);
      ctx.charge_work(stats.dominance_tests);
      ctx.increment(emitted_counter, local.size());
      span.arg("skyline_points", local.size());
      span.arg("dominance_tests", stats.dominance_tests);
      for (std::size_t i = 0; i < local.size(); ++i) {
        out.emit(key, PointRec{local.id(i), {local.point(i).begin(), local.point(i).end()}});
      }
    };
  };
  if (config.use_combiner) job1.combine_fn = make_local_skyline_fn("skyline.combine_points");
  job1.reduce_fn = make_local_skyline_fn("skyline.local_points");

  // Cooperative cancellation polls at pipeline split boundaries: before the
  // partition/local-skyline job and before every merge round. run_job polls
  // again inside each phase, so a stopping pipeline unwinds within one task
  // stride wherever it happens to be.
  run_opts.cancel.throw_if_stopped("partition/local-skyline job");
  auto job1_result = mr::run_job(job1, input_view, run_opts);
  result.partition_job = std::move(job1_result.metrics);

  // Collect per-partition local skylines ("file st" in Algorithm 1).
  result.local_skylines.assign(partitions, data::PointSet(dim));
  for (const auto& kv : job1_result.output) {
    result.local_skylines[key_to_partition[kv.key]].push_back(kv.value.coords, kv.value.id);
  }

  // --- Merge stage (Algorithm 1, lines 11-16). ---
  //
  // Each merge round is a (group, point) -> (group/fan_in, local skyline)
  // MapReduce job. With merge_fan_in == 0 there is exactly one round with a
  // single group — the paper's null-key single-reducer merge. With
  // merge_fan_in >= 2 groups shrink by that factor per round (tree merge).
  using MergeJob =
      mr::JobConfig<std::size_t, PointRec, std::size_t, PointRec, std::size_t, PointRec>;
  const std::size_t fan_in = config.merge_fan_in;

  std::vector<mr::KV<std::size_t, PointRec>> merge_input;
  merge_input.reserve(job1_result.output.size());
  for (auto& kv : job1_result.output) merge_input.push_back(std::move(kv));

  std::size_t groups = total_keys;
  std::size_t round = 0;
  for (;;) {
    ++round;
    run_opts.cancel.throw_if_stopped(
        ("merge round " + std::to_string(round)).c_str());
    const std::size_t next_groups =
        fan_in == 0 ? 1 : (groups + fan_in - 1) / fan_in;
    MergeJob job;
    job.name = "merge-round-" + std::to_string(round);
    job.num_map_tasks = config.effective_map_tasks();
    job.num_reduce_tasks = next_groups;
    job.partition_fn = [](const std::size_t& key, std::size_t buckets) { return key % buckets; };
    job.value_bytes_fn = [](const PointRec& rec) {
      return sizeof(data::PointId) + rec.coords.size() * sizeof(double);
    };
    job.spill_codec.write = spill_write_rec;
    job.spill_codec.read = spill_read_rec;
    job.map_fn = [fan_in](const std::size_t& group, const PointRec& rec,
                          mr::Emitter<std::size_t, PointRec>& out, mr::TaskContext& ctx) {
      ctx.charge_work(1);
      out.emit(fan_in == 0 ? 0 : group / fan_in, rec);  // output(null/group, si)
    };
    job.reduce_fn = [&kernel, dim, trace](const std::size_t& group, std::vector<PointRec>& values,
                                          mr::Emitter<std::size_t, PointRec>& out,
                                          mr::TaskContext& ctx) {
      common::ScopedSpan span(trace, "merge-skyline", "skyline");
      span.arg("group", group);
      span.arg("points_in", values.size());
      skyline::SkylineStats stats;
      const data::PointSet merged =
          kernel(to_point_set(dim, values), &stats);
      ctx.charge_work(stats.dominance_tests);
      ctx.increment("skyline.merged_points", merged.size());
      span.arg("skyline_points", merged.size());
      span.arg("dominance_tests", stats.dominance_tests);
      for (std::size_t i = 0; i < merged.size(); ++i) {
        out.emit(group, PointRec{merged.id(i),
                                 {merged.point(i).begin(), merged.point(i).end()}});
      }
    };

    auto merge_result = mr::run_job(job, merge_input, run_opts);
    result.merge_rounds.push_back(merge_result.metrics);
    groups = next_groups;
    if (groups <= 1) {
      data::PointSet skyline(dim);
      skyline.reserve(merge_result.output.size());
      for (const auto& kv : merge_result.output) {
        skyline.push_back(kv.value.coords, kv.value.id);
      }
      result.skyline = std::move(skyline);
      break;
    }
    merge_input = std::move(merge_result.output);
  }
}

}  // namespace

std::vector<std::string> MRSkylineConfig::validate() const {
  std::vector<std::string> errors;
  if (servers < 1) errors.emplace_back("servers: need at least one server");
  if (merge_fan_in == 1) {
    errors.emplace_back("merge_fan_in: must be 0 (single reducer) or >= 2 (tree merge)");
  }
  if (salt_oversized_partitions && salt_target_factor < 1.0) {
    errors.emplace_back("salt_target_factor: must be >= 1 when salting is enabled");
  }
  if (scheme == part::Scheme::kAngularRadial && servers >= 1 &&
      effective_partitions() % 2 != 0) {
    errors.emplace_back(
        "num_partitions: angular-radial needs an even count (sectors x 2 radius bands)");
  }
  if (run_options.max_task_attempts < 1) {
    errors.emplace_back("run_options.max_task_attempts: need at least one attempt per task");
  }
  if (run_options.task_failure_probability < 0.0 ||
      run_options.task_failure_probability >= 1.0) {
    errors.emplace_back(
        "run_options.task_failure_probability: must be in [0, 1) — at 1 every attempt fails");
  }
  return errors;
}

std::vector<std::string> MRSkylineConfig::validate_for(const data::DatasetSource& source) const {
  std::vector<std::string> errors = validate();
  if (source.resident() != nullptr && run_options.shuffle_spill_bytes > 0) {
    errors.emplace_back(
        "run_options.shuffle_spill_bytes: a spill budget has no effect on an in-memory "
        "source (the dataset already fits in RAM)");
  }
  return errors;
}

void MRSkylineConfig::validate_or_throw() const { throw_if_invalid(validate()); }

std::string MRSkylineResult::summary() const {
  std::ostringstream os;
  os << "MRSkyline run summary\n"
     << "  skyline points:      " << skyline.size() << "\n"
     << "  partitions:          " << local_skylines.size() << " ("
     << partition_report.non_empty << " non-empty, balance CV "
     << partition_report.balance_cv << ")\n"
     << "  pruned partitions:   " << partition_report.prunable.size() << " ("
     << partition_report.pruned_points << " points)\n";
  std::size_t local_total = 0;
  for (const auto& ls : local_skylines) local_total += ls.size();
  os << "  merge input:         " << local_total << " local-skyline points\n"
     << "  job 1 work:          " << partition_job.total_work_units() << " dominance tests, "
     << partition_job.shuffle_records << " shuffled records\n"
     << "  merge rounds:        " << merge_rounds.size() << " (final work "
     << merge_job().total_work_units() << ")\n";
  if (partition_job.blocks_pruned > 0 || partition_job.bytes_read > 0) {
    os << "  block input:         " << partition_job.bytes_read << " bytes read, "
       << partition_job.blocks_pruned << " blocks (" << partition_job.bytes_pruned
       << " bytes) pruned before read\n";
  }
  mr::FailureReport failures = partition_job.failure_report();
  for (const auto& round : merge_rounds) failures += round.failure_report();
  if (!failures.empty()) {
    os << "  fault tolerance:     " << failures.tasks_retried << " tasks retried, "
       << failures.wasted_records << " records + " << failures.wasted_work_units
       << " work units wasted, " << failures.records_skipped << " bad records skipped\n";
  }
  os << "  in-process wall:     " << wall_seconds << " s\n";
  return os.str();
}

mr::PhaseTimes MRSkylineResult::simulate(const mr::ClusterModel& model) const {
  std::vector<mr::JobMetrics> jobs;
  jobs.reserve(1 + merge_rounds.size());
  jobs.push_back(partition_job);
  jobs.insert(jobs.end(), merge_rounds.begin(), merge_rounds.end());
  return mr::simulate_pipeline(jobs, model);
}

MRSkylineResult run_mr_skyline(const data::PointSet& input, const MRSkylineConfig& config) {
  config.validate_or_throw();
  MRSKY_REQUIRE(!input.empty(), "cannot compute the skyline of an empty dataset");

  // scheme=auto: resolve the configuration through the adaptive planner,
  // then run the pipeline with the winner. A prepared partitioner bypasses
  // this — the existing contract is that `scheme` is ignored when the caller
  // hands in a fitted partitioner (the QueryEngine plans before preparing).
  if (config.scheme == part::Scheme::kAuto && config.prepared_partitioner == nullptr) {
    AdaptivePlannerOptions popts;
    popts.sample_seed = config.fit_sample_seed;
    const AdaptivePlanner planner(popts);
    AdaptivePlan plan;
    {
      common::ScopedSpan plan_span(config.run_options.trace, "adaptive-plan", "plan");
      plan = planner.plan(input, config);
      plan_span.arg("scheme", part::to_string(plan.config.scheme));
      plan_span.arg("partitions", plan.config.effective_partitions());
      plan_span.arg("candidates", plan.candidates.size());
      plan_span.arg("fallback", plan.fallback ? 1 : 0);
      plan_span.arg("sample_points", plan.sample_points);
    }
    MRSkylineResult result = run_mr_skyline(input, plan.config);

    // Refine the process-wide cost model with what actually happened before
    // folding the planning time into the reported wall.
    std::uint64_t work = result.partition_job.total_work_units();
    std::uint64_t shuffled = result.partition_job.shuffle_records;
    for (const auto& round : result.merge_rounds) {
      work += round.total_work_units();
      shuffled += round.shuffle_records;
    }
    CostModel::process().observe_run(work, shuffled, result.wall_seconds);

    result.plan.engaged = true;
    result.plan.fallback = plan.fallback;
    result.plan.scheme = plan.config.scheme;
    result.plan.partitions = plan.config.effective_partitions();
    result.plan.merge_fan_in = plan.config.merge_fan_in;
    result.plan.salted = plan.config.salt_oversized_partitions;
    result.plan.candidates = plan.candidates.size();
    result.plan.sample_points = plan.sample_points;
    result.plan.predicted_seconds = plan.fallback ? 0.0 : plan.chosen.total_seconds();
    result.plan.planning_seconds = plan.planning_seconds;
    result.plan.rationale = plan.rationale;
    result.wall_seconds += plan.planning_seconds;
    return result;
  }
  common::Timer wall;
  common::TraceRecorder* const trace = config.run_options.trace;
  common::ScopedSpan pipeline_span(trace, "mr-skyline", "pipeline");
  pipeline_span.arg("scheme", part::to_string(config.scheme));
  pipeline_span.arg("points", input.size());

  // --- Fit the partitioner (the paper's master-side planning step), unless
  // the caller handed in an already-fitted one (prepared_partitioner — the
  // QueryEngine's per-(scheme, partitions, fit-sample) fit memo). ---
  part::PartitionerPtr owned_partitioner;
  const part::Partitioner* partitioner = config.prepared_partitioner;
  if (partitioner == nullptr) {
    part::PartitionerOptions popts;
    popts.num_partitions = config.effective_partitions();
    popts.split_dim = config.split_dim;
    owned_partitioner = part::make_partitioner(config.scheme, popts);
    common::ScopedSpan fit_span(trace, "partition-fit", "plan");
    fit_span.arg("scheme", part::to_string(config.scheme));
    if (config.fit_sample_size > 0 && config.fit_sample_size < input.size()) {
      common::Rng rng(config.fit_sample_seed);
      owned_partitioner->fit(
          data::sample_without_replacement(input, config.fit_sample_size, rng));
      fit_span.arg("fitted_points", config.fit_sample_size);
    } else {
      owned_partitioner->fit(input);
      fit_span.arg("fitted_points", input.size());
    }
    fit_span.arg("partitions", owned_partitioner->num_partitions());
    partitioner = owned_partitioner.get();
  } else if (trace != nullptr) {
    common::ScopedSpan fit_span(trace, "partition-fit", "plan");
    fit_span.arg("prepared", 1);
    fit_span.arg("partitions", partitioner->num_partitions());
  }
  const std::size_t partitions = partitioner->num_partitions();
  const std::size_t dim = input.dim();

  std::unordered_set<std::size_t> pruned;
  if (config.apply_grid_pruning) {
    for (std::size_t p : partitioner->prunable_partitions()) pruned.insert(p);
  }

  MRSkylineResult result;
  result.partition_report = part::analyze_partitioning(*partitioner, input);

  run_pipeline(PointSetInput{&input}, input.size(), dim, *partitioner, partitions, pruned,
               config, result);

  result.wall_seconds = wall.elapsed_seconds();
  return result;
}

MRSkylineResult run_mr_skyline(const data::DatasetSource& source,
                               const MRSkylineConfig& config) {
  throw_if_invalid(config.validate_for(source));
  if (const data::PointSet* resident = source.resident()) {
    // In-memory sources (PointSetSource, CSV already staged by the caller's
    // materialisation) carry no block corners and pay nothing for random
    // access: the classic path is strictly better, and bitwise identical.
    return run_mr_skyline(*resident, config);
  }
  MRSKY_REQUIRE(source.size() > 0, "cannot compute the skyline of an empty dataset");

  // scheme=auto, streamed: the planner samples the source block by block and
  // discounts map/shuffle costs by the predicted block-prune savings.
  if (config.scheme == part::Scheme::kAuto && config.prepared_partitioner == nullptr) {
    AdaptivePlannerOptions popts;
    popts.sample_seed = config.fit_sample_seed;
    const AdaptivePlanner planner(popts);
    AdaptivePlan plan;
    {
      common::ScopedSpan plan_span(config.run_options.trace, "adaptive-plan", "plan");
      plan = planner.plan(source, config);
      plan_span.arg("scheme", part::to_string(plan.config.scheme));
      plan_span.arg("partitions", plan.config.effective_partitions());
      plan_span.arg("candidates", plan.candidates.size());
      plan_span.arg("fallback", plan.fallback ? 1 : 0);
      plan_span.arg("sample_points", plan.sample_points);
    }
    MRSkylineResult result = run_mr_skyline(source, plan.config);

    std::uint64_t work = result.partition_job.total_work_units();
    std::uint64_t shuffled = result.partition_job.shuffle_records;
    for (const auto& round : result.merge_rounds) {
      work += round.total_work_units();
      shuffled += round.shuffle_records;
    }
    CostModel::process().observe_run(work, shuffled, result.wall_seconds);

    result.plan.engaged = true;
    result.plan.fallback = plan.fallback;
    result.plan.scheme = plan.config.scheme;
    result.plan.partitions = plan.config.effective_partitions();
    result.plan.merge_fan_in = plan.config.merge_fan_in;
    result.plan.salted = plan.config.salt_oversized_partitions;
    result.plan.candidates = plan.candidates.size();
    result.plan.sample_points = plan.sample_points;
    result.plan.predicted_seconds = plan.fallback ? 0.0 : plan.chosen.total_seconds();
    result.plan.planning_seconds = plan.planning_seconds;
    result.plan.rationale = plan.rationale;
    result.wall_seconds += plan.planning_seconds;
    return result;
  }

  common::Timer wall;
  common::TraceRecorder* const trace = config.run_options.trace;
  common::ScopedSpan pipeline_span(trace, "mr-skyline", "pipeline");
  pipeline_span.arg("scheme", part::to_string(config.scheme));
  pipeline_span.arg("points", source.size());
  pipeline_span.arg("blocks", source.block_count());

  const std::size_t dim = source.dim();

  // One deterministic sample serves both the partitioner fit and the block
  // pruning filter — drawn block by block, so nothing is materialised. When
  // the config says "fit on everything" (fit_sample_size == 0) we substitute
  // a bounded sample instead: assignment stays total, so the skyline is
  // still exact; only partition boundaries shift.
  const std::size_t sample_target =
      config.fit_sample_size > 0 ? config.fit_sample_size : kOutOfCoreFitSample;
  const data::PointSet fit_sample =
      source.sample(std::min(sample_target, source.size()), config.fit_sample_seed);

  part::PartitionerPtr owned_partitioner;
  const part::Partitioner* partitioner = config.prepared_partitioner;
  if (partitioner == nullptr) {
    part::PartitionerOptions popts;
    popts.num_partitions = config.effective_partitions();
    popts.split_dim = config.split_dim;
    owned_partitioner = part::make_partitioner(config.scheme, popts);
    common::ScopedSpan fit_span(trace, "partition-fit", "plan");
    fit_span.arg("scheme", part::to_string(config.scheme));
    owned_partitioner->fit(fit_sample);
    fit_span.arg("fitted_points", fit_sample.size());
    fit_span.arg("partitions", owned_partitioner->num_partitions());
    partitioner = owned_partitioner.get();
  } else if (trace != nullptr) {
    common::ScopedSpan fit_span(trace, "partition-fit", "plan");
    fit_span.arg("prepared", 1);
    fit_span.arg("partitions", partitioner->num_partitions());
  }
  const std::size_t partitions = partitioner->num_partitions();

  std::unordered_set<std::size_t> pruned;
  if (config.apply_grid_pruning) {
    for (std::size_t p : partitioner->prunable_partitions()) pruned.insert(p);
  }

  MRSkylineResult result;
  result.partition_report = part::analyze_partitioning(*partitioner, source);

  // Pre-shuffle block pruning: a block whose min corner is *strictly*
  // dominated in every attribute by some sample-skyline point contains only
  // dominated rows — the dominator is a real dataset point — so the block
  // can be skipped before a single row is read. Strict-everywhere keeps the
  // test sound with duplicates and points sitting on the corner itself, and
  // dropping non-survivors never reorders the survivors, so the final
  // skyline is bitwise identical to the unpruned run.
  BlockInput stream;
  stream.source = &source;
  stream.row_offsets.push_back(0);
  std::uint64_t blocks_pruned = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_pruned = 0;
  {
    common::ScopedSpan prune_span(trace, "block-prune", "plan");
    data::PointSet sample_sky(dim);
    if (config.block_prune) {
      sample_sky = skyline::compute_skyline(fit_sample, skyline::Algorithm::kBnl);
    }
    for (std::size_t b = 0; b < source.block_count(); ++b) {
      const data::BlockStats stats = source.block_stats(b);
      bool drop = false;
      if (config.block_prune && stats.has_corners) {
        for (std::size_t s = 0; !drop && s < sample_sky.size(); ++s) {
          const std::span<const double> p = sample_sky.point(s);
          bool dominates = true;
          for (std::size_t a = 0; dominates && a < dim; ++a) {
            dominates = p[a] < stats.min_corner[a];
          }
          drop = dominates;
        }
      }
      if (drop) {
        ++blocks_pruned;
        bytes_pruned += stats.bytes;
      } else {
        stream.blocks.push_back(b);
        stream.row_offsets.push_back(stream.row_offsets.back() + stats.rows);
        bytes_read += stats.bytes;
      }
    }
    prune_span.arg("blocks_pruned", blocks_pruned);
    prune_span.arg("bytes_pruned", bytes_pruned);
    prune_span.arg("bytes_read", bytes_read);
  }
  // At least one block always survives: the block holding a sample-skyline
  // point cannot have its min corner strictly dominated by any sample-skyline
  // point (that dominator would have knocked the resident point out).
  MRSKY_ASSERT(!stream.blocks.empty(), "block pruning dropped every block");

  run_pipeline(stream, stream.size(), dim, *partitioner, partitions, pruned, config, result);
  result.partition_job.blocks_pruned = blocks_pruned;
  result.partition_job.bytes_read = bytes_read;
  result.partition_job.bytes_pruned = bytes_pruned;

  result.wall_seconds = wall.elapsed_seconds();
  return result;
}

}  // namespace mrsky::core
