#include "src/core/optimality.hpp"

#include <algorithm>
#include <unordered_set>

namespace mrsky::core {

OptimalityReport local_skyline_optimality(std::span<const data::PointSet> local_skylines,
                                          const data::PointSet& global_skyline) {
  std::unordered_set<data::PointId> global_ids;
  global_ids.reserve(global_skyline.size());
  for (data::PointId id : global_skyline.ids()) global_ids.insert(id);

  OptimalityReport report;
  report.global_total = global_skyline.size();
  double sum = 0.0;
  bool first = true;
  for (const auto& local : local_skylines) {
    if (local.empty()) continue;
    report.local_total += local.size();
    std::size_t surviving = 0;
    for (data::PointId id : local.ids()) {
      if (global_ids.contains(id)) ++surviving;
    }
    const double frac = static_cast<double>(surviving) / static_cast<double>(local.size());
    sum += frac;
    report.partitions_used += 1;
    if (first) {
      report.min_optimality = frac;
      report.max_optimality = frac;
      first = false;
    } else {
      report.min_optimality = std::min(report.min_optimality, frac);
      report.max_optimality = std::max(report.max_optimality, frac);
    }
  }
  if (report.partitions_used > 0) {
    report.mean_optimality = sum / static_cast<double>(report.partitions_used);
  }
  return report;
}

}  // namespace mrsky::core
