// Dominance-ability analysis — the paper's §IV (Theorems 1 and 2).
//
// Setting: the 2-D data space is the square [0, 2L]², divided into 4
// partitions. For MR-Angle the partitions are equal-area sectors from the
// origin; the sector nearest the x-axis is the triangle {(u, v) : 0 ≤ u ≤ 2L,
// 0 ≤ v ≤ u/2}. For MR-Grid the partition nearest the axes is the cell
// [0, L]². For a skyline service s = (x, y) inside its partition, the
// dominance ability D_s is the fraction of the partition's area that s
// dominates:
//
//   Theorem 1:  D_angle(s) = (L² − x²/4 − (2L − x)·y) / L²
//   (grid)  :   D_grid(s)  = (L − x)(L − y) / L²
//   Theorem 2:  ΔD = D_angle − D_grid ≥ x/(2L²) · (L − x/2)   for y ≤ x/2
//
// This module provides the closed forms plus Monte-Carlo estimators used by
// tests and by bench/theorem_dominance to validate them empirically.
#pragma once

#include <cstddef>

#include "src/common/rng.hpp"

namespace mrsky::core::analysis {

/// Closed-form Theorem 1. Requires 0 <= x <= 2L and 0 <= y <= x/2 (the point
/// must lie in the near-x-axis sector); throws otherwise.
[[nodiscard]] double dominance_ability_angle(double x, double y, double L);

/// Closed-form grid dominance ability (proof of Theorem 2). Requires
/// 0 <= x <= L and 0 <= y <= L.
[[nodiscard]] double dominance_ability_grid(double x, double y, double L);

/// Theorem 2's lower bound x/(2L²)·(L − x/2).
[[nodiscard]] double delta_lower_bound(double x, double L);

/// Monte-Carlo estimate of D_angle: fraction of uniform samples of the
/// sector {(u,v): u ∈ [0,2L], v ∈ [0,u/2]} dominated by (x, y).
[[nodiscard]] double monte_carlo_angle(double x, double y, double L, std::size_t samples,
                                       common::Rng& rng);

/// Monte-Carlo estimate of D_grid over the cell [0,L]².
[[nodiscard]] double monte_carlo_grid(double x, double y, double L, std::size_t samples,
                                      common::Rng& rng);

}  // namespace mrsky::core::analysis
