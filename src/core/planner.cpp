#include "src/core/planner.hpp"

#include <sstream>

#include "src/common/error.hpp"
#include "src/skyline/estimate.hpp"

namespace mrsky::core {

PlannedConfig plan_config(const PlannerInputs& inputs) {
  MRSKY_REQUIRE(inputs.cardinality > 0, "planner needs the cardinality");
  MRSKY_REQUIRE(inputs.dim >= 1, "planner needs the dimensionality");
  MRSKY_REQUIRE(inputs.servers >= 1, "planner needs the cluster size");

  PlannedConfig planned;
  std::ostringstream why;

  // Scheme.
  if (inputs.clustered) {
    planned.config.scheme = part::Scheme::kPivot;
    why << "scheme=pivot: clustered workloads balance best under Voronoi cells\n";
  } else {
    planned.config.scheme = part::Scheme::kAngular;
    why << "scheme=angular: fastest and highest Eq.5 optimality in Fig.5/Fig.7\n";
  }

  // Partition count: the paper's rule.
  planned.config.servers = inputs.servers;
  planned.config.num_partitions = 0;  // 2 x servers
  why << "partitions=2x servers (" << 2 * inputs.servers << "): paper SIII-A default\n";

  // Merge topology: expected merge input ~ partitions x per-partition skyline.
  // Use the independence law as an upper-ish estimate of the global skyline
  // and assume locals sum to a small multiple of it.
  const double expected_sky =
      skyline::expected_skyline_size(inputs.cardinality, inputs.dim);
  const double expected_merge_input = 3.0 * expected_sky;
  if (expected_merge_input > 20000.0) {
    planned.config.merge_fan_in = 4;
    why << "merge=tree(fan-in 4): expected merge input ~"
        << static_cast<std::size_t>(expected_merge_input)
        << " points, parallel merge rounds beat the extra job startups\n";
  } else {
    planned.config.merge_fan_in = 0;
    why << "merge=single reducer: expected merge input ~"
        << static_cast<std::size_t>(expected_merge_input)
        << " points, one round is cheapest\n";
  }

  // Salting: direction concentration (and thus partition skew) grows with d.
  if (!inputs.clustered && inputs.dim >= 6) {
    planned.config.salt_oversized_partitions = true;
    why << "salting=on: angular sectors skew at d>=6 (ablation_salting)\n";
  } else {
    why << "salting=off: load skew manageable at this dimensionality\n";
  }

  planned.rationale = why.str();
  // The planner's recommendation must be runnable as-is: route it through the
  // same all-errors validation run_mr_skyline applies, so a heuristic change
  // that produces an inconsistent config fails here, not at query time.
  planned.config.validate_or_throw();
  return planned;
}

}  // namespace mrsky::core
