// Configuration planner — heuristics distilled from this repository's
// experiments, packaged so a caller who only knows (N, d, servers) gets a
// sensible MRSkylineConfig plus the reasoning.
//
// Rules (each traceable to a bench):
//  * scheme: MR-Angle (Fig. 5/7 — fastest and highest optimality on every
//    workload family we measured except heavily clustered data, where
//    pivot cells balance better).
//  * partitions: the paper's 2 × servers; MR-Angle tolerates more
//    (ablation_partition_count) but gains nothing at these sizes.
//  * merge topology: single reducer until the expected merge input is large
//    enough that parallel merge rounds beat their extra job startups
//    (ablation_merge_fanin); the expected skyline size comes from the
//    independent-data law (estimate.hpp), a deliberate upper-ish bound.
//  * salting: on when the expected per-partition load is very uneven —
//    approximated by dimension (direction concentration grows with d;
//    ablation_salting).
#pragma once

#include <string>

#include "src/core/mr_skyline.hpp"

namespace mrsky::core {

struct PlannedConfig {
  MRSkylineConfig config;
  std::string rationale;  ///< one line per decision, human-readable
};

struct PlannerInputs {
  std::size_t cardinality = 0;   ///< N (> 0)
  std::size_t dim = 0;           ///< attributes (>= 1)
  std::size_t servers = 8;       ///< cluster size (>= 1)
  /// Set when the workload is known to form tight clusters (e.g. services
  /// replicated across a few providers): switches the scheme to pivot cells.
  bool clustered = false;
};

/// Produces a recommended pipeline configuration for the given workload.
[[nodiscard]] PlannedConfig plan_config(const PlannerInputs& inputs);

}  // namespace mrsky::core
