#include "src/core/dominance_analysis.hpp"

#include "src/common/error.hpp"

namespace mrsky::core::analysis {

double dominance_ability_angle(double x, double y, double L) {
  MRSKY_REQUIRE(L > 0.0, "L must be positive");
  MRSKY_REQUIRE(x >= 0.0 && x <= 2.0 * L, "x must lie in [0, 2L]");
  MRSKY_REQUIRE(y >= 0.0 && y <= x / 2.0, "point must lie in the near-x-axis sector (y <= x/2)");
  return (L * L - x * x / 4.0 - (2.0 * L - x) * y) / (L * L);
}

double dominance_ability_grid(double x, double y, double L) {
  MRSKY_REQUIRE(L > 0.0, "L must be positive");
  MRSKY_REQUIRE(x >= 0.0 && x <= L && y >= 0.0 && y <= L, "point must lie in the cell [0, L]^2");
  return (L - x) * (L - y) / (L * L);
}

double delta_lower_bound(double x, double L) {
  MRSKY_REQUIRE(L > 0.0, "L must be positive");
  return x / (2.0 * L * L) * (L - x / 2.0);
}

double monte_carlo_angle(double x, double y, double L, std::size_t samples, common::Rng& rng) {
  MRSKY_REQUIRE(L > 0.0, "L must be positive");
  MRSKY_REQUIRE(samples > 0, "need at least one sample");
  // Sample the triangle {(u, v): u in [0, 2L], v in [0, u/2]} uniformly by
  // rejection from the bounding box [0, 2L] x [0, L].
  std::size_t in_sector = 0;
  std::size_t dominated = 0;
  while (in_sector < samples) {
    const double u = rng.uniform(0.0, 2.0 * L);
    const double v = rng.uniform(0.0, L);
    if (v > u / 2.0) continue;
    ++in_sector;
    if (u >= x && v >= y) ++dominated;
  }
  return static_cast<double>(dominated) / static_cast<double>(samples);
}

double monte_carlo_grid(double x, double y, double L, std::size_t samples, common::Rng& rng) {
  MRSKY_REQUIRE(L > 0.0, "L must be positive");
  MRSKY_REQUIRE(samples > 0, "need at least one sample");
  std::size_t dominated = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const double u = rng.uniform(0.0, L);
    const double v = rng.uniform(0.0, L);
    if (u >= x && v >= y) ++dominated;
  }
  return static_cast<double>(dominated) / static_cast<double>(samples);
}

}  // namespace mrsky::core::analysis
