// Adaptive partition planner: sample → analyze → optimize.
//
// The paper's own result (Fig. 5/7) is that the best partitioning scheme
// depends on the data — MR-Angle wins on most families, pivot cells on
// heavily clustered data, MR-Grid occasionally when pruning bites. The
// static heuristics in planner.hpp encode those findings as fixed rules;
// this planner instead *measures* the resident dataset, SATO-style
// (Aji et al., "Effective Spatial Data Partitioning for Scalable Query
// Processing"):
//
//  1. sample  — a deterministic without-replacement sample of the dataset
//     (the same machinery the pipeline's fit-sampling uses);
//  2. analyze — for every candidate (scheme × Np), fit the partitioner on
//     the sample, read balance and prunable mass off
//     part::analyze_partitioning, and compute the *actual* per-partition
//     sample skylines (cheap at sample scale) so the merge-input
//     prediction reflects this data, not a closed form;
//  3. optimize — extrapolate sample measurements to full scale with the
//     independent-data growth law (cost_model.hpp), price the map /
//     shuffle / local-skyline / merge phases of every (scheme × Np ×
//     fan-in × salting) candidate with calibrated per-work-unit costs,
//     and pick the cheapest plan.
//
// Candidate phases are priced the way the pipeline actually executes
// them: per-reduce-key task costs scheduled LPT onto the process's worker
// lanes (mr::lpt_makespan), salting split with the same k_p formula
// run_mr_skyline uses, and merge rounds simulated as the real fan-in
// cascade over the sample skylines. The Ciaccia & Martinenghi trade-off
// (when is a parallel merge round worth its extra job overhead?) falls
// out of seconds_per_job versus the LPT win.
//
// Datasets too small to sample meaningfully fall back to the static
// heuristic (plan_config) — at that scale every plan finishes in
// microseconds and the planner would cost more than it saves.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/cost_model.hpp"
#include "src/core/mr_skyline.hpp"

namespace mrsky::core {

struct AdaptivePlannerOptions {
  /// Planning sample size; the sample is the whole dataset when smaller.
  std::size_t sample_size = 2048;
  /// Seed for the deterministic planning sample. Defaults to the same seed
  /// the pipeline's fit-sampling uses so plan and fit see consistent data.
  std::uint64_t sample_seed = 0x5a3e;
  /// Below this many points the planner skips sampling entirely and returns
  /// the static heuristic (plan_config) — see AdaptivePlan::fallback.
  std::size_t min_points = 512;

  /// Schemes to enumerate; empty means {dimensional, grid, angular, pivot}
  /// (the paper's three plus the clustered-data specialist).
  std::vector<part::Scheme> schemes;
  /// Partition counts to try, as multiples of config.servers; empty means
  /// {1, 2, 4} (the paper's 2× bracketed from both sides).
  std::vector<std::size_t> partitions_per_server;
  /// Merge fan-ins to try; empty means {0, 4} (single reducer vs. tree).
  std::vector<std::size_t> merge_fan_ins;
  /// Also price every candidate with salting enabled.
  bool consider_salting = true;

  /// Cost constants to price with; unset means the process-wide calibrated
  /// model (CostModel::process()). Tests pin explicit constants here.
  std::optional<CostConstants> constants;
};

/// One priced candidate plan. Predicted seconds are in-process estimates —
/// their absolute values are only as good as the calibration, but the
/// *ranking* is what the planner consumes.
struct PlanCandidate {
  part::Scheme scheme = part::Scheme::kAngular;
  std::size_t partitions = 0;
  std::size_t merge_fan_in = 0;  ///< 0 = single-reducer merge
  bool salted = false;

  double balance_cv = 0.0;          ///< sample assignment balance (lower = flatter)
  double prunable_fraction = 0.0;   ///< sample mass inside prunable partitions
  double predicted_merge_input = 0.0;  ///< full-scale records entering the merge

  double map_seconds = 0.0;      ///< partition assignment over the full input
  double shuffle_seconds = 0.0;  ///< record materialisation, all rounds
  double local_seconds = 0.0;    ///< per-key local skylines, LPT over lanes
  double merge_seconds = 0.0;    ///< merge cascade + per-round job overhead

  [[nodiscard]] double total_seconds() const noexcept {
    return map_seconds + shuffle_seconds + local_seconds + merge_seconds;
  }
};

struct AdaptivePlan {
  /// Fully resolved configuration: never scheme=kAuto, always validate()s.
  MRSkylineConfig config;
  /// The winning candidate (meaningful only when !fallback).
  PlanCandidate chosen;
  /// Every scored candidate, cheapest first (empty when fallback).
  std::vector<PlanCandidate> candidates;
  /// True when the static heuristic decided (dataset under min_points, or
  /// no candidate survived enumeration).
  bool fallback = false;
  std::size_t sample_points = 0;   ///< points the planner actually analyzed
  double planning_seconds = 0.0;   ///< wall cost of planning itself
  std::string rationale;           ///< one line per decision, human-readable
};

class AdaptivePlanner {
 public:
  explicit AdaptivePlanner(AdaptivePlannerOptions options = {});

  /// Plans a pipeline configuration for `input`. `base` supplies everything
  /// the planner does not decide (servers, algorithm, run options, fit
  /// sampling, pruning toggle …) and is copied into the result with the
  /// decided fields (scheme, num_partitions, merge_fan_in, salting)
  /// overwritten. `base.scheme` may be kAuto; the result's never is.
  [[nodiscard]] AdaptivePlan plan(const data::PointSet& input,
                                  const MRSkylineConfig& base) const;

  /// Streaming variant: draws the planning sample from the source block by
  /// block (nothing is materialised), plans on it exactly as the PointSet
  /// overload would, then discounts the predicted map/shuffle phases by the
  /// fraction of on-disk bytes the pipeline's pre-shuffle block pruning is
  /// expected to skip (estimated from block min corners against the sample
  /// skyline). The discount is uniform across candidates, so it tightens
  /// the absolute predictions without changing the ranking. Sources with a
  /// resident PointSet delegate to the overload above.
  [[nodiscard]] AdaptivePlan plan(const data::DatasetSource& source,
                                  const MRSkylineConfig& base) const;

  [[nodiscard]] const AdaptivePlannerOptions& options() const noexcept { return options_; }

 private:
  /// Shared analyze + optimize stages over an already-drawn sample standing
  /// in for `full_n` points. Does not set `planning_seconds` — each public
  /// overload stamps its own wall clock (sampling included).
  [[nodiscard]] AdaptivePlan plan_on_sample(const data::PointSet& sample, std::size_t full_n,
                                            std::size_t dim, const MRSkylineConfig& base) const;

  AdaptivePlannerOptions options_;
};

}  // namespace mrsky::core
