// A packed R-tree over a PointSet.
//
// Substrate for index-based skyline computation (BBS, bbs.hpp) — the
// strongest sequential baseline in the literature the paper builds on
// (Papadias et al., SIGMOD'03 [25]). Built once over static data with
// Sort-Tile-Recursive bulk loading (Leutenegger et al., 1997): points are
// sorted by the first coordinate, tiled into vertical slabs, each slab
// sorted by the next coordinate, and so on; leaves pack `capacity` points
// and upper levels pack `capacity` children. STR packing is deterministic
// and yields near-100% node occupancy.
//
// The tree stores indices into the PointSet it was built over; the caller
// must keep that PointSet alive and unchanged.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/dataset/point_set.hpp"

namespace mrsky::spatial {

/// Axis-aligned minimum bounding rectangle.
struct Mbr {
  std::vector<double> lo;
  std::vector<double> hi;

  /// Sum of the lower corner's coordinates — BBS's "mindist" to the origin.
  [[nodiscard]] double mindist() const noexcept;

  /// True iff `point` lies inside (closed bounds).
  [[nodiscard]] bool contains(std::span<const double> point) const noexcept;

  /// True iff `other` lies fully inside this MBR.
  [[nodiscard]] bool covers(const Mbr& other) const noexcept;
};

class RTree {
 public:
  struct Node {
    Mbr mbr;
    bool leaf = false;
    /// Leaf: indices into the source PointSet. Internal: child node ids.
    std::vector<std::size_t> entries;
  };

  /// Bulk-loads the tree over `ps` (kept by reference). capacity >= 2.
  RTree(const data::PointSet& ps, std::size_t capacity = 16);

  [[nodiscard]] const data::PointSet& points() const noexcept { return *ps_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }

  /// Root node id (valid only when !empty()).
  [[nodiscard]] std::size_t root() const noexcept { return root_; }
  [[nodiscard]] const Node& node(std::size_t id) const { return nodes_[id]; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t height() const noexcept { return height_; }

 private:
  /// Packs `items` (point indices) into leaves, then levels of internal
  /// nodes, returning the root id.
  std::size_t build(std::vector<std::size_t> items);
  Mbr mbr_of_points(std::span<const std::size_t> idx) const;
  Mbr mbr_of_nodes(std::span<const std::size_t> ids) const;

  const data::PointSet* ps_;
  std::size_t capacity_;
  std::vector<Node> nodes_;
  std::size_t root_ = 0;
  std::size_t height_ = 0;  ///< number of levels (leaf-only tree = 1)
};

}  // namespace mrsky::spatial
