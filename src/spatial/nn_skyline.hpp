// NN skyline — the nearest-neighbor / divide-and-prune algorithm of
// Kossmann, Ramsak & Rost ("Shooting stars in the sky", VLDB 2002; the
// paper's reference [21]), whose geometry drives the paper's §IV analysis:
// "service s4 is the nearest one to the axes ... the first nearest neighbor
// is part of the skyline. On the other hand, all the points in the dominance
// region of s4 can be pruned from further consideration ... the left regions
// are computed recursively."
//
// Algorithm: keep a to-do list of axis-aligned regions, initially the whole
// space. For a region, find the point inside it minimising the coordinate
// sum (an L1 nearest neighbour to the origin, via best-first R-tree search);
// that point is a skyline point. Its dominance region within the box needs
// no further work; the remainder is covered by d overlapping sub-regions,
// region ∩ {x_k < p_k}. Overlap means a point can be rediscovered (the
// classic d > 2 duplicate problem), so results are deduplicated by row and
// the report counts how much duplicate work occurred.
//
// LIMITATION: even with region deduplication the to-do list can grow
// super-polynomially in the skyline size at dimension >= ~5 — the published
// reason BBS (bbs.hpp) superseded this algorithm. Prefer BBS except at low
// dimension or for didactic comparisons; the benches quantify the gap.
#pragma once

#include "src/dataset/point_set.hpp"
#include "src/skyline/dominance.hpp"
#include "src/spatial/rtree.hpp"

namespace mrsky::spatial {

struct NnSkylineReport {
  std::size_t nn_queries = 0;        ///< nearest-neighbour searches issued
  std::size_t regions_processed = 0; ///< to-do entries expanded
  std::size_t duplicate_hits = 0;    ///< skyline points re-found via overlap
  skyline::SkylineStats stats;
};

/// Computes the skyline of `tree.points()` with the NN partition-and-prune
/// traversal. Output matches the other algorithms (ascending row order).
[[nodiscard]] data::PointSet nn_skyline(const RTree& tree, NnSkylineReport* report = nullptr);

/// Convenience: bulk-load a tree and run.
[[nodiscard]] data::PointSet nn_skyline(const data::PointSet& ps,
                                        NnSkylineReport* report = nullptr);

}  // namespace mrsky::spatial
