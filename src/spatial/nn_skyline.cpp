#include "src/spatial/nn_skyline.hpp"

#include <algorithm>
#include <bit>
#include <deque>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/error.hpp"

namespace mrsky::spatial {

namespace {

/// An upper-open search region {x : x_k < hi[k] for every k}.
using Region = std::vector<double>;

std::uint64_t hash_doubles(const std::vector<double>& values) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (double v : values) {
    const auto bits = std::bit_cast<std::uint64_t>(v);
    h ^= bits;
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool point_in_region(std::span<const double> p, const Region& hi) {
  for (std::size_t k = 0; k < hi.size(); ++k) {
    if (!(p[k] < hi[k])) return false;
  }
  return true;
}

/// Best-first L1 nearest neighbour (to the origin) among the tree's points
/// inside `region`. Returns the row index, or npos when the region is empty.
std::size_t nn_in_region(const RTree& tree, const Region& region, NnSkylineReport& rep) {
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  ++rep.nn_queries;
  const data::PointSet& ps = tree.points();

  struct Entry {
    double mindist;
    std::size_t node;
    bool operator>(const Entry& other) const noexcept {
      if (mindist != other.mindist) return mindist > other.mindist;
      return node > other.node;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.push({tree.node(tree.root()).mbr.mindist(), tree.root()});

  std::size_t best_row = kNone;
  double best_sum = std::numeric_limits<double>::infinity();

  auto node_excluded = [&](const Mbr& mbr) {
    for (std::size_t k = 0; k < region.size(); ++k) {
      if (!(mbr.lo[k] < region[k])) return true;  // every point violates dim k
    }
    return false;
  };

  while (!heap.empty()) {
    const Entry entry = heap.top();
    heap.pop();
    if (entry.mindist >= best_sum) break;  // nothing closer remains
    const RTree::Node& node = tree.node(entry.node);
    if (node_excluded(node.mbr)) continue;
    if (node.leaf) {
      for (std::size_t row : node.entries) {
        const auto p = ps.point(row);
        if (!point_in_region(p, region)) continue;
        double sum = 0.0;
        for (double v : p) sum += v;
        if (sum < best_sum || (sum == best_sum && row < best_row)) {
          best_sum = sum;
          best_row = row;
        }
      }
    } else {
      for (std::size_t child : node.entries) {
        const Mbr& mbr = tree.node(child).mbr;
        if (node_excluded(mbr)) continue;
        const double mindist = mbr.mindist();
        if (mindist < best_sum) heap.push({mindist, child});
      }
    }
  }
  return best_row;
}

}  // namespace

data::PointSet nn_skyline(const RTree& tree, NnSkylineReport* report) {
  NnSkylineReport local;
  NnSkylineReport& rep = report != nullptr ? *report : local;
  const data::PointSet& ps = tree.points();
  rep.stats.points_in += ps.size();
  if (tree.empty()) return data::PointSet(ps.dim());
  const std::size_t dim = ps.dim();

  // Coordinate-duplicate index: the NN recursion's sub-regions use strict
  // upper bounds, so exact duplicates of a found skyline point can never be
  // rediscovered — they are added here instead (duplicates of an undominated
  // point are undominated).
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_coords;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    by_coords[hash_doubles({ps.point(i).begin(), ps.point(i).end()})].push_back(i);
  }

  std::unordered_set<std::size_t> found;
  std::unordered_set<std::uint64_t> seen_regions;
  std::deque<Region> todo;
  todo.push_back(Region(dim, std::numeric_limits<double>::infinity()));
  seen_regions.insert(hash_doubles(todo.back()));

  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  while (!todo.empty()) {
    const Region region = std::move(todo.front());
    todo.pop_front();
    ++rep.regions_processed;

    const std::size_t row = nn_in_region(tree, region, rep);
    if (row == kNone) continue;
    const auto p = ps.point(row);

    if (!found.insert(row).second) {
      ++rep.duplicate_hits;
    } else {
      // Exact duplicates join the skyline alongside the found point.
      const auto& twins = by_coords[hash_doubles({p.begin(), p.end()})];
      for (std::size_t twin : twins) {
        if (std::equal(ps.point(twin).begin(), ps.point(twin).end(), p.begin())) {
          found.insert(twin);
        }
      }
    }

    // Recurse into the d sub-regions region ∩ {x_k < p_k}. They cover
    // everything except p's dominance region within `region` (which the
    // paper's §IV prunes), and each strictly shrinks one bound.
    for (std::size_t k = 0; k < dim; ++k) {
      Region sub = region;
      sub[k] = p[k];
      if (seen_regions.insert(hash_doubles(sub)).second) {
        todo.push_back(std::move(sub));
      }
    }
  }

  std::vector<std::size_t> rows(found.begin(), found.end());
  std::sort(rows.begin(), rows.end());
  rep.stats.points_out += rows.size();
  return ps.select(rows);
}

data::PointSet nn_skyline(const data::PointSet& ps, NnSkylineReport* report) {
  const RTree tree(ps);
  return nn_skyline(tree, report);
}

}  // namespace mrsky::spatial
