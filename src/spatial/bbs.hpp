// BBS — Branch-and-Bound Skyline over an R-tree (Papadias, Tao, Fu & Seeger,
// SIGMOD 2003; the paper's reference [25] and the I/O-optimal sequential
// baseline).
//
// Entries (tree nodes or points) are expanded in ascending "mindist" (sum of
// lower-corner coordinates). Because mindist is a monotone lower bound of
// every point inside an entry, the first time an undominated point pops it
// is guaranteed to be a skyline point, and any entry whose lower corner is
// dominated by a confirmed skyline point can be pruned wholesale — the
// R-tree analogue of MR-Grid's cell pruning (§III-B).
//
// BBS is progressive: skyline points are produced in mindist order, so
// callers can stop early (top-k style). Reported stats make its pruning
// power comparable to the scan-based algorithms in benches.
#pragma once

#include <cstdint>

#include "src/dataset/point_set.hpp"
#include "src/skyline/dominance.hpp"
#include "src/spatial/rtree.hpp"

namespace mrsky::spatial {

struct BbsReport {
  std::size_t nodes_visited = 0;    ///< tree nodes expanded
  std::size_t entries_pruned = 0;   ///< heap entries discarded as dominated
  skyline::SkylineStats stats;      ///< dominance tests / point counts
};

/// Computes the skyline of `tree.points()` using the BBS traversal.
/// `max_results` bounds the output for progressive use (0 = full skyline).
[[nodiscard]] data::PointSet bbs_skyline(const RTree& tree, BbsReport* report = nullptr,
                                         std::size_t max_results = 0);

/// Convenience: bulk-load a tree and run BBS.
[[nodiscard]] data::PointSet bbs_skyline(const data::PointSet& ps, BbsReport* report = nullptr,
                                         std::size_t max_results = 0);

}  // namespace mrsky::spatial
