#include "src/spatial/bbs.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "src/common/error.hpp"

namespace mrsky::spatial {

namespace {

struct HeapEntry {
  double mindist = 0.0;
  bool is_point = false;
  std::size_t id = 0;  ///< node id, or point index when is_point

  bool operator>(const HeapEntry& other) const noexcept {
    if (mindist != other.mindist) return mindist > other.mindist;
    // Points before nodes at equal mindist (confirms skyline points sooner);
    // then by id for determinism.
    if (is_point != other.is_point) return !is_point;
    return id > other.id;
  }
};

}  // namespace

data::PointSet bbs_skyline(const RTree& tree, BbsReport* report, std::size_t max_results) {
  BbsReport local;
  BbsReport& rep = report != nullptr ? *report : local;
  const data::PointSet& ps = tree.points();
  rep.stats.points_in += ps.size();

  std::vector<std::size_t> skyline_rows;  // indices into ps, in pop order
  if (tree.empty()) return data::PointSet(ps.dim());

  // A candidate (point or node lower corner) survives iff no confirmed
  // skyline point dominates it.
  auto dominated_by_skyline = [&](std::span<const double> coords) {
    for (std::size_t s : skyline_rows) {
      ++rep.stats.dominance_tests;
      if (skyline::dominates(ps.point(s), coords)) return true;
    }
    return false;
  };

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  heap.push({tree.node(tree.root()).mbr.mindist(), false, tree.root()});

  while (!heap.empty()) {
    if (max_results != 0 && skyline_rows.size() >= max_results) break;
    const HeapEntry entry = heap.top();
    heap.pop();

    if (entry.is_point) {
      const auto p = ps.point(entry.id);
      if (dominated_by_skyline(p)) {
        ++rep.entries_pruned;
        continue;
      }
      // Mindist order guarantees nothing still in the heap can dominate p.
      skyline_rows.push_back(entry.id);
      continue;
    }

    const RTree::Node& node = tree.node(entry.id);
    if (dominated_by_skyline(node.mbr.lo)) {
      ++rep.entries_pruned;  // the whole subtree is dominated
      continue;
    }
    ++rep.nodes_visited;
    if (node.leaf) {
      for (std::size_t row : node.entries) {
        const auto p = ps.point(row);
        if (dominated_by_skyline(p)) {
          ++rep.entries_pruned;
          continue;
        }
        double mindist = 0.0;
        for (double v : p) mindist += v;
        heap.push({mindist, true, row});
      }
    } else {
      for (std::size_t child : node.entries) {
        const Mbr& mbr = tree.node(child).mbr;
        if (dominated_by_skyline(mbr.lo)) {
          ++rep.entries_pruned;
          continue;
        }
        heap.push({mbr.mindist(), false, child});
      }
    }
  }

  // Canonical order (ascending row) to match the other algorithms' output.
  std::sort(skyline_rows.begin(), skyline_rows.end());
  rep.stats.points_out += skyline_rows.size();
  return ps.select(skyline_rows);
}

data::PointSet bbs_skyline(const data::PointSet& ps, BbsReport* report,
                           std::size_t max_results) {
  const RTree tree(ps);
  return bbs_skyline(tree, report, max_results);
}

}  // namespace mrsky::spatial
