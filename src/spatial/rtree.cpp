#include "src/spatial/rtree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/error.hpp"

namespace mrsky::spatial {

double Mbr::mindist() const noexcept {
  double sum = 0.0;
  for (double v : lo) sum += v;
  return sum;
}

bool Mbr::contains(std::span<const double> point) const noexcept {
  for (std::size_t a = 0; a < lo.size(); ++a) {
    if (point[a] < lo[a] || point[a] > hi[a]) return false;
  }
  return true;
}

bool Mbr::covers(const Mbr& other) const noexcept {
  for (std::size_t a = 0; a < lo.size(); ++a) {
    if (other.lo[a] < lo[a] || other.hi[a] > hi[a]) return false;
  }
  return true;
}

namespace {

/// Recursive Sort-Tile-Recursive leaf packing: returns groups of at most
/// `leaf_cap` point indices, spatially tiled dimension by dimension.
void str_tile(std::vector<std::size_t>& items, std::size_t dim, const data::PointSet& ps,
              std::size_t leaf_cap, std::vector<std::vector<std::size_t>>& leaves) {
  if (items.size() <= leaf_cap) {
    leaves.push_back(items);
    return;
  }
  auto by_dim = [&](std::size_t a, std::size_t b) { return ps.at(a, dim) < ps.at(b, dim); };
  std::sort(items.begin(), items.end(), by_dim);

  if (dim + 1 == ps.dim()) {
    for (std::size_t start = 0; start < items.size(); start += leaf_cap) {
      const std::size_t end = std::min(start + leaf_cap, items.size());
      leaves.emplace_back(items.begin() + static_cast<std::ptrdiff_t>(start),
                          items.begin() + static_cast<std::ptrdiff_t>(end));
    }
    return;
  }

  const auto leaf_count =
      static_cast<double>((items.size() + leaf_cap - 1) / leaf_cap);
  const auto remaining_dims = static_cast<double>(ps.dim() - dim);
  const auto slabs = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(std::pow(leaf_count, 1.0 / remaining_dims))));
  const std::size_t per_slab = (items.size() + slabs - 1) / slabs;
  for (std::size_t start = 0; start < items.size(); start += per_slab) {
    const std::size_t end = std::min(start + per_slab, items.size());
    std::vector<std::size_t> slab(items.begin() + static_cast<std::ptrdiff_t>(start),
                                  items.begin() + static_cast<std::ptrdiff_t>(end));
    str_tile(slab, dim + 1, ps, leaf_cap, leaves);
  }
}

}  // namespace

Mbr RTree::mbr_of_points(std::span<const std::size_t> idx) const {
  Mbr mbr;
  mbr.lo.assign(ps_->dim(), std::numeric_limits<double>::infinity());
  mbr.hi.assign(ps_->dim(), -std::numeric_limits<double>::infinity());
  for (std::size_t i : idx) {
    for (std::size_t a = 0; a < ps_->dim(); ++a) {
      mbr.lo[a] = std::min(mbr.lo[a], ps_->at(i, a));
      mbr.hi[a] = std::max(mbr.hi[a], ps_->at(i, a));
    }
  }
  return mbr;
}

Mbr RTree::mbr_of_nodes(std::span<const std::size_t> ids) const {
  Mbr mbr;
  mbr.lo.assign(ps_->dim(), std::numeric_limits<double>::infinity());
  mbr.hi.assign(ps_->dim(), -std::numeric_limits<double>::infinity());
  for (std::size_t id : ids) {
    for (std::size_t a = 0; a < ps_->dim(); ++a) {
      mbr.lo[a] = std::min(mbr.lo[a], nodes_[id].mbr.lo[a]);
      mbr.hi[a] = std::max(mbr.hi[a], nodes_[id].mbr.hi[a]);
    }
  }
  return mbr;
}

std::size_t RTree::build(std::vector<std::size_t> items) {
  std::vector<std::vector<std::size_t>> leaves;
  str_tile(items, 0, *ps_, capacity_, leaves);

  std::vector<std::size_t> level;
  level.reserve(leaves.size());
  for (auto& leaf_items : leaves) {
    Node node;
    node.leaf = true;
    node.mbr = mbr_of_points(leaf_items);
    node.entries = std::move(leaf_items);
    nodes_.push_back(std::move(node));
    level.push_back(nodes_.size() - 1);
  }
  height_ = 1;

  while (level.size() > 1) {
    std::vector<std::size_t> next;
    for (std::size_t start = 0; start < level.size(); start += capacity_) {
      const std::size_t end = std::min(start + capacity_, level.size());
      Node node;
      node.leaf = false;
      node.entries.assign(level.begin() + static_cast<std::ptrdiff_t>(start),
                          level.begin() + static_cast<std::ptrdiff_t>(end));
      node.mbr = mbr_of_nodes(node.entries);
      nodes_.push_back(std::move(node));
      next.push_back(nodes_.size() - 1);
    }
    level = std::move(next);
    ++height_;
  }
  return level.front();
}

RTree::RTree(const data::PointSet& ps, std::size_t capacity) : ps_(&ps), capacity_(capacity) {
  MRSKY_REQUIRE(capacity >= 2, "R-tree node capacity must be >= 2");
  if (ps.empty()) return;
  std::vector<std::size_t> items(ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) items[i] = i;
  root_ = build(std::move(items));
}

}  // namespace mrsky::spatial
