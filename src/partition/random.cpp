#include "src/partition/random.hpp"

#include <bit>
#include <cstring>

#include "src/common/error.hpp"

namespace mrsky::part {

RandomPartitioner::RandomPartitioner(std::size_t num_partitions, std::uint64_t seed)
    : num_partitions_(num_partitions), seed_(seed) {
  MRSKY_REQUIRE(num_partitions >= 1, "need at least one partition");
}

void RandomPartitioner::fit(const data::PointSet& ps) {
  // Hash partitioning needs no data-dependent state, but the Partitioner
  // contract is uniform: fitting on an empty dataset is a caller bug.
  MRSKY_REQUIRE(!ps.empty(), "cannot fit a partitioner on an empty dataset");
  fitted_ = true;
}

std::size_t RandomPartitioner::assign(std::span<const double> point) const {
  if (!fitted_) MRSKY_FAIL("RandomPartitioner::assign before fit");
  // FNV-1a over the coordinate bytes, salted with the seed: deterministic,
  // stable across runs, and independent of insertion order.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ seed_;
  for (double x : point) {
    const auto bits = std::bit_cast<std::uint64_t>(x);
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (bits >> shift) & 0xffU;
      h *= 0x100000001b3ULL;
    }
  }
  return static_cast<std::size_t>(h % num_partitions_);
}

}  // namespace mrsky::part
