#include "src/partition/grid.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/error.hpp"
#include "src/geometry/grid_shape.hpp"

namespace mrsky::part {

GridPartitioner::GridPartitioner(std::size_t num_partitions) : num_partitions_(num_partitions) {
  MRSKY_REQUIRE(num_partitions >= 1, "need at least one partition");
}

std::vector<std::size_t> GridPartitioner::cell_of(std::span<const double> point) const {
  std::vector<std::size_t> cell(shape_.size());
  for (std::size_t a = 0; a < shape_.size(); ++a) {
    if (width_[a] <= 0.0 || shape_[a] == 1) {
      cell[a] = 0;
      continue;
    }
    const double offset = (point[a] - lo_[a]) / width_[a];
    const auto k = static_cast<std::ptrdiff_t>(std::floor(offset));
    cell[a] = static_cast<std::size_t>(
        std::clamp<std::ptrdiff_t>(k, 0, static_cast<std::ptrdiff_t>(shape_[a]) - 1));
  }
  return cell;
}

void GridPartitioner::fit(const data::PointSet& ps) {
  MRSKY_REQUIRE(!ps.empty(), "cannot fit a partitioner on an empty dataset");
  shape_ = geo::balanced_grid_shape(num_partitions_, ps.dim());
  lo_ = ps.attribute_min();
  const auto hi = ps.attribute_max();
  width_.resize(ps.dim());
  for (std::size_t a = 0; a < ps.dim(); ++a) {
    width_[a] = (hi[a] - lo_[a]) / static_cast<double>(shape_[a]);
  }
  fitted_ = true;

  // Dominance pruning over non-empty cells (paper §III-B). The cell count is
  // the partition count (tens), so the pairwise scan is trivial.
  std::vector<bool> occupied(num_partitions_, false);
  for (std::size_t i = 0; i < ps.size(); ++i) occupied[assign(ps.point(i))] = true;

  std::vector<std::vector<std::size_t>> cells(num_partitions_);
  for (std::size_t p = 0; p < num_partitions_; ++p) cells[p] = geo::unlinear_index(p, shape_);

  prunable_.clear();
  for (std::size_t victim = 0; victim < num_partitions_; ++victim) {
    if (!occupied[victim]) continue;  // empty cells need no pruning
    for (std::size_t killer = 0; killer < num_partitions_; ++killer) {
      if (killer == victim || !occupied[killer]) continue;
      bool strictly_below = true;
      for (std::size_t a = 0; a < shape_.size(); ++a) {
        if (cells[killer][a] + 1 > cells[victim][a]) {
          strictly_below = false;
          break;
        }
      }
      if (strictly_below) {
        prunable_.push_back(victim);
        break;
      }
    }
  }
}

std::size_t GridPartitioner::assign(std::span<const double> point) const {
  if (!fitted_) MRSKY_FAIL("GridPartitioner::assign before fit");
  MRSKY_REQUIRE(point.size() == shape_.size(), "point dimension mismatch");
  return geo::linear_index(cell_of(point), shape_);
}

}  // namespace mrsky::part
