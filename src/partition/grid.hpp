// MR-Grid partitioning (paper §III-B).
//
// The data space is split by an axis-aligned grid whose per-dimension split
// counts multiply to exactly the requested partition count (balanced
// mixed-radix shape, geometry/grid_shape.hpp). The paper's example is the
// 2-dimensional 2×2 case.
//
// MR-Grid's distinguishing feature is inter-cell dominance pruning: a cell
// whose lower corner is (weakly) beyond another non-empty cell's upper corner
// in every dimension contains only dominated points and is dropped before
// local skyline computation. With cells half-open on the upper side (our
// assignment uses floor, so interior boundaries belong to the upper cell),
// cell c1 prunes cell c2 exactly when index(c1)[a] + 1 <= index(c2)[a] for
// every dimension a.
#pragma once

#include "src/partition/partitioner.hpp"

namespace mrsky::part {

class GridPartitioner final : public Partitioner {
 public:
  explicit GridPartitioner(std::size_t num_partitions);

  void fit(const data::PointSet& ps) override;
  [[nodiscard]] std::size_t assign(std::span<const double> point) const override;
  [[nodiscard]] std::size_t num_partitions() const noexcept override { return num_partitions_; }
  [[nodiscard]] std::string name() const override { return "grid"; }
  [[nodiscard]] std::vector<std::size_t> prunable_partitions() const override {
    return prunable_;
  }

  /// Per-dimension split counts chosen by fit().
  [[nodiscard]] const std::vector<std::size_t>& shape() const noexcept { return shape_; }

 private:
  [[nodiscard]] std::vector<std::size_t> cell_of(std::span<const double> point) const;

  std::size_t num_partitions_;
  bool fitted_ = false;
  std::vector<std::size_t> shape_;
  std::vector<double> lo_;
  std::vector<double> width_;  ///< per-dim cell width; 0 for constant attributes
  std::vector<std::size_t> prunable_;
};

}  // namespace mrsky::part
