// Partition diagnostics: how balanced is an assignment, and how big are the
// pieces each local-skyline task will see. Used by tests, ablation benches
// and the examples to explain *why* the schemes differ.
#pragma once

#include <cstddef>
#include <vector>

#include "src/dataset/point_set.hpp"
#include "src/dataset/source.hpp"
#include "src/partition/partitioner.hpp"

namespace mrsky::part {

struct PartitionReport {
  std::vector<std::size_t> sizes;        ///< points per partition
  std::size_t non_empty = 0;             ///< partitions with >= 1 point
  std::size_t largest = 0;               ///< max points in one partition
  double balance_cv = 0.0;               ///< coefficient of variation of sizes
  std::vector<std::size_t> prunable;     ///< partitions droppable before local skyline
  std::size_t pruned_points = 0;         ///< points inside prunable partitions
};

/// Fits nothing — `partitioner` must already be fitted on (a superset of)
/// `ps`. Computes the report for `ps` under that partitioner.
[[nodiscard]] PartitionReport analyze_partitioning(const Partitioner& partitioner,
                                                   const data::PointSet& ps);

/// Streaming variant: assigns every row of `source` one block at a time
/// (peak memory one block), producing the same report the PointSet overload
/// would on the materialised data. Exact sizes matter — they feed the
/// pipeline's salting decision — so every block is visited, including ones
/// block pruning will later skip.
[[nodiscard]] PartitionReport analyze_partitioning(const Partitioner& partitioner,
                                                   const data::DatasetSource& source);

/// Splits `ps` into per-partition point sets under a fitted partitioner.
/// Result has exactly partitioner.num_partitions() entries (possibly empty).
[[nodiscard]] std::vector<data::PointSet> split_by_partition(const Partitioner& partitioner,
                                                             const data::PointSet& ps);

}  // namespace mrsky::part
