// Construction of partitioners by scheme name — the single place benches,
// examples and the MRSkyline driver translate configuration into objects.
#pragma once

#include <string>

#include "src/partition/partitioner.hpp"

namespace mrsky::part {

enum class Scheme {
  kDimensional,       ///< MR-Dim (§III-A)
  kGrid,              ///< MR-Grid (§III-B)
  kAngular,           ///< MR-Angle, equal-width angular grid (§III-C)
  kAngularEquiDepth,  ///< MR-Angle with quantile sector boundaries (extension)
  kAngularRadial,     ///< sectors × radius bands (extension)
  kPivot,             ///< nearest-pivot Voronoi cells (extension)
  kRandom,            ///< hash partitioning baseline (extension)
  /// Not a partitioner: asks the pipeline to run core::AdaptivePlanner and
  /// resolve the scheme from the data. make_partitioner rejects it — callers
  /// that reach partitioner construction must already hold a resolved scheme.
  kAuto,
};

[[nodiscard]] Scheme parse_scheme(const std::string& name);
[[nodiscard]] std::string to_string(Scheme scheme);

struct PartitionerOptions {
  std::size_t num_partitions = 8;
  /// MR-Dim only: which attribute carries the slabs.
  std::size_t split_dim = 0;
  /// Random only: hash salt.
  std::uint64_t seed = 0x5eed;
  /// Angular-radial only: radius bands per sector (must divide num_partitions).
  std::size_t radial_bands = 2;
};

[[nodiscard]] PartitionerPtr make_partitioner(Scheme scheme, const PartitionerOptions& options);

}  // namespace mrsky::part
