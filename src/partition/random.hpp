// Random (hash) partitioning — a baseline the paper does not evaluate but
// that every MapReduce system offers by default. Perfect load balance in
// expectation, but no geometric locality at all: each partition's local
// skyline is roughly as large as the global skyline of a random sample,
// which makes it a useful lower bound for "how much does geometry matter"
// in the ablation benches.
#pragma once

#include "src/partition/partitioner.hpp"

namespace mrsky::part {

class RandomPartitioner final : public Partitioner {
 public:
  explicit RandomPartitioner(std::size_t num_partitions, std::uint64_t seed = 0x5eed);

  void fit(const data::PointSet& ps) override;
  [[nodiscard]] std::size_t assign(std::span<const double> point) const override;
  [[nodiscard]] std::size_t num_partitions() const noexcept override { return num_partitions_; }
  [[nodiscard]] std::string name() const override { return "random"; }

 private:
  std::size_t num_partitions_;
  std::uint64_t seed_;
  bool fitted_ = false;
};

}  // namespace mrsky::part
