// Pivot (Voronoi-cell) partitioning — a further baseline from the
// distributed-skyline literature: pick k pivot points from the data and
// assign every point to its nearest pivot (Euclidean). Cells adapt to the
// data's clusters, giving good balance on clustered workloads without any
// per-axis structure; unlike angular sectors they have no origin-cone
// property, so local skylines are grid-like in quality. Rounds out the
// scheme comparison between pure geometry (grid/angular) and pure hashing.
#pragma once

#include "src/common/rng.hpp"
#include "src/partition/partitioner.hpp"

namespace mrsky::part {

class PivotPartitioner final : public Partitioner {
 public:
  explicit PivotPartitioner(std::size_t num_partitions, std::uint64_t seed = 0x9140);

  void fit(const data::PointSet& ps) override;
  [[nodiscard]] std::size_t assign(std::span<const double> point) const override;
  [[nodiscard]] std::size_t num_partitions() const noexcept override { return num_partitions_; }
  [[nodiscard]] std::string name() const override { return "pivot"; }

  /// The fitted pivots (num_partitions rows; duplicates possible when the
  /// dataset has fewer distinct points than partitions).
  [[nodiscard]] const data::PointSet& pivots() const;

 private:
  std::size_t num_partitions_;
  std::uint64_t seed_;
  bool fitted_ = false;
  data::PointSet pivots_{1};
};

}  // namespace mrsky::part
