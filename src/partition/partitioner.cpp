#include "src/partition/partitioner.hpp"

namespace mrsky::part {

std::vector<std::size_t> Partitioner::assign_all(const data::PointSet& ps) const {
  std::vector<std::size_t> out;
  out.reserve(ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) out.push_back(assign(ps.point(i)));
  return out;
}

}  // namespace mrsky::part
