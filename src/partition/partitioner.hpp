// Data-space partitioning interface.
//
// A Partitioner implements the Map-stage decision of the paper's model: which
// partition (and therefore which local-skyline task) each point belongs to.
// Lifecycle: construct → fit(dataset) → assign(point) any number of times.
// fit() learns whatever the scheme needs (attribute bounds for MR-Dim and
// MR-Grid, angle quantiles for equi-depth MR-Angle, non-empty-cell dominance
// pruning for MR-Grid); assign() must then be pure and thread-safe.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/dataset/point_set.hpp"

namespace mrsky::part {

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Learns data-dependent parameters. Must be called before assign();
  /// implementations throw mrsky::RuntimeError if assign precedes fit.
  virtual void fit(const data::PointSet& ps) = 0;

  /// Partition id in [0, num_partitions()) for one point. Pure after fit().
  [[nodiscard]] virtual std::size_t assign(std::span<const double> point) const = 0;

  [[nodiscard]] virtual std::size_t num_partitions() const noexcept = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Partitions whose entire content is provably dominated by some other
  /// partition's content and can be skipped before local skyline computation
  /// (paper §III-B). Computed during fit(); empty for schemes without a
  /// cell-dominance structure.
  [[nodiscard]] virtual std::vector<std::size_t> prunable_partitions() const { return {}; }

  /// Convenience: assignment vector for a whole point set.
  [[nodiscard]] std::vector<std::size_t> assign_all(const data::PointSet& ps) const;
};

using PartitionerPtr = std::unique_ptr<Partitioner>;

}  // namespace mrsky::part
