// Angular-radial partitioning — an extension in the paper's future-work
// direction.
//
// Pure angular sectors can still be population-skewed when many services
// share a direction. This scheme splits each sector further into radius
// bands (equi-depth on r over the fitted data), trading some of the cone
// property for balance: within a band, points are no longer totally ordered
// towards the origin, so local skylines grow slightly, but no single reduce
// task carries a whole dense sector. The ablation benches quantify the
// trade-off against the paper's pure MR-Angle.
#pragma once

#include <vector>

#include "src/partition/angular.hpp"
#include "src/partition/partitioner.hpp"

namespace mrsky::part {

class AngularRadialPartitioner final : public Partitioner {
 public:
  /// `num_partitions` total cells = sectors × `radial_bands`. The sector
  /// count is num_partitions / radial_bands; num_partitions must be
  /// divisible by radial_bands (radial_bands >= 1).
  AngularRadialPartitioner(std::size_t num_partitions, std::size_t radial_bands = 2);

  void fit(const data::PointSet& ps) override;
  [[nodiscard]] std::size_t assign(std::span<const double> point) const override;
  [[nodiscard]] std::size_t num_partitions() const noexcept override {
    return sectors_.num_partitions() * radial_bands_;
  }
  [[nodiscard]] std::string name() const override { return "angular-radial"; }

  [[nodiscard]] std::size_t radial_bands() const noexcept { return radial_bands_; }
  [[nodiscard]] std::size_t sectors() const noexcept { return sectors_.num_partitions(); }

  /// Radius boundaries of sector `sector` (radial_bands - 1 ascending values).
  [[nodiscard]] const std::vector<double>& radius_boundaries(std::size_t sector) const;

 private:
  std::size_t radial_bands_;
  AngularPartitioner sectors_;
  bool fitted_ = false;
  /// Per-sector equi-depth radius boundaries, so dense sectors split where
  /// *their* population sits rather than at global radii.
  std::vector<std::vector<double>> radius_bounds_;
};

}  // namespace mrsky::part
