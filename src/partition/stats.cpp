#include "src/partition/stats.hpp"

#include <algorithm>

#include "src/common/stats.hpp"

namespace mrsky::part {

namespace {

/// Derive the summary fields from the filled `sizes` histogram — shared by
/// the materialised and streaming analyze_partitioning overloads so they
/// report identically on the same data.
void finish_report(const Partitioner& partitioner, PartitionReport& report) {
  std::vector<double> sizes_d;
  sizes_d.reserve(report.sizes.size());
  for (std::size_t s : report.sizes) {
    if (s > 0) report.non_empty += 1;
    report.largest = std::max(report.largest, s);
    sizes_d.push_back(static_cast<double>(s));
  }
  report.balance_cv = common::coefficient_of_variation(sizes_d);
  report.prunable = partitioner.prunable_partitions();
  for (std::size_t p : report.prunable) report.pruned_points += report.sizes[p];
}

}  // namespace

PartitionReport analyze_partitioning(const Partitioner& partitioner, const data::PointSet& ps) {
  PartitionReport report;
  report.sizes.assign(partitioner.num_partitions(), 0);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    report.sizes[partitioner.assign(ps.point(i))] += 1;
  }
  finish_report(partitioner, report);
  return report;
}

PartitionReport analyze_partitioning(const Partitioner& partitioner,
                                     const data::DatasetSource& source) {
  if (const data::PointSet* resident = source.resident()) {
    return analyze_partitioning(partitioner, *resident);
  }
  PartitionReport report;
  report.sizes.assign(partitioner.num_partitions(), 0);
  data::PointSet scratch(source.dim());
  for (std::size_t b = 0; b < source.block_count(); ++b) {
    scratch.clear();
    source.read_block(b, scratch);
    for (std::size_t i = 0; i < scratch.size(); ++i) {
      report.sizes[partitioner.assign(scratch.point(i))] += 1;
    }
    source.release_block(b);
  }
  finish_report(partitioner, report);
  return report;
}

std::vector<data::PointSet> split_by_partition(const Partitioner& partitioner,
                                               const data::PointSet& ps) {
  std::vector<data::PointSet> parts(partitioner.num_partitions(), data::PointSet(ps.dim()));
  for (std::size_t i = 0; i < ps.size(); ++i) {
    parts[partitioner.assign(ps.point(i))].push_back(ps.point(i), ps.id(i));
  }
  return parts;
}

}  // namespace mrsky::part
