#include "src/partition/angular.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/common/error.hpp"
#include "src/common/stats.hpp"
#include "src/geometry/grid_shape.hpp"
#include "src/geometry/hyperspherical.hpp"

namespace mrsky::part {

namespace {

constexpr double kHalfPi = std::numbers::pi / 2.0;

}  // namespace

AngularPartitioner::AngularPartitioner(std::size_t num_partitions, AngularPolicy policy)
    : requested_partitions_(num_partitions), effective_partitions_(num_partitions),
      policy_(policy) {
  MRSKY_REQUIRE(num_partitions >= 1, "need at least one partition");
}

void AngularPartitioner::fit(const data::PointSet& ps) {
  MRSKY_REQUIRE(!ps.empty(), "cannot fit a partitioner on an empty dataset");
  const std::size_t num_angles = ps.dim() - 1;
  if (num_angles == 0) {
    // 1-D data: no angular coordinates exist; a single sector is the only
    // well-defined partitioning.
    shape_.clear();
    boundaries_.clear();
    effective_partitions_ = 1;
    fitted_ = true;
    return;
  }

  // Per-angle summary statistics of the fitted data, used twice below:
  // (1) split factors go to the angles with the largest spread, (2) the
  // equal-width policy splits the observed [min, max] range.
  std::vector<double> lo(num_angles, kHalfPi);
  std::vector<double> hi(num_angles, 0.0);
  std::vector<common::RunningStats> spread(num_angles);
  {
    std::vector<double> phi;
    for (std::size_t i = 0; i < ps.size(); ++i) {
      geo::angles_of(ps.point(i), phi);
      for (std::size_t k = 0; k < num_angles; ++k) {
        lo[k] = std::min(lo[k], phi[k]);
        hi[k] = std::max(hi[k], phi[k]);
        spread[k].add(phi[k]);
      }
    }
  }

  // Allocate the factorised partition count across angles largest-spread
  // first. At high dimension the leading angles of Eq. (1) concentrate
  // sharply (their tangent carries a sum of d-k squares), so splitting them
  // produces one sector holding nearly all points; the trailing angles are
  // the ones that actually spread the data. balanced_grid_shape returns its
  // factors largest-first, matching the sorted spread order.
  const auto factors = geo::balanced_grid_shape(requested_partitions_, num_angles);
  std::vector<std::size_t> order(num_angles);
  for (std::size_t k = 0; k < num_angles; ++k) order[k] = k;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return spread[a].stddev() > spread[b].stddev(); });
  shape_.assign(num_angles, 1);
  for (std::size_t rank = 0; rank < num_angles; ++rank) shape_[order[rank]] = factors[rank];

  effective_partitions_ = requested_partitions_;
  boundaries_.assign(num_angles, {});

  if (policy_ == AngularPolicy::kEqualWidth) {
    // Like MR-Grid's Vmax/Np rule, the split range follows the fitted data:
    // equal-width cells over the observed [min, max] of each angle (§III-C
    // "we modify the grid partitioning over the n-1 subspaces"). Splitting
    // the full [0, π/2] instead would leave most sectors empty whenever the
    // data's directions concentrate, which real QoS data's do.
    for (std::size_t k = 0; k < num_angles; ++k) {
      const double width = (hi[k] - lo[k]) / static_cast<double>(shape_[k]);
      for (std::size_t b = 1; b < shape_[k]; ++b) {
        boundaries_[k].push_back(lo[k] + width * static_cast<double>(b));
      }
    }
  } else {
    // Equi-depth: boundaries at marginal sample quantiles of each angle.
    std::vector<std::vector<double>> samples(num_angles);
    for (auto& s : samples) s.reserve(ps.size());
    std::vector<double> phi;
    for (std::size_t i = 0; i < ps.size(); ++i) {
      geo::angles_of(ps.point(i), phi);
      for (std::size_t k = 0; k < num_angles; ++k) samples[k].push_back(phi[k]);
    }
    for (std::size_t k = 0; k < num_angles; ++k) {
      std::sort(samples[k].begin(), samples[k].end());
      for (std::size_t b = 1; b < shape_[k]; ++b) {
        const double frac = static_cast<double>(b) / static_cast<double>(shape_[k]);
        const auto pos = static_cast<std::size_t>(
            frac * static_cast<double>(samples[k].size() - 1));
        boundaries_[k].push_back(samples[k][pos]);
      }
    }
  }
  fitted_ = true;
}

std::size_t AngularPartitioner::assign(std::span<const double> point) const {
  if (!fitted_) MRSKY_FAIL("AngularPartitioner::assign before fit");
  const std::size_t num_angles = shape_.size();
  if (num_angles == 0) return 0;
  MRSKY_REQUIRE(point.size() == num_angles + 1, "point dimension mismatch");

  thread_local std::vector<double> phi;
  geo::angles_of(point, phi);

  std::vector<std::size_t> cell(num_angles);
  for (std::size_t k = 0; k < num_angles; ++k) {
    const auto& bounds = boundaries_[k];
    // Boundary value itself belongs to the upper sector (half-open cells).
    cell[k] = static_cast<std::size_t>(
        std::upper_bound(bounds.begin(), bounds.end(), phi[k]) - bounds.begin());
    // upper_bound on boundaries yields at most shape_[k]-1... plus clamping
    // guards against angles that exceed the last boundary exactly at π/2.
    cell[k] = std::min(cell[k], shape_[k] - 1);
  }
  return geo::linear_index(cell, shape_);
}

const std::vector<double>& AngularPartitioner::boundaries(std::size_t angle_index) const {
  MRSKY_REQUIRE(angle_index < boundaries_.size(), "angle index out of range");
  return boundaries_[angle_index];
}

}  // namespace mrsky::part
