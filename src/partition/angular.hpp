// MR-Angle partitioning (paper §III-C, Algorithm 1) — the paper's
// contribution.
//
// Each point is transformed to hyperspherical coordinates (Eq. 1); the
// (n−1)-dimensional angular cube is split into exactly `num_partitions`
// sectors by a balanced mixed-radix grid over the angles, and the radial
// coordinate is ignored. A sector is a cone from the origin, so it contains
// services of every quality level: each partition's local skyline hugs the
// global skyline contour, which is why the Reduce-stage merge input shrinks
// relative to MR-Dim / MR-Grid.
//
// Two split policies:
//  * kEqualWidth — angles split uniformly over [0, π/2] (the paper's method);
//  * kEquiDepth  — per-angle split boundaries placed at sample quantiles of
//    the fitted data, for better load balance on skewed data (our ablation).
#pragma once

#include <vector>

#include "src/partition/partitioner.hpp"

namespace mrsky::part {

enum class AngularPolicy { kEqualWidth, kEquiDepth };

class AngularPartitioner final : public Partitioner {
 public:
  AngularPartitioner(std::size_t num_partitions, AngularPolicy policy = AngularPolicy::kEqualWidth);

  void fit(const data::PointSet& ps) override;
  [[nodiscard]] std::size_t assign(std::span<const double> point) const override;
  /// For 1-dimensional data there are no angles; everything maps to one
  /// partition regardless of the requested count.
  [[nodiscard]] std::size_t num_partitions() const noexcept override {
    return effective_partitions_;
  }
  [[nodiscard]] std::string name() const override {
    return policy_ == AngularPolicy::kEqualWidth ? "angular" : "angular-equidepth";
  }

  [[nodiscard]] AngularPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] const std::vector<std::size_t>& shape() const noexcept { return shape_; }

  /// Split boundaries for angle k (shape_[k] - 1 interior boundaries,
  /// ascending). Exposed for tests and diagnostics.
  [[nodiscard]] const std::vector<double>& boundaries(std::size_t angle_index) const;

 private:
  std::size_t requested_partitions_;
  std::size_t effective_partitions_;
  AngularPolicy policy_;
  bool fitted_ = false;
  std::vector<std::size_t> shape_;               ///< per-angle split counts
  std::vector<std::vector<double>> boundaries_;  ///< per-angle interior boundaries
};

}  // namespace mrsky::part
