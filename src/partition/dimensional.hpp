// MR-Dim partitioning (paper §III-A).
//
// The simplest scheme: only one attribute dimension is used; its value range
// is split into `Np` equal-width slabs of width Vmax/Np. Every slab contains
// points of every quality level *in the other dimensions*, so slabs far from
// the origin still carry large local skylines — the redundancy the paper's
// MR-Angle is designed to eliminate.
#pragma once

#include "src/partition/partitioner.hpp"

namespace mrsky::part {

class DimensionalPartitioner final : public Partitioner {
 public:
  /// Splits attribute `split_dim` into `num_partitions` equal ranges.
  DimensionalPartitioner(std::size_t num_partitions, std::size_t split_dim = 0);

  void fit(const data::PointSet& ps) override;
  [[nodiscard]] std::size_t assign(std::span<const double> point) const override;
  [[nodiscard]] std::size_t num_partitions() const noexcept override { return num_partitions_; }
  [[nodiscard]] std::string name() const override { return "dimensional"; }

  [[nodiscard]] std::size_t split_dim() const noexcept { return split_dim_; }

 private:
  std::size_t num_partitions_;
  std::size_t split_dim_;
  bool fitted_ = false;
  double lo_ = 0.0;
  double width_ = 1.0;  ///< slab width; 0 when the attribute is constant
};

}  // namespace mrsky::part
