#include "src/partition/angular_radial.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"

namespace mrsky::part {

namespace {

double radius_of(std::span<const double> point) noexcept {
  double sum_sq = 0.0;
  for (double v : point) sum_sq += v * v;
  return std::sqrt(sum_sq);
}

}  // namespace

AngularRadialPartitioner::AngularRadialPartitioner(std::size_t num_partitions,
                                                   std::size_t radial_bands)
    : radial_bands_(radial_bands),
      sectors_(radial_bands >= 1 && num_partitions % radial_bands == 0
                   ? num_partitions / radial_bands
                   : 1) {
  MRSKY_REQUIRE(radial_bands >= 1, "need at least one radial band");
  MRSKY_REQUIRE(num_partitions >= 1, "need at least one partition");
  MRSKY_REQUIRE(num_partitions % radial_bands == 0,
                "num_partitions must be divisible by radial_bands");
}

void AngularRadialPartitioner::fit(const data::PointSet& ps) {
  sectors_.fit(ps);
  const std::size_t sector_count = sectors_.num_partitions();

  // Collect radii per sector, then place equi-depth boundaries.
  std::vector<std::vector<double>> radii(sector_count);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const auto p = ps.point(i);
    radii[sectors_.assign(p)].push_back(radius_of(p));
  }
  radius_bounds_.assign(sector_count, {});
  for (std::size_t s = 0; s < sector_count; ++s) {
    auto& rs = radii[s];
    std::sort(rs.begin(), rs.end());
    for (std::size_t b = 1; b < radial_bands_; ++b) {
      if (rs.empty()) {
        // Empty sector: any boundary works; use b/bands of unit radius.
        radius_bounds_[s].push_back(static_cast<double>(b) /
                                    static_cast<double>(radial_bands_));
        continue;
      }
      const double frac = static_cast<double>(b) / static_cast<double>(radial_bands_);
      const auto pos = static_cast<std::size_t>(frac * static_cast<double>(rs.size() - 1));
      radius_bounds_[s].push_back(rs[pos]);
    }
  }
  fitted_ = true;
}

std::size_t AngularRadialPartitioner::assign(std::span<const double> point) const {
  if (!fitted_) MRSKY_FAIL("AngularRadialPartitioner::assign before fit");
  const std::size_t sector = sectors_.assign(point);
  const auto& bounds = radius_bounds_[sector];
  const double r = radius_of(point);
  const auto band = static_cast<std::size_t>(
      std::upper_bound(bounds.begin(), bounds.end(), r) - bounds.begin());
  return sector * radial_bands_ + std::min(band, radial_bands_ - 1);
}

const std::vector<double>& AngularRadialPartitioner::radius_boundaries(std::size_t sector) const {
  MRSKY_REQUIRE(sector < radius_bounds_.size(), "sector index out of range");
  return radius_bounds_[sector];
}

}  // namespace mrsky::part
