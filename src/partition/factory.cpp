#include "src/partition/factory.hpp"

#include "src/common/error.hpp"
#include "src/partition/angular.hpp"
#include "src/partition/angular_radial.hpp"
#include "src/partition/dimensional.hpp"
#include "src/partition/grid.hpp"
#include "src/partition/pivot.hpp"
#include "src/partition/random.hpp"

namespace mrsky::part {

Scheme parse_scheme(const std::string& name) {
  if (name == "dimensional" || name == "dim" || name == "mr-dim") return Scheme::kDimensional;
  if (name == "grid" || name == "mr-grid") return Scheme::kGrid;
  if (name == "angular" || name == "angle" || name == "mr-angle") return Scheme::kAngular;
  if (name == "angular-equidepth" || name == "equidepth") return Scheme::kAngularEquiDepth;
  if (name == "angular-radial" || name == "radial") return Scheme::kAngularRadial;
  if (name == "pivot" || name == "voronoi") return Scheme::kPivot;
  if (name == "random" || name == "hash") return Scheme::kRandom;
  if (name == "auto" || name == "adaptive") return Scheme::kAuto;
  MRSKY_FAIL("unknown partitioning scheme: " + name);
}

std::string to_string(Scheme scheme) {
  switch (scheme) {
    case Scheme::kDimensional: return "dimensional";
    case Scheme::kGrid: return "grid";
    case Scheme::kAngular: return "angular";
    case Scheme::kAngularEquiDepth: return "angular-equidepth";
    case Scheme::kAngularRadial: return "angular-radial";
    case Scheme::kPivot: return "pivot";
    case Scheme::kRandom: return "random";
    case Scheme::kAuto: return "auto";
  }
  return "unknown";
}

PartitionerPtr make_partitioner(Scheme scheme, const PartitionerOptions& options) {
  switch (scheme) {
    case Scheme::kDimensional:
      return std::make_unique<DimensionalPartitioner>(options.num_partitions, options.split_dim);
    case Scheme::kGrid:
      return std::make_unique<GridPartitioner>(options.num_partitions);
    case Scheme::kAngular:
      return std::make_unique<AngularPartitioner>(options.num_partitions,
                                                  AngularPolicy::kEqualWidth);
    case Scheme::kAngularEquiDepth:
      return std::make_unique<AngularPartitioner>(options.num_partitions,
                                                  AngularPolicy::kEquiDepth);
    case Scheme::kAngularRadial:
      return std::make_unique<AngularRadialPartitioner>(options.num_partitions,
                                                        options.radial_bands);
    case Scheme::kPivot:
      return std::make_unique<PivotPartitioner>(options.num_partitions, options.seed);
    case Scheme::kRandom:
      return std::make_unique<RandomPartitioner>(options.num_partitions, options.seed);
    case Scheme::kAuto:
      MRSKY_FAIL(
          "scheme 'auto' is a planner directive, not a partitioner; resolve it via "
          "core::AdaptivePlanner (run_mr_skyline does this) before construction");
  }
  MRSKY_FAIL("unreachable scheme");
}

}  // namespace mrsky::part
