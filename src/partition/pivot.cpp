#include "src/partition/pivot.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "src/common/error.hpp"

namespace mrsky::part {

namespace {

double squared_distance(std::span<const double> a, std::span<const double> b) {
  double sum = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    const double d = a[k] - b[k];
    sum += d * d;
  }
  return sum;
}

}  // namespace

PivotPartitioner::PivotPartitioner(std::size_t num_partitions, std::uint64_t seed)
    : num_partitions_(num_partitions), seed_(seed) {
  MRSKY_REQUIRE(num_partitions >= 1, "need at least one partition");
}

void PivotPartitioner::fit(const data::PointSet& ps) {
  MRSKY_REQUIRE(!ps.empty(), "cannot fit a partitioner on an empty dataset");
  // Farthest-point (k-center greedy) pivot selection: first pivot random,
  // each next pivot is the point farthest from all chosen ones. Spreads
  // pivots across the data's extent deterministically.
  common::Rng rng(seed_);
  pivots_ = data::PointSet(ps.dim());
  std::vector<double> min_dist(ps.size(), std::numeric_limits<double>::infinity());

  std::size_t next = static_cast<std::size_t>(rng.uniform_index(ps.size()));
  for (std::size_t k = 0; k < num_partitions_; ++k) {
    pivots_.push_back(ps.point(next), static_cast<data::PointId>(k));
    std::size_t farthest = 0;
    double farthest_dist = -1.0;
    for (std::size_t i = 0; i < ps.size(); ++i) {
      const double d = squared_distance(ps.point(i), ps.point(next));
      min_dist[i] = std::min(min_dist[i], d);
      if (min_dist[i] > farthest_dist) {
        farthest_dist = min_dist[i];
        farthest = i;
      }
    }
    next = farthest;  // duplicates arise naturally when data has < k distinct points
  }
  fitted_ = true;
}

std::size_t PivotPartitioner::assign(std::span<const double> point) const {
  if (!fitted_) MRSKY_FAIL("PivotPartitioner::assign before fit");
  MRSKY_REQUIRE(point.size() == pivots_.dim(), "point dimension mismatch");
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < pivots_.size(); ++k) {
    const double d = squared_distance(point, pivots_.point(k));
    // Ties break toward the lower pivot index: deterministic.
    if (d < best_dist) {
      best_dist = d;
      best = k;
    }
  }
  return best;
}

const data::PointSet& PivotPartitioner::pivots() const {
  if (!fitted_) MRSKY_FAIL("PivotPartitioner::pivots before fit");
  return pivots_;
}

}  // namespace mrsky::part
