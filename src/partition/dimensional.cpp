#include "src/partition/dimensional.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"

namespace mrsky::part {

DimensionalPartitioner::DimensionalPartitioner(std::size_t num_partitions, std::size_t split_dim)
    : num_partitions_(num_partitions), split_dim_(split_dim) {
  MRSKY_REQUIRE(num_partitions >= 1, "need at least one partition");
}

void DimensionalPartitioner::fit(const data::PointSet& ps) {
  MRSKY_REQUIRE(split_dim_ < ps.dim(), "split dimension out of range");
  MRSKY_REQUIRE(!ps.empty(), "cannot fit a partitioner on an empty dataset");
  lo_ = ps.attribute_min()[split_dim_];
  const double hi = ps.attribute_max()[split_dim_];
  width_ = (hi - lo_) / static_cast<double>(num_partitions_);
  fitted_ = true;
}

std::size_t DimensionalPartitioner::assign(std::span<const double> point) const {
  if (!fitted_) MRSKY_FAIL("DimensionalPartitioner::assign before fit");
  MRSKY_REQUIRE(split_dim_ < point.size(), "point dimension too small for split dim");
  if (width_ <= 0.0) return 0;  // constant attribute: everything in slab 0
  const double offset = (point[split_dim_] - lo_) / width_;
  const auto slab = static_cast<std::ptrdiff_t>(std::floor(offset));
  return static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(slab, 0, static_cast<std::ptrdiff_t>(num_partitions_) - 1));
}

}  // namespace mrsky::part
