// mrsky — umbrella header for the SUPPORTED public API (DESIGN.md
// decision 11).
//
// Include this one header to use the library as a consumer:
//
//   #include "src/mrsky.hpp"
//
//   mrsky::data::PointSet services = ...;            // load / generate data
//   mrsky::core::MRSkylineConfig config;             // or core::plan_config
//   auto result = mrsky::core::run_mr_skyline(services, config);
//
//   mrsky::service::QueryEngine engine(std::move(services));   // serving
//   auto skyline = engine.execute(mrsky::service::SkylineQuery{});
//
// Everything exported here is TIER 1 — the stable surface: breaking changes
// land with a deprecation path. Headers under src/ that are not pulled in
// here (the MapReduce engine internals beyond what core re-exports, the
// geometry/spatial/partition implementation headers, qos) are TIER 2 —
// usable, tested, but free to change shape between versions. See DESIGN.md
// decision 11 for the full tier definition and the promotion rule.
#pragma once

// Datasets: the PointSet container, ingest/egress, generators, preparation,
// and the out-of-core layer — the unified DatasetSource abstraction over
// in-memory sets, streamed CSVs and on-disk .mrb block stores.
#include "src/dataset/block_store.hpp"
#include "src/dataset/generators.hpp"
#include "src/dataset/io.hpp"
#include "src/dataset/normalize.hpp"
#include "src/dataset/point_set.hpp"
#include "src/dataset/source.hpp"
#include "src/dataset/transforms.hpp"

// Sequential skylines and the service-selection extensions.
#include "src/skyline/algorithms.hpp"
#include "src/skyline/extensions.hpp"
#include "src/skyline/incremental.hpp"

// The paper's MapReduce pipeline, its planner, and the cluster cost model
// (cluster.hpp comes in through mr_skyline.hpp: MRSkylineResult::simulate).
#include "src/core/mr_skyline.hpp"
#include "src/core/optimality.hpp"
#include "src/core/planner.hpp"

// Serving: the resident QueryEngine and its typed query surface.
#include "src/service/query.hpp"
#include "src/service/query_engine.hpp"
#include "src/service/script.hpp"

// Observability: span tracing and metrics JSON export.
#include "src/common/trace.hpp"
#include "src/mapreduce/metrics_json.hpp"
