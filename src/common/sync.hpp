// Thread-safety helpers shared by the serving layer.
//
// The standard library covers most of what the server needs (std::mutex,
// std::jthread, std::latch); what it does not give us portably is a counting
// semaphore with a *non-blocking* acquire that reports failure — the exact
// shape admission control wants: "take a session slot if one is free,
// otherwise reject the connection right now". std::counting_semaphore's
// try_acquire is allowed to fail spuriously, which would reject connections
// with free slots; this one never does.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace mrsky::common {

/// A counting semaphore over a mutex + condition variable. Deliberately
/// boring: exact (no spurious try_acquire failures), no busy-waiting, and the
/// count is observable for metrics. Used by server::SkylineServer to cap
/// concurrent sessions.
class Semaphore {
 public:
  /// Starts with `count` free slots.
  explicit Semaphore(std::size_t count) : count_(count) {}

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  /// Blocks until a slot is free, then takes it.
  void acquire() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return count_ > 0; });
    --count_;
  }

  /// Takes a slot iff one is free right now. Never fails spuriously.
  [[nodiscard]] bool try_acquire() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0) return false;
    --count_;
    return true;
  }

  /// Returns a slot and wakes one waiter.
  void release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++count_;
    }
    cv_.notify_one();
  }

  /// Free slots at this instant (metrics only — stale by the time it's read).
  [[nodiscard]] std::size_t available() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t count_;
};

/// RAII slot holder: release() exactly once, on destruction, iff the
/// acquisition succeeded. `if (SlotGuard slot{sem}) { serve(); }` is the
/// admission-control idiom.
class SlotGuard {
 public:
  explicit SlotGuard(Semaphore& sem) : sem_(&sem), held_(sem.try_acquire()) {}

  SlotGuard(const SlotGuard&) = delete;
  SlotGuard& operator=(const SlotGuard&) = delete;
  SlotGuard(SlotGuard&& other) noexcept : sem_(other.sem_), held_(other.held_) {
    other.held_ = false;
  }
  SlotGuard& operator=(SlotGuard&&) = delete;

  ~SlotGuard() {
    if (held_) sem_->release();
  }

  [[nodiscard]] explicit operator bool() const noexcept { return held_; }

 private:
  Semaphore* sem_;
  bool held_;
};

}  // namespace mrsky::common
