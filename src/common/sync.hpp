// Thread-safety helpers shared by the serving layer.
//
// The standard library covers most of what the server needs (std::mutex,
// std::jthread, std::latch); what it does not give us portably is a counting
// semaphore with a *non-blocking* acquire that reports failure — the exact
// shape admission control wants: "take a session slot if one is free,
// otherwise reject the connection right now". std::counting_semaphore's
// try_acquire is allowed to fail spuriously, which would reject connections
// with free slots; this one never does.
//
// The second gap is cooperative cancellation with deadlines (ISSUE 7):
// std::stop_token carries no deadline and cannot be re-armed per request, so
// one session would need a fresh stop_source per query. CancellationToken is
// a shared-state handle polled by the MapReduce task loops at split
// boundaries; one token lives as long as its session, the server cancels it
// on drain, and the session re-arms the deadline around each request. All
// state is in std::atomic (TSan-clean by construction): the poll path is one
// pointer test for an inert token, two relaxed-ish atomic loads for an armed
// one.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "src/common/error.hpp"

namespace mrsky::common {

/// A point on the steady clock a piece of work must not run past. A
/// default-constructed Deadline is "none" (never expires); after_ms(0) is
/// already expired — the deterministic way to say "fail this request now",
/// which the chaos tests lean on.
class Deadline {
 public:
  Deadline() = default;  ///< no deadline

  /// Expires `ms` from now (ms <= 0: already expired).
  [[nodiscard]] static Deadline after_ms(std::int64_t ms) {
    Deadline d;
    d.at_ns_ = now_ns() + (ms > 0 ? ms * 1'000'000 : 0);
    return d;
  }

  /// True when a deadline is set at all.
  [[nodiscard]] bool engaged() const noexcept { return at_ns_ != kNone; }

  [[nodiscard]] bool expired() const noexcept { return engaged() && now_ns() >= at_ns_; }

  /// Milliseconds until expiry (clamped at 0; max when no deadline is set).
  [[nodiscard]] std::int64_t remaining_ms() const noexcept {
    if (!engaged()) return std::numeric_limits<std::int64_t>::max();
    const std::int64_t left = at_ns_ - now_ns();
    return left > 0 ? left / 1'000'000 : 0;
  }

  /// Steady-clock expiry in ns since the clock's epoch (kNone = no deadline).
  [[nodiscard]] std::int64_t raw_ns() const noexcept { return at_ns_; }

  static constexpr std::int64_t kNone = std::numeric_limits<std::int64_t>::max();

  [[nodiscard]] static std::int64_t now_ns() noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

 private:
  std::int64_t at_ns_ = kNone;
};

/// Why (whether) cooperatively running work should stop.
enum class StopReason {
  kNone,      ///< keep going
  kCancelled, ///< request_cancel() was called
  kDeadline,  ///< the deadline passed
};

/// Cooperative cancellation handle. Copies share state (shared_ptr), so the
/// server, the session and every pipeline task polling mid-query all observe
/// the same flag. A default-constructed token is INERT: it never signals and
/// every poll is a single null-pointer test, which is what keeps the
/// batch/CLI paths at zero cost. CancellationToken::make() returns an armed
/// token.
///
/// Thread contract: request_cancel() and set_deadline()/clear_deadline() may
/// race polls from any number of threads (all state is atomic). Deadline
/// re-arming is single-writer by design — only the session thread that owns
/// the request sets it; the server's drain path only ever cancels.
class CancellationToken {
 public:
  CancellationToken() = default;  ///< inert: never stops anything

  /// An armed token (no deadline yet, not cancelled).
  [[nodiscard]] static CancellationToken make() {
    CancellationToken t;
    t.state_ = std::make_shared<State>();
    return t;
  }

  /// An armed token that expires `ms` from now.
  [[nodiscard]] static CancellationToken with_deadline_ms(std::int64_t ms) {
    CancellationToken t = make();
    t.set_deadline(Deadline::after_ms(ms));
    return t;
  }

  [[nodiscard]] bool armed() const noexcept { return state_ != nullptr; }

  /// Latches the cancel flag. Irrevocable; no-op on an inert token.
  void request_cancel() noexcept {
    if (state_ != nullptr) state_->cancelled.store(true, std::memory_order_release);
  }

  /// (Re-)arms the deadline — the session does this per request, the same
  /// token carrying the server's drain cancel across requests. No-op inert.
  void set_deadline(Deadline d) noexcept {
    if (state_ != nullptr) state_->deadline_ns.store(d.raw_ns(), std::memory_order_release);
  }

  void clear_deadline() noexcept {
    if (state_ != nullptr) state_->deadline_ns.store(Deadline::kNone, std::memory_order_release);
  }

  /// The poll. kNone for an inert token; cancel wins over an expired deadline
  /// (a drain cancel must read as "cancelled" even if a deadline also passed).
  [[nodiscard]] StopReason stop_reason() const noexcept {
    if (state_ == nullptr) return StopReason::kNone;
    if (state_->cancelled.load(std::memory_order_acquire)) return StopReason::kCancelled;
    const std::int64_t at = state_->deadline_ns.load(std::memory_order_acquire);
    if (at != Deadline::kNone && Deadline::now_ns() >= at) return StopReason::kDeadline;
    return StopReason::kNone;
  }

  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_reason() != StopReason::kNone;
  }

  /// Polls and throws the typed abort. `where` names the split boundary for
  /// the error message ("map task", "merge round 2", "query admission").
  void throw_if_stopped(const char* where) const {
    switch (stop_reason()) {
      case StopReason::kNone:
        return;
      case StopReason::kCancelled:
        throw QueryCancelled(QueryCancelled::Reason::kCancelled,
                             std::string("cancelled at ") + where);
      case StopReason::kDeadline:
        throw QueryCancelled(QueryCancelled::Reason::kDeadline,
                             std::string("deadline expired at ") + where);
    }
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<std::int64_t> deadline_ns{Deadline::kNone};
  };
  std::shared_ptr<State> state_;
};

/// A counting semaphore over a mutex + condition variable. Deliberately
/// boring: exact (no spurious try_acquire failures), no busy-waiting, and the
/// count is observable for metrics. Used by server::SkylineServer to cap
/// concurrent sessions.
class Semaphore {
 public:
  /// Starts with `count` free slots.
  explicit Semaphore(std::size_t count) : count_(count) {}

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  /// Blocks until a slot is free, then takes it.
  void acquire() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return count_ > 0; });
    --count_;
  }

  /// Takes a slot iff one is free right now. Never fails spuriously.
  [[nodiscard]] bool try_acquire() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0) return false;
    --count_;
    return true;
  }

  /// Returns a slot and wakes one waiter.
  void release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++count_;
    }
    cv_.notify_one();
  }

  /// Free slots at this instant (metrics only — stale by the time it's read).
  [[nodiscard]] std::size_t available() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t count_;
};

/// A bounded multi-producer single(or multi)-consumer notification queue —
/// the delivery channel for streaming-subscription deltas (ISSUE 9). Two
/// deliberate policy choices over a plain condition-variable queue:
///
///  * push() NEVER blocks the producer. The producer is the engine's write
///    path; a slow subscriber must not be able to stall apply_batch for every
///    other session. When the queue is full, the OLDEST item is dropped and
///    the queue is latched "lagged" — the consumer learns its replay has a
///    gap and must resynchronise from a fresh snapshot rather than silently
///    continuing from a hole.
///  * close() wakes all poppers; a closed queue still drains its backlog
///    (pop returns items until empty, then nullopt), so a graceful shutdown
///    delivers what was already published.
template <typename T>
class NotifyQueue {
 public:
  /// Holds at most `capacity` (>= 1) undelivered items.
  explicit NotifyQueue(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  NotifyQueue(const NotifyQueue&) = delete;
  NotifyQueue& operator=(const NotifyQueue&) = delete;

  /// Enqueues (dropping the oldest item when full). False iff closed.
  bool push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      if (items_.size() == capacity_) {
        items_.pop_front();
        lagged_ = true;
      }
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  /// Waits up to `timeout_ms` for an item (0 = poll, < 0 = wait forever).
  /// nullopt on timeout, or when the queue is closed AND drained.
  std::optional<T> pop(std::int64_t timeout_ms) {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto ready = [this] { return !items_.empty() || closed_; };
    if (timeout_ms < 0) {
      cv_.wait(lock, ready);
    } else if (!cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), ready)) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;  // closed and drained
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  /// Latches closed and wakes every waiter. Backlog stays poppable.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// True once any item has been dropped for capacity. Latched.
  [[nodiscard]] bool lagged() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return lagged_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
  bool lagged_ = false;
};

/// RAII slot holder: release() exactly once, on destruction, iff the
/// acquisition succeeded. `if (SlotGuard slot{sem}) { serve(); }` is the
/// admission-control idiom.
class SlotGuard {
 public:
  explicit SlotGuard(Semaphore& sem) : sem_(&sem), held_(sem.try_acquire()) {}

  SlotGuard(const SlotGuard&) = delete;
  SlotGuard& operator=(const SlotGuard&) = delete;
  SlotGuard(SlotGuard&& other) noexcept : sem_(other.sem_), held_(other.held_) {
    other.held_ = false;
  }
  SlotGuard& operator=(SlotGuard&&) = delete;

  ~SlotGuard() {
    if (held_) sem_->release();
  }

  [[nodiscard]] explicit operator bool() const noexcept { return held_; }

 private:
  Semaphore* sem_;
  bool held_;
};

}  // namespace mrsky::common
