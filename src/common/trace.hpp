// Structured pipeline tracing — span-level observability for the MapReduce
// engine, the skyline pipeline and the cluster simulator.
//
// A TraceRecorder collects nested spans: named intervals with a category,
// start/end nanoseconds, a (pid, lane) placement and key/value args. Real
// execution records spans on thread lanes (one lane per OS thread, assigned
// on first use); the cluster simulator appends *synthetic* spans with
// explicit lanes and simulated timestamps under its own pid, so one file
// shows both what the process did and what the modelled cluster would do.
//
// Design rules (DESIGN.md decision 10):
// * Zero overhead when disabled. Everything is driven through ScopedSpan,
//   which holds a TraceRecorder pointer that is null when tracing is off —
//   the disabled path is one pointer test per span site, no allocation, no
//   lock, no time read.
// * Thread-safe when enabled. All recorder state is guarded by one mutex;
//   spans are begun/ended at task granularity (not per record), so the lock
//   is uncontended in practice and the recorder is TSan-clean under the
//   parallel shuffle.
// * Well-nested per thread. begin/end pairs on one thread must nest (RAII
//   enforces this); the parent of a new span is the innermost span still
//   open on the same thread. Cross-thread children (a worker task inside a
//   driver-side job span) are roots of their own lane — Chrome trace
//   viewers nest by time containment per lane anyway.
//
// Export is Chrome trace-event JSON ("X" complete events plus process/thread
// name metadata), loadable in Perfetto or chrome://tracing.
#pragma once

#include <concepts>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/timer.hpp"

namespace mrsky::common {

/// One key/value annotation on a span. Numeric args remember their decimal
/// rendering and are emitted unquoted in JSON.
struct TraceArg {
  std::string key;
  std::string value;
  bool numeric = false;
};

/// Process ids in the exported trace: real execution vs simulated cluster.
inline constexpr std::uint32_t kTracePidEngine = 1;
inline constexpr std::uint32_t kTracePidSimulator = 2;

/// Parent id of root spans (span ids are 1-based).
inline constexpr std::uint64_t kTraceNoParent = 0;

struct TraceSpan {
  std::uint64_t id = 0;                  ///< 1-based, creation order
  std::uint64_t parent = kTraceNoParent; ///< innermost open span on this lane
  std::string name;
  std::string category;
  std::int64_t start_ns = 0;             ///< recorder-epoch-relative
  std::int64_t end_ns = 0;
  std::uint32_t pid = kTracePidEngine;
  std::uint32_t lane = 0;                ///< tid in the exported trace
  std::vector<TraceArg> args;

  [[nodiscard]] const TraceArg* find_arg(std::string_view key) const noexcept;
  /// Convenience: numeric arg value, or `fallback` when absent/non-numeric.
  [[nodiscard]] std::int64_t arg_int(std::string_view key,
                                     std::int64_t fallback = -1) const noexcept;
};

class TraceRecorder {
 public:
  TraceRecorder() = default;

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Opens a span on the calling thread's lane, parented to the innermost
  /// span still open on that thread. Returns the span id.
  std::uint64_t begin_span(std::string_view name, std::string_view category);

  /// Closes span `id` (must be the innermost open span of the calling
  /// thread — RAII via ScopedSpan guarantees it).
  void end_span(std::uint64_t id);

  void add_arg(std::uint64_t id, std::string_view key, std::string_view value);
  void add_arg_int(std::uint64_t id, std::string_view key, std::int64_t value);

  /// Appends a synthetic span with explicit placement and timestamps (the
  /// cluster simulator's scheduled timeline). Returns its id; args can be
  /// attached afterwards with add_arg*.
  std::uint64_t add_span(std::string_view name, std::string_view category,
                         std::uint32_t pid, std::uint32_t lane, std::int64_t start_ns,
                         std::int64_t end_ns);

  /// Names a lane in the exported trace (thread_name metadata).
  void set_lane_name(std::uint32_t pid, std::uint32_t lane, std::string_view name);

  /// Nanoseconds since this recorder was constructed (the span clock).
  [[nodiscard]] std::int64_t now_ns() const noexcept { return epoch_.elapsed_ns(); }

  /// Snapshot of all spans in creation order (ids are 1..spans().size()).
  [[nodiscard]] std::vector<TraceSpan> spans() const;

  /// Chrome trace-event JSON (object form with "traceEvents").
  [[nodiscard]] std::string to_chrome_json() const;

  /// Writes to_chrome_json() to `path`; throws mrsky::RuntimeError on I/O
  /// failure.
  void write_chrome_json(const std::string& path) const;

 private:
  struct ThreadState {
    std::uint32_t lane = 0;
    std::vector<std::uint64_t> open;  ///< stack of span ids open on the thread
  };

  ThreadState& state_locked(std::thread::id tid);

  mutable std::mutex mutex_;
  Timer epoch_;
  std::vector<TraceSpan> spans_;
  std::map<std::thread::id, ThreadState> threads_;
  std::uint32_t next_lane_ = 0;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string> lane_names_;
};

/// RAII span: opens on construction when `recorder` is non-null, closes on
/// destruction. The null-recorder path does nothing — this is the one object
/// instrumentation sites create unconditionally.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(TraceRecorder* recorder, std::string_view name, std::string_view category)
      : recorder_(recorder) {
    if (recorder_ != nullptr) id_ = recorder_->begin_span(name, category);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& other) noexcept : recorder_(other.recorder_), id_(other.id_) {
    other.recorder_ = nullptr;
  }
  ScopedSpan& operator=(ScopedSpan&&) = delete;

  ~ScopedSpan() {
    if (recorder_ != nullptr) recorder_->end_span(id_);
  }

  void arg(std::string_view key, std::string_view value) {
    if (recorder_ != nullptr) recorder_->add_arg(id_, key, value);
  }
  template <std::integral T>
  void arg(std::string_view key, T value) {
    if (recorder_ != nullptr) recorder_->add_arg_int(id_, key, static_cast<std::int64_t>(value));
  }

  [[nodiscard]] bool enabled() const noexcept { return recorder_ != nullptr; }

 private:
  TraceRecorder* recorder_ = nullptr;
  std::uint64_t id_ = 0;
};

}  // namespace mrsky::common
