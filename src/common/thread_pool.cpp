#include "src/common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "src/common/error.hpp"

namespace mrsky::common {

ThreadPool::ThreadPool(std::size_t num_threads) {
  MRSKY_REQUIRE(num_threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // Chunked dynamic scheduling: workers pull the next index atomically. Every
  // lane is joined before returning — even on failure — because `fn` is only
  // borrowed from the caller; a lane must never outlive this call. When one
  // index throws, the remaining lanes stop picking up new indices and exactly
  // the first exception (in lane order) is rethrown after all lanes settle.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto failed = std::make_shared<std::atomic<bool>>(false);
  const std::size_t lanes = std::min(count, workers_.size());
  std::vector<std::future<void>> futures;
  futures.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    futures.push_back(submit([next, failed, count, &fn] {
      for (;;) {
        if (failed->load(std::memory_order_relaxed)) return;
        const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          fn(i);
        } catch (...) {
          failed->store(true, std::memory_order_relaxed);
          throw;
        }
      }
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

std::size_t ThreadPool::default_concurrency() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace mrsky::common
