#include "src/common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "src/common/error.hpp"

namespace mrsky::common {

ThreadPool::ThreadPool(std::size_t num_threads) {
  MRSKY_REQUIRE(num_threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // Chunked dynamic scheduling: workers pull the next index atomically.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t lanes = std::min(count, workers_.size());
  std::vector<std::future<void>> futures;
  futures.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    futures.push_back(submit([next, count, &fn] {
      for (;;) {
        const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        fn(i);
      }
    }));
  }
  for (auto& f : futures) f.get();  // propagate exceptions
}

std::size_t ThreadPool::default_concurrency() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace mrsky::common
