// Minimal JSON string escaping shared by every hand-rolled writer in the
// library (metrics_json, the trace exporter). One implementation so hostile
// names — datasets, partitions, job names containing quotes, backslashes or
// control bytes — serialise identically everywhere.
#pragma once

#include <string>
#include <string_view>

namespace mrsky::common {

/// Escapes `s` for embedding inside a double-quoted JSON string: `"`,`\`,
/// the usual short escapes (\b \f \n \r \t) and every other control byte
/// below 0x20 as \u00XX. Bytes >= 0x20 pass through untouched (UTF-8 safe).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace mrsky::common
