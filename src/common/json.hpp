// Minimal JSON support shared by every hand-rolled writer and reader in the
// library.
//
// Writing: json_escape — one implementation so hostile names (datasets,
// partitions, job names containing quotes, backslashes or control bytes)
// serialise identically everywhere (metrics_json, the trace exporter, the
// server's wire protocol).
//
// Reading: JsonValue::parse — a small recursive-descent parser for the
// skyline server's JSON query form. It covers the whole JSON grammar (RFC
// 8259: null/bool/number/string/array/object, \uXXXX escapes incl. surrogate
// pairs) but stays deliberately tiny: strict single-document parsing, doubles
// for every number, std::map for objects. Errors throw mrsky::InvalidArgument
// with a byte offset.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace mrsky::common {

/// Escapes `s` for embedding inside a double-quoted JSON string: `"`,`\`,
/// the usual short escapes (\b \f \n \r \t) and every other control byte
/// below 0x20 as \u00XX. Bytes >= 0x20 pass through untouched (UTF-8 safe).
[[nodiscard]] std::string json_escape(std::string_view s);

/// One parsed JSON document node.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : value_(nullptr) {}
  explicit JsonValue(std::nullptr_t) : value_(nullptr) {}
  explicit JsonValue(bool b) : value_(b) {}
  explicit JsonValue(double d) : value_(d) {}
  explicit JsonValue(std::string s) : value_(std::move(s)) {}
  explicit JsonValue(Array a) : value_(std::move(a)) {}
  explicit JsonValue(Object o) : value_(std::move(o)) {}

  /// Parses exactly one JSON document (trailing non-whitespace is an error).
  /// Throws mrsky::InvalidArgument with a byte offset on malformed input.
  [[nodiscard]] static JsonValue parse(std::string_view text);

  [[nodiscard]] bool is_null() const noexcept { return holds<std::nullptr_t>(); }
  [[nodiscard]] bool is_bool() const noexcept { return holds<bool>(); }
  [[nodiscard]] bool is_number() const noexcept { return holds<double>(); }
  [[nodiscard]] bool is_string() const noexcept { return holds<std::string>(); }
  [[nodiscard]] bool is_array() const noexcept { return holds<Array>(); }
  [[nodiscard]] bool is_object() const noexcept { return holds<Object>(); }

  /// Checked accessors: throw mrsky::InvalidArgument on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; null when this is not an object or has no `key`.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

 private:
  template <typename T>
  [[nodiscard]] bool holds() const noexcept {
    return std::holds_alternative<T>(value_);
  }

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

}  // namespace mrsky::common
