// Deterministic, splittable pseudo-random number generation.
//
// Experiments must be reproducible across machines and across runs, so the
// library never touches std::random_device or global state: every component
// that needs randomness takes an explicit Rng (seeded xoshiro256**) or a
// seed. SplitMix64 is used to expand a single user seed into well-distributed
// stream seeds, following the xoshiro authors' recommendation.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace mrsky::common {

/// SplitMix64: tiny, statistically strong seed expander (Steele et al. 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna 2018) with a std::uniform-compatible
/// interface plus convenience helpers for the distributions this library
/// actually uses. Copyable and cheap; pass by value to fork a stream.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d2c5680u) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Unbiased via rejection (Lemire-style bound).
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept;

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

  /// Exponential with given rate lambda (> 0).
  double exponential(double lambda) noexcept;

  /// Derive an independent child stream; deterministic in (this state, salt).
  Rng split(std::uint64_t salt) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace mrsky::common
