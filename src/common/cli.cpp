#include "src/common/cli.hpp"

#include <charconv>

#include "src/common/error.hpp"

namespace mrsky::common {

namespace {

bool looks_like_flag(const std::string& s) { return s.rfind("--", 0) == 0 && s.size() > 2; }

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
  MRSKY_REQUIRE(argc >= 1, "argc must include the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    MRSKY_REQUIRE(looks_like_flag(token), "expected --flag, got: " + token);
    std::string name = token.substr(2);
    // `--name=value` form.
    if (auto eq = name.find('='); eq != std::string::npos) {
      values_[name.substr(0, eq)] = name.substr(eq + 1);
      continue;
    }
    // `--name value` form, unless the next token is another flag (boolean).
    if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      values_[name] = argv[++i];
    } else {
      values_[name] = "";
    }
  }
}

bool CliArgs::has(const std::string& name) const { return values_.contains(name); }

std::string CliArgs::get_string(const std::string& name, const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::int64_t out = 0;
  const auto& s = it->second;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  MRSKY_REQUIRE(ec == std::errc() && ptr == s.data() + s.size(),
                "flag --" + name + " expects an integer, got: " + s);
  return out;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    MRSKY_REQUIRE(pos == it->second.size(), "trailing characters");
    return v;
  } catch (const std::exception&) {
    MRSKY_FAIL("flag --" + name + " expects a number, got: " + it->second);
  }
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  MRSKY_FAIL("flag --" + name + " expects a boolean, got: " + v);
}

std::vector<std::int64_t> CliArgs::get_int_list(const std::string& name,
                                                std::vector<std::int64_t> fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<std::int64_t> out;
  const std::string& s = it->second;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    const std::string piece = s.substr(start, comma - start);
    MRSKY_REQUIRE(!piece.empty(), "empty element in list flag --" + name);
    std::int64_t v = 0;
    auto [ptr, ec] = std::from_chars(piece.data(), piece.data() + piece.size(), v);
    MRSKY_REQUIRE(ec == std::errc() && ptr == piece.data() + piece.size(),
                  "flag --" + name + " expects integers, got: " + piece);
    out.push_back(v);
    start = comma + 1;
  }
  return out;
}

}  // namespace mrsky::common
