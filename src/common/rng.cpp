#include "src/common/rng.hpp"

#include <cmath>

namespace mrsky::common {

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Rejection sampling on the top bits to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() noexcept {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  have_cached_normal_ = true;
  return u * factor;
}

double Rng::exponential(double lambda) noexcept {
  // Inverse-CDF; uniform() < 1 so the log argument is in (0, 1].
  return -std::log(1.0 - uniform()) / lambda;
}

Rng Rng::split(std::uint64_t salt) noexcept {
  SplitMix64 sm(((*this)()) ^ (salt * 0x9e3779b97f4a7c15ULL));
  Rng child(sm.next());
  return child;
}

}  // namespace mrsky::common
