// Minimal `--flag value` command-line parsing for benches and examples.
//
// Deliberately tiny: flags are `--name value` or boolean `--name`; anything
// unrecognised is an error so typos in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mrsky::common {

class CliArgs {
 public:
  /// Parses argv. Throws mrsky::InvalidArgument on malformed input.
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name, const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated integer list, e.g. `--dims 2,4,6,8,10`.
  [[nodiscard]] std::vector<std::int64_t> get_int_list(const std::string& name,
                                                       std::vector<std::int64_t> fallback) const;

  [[nodiscard]] const std::string& program_name() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;  // boolean flags map to ""
};

}  // namespace mrsky::common
