// Fixed-width ASCII table rendering for the benchmark harness.
//
// Every figure/table bench prints its results through this class so the
// output format is uniform and greppable (EXPERIMENTS.md is assembled from
// these tables verbatim).
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace mrsky::common {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt(std::size_t v);
  static std::string fmt(int v);

  /// Render with column alignment, a header rule, and optional title.
  void print(std::ostream& os, const std::string& title = "") const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }
  [[nodiscard]] const std::vector<std::vector<std::string>>& data() const noexcept {
    return rows_;
  }

  /// Render as comma-separated values (header + rows) for machine use.
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mrsky::common
