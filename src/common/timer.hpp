// Wall-clock timing utilities used by the benchmark harness and by the
// MapReduce engine's per-task metrics.
#pragma once

#include <chrono>
#include <cstdint>

namespace mrsky::common {

/// Monotonic stopwatch. Construction starts it; restart() resets.
class Timer {
 public:
  using Clock = std::chrono::steady_clock;

  Timer() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  /// Elapsed nanoseconds since construction / last restart.
  [[nodiscard]] std::int64_t elapsed_ns() const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-6;
  }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  Clock::time_point start_;
};

}  // namespace mrsky::common
