// Leveled stderr logging. Off by default above WARN so library code can log
// diagnostics without polluting benchmark output; the level is process-wide.
#pragma once

#include <sstream>
#include <string>

namespace mrsky::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the process-wide minimum level that will be emitted.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Writes `message` to stderr if `level` passes the filter. Thread-safe.
void log(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace mrsky::common

#define MRSKY_LOG_DEBUG ::mrsky::common::detail::LogStream(::mrsky::common::LogLevel::kDebug)
#define MRSKY_LOG_INFO ::mrsky::common::detail::LogStream(::mrsky::common::LogLevel::kInfo)
#define MRSKY_LOG_WARN ::mrsky::common::detail::LogStream(::mrsky::common::LogLevel::kWarn)
#define MRSKY_LOG_ERROR ::mrsky::common::detail::LogStream(::mrsky::common::LogLevel::kError)
