// A fixed-size worker pool with a shared task queue.
//
// The MapReduce engine uses this to execute map/reduce tasks when the caller
// asks for real shared-memory parallelism (ExecutionMode::kThreads); the
// deterministic cluster *simulation* never depends on it, so results are
// identical whether or not the host has multiple cores.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace mrsky::common {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1 required).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains the queue, joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tasks_.emplace([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run `fn(i)` for i in [0, count) across the pool and wait for completion.
  /// If any invocation throws, the remaining indices are abandoned, every lane
  /// is still joined, and exactly one exception (the first observed) is
  /// rethrown — the pool stays fully usable afterwards.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// A sensible default worker count for this host (>= 1).
  static std::size_t default_concurrency() noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace mrsky::common
