#include "src/common/json.hpp"

namespace mrsky::common {

std::string json_escape(std::string_view s) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: {
        const auto b = static_cast<unsigned char>(c);
        if (b < 0x20) {
          out += "\\u00";
          out += kHex[b >> 4];
          out += kHex[b & 0xf];
        } else {
          out += c;
        }
      }
    }
  }
  return out;
}

}  // namespace mrsky::common
