#include "src/common/json.hpp"

#include <charconv>
#include <cstdint>

#include "src/common/error.hpp"

namespace mrsky::common {

std::string json_escape(std::string_view s) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: {
        const auto b = static_cast<unsigned char>(c);
        if (b < 0x20) {
          out += "\\u00";
          out += kHex[b >> 4];
          out += kHex[b & 0xf];
        } else {
          out += c;
        }
      }
    }
  }
  return out;
}

namespace {

/// Strict single-pass recursive-descent JSON parser. Positions are byte
/// offsets into the original document, reported on every error.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("JSON parse error at byte " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) {
      throw InvalidArgument("JSON parse error at byte " + std::to_string(pos_) +
                            ": unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    // A hostile wire client must not be able to blow the server's stack with
    // ten thousand '['s — bound nesting well above any legitimate query.
    if (depth > 64) fail("nesting deeper than 64 levels");
    switch (peek()) {
      case 'n':
        if (!consume_literal("null")) fail("bad literal (expected null)");
        return JsonValue(nullptr);
      case 't':
        if (!consume_literal("true")) fail("bad literal (expected true)");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal (expected false)");
        return JsonValue(false);
      case '"': return JsonValue(parse_string());
      case '[': return parse_array(depth);
      case '{': return parse_object(depth);
      default: return parse_number();
    }
  }

  JsonValue parse_number() {
    // RFC 8259 number grammar, checked explicitly: from_chars is laxer than
    // JSON (it accepts "01", "1.", ".5"), and a lenient parse here would let
    // two clients disagree about what a request means.
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    const std::size_t int_start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    const std::size_t int_digits = pos_ - int_start;
    const bool leading_zero = int_digits > 1 && text_[int_start] == '0';
    if (int_digits == 0 || leading_zero) {
      pos_ = start;
      fail("malformed number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      const std::size_t frac_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      if (pos_ == frac_start) {
        pos_ = start;
        fail("malformed number (no digits after '.')");
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      const std::size_t exp_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      if (pos_ == exp_start) {
        pos_ = start;
        fail("malformed number (no digits in exponent)");
      }
    }
    double value = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || ptr != last) {
      pos_ = start;
      fail("malformed number");
    }
    return JsonValue(value);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control byte in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_codepoint(out); break;
        default: fail(std::string("unknown escape '\\") + esc + "'");
      }
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
      }
    }
    return value;
  }

  /// Decodes \uXXXX (with surrogate pairs) into UTF-8.
  void append_codepoint(std::string& out) {
    std::uint32_t cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (!consume_literal("\\u")) fail("lone high surrogate");
      const std::uint32_t low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("lone low surrogate");
    }
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  JsonValue parse_array(std::size_t depth) {
    expect('[');
    JsonValue::Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(items));
    }
    for (;;) {
      skip_ws();
      items.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue(std::move(items));
      }
      fail("expected ',' or ']' in array");
    }
  }

  JsonValue parse_object(std::size_t depth) {
    expect('{');
    JsonValue::Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      members.insert_or_assign(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue(std::move(members));
      }
      fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) { return Parser(text).parse_document(); }

bool JsonValue::as_bool() const {
  MRSKY_REQUIRE(is_bool(), "JSON value is not a boolean");
  return std::get<bool>(value_);
}

double JsonValue::as_number() const {
  MRSKY_REQUIRE(is_number(), "JSON value is not a number");
  return std::get<double>(value_);
}

const std::string& JsonValue::as_string() const {
  MRSKY_REQUIRE(is_string(), "JSON value is not a string");
  return std::get<std::string>(value_);
}

const JsonValue::Array& JsonValue::as_array() const {
  MRSKY_REQUIRE(is_array(), "JSON value is not an array");
  return std::get<Array>(value_);
}

const JsonValue::Object& JsonValue::as_object() const {
  MRSKY_REQUIRE(is_object(), "JSON value is not an object");
  return std::get<Object>(value_);
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto& object = std::get<Object>(value_);
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

}  // namespace mrsky::common
