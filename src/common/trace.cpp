#include "src/common/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/error.hpp"
#include "src/common/json.hpp"

namespace mrsky::common {

const TraceArg* TraceSpan::find_arg(std::string_view key) const noexcept {
  for (const TraceArg& a : args) {
    if (a.key == key) return &a;
  }
  return nullptr;
}

std::int64_t TraceSpan::arg_int(std::string_view key, std::int64_t fallback) const noexcept {
  const TraceArg* a = find_arg(key);
  if (a == nullptr || !a->numeric) return fallback;
  std::int64_t out = fallback;
  if (std::sscanf(a->value.c_str(), "%" SCNd64, &out) != 1) return fallback;
  return out;
}

TraceRecorder::ThreadState& TraceRecorder::state_locked(std::thread::id tid) {
  auto [it, inserted] = threads_.try_emplace(tid);
  if (inserted) it->second.lane = next_lane_++;
  return it->second;
}

std::uint64_t TraceRecorder::begin_span(std::string_view name, std::string_view category) {
  const std::int64_t start = now_ns();
  std::lock_guard<std::mutex> lock(mutex_);
  ThreadState& state = state_locked(std::this_thread::get_id());
  TraceSpan span;
  span.id = spans_.size() + 1;
  span.parent = state.open.empty() ? kTraceNoParent : state.open.back();
  span.name = name;
  span.category = category;
  span.start_ns = start;
  span.end_ns = start;  // patched by end_span; a crash leaves a zero-length span
  span.pid = kTracePidEngine;
  span.lane = state.lane;
  state.open.push_back(span.id);
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void TraceRecorder::end_span(std::uint64_t id) {
  const std::int64_t end = now_ns();
  std::lock_guard<std::mutex> lock(mutex_);
  MRSKY_REQUIRE(id >= 1 && id <= spans_.size(), "end_span: unknown span id");
  ThreadState& state = state_locked(std::this_thread::get_id());
  MRSKY_REQUIRE(!state.open.empty() && state.open.back() == id,
                "end_span: spans must close innermost-first on their own thread");
  state.open.pop_back();
  spans_[id - 1].end_ns = end;
}

void TraceRecorder::add_arg(std::uint64_t id, std::string_view key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mutex_);
  MRSKY_REQUIRE(id >= 1 && id <= spans_.size(), "add_arg: unknown span id");
  spans_[id - 1].args.push_back(TraceArg{std::string(key), std::string(value), false});
}

void TraceRecorder::add_arg_int(std::uint64_t id, std::string_view key, std::int64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  MRSKY_REQUIRE(id >= 1 && id <= spans_.size(), "add_arg: unknown span id");
  spans_[id - 1].args.push_back(TraceArg{std::string(key), std::to_string(value), true});
}

std::uint64_t TraceRecorder::add_span(std::string_view name, std::string_view category,
                                      std::uint32_t pid, std::uint32_t lane,
                                      std::int64_t start_ns, std::int64_t end_ns) {
  MRSKY_REQUIRE(end_ns >= start_ns, "add_span: end before start");
  std::lock_guard<std::mutex> lock(mutex_);
  TraceSpan span;
  span.id = spans_.size() + 1;
  span.name = name;
  span.category = category;
  span.start_ns = start_ns;
  span.end_ns = end_ns;
  span.pid = pid;
  span.lane = lane;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void TraceRecorder::set_lane_name(std::uint32_t pid, std::uint32_t lane,
                                  std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  lane_names_[{pid, lane}] = std::string(name);
}

std::vector<TraceSpan> TraceRecorder::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::string TraceRecorder::to_chrome_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) os << ",";
    first = false;
  };

  // Process/thread name metadata. Only pids that actually appear are named.
  bool engine_seen = false;
  bool simulator_seen = false;
  for (const TraceSpan& s : spans_) {
    engine_seen |= s.pid == kTracePidEngine;
    simulator_seen |= s.pid == kTracePidSimulator;
  }
  if (engine_seen) {
    comma();
    os << "{\"ph\":\"M\",\"pid\":" << kTracePidEngine
       << ",\"name\":\"process_name\",\"args\":{\"name\":\"engine\"}}";
  }
  if (simulator_seen) {
    comma();
    os << "{\"ph\":\"M\",\"pid\":" << kTracePidSimulator
       << ",\"name\":\"process_name\",\"args\":{\"name\":\"simulated cluster\"}}";
  }
  for (const auto& [key, name] : lane_names_) {
    comma();
    os << "{\"ph\":\"M\",\"pid\":" << key.first << ",\"tid\":" << key.second
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
  }

  // Spans as "X" complete events; timestamps are microseconds with
  // nanosecond fraction.
  char ts[64];
  for (const TraceSpan& s : spans_) {
    comma();
    os << "{\"ph\":\"X\",\"pid\":" << s.pid << ",\"tid\":" << s.lane << ",\"name\":\""
       << json_escape(s.name) << "\",\"cat\":\"" << json_escape(s.category) << "\"";
    std::snprintf(ts, sizeof(ts), "%.3f", static_cast<double>(s.start_ns) / 1000.0);
    os << ",\"ts\":" << ts;
    std::snprintf(ts, sizeof(ts), "%.3f",
                  static_cast<double>(std::max<std::int64_t>(0, s.end_ns - s.start_ns)) / 1000.0);
    os << ",\"dur\":" << ts;
    if (!s.args.empty()) {
      os << ",\"args\":{";
      for (std::size_t i = 0; i < s.args.size(); ++i) {
        if (i > 0) os << ",";
        os << "\"" << json_escape(s.args[i].key) << "\":";
        if (s.args[i].numeric) {
          os << s.args[i].value;
        } else {
          os << "\"" << json_escape(s.args[i].value) << "\"";
        }
      }
      os << "}";
    }
    os << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

void TraceRecorder::write_chrome_json(const std::string& path) const {
  std::ofstream file(path);
  if (!file) MRSKY_FAIL("cannot open trace output file " + path);
  file << to_chrome_json() << "\n";
  if (!file) MRSKY_FAIL("failed writing trace output file " + path);
}

}  // namespace mrsky::common
