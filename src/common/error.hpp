// Error handling primitives for the mrsky library.
//
// The library follows a "wide contract at the API boundary, narrow contract
// internally" policy (C++ Core Guidelines I.5/I.6): public entry points
// validate their inputs with MRSKY_REQUIRE (throws mrsky::InvalidArgument),
// while internal invariants are checked with MRSKY_ASSERT, which is compiled
// out in release builds.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace mrsky {

/// Thrown when a public API precondition is violated.
class InvalidArgument : public std::invalid_argument {
 public:
  explicit InvalidArgument(const std::string& what) : std::invalid_argument(what) {}
};

/// Thrown when a runtime operation cannot complete (I/O failure, job abort).
class RuntimeError : public std::runtime_error {
 public:
  explicit RuntimeError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a query (or the pipeline running it) is stopped cooperatively —
/// the session's CancellationToken was cancelled or its deadline expired. This
/// is a *typed* abort, not a failure: callers distinguish it from RuntimeError
/// so cancelled work is accounted (metrics) instead of reported as an error,
/// and the engine guarantees a cancelled query never poisons the result cache
/// or publishes a snapshot (DESIGN.md decision 13).
class QueryCancelled : public std::runtime_error {
 public:
  enum class Reason {
    kCancelled,  ///< CancellationToken::request_cancel() (drain, client gone)
    kDeadline,   ///< the token's deadline expired
  };

  QueryCancelled(Reason reason, const std::string& what)
      : std::runtime_error(what), reason_(reason) {}

  [[nodiscard]] Reason reason() const noexcept { return reason_; }
  [[nodiscard]] bool deadline_expired() const noexcept { return reason_ == Reason::kDeadline; }

 private:
  Reason reason_;
};

namespace detail {

[[noreturn]] inline void throw_invalid_argument(const char* expr, const std::string& msg,
                                                const std::source_location loc) {
  throw InvalidArgument(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) +
                        ": requirement `" + expr + "` failed: " + msg);
}

[[noreturn]] inline void throw_runtime_error(const std::string& msg,
                                             const std::source_location loc) {
  throw RuntimeError(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) + ": " + msg);
}

}  // namespace detail

}  // namespace mrsky

/// Validate a public-API precondition; throws mrsky::InvalidArgument on failure.
#define MRSKY_REQUIRE(expr, msg)                                                       \
  do {                                                                                 \
    if (!(expr)) {                                                                     \
      ::mrsky::detail::throw_invalid_argument(#expr, (msg), std::source_location::current()); \
    }                                                                                  \
  } while (false)

/// Signal an unrecoverable runtime failure; throws mrsky::RuntimeError.
#define MRSKY_FAIL(msg) ::mrsky::detail::throw_runtime_error((msg), std::source_location::current())

/// Internal invariant check; active only in debug builds.
#ifndef NDEBUG
#define MRSKY_ASSERT(expr, msg) MRSKY_REQUIRE(expr, msg)
#else
#define MRSKY_ASSERT(expr, msg) static_cast<void>(0)
#endif
