#include "src/common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "src/common/error.hpp"

namespace mrsky::common {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MRSKY_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  MRSKY_REQUIRE(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt(std::size_t v) { return std::to_string(v); }
std::string Table::fmt(int v) { return std::to_string(v); }

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  if (!title.empty()) os << "== " << title << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    os << " |\n";
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ",";
      os << cells[c];
    }
    os << "\n";
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace mrsky::common
