#include "src/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"

namespace mrsky::common {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> xs) noexcept {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.count() == 0 ? 0.0 : s.mean();
}

double stddev(std::span<const double> xs) noexcept {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double percentile(std::vector<double> xs, double p) {
  MRSKY_REQUIRE(!xs.empty(), "percentile of empty series");
  MRSKY_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double coefficient_of_variation(std::span<const double> xs) noexcept {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean() == 0.0 ? 0.0 : s.stddev() / s.mean();
}

double pearson_correlation(std::span<const double> xs, std::span<const double> ys) {
  MRSKY_REQUIRE(xs.size() == ys.size(), "correlation needs equal-length series");
  MRSKY_REQUIRE(xs.size() >= 2, "correlation needs at least two samples");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace mrsky::common
