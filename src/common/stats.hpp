// Small descriptive-statistics helpers used by partition diagnostics and the
// benchmark harness (load-balance coefficients, percentiles, correlations).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mrsky::common {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

[[nodiscard]] double mean(std::span<const double> xs) noexcept;
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Linear-interpolated percentile, p in [0, 100]. Throws on empty input.
[[nodiscard]] double percentile(std::vector<double> xs, double p);

/// Coefficient of variation (stddev / mean); 0 when the mean is 0.
[[nodiscard]] double coefficient_of_variation(std::span<const double> xs) noexcept;

/// Pearson correlation of two equal-length series. Throws on size mismatch
/// or fewer than two samples; returns 0 when either series is constant.
[[nodiscard]] double pearson_correlation(std::span<const double> xs, std::span<const double> ys);

}  // namespace mrsky::common
