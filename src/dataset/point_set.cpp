#include "src/dataset/point_set.hpp"

#include <algorithm>
#include <limits>

#include "src/common/error.hpp"

namespace mrsky::data {

PointSet::PointSet(std::size_t dim) : dim_(dim) {
  MRSKY_REQUIRE(dim >= 1, "points need at least one attribute");
}

PointSet::PointSet(std::size_t dim, std::vector<double> values) : PointSet(dim) {
  MRSKY_REQUIRE(values.size() % dim == 0, "value count must be a multiple of dim");
  values_ = std::move(values);
  const std::size_t n = values_.size() / dim;
  ids_.resize(n);
  for (std::size_t i = 0; i < n; ++i) ids_[i] = static_cast<PointId>(i);
}

PointSet::PointSet(std::size_t dim, std::vector<double> values, std::vector<PointId> ids)
    : PointSet(dim) {
  MRSKY_REQUIRE(values.size() == ids.size() * dim, "values/ids size mismatch");
  values_ = std::move(values);
  ids_ = std::move(ids);
}

void PointSet::push_back(std::span<const double> coords, PointId id) {
  MRSKY_REQUIRE(coords.size() == dim_, "coordinate count must equal dim");
  values_.insert(values_.end(), coords.begin(), coords.end());
  ids_.push_back(id);
}

void PointSet::push_back(std::span<const double> coords) {
  push_back(coords, static_cast<PointId>(size()));
}

void PointSet::append_rows(std::span<const double> values, std::span<const PointId> ids) {
  MRSKY_REQUIRE(values.size() == ids.size() * dim_, "values/ids size mismatch");
  values_.insert(values_.end(), values.begin(), values.end());
  ids_.insert(ids_.end(), ids.begin(), ids.end());
}

void PointSet::append_rows(std::span<const double> values) {
  MRSKY_REQUIRE(values.size() % dim_ == 0, "value count must be a multiple of dim");
  const std::size_t n = values.size() / dim_;
  PointId next = static_cast<PointId>(size());
  values_.insert(values_.end(), values.begin(), values.end());
  ids_.reserve(ids_.size() + n);
  for (std::size_t i = 0; i < n; ++i) ids_.push_back(next++);
}

void PointSet::reserve(std::size_t n) {
  values_.reserve(n * dim_);
  ids_.reserve(n);
}

void PointSet::clear() noexcept {
  values_.clear();
  ids_.clear();
}

PointSet PointSet::select(std::span<const std::size_t> indices) const {
  // Bulk path: size the output once and copy whole rows, instead of paying
  // push_back's per-row dim check and incremental growth. Every skyline
  // algorithm funnels its result construction through here.
  PointSet out(dim_);
  out.values_.resize(indices.size() * dim_);
  out.ids_.resize(indices.size());
  double* dst = out.values_.data();
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const std::size_t i = indices[k];
    MRSKY_REQUIRE(i < size(), "select index out of range");
    std::copy_n(values_.data() + i * dim_, dim_, dst + k * dim_);
    out.ids_[k] = ids_[i];
  }
  return out;
}

std::vector<double> PointSet::attribute_min() const {
  MRSKY_REQUIRE(!empty(), "attribute_min of empty set");
  std::vector<double> mins(dim_, std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < size(); ++i) {
    for (std::size_t a = 0; a < dim_; ++a) mins[a] = std::min(mins[a], at(i, a));
  }
  return mins;
}

std::vector<double> PointSet::attribute_max() const {
  MRSKY_REQUIRE(!empty(), "attribute_max of empty set");
  std::vector<double> maxs(dim_, -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < size(); ++i) {
    for (std::size_t a = 0; a < dim_; ++a) maxs[a] = std::max(maxs[a], at(i, a));
  }
  return maxs;
}

std::vector<PointId> sorted_ids(const PointSet& ps) {
  std::vector<PointId> ids(ps.ids().begin(), ps.ids().end());
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace mrsky::data
