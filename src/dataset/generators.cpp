#include "src/dataset/generators.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"

namespace mrsky::data {

namespace {

double clamp01(double v) noexcept { return std::clamp(v, 0.0, 1.0); }

}  // namespace

Distribution parse_distribution(const std::string& name) {
  if (name == "independent" || name == "indep" || name == "uniform") {
    return Distribution::kIndependent;
  }
  if (name == "correlated" || name == "corr") return Distribution::kCorrelated;
  if (name == "anticorrelated" || name == "anti" || name == "anticorr") {
    return Distribution::kAnticorrelated;
  }
  if (name == "clustered" || name == "cluster") return Distribution::kClustered;
  MRSKY_FAIL("unknown distribution: " + name);
}

std::string to_string(Distribution d) {
  switch (d) {
    case Distribution::kIndependent: return "independent";
    case Distribution::kCorrelated: return "correlated";
    case Distribution::kAnticorrelated: return "anticorrelated";
    case Distribution::kClustered: return "clustered";
  }
  return "unknown";
}

PointSet generate(Distribution dist, std::size_t n, std::size_t dim, std::uint64_t seed,
                  const GeneratorOptions& options) {
  MRSKY_REQUIRE(dim >= 1, "dimension must be >= 1");
  common::Rng rng(seed);
  switch (dist) {
    case Distribution::kIndependent: return generate_independent(n, dim, rng);
    case Distribution::kCorrelated:
      return generate_correlated(n, dim, rng, options.correlated_spread);
    case Distribution::kAnticorrelated:
      return generate_anticorrelated(n, dim, rng, options.anticorrelated_spread);
    case Distribution::kClustered:
      return generate_clustered(n, dim, rng, options.cluster_count, options.cluster_spread);
  }
  MRSKY_FAIL("unreachable distribution");
}

PointSet generate_independent(std::size_t n, std::size_t dim, common::Rng& rng) {
  std::vector<double> values;
  values.reserve(n * dim);
  for (std::size_t i = 0; i < n * dim; ++i) values.push_back(rng.uniform());
  return PointSet(dim, std::move(values));
}

PointSet generate_correlated(std::size_t n, std::size_t dim, common::Rng& rng, double spread) {
  MRSKY_REQUIRE(spread >= 0.0, "spread must be non-negative");
  // A point sits at position v on the main diagonal with a small Gaussian
  // perturbation per axis, so all attributes move together (high-quality
  // services tend to be good in every dimension).
  std::vector<double> values;
  values.reserve(n * dim);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = rng.uniform();
    for (std::size_t a = 0; a < dim; ++a) values.push_back(clamp01(v + rng.normal(0.0, spread)));
  }
  return PointSet(dim, std::move(values));
}

PointSet generate_anticorrelated(std::size_t n, std::size_t dim, common::Rng& rng,
                                 double plane_spread) {
  MRSKY_REQUIRE(plane_spread >= 0.0, "spread must be non-negative");
  // Börzsönyi-style: pick a plane offset v near 0.5, start at (v, ..., v),
  // then repeatedly transfer mass between random coordinate pairs. The sum
  // stays constant, so points spread along the anti-diagonal hyperplane —
  // being good in one attribute costs you in another.
  std::vector<double> values(dim);
  PointSet out(dim);
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = 0.0;
    do {
      v = rng.normal(0.5, plane_spread);
    } while (v < 0.0 || v > 1.0);
    std::fill(values.begin(), values.end(), v);
    const std::size_t transfers = 2 * dim;
    for (std::size_t t = 0; t < transfers && dim >= 2; ++t) {
      const std::size_t a = static_cast<std::size_t>(rng.uniform_index(dim));
      std::size_t b = static_cast<std::size_t>(rng.uniform_index(dim - 1));
      if (b >= a) ++b;
      // Largest transfer keeping both coordinates inside [0, 1].
      const double max_delta = std::min(values[a], 1.0 - values[b]);
      const double delta = rng.uniform() * max_delta;
      values[a] -= delta;
      values[b] += delta;
    }
    out.push_back(values);
  }
  return out;
}

PointSet generate_clustered(std::size_t n, std::size_t dim, common::Rng& rng,
                            std::size_t clusters, double spread) {
  MRSKY_REQUIRE(clusters >= 1, "need at least one cluster");
  std::vector<double> centres(clusters * dim);
  for (auto& c : centres) c = rng.uniform();
  std::vector<double> values;
  values.reserve(n * dim);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t k = static_cast<std::size_t>(rng.uniform_index(clusters));
    for (std::size_t a = 0; a < dim; ++a) {
      values.push_back(clamp01(centres[k * dim + a] + rng.normal(0.0, spread)));
    }
  }
  return PointSet(dim, std::move(values));
}

}  // namespace mrsky::data
