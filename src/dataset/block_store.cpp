#include "src/dataset/block_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <numeric>

#include "src/common/error.hpp"
#include "src/skyline/dominance_block.hpp"

namespace mrsky::data {

// The whole point of the format: a mapped block's tile region must be exactly
// what the dominance kernels expect.
static_assert(blockfmt::kTileLanes == skyline::kTileWidth,
              "block store tile layout must match the dominance kernel");

namespace {

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Unaligned-safe load from the mapped file.
template <typename T>
[[nodiscard]] T load_pod(const unsigned char* p) noexcept {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

[[noreturn]] void fail_open(const std::string& path, const std::string& what) {
  MRSKY_FAIL("block store " + path + ": " + what);
}

}  // namespace

// ---- Writer ---------------------------------------------------------------

struct BlockStoreWriter::Impl {
  struct FooterEntry {
    std::uint64_t offset = 0;
    std::uint64_t rows = 0;
    std::uint64_t payload_bytes = 0;
    std::uint64_t checksum = 0;
    std::vector<double> min_corner;
    std::vector<double> max_corner;
  };

  std::string path;
  std::ofstream file;
  // Pending rows, row-major, plus their ids.
  std::vector<double> pending_coords;
  std::vector<PointId> pending_ids;
  // Scratch for the tile transpose (reused across blocks).
  std::vector<double> tiles;
  std::vector<std::uint32_t> padded_ids;
  std::vector<FooterEntry> index;
};

BlockStoreWriter::BlockStoreWriter(const std::string& path, std::size_t dim,
                                   std::size_t block_rows)
    : impl_(std::make_unique<Impl>()), dim_(dim), block_rows_(block_rows) {
  MRSKY_REQUIRE(dim >= 1, "block store needs at least one attribute");
  MRSKY_REQUIRE(block_rows >= 1, "blocks must hold at least one row");
  impl_->path = path;
  impl_->file.open(path, std::ios::binary | std::ios::trunc);
  if (!impl_->file) MRSKY_FAIL("cannot open block store for writing: " + path);
  impl_->file.write(blockfmt::kHeaderMagic, sizeof(blockfmt::kHeaderMagic));
  write_pod(impl_->file, blockfmt::kVersion);
  write_pod(impl_->file, static_cast<std::uint64_t>(dim));
  write_pod(impl_->file, static_cast<std::uint64_t>(block_rows));
}

BlockStoreWriter::~BlockStoreWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; callers who care call close() themselves.
  }
}

void BlockStoreWriter::append(PointId id, std::span<const double> coords) {
  MRSKY_REQUIRE(!closed_, "append after close");
  MRSKY_REQUIRE(coords.size() == dim_, "row dimension mismatch");
  impl_->pending_ids.push_back(id);
  impl_->pending_coords.insert(impl_->pending_coords.end(), coords.begin(), coords.end());
  ++total_rows_;
  if (impl_->pending_ids.size() >= block_rows_) flush_block();
}

void BlockStoreWriter::append(const PointSet& ps) {
  MRSKY_REQUIRE(!closed_, "append after close");
  MRSKY_REQUIRE(ps.dim() == dim_, "point set dimension mismatch");
  // Bulk path: fill whole blocks straight from the row-major storage instead
  // of a per-row append (the convert hot path).
  std::size_t row = 0;
  while (row < ps.size()) {
    const std::size_t take =
        std::min(block_rows_ - impl_->pending_ids.size(), ps.size() - row);
    const auto values = ps.raw().subspan(row * dim_, take * dim_);
    const auto ids = ps.ids().subspan(row, take);
    impl_->pending_coords.insert(impl_->pending_coords.end(), values.begin(), values.end());
    impl_->pending_ids.insert(impl_->pending_ids.end(), ids.begin(), ids.end());
    total_rows_ += take;
    row += take;
    if (impl_->pending_ids.size() >= block_rows_) flush_block();
  }
}

void BlockStoreWriter::flush_block() {
  const std::size_t rows = impl_->pending_ids.size();
  if (rows == 0) return;
  auto& file = impl_->file;

  // Transpose row-major pending rows into attribute-major tiles, padding dead
  // lanes with +inf so they die on the first attribute of any dominance scan.
  const std::size_t tiles = blockfmt::tiles_for(rows);
  impl_->tiles.assign(tiles * dim_ * blockfmt::kTileLanes,
                      std::numeric_limits<double>::infinity());
  Impl::FooterEntry entry;
  entry.rows = rows;
  entry.min_corner.assign(dim_, std::numeric_limits<double>::infinity());
  entry.max_corner.assign(dim_, -std::numeric_limits<double>::infinity());
  for (std::size_t r = 0; r < rows; ++r) {
    const double* src = impl_->pending_coords.data() + r * dim_;
    double* tile = impl_->tiles.data() + (r / blockfmt::kTileLanes) * dim_ * blockfmt::kTileLanes;
    const std::size_t lane = r % blockfmt::kTileLanes;
    for (std::size_t a = 0; a < dim_; ++a) {
      const double v = src[a];
      tile[a * blockfmt::kTileLanes + lane] = v;
      entry.min_corner[a] = std::min(entry.min_corner[a], v);
      entry.max_corner[a] = std::max(entry.max_corner[a], v);
    }
  }
  impl_->padded_ids.assign(blockfmt::id_bytes(rows) / sizeof(std::uint32_t), 0);
  std::copy(impl_->pending_ids.begin(), impl_->pending_ids.end(), impl_->padded_ids.begin());

  entry.offset = static_cast<std::uint64_t>(file.tellp());
  entry.payload_bytes = blockfmt::payload_bytes(rows, dim_);
  const std::size_t tile_bytes = blockfmt::tile_bytes(rows, dim_);
  entry.checksum = blockfmt::fnv1a(impl_->tiles.data(), tile_bytes);
  entry.checksum = blockfmt::fnv1a(impl_->padded_ids.data(), blockfmt::id_bytes(rows),
                                   entry.checksum);
  file.write(reinterpret_cast<const char*>(impl_->tiles.data()),
             static_cast<std::streamsize>(tile_bytes));
  file.write(reinterpret_cast<const char*>(impl_->padded_ids.data()),
             static_cast<std::streamsize>(blockfmt::id_bytes(rows)));
  impl_->index.push_back(std::move(entry));

  impl_->pending_coords.clear();
  impl_->pending_ids.clear();
  ++blocks_flushed_;
}

void BlockStoreWriter::close() {
  if (closed_) return;
  flush_block();
  auto& file = impl_->file;
  const auto footer_offset = static_cast<std::uint64_t>(file.tellp());

  // Serialize the footer into a buffer first: the trailer carries the
  // footer's own checksum, so index corruption is a typed error at open.
  std::vector<char> footer;
  auto put = [&footer](const void* data, std::size_t size) {
    const char* bytes = static_cast<const char*>(data);
    footer.insert(footer.end(), bytes, bytes + size);
  };
  const std::uint64_t block_count = impl_->index.size();
  put(&block_count, sizeof(block_count));
  for (const auto& entry : impl_->index) {
    put(&entry.offset, sizeof(entry.offset));
    put(&entry.rows, sizeof(entry.rows));
    put(&entry.payload_bytes, sizeof(entry.payload_bytes));
    put(&entry.checksum, sizeof(entry.checksum));
    put(entry.min_corner.data(), dim_ * sizeof(double));
    put(entry.max_corner.data(), dim_ * sizeof(double));
  }
  const std::uint64_t total = total_rows_;
  put(&total, sizeof(total));

  file.write(footer.data(), static_cast<std::streamsize>(footer.size()));
  write_pod(file, footer_offset);
  write_pod(file, blockfmt::fnv1a(footer.data(), footer.size()));
  file.write(blockfmt::kTrailerMagic, sizeof(blockfmt::kTrailerMagic));
  file.flush();
  if (!file) MRSKY_FAIL("block store write failed on close: " + impl_->path);
  file.close();
  closed_ = true;
}

// ---- Reader ---------------------------------------------------------------

BlockStore::BlockStore(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) fail_open(path, "cannot open file");
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    ::close(fd_);
    fd_ = -1;
    fail_open(path, "cannot stat file");
  }
  file_bytes_ = static_cast<std::uint64_t>(st.st_size);
  if (file_bytes_ < blockfmt::kHeaderBytes + blockfmt::kTrailerBytes) {
    ::close(fd_);
    fd_ = -1;
    fail_open(path, "truncated file (smaller than header + trailer)");
  }
  void* map = ::mmap(nullptr, file_bytes_, PROT_READ, MAP_PRIVATE, fd_, 0);
  if (map == MAP_FAILED) {
    ::close(fd_);
    fd_ = -1;
    fail_open(path, "mmap failed");
  }
  map_ = static_cast<const unsigned char*>(map);
  // The dominant access pattern is a front-to-back block scan; tell the
  // kernel so readahead works for us instead of against the RSS budget.
  ::madvise(const_cast<unsigned char*>(map_), file_bytes_, MADV_SEQUENTIAL);

  // Cleanup that must run on any validation failure below.
  auto fail = [this, &path](const std::string& what) {
    ::munmap(const_cast<unsigned char*>(map_), file_bytes_);
    ::close(fd_);
    map_ = nullptr;
    fd_ = -1;
    fail_open(path, what);
  };

  if (std::memcmp(map_, blockfmt::kHeaderMagic, sizeof(blockfmt::kHeaderMagic)) != 0) {
    fail("not a block store (bad header magic)");
  }
  const auto version = load_pod<std::uint32_t>(map_ + 4);
  if (version != blockfmt::kVersion) {
    fail("unsupported version " + std::to_string(version));
  }
  dim_ = static_cast<std::size_t>(load_pod<std::uint64_t>(map_ + 8));
  block_rows_ = static_cast<std::size_t>(load_pod<std::uint64_t>(map_ + 16));
  if (dim_ == 0 || dim_ > 1024) fail("implausible dimension in header");
  if (block_rows_ == 0) fail("zero block_rows in header");

  const unsigned char* trailer = map_ + file_bytes_ - blockfmt::kTrailerBytes;
  if (std::memcmp(trailer + 16, blockfmt::kTrailerMagic,
                  sizeof(blockfmt::kTrailerMagic)) != 0) {
    fail("truncated file (bad trailer magic)");
  }
  const auto footer_offset = load_pod<std::uint64_t>(trailer);
  const auto footer_checksum = load_pod<std::uint64_t>(trailer + 8);
  if (footer_offset < blockfmt::kHeaderBytes ||
      footer_offset > file_bytes_ - blockfmt::kTrailerBytes) {
    fail("footer offset out of range");
  }
  const unsigned char* footer = map_ + footer_offset;
  const std::size_t footer_size =
      static_cast<std::size_t>(file_bytes_ - blockfmt::kTrailerBytes - footer_offset);
  if (blockfmt::fnv1a(footer, footer_size) != footer_checksum) {
    fail("footer checksum mismatch (corrupted index?)");
  }

  // Footer contents are checksum-clean; parse with size checks anyway so a
  // colliding corruption still cannot walk off the mapping.
  const auto block_count = load_pod<std::uint64_t>(footer);
  const std::size_t expected =
      sizeof(std::uint64_t) * 2 +
      static_cast<std::size_t>(block_count) * blockfmt::index_entry_bytes(dim_);
  if (footer_size != expected) fail("footer size disagrees with block count");
  const unsigned char* p = footer + sizeof(std::uint64_t);
  index_.resize(static_cast<std::size_t>(block_count));
  for (auto& entry : index_) {
    entry.offset = load_pod<std::uint64_t>(p);
    entry.rows = load_pod<std::uint64_t>(p + 8);
    entry.payload_bytes = load_pod<std::uint64_t>(p + 16);
    entry.checksum = load_pod<std::uint64_t>(p + 24);
    p += 32;
    entry.min_corner.resize(dim_);
    entry.max_corner.resize(dim_);
    std::memcpy(entry.min_corner.data(), p, dim_ * sizeof(double));
    p += dim_ * sizeof(double);
    std::memcpy(entry.max_corner.data(), p, dim_ * sizeof(double));
    p += dim_ * sizeof(double);
    if (entry.rows == 0 || entry.rows > block_rows_) {
      fail("index entry with implausible row count");
    }
    if (entry.payload_bytes != blockfmt::payload_bytes(entry.rows, dim_)) {
      fail("index entry payload size disagrees with row count");
    }
    if (entry.offset < blockfmt::kHeaderBytes ||
        entry.offset + entry.payload_bytes > footer_offset) {
      fail("index entry points outside the block region");
    }
    total_rows_ += static_cast<std::size_t>(entry.rows);
  }
  const auto recorded_total = load_pod<std::uint64_t>(p);
  if (recorded_total != total_rows_) fail("footer total_rows disagrees with index");

  verified_ = std::make_unique<std::atomic<bool>[]>(index_.size());
  for (std::size_t b = 0; b < index_.size(); ++b) {
    verified_[b].store(false, std::memory_order_relaxed);
  }
}

BlockStore::~BlockStore() {
  if (map_ != nullptr) ::munmap(const_cast<unsigned char*>(map_), file_bytes_);
  if (fd_ >= 0) ::close(fd_);
}

void BlockStore::check_block_index(std::size_t b) const {
  MRSKY_REQUIRE(b < index_.size(), "block index out of range");
}

std::size_t BlockStore::rows_in_block(std::size_t b) const {
  check_block_index(b);
  return static_cast<std::size_t>(index_[b].rows);
}

std::uint64_t BlockStore::block_payload_bytes(std::size_t b) const {
  check_block_index(b);
  return index_[b].payload_bytes;
}

std::uint64_t BlockStore::block_checksum(std::size_t b) const {
  check_block_index(b);
  return index_[b].checksum;
}

std::span<const double> BlockStore::block_min(std::size_t b) const {
  check_block_index(b);
  return index_[b].min_corner;
}

std::span<const double> BlockStore::block_max(std::size_t b) const {
  check_block_index(b);
  return index_[b].max_corner;
}

void BlockStore::verify_block(std::size_t b) const {
  check_block_index(b);
  const IndexEntry& entry = index_[b];
  const unsigned char* payload = map_ + entry.offset;
  if (blockfmt::fnv1a(payload, static_cast<std::size_t>(entry.payload_bytes)) !=
      entry.checksum) {
    MRSKY_FAIL("block store " + path_ + ": block " + std::to_string(b) +
               " checksum mismatch (corrupted file?)");
  }
  verified_[b].store(true, std::memory_order_release);
}

BlockStore::BlockRef BlockStore::block(std::size_t b) const {
  check_block_index(b);
  // Verify-once: racing threads may both checksum the block, but the flag
  // only ever goes false -> true, so nobody skips an unverified block.
  if (!verified_[b].load(std::memory_order_acquire)) verify_block(b);
  const IndexEntry& entry = index_[b];
  BlockRef ref;
  ref.rows = static_cast<std::size_t>(entry.rows);
  ref.dim = dim_;
  // The mapped tile region is 8-byte aligned by construction (header is 24
  // bytes, every payload is a multiple of 8), so the reinterpret is sound.
  ref.tiles = reinterpret_cast<const double*>(map_ + entry.offset);
  ref.ids = reinterpret_cast<const PointId*>(map_ + entry.offset +
                                             blockfmt::tile_bytes(ref.rows, dim_));
  return ref;
}

void BlockStore::release(std::size_t b) const noexcept {
  if (b >= index_.size()) return;
  const IndexEntry& entry = index_[b];
  static const auto page = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  // Round inward to full pages so we never discard a neighbouring block's
  // bytes that share an edge page.
  const std::uint64_t begin = (entry.offset + page - 1) / page * page;
  const std::uint64_t end = (entry.offset + entry.payload_bytes) / page * page;
  if (end > begin) {
    ::madvise(const_cast<unsigned char*>(map_) + begin,
              static_cast<std::size_t>(end - begin), MADV_DONTNEED);
  }
}

void BlockStore::append_block_to(std::size_t b, PointSet& out) const {
  MRSKY_REQUIRE(out.dim() == dim_, "point set dimension mismatch");
  const BlockRef ref = block(b);
  thread_local std::vector<double> rows;
  rows.resize(ref.rows * dim_);
  for (std::size_t r = 0; r < ref.rows; ++r) ref.copy_row(r, rows.data() + r * dim_);
  out.append_rows(rows, std::span<const PointId>(ref.ids, ref.rows));
}

PointSet BlockStore::materialize(ParseReport* report) const {
  const bool lenient = report != nullptr;
  PointSet out(dim_);
  out.reserve(total_rows_);
  for (std::size_t b = 0; b < index_.size(); ++b) {
    if (!lenient) {
      append_block_to(b, out);
      continue;
    }
    try {
      append_block_to(b, out);
      report->rows_read += rows_in_block(b);
    } catch (const mrsky::RuntimeError&) {
      report->add_issue(b, "checksum mismatch (corrupted file?) — " +
                               std::to_string(rows_in_block(b)) + " rows dropped");
      report->rows_skipped += rows_in_block(b) - 1;
    }
  }
  return out;
}

std::vector<std::size_t> BlockStore::block_skyline_rows(std::size_t b) const {
  const BlockRef ref = block(b);
  // Straight off the mapped tiles: row r survives iff no other row in the
  // block dominates it. dominators_in_block_scalar is header-inline, so the
  // dataset layer needs no link against the skyline library; +inf padding
  // lanes die on the first attribute and self-comparison is never strict.
  std::vector<std::size_t> out;
  std::vector<double> p(dim_);
  for (std::size_t r = 0; r < ref.rows; ++r) {
    ref.copy_row(r, p.data());
    bool dominated = false;
    for (std::size_t t = 0; t < ref.tile_count() && !dominated; ++t) {
      const std::uint32_t doms =
          skyline::dominators_in_block_scalar(p.data(), ref.tile_data(t), dim_);
      dominated = (doms & ref.valid_mask(t)) != 0;
    }
    if (!dominated) out.push_back(r);
  }
  return out;
}

void write_block_store(const std::string& path, const PointSet& ps,
                       std::size_t block_rows) {
  BlockStoreWriter writer(path, ps.dim(), block_rows);
  writer.append(ps);
  writer.close();
}

// ---- Z-order permutation ---------------------------------------------------

namespace {

/// Chan's trick: among two quantized coordinates, the dimension whose values
/// differ in a higher bit decides the Morton order — no interleaved bignum
/// key needed.
[[nodiscard]] bool less_msb(std::uint32_t a, std::uint32_t b) noexcept {
  return a < b && a < (a ^ b);
}

}  // namespace

std::vector<std::size_t> zorder_permutation(const PointSet& ps) {
  std::vector<std::size_t> order(ps.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (ps.size() <= 1) return order;

  // Quantize each attribute to 16 bits over its own [min, max] range so every
  // dimension contributes comparably to the curve.
  const std::vector<double> lo = ps.attribute_min();
  const std::vector<double> hi = ps.attribute_max();
  const std::size_t dim = ps.dim();
  std::vector<std::uint32_t> q(ps.size() * dim);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    for (std::size_t a = 0; a < dim; ++a) {
      const double span = hi[a] - lo[a];
      double unit = span > 0 ? (ps.at(i, a) - lo[a]) / span : 0.0;
      if (!std::isfinite(unit)) unit = 0.0;
      unit = std::clamp(unit, 0.0, 1.0);
      q[i * dim + a] = static_cast<std::uint32_t>(unit * 65535.0);
    }
  }

  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    const std::uint32_t* px = q.data() + x * dim;
    const std::uint32_t* py = q.data() + y * dim;
    std::size_t msd = 0;
    for (std::size_t a = 1; a < dim; ++a) {
      if (less_msb(px[msd] ^ py[msd], px[a] ^ py[a])) msd = a;
    }
    if (px[msd] != py[msd]) return px[msd] < py[msd];
    if (ps.id(x) != ps.id(y)) return ps.id(x) < ps.id(y);  // deterministic tiebreak
    return x < y;
  });
  return order;
}

}  // namespace mrsky::data
