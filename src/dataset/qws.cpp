#include "src/dataset/qws.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"

namespace mrsky::data {

std::vector<QwsAttribute> qws_schema(std::size_t dim) {
  MRSKY_REQUIRE(dim >= 1 && dim <= 10, "QWS schema supports 1..10 attributes");
  // Ranges follow the published QWS v2 summary (Al-Masri & Mahmoud 2007);
  // shapes encode the qualitative skew of each measured attribute.
  static const std::vector<QwsAttribute> kAll = {
      {"ResponseTime", "ms", 37.0, 4989.0, MarginalShape::kLongTailLow, false},
      {"Availability", "%", 7.0, 100.0, MarginalShape::kSkewHigh, true},
      {"Throughput", "invokes/s", 0.1, 43.1, MarginalShape::kSkewLow, true},
      {"Successability", "%", 8.0, 100.0, MarginalShape::kSkewHigh, true},
      {"Reliability", "%", 33.0, 89.0, MarginalShape::kSymmetric, true},
      {"Compliance", "%", 33.0, 100.0, MarginalShape::kSymmetric, true},
      {"BestPractices", "%", 5.0, 95.0, MarginalShape::kSymmetric, true},
      {"Latency", "ms", 0.3, 4140.0, MarginalShape::kLongTailLow, false},
      {"Documentation", "%", 1.0, 96.0, MarginalShape::kBroad, true},
      {"Price", "$/1k calls", 0.0, 50.0, MarginalShape::kSkewLow, false},
  };
  return {kAll.begin(), kAll.begin() + static_cast<std::ptrdiff_t>(dim)};
}

QwsLikeGenerator::QwsLikeGenerator(std::size_t dim, std::uint64_t seed)
    : QwsLikeGenerator(dim, seed, Options{}) {}

QwsLikeGenerator::QwsLikeGenerator(std::size_t dim, std::uint64_t seed, Options options)
    : schema_(qws_schema(dim)), rng_(seed), options_(options) {
  MRSKY_REQUIRE(options_.quality_correlation >= 0.0 && options_.quality_correlation < 1.0,
                "quality_correlation must be in [0, 1)");
}

double QwsLikeGenerator::sample_attribute(const QwsAttribute& attr, double quality_z) {
  // Draw a unit-interval value with the attribute's marginal shape, then mix
  // in the latent quality factor and scale to the attribute's natural range.
  const double u = rng_.uniform();
  double t = 0.0;
  switch (attr.shape) {
    case MarginalShape::kLongTailLow: {
      // Lognormal-like: median well below midrange, heavy upper tail.
      const double z = rng_.normal();
      t = std::clamp(std::exp(-1.2 + 0.9 * z) / 4.0, 0.0, 1.0);
      break;
    }
    case MarginalShape::kSkewHigh:
      t = 1.0 - std::pow(u, 2.5);  // mass near 1
      break;
    case MarginalShape::kSkewLow:
      t = std::pow(u, 2.5);  // mass near 0
      break;
    case MarginalShape::kSymmetric:
      t = (u + rng_.uniform() + rng_.uniform()) / 3.0;  // Bates(3): bell-ish
      break;
    case MarginalShape::kBroad:
      t = u;
      break;
  }
  // Latent quality: good services shift toward the "better" end of each
  // attribute (high t for benefit attributes, low t for cost attributes).
  // The shift is a power transform t^gamma rather than an additive bump: it
  // is smooth and keeps values strictly inside the range, so no artificial
  // pile of duplicates forms at the attribute boundaries (a boundary pile of
  // coordinate-identical points would all be mutually undominated and would
  // corrupt skyline sizes).
  const double rho = options_.quality_correlation;
  if (rho > 0.0) {
    const double direction = attr.higher_is_better ? 1.0 : -1.0;
    const double gamma = std::exp(-direction * rho * quality_z);
    t = std::pow(std::clamp(t, 1e-12, 1.0), gamma);
  }
  return attr.min + t * (attr.max - attr.min);
}

PointSet QwsLikeGenerator::generate_raw(std::size_t n) {
  PointSet out(schema_.size());
  out.reserve(n);
  std::vector<double> row(schema_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double quality_z = rng_.normal();
    for (std::size_t a = 0; a < schema_.size(); ++a) {
      row[a] = sample_attribute(schema_[a], quality_z);
    }
    out.push_back(row);
  }
  return out;
}

PointSet QwsLikeGenerator::generate_oriented(std::size_t n) {
  return orient(generate_raw(n), schema_);
}

PointSet QwsLikeGenerator::orient(const PointSet& raw, const std::vector<QwsAttribute>& schema) {
  MRSKY_REQUIRE(raw.dim() == schema.size(), "schema size must match point dimension");
  std::vector<double> values;
  values.reserve(raw.size() * raw.dim());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    for (std::size_t a = 0; a < raw.dim(); ++a) {
      const double v = raw.at(i, a);
      values.push_back(schema[a].higher_is_better ? schema[a].max - v : v);
    }
  }
  return PointSet(raw.dim(), std::move(values),
                  std::vector<PointId>(raw.ids().begin(), raw.ids().end()));
}

BootstrapResampler::BootstrapResampler(data::PointSet seed_data, double jitter)
    : seed_(std::move(seed_data)), jitter_(jitter) {
  MRSKY_REQUIRE(!seed_.empty(), "bootstrap resampling needs seed data");
  MRSKY_REQUIRE(jitter >= 0.0 && jitter < 1.0, "jitter must be in [0, 1)");
  lo_ = seed_.attribute_min();
  hi_ = seed_.attribute_max();
}

PointSet BootstrapResampler::generate(std::size_t n, common::Rng& rng) const {
  PointSet out(seed_.dim());
  out.reserve(n);
  std::vector<double> row(seed_.dim());
  for (std::size_t i = 0; i < n; ++i) {
    const auto source = static_cast<std::size_t>(rng.uniform_index(seed_.size()));
    const auto p = seed_.point(source);
    for (std::size_t a = 0; a < seed_.dim(); ++a) {
      const double scale = 1.0 + rng.uniform(-jitter_, jitter_);
      row[a] = std::clamp(p[a] * scale, lo_[a], hi_[a]);
    }
    out.push_back(row);
  }
  return out;
}

}  // namespace mrsky::data
