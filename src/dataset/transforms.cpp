#include "src/dataset/transforms.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "src/common/error.hpp"

namespace mrsky::data {

PointSet concat(const PointSet& a, const PointSet& b) {
  MRSKY_REQUIRE(a.dim() == b.dim(), "concat requires equal dimensions");
  PointSet out(a.dim());
  out.reserve(a.size() + b.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(a.point(i), a.id(i));
  for (std::size_t i = 0; i < b.size(); ++i) out.push_back(b.point(i), b.id(i));
  return out;
}

PointSet sample_without_replacement(const PointSet& ps, std::size_t k, common::Rng& rng) {
  MRSKY_REQUIRE(k <= ps.size(), "sample size exceeds population");
  // Partial Fisher-Yates over an index array, then restore original order.
  std::vector<std::size_t> indices(ps.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.uniform_index(indices.size() - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  std::sort(indices.begin(), indices.end());
  return ps.select(indices);
}

PointSet affine_transform(const PointSet& ps, std::span<const double> scale,
                          std::span<const double> shift) {
  MRSKY_REQUIRE(scale.size() == ps.dim() && shift.size() == ps.dim(),
                "one scale/shift per attribute required");
  for (double s : scale) MRSKY_REQUIRE(s > 0.0, "scales must be positive (order-preserving)");
  std::vector<double> values;
  values.reserve(ps.size() * ps.dim());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    for (std::size_t a = 0; a < ps.dim(); ++a) {
      values.push_back(scale[a] * ps.at(i, a) + shift[a]);
    }
  }
  return PointSet(ps.dim(), std::move(values),
                  std::vector<PointId>(ps.ids().begin(), ps.ids().end()));
}

PointSet with_duplicates(const PointSet& ps, std::size_t copies, common::Rng& rng) {
  MRSKY_REQUIRE(!ps.empty(), "cannot duplicate from an empty set");
  PointSet out(ps.dim());
  out.reserve(ps.size() + copies);
  PointId next_id = 0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    out.push_back(ps.point(i), ps.id(i));
    next_id = std::max(next_id, static_cast<PointId>(ps.id(i) + 1));
  }
  for (std::size_t c = 0; c < copies; ++c) {
    const std::size_t source = static_cast<std::size_t>(rng.uniform_index(ps.size()));
    out.push_back(ps.point(source), next_id++);
  }
  return out;
}

PointSet project(const PointSet& ps, std::span<const std::size_t> attributes) {
  MRSKY_REQUIRE(!attributes.empty(), "projection needs at least one attribute");
  for (std::size_t a : attributes) {
    MRSKY_REQUIRE(a < ps.dim(), "projection attribute out of range");
  }
  std::vector<double> values;
  values.reserve(ps.size() * attributes.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    for (std::size_t a : attributes) values.push_back(ps.at(i, a));
  }
  return PointSet(attributes.size(), std::move(values),
                  std::vector<PointId>(ps.ids().begin(), ps.ids().end()));
}

}  // namespace mrsky::data
