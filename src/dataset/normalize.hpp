// Attribute normalisation.
//
// Partitioners that split value ranges (MR-Dim's Vmax/Np slabs, MR-Grid's
// cells, MR-Angle's hyperspherical transform) behave best on comparable
// scales; QWS attributes span [0.1, 43] to [37, 4989]. Min-max scaling to
// [0, 1] is rank-preserving per attribute, so it never changes dominance
// relations or the skyline — only the geometry partitioners see.
#pragma once

#include <vector>

#include "src/dataset/point_set.hpp"

namespace mrsky::data {

/// Per-attribute affine map x -> (x - lo) / (hi - lo).
struct NormalizationMap {
  std::vector<double> lo;
  std::vector<double> hi;

  [[nodiscard]] std::size_t dim() const noexcept { return lo.size(); }

  /// Applies the map; constant attributes (hi == lo) map to 0.
  [[nodiscard]] PointSet apply(const PointSet& ps) const;

  /// Inverse map back to natural units.
  [[nodiscard]] PointSet invert(const PointSet& ps) const;
};

/// Fits min-max bounds on `ps`. Throws if `ps` is empty.
[[nodiscard]] NormalizationMap fit_min_max(const PointSet& ps);

/// Convenience: fit on `ps` and apply to it.
[[nodiscard]] PointSet normalize_min_max(const PointSet& ps);

}  // namespace mrsky::data
