#include "src/dataset/normalize.hpp"

#include "src/common/error.hpp"

namespace mrsky::data {

PointSet NormalizationMap::apply(const PointSet& ps) const {
  MRSKY_REQUIRE(ps.dim() == dim(), "normalisation map dimension mismatch");
  std::vector<double> values;
  values.reserve(ps.size() * ps.dim());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    for (std::size_t a = 0; a < ps.dim(); ++a) {
      const double range = hi[a] - lo[a];
      values.push_back(range == 0.0 ? 0.0 : (ps.at(i, a) - lo[a]) / range);
    }
  }
  return PointSet(ps.dim(), std::move(values),
                  std::vector<PointId>(ps.ids().begin(), ps.ids().end()));
}

PointSet NormalizationMap::invert(const PointSet& ps) const {
  MRSKY_REQUIRE(ps.dim() == dim(), "normalisation map dimension mismatch");
  std::vector<double> values;
  values.reserve(ps.size() * ps.dim());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    for (std::size_t a = 0; a < ps.dim(); ++a) {
      values.push_back(lo[a] + ps.at(i, a) * (hi[a] - lo[a]));
    }
  }
  return PointSet(ps.dim(), std::move(values),
                  std::vector<PointId>(ps.ids().begin(), ps.ids().end()));
}

NormalizationMap fit_min_max(const PointSet& ps) {
  return NormalizationMap{ps.attribute_min(), ps.attribute_max()};
}

PointSet normalize_min_max(const PointSet& ps) { return fit_min_max(ps).apply(ps); }

}  // namespace mrsky::data
