// Point-set combinators used by tests, examples and dataset preparation:
// concatenation (extending a registry), deterministic sampling (building a
// calibration subset the way the paper down-samples QWS), and perturbation
// (metamorphic testing of skyline invariances).
#pragma once

#include <cstdint>

#include "src/common/rng.hpp"
#include "src/dataset/point_set.hpp"

namespace mrsky::data {

/// All points of `a` followed by all points of `b` (ids preserved —
/// callers are responsible for id uniqueness if they need it). Dimensions
/// must match.
[[nodiscard]] PointSet concat(const PointSet& a, const PointSet& b);

/// `k` points sampled without replacement, in original order (deterministic
/// reservoir-style selection under `rng`). Requires k <= ps.size().
[[nodiscard]] PointSet sample_without_replacement(const PointSet& ps, std::size_t k,
                                                  common::Rng& rng);

/// Per-attribute positive affine map x -> scale[a] * x + shift[a]
/// (scale > 0). Rank-preserving per attribute, so the skyline ids are
/// invariant — the property the metamorphic tests exercise.
[[nodiscard]] PointSet affine_transform(const PointSet& ps, std::span<const double> scale,
                                        std::span<const double> shift);

/// Appends `copies` exact duplicates of random existing points (fresh ids
/// starting at max id + 1). Duplicate handling is a classic skyline edge
/// case; tests use this to harden algorithms against ties.
[[nodiscard]] PointSet with_duplicates(const PointSet& ps, std::size_t copies, common::Rng& rng);

/// Projection onto an attribute subset (ids preserved, order follows
/// `attributes`). Supports subspace skyline queries: users who only care
/// about, say, {ResponseTime, Availability} run the skyline over
/// project(ps, {0, 1}). Attribute indices must be in range; duplicates in
/// `attributes` are allowed (an attribute may be repeated).
[[nodiscard]] PointSet project(const PointSet& ps, std::span<const std::size_t> attributes);

}  // namespace mrsky::data
