// Out-of-core columnar block storage: the `.mrb` writer and mmap reader.
//
// BlockStoreWriter streams rows into fixed-capacity blocks (block_format.hpp
// describes the layout) and finishes with a footer index of per-block
// {offset, rows, bytes, checksum, min corner, max corner}. BlockStore maps
// the finished file read-only (mmap + MADV_SEQUENTIAL), validates header,
// trailer and footer checksum at open, and exposes each block as a BlockRef:
// a zero-copy view whose tile pointers feed skyline::compare_block /
// dominators_in_block directly — the on-disk layout is the TiledWindow
// layout, so "open the file" is the whole decode step.
//
// Payload checksums are verified lazily, once, on first BlockRef access
// (thread-safe), so a pre-shuffle prune that drops a block from its footer
// corner never pays for reading the block's pages. release() hands finished
// blocks back to the kernel (MADV_DONTNEED), which is what keeps a
// sequential scan's resident set at a few blocks regardless of file size.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/dataset/block_format.hpp"
#include "src/dataset/parse_report.hpp"
#include "src/dataset/point_set.hpp"

namespace mrsky::data {

class BlockStoreWriter {
 public:
  /// Opens `path` for writing `dim`-dimensional rows in blocks of
  /// `block_rows`. Throws mrsky::RuntimeError on I/O failure. Output is a
  /// pure function of the append sequence — bit-identical files for
  /// identical input, whatever the batching of the append calls.
  BlockStoreWriter(const std::string& path, std::size_t dim,
                   std::size_t block_rows = blockfmt::kDefaultBlockRows);
  ~BlockStoreWriter();

  BlockStoreWriter(const BlockStoreWriter&) = delete;
  BlockStoreWriter& operator=(const BlockStoreWriter&) = delete;

  void append(PointId id, std::span<const double> coords);
  void append(const PointSet& ps);

  /// Flushes the last partial block and writes footer + trailer. Idempotent;
  /// the destructor calls it swallowing errors — call close() when you care.
  void close();

  [[nodiscard]] std::size_t rows_written() const noexcept { return total_rows_; }
  [[nodiscard]] std::size_t blocks_written() const noexcept { return blocks_flushed_; }

 private:
  void flush_block();

  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t dim_;
  std::size_t block_rows_;
  std::size_t total_rows_ = 0;
  std::size_t blocks_flushed_ = 0;
  bool closed_ = false;
};

class BlockStore {
 public:
  /// Zero-copy view of one mapped block. `tiles` is attribute-major 8-lane
  /// TiledWindow layout: tile t starts at tiles + t * dim * kTileLanes,
  /// attribute a's lane values at tile + a * kTileLanes, dead lanes +inf.
  struct BlockRef {
    const double* tiles = nullptr;
    const PointId* ids = nullptr;
    std::size_t rows = 0;
    std::size_t dim = 0;

    [[nodiscard]] std::size_t tile_count() const noexcept {
      return blockfmt::tiles_for(rows);
    }
    [[nodiscard]] const double* tile_data(std::size_t t) const noexcept {
      return tiles + t * dim * blockfmt::kTileLanes;
    }
    /// Bitmask of live lanes in tile t (dead padding lanes excluded).
    [[nodiscard]] std::uint32_t valid_mask(std::size_t t) const noexcept {
      const std::size_t valid = rows - t * blockfmt::kTileLanes >= blockfmt::kTileLanes
                                    ? blockfmt::kTileLanes
                                    : rows - t * blockfmt::kTileLanes;
      return (std::uint32_t{1} << valid) - 1;
    }
    /// Gathers row r's coordinates (stride-kTileLanes within its tile) into
    /// `dst` (dim contiguous doubles).
    void copy_row(std::size_t r, double* dst) const noexcept {
      const double* tile = tile_data(r / blockfmt::kTileLanes);
      const std::size_t lane = r % blockfmt::kTileLanes;
      for (std::size_t a = 0; a < dim; ++a) dst[a] = tile[a * blockfmt::kTileLanes + lane];
    }
  };

  /// Opens and validates `path`. Throws mrsky::RuntimeError on a missing
  /// file, bad magic, version mismatch, truncation, or a footer whose
  /// checksum disagrees with the trailer.
  explicit BlockStore(const std::string& path);
  ~BlockStore();

  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t rows() const noexcept { return total_rows_; }
  [[nodiscard]] std::size_t block_rows() const noexcept { return block_rows_; }
  [[nodiscard]] std::size_t block_count() const noexcept { return index_.size(); }
  [[nodiscard]] std::uint64_t file_bytes() const noexcept { return file_bytes_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Footer-only statistics — none of these touch the block's pages.
  [[nodiscard]] std::size_t rows_in_block(std::size_t b) const;
  [[nodiscard]] std::uint64_t block_payload_bytes(std::size_t b) const;
  [[nodiscard]] std::uint64_t block_checksum(std::size_t b) const;
  [[nodiscard]] std::span<const double> block_min(std::size_t b) const;
  [[nodiscard]] std::span<const double> block_max(std::size_t b) const;

  /// Mapped view of block b. The first access per block verifies the payload
  /// checksum (thread-safe, cached) and throws mrsky::RuntimeError on
  /// corruption; later accesses are free.
  [[nodiscard]] BlockRef block(std::size_t b) const;

  /// Re-verifies block b's checksum unconditionally (open-time validation
  /// tool; `mrsky inspect --verify`). Throws on mismatch.
  void verify_block(std::size_t b) const;

  /// Advises the kernel that block b's pages will not be needed again soon
  /// (MADV_DONTNEED on the page-aligned payload range). Purely advisory: a
  /// released block can be re-read at refault cost.
  void release(std::size_t b) const noexcept;

  /// Appends block b's rows (row-major, ids preserved) to `out` via one bulk
  /// append_rows. Throws on checksum mismatch.
  void append_block_to(std::size_t b, PointSet& out) const;

  /// The whole file as a resident PointSet. Strict by default; with a report
  /// the read is lenient — a corrupt block is dropped whole and accounted as
  /// one issue row (its index), mirroring RecordFileReader::read_split.
  [[nodiscard]] PointSet materialize(ParseReport* report = nullptr) const;

  /// Row indices (block-local, ascending) of block b's local skyline,
  /// computed with the dominance_block kernel straight off the mapped tiles
  /// — no gather, no PointSet. The demonstration that the storage layout is
  /// the compute layout; used by `mrsky inspect` and the block-prune
  /// soundness tests.
  [[nodiscard]] std::vector<std::size_t> block_skyline_rows(std::size_t b) const;

 private:
  struct IndexEntry {
    std::uint64_t offset = 0;
    std::uint64_t rows = 0;
    std::uint64_t payload_bytes = 0;
    std::uint64_t checksum = 0;
    std::vector<double> min_corner;
    std::vector<double> max_corner;
  };

  void check_block_index(std::size_t b) const;

  std::string path_;
  int fd_ = -1;
  const unsigned char* map_ = nullptr;
  std::uint64_t file_bytes_ = 0;
  std::size_t dim_ = 0;
  std::size_t block_rows_ = 0;
  std::size_t total_rows_ = 0;
  std::vector<IndexEntry> index_;
  /// Lazily-set per-block "payload checksum verified" flags (first-access
  /// verification under concurrent map tasks).
  mutable std::unique_ptr<std::atomic<bool>[]> verified_;
};

/// Writes `ps` as a `.mrb` file (convenience wrapper).
void write_block_store(const std::string& path, const PointSet& ps,
                       std::size_t block_rows = blockfmt::kDefaultBlockRows);

/// Deterministic Z-order (Morton) row permutation: attributes normalized to
/// the set's [min, max] range, quantized to 16 bits, compared MSB-first
/// across interleaved dimensions (ids break ties). Writing blocks in this
/// order makes them spatially compact, which is what gives the footer
/// corners pruning power — `mrsky convert --order zorder`.
[[nodiscard]] std::vector<std::size_t> zorder_permutation(const PointSet& ps);

}  // namespace mrsky::data
