// Synthetic dataset generators.
//
// The three classic skyline benchmark distributions of Börzsönyi, Kossmann &
// Stocker (ICDE 2001) — independent, correlated, anti-correlated — plus a
// clustered distribution. All generators emit points in [0, 1]^d with the
// "smaller is better" orientation and are fully deterministic given a seed.
//
// The paper's primary workload (QWS-like web-service data) lives in qws.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/common/rng.hpp"
#include "src/dataset/point_set.hpp"

namespace mrsky::data {

enum class Distribution {
  kIndependent,     ///< i.i.d. uniform per attribute
  kCorrelated,      ///< concentrated around the main diagonal
  kAnticorrelated,  ///< concentrated around the anti-diagonal hyperplane
  kClustered,       ///< Gaussian blobs around random centres
};

/// Parses "independent" / "correlated" / "anticorrelated" / "clustered".
[[nodiscard]] Distribution parse_distribution(const std::string& name);
[[nodiscard]] std::string to_string(Distribution d);

struct GeneratorOptions {
  /// Std-dev of the perpendicular spread for correlated data.
  double correlated_spread = 0.05;
  /// Std-dev of the plane-offset distribution for anti-correlated data.
  double anticorrelated_spread = 0.10;
  /// Number of blobs for the clustered distribution.
  std::size_t cluster_count = 8;
  /// Per-axis std-dev of each blob.
  double cluster_spread = 0.05;
};

/// Generates `n` points of dimension `dim` from `dist`, seeded by `seed`.
[[nodiscard]] PointSet generate(Distribution dist, std::size_t n, std::size_t dim,
                                std::uint64_t seed, const GeneratorOptions& options = {});

/// Individual generators (same contracts as `generate`).
[[nodiscard]] PointSet generate_independent(std::size_t n, std::size_t dim, common::Rng& rng);
[[nodiscard]] PointSet generate_correlated(std::size_t n, std::size_t dim, common::Rng& rng,
                                           double spread);
[[nodiscard]] PointSet generate_anticorrelated(std::size_t n, std::size_t dim, common::Rng& rng,
                                               double plane_spread);
[[nodiscard]] PointSet generate_clustered(std::size_t n, std::size_t dim, common::Rng& rng,
                                          std::size_t clusters, double spread);

}  // namespace mrsky::data
