// Block-structured binary point storage — the library's stand-in for HDFS
// sequence files.
//
// Hadoop jobs read their input as block-aligned splits, one per map task;
// this format reproduces that: fixed-size record blocks, a footer index of
// block offsets, and a per-block FNV-1a checksum so corruption is detected
// at read time rather than silently skewing experiments.
//
// Layout (all integers little-endian, as written by the host — the format
// is a working set artifact, not an interchange format):
//   header : magic "MRSK" | u32 version | u64 dim | u64 records_per_block
//   blocks : u64 record_count | record_count × (u32 id | dim × f64)
//   footer : u64 block_count | block_count × (u64 offset | u64 records |
//            u64 checksum) | u64 total_records
//   trailer: u64 footer_offset | magic "KSRM"
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/dataset/parse_report.hpp"
#include "src/dataset/point_set.hpp"

namespace mrsky::data {

/// A block-aligned chunk of a record file — the unit handed to a map task.
struct RecordSplit {
  std::size_t first_block = 0;
  std::size_t block_count = 0;
  std::size_t record_count = 0;
};

class RecordFileWriter {
 public:
  /// Opens `path` for writing `dim`-dimensional records. Throws on I/O error.
  RecordFileWriter(const std::string& path, std::size_t dim,
                   std::size_t records_per_block = 4096);
  ~RecordFileWriter();

  RecordFileWriter(const RecordFileWriter&) = delete;
  RecordFileWriter& operator=(const RecordFileWriter&) = delete;

  void append(PointId id, std::span<const double> coords);
  void append(const PointSet& ps);

  /// Flushes the last block and writes footer + trailer. Idempotent; called
  /// by the destructor if not called explicitly (errors are swallowed there,
  /// so call close() when you care).
  void close();

  [[nodiscard]] std::size_t records_written() const noexcept { return total_records_; }

 private:
  void flush_block();

  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t dim_;
  std::size_t records_per_block_;
  std::size_t total_records_ = 0;
  bool closed_ = false;
};

class RecordFileReader {
 public:
  /// Opens and validates header/trailer. Throws mrsky::RuntimeError on a
  /// missing file, bad magic, or truncated footer.
  explicit RecordFileReader(const std::string& path);
  ~RecordFileReader();

  RecordFileReader(const RecordFileReader&) = delete;
  RecordFileReader& operator=(const RecordFileReader&) = delete;

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t record_count() const noexcept { return total_records_; }
  [[nodiscard]] std::size_t block_count() const noexcept { return blocks_.size(); }

  /// Partitions the blocks into at most `target_splits` contiguous,
  /// block-aligned splits of near-equal record counts (>= 1 split; fewer
  /// when there are fewer blocks than requested).
  [[nodiscard]] std::vector<RecordSplit> splits(std::size_t target_splits) const;

  /// Reads one split; verifies each block's checksum. With `report == nullptr`
  /// (strict, the default) a corrupted or truncated block throws. With a
  /// report the read is lenient: a bad block is dropped whole, a record with
  /// non-finite coordinates is dropped individually, and both are accounted
  /// for in the report (issue rows are block indices) — the storage-layer
  /// analogue of the engine's skip-bad-records mode.
  [[nodiscard]] PointSet read_split(const RecordSplit& split,
                                    ParseReport* report = nullptr) const;

  /// Reads the whole file (same strict/lenient contract as read_split).
  [[nodiscard]] PointSet read_all(ParseReport* report = nullptr) const;

 private:
  struct BlockInfo {
    std::uint64_t offset = 0;
    std::uint64_t records = 0;
    std::uint64_t checksum = 0;
  };

  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t dim_ = 0;
  std::size_t total_records_ = 0;
  std::vector<BlockInfo> blocks_;
};

/// Convenience wrappers (read is lenient when `report` is non-null).
void write_record_file(const std::string& path, const PointSet& ps,
                       std::size_t records_per_block = 4096);
[[nodiscard]] PointSet read_record_file(const std::string& path,
                                        ParseReport* report = nullptr);

}  // namespace mrsky::data
