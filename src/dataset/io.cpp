#include "src/dataset/io.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

#include "src/common/error.hpp"

namespace mrsky::data {

namespace {

std::vector<std::string> split_commas(const std::string& line) {
  std::vector<std::string> cells;
  std::size_t start = 0;
  while (start <= line.size()) {
    std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) comma = line.size();
    cells.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return cells;
}

bool parse_double(const std::string& s, double& out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

}  // namespace

void write_csv(std::ostream& os, const PointSet& ps, const CsvWriteOptions& options) {
  if (options.with_header) {
    if (options.with_ids) os << "id";
    for (std::size_t a = 0; a < ps.dim(); ++a) {
      if (a > 0 || options.with_ids) os << ",";
      os << "attr" << a;
    }
    os << "\n";
  }
  os << std::setprecision(options.precision);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    if (options.with_ids) os << ps.id(i);
    for (std::size_t a = 0; a < ps.dim(); ++a) {
      if (a > 0 || options.with_ids) os << ",";
      os << ps.at(i, a);
    }
    os << "\n";
  }
  if (!os) MRSKY_FAIL("CSV write failed");
}

void write_csv_file(const std::string& path, const PointSet& ps, const CsvWriteOptions& options) {
  std::ofstream file(path);
  if (!file) MRSKY_FAIL("cannot open for writing: " + path);
  write_csv(file, ps, options);
}

PointSet read_csv(std::istream& is, const CsvReadOptions& options, ParseReport* report) {
  ParseReport local;
  ParseReport& rep = report != nullptr ? *report : local;

  std::string line;
  std::vector<std::vector<std::string>> rows;
  bool first = true;
  bool has_header = false;
  bool has_id_column = false;
  std::vector<std::string> header;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    auto cells = split_commas(line);
    if (first) {
      first = false;
      double probe = 0.0;
      if (!parse_double(cells[0], probe)) {
        has_header = true;
        has_id_column = (cells[0] == "id");
        header = std::move(cells);
        continue;
      }
    }
    rows.push_back(std::move(cells));
  }
  MRSKY_REQUIRE(!rows.empty(), "CSV contains no data rows");
  const std::size_t width = rows.front().size();
  if (has_header) {
    MRSKY_REQUIRE(header.size() == width, "CSV header width differs from data width");
  }
  const std::size_t dim = has_id_column ? width - 1 : width;
  MRSKY_REQUIRE(dim >= 1, "CSV rows must contain at least one attribute");

  std::vector<double> values;
  values.reserve(rows.size() * dim);
  std::vector<PointId> ids;
  ids.reserve(rows.size());
  std::vector<double> row_values(dim);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto& cells = rows[r];
    // In strict mode any defect aborts the read; in lenient mode the row is
    // dropped and the report keeps the cause.
    std::string defect;
    if (cells.size() != width) {
      defect = "expected " + std::to_string(width) + " cells, got " +
               std::to_string(cells.size());
    }
    std::size_t c = 0;
    PointId id = static_cast<PointId>(r);
    if (defect.empty() && has_id_column) {
      double idv = 0.0;
      if (!parse_double(cells[0], idv)) defect = "bad id: " + cells[0];
      id = static_cast<PointId>(idv);
      c = 1;
    }
    for (std::size_t a = 0; defect.empty() && c < width; ++c, ++a) {
      double v = 0.0;
      if (!parse_double(cells[c], v)) {
        defect = "bad number: " + cells[c];
      } else if (options.lenient && options.require_finite && !std::isfinite(v)) {
        defect = "non-finite value: " + cells[c];
      } else if (options.lenient && options.require_non_negative && v < 0.0) {
        defect = "negative value: " + cells[c];
      }
      row_values[a] = v;
    }
    if (!defect.empty()) {
      MRSKY_REQUIRE(options.lenient, "CSV row " + std::to_string(r) + ": " + defect);
      rep.add_issue(r, defect);
      continue;
    }
    ids.push_back(id);
    values.insert(values.end(), row_values.begin(), row_values.end());
    ++rep.rows_read;
  }
  MRSKY_REQUIRE(!ids.empty(), "CSV contains no usable data rows");
  return PointSet(dim, std::move(values), std::move(ids));
}

PointSet read_csv_file(const std::string& path, const CsvReadOptions& options,
                       ParseReport* report) {
  std::ifstream file(path);
  if (!file) MRSKY_FAIL("cannot open for reading: " + path);
  return read_csv(file, options, report);
}

}  // namespace mrsky::data
