#include "src/dataset/io.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

#include "src/common/error.hpp"

namespace mrsky::data {

namespace {

std::vector<std::string> split_commas(const std::string& line) {
  std::vector<std::string> cells;
  std::size_t start = 0;
  while (start <= line.size()) {
    std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) comma = line.size();
    cells.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return cells;
}

bool parse_double(const std::string& s, double& out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

}  // namespace

void write_csv(std::ostream& os, const PointSet& ps, const CsvWriteOptions& options) {
  if (options.with_header) {
    if (options.with_ids) os << "id";
    for (std::size_t a = 0; a < ps.dim(); ++a) {
      if (a > 0 || options.with_ids) os << ",";
      os << "attr" << a;
    }
    os << "\n";
  }
  os << std::setprecision(options.precision);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    if (options.with_ids) os << ps.id(i);
    for (std::size_t a = 0; a < ps.dim(); ++a) {
      if (a > 0 || options.with_ids) os << ",";
      os << ps.at(i, a);
    }
    os << "\n";
  }
  if (!os) MRSKY_FAIL("CSV write failed");
}

void write_csv_file(const std::string& path, const PointSet& ps, const CsvWriteOptions& options) {
  std::ofstream file(path);
  if (!file) MRSKY_FAIL("cannot open for writing: " + path);
  write_csv(file, ps, options);
}

// ---- CsvRowReader ----------------------------------------------------------

CsvRowReader::CsvRowReader(std::istream& is, const CsvReadOptions& options,
                           ParseReport* report)
    : is_(is), options_(options), report_(report) {
  // Consume lines up to and including the first data row: header detection
  // needs the first line, width/dim need the first data row. The data row is
  // parked (raw) for the first next() call so it runs through the same
  // defect handling as every other row.
  std::string line;
  bool first = true;
  bool has_header = false;
  std::vector<std::string> header;
  while (std::getline(is_, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    auto cells = split_commas(line);
    if (first) {
      first = false;
      double probe = 0.0;
      if (!parse_double(cells[0], probe)) {
        has_header = true;
        has_id_column_ = (cells[0] == "id");
        header = std::move(cells);
        continue;
      }
    }
    pending_first_row_ = std::move(cells);
    break;
  }
  MRSKY_REQUIRE(pending_first_row_.has_value(), "CSV contains no data rows");
  width_ = pending_first_row_->size();
  if (has_header) {
    MRSKY_REQUIRE(header.size() == width_, "CSV header width differs from data width");
  }
  dim_ = has_id_column_ ? width_ - 1 : width_;
  MRSKY_REQUIRE(dim_ >= 1, "CSV rows must contain at least one attribute");
}

bool CsvRowReader::parse_row(const std::vector<std::string>& cells, PointId& id,
                             std::span<double> coords) {
  const std::size_t r = data_row_++;
  ParseReport& rep = report_ != nullptr ? *report_ : local_report_;
  // In strict mode any defect aborts the read; in lenient mode the row is
  // dropped and the report keeps the cause.
  std::string defect;
  if (cells.size() != width_) {
    defect = "expected " + std::to_string(width_) + " cells, got " +
             std::to_string(cells.size());
  }
  std::size_t c = 0;
  id = static_cast<PointId>(r);
  if (defect.empty() && has_id_column_) {
    double idv = 0.0;
    if (!parse_double(cells[0], idv)) defect = "bad id: " + cells[0];
    id = static_cast<PointId>(idv);
    c = 1;
  }
  for (std::size_t a = 0; defect.empty() && c < width_; ++c, ++a) {
    double v = 0.0;
    if (!parse_double(cells[c], v)) {
      defect = "bad number: " + cells[c];
    } else if (options_.lenient && options_.require_finite && !std::isfinite(v)) {
      defect = "non-finite value: " + cells[c];
    } else if (options_.lenient && options_.require_non_negative && v < 0.0) {
      defect = "negative value: " + cells[c];
    }
    coords[a] = v;
  }
  if (!defect.empty()) {
    MRSKY_REQUIRE(options_.lenient, "CSV row " + std::to_string(r) + ": " + defect);
    rep.add_issue(r, defect);
    return false;
  }
  ++rep.rows_read;
  return true;
}

bool CsvRowReader::next(PointId& id, std::span<double> coords) {
  MRSKY_REQUIRE(coords.size() == dim_, "coordinate buffer size must equal dim");
  if (pending_first_row_.has_value()) {
    const std::vector<std::string> cells = std::move(*pending_first_row_);
    pending_first_row_.reset();
    if (parse_row(cells, id, coords)) return true;
  }
  std::string line;
  while (std::getline(is_, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (parse_row(split_commas(line), id, coords)) return true;
  }
  return false;
}

PointSet read_csv(std::istream& is, const CsvReadOptions& options, ParseReport* report) {
  CsvRowReader reader(is, options, report);
  PointSet out(reader.dim());
  // Batched bulk appends instead of a push_back per point: rows accumulate in
  // flat buffers and land in the PointSet one append_rows slab at a time.
  constexpr std::size_t kFlushRows = 8192;
  std::vector<double> values;
  std::vector<PointId> ids;
  values.reserve(kFlushRows * reader.dim());
  ids.reserve(kFlushRows);
  std::vector<double> row(reader.dim());
  PointId id = 0;
  while (reader.next(id, row)) {
    ids.push_back(id);
    values.insert(values.end(), row.begin(), row.end());
    if (ids.size() >= kFlushRows) {
      out.append_rows(values, ids);
      values.clear();
      ids.clear();
    }
  }
  out.append_rows(values, ids);
  MRSKY_REQUIRE(!out.empty(), "CSV contains no usable data rows");
  return out;
}

PointSet read_csv_file(const std::string& path, const CsvReadOptions& options,
                       ParseReport* report) {
  std::ifstream file(path);
  if (!file) MRSKY_FAIL("cannot open for reading: " + path);
  return read_csv(file, options, report);
}

}  // namespace mrsky::data
