#include "src/dataset/source.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>

#include "src/common/error.hpp"
#include "src/dataset/block_store.hpp"
#include "src/dataset/record_file.hpp"

namespace mrsky::data {

namespace {

/// splitmix64: the repo's standard cheap deterministic hash (same family the
/// pipeline's salting uses), here deriving per-block sample offsets.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[nodiscard]] bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

// ---- DatasetSource defaults ------------------------------------------------

PointSet DatasetSource::sample(std::size_t target, std::uint64_t seed) const {
  const std::size_t total = size();
  PointSet out(dim());
  if (total == 0) return out;
  if (target >= total) return materialize();
  out.reserve(target);

  // Proportional per-block quotas via the telescoping floor trick:
  // quota_b = floor(seen_after * t / n) - floor(seen_before * t / n), which
  // sums to exactly t and never exceeds a block's row count.
  PointSet scratch(dim());
  std::size_t seen = 0;
  for (std::size_t b = 0; b < block_count(); ++b) {
    const std::size_t rows = block_stats(b).rows;
    const std::size_t before = seen * target / total;
    seen += rows;
    const std::size_t take = seen * target / total - before;
    if (take == 0) continue;
    scratch.clear();
    read_block(b, scratch);
    MRSKY_ASSERT(scratch.size() == rows, "block_stats rows disagree with read_block");
    // Evenly spaced offsets, shifted by a seed+block hash so different seeds
    // see different rows; stride >= 1 keeps picks distinct and in range.
    const std::size_t stride = rows / take;
    const std::size_t shift = stride > 1 ? splitmix64(seed ^ (b * 0x9e3779b97f4a7c15ULL)) %
                                               stride
                                         : 0;
    for (std::size_t r = 0; r < take; ++r) {
      const std::size_t pos = std::min(r * stride + shift, rows - 1);
      out.push_back(scratch.point(pos), scratch.id(pos));
    }
    release_block(b);
  }
  return out;
}

PointSet DatasetSource::materialize() const {
  PointSet out(dim());
  out.reserve(size());
  for (std::size_t b = 0; b < block_count(); ++b) {
    read_block(b, out);
    release_block(b);
  }
  return out;
}

// ---- PointSetSource --------------------------------------------------------

namespace {
/// Virtual block size for in-memory sources: block-oriented consumers see
/// uniform slices, nothing is copied until they ask.
constexpr std::size_t kResidentBlockRows = 4096;
}  // namespace

PointSetSource::PointSetSource(const PointSet& ps) : view_(&ps) {}

PointSetSource::PointSetSource(PointSet&& ps) : owned_(std::move(ps)) {}

std::size_t PointSetSource::block_count() const {
  return (set().size() + kResidentBlockRows - 1) / kResidentBlockRows;
}

BlockStats PointSetSource::block_stats(std::size_t b) const {
  MRSKY_REQUIRE(b < block_count(), "block index out of range");
  BlockStats stats;
  stats.rows = std::min(kResidentBlockRows, set().size() - b * kResidentBlockRows);
  stats.bytes = stats.rows * (set().dim() * sizeof(double) + sizeof(PointId));
  stats.has_corners = false;  // never computed: resident runs must not prune
  return stats;
}

void PointSetSource::read_block(std::size_t b, PointSet& out) const {
  MRSKY_REQUIRE(b < block_count(), "block index out of range");
  const PointSet& ps = set();
  const std::size_t first = b * kResidentBlockRows;
  const std::size_t rows = std::min(kResidentBlockRows, ps.size() - first);
  out.append_rows(ps.raw().subspan(first * ps.dim(), rows * ps.dim()),
                  ps.ids().subspan(first, rows));
}

std::string PointSetSource::describe() const {
  return "memory: " + std::to_string(set().size()) + " x " +
         std::to_string(set().dim()) + "d";
}

// ---- BlockStoreSource ------------------------------------------------------

BlockStoreSource::BlockStoreSource(const std::string& path)
    : store_(std::make_shared<const BlockStore>(path)) {}

BlockStoreSource::BlockStoreSource(std::shared_ptr<const BlockStore> store)
    : store_(std::move(store)) {
  MRSKY_REQUIRE(store_ != nullptr, "null block store");
}

BlockStoreSource::~BlockStoreSource() = default;

std::size_t BlockStoreSource::dim() const { return store_->dim(); }
std::size_t BlockStoreSource::size() const { return store_->rows(); }
std::size_t BlockStoreSource::block_count() const { return store_->block_count(); }

BlockStats BlockStoreSource::block_stats(std::size_t b) const {
  BlockStats stats;
  stats.rows = store_->rows_in_block(b);
  stats.bytes = store_->block_payload_bytes(b);
  stats.has_corners = true;
  const auto mn = store_->block_min(b);
  const auto mx = store_->block_max(b);
  stats.min_corner.assign(mn.begin(), mn.end());
  stats.max_corner.assign(mx.begin(), mx.end());
  return stats;
}

void BlockStoreSource::read_block(std::size_t b, PointSet& out) const {
  store_->append_block_to(b, out);
}

void BlockStoreSource::release_block(std::size_t b) const { store_->release(b); }

PointSet BlockStoreSource::materialize() const { return store_->materialize(); }

std::string BlockStoreSource::describe() const {
  return "block store " + store_->path() + ": " + std::to_string(store_->rows()) + " x " +
         std::to_string(store_->dim()) + "d in " + std::to_string(store_->block_count()) +
         " blocks";
}

// ---- CsvSource -------------------------------------------------------------

CsvSource::CsvSource(const std::string& path, const CsvReadOptions& options,
                     ParseReport* report, std::size_t block_rows)
    : csv_path_(path) {
  std::ifstream file(path);
  if (!file) MRSKY_FAIL("cannot open for reading: " + path);
  CsvRowReader reader(file, options, report);

  // Stage into a private temporary block store next to the system temp dir;
  // the name only needs to be unique per process+source.
  static std::atomic<std::uint64_t> counter{0};
  const auto tag = splitmix64(std::hash<std::string>{}(path)) ^
                   counter.fetch_add(1, std::memory_order_relaxed);
  temp_path_ = (std::filesystem::temp_directory_path() /
                ("mrsky-csv-" + std::to_string(::getpid()) + "-" + std::to_string(tag) +
                 ".mrb"))
                   .string();
  {
    BlockStoreWriter writer(temp_path_, reader.dim(),
                            block_rows > 0 ? block_rows : blockfmt::kDefaultBlockRows);
    std::vector<double> row(reader.dim());
    PointId id = 0;
    while (reader.next(id, row)) writer.append(id, row);
    MRSKY_REQUIRE(writer.rows_written() > 0, "CSV contains no usable data rows");
    writer.close();
  }
  backing_ = std::make_unique<BlockStoreSource>(temp_path_);
}

CsvSource::~CsvSource() {
  backing_.reset();  // unmap before unlink
  if (!temp_path_.empty()) std::remove(temp_path_.c_str());
}

std::size_t CsvSource::dim() const { return backing_->dim(); }
std::size_t CsvSource::size() const { return backing_->size(); }
std::size_t CsvSource::block_count() const { return backing_->block_count(); }
BlockStats CsvSource::block_stats(std::size_t b) const { return backing_->block_stats(b); }
void CsvSource::read_block(std::size_t b, PointSet& out) const {
  backing_->read_block(b, out);
}
void CsvSource::release_block(std::size_t b) const { backing_->release_block(b); }
PointSet CsvSource::materialize() const { return backing_->materialize(); }

std::string CsvSource::describe() const {
  return "csv " + csv_path_ + " (staged): " + std::to_string(size()) + " x " +
         std::to_string(dim()) + "d in " + std::to_string(block_count()) + " blocks";
}

// ---- open_dataset ----------------------------------------------------------

std::unique_ptr<DatasetSource> open_dataset(const std::string& path,
                                            const OpenDatasetOptions& options,
                                            ParseReport* report) {
  if (ends_with(path, ".mrb")) {
    return std::make_unique<BlockStoreSource>(path);
  }
  if (ends_with(path, ".mrsk")) {
    return std::make_unique<PointSetSource>(read_record_file(path, report));
  }
  CsvReadOptions csv = options.csv;
  csv.lenient = csv.lenient || report != nullptr;
  return std::make_unique<CsvSource>(path, csv, report, options.csv_block_rows);
}

}  // namespace mrsky::data
