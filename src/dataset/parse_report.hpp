// Malformed-input ledger shared by the dataset readers' lenient modes.
//
// Real QoS collections (the QWS file the paper evaluates on is a hand-curated
// web crawl) arrive with ragged rows, unparsable cells, and out-of-range
// measurements. The strict readers abort on the first such row; the lenient
// modes mirror the engine's skip-bad-records mechanism at the input layer:
// the offending row (or record-file block) is dropped and accounted for here,
// and the load continues.
#pragma once

#include <cstddef>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace mrsky::data {

/// One rejected input unit: a CSV row or a record-file block/record.
struct ParseIssue {
  std::size_t row = 0;  ///< 0-based data-row (or block) index in the source
  std::string reason;   ///< human-readable cause
};

/// Per-file report of what a lenient read accepted and dropped. Only the
/// first kMaxRecordedIssues causes are kept verbatim; the counters always
/// cover everything.
struct ParseReport {
  static constexpr std::size_t kMaxRecordedIssues = 32;

  std::size_t rows_read = 0;     ///< units accepted into the point set
  std::size_t rows_skipped = 0;  ///< units dropped
  std::vector<ParseIssue> issues;

  void add_issue(std::size_t row, std::string reason) {
    ++rows_skipped;
    if (issues.size() < kMaxRecordedIssues) {
      issues.push_back(ParseIssue{row, std::move(reason)});
    }
  }

  [[nodiscard]] bool clean() const noexcept { return rows_skipped == 0; }

  /// Multi-line human-readable account, e.g. for the CLI's --lenient mode.
  [[nodiscard]] std::string summary() const {
    std::ostringstream os;
    os << rows_read << " rows read, " << rows_skipped << " skipped\n";
    for (const auto& issue : issues) {
      os << "  row " << issue.row << ": " << issue.reason << "\n";
    }
    if (rows_skipped > issues.size()) {
      os << "  (" << (rows_skipped - issues.size()) << " further issues not recorded)\n";
    }
    return os.str();
  }
};

}  // namespace mrsky::data
