// On-disk layout of the `.mrb` columnar block store (DESIGN.md decision 16).
//
// A `.mrb` file is a sequence of fixed-capacity blocks whose payload uses the
// exact attribute-major 8-lane tile layout of skyline::TiledWindow: tile t of
// a block is dim × kTileWidth contiguous doubles, attribute a's eight lane
// values at tile + a * kTileWidth, dead lanes padded with +inf. A mapped
// block is therefore directly consumable by the dominance_block kernels
// (compare_block / dominators_in_block) without any gather or copy — the
// storage format *is* the compute format.
//
// Layout (all integers little-endian as written by the host — like `.mrsk`,
// a working-set artifact, not an interchange format):
//
//   header : magic "MRB1" | u32 version | u64 dim | u64 block_rows
//   blocks : per block, 8-byte aligned —
//              tiles : ceil(rows / 8) × dim × 8 f64   (TiledWindow layout)
//              ids   : rows × u32, zero-padded to an 8-byte boundary
//   footer : u64 block_count
//            block_count × ( u64 offset | u64 rows | u64 payload_bytes |
//                            u64 checksum | dim × f64 min | dim × f64 max )
//            u64 total_rows
//   trailer: u64 footer_offset | u64 footer_checksum | magic "1BRM"
//
// The per-block footer entry carries everything a scheduler needs without
// touching the payload: row count, payload footprint, an FNV-1a checksum of
// the payload bytes, and the componentwise min/max corner of the block's
// rows — the statistic behind pre-shuffle block pruning (a block whose min
// corner is strictly dominated in every attribute by a known point contains
// no skyline member) and the planner's block-level analyze input. The footer
// has its own checksum in the trailer so a truncated or bit-flipped index is
// a typed error at open, never a crash or a silent mis-read.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mrsky::data::blockfmt {

inline constexpr char kHeaderMagic[4] = {'M', 'R', 'B', '1'};
inline constexpr char kTrailerMagic[4] = {'1', 'B', 'R', 'M'};
inline constexpr std::uint32_t kVersion = 1;

/// Lanes per tile — must equal skyline::kTileWidth (static_asserted in
/// block_store.cpp, which may include the skyline header; this header stays
/// dependency-free so the dataset layer never includes skyline code).
inline constexpr std::size_t kTileLanes = 8;

/// Default block capacity: 4096 rows keeps a 9-d block's payload at ~300 KiB
/// — large enough to amortise per-block bookkeeping, small enough that a
/// streaming reader's resident set stays a few blocks deep.
inline constexpr std::size_t kDefaultBlockRows = 4096;

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// header: magic + u32 version + u64 dim + u64 block_rows.
inline constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8;

/// trailer: u64 footer_offset + u64 footer_checksum + magic.
inline constexpr std::size_t kTrailerBytes = 8 + 8 + 4;

[[nodiscard]] inline constexpr std::size_t tiles_for(std::size_t rows) noexcept {
  return (rows + kTileLanes - 1) / kTileLanes;
}

/// Bytes of one block's tile region (attribute-major lanes, padding included).
[[nodiscard]] inline constexpr std::size_t tile_bytes(std::size_t rows, std::size_t dim) noexcept {
  return tiles_for(rows) * dim * kTileLanes * sizeof(double);
}

/// Bytes of one block's id region (u32 each, zero-padded to 8 bytes).
[[nodiscard]] inline constexpr std::size_t id_bytes(std::size_t rows) noexcept {
  return (rows * sizeof(std::uint32_t) + 7) / 8 * 8;
}

/// Total payload bytes of one block.
[[nodiscard]] inline constexpr std::size_t payload_bytes(std::size_t rows, std::size_t dim) noexcept {
  return tile_bytes(rows, dim) + id_bytes(rows);
}

/// One footer index entry's size for a given dimensionality.
[[nodiscard]] inline constexpr std::size_t index_entry_bytes(std::size_t dim) noexcept {
  return 4 * sizeof(std::uint64_t) + 2 * dim * sizeof(double);
}

[[nodiscard]] inline std::uint64_t fnv1a(const void* data, std::size_t size,
                                         std::uint64_t seed = kFnvOffsetBasis) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace mrsky::data::blockfmt
