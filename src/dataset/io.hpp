// CSV persistence for point sets, so experiments can be re-run against a
// fixed on-disk dataset (or against the real QWS file if the user has one).
//
// Format: optional header line, then one row per point. If the first column
// is named "id" (or `with_ids` is set on write), it carries the PointId;
// otherwise ids are assigned sequentially on load.
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/dataset/parse_report.hpp"
#include "src/dataset/point_set.hpp"

namespace mrsky::data {

struct CsvWriteOptions {
  bool with_header = true;
  bool with_ids = true;
  int precision = 17;  ///< max_digits10: doubles round-trip exactly
};

/// Writes `ps` to `os`. Throws mrsky::RuntimeError on stream failure.
void write_csv(std::ostream& os, const PointSet& ps, const CsvWriteOptions& options = {});
void write_csv_file(const std::string& path, const PointSet& ps,
                    const CsvWriteOptions& options = {});

struct CsvReadOptions {
  /// Strict (default): throw on the first ragged row or unparsable cell.
  /// Lenient: drop such rows and account for them in the ParseReport —
  /// the input-layer counterpart of the engine's skip-bad-records mode.
  bool lenient = false;
  /// Lenient mode only: also drop rows containing NaN or infinity.
  bool require_finite = true;
  /// Lenient mode only: also drop rows with negative attributes (MR-Angle's
  /// hyperspherical transform requires the non-negative orthant).
  bool require_non_negative = false;
};

/// Streaming row-at-a-time CSV reader — the ingest path that never holds the
/// file in memory. Construction consumes lines up to and including the first
/// data row (establishing header, id column and width; throws "CSV contains
/// no data rows" if there are none); next() then yields one usable row per
/// call. Strict/lenient semantics, defect messages and ParseReport accounting
/// are identical to read_csv, which is now a thin loop over this class.
class CsvRowReader {
 public:
  CsvRowReader(std::istream& is, const CsvReadOptions& options = {},
               ParseReport* report = nullptr);

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] bool has_id_column() const noexcept { return has_id_column_; }

  /// Fills `coords` (size dim()) and `id` with the next usable row; false at
  /// end of input. Strict mode throws on the first defective row; lenient
  /// mode records the defect and keeps scanning.
  bool next(PointId& id, std::span<double> coords);

 private:
  bool parse_row(const std::vector<std::string>& cells, PointId& id,
                 std::span<double> coords);

  std::istream& is_;
  CsvReadOptions options_;
  ParseReport* report_;
  ParseReport local_report_;
  std::size_t dim_ = 0;
  std::size_t width_ = 0;
  bool has_id_column_ = false;
  std::size_t data_row_ = 0;  ///< index of the next data row (for messages)
  std::optional<std::vector<std::string>> pending_first_row_;
};

/// Reads a point set. Detects a header (any non-numeric first line) and an
/// "id" first column automatically. Throws on ragged rows or parse errors
/// unless `options.lenient`; with a non-null `report`, fills in what was
/// accepted and dropped.
[[nodiscard]] PointSet read_csv(std::istream& is, const CsvReadOptions& options = {},
                                ParseReport* report = nullptr);
[[nodiscard]] PointSet read_csv_file(const std::string& path,
                                     const CsvReadOptions& options = {},
                                     ParseReport* report = nullptr);

}  // namespace mrsky::data
