// PointSet: the d-dimensional multi-attribute dataset all skyline code
// operates on.
//
// Storage is a single row-major std::vector<double> (cache-friendly for the
// pairwise dominance scans that dominate skyline cost) plus a parallel vector
// of stable point ids, so points keep their identity across partitioning,
// local-skyline filtering and the global merge.
//
// Convention: every attribute is oriented so that SMALLER IS BETTER
// (the paper's Fig. 1 semantics). qos::ServiceCatalog performs the benefit→
// cost flip at ingest.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mrsky::data {

/// Stable identity of a point within its originating dataset.
using PointId = std::uint32_t;

class PointSet {
 public:
  /// An empty set of `dim`-dimensional points (dim >= 1).
  explicit PointSet(std::size_t dim);

  /// Takes ownership of row-major values; ids are assigned 0..n-1.
  PointSet(std::size_t dim, std::vector<double> values);

  /// Takes ownership of values and explicit ids (sizes must agree).
  PointSet(std::size_t dim, std::vector<double> values, std::vector<PointId> ids);

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ids_.empty(); }

  /// Read-only view of point i's coordinates.
  [[nodiscard]] std::span<const double> point(std::size_t i) const noexcept {
    return {values_.data() + i * dim_, dim_};
  }

  [[nodiscard]] double at(std::size_t i, std::size_t attr) const noexcept {
    return values_[i * dim_ + attr];
  }

  [[nodiscard]] PointId id(std::size_t i) const noexcept { return ids_[i]; }

  /// Copies point i's coordinates into dst with `stride` doubles between
  /// consecutive attributes (stride 1 = a plain contiguous copy). The strided
  /// form is the scatter used by skyline::TiledWindow to lay points out in
  /// attribute-major tiles.
  void copy_point_to(std::size_t i, double* dst, std::size_t stride = 1) const noexcept {
    const double* src = values_.data() + i * dim_;
    for (std::size_t a = 0; a < dim_; ++a) dst[a * stride] = src[a];
  }

  /// Appends a point; throws if coords.size() != dim().
  void push_back(std::span<const double> coords, PointId id);

  /// Appends a point with the next sequential id (= current size).
  void push_back(std::span<const double> coords);

  /// Bulk append of `ids.size()` rows from row-major `values` (one memcpy-class
  /// insert instead of a push_back per point — the ingest hot path for the CSV
  /// reader and block-store materialisation). Throws on size mismatch.
  void append_rows(std::span<const double> values, std::span<const PointId> ids);

  /// Bulk append with sequential ids starting at the current size.
  void append_rows(std::span<const double> values);

  void reserve(std::size_t n);
  void clear() noexcept;

  /// New PointSet holding rows [indices] of this one (ids preserved).
  [[nodiscard]] PointSet select(std::span<const std::size_t> indices) const;

  /// Per-attribute minimum/maximum over all points. Throws if empty.
  [[nodiscard]] std::vector<double> attribute_min() const;
  [[nodiscard]] std::vector<double> attribute_max() const;

  /// Raw row-major storage (size() * dim() doubles).
  [[nodiscard]] std::span<const double> raw() const noexcept { return values_; }
  [[nodiscard]] std::span<const PointId> ids() const noexcept { return ids_; }

  /// True iff both sets have the same dim, ids and coordinates in order.
  [[nodiscard]] bool operator==(const PointSet& other) const noexcept = default;

 private:
  std::size_t dim_;
  std::vector<double> values_;
  std::vector<PointId> ids_;
};

/// Returns the ids of `ps` sorted ascending (canonical form for comparing
/// skyline results from different algorithms).
[[nodiscard]] std::vector<PointId> sorted_ids(const PointSet& ps);

}  // namespace mrsky::data
